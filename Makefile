# Tier-1 verify is `make ci`: vet + build + race-checked unit tests +
# the full (shape-test) suite. The -short race pass covers every unit
# test including the run engine's concurrency tests in a few minutes;
# the full suite without -race runs the multi-minute integration shape
# tests once.
GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the unit tests (includes the internal/runner concurrency
# suite). The non-short shape tests are minutes-long even without the
# race detector, so they run in `test` instead.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

ci: vet build race test
