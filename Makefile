# Tier-1 verify is `make ci`: vet + build + race-checked unit tests +
# the full (shape-test) suite. The -short race pass covers every unit
# test including the run engine's concurrency tests in a few minutes;
# the full suite without -race runs the multi-minute integration shape
# tests once.
GO ?= go

.PHONY: build test race vet bench bench-sim bench-regress trace-regress ci smoke cluster-smoke dvfs-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the unit tests (includes the internal/runner concurrency
# suite). The non-short shape tests are minutes-long even without the
# race detector, so they run in `test` instead.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Rerun the single-simulation benchmark protocol (interleaved A/B reps
# of cmd/paper against a base rev, byte-compare every run) and rewrite
# BENCH_sim.json. Run with a dirty tree to measure tree-vs-HEAD;
# `scripts/bench_sim.sh <rev> <reps>` for other comparisons.
bench-sim:
	scripts/bench_sim.sh

# Warn-only hot-path microbenchmark check against the checked-in
# baseline (scripts/bench_baseline.txt). Never fails the build;
# regenerate the baseline with `scripts/bench_regress.sh -update`
# after an intentional perf change.
bench-regress:
	scripts/bench_regress.sh

# Exact trace-signature regression check: run the fig2 slice with
# -trace, reduce it with `tracelens sig`, and diff against the
# checked-in scripts/trace_baseline.sig. The simulator is
# deterministic, so any diff is a real behavior change; regenerate the
# baseline with `scripts/trace_regress.sh -update` when intentional.
trace-regress:
	scripts/trace_regress.sh

# End-to-end gpujouled service smoke: daemon + persistent cache
# round-trip + byte-identical -server sweep. Not part of tier-1 `ci`
# (it builds binaries and binds a port); CI runs it as its own step.
smoke:
	scripts/service_smoke.sh

# Scaled-down DVFS smoke: sweet-spot + energy-roofline studies, a
# fixed-frequency sweep with frequency columns, and the nominal-point
# byte-identity check (no DVFS flags vs -freq 1000). Artifacts land
# in the workdir for CI upload.
dvfs-smoke:
	scripts/dvfs_smoke.sh

# End-to-end cluster smoke: 3 nodes + gateway, byte-identical
# distributed sweeps (including a mid-sweep node kill), then a
# loadgen storm writing BENCH_cluster.json. Same caveats as `smoke`.
cluster-smoke:
	scripts/cluster_smoke.sh

ci: vet build race test
