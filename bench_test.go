package gpujoule_test

// One benchmark per table and figure of the paper's evaluation, plus
// micro-benchmarks of the substrates. The figure benchmarks run the
// same harness code as cmd/paper at a reduced workload scale so a
// single -bench=. pass regenerates the whole evaluation in minutes;
// use cmd/paper -scale 1 for the paper-scale numbers recorded in
// EXPERIMENTS.md.

import (
	"context"
	"testing"

	"gpujoule/internal/core"
	"gpujoule/internal/harness"
	"gpujoule/internal/interconnect"
	"gpujoule/internal/isa"
	"gpujoule/internal/memsys"
	"gpujoule/internal/silicon"
	"gpujoule/internal/sim"
	"gpujoule/internal/workloads"
)

const benchScale = 0.1

// newHarness builds a fresh harness per benchmark so b.N iterations
// measure full regeneration cost (no warm cache).
func benchHarness() *harness.Harness { return harness.New(benchScale) }

func BenchmarkTable1b(b *testing.B) {
	// Full Fig. 3 calibration against the reference silicon (the
	// Table Ib regeneration plus the Fig. 4a validation loop).
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		v, err := h.Validate()
		if err != nil {
			b.Fatal(err)
		}
		if len(v.TableIb) == 0 || len(v.Fig4b) != 18 {
			b.Fatal("validation incomplete")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchHarness().Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkFigure4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		v, err := h.Validate()
		if err != nil {
			b.Fatal(err)
		}
		if len(v.Fig4a) != 5 {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkFigure4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		v, err := h.Validate()
		if err != nil {
			b.Fatal(err)
		}
		if len(v.Fig4b) != 18 {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchHarness().Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchHarness().Figure7()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchHarness().Figure8()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchHarness().Figure9()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchHarness().Figure10()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 15 {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkLinkEnergyStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchHarness().LinkEnergyStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAmortizationStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchHarness().AmortizationStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchHarness().HeadlineStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchHarness().AblationStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- substrate micro-benchmarks ----

func BenchmarkCacheAccess(b *testing.B) {
	c := memsys.MustNewCache(2<<20, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*7%100000) * isa.LineBytes)
	}
}

func BenchmarkBWResourceAcquire(b *testing.B) {
	r := memsys.NewBWResource("bench", 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Acquire(float64(i), 128)
	}
}

func BenchmarkRingSend(b *testing.B) {
	ring := interconnect.NewRing(32, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ring.Send(float64(i), i%32, (i+7)%32, 128)
	}
}

func BenchmarkModelEstimate(b *testing.B) {
	m := core.ProjectionModel(core.OnPackageLinks())
	var c isa.Counts
	c.Inst[isa.OpFFMA32] = 1 << 30
	c.Txn[isa.TxnDRAMToL2] = 1 << 24
	c.StallCycles = 1 << 20
	c.Cycles = 1 << 22
	c.GPMCount = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.EstimateEnergy(&c) <= 0 {
			b.Fatal("bad estimate")
		}
	}
}

func BenchmarkSimulateStream8GPM(b *testing.B) {
	app, err := workloads.ByName("Stream", workloads.Params{Scale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.MultiGPM(8, sim.BW2x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(context.Background(), cfg, app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateStream8GPMCounters measures the same run with the
// observability collector enabled, so the counter overhead (meant to be
// a few percent) is visible next to the plain benchmark above.
func BenchmarkSimulateStream8GPMCounters(b *testing.B) {
	app, err := workloads.ByName("Stream", workloads.Params{Scale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.MultiGPM(8, sim.BW2x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(context.Background(), cfg, app, sim.WithCounters()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSiliconMeasurement(b *testing.B) {
	dev := silicon.NewK40()
	app, err := workloads.ByName("Kmeans", workloads.Params{Scale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Run(app); err != nil {
			b.Fatal(err)
		}
	}
}
