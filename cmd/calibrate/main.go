// Command calibrate runs the full GPUJoule calibration workflow of
// Fig. 3 against the reference silicon: microbenchmark measurement,
// Eq. 5 energy derivation, mixed-benchmark validation (Fig. 4a), and
// real-application validation (Fig. 4b). It prints the recovered
// Table Ib alongside the published values.
//
// Usage:
//
//	calibrate [-scale f] [-apps=false]
package main

import (
	"flag"
	"fmt"
	"os"

	"gpujoule/internal/harness"
)

func main() {
	scale := flag.Float64("scale", 1.0, "application scale for Fig. 4b validation")
	apps := flag.Bool("apps", true, "run the 18-application Fig. 4b validation")
	flag.Parse()

	h := harness.New(*scale)
	v, err := h.Validate()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("calibrated against reference silicon in %d iteration(s)\n", v.Calibration.Iterations)
	fmt.Printf("idle (constant) power: %.1f W, EPStall: %.3f nJ\n\n",
		v.Calibration.IdleWatts, v.Calibration.Model.EPStall*1e9)

	tables := harness.ValidationTables(v)
	// Fig. 4b is the last table; skip it when -apps=false.
	if !*apps {
		tables = tables[:len(tables)-1]
	}
	for _, t := range tables {
		if err := t.Fprint(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *apps {
		fmt.Printf("Fig. 4b mean absolute error: %.1f%% over %d applications (paper: 9.4%%)\n",
			v.Fig4bMAEPct(), len(v.Fig4b))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "calibrate:", err)
	os.Exit(1)
}
