// Command calibrate runs the full GPUJoule calibration workflow of
// Fig. 3 against the reference silicon: microbenchmark measurement,
// Eq. 5 energy derivation, mixed-benchmark validation (Fig. 4a), and
// real-application validation (Fig. 4b). It prints the recovered
// Table Ib alongside the published values.
//
// With -freq, the workflow calibrates the silicon reclocked to that
// K40 V/f-curve operating point instead of the nominal 1 GHz: the
// recovered per-event energies and idle power then absorb the hidden
// voltage/frequency effects the top-down V² rule alone cannot see.
// With -curve, every curve point is calibrated in ascending frequency
// order and a per-point summary table is printed.
//
// Usage:
//
//	calibrate [-scale f] [-apps=false] [-freq mhz] [-curve]
package main

import (
	"flag"
	"fmt"
	"os"

	"gpujoule/internal/calib"
	"gpujoule/internal/dvfs"
	"gpujoule/internal/harness"
	"gpujoule/internal/silicon"
)

func main() {
	scale := flag.Float64("scale", 1.0, "application scale for Fig. 4b validation")
	apps := flag.Bool("apps", true, "run the 18-application Fig. 4b validation")
	freqMHz := flag.Float64("freq", 0, "calibrate at this K40 V/f-curve frequency in MHz (0 = nominal 1000)")
	curve := flag.Bool("curve", false, "calibrate every V/f-curve point and print the per-point summary")
	flag.Parse()

	if *curve {
		if err := calibrateCurve(); err != nil {
			fatal(err)
		}
		return
	}
	if *freqMHz != 0 {
		if err := calibrateAt(*freqMHz); err != nil {
			fatal(err)
		}
		return
	}

	h := harness.New(*scale)
	v, err := h.Validate()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("calibrated against reference silicon in %d iteration(s)\n", v.Calibration.Iterations)
	fmt.Printf("idle (constant) power: %.1f W, EPStall: %.3f nJ\n\n",
		v.Calibration.IdleWatts, v.Calibration.Model.EPStall*1e9)

	tables := harness.ValidationTables(v)
	// Fig. 4b is the last table; skip it when -apps=false.
	if !*apps {
		tables = tables[:len(tables)-1]
	}
	for _, t := range tables {
		if err := t.Fprint(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *apps {
		fmt.Printf("Fig. 4b mean absolute error: %.1f%% over %d applications (paper: 9.4%%)\n",
			v.Fig4bMAEPct(), len(v.Fig4b))
	}
}

// calibrateAt recalibrates the reference silicon at one operating
// point and prints the recovered model against the nominal one.
func calibrateAt(freqMHz float64) error {
	p, err := dvfs.K40Curve().AtMHz(freqMHz)
	if err != nil {
		return err
	}
	dev := silicon.NewK40()
	res, err := calib.CalibrateAt(dev, p, calib.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("calibrated at %s in %d iteration(s)\n", p, res.Iterations)
	fmt.Printf("idle (constant) power: %.1f W, EPStall: %.3f nJ\n",
		res.IdleWatts, res.Model.EPStall*1e9)
	fmt.Printf("mixed-benchmark MAE: %.1f%%\n", res.MixedMAEPct())
	return nil
}

// calibrateCurve calibrates every curve point and prints the
// per-point idle power and stall energy — the measured shape the
// analytical V² rule is validated against.
func calibrateCurve() error {
	dev := silicon.NewK40()
	results, err := calib.CalibrateCurve(dev, calib.Options{})
	if err != nil {
		return err
	}
	fmt.Println("point          idle W   EPStall nJ   mixed MAE   iters")
	for _, cr := range results {
		fmt.Printf("%-14s %6.1f %12.3f %10.1f%% %7d\n",
			cr.Point.String(), cr.Result.IdleWatts, cr.Result.Model.EPStall*1e9,
			cr.Result.MixedMAEPct(), cr.Result.Iterations)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "calibrate:", err)
	os.Exit(1)
}
