// Command gpmsim simulates one workload on one multi-module GPU
// configuration and reports performance, event counts, and the
// GPUJoule energy breakdown.
//
// Usage:
//
//	gpmsim -workload Stream -gpms 8 [-bw 2x] [-topology ring]
//	       [-monolithic] [-scale f] [-baseline] [-json]
//	       [-freq mhz] [-governor fixed|sweetspot|racetoidle|pacetofinish]
//	       [-deadline s] [-counters out.json] [-sample cycles]
//	       [-trace out.trace.json] [-httpaddr :8080] [-version]
//
// With -freq, the run executes at the given K40 V/f-curve operating
// point (internal/dvfs): timing re-derives under the scaled clock and
// energy is priced by the rescaled model. -governor lets a DVFS policy
// pick the point instead: sweetspot minimizes EDP over the curve,
// racetoidle chooses between racing at the curve maximum (then deep-
// idling the slack) and pacing at the minimum, and pacetofinish picks
// the slowest point that still meets -deadline. The 1-GPM baseline of
// -baseline runs at the same chosen point.
//
// With -baseline, the 1-GPM run is also simulated and scaling metrics
// (speedup, energy ratio, EDPSE, parallel efficiency) are reported.
// With -counters, the run records per-GPM/per-link observability
// counters (internal/obs) plus the exact energy attribution and writes
// them as JSON; -sample additionally records a time series every given
// number of cycles. With -trace, the run's timeline is written as a
// Chrome trace_event file (chrome://tracing / Perfetto). With
// -httpaddr, the process serves live introspection (pprof, /progress,
// /metrics) while it runs.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"gpujoule/internal/core"
	"gpujoule/internal/dvfs"
	"gpujoule/internal/interconnect"
	"gpujoule/internal/isa"
	"gpujoule/internal/metrics"
	"gpujoule/internal/obs"
	"gpujoule/internal/profiling"
	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
	"gpujoule/internal/workloads"
)

func main() {
	prof := profiling.AddFlags()
	name := flag.String("workload", "Stream", "Table II workload name (see -list)")
	gpms := flag.Int("gpms", 4, "number of GPU modules (1, 2, 4, 8, 16, 32)")
	bw := flag.String("bw", "2x", "inter-GPM bandwidth setting: 1x, 2x, or 4x")
	topo := flag.String("topology", "ring", "inter-GPM topology: ring or switch")
	mono := flag.Bool("monolithic", false, "fuse modules into a hypothetical monolithic die")
	scale := flag.Float64("scale", 0.5, "workload scale factor (1.0 = paper scale)")
	baseline := flag.Bool("baseline", false, "also run 1-GPM and report scaling metrics")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON summary instead of text")
	countersOut := flag.String("counters", "", "write per-GPM/per-link counters + energy attribution JSON to this file")
	sample := flag.Float64("sample", 0, "with -counters, record a time-series sample every n cycles")
	gpmParallel := flag.Int("gpm-parallel", 1, "per-simulation GPM lanes (>1 parallelizes inside the run; output is byte-identical at any value)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event timeline of the run to this file")
	httpAddr := flag.String("httpaddr", "", "serve live introspection (pprof, /progress, /metrics) on this address")
	freqMHz := flag.Float64("freq", 0, "run at this K40 V/f-curve frequency in MHz (0 = nominal 1000)")
	governor := flag.String("governor", "fixed", "operating-point policy: fixed, sweetspot, racetoidle, or pacetofinish")
	deadline := flag.Float64("deadline", 0, "with -governor pacetofinish: the wall-clock deadline in seconds (0 = slowest curve point)")
	version := flag.Bool("version", false, "print schema and module version, then exit")
	list := flag.Bool("list", false, "list workload names and exit")
	flag.Parse()

	if *version {
		fmt.Println(profiling.VersionString("gpmsim"))
		return
	}
	if *list {
		fmt.Println(strings.Join(workloads.Names(), "\n"))
		return
	}

	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	app, err := workloads.ByName(*name, workloads.Params{Scale: *scale})
	if err != nil {
		fatal(err)
	}

	cfg, err := buildConfig(*gpms, *bw, *topo, *mono)
	if err != nil {
		fatal(err)
	}
	// The engine must exist before the introspection server starts: the
	// server's handlers pull the profile from listener goroutines, so a
	// late-bound engine variable would race with them. Events only fire
	// inside Run, which starts after srv is assigned.
	var srv *profiling.HTTPServer
	eng := runner.New(runner.Options{
		OnEvent: func(ev runner.Event) {
			if srv != nil && ev.Kind == runner.PointDone {
				srv.SetProgress(ev.Completed, ev.Total)
			}
		},
		Counters:       *countersOut != "",
		SampleInterval: *sample,
		Trace:          *traceOut != "",
		GPMParallel:    *gpmParallel,
	})
	if *httpAddr != "" {
		srv, err = profiling.ServeHTTP(*httpAddr, eng.Profile)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "gpmsim: live introspection on http://%s/\n", srv.Addr())
	}

	// The operating point comes from -freq, or from the chosen
	// governor's sweep of the V/f curve (every candidate runs through
	// the same engine, so the final point is a memo hit).
	op, decision, err := pickPoint(eng, app, *scale, cfg, *governor, *freqMHz, *deadline)
	if err != nil {
		fatal(err)
	}
	if decision != nil {
		fmt.Fprintf(os.Stderr, "gpmsim: governor %s chose %s (%s)\n",
			decision.Policy, decision.Point, decision.Reason)
	}
	cfg = dvfs.Apply(cfg, op)
	model := dvfs.ScaleForConfig(core.ProjectionModel(linksFor(cfg)), cfg)

	// Both points (the run and, with -baseline, its 1-GPM reference)
	// go through the shared run engine: they execute concurrently and
	// identical points collapse to one simulation.
	points := []runner.Point{{App: app, Scale: *scale, Config: cfg}}
	withBase := *baseline && !*mono && *gpms > 1
	if withBase {
		points = append(points, runner.Point{App: app, Scale: *scale, Config: dvfs.Apply(sim.MultiGPM(1, sim.BW2x), op)})
	}
	results, err := eng.Run(context.Background(), points)
	if err != nil {
		fatal(err)
	}
	res := results[0]

	if *countersOut != "" {
		profile := eng.Profile()
		rep := obs.Report{Profile: &profile}
		for i, pt := range points {
			m := dvfs.ScaleForConfig(core.ProjectionModel(linksFor(pt.Config)), pt.Config)
			energy, err := obs.AttributeEnergy(m, &results[i].Counts, results[i].Counters)
			if err != nil {
				fatal(err)
			}
			pc := obs.PointCounters{
				Workload: pt.App.Name,
				Config:   pt.Config.Name(),
				SimKey:   pt.Key(),
				Counters: results[i].Counters,
				Energy:   energy,
			}
			if !op.IsNominal() {
				pc.OperatingPoint = &obs.OperatingPointInfo{FreqMHz: op.MHz(), VoltageV: op.Voltage}
				if decision != nil {
					pc.OperatingPoint.Governor = decision.Policy
					pc.OperatingPoint.Reason = decision.Reason
				}
			}
			rep.Points = append(rep.Points, pc)
		}
		if err := rep.WriteFile(*countersOut); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		label := fmt.Sprintf("%s on %s", app.Name, cfg.Name())
		if err := res.Trace.WriteChromeFile(*traceOut, label); err != nil {
			fatal(err)
		}
	}

	var pt *metrics.ScalingPoint
	if withBase {
		base := results[1]
		bs := metrics.Sample{EnergyJoules: model.EstimateEnergy(&base.Counts), DelaySeconds: base.Seconds()}
		ss := metrics.Sample{EnergyJoules: model.EstimateEnergy(&res.Counts), DelaySeconds: res.Seconds()}
		p := metrics.Derive(bs, cfg.GPMs, ss)
		pt = &p
	}

	if *jsonOut {
		if err := writeJSON(os.Stdout, app.Name, cfg, model, res, pt); err != nil {
			fatal(err)
		}
		return
	}
	printRun(app.Name, cfg, model, res)
	if pt != nil {
		fmt.Printf("\nscaling vs 1-GPM: %v\n", *pt)
	}
}

// summary is the -json output schema.
type summary struct {
	Workload    string                `json:"workload"`
	Config      string                `json:"config"`
	GPMs        int                   `json:"gpms"`
	Cycles      uint64                `json:"cycles"`
	Seconds     float64               `json:"seconds"`
	EnergyJ     float64               `json:"energy_joules"`
	AvgPowerW   float64               `json:"avg_power_watts"`
	Launches    int                   `json:"launches"`
	L1HitRate   float64               `json:"l1_hit_rate"`
	L2HitRate   float64               `json:"l2_hit_rate"`
	RemoteFills float64               `json:"remote_fill_fraction"`
	Breakdown   map[string]float64    `json:"energy_breakdown_joules"`
	Txns        map[string]uint64     `json:"transactions"`
	Scaling     *metrics.ScalingPoint `json:"scaling_vs_1gpm,omitempty"`
	// FreqMHz/VoltageV record a non-nominal DVFS operating point
	// (absent at the nominal 1000 MHz, keeping the legacy schema).
	FreqMHz  float64 `json:"freq_mhz,omitempty"`
	VoltageV float64 `json:"voltage_v,omitempty"`
}

func writeJSON(w *os.File, app string, cfg sim.Config, model *core.Model, res *sim.Result, pt *metrics.ScalingPoint) error {
	b := model.Estimate(&res.Counts)
	out := summary{
		Workload:    app,
		Config:      cfg.Name(),
		GPMs:        cfg.GPMs,
		Cycles:      res.Counts.Cycles,
		Seconds:     res.Seconds(),
		EnergyJ:     b.Total(),
		AvgPowerW:   b.AveragePower(),
		Launches:    len(res.Launches),
		L1HitRate:   res.L1HitRate(),
		L2HitRate:   res.L2HitRate(),
		RemoteFills: res.RemoteFillFraction(),
		Breakdown: map[string]float64{
			"compute":  b.Compute,
			"stall":    b.Stall,
			"constant": b.Constant,
			"shm_rf":   b.ShmToRF,
			"l1_rf":    b.L1ToRF,
			"l2_l1":    b.L2ToL1,
			"dram_l2":  b.DRAMToL2,
			"intergpm": b.InterGPM,
		},
		Txns:    make(map[string]uint64, isa.NumTxnKinds),
		Scaling: pt,
	}
	if cfg.ClockHz != 0 || cfg.VoltageV != 0 {
		p := dvfs.PointOf(cfg)
		out.FreqMHz, out.VoltageV = p.MHz(), p.Voltage
	}
	for k := 0; k < isa.NumTxnKinds; k++ {
		kind := isa.TxnKind(k)
		if n := res.Counts.Txn[kind]; n > 0 {
			out.Txns[kind.String()] = n
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// pickPoint resolves the run's operating point: -freq under the fixed
// policy, or the governor's choice after evaluating every curve point
// through the engine.
func pickPoint(eng *runner.Engine, app *trace.App, scale float64, cfg sim.Config,
	governor string, freqMHz, deadline float64) (dvfs.OperatingPoint, *dvfs.Decision, error) {
	curve := dvfs.K40Curve()
	if governor == "fixed" {
		if freqMHz == 0 {
			return dvfs.Nominal(), nil, nil
		}
		p, err := curve.AtMHz(freqMHz)
		return p, nil, err
	}
	if freqMHz != 0 {
		return dvfs.Nominal(), nil, fmt.Errorf("-governor %s picks its own frequency; drop -freq", governor)
	}
	var gov dvfs.Governor
	switch governor {
	case "sweetspot":
		gov = dvfs.SweetSpot{}
	case "racetoidle":
		m := core.ProjectionModel(linksFor(cfg))
		gov = dvfs.RaceToIdle{IdleWatts: dvfs.DeepIdleFraction * m.ConstantPowerTotal(cfg.GPMs)}
	case "pacetofinish":
		gov = dvfs.PaceToFinish{DeadlineSeconds: deadline}
	default:
		return dvfs.Nominal(), nil, fmt.Errorf("unknown -governor %q (fixed, sweetspot, racetoidle, pacetofinish)", governor)
	}
	d, err := gov.Decide(curve, func(p dvfs.OperatingPoint) (dvfs.Metrics, error) {
		c := dvfs.Apply(cfg, p)
		r, err := eng.One(context.Background(), runner.Point{App: app, Scale: scale, Config: c})
		if err != nil {
			return dvfs.Metrics{}, err
		}
		m := dvfs.ScaleForConfig(core.ProjectionModel(linksFor(c)), c)
		return dvfs.Metrics{Point: p, Energy: m.EstimateEnergy(&r.Counts), Seconds: r.Seconds()}, nil
	})
	if err != nil {
		return dvfs.Nominal(), nil, err
	}
	return d.Point, &d, nil
}

func buildConfig(gpms int, bw, topo string, mono bool) (sim.Config, error) {
	var setting sim.BWSetting
	switch bw {
	case "1x":
		setting = sim.BW1x
	case "2x":
		setting = sim.BW2x
	case "4x":
		setting = sim.BW4x
	default:
		return sim.Config{}, fmt.Errorf("unknown bandwidth setting %q (want 1x, 2x, or 4x)", bw)
	}
	cfg := sim.MultiGPM(gpms, setting)
	switch topo {
	case "ring":
	case "switch":
		cfg.Topology = interconnect.TopologySwitch
		cfg.Domain = sim.DomainOnBoard
	default:
		return sim.Config{}, fmt.Errorf("unknown topology %q (want ring or switch)", topo)
	}
	cfg.Monolithic = mono
	return cfg, nil
}

func linksFor(cfg sim.Config) core.LinkEnergyConfig {
	if cfg.Domain == sim.DomainOnPackage {
		return core.OnPackageLinks()
	}
	return core.OnBoardLinks()
}

func printRun(app string, cfg sim.Config, model *core.Model, res *sim.Result) {
	b := model.Estimate(&res.Counts)
	fmt.Printf("workload:   %s on %s\n", app, cfg.Name())
	fmt.Printf("time:       %.3f ms (%d launches)\n", res.Seconds()*1e3, len(res.Launches))
	fmt.Printf("energy:     %.4f J (avg power %.1f W)\n", b.Total(), b.AveragePower())
	fmt.Printf("caches:     L1 hit %.1f%%  L2 hit %.1f%%  remote fills %.1f%%\n",
		res.L1HitRate()*100, res.L2HitRate()*100, res.RemoteFillFraction()*100)
	fmt.Printf("breakdown:  compute %.3f J | stall %.3f J | const %.3f J\n",
		b.Compute, b.Stall, b.Constant)
	fmt.Printf("            shm->RF %.3f J | L1->RF %.3f J | L2->L1 %.3f J | DRAM->L2 %.3f J | inter-GPM %.3f J\n",
		b.ShmToRF, b.L1ToRF, b.L2ToL1, b.DRAMToL2, b.InterGPM)
	fmt.Printf("traffic:    DRAM %.1f MB  inter-GPM %.1f MB (%d switch sectors)\n",
		mb(res.Counts.TotalTransactionBytes(isa.TxnDRAMToL2)),
		mb(res.Counts.TotalTransactionBytes(isa.TxnInterGPM)),
		res.Counts.Txn[isa.TxnSwitch])
}

func mb(b uint64) float64 { return float64(b) / (1 << 20) }

// usageHint maps the simulator's typed configuration errors to the flag
// the user should fix.
func usageHint(err error) string {
	switch {
	case errors.Is(err, sim.ErrBadGPMCount):
		return "use -gpms with a positive module count (1, 2, 4, 8, 16, or 32)"
	case errors.Is(err, sim.ErrBadSMCount):
		return "the configuration needs at least one SM per module"
	case errors.Is(err, sim.ErrBadCacheSize):
		return "L1 and L2 capacities must be positive"
	case errors.Is(err, sim.ErrBadBandwidth):
		return "use -bw 1x, 2x, or 4x for a positive link bandwidth"
	case errors.Is(err, sim.ErrBadFrequency):
		return "the clock must be a positive, finite frequency in Hz"
	case errors.Is(err, sim.ErrBadVoltage):
		return "the supply voltage must be a positive, finite value in volts"
	case errors.Is(err, dvfs.ErrOffCurve):
		return "pick -freq from the K40 V/f curve (600, 700, 800, 900, 1000, 1100, or 1200 MHz)"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpmsim:", err)
	if hint := usageHint(err); hint != "" {
		fmt.Fprintln(os.Stderr, "gpmsim: hint:", hint)
	}
	os.Exit(1)
}
