// Command gpujoule applies the GPUJoule energy model (Eq. 4) to a
// workload's event counts and prints the component-wise breakdown —
// the model alone, decoupled from any particular simulator, as the
// paper's top-down methodology intends.
//
// Usage:
//
//	gpujoule -workload Kmeans [-gpms 1] [-scale f] [-model k40|onboard|onpackage]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"gpujoule/internal/core"
	"gpujoule/internal/isa"
	"gpujoule/internal/sim"
	"gpujoule/internal/workloads"
)

func main() {
	name := flag.String("workload", "Kmeans", "Table II workload name")
	gpms := flag.Int("gpms", 1, "number of GPU modules")
	scale := flag.Float64("scale", 0.5, "workload scale factor")
	modelName := flag.String("model", "k40", "energy model: k40, onboard, or onpackage")
	flag.Parse()

	var model *core.Model
	switch *modelName {
	case "k40":
		model = core.K40Model()
	case "onboard":
		model = core.ProjectionModel(core.OnBoardLinks())
	case "onpackage":
		model = core.ProjectionModel(core.OnPackageLinks())
	default:
		fatal(fmt.Errorf("unknown model %q (want k40, onboard, or onpackage)", *modelName))
	}

	app, err := workloads.ByName(*name, workloads.Params{Scale: *scale})
	if err != nil {
		fatal(err)
	}
	res, err := sim.Simulate(context.Background(), sim.MultiGPM(*gpms, sim.BW2x), app)
	if err != nil {
		fatal(err)
	}

	c := &res.Counts
	b := model.Estimate(c)
	fmt.Printf("model %s on %s (%d GPMs)\n\n", model.Name, app.Name, *gpms)

	fmt.Println("event counts:")
	for op := isa.Op(0); int(op) < isa.NumOps; op++ {
		if c.Inst[op] > 0 {
			fmt.Printf("  inst %-10v %14d (warp %d)\n", op, c.Inst[op], c.WarpInst[op])
		}
	}
	for k := isa.TxnKind(0); int(k) < isa.NumTxnKinds; k++ {
		if c.Txn[k] > 0 {
			fmt.Printf("  txn  %-14v %12d (%d bytes)\n", k, c.Txn[k], c.TotalTransactionBytes(k))
		}
	}
	fmt.Printf("  stalls %d SM-cycles, time %d cycles\n\n", c.StallCycles, c.Cycles)

	fmt.Println("Eq. 4 energy breakdown:")
	fmt.Printf("  SM pipeline (busy)   %10.4f J\n", b.Compute)
	fmt.Printf("  SM pipeline (idle)   %10.4f J\n", b.Stall)
	fmt.Printf("  constant overhead    %10.4f J\n", b.Constant)
	fmt.Printf("  SharedMem->RF        %10.4f J\n", b.ShmToRF)
	fmt.Printf("  L1->RF               %10.4f J\n", b.L1ToRF)
	fmt.Printf("  L2->L1               %10.4f J\n", b.L2ToL1)
	fmt.Printf("  DRAM->L2             %10.4f J\n", b.DRAMToL2)
	fmt.Printf("  inter-GPM            %10.4f J\n", b.InterGPM)
	fmt.Printf("  total                %10.4f J  (%.1f W over %.3f ms)\n",
		b.Total(), b.AveragePower(), b.Seconds*1e3)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpujoule:", err)
	os.Exit(1)
}
