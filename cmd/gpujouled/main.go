// Command gpujouled is the resident simulation service: a long-running
// daemon that accepts sweep jobs over HTTP, runs them on one shared
// run engine, and answers from a persistent content-addressed result
// cache — a warm point never simulates again, across requests and
// across restarts.
//
// Usage:
//
//	gpujouled [-addr :8344] [-cache dir] [-workers n] [-counters]
//	          [-queue n] [-executors n] [-tenants alice=3,bob=1]
//	          [-drain-timeout 5m] [-version]
//
// Jobs are decomposed into grid points and scheduled point-by-point:
// weighted-fair across tenants (the X-Tenant request header; -tenants
// configures weights as name=weight[:maxinflight], unlisted tenants
// get weight 1), with job priorities preempting losslessly at point
// boundaries.
//
// The API (see DESIGN.md §The gpujouled service):
//
//	POST   /v1/jobs             submit a sweep job (JSON spec; X-Tenant header)
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result deterministic result document (?partial=1 while running)
//	GET    /v1/jobs/{id}/events live SSE event stream
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/version          build + schema versions
//
// plus the shared introspection plane: /progress, /metrics (with
// cache-hit/miss/coalesce, queue-depth, per-tenant scheduler, and
// preemption series), and /debug/pprof.
//
// On SIGINT/SIGTERM the daemon drains gracefully: admission stops
// (503), queued and running jobs complete, then the process exits. A
// second signal — or the -drain-timeout deadline — aborts in-flight
// work instead.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gpujoule/internal/profiling"
	"gpujoule/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gpujouled:", err)
		os.Exit(1)
	}
}

// parseTenants parses the -tenants flag: a comma-separated list of
// name=weight or name=weight:maxinflight entries.
func parseTenants(s string) (map[string]service.TenantConfig, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]service.TenantConfig{}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, val, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenants: %q is not name=weight[:maxinflight]", entry)
		}
		wstr, istr, hasCap := strings.Cut(val, ":")
		cfg := service.TenantConfig{}
		var err error
		if cfg.Weight, err = strconv.Atoi(wstr); err != nil || cfg.Weight < 1 {
			return nil, fmt.Errorf("-tenants: %q: weight must be a positive integer", entry)
		}
		if hasCap {
			if cfg.MaxInflight, err = strconv.Atoi(istr); err != nil || cfg.MaxInflight < 0 {
				return nil, fmt.Errorf("-tenants: %q: maxinflight must be a non-negative integer", entry)
			}
		}
		out[name] = cfg
	}
	return out, nil
}

func run() error {
	addr := flag.String("addr", ":8344", "listen address")
	cacheDir := flag.String("cache", "gpujouled-cache", "result cache directory (empty disables persistence)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = one per CPU)")
	counters := flag.Bool("counters", false, "simulate every point with per-GPM/per-link observability counters")
	queueCap := flag.Int("queue", 16, "admission queue capacity (jobs beyond it get 429)")
	executors := flag.Int("executors", 2, "concurrently executing points")
	tenants := flag.String("tenants", "", "per-tenant scheduler config: name=weight[:maxinflight],... (unlisted tenants get weight 1)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Minute, "how long a graceful drain may take before aborting")
	version := flag.Bool("version", false, "print schema and module version, then exit")
	flag.Parse()

	if *version {
		fmt.Println(profiling.VersionString("gpujouled"))
		return nil
	}

	tcfg, err := parseTenants(*tenants)
	if err != nil {
		return err
	}

	logger := log.New(os.Stderr, "gpujouled: ", log.LstdFlags)
	srv, err := service.New(service.Options{
		Workers:   *workers,
		Counters:  *counters,
		CacheDir:  *cacheDir,
		QueueCap:  *queueCap,
		Executors: *executors,
		Tenants:   tcfg,
		Logf:      logger.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	logger.Printf("listening on http://%s/ (cache %q, stamp %q)", ln.Addr(), *cacheDir, service.CacheStamp())
	if c := srv.Cache(); c != nil {
		if n, err := c.Len(); err == nil {
			logger.Printf("result cache holds %d entries", n)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admission, let queued and running jobs
	// finish. A second signal (stop() restored default handling would
	// kill us anyway) or the timeout falls back to a hard close.
	logger.Printf("draining (timeout %s)...", *drainTimeout)
	stop()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		logger.Printf("%v; aborting in-flight jobs", err)
		srv.Close()
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("drained, bye")
	return nil
}
