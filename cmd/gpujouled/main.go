// Command gpujouled is the resident simulation service: a long-running
// daemon that accepts sweep jobs over HTTP, runs them on one shared
// run engine, and answers from a persistent content-addressed result
// cache — a warm point never simulates again, across requests and
// across restarts.
//
// Usage:
//
//	gpujouled [-addr :8344] [-cache dir] [-workers n] [-counters]
//	          [-queue n] [-keep-jobs n] [-executors n] [-tenants alice=3,bob=1]
//	          [-peers url1,url2,... -self url | -gateway]
//	          [-vnodes 64] [-peer-timeout 5s] [-no-replicate]
//	          [-drain-timeout 5m] [-version]
//
// Cluster mode. With -peers (a comma-separated list of every node's
// base URL) and -self (this node's own URL from that list), the daemon
// joins a consistent-hash cluster: simulation keys are owned by ring
// position, a local cache miss consults the key's owner and replica
// before recomputing (joining in-flight computations, so a hot key
// computes once cluster-wide), fresh results replicate to the ring
// successor, and submissions wholly owned by another healthy node are
// answered with a 307 to it. With -gateway (plus -peers), the daemon
// instead fronts the cluster: incoming sweeps are split into per-owner
// point batches, fanned out, streamed as one merged SSE feed, and
// reassembled into the byte-identical result document a single node
// would produce; points are computed locally when no healthy owner
// remains. Without -peers everything behaves exactly as a single node.
//
// Jobs are decomposed into grid points and scheduled point-by-point:
// weighted-fair across tenants (the X-Tenant request header; -tenants
// configures weights as name=weight[:maxinflight], unlisted tenants
// get weight 1), with job priorities preempting losslessly at point
// boundaries.
//
// The API (see DESIGN.md §The gpujouled service):
//
//	POST   /v1/jobs             submit a sweep job (JSON spec; X-Tenant header)
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result deterministic result document (?partial=1 while running)
//	GET    /v1/jobs/{id}/events live SSE event stream
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/version          build + schema versions
//
// plus the shared introspection plane: /progress, /metrics (with
// cache-hit/miss/coalesce, queue-depth, per-tenant scheduler, and
// preemption series), and /debug/pprof.
//
// On SIGINT/SIGTERM the daemon drains gracefully: admission stops
// (503), queued and running jobs complete, then the process exits. A
// second signal — or the -drain-timeout deadline — aborts in-flight
// work instead.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gpujoule/internal/cluster"
	"gpujoule/internal/profiling"
	"gpujoule/internal/service"
	"gpujoule/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gpujouled:", err)
		os.Exit(1)
	}
}

// parseTenants parses the -tenants flag: a comma-separated list of
// name=weight or name=weight:maxinflight entries.
func parseTenants(s string) (map[string]service.TenantConfig, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]service.TenantConfig{}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, val, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenants: %q is not name=weight[:maxinflight]", entry)
		}
		wstr, istr, hasCap := strings.Cut(val, ":")
		cfg := service.TenantConfig{}
		var err error
		if cfg.Weight, err = strconv.Atoi(wstr); err != nil || cfg.Weight < 1 {
			return nil, fmt.Errorf("-tenants: %q: weight must be a positive integer", entry)
		}
		if hasCap {
			if cfg.MaxInflight, err = strconv.Atoi(istr); err != nil || cfg.MaxInflight < 0 {
				return nil, fmt.Errorf("-tenants: %q: maxinflight must be a non-negative integer", entry)
			}
		}
		out[name] = cfg
	}
	return out, nil
}

func run() error {
	addr := flag.String("addr", ":8344", "listen address")
	cacheDir := flag.String("cache", "gpujouled-cache", "result cache directory (empty disables persistence)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = one per CPU)")
	counters := flag.Bool("counters", false, "simulate every point with per-GPM/per-link observability counters")
	queueCap := flag.Int("queue", 16, "admission queue capacity (jobs beyond it get 429)")
	keepJobs := flag.Int("keep-jobs", 0, "retained terminal job records (0 = max(64, -queue); raise it when a gateway fans thousands of sub-jobs through this node)")
	executors := flag.Int("executors", 2, "concurrently executing points")
	gpmParallel := flag.Int("gpm-parallel", 1, "per-simulation GPM lanes, clamped so lanes*executors <= GOMAXPROCS (results are byte-identical at any value)")
	tenants := flag.String("tenants", "", "per-tenant scheduler config: name=weight[:maxinflight],... (unlisted tenants get weight 1)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Minute, "how long a graceful drain may take before aborting")
	peers := flag.String("peers", "", "comma-separated base URLs of every cluster node (empty = single-node)")
	self := flag.String("self", "", "this node's own base URL as it appears in -peers (required with -peers unless -gateway)")
	gateway := flag.Bool("gateway", false, "front the -peers cluster: split sweeps by ring owner, fan out, merge streams")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per physical node on the hash ring")
	peerTimeout := flag.Duration("peer-timeout", 5*time.Second, "per-peer cache request timeout (includes in-flight waits)")
	noReplicate := flag.Bool("no-replicate", false, "disable pushing fresh results to the key's ring owner and successor")
	gatewayQueue := flag.Int("gateway-queue", 512, "concurrently admitted parent jobs in gateway mode")
	freqMHz := flag.Float64("freq", 0, "default K40 V/f-curve operating point in MHz for grid jobs that did not pick one (0 = nominal 1000)")
	version := flag.Bool("version", false, "print schema and module version, then exit")
	flag.Parse()

	if *version {
		fmt.Println(profiling.VersionString("gpujouled"))
		return nil
	}

	tcfg, err := parseTenants(*tenants)
	if err != nil {
		return err
	}

	logger := log.New(os.Stderr, "gpujouled: ", log.LstdFlags)

	nodeList := sim.SplitList(*peers)
	if *gateway && len(nodeList) == 0 {
		return errors.New("-gateway needs -peers")
	}
	if len(nodeList) > 0 && !*gateway && *self == "" {
		return errors.New("-peers needs -self (this node's URL from the list) unless -gateway is set")
	}

	// The fabric exists before the server so its hooks can be wired
	// into service.Options; a gateway is not a ring member (Self "").
	var fab *cluster.Fabric
	if len(nodeList) > 0 {
		fself := *self
		if *gateway {
			fself = ""
		}
		var ferr error
		fab, ferr = cluster.NewFabric(cluster.Options{
			Self:        fself,
			Nodes:       nodeList,
			VNodes:      *vnodes,
			PeerTimeout: *peerTimeout,
			NoReplicate: *noReplicate,
			Logf:        logger.Printf,
		})
		if ferr != nil {
			return ferr
		}
		defer fab.Close()
	}

	// Terminal-job retention must outlast the admission queue: a
	// gateway reads a sub-job's events after it finishes, so a node
	// that admits N concurrent jobs but remembers only 64 would prune
	// results before they are collected.
	kj := *keepJobs
	if kj <= 0 {
		kj = *queueCap
		if kj < 64 {
			kj = 64
		}
	}

	sopts := service.Options{
		Workers:        *workers,
		Counters:       *counters,
		CacheDir:       *cacheDir,
		QueueCap:       *queueCap,
		Executors:      *executors,
		GPMParallel:    *gpmParallel,
		Tenants:        tcfg,
		KeepJobs:       kj,
		Logf:           logger.Printf,
		DefaultFreqMHz: *freqMHz,
	}
	if fab != nil && !*gateway {
		sopts.Cluster = fab.Hooks()
	}
	srv, err := service.New(sopts)
	if err != nil {
		return err
	}

	handler := srv.Handler()
	if fab != nil && !*gateway {
		srv.AddMetrics(fab.WriteMetrics)
		logger.Printf("cluster node %s in ring %v", *self, fab.Ring().Nodes())
	}
	if *gateway {
		gw := cluster.NewGateway(srv, fab, cluster.GatewayOptions{
			MaxJobs:  *gatewayQueue,
			KeepJobs: *gatewayQueue,
			Logf:     logger.Printf,
		})
		handler = gw.Handler()
		logger.Printf("gateway fronting ring %v", fab.Ring().Nodes())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	logger.Printf("listening on http://%s/ (cache %q, stamp %q)", ln.Addr(), *cacheDir, service.CacheStamp())
	if c := srv.Cache(); c != nil {
		if n, err := c.Len(); err == nil {
			logger.Printf("result cache holds %d entries", n)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admission, let queued and running jobs
	// finish. A second signal (stop() restored default handling would
	// kill us anyway) or the timeout falls back to a hard close.
	logger.Printf("draining (timeout %s)...", *drainTimeout)
	stop()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		logger.Printf("%v; aborting in-flight jobs", err)
		srv.Close()
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("drained, bye")
	return nil
}
