// Command loadgen drives a gpujouled node, cluster node, or gateway
// with many concurrent overlapping sweeps and reports a machine-
// readable load/correctness summary. It is the proof harness for the
// cluster: thousands of sweeps drawn deterministically from small
// workload/grid pools overlap heavily, so a healthy cluster serves
// most points from its caches (memo, disk, or a peer) and the report's
// cluster_hit_rate approaches 1. Every streamed sweep is checked for
// dropped and duplicated points; any of either fails the run.
//
// Usage:
//
//	loadgen [-server http://localhost:8344] [-sweeps 1200]
//	        [-concurrency 64] [-workloads Stream,Kmeans,BFS,Srad-v2]
//	        [-gpms 1,2] [-bw 1x,2x] [-scale 0.25] [-tenant load]
//	        [-min-hit-rate 0.5] [-o BENCH_cluster.json] [-progress]
//
// The exit status is nonzero when any sweep errored, dropped or
// duplicated a point, or the cluster-wide hit rate came in under
// -min-hit-rate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"gpujoule/internal/service"
	"gpujoule/internal/sim"
)

// report is the JSON document written by -o (and always printed as a
// one-line summary).
type report struct {
	Server      string  `json:"server"`
	Sweeps      int     `json:"sweeps"`
	Concurrency int     `json:"concurrency"`
	WallSeconds float64 `json:"wall_seconds"`
	SweepsPerS  float64 `json:"sweeps_per_second"`
	Points      int     `json:"points"`
	PointsPerS  float64 `json:"points_per_second"`

	Latency latencyStats `json:"latency_seconds"`

	// Sources splits resolved points by how the service satisfied
	// them; ClusterHitRate is the non-simulated fraction.
	Sources        map[string]int `json:"sources"`
	ClusterHitRate float64        `json:"cluster_hit_rate"`

	Retries429       int      `json:"retries_429"`
	DigestMismatches int      `json:"digest_mismatches"`
	DroppedPoints    int      `json:"dropped_points"`
	DuplicatePoints  int      `json:"duplicate_points"`
	Errors           int      `json:"errors"`
	ErrorSamples     []string `json:"error_samples,omitempty"`
}

type latencyStats struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// sweepOutcome is one worker's account of one finished sweep.
type sweepOutcome struct {
	seconds  float64
	points   int
	sources  map[string]int
	dropped  int
	dups     int
	mismatch int
	err      error
}

// specFor derives sweep i's job spec deterministically from the pools:
// a rotating one- or two-workload slice over the full GPM grid, with
// the bandwidth list alternating between one element and the whole
// pool. Consecutive indices overlap heavily — the point universe is
// |workloads|×|gpms|×|bws| while the sweep stream is unbounded — which
// is exactly the hot-cache regime the cluster is built for.
func specFor(i int, wls, gpms, bws []string, scale float64) service.JobSpec {
	w := []string{wls[i%len(wls)]}
	if i%3 != 0 {
		w = append(w, wls[(i+1)%len(wls)])
	}
	bw := bws
	if i%2 == 1 {
		bw = bws[i/2%len(bws) : i/2%len(bws)+1]
	}
	return service.JobSpec{
		Workloads: strings.Join(w, ","),
		Scale:     scale,
		GPMs:      strings.Join(gpms, ","),
		BWs:       strings.Join(bw, ","),
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	server := flag.String("server", "http://localhost:8344", "gpujouled (or gateway) base URL")
	sweeps := flag.Int("sweeps", 1200, "total sweeps to submit")
	concurrency := flag.Int("concurrency", 64, "concurrent in-flight sweeps")
	workloadsFlag := flag.String("workloads", "Stream,Kmeans,BFS,Srad-v2", "workload pool sweeps draw from")
	gpmsFlag := flag.String("gpms", "1,2", "GPM-count pool")
	bwFlag := flag.String("bw", "1x,2x", "bandwidth-scale pool")
	scale := flag.Float64("scale", 0.25, "workload scale factor (shared by every sweep)")
	tenant := flag.String("tenant", "load", "tenant header for submitted jobs")
	minHitRate := flag.Float64("min-hit-rate", 0, "fail when the cluster-wide hit rate ends below this fraction")
	out := flag.String("o", "", "write the JSON report here (empty = stdout only)")
	progress := flag.Bool("progress", false, "print live progress to stderr")
	flag.Parse()

	wls := sim.SplitList(*workloadsFlag)
	gpms := sim.SplitList(*gpmsFlag)
	bws := sim.SplitList(*bwFlag)
	if len(wls) == 0 || len(gpms) == 0 || len(bws) == 0 {
		return fmt.Errorf("-workloads, -gpms, and -bw must each be non-empty")
	}
	if *sweeps <= 0 {
		return fmt.Errorf("-sweeps must be positive")
	}
	if *concurrency <= 0 {
		*concurrency = 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One transport shared by every worker, sized so concurrency is
	// bounded by the flag rather than the connection pool.
	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *concurrency * 2,
		MaxIdleConnsPerHost: *concurrency * 2,
	}}

	var retries429 atomic.Int64
	newClient := func() (*service.Client, error) {
		return service.Dial(
			service.WithBaseURL(*server),
			service.WithTenant(*tenant),
			service.WithHTTPClient(hc),
			service.WithRetry(service.RetryPolicy{
				BaseDelay: 50 * time.Millisecond,
				MaxDelay:  2 * time.Second,
				Notify: func(err error, delay time.Duration) {
					retries429.Add(1)
				},
			}),
		)
	}

	idxCh := make(chan int)
	outCh := make(chan sweepOutcome, *concurrency)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := newClient()
			if err != nil {
				outCh <- sweepOutcome{err: err}
				return
			}
			for i := range idxCh {
				outCh <- runSweep(ctx, cl, specFor(i, wls, gpms, bws, *scale))
			}
		}()
	}
	go func() {
		defer close(idxCh)
		for i := 0; i < *sweeps; i++ {
			select {
			case idxCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() { wg.Wait(); close(outCh) }()

	rep := report{
		Server:      *server,
		Concurrency: *concurrency,
		Sources:     map[string]int{},
	}
	var latencies []float64
	start := time.Now()
	for oc := range outCh {
		rep.Sweeps++
		if oc.err != nil {
			rep.Errors++
			if len(rep.ErrorSamples) < 5 {
				rep.ErrorSamples = append(rep.ErrorSamples, oc.err.Error())
			}
			continue
		}
		rep.Points += oc.points
		rep.DroppedPoints += oc.dropped
		rep.DuplicatePoints += oc.dups
		rep.DigestMismatches += oc.mismatch
		for src, n := range oc.sources {
			rep.Sources[src] += n
		}
		latencies = append(latencies, oc.seconds)
		if *progress && rep.Sweeps%100 == 0 {
			fmt.Fprintf(os.Stderr, "loadgen: %d/%d sweeps, %d points, hit rate %.0f%%\n",
				rep.Sweeps, *sweeps, rep.Points, 100*hitRate(rep.Sources))
		}
	}
	wall := time.Since(start)

	rep.WallSeconds = wall.Seconds()
	if wall > 0 {
		rep.SweepsPerS = float64(rep.Sweeps) / wall.Seconds()
		rep.PointsPerS = float64(rep.Points) / wall.Seconds()
	}
	rep.Latency = summarize(latencies)
	rep.ClusterHitRate = hitRate(rep.Sources)
	rep.Retries429 = int(retries429.Load())

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
	}
	os.Stdout.Write(blob)

	switch {
	case ctx.Err() != nil:
		return fmt.Errorf("interrupted after %d sweeps", rep.Sweeps)
	case rep.Errors > 0:
		return fmt.Errorf("%d of %d sweeps failed (first: %s)", rep.Errors, rep.Sweeps, rep.ErrorSamples[0])
	case rep.DroppedPoints > 0 || rep.DuplicatePoints > 0:
		return fmt.Errorf("stream integrity: %d dropped, %d duplicated points", rep.DroppedPoints, rep.DuplicatePoints)
	case rep.ClusterHitRate < *minHitRate:
		return fmt.Errorf("cluster hit rate %.1f%% below the -min-hit-rate floor %.1f%%",
			100*rep.ClusterHitRate, 100**minHitRate)
	}
	return nil
}

// runSweep streams one sweep and audits it: every point index must be
// announced exactly once, and the final document must resolve every
// point. Sources are tallied from the event stream (the gateway's
// merged stream carries per-node sources the final status would hide).
func runSweep(ctx context.Context, cl *service.Client, spec service.JobSpec) sweepOutcome {
	oc := sweepOutcome{sources: map[string]int{}}
	seen := map[int]bool{}
	start := time.Now()
	doc, err := cl.RunSweepStream(ctx, spec, func(ev service.JobEvent) {
		switch ev.Kind {
		case service.EventPoint:
			if seen[ev.Index] {
				oc.dups++
			}
			seen[ev.Index] = true
			oc.sources[ev.Source]++
		case service.EventDigestMismatch:
			oc.mismatch++
		}
	})
	oc.seconds = time.Since(start).Seconds()
	if err != nil {
		oc.err = err
		return oc
	}
	oc.points = len(doc.Points)
	for i, pr := range doc.Points {
		if pr.Result == nil {
			oc.dropped++
			continue
		}
		if !seen[i] {
			// The stream omitted the point but the document has it —
			// count the stream drop, the document is still whole.
			oc.dropped++
		}
	}
	return oc
}

// hitRate is the fraction of points the cluster did not have to
// simulate for this job: cache, coalesced, and peer sources combined.
func hitRate(sources map[string]int) float64 {
	total := 0
	for _, n := range sources {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(total-sources["simulated"]) / float64(total)
}

// summarize computes the latency percentiles over a copy.
func summarize(lat []float64) latencyStats {
	if len(lat) == 0 {
		return latencyStats{}
	}
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	pct := func(p float64) float64 {
		idx := int(math.Ceil(p*float64(len(s)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return latencyStats{
		P50:  pct(0.50),
		P90:  pct(0.90),
		P99:  pct(0.99),
		Max:  s[len(s)-1],
		Mean: sum / float64(len(s)),
	}
}
