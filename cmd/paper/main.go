// Command paper regenerates every table and figure of the paper's
// evaluation: the §IV calibration/validation experiments (Table Ib,
// Fig. 4a/4b) and the §V multi-module scaling study (Figs. 2 and 6-10
// plus the link-energy, amortization, and headline point studies).
//
// Usage:
//
//	paper [-scale f] [-only name] [-list] [-workers n] [-progress]
//	      [-trace out.trace.json[.gz]]
//
// With -only, a single experiment is regenerated; names are table1b,
// fig2, fig4, fig6, fig7, fig8, fig9, fig10, table3, table4,
// linkenergy, amortization, headline, energyattr. The default runs
// everything (tens of minutes at -scale 1).
//
// The DVFS studies (-only sweetspot, racetoidle, roofline) are not part
// of the default report, so the nominal -markdown record stays
// byte-stable. -freq pins the whole evaluation to a K40-curve operating
// point (see internal/dvfs); -governor fixed is the only whole-report
// policy — the adaptive policies are per-workload studies.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpujoule/internal/dvfs"
	"gpujoule/internal/harness"
	"gpujoule/internal/obs"
	"gpujoule/internal/profiling"
	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
)

func main() {
	prof := profiling.AddFlags()
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper scale)")
	only := flag.String("only", "", "regenerate a single experiment (see -list)")
	markdown := flag.Bool("markdown", false, "emit the EXPERIMENTS.md reproduction record instead of plain tables")
	tables := flag.String("tables", "", "with -markdown: also write the plain-table report to this file")
	csvDir := flag.String("csvdir", "", "with -markdown: also write each experiment's data as CSV into this directory")
	list := flag.Bool("list", false, "list experiment names and exit")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = one per CPU)")
	gpmParallel := flag.Int("gpm-parallel", 1, "per-simulation GPM lanes (>1 parallelizes inside each run; output is byte-identical at any value)")
	traceOut := flag.String("trace", "", "write a multi-point Chrome trace_event timeline of every distinct simulation to this file (.gz compresses)")
	freqMHz := flag.Float64("freq", 0, "run the whole evaluation at this K40 V/f-curve frequency in MHz (0 = nominal 1000)")
	governor := flag.String("governor", "fixed", `operating-point policy for the whole report; only "fixed" applies here (for adaptive policies see -only sweetspot / racetoidle)`)
	progress := flag.Bool("progress", false, "report simulation progress on stderr")
	version := flag.Bool("version", false, "print schema and module version, then exit")
	flag.Parse()

	if *version {
		fmt.Println(profiling.VersionString("paper"))
		return
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
	defer stopProf()

	names := []string{"table3", "table4", "table1b", "fig2", "fig4", "fig6",
		"fig7", "fig8", "fig9", "fig10", "linkenergy", "amortization", "headline", "ablation", "metrics", "perworkload",
		"threshold", "weakscaling", "fidelity", "energyattr", "sweetspot", "racetoidle", "roofline"}
	if *list {
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	if *governor != "fixed" {
		fmt.Fprintf(os.Stderr, "paper: unknown -governor %q (only \"fixed\" applies to the whole report; "+
			"run the adaptive policies with -only sweetspot or -only racetoidle)\n", *governor)
		os.Exit(1)
	}
	opts := harness.Options{Scale: *scale, Workers: *workers, GPMParallel: *gpmParallel, Trace: *traceOut != ""}
	if *freqMHz != 0 {
		p, err := dvfs.K40Curve().AtMHz(*freqMHz)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		opts.OperatingPoint = p
	}
	if *progress {
		opts.OnEvent = func(ev runner.Event) {
			if ev.Kind == runner.PointDone && ev.Err == nil && !ev.CacheHit {
				fmt.Fprintf(os.Stderr, "paper: %d/%d %s (%.2fs)\n",
					ev.Completed, ev.Total, ev.Point, ev.Elapsed.Seconds())
			}
		}
	}
	h := harness.NewWithOptions(opts)
	// writeTrace renders every traced point on the successful exit
	// paths; -trace without traced points (all errors) is itself an
	// error.
	writeTrace := func() {
		if *traceOut == "" {
			return
		}
		pts := h.Engine().Traces()
		if len(pts) == 0 {
			fmt.Fprintln(os.Stderr, "paper: no traced points to write")
			os.Exit(1)
		}
		if err := obs.WriteChromeTracesFile(*traceOut, pts); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "paper: wrote %d traced points to %s\n", len(pts), *traceOut)
	}
	// On every successful exit, -progress closes with the run engine's
	// execution profile (worker occupancy, cache savings, slowest point).
	defer func() {
		if *progress {
			fmt.Fprintf(os.Stderr, "paper: profile %s\n", h.Engine().Profile())
		}
	}()
	out := os.Stdout

	run := func(name string) error {
		switch name {
		case "table3":
			return harness.TableIII().Fprint(out)
		case "table4":
			return harness.TableIV().Fprint(out)
		case "table1b", "fig4":
			v, err := h.Validate()
			if err != nil {
				return err
			}
			for _, t := range harness.ValidationTables(v) {
				if err := t.Fprint(out); err != nil {
					return err
				}
			}
			return nil
		case "fig2":
			rows, err := h.Figure2()
			if err != nil {
				return err
			}
			return harness.Fig2Table(rows).Fprint(out)
		case "fig6":
			rows, err := h.Figure6()
			if err != nil {
				return err
			}
			return harness.Fig6Table(rows).Fprint(out)
		case "fig7":
			rows, err := h.Figure7()
			if err != nil {
				return err
			}
			return harness.Fig7Table(rows).Fprint(out)
		case "fig8":
			rows, err := h.Figure8()
			if err != nil {
				return err
			}
			return harness.Fig8Table(rows).Fprint(out)
		case "fig9":
			rows, err := h.Figure9()
			if err != nil {
				return err
			}
			return harness.Fig9Table(rows).Fprint(out)
		case "fig10":
			rows, err := h.Figure10()
			if err != nil {
				return err
			}
			return harness.Fig10Table(rows).Fprint(out)
		case "linkenergy":
			r, err := h.LinkEnergyStudy()
			if err != nil {
				return err
			}
			return harness.LinkEnergyTable(r).Fprint(out)
		case "amortization":
			r, err := h.AmortizationStudy()
			if err != nil {
				return err
			}
			return harness.AmortizationTable(r).Fprint(out)
		case "headline":
			r, err := h.HeadlineStudy()
			if err != nil {
				return err
			}
			return harness.HeadlineTable(r).Fprint(out)
		case "ablation":
			r, err := h.AblationStudy()
			if err != nil {
				return err
			}
			return harness.AblationTable(r).Fprint(out)
		case "metrics":
			rows, err := h.MetricsStudy()
			if err != nil {
				return err
			}
			return harness.MetricsTable(rows).Fprint(out)
		case "fidelity":
			r, err := h.FidelityStudy()
			if err != nil {
				return err
			}
			return harness.FidelityTable(r).Fprint(out)
		case "threshold":
			rows, err := h.EfficientScaleStudy(50)
			if err != nil {
				return err
			}
			return harness.EfficientScaleTable(rows, 50).Fprint(out)
		case "weakscaling":
			rows, err := h.WeakScalingStudy()
			if err != nil {
				return err
			}
			return harness.WeakScalingTable(rows).Fprint(out)
		case "energyattr":
			t, err := h.EnergyAttributionStudy()
			if err != nil {
				return err
			}
			return t.Fprint(out)
		case "sweetspot":
			r, err := h.SweetSpotStudy(1, nil, "")
			if err != nil {
				return err
			}
			return r.Table().Fprint(out)
		case "racetoidle":
			r, err := h.RaceToIdleStudy()
			if err != nil {
				return err
			}
			return r.Table().Fprint(out)
		case "roofline":
			r, err := h.EnergyRooflineStudy(nil)
			if err != nil {
				return err
			}
			return r.Table().Fprint(out)
		case "perworkload":
			t, err := h.PerWorkloadEDPSE()
			if err != nil {
				return err
			}
			if err := t.Fprint(out); err != nil {
				return err
			}
			t, err = h.PerWorkloadScaling(32, sim.BW2x)
			if err != nil {
				return err
			}
			return t.Fprint(out)
		default:
			return fmt.Errorf("unknown experiment %q (try -list)", name)
		}
	}

	if *markdown {
		rep, err := h.BuildReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		if err := rep.WriteMarkdown(out); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		if *tables != "" {
			f, err := os.Create(*tables)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paper:", err)
				os.Exit(1)
			}
			if err := rep.WriteTables(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "paper:", err)
				os.Exit(1)
			}
			fmt.Fprintf(f, "(%d distinct simulations at scale %g)\n", h.Runs(), *scale)
			f.Close()
		}
		if *csvDir != "" {
			if err := rep.WriteCSVDir(*csvDir); err != nil {
				fmt.Fprintln(os.Stderr, "paper:", err)
				os.Exit(1)
			}
		}
		writeTrace()
		return
	}
	if *only != "" {
		if err := run(*only); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		writeTrace()
		return
	}
	if err := h.RunAll(out); err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
	fmt.Fprintf(out, "(%d distinct simulations at scale %g)\n", h.Runs(), *scale)
	writeTrace()
}
