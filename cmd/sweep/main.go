// Command sweep runs workloads across a grid of multi-module designs
// and emits one CSV row per (workload, design) point: performance,
// cache behaviour, traffic, energy, and scaling metrics. It is the
// data-export tool behind custom analyses and plots.
//
// The grid executes through the shared run engine (internal/runner):
// points run across a worker pool, duplicates are memoized, and rows
// come out in deterministic grid order regardless of completion order.
//
// Usage:
//
//	sweep [-workloads Stream,Lulesh-150 | -all] [-gpms 1,2,4,8,16,32]
//	      [-bw 1x,2x,4x] [-topologies ring,switch] [-scale f] [-o out.csv]
//	      [-workers n] [-progress] [-counters out.json] [-trace out.trace.json]
//	      [-httpaddr :8080] [-version]
//
// With -counters, every point is simulated with per-GPM/per-link
// observability counters (internal/obs) and the full snapshot set plus
// the run engine's execution profile and the exact per-GPM/per-term/
// per-link energy attribution is written as JSON; the CSV is unchanged.
// With -trace, every point additionally records a timeline and the
// whole grid is written as one Chrome trace_event file (load it in
// chrome://tracing or https://ui.perfetto.dev, one process per point).
// With -httpaddr, the process serves live introspection while the
// sweep runs: /progress, Prometheus /metrics, and /debug/pprof. The
// JSON schemas are documented in DESIGN.md §Observability.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gpujoule/internal/core"
	"gpujoule/internal/isa"
	"gpujoule/internal/metrics"
	"gpujoule/internal/obs"
	"gpujoule/internal/profiling"
	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
	"gpujoule/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	prof := profiling.AddFlags()
	names := flag.String("workloads", "Stream,Kmeans,Lulesh-150,MiniAMR", "comma-separated Table II workloads")
	all := flag.Bool("all", false, "sweep the full 14-workload evaluation subset")
	gpms := flag.String("gpms", "1,2,4,8,16,32", "comma-separated module counts")
	bws := flag.String("bw", "1x,2x,4x", "comma-separated bandwidth settings")
	topos := flag.String("topologies", "ring", "comma-separated topologies (ring, switch)")
	scale := flag.Float64("scale", 0.5, "workload scale factor")
	out := flag.String("o", "", "output file (default stdout)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = one per CPU)")
	progress := flag.Bool("progress", false, "report point progress on stderr")
	countersOut := flag.String("counters", "", "write per-GPM/per-link counters + energy attribution JSON to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event timeline of every point to this file")
	httpAddr := flag.String("httpaddr", "", "serve live introspection (pprof, /progress, /metrics) on this address")
	version := flag.Bool("version", false, "print schema and module version, then exit")
	flag.Parse()

	if *version {
		fmt.Println(profiling.VersionString("sweep"))
		return nil
	}

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	params := workloads.Params{Scale: *scale}
	var apps []*trace.App
	if *all {
		apps = workloads.Eval14(params)
	} else {
		for _, name := range sim.SplitList(*names) {
			app, err := workloads.ByName(name, params)
			if err != nil {
				return err
			}
			apps = append(apps, app)
		}
	}

	grid, err := sim.ParseGrid(*gpms, *bws, *topos)
	if err != nil {
		return err
	}
	cfgs := grid.Configs()

	// The row set is the (workload × design) cross product in grid
	// order; each workload also needs its 1-GPM baseline for the
	// scaling metrics. The engine dedupes the overlap.
	baseCfg := sim.MultiGPM(1, sim.BW2x)
	var points []runner.Point
	for _, app := range apps {
		points = append(points, runner.Point{App: app, Scale: *scale, Config: baseCfg})
		for _, cfg := range cfgs {
			points = append(points, runner.Point{App: app, Scale: *scale, Config: cfg})
		}
	}

	// The introspection server and the engine reference each other (the
	// server pulls the profile, the engine's events push progress), so
	// both are captured by variable.
	var srv *profiling.HTTPServer
	var eng *runner.Engine
	if *httpAddr != "" {
		srv, err = profiling.ServeHTTP(*httpAddr, func() obs.RunnerProfile {
			if eng == nil {
				return obs.RunnerProfile{}
			}
			return eng.Profile()
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sweep: live introspection on http://%s/\n", srv.Addr())
	}

	var onEvent func(runner.Event)
	if *progress || srv != nil {
		onEvent = func(ev runner.Event) {
			if ev.Kind != runner.PointDone {
				return
			}
			if srv != nil {
				srv.SetProgress(ev.Completed, ev.Total)
			}
			if *progress {
				fmt.Fprintf(os.Stderr, "sweep: %d/%d %s (%.2fs)\n",
					ev.Completed, ev.Total, ev.Point, ev.Elapsed.Seconds())
			}
		}
	}
	eng = runner.New(runner.Options{
		Workers:  *workers,
		OnEvent:  onEvent,
		Counters: *countersOut != "",
		Trace:    *traceOut != "",
	})
	results, err := eng.Run(context.Background(), points)
	if err != nil {
		return err
	}
	if *progress {
		st := eng.Stats()
		fmt.Fprintf(os.Stderr, "sweep: %d points, %d distinct simulations, %d cache hits, %.2fs sim wall\n",
			len(points), st.Simulated, st.CacheHits, st.SimWall.Seconds())
		fmt.Fprintf(os.Stderr, "sweep: profile %s\n", eng.Profile())
	}

	if *countersOut != "" {
		profile := eng.Profile()
		rep := obs.Report{Profile: &profile}
		for i, pt := range points {
			energy, err := obs.AttributeEnergy(modelFor(pt.Config), &results[i].Counts, results[i].Counters)
			if err != nil {
				return fmt.Errorf("attributing %s: %w", pt, err)
			}
			rep.Points = append(rep.Points, obs.PointCounters{
				Workload: pt.App.Name,
				Config:   pt.Config.Name(),
				SimKey:   pt.Key(),
				Counters: results[i].Counters,
				Energy:   energy,
			})
		}
		if err := rep.WriteFile(*countersOut); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		traces := make([]obs.PointTrace, len(points))
		for i, pt := range points {
			traces[i] = obs.PointTrace{Name: pt.String(), Trace: results[i].Trace}
		}
		if err := obs.WriteChromeTracesFile(*traceOut, traces); err != nil {
			return err
		}
	}

	// Buffer the output and only keep -o files that were written in
	// full: any failure past this point removes the partial file.
	var w io.Writer = os.Stdout
	var f *os.File
	if *out != "" {
		if f, err = os.Create(*out); err != nil {
			return err
		}
		defer func() {
			if f == nil {
				return // already closed on the success path
			}
			f.Close()
			os.Remove(*out)
		}()
		w = f
	}
	bw := bufio.NewWriter(w)

	// The metric columns use the canonical sim.Field* schema names, so
	// the CSV header, the counters JSON, and the harness reports agree.
	fmt.Fprintln(bw, "workload,category,gpms,bw,topology,domain,"+strings.Join([]string{
		sim.FieldCycles, sim.FieldSeconds,
		sim.FieldSpeedup, sim.FieldEnergyJ, sim.FieldEnergyRatio, sim.FieldEDPSEPct, sim.FieldAvgPowerW,
		sim.FieldL1Hit, sim.FieldL2Hit, sim.FieldRemoteFillFrac,
		sim.FieldDRAMGB, sim.FieldInterGPMGB, sim.FieldStallFrac,
	}, ","))

	i := 0
	for _, app := range apps {
		base := results[i]
		i++
		for _, cfg := range cfgs {
			emit(bw, app, cfg, modelFor(cfg), base, results[i])
			i++
		}
	}

	// bufio holds the first write error; surface it rather than
	// silently dropping rows.
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("writing output: %w", err)
	}
	if f != nil {
		if err := f.Close(); err != nil {
			os.Remove(*out)
			f = nil
			return fmt.Errorf("closing %s: %w", *out, err)
		}
		f = nil
	}
	return nil
}

func emit(w io.Writer, app *trace.App, cfg sim.Config, model *core.Model, base, res *sim.Result) {
	b := model.Estimate(&res.Counts)
	bs := metrics.Sample{EnergyJoules: model.EstimateEnergy(&base.Counts), DelaySeconds: base.Seconds()}
	ss := metrics.Sample{EnergyJoules: b.Total(), DelaySeconds: res.Seconds()}
	pt := metrics.Derive(bs, cfg.GPMs, ss)
	stallFrac := float64(res.Counts.StallCycles) /
		(float64(res.Counts.Cycles) * float64(res.Counts.SMCount))
	fmt.Fprintf(w, "%s,%s,%d,%s,%s,%s,%d,%.6g,%.4g,%.6g,%.4g,%.4g,%.4g,%.4f,%.4f,%.4f,%.4g,%.4g,%.4f\n",
		app.Name, app.Category, cfg.GPMs, cfg.InterGPM, cfg.Topology, cfg.Domain,
		res.Counts.Cycles, res.Seconds(),
		pt.Speedup, ss.EnergyJoules, pt.EnergyRatio, pt.EDPSE, b.AveragePower(),
		res.L1HitRate(), res.L2HitRate(), res.RemoteFillFraction(),
		gb(res.Counts.TotalTransactionBytes(isa.TxnDRAMToL2)),
		gb(res.Counts.TotalTransactionBytes(isa.TxnInterGPM)),
		stallFrac)
}

func modelFor(cfg sim.Config) *core.Model {
	if cfg.Domain == sim.DomainOnPackage {
		return core.ProjectionModel(core.OnPackageLinks())
	}
	return core.ProjectionModel(core.OnBoardLinks())
}

func gb(b uint64) float64 { return float64(b) / (1 << 30) }
