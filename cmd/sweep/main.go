// Command sweep runs workloads across a grid of multi-module designs
// and emits one CSV row per (workload, design) point: performance,
// cache behaviour, traffic, energy, and scaling metrics. It is the
// data-export tool behind custom analyses and plots.
//
// The grid executes through the shared run engine (internal/runner):
// points run across a worker pool, duplicates are memoized, and rows
// come out in deterministic grid order regardless of completion order.
//
// Usage:
//
//	sweep [-workloads Stream,Lulesh-150 | -all] [-gpms 1,2,4,8,16,32]
//	      [-bw 1x,2x,4x] [-topologies ring,switch] [-scale f] [-o out.csv]
//	      [-workers n] [-progress] [-counters out.json] [-trace out.trace.json]
//	      [-httpaddr :8080] [-server url] [-version]
//
// With -counters, every point is simulated with per-GPM/per-link
// observability counters (internal/obs) and the full snapshot set plus
// the run engine's execution profile and the exact per-GPM/per-term/
// per-link energy attribution is written as JSON; the CSV is unchanged.
// With -trace, every point additionally records a timeline and the
// whole grid is written as one Chrome trace_event file (load it in
// chrome://tracing or https://ui.perfetto.dev, one process per point).
// With -httpaddr, the process serves live introspection while the
// sweep runs: /progress, Prometheus /metrics, and /debug/pprof. The
// JSON schemas are documented in DESIGN.md §Observability.
//
// With -freq, every grid point (baselines included) runs at the given
// K40 V/f-curve operating point: the configs are stamped with the
// matching (clock, voltage) pair, timing re-derives under the scaled
// clock, and energy is priced by the per-point rescaled model. The
// default 0 is the nominal 1000 MHz and changes nothing. -governor
// sweetspot instead picks each workload's EDP-minimizing point on its
// 1-GPM baseline and runs that workload's whole row there (local
// simulation only). -freq-cols appends freq_mhz,voltage_v columns to
// the CSV; it is off by default so the legacy column set stays
// byte-stable.
//
// With -server, the sweep runs on a resident gpujouled daemon instead
// of simulating locally: the grid is submitted as one job, warm points
// are answered from the daemon's persistent result cache, and the CSV
// output is byte-identical to a local run of the same grid against the
// same binary version. -counters and -trace require local simulation
// and are rejected in server mode. Server mode additionally takes
// -tenant (the scheduling account the job is billed to), -priority
// (higher preempts lower-priority work at the next point boundary),
// and -stream: follow the job's live event feed and emit CSV rows as
// their points resolve — the rows appear incrementally, in grid order,
// and the completed file is still byte-identical to a local run.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gpujoule/internal/core"
	"gpujoule/internal/dvfs"
	"gpujoule/internal/isa"
	"gpujoule/internal/metrics"
	"gpujoule/internal/obs"
	"gpujoule/internal/profiling"
	"gpujoule/internal/runner"
	"gpujoule/internal/service"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
	"gpujoule/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// row is one workload's CSV identity. Local runs take it from the
// built trace; server runs take it from the workload registry, so no
// traces are generated client-side.
type row struct {
	name     string
	category trace.Category
}

func run() (err error) {
	prof := profiling.AddFlags()
	names := flag.String("workloads", "Stream,Kmeans,Lulesh-150,MiniAMR", "comma-separated Table II workloads")
	all := flag.Bool("all", false, "sweep the full 14-workload evaluation subset")
	gpms := flag.String("gpms", "1,2,4,8,16,32", "comma-separated module counts")
	bws := flag.String("bw", "1x,2x,4x", "comma-separated bandwidth settings")
	topos := flag.String("topologies", "ring", "comma-separated topologies (ring, switch)")
	scale := flag.Float64("scale", 0.5, "workload scale factor")
	out := flag.String("o", "", "output file (default stdout)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = one per CPU)")
	gpmParallel := flag.Int("gpm-parallel", 1, "per-simulation GPM lanes (>1 parallelizes inside each run; output is byte-identical at any value)")
	progress := flag.Bool("progress", false, "report point progress on stderr")
	countersOut := flag.String("counters", "", "write per-GPM/per-link counters + energy attribution JSON to this file")
	traceOut := flag.String("trace", "", "write a Chrome trace_event timeline of every point to this file")
	httpAddr := flag.String("httpaddr", "", "serve live introspection (pprof, /progress, /metrics) on this address")
	serverURL := flag.String("server", "", "run the sweep on a gpujouled daemon at this URL instead of simulating locally")
	tenant := flag.String("tenant", "", "scheduling tenant to bill the job to (server mode)")
	priority := flag.Int("priority", 0, "job priority; higher preempts lower at point boundaries (server mode)")
	stream := flag.Bool("stream", false, "follow the job's event stream and emit CSV rows as points resolve (server mode)")
	freqMHz := flag.Float64("freq", 0, "run every point at this K40 V/f-curve frequency in MHz (0 = nominal 1000)")
	governor := flag.String("governor", "fixed", `operating-point policy: "fixed" runs at -freq; "sweetspot" picks each workload's EDP-minimizing point on its 1-GPM baseline (local mode only)`)
	freqCols := flag.Bool("freq-cols", false, "append freq_mhz,voltage_v columns to the CSV (off keeps the legacy column set)")
	version := flag.Bool("version", false, "print schema and module version, then exit")
	flag.Parse()

	if *version {
		fmt.Println(profiling.VersionString("sweep"))
		return nil
	}

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	grid, err := sim.ParseGrid(*gpms, *bws, *topos)
	if err != nil {
		return err
	}
	cfgs := grid.Configs()

	if *serverURL == "" {
		if *tenant != "" || *priority != 0 || *stream {
			return errors.New("-tenant, -priority, and -stream need -server")
		}
	} else if *countersOut != "" || *traceOut != "" {
		return errors.New("-counters and -trace need local simulation; drop them or drop -server")
	}

	var op dvfs.OperatingPoint
	if *freqMHz != 0 {
		if op, err = dvfs.K40Curve().AtMHz(*freqMHz); err != nil {
			return err
		}
	}
	switch *governor {
	case "fixed":
	case "sweetspot":
		if *serverURL != "" {
			return errors.New("-governor sweetspot needs local simulation; drop it or drop -server")
		}
		if *freqMHz != 0 {
			return errors.New("-governor sweetspot picks its own frequencies; drop -freq")
		}
	default:
		return fmt.Errorf("unknown -governor %q (fixed, sweetspot)", *governor)
	}

	spec := service.JobSpec{
		Workloads:  *names,
		All:        *all,
		Scale:      *scale,
		GPMs:       *gpms,
		BWs:        *bws,
		Topologies: *topos,
		Baseline:   true,
		Priority:   *priority,
		FreqMHz:    *freqMHz,
	}

	// Streaming server mode renders rows into the output as their
	// points resolve instead of collecting everything first.
	if *serverURL != "" && *stream {
		return withOutput(*out, func(bw *bufio.Writer) error {
			return streamRemote(bw, *serverURL, *tenant, spec, *progress, cfgs, op, *freqCols)
		})
	}

	// Both execution paths produce the same row set — the (workload ×
	// design) cross product in grid order, with each workload's 1-GPM
	// baseline prepended — and render it through the same emit loop, so
	// a server sweep's CSV is byte-identical to a local one.
	var rows []row
	var results []*sim.Result
	var ops []dvfs.OperatingPoint // per-row operating point
	if *serverURL != "" {
		rows, results, err = runRemote(*serverURL, *tenant, spec, *progress, len(cfgs))
		ops = make([]dvfs.OperatingPoint, len(rows))
		for i := range ops {
			ops[i] = op
		}
	} else {
		rows, results, ops, err = runLocal(localOptions{
			names: *names, all: *all, scale: *scale,
			workers: *workers, gpmParallel: *gpmParallel, progress: *progress,
			countersOut: *countersOut, traceOut: *traceOut, httpAddr: *httpAddr,
			op: op, governor: *governor,
		}, cfgs)
	}
	if err != nil {
		return err
	}

	return withOutput(*out, func(bw *bufio.Writer) error {
		writeHeader(bw, *freqCols)
		i := 0
		for ri, r := range rows {
			base := results[i]
			i++
			for _, cfg := range cfgs {
				scfg := dvfs.Apply(cfg, ops[ri])
				emit(bw, r, scfg, modelFor(scfg), base, results[i], *freqCols)
				i++
			}
		}
		return nil
	})
}

// withOutput buffers writes to path (stdout when empty) and only keeps
// -o files that were written in full: any failure removes the partial
// file.
func withOutput(path string, fn func(*bufio.Writer) error) error {
	var w io.Writer = os.Stdout
	var f *os.File
	if path != "" {
		var err error
		if f, err = os.Create(path); err != nil {
			return err
		}
		defer func() {
			if f == nil {
				return // already closed on the success path
			}
			f.Close()
			os.Remove(path)
		}()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := fn(bw); err != nil {
		return err
	}
	// bufio holds the first write error; surface it rather than
	// silently dropping rows.
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("writing output: %w", err)
	}
	if f != nil {
		if err := f.Close(); err != nil {
			os.Remove(path)
			f = nil
			return fmt.Errorf("closing %s: %w", path, err)
		}
		f = nil
	}
	return nil
}

// writeHeader emits the CSV header. The metric columns use the
// canonical sim.Field* schema names, so the CSV header, the counters
// JSON, and the harness reports agree.
func writeHeader(w io.Writer, freqCols bool) {
	fmt.Fprint(w, "workload,category,gpms,bw,topology,domain,"+strings.Join([]string{
		sim.FieldCycles, sim.FieldSeconds,
		sim.FieldSpeedup, sim.FieldEnergyJ, sim.FieldEnergyRatio, sim.FieldEDPSEPct, sim.FieldAvgPowerW,
		sim.FieldL1Hit, sim.FieldL2Hit, sim.FieldRemoteFillFrac,
		sim.FieldDRAMGB, sim.FieldInterGPMGB, sim.FieldStallFrac,
	}, ","))
	if freqCols {
		fmt.Fprint(w, ",freq_mhz,voltage_v")
	}
	fmt.Fprintln(w)
}

type localOptions struct {
	names, countersOut, traceOut, httpAddr string
	all, progress                          bool
	scale                                  float64
	workers                                int
	gpmParallel                            int
	op                                     dvfs.OperatingPoint
	governor                               string
}

func runLocal(o localOptions, cfgs []sim.Config) ([]row, []*sim.Result, []dvfs.OperatingPoint, error) {
	params := workloads.Params{Scale: o.scale}
	var apps []*trace.App
	if o.all {
		apps = workloads.Eval14(params)
	} else {
		for _, name := range sim.SplitList(o.names) {
			app, err := workloads.ByName(name, params)
			if err != nil {
				return nil, nil, nil, err
			}
			apps = append(apps, app)
		}
	}

	// The engine must exist before the introspection server starts:
	// its handlers pull the profile from listener goroutines, so a
	// late-bound engine variable would race with them.
	var srv *profiling.HTTPServer
	onEvent := func(ev runner.Event) {
		if ev.Kind != runner.PointDone {
			return
		}
		if srv != nil {
			srv.SetProgress(ev.Completed, ev.Total)
		}
		if o.progress {
			fmt.Fprintf(os.Stderr, "sweep: %d/%d %s (%.2fs)\n",
				ev.Completed, ev.Total, ev.Point, ev.Elapsed.Seconds())
		}
	}
	eng := runner.New(runner.Options{
		Workers:     o.workers,
		GPMParallel: o.gpmParallel,
		OnEvent:     onEvent,
		Counters:    o.countersOut != "",
		Trace:       o.traceOut != "",
	})
	if o.httpAddr != "" {
		var err error
		srv, err = profiling.ServeHTTP(o.httpAddr, eng.Profile)
		if err != nil {
			return nil, nil, nil, err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sweep: live introspection on http://%s/\n", srv.Addr())
	}

	// Per-row operating points: every row runs at the fixed -freq point
	// unless the sweet-spot governor picks a per-workload one on its
	// 1-GPM baseline. At the nominal point the stamps are the identity
	// and the point set is exactly the legacy grid.
	ops := make([]dvfs.OperatingPoint, len(apps))
	for i := range ops {
		ops[i] = o.op
	}
	baseCfg := sim.MultiGPM(1, sim.BW2x)
	if o.governor == "sweetspot" {
		curve := dvfs.K40Curve()
		var cal []runner.Point
		for _, app := range apps {
			for _, p := range curve.Points() {
				cal = append(cal, runner.Point{App: app, Scale: o.scale, Config: dvfs.Apply(baseCfg, p)})
			}
		}
		if _, err := eng.Run(context.Background(), cal); err != nil {
			return nil, nil, nil, err
		}
		gov := dvfs.SweetSpot{}
		for i, app := range apps {
			app := app
			d, err := gov.Decide(curve, func(p dvfs.OperatingPoint) (dvfs.Metrics, error) {
				cfg := dvfs.Apply(baseCfg, p)
				r, err := eng.One(context.Background(), runner.Point{App: app, Scale: o.scale, Config: cfg})
				if err != nil {
					return dvfs.Metrics{}, err
				}
				return dvfs.Metrics{Point: p, Energy: modelFor(cfg).EstimateEnergy(&r.Counts), Seconds: r.Seconds()}, nil
			})
			if err != nil {
				return nil, nil, nil, err
			}
			ops[i] = d.Point
			if o.progress {
				fmt.Fprintf(os.Stderr, "sweep: %s sweet spot %s\n", app.Name, d.Point)
			}
		}
	}
	points := make([]runner.Point, 0, len(apps)*(len(cfgs)+1))
	for i, app := range apps {
		points = append(points, runner.Point{App: app, Scale: o.scale, Config: dvfs.Apply(baseCfg, ops[i])})
		for _, cfg := range cfgs {
			points = append(points, runner.Point{App: app, Scale: o.scale, Config: dvfs.Apply(cfg, ops[i])})
		}
	}
	results, err := eng.Run(context.Background(), points)
	if err != nil {
		return nil, nil, nil, err
	}
	if o.progress {
		st := eng.Stats()
		fmt.Fprintf(os.Stderr, "sweep: %d points, %d distinct simulations, %d cache hits, %.2fs sim wall\n",
			len(points), st.Simulated, st.CacheHits, st.SimWall.Seconds())
		fmt.Fprintf(os.Stderr, "sweep: profile %s\n", eng.Profile())
	}

	if o.countersOut != "" {
		profile := eng.Profile()
		rep := obs.Report{Profile: &profile}
		gov := ""
		if o.governor != "fixed" {
			gov = o.governor
		}
		for i, pt := range points {
			energy, err := obs.AttributeEnergy(modelFor(pt.Config), &results[i].Counts, results[i].Counters)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("attributing %s: %w", pt, err)
			}
			pc := obs.PointCounters{
				Workload: pt.App.Name,
				Config:   pt.Config.Name(),
				SimKey:   pt.Key(),
				Counters: results[i].Counters,
				Energy:   energy,
			}
			if pt.Config.ClockHz != 0 || pt.Config.VoltageV != 0 {
				p := dvfs.PointOf(pt.Config)
				pc.OperatingPoint = &obs.OperatingPointInfo{FreqMHz: p.MHz(), VoltageV: p.Voltage, Governor: gov}
			}
			rep.Points = append(rep.Points, pc)
		}
		if err := rep.WriteFile(o.countersOut); err != nil {
			return nil, nil, nil, err
		}
	}
	if o.traceOut != "" {
		traces := make([]obs.PointTrace, len(points))
		for i, pt := range points {
			traces[i] = obs.PointTrace{Name: pt.String(), Trace: results[i].Trace}
		}
		if err := obs.WriteChromeTracesFile(o.traceOut, traces); err != nil {
			return nil, nil, nil, err
		}
	}

	rows := make([]row, len(apps))
	for i, app := range apps {
		rows[i] = row{name: app.Name, category: app.Category}
	}
	return rows, results, ops, nil
}

// dialService builds the v2 service client: tenant billing, automatic
// 307 ownership-redirect following (a cluster node that does not own
// the sweep's points rebases the client onto the node that does), and
// Retry-After-honouring backpressure retry. With -progress, redirects
// and retry waits are narrated on stderr.
func dialService(url, tenant string, progress bool) (*service.Client, error) {
	opts := []service.ClientOption{
		service.WithBaseURL(url),
		service.WithTenant(tenant),
		service.WithRetry(service.RetryPolicy{
			Notify: func(err error, delay time.Duration) {
				if progress {
					fmt.Fprintf(os.Stderr, "sweep: backpressure (%v); retrying in %s\n", err, delay)
				}
			},
		}),
	}
	if progress {
		opts = append(opts, service.WithLogf(func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
		}))
	}
	return service.Dial(opts...)
}

// rowSet resolves the spec's workload selection to CSV row identities.
// Workload categories come from the registry metadata — no traces are
// built client-side.
func rowSet(spec service.JobSpec) ([]row, error) {
	categories := map[string]trace.Category{}
	var eval14 []string
	for _, g := range workloads.Generators() {
		categories[g.Name] = g.Category
		if g.InEval14 {
			eval14 = append(eval14, g.Name)
		}
	}
	sel := sim.SplitList(spec.Workloads)
	if spec.All {
		sel = eval14
	}
	var rows []row
	for _, name := range sel {
		cat, ok := categories[name]
		if !ok {
			return nil, fmt.Errorf("unknown workload %q (have %v)", name, workloads.Names())
		}
		rows = append(rows, row{name: name, category: cat})
	}
	return rows, nil
}

// runRemote submits the grid as one gpujouled job and reassembles the
// row set from the daemon's result document.
func runRemote(url, tenant string, spec service.JobSpec, progress bool, perRow int) ([]row, []*sim.Result, error) {
	rows, err := rowSet(spec)
	if err != nil {
		return nil, nil, err
	}
	client, err := dialService(url, tenant, progress)
	if err != nil {
		return nil, nil, err
	}
	if progress {
		fmt.Fprintf(os.Stderr, "sweep: submitting %d points to %s\n", len(rows)*(perRow+1), url)
	}
	doc, err := client.RunSweep(context.Background(), spec)
	if err != nil {
		return nil, nil, err
	}
	if want := len(rows) * (perRow + 1); len(doc.Points) != want {
		return nil, nil, fmt.Errorf("daemon returned %d points, want %d; version skew?", len(doc.Points), want)
	}
	results := make([]*sim.Result, len(doc.Points))
	for i, p := range doc.Points {
		if p.Result == nil {
			return nil, nil, fmt.Errorf("daemon returned no result for %s", p.SimKey)
		}
		results[i] = p.Result
	}
	return rows, results, nil
}

// streamRemote submits the grid as one gpujouled job, follows its SSE
// event feed, and emits CSV rows incrementally: a row is written the
// moment its full point span (1-GPM baseline plus every grid config)
// has resolved, always in grid order — so the file grows live yet
// finishes byte-identical to a batch run, no matter how the scheduler
// interleaved this job with other tenants' work.
func streamRemote(bw *bufio.Writer, url, tenant string, spec service.JobSpec, progress bool, cfgs []sim.Config, op dvfs.OperatingPoint, freqCols bool) error {
	rows, err := rowSet(spec)
	if err != nil {
		return err
	}
	client, err := dialService(url, tenant, progress)
	if err != nil {
		return err
	}

	writeHeader(bw, freqCols)
	span := len(cfgs) + 1 // baseline + one point per config
	total := len(rows) * span
	results := make([]*sim.Result, total)
	next := 0 // first result index not yet rendered

	// flush renders every complete prefix row: row r spans result
	// indices [r*span, (r+1)*span).
	flush := func() error {
		for next < total {
			r := next / span
			end := (r + 1) * span
			complete := true
			for i := r * span; i < end; i++ {
				if results[i] == nil {
					complete = false
					break
				}
			}
			if !complete {
				return nil
			}
			base := results[r*span]
			for ci, cfg := range cfgs {
				scfg := dvfs.Apply(cfg, op)
				emit(bw, rows[r], scfg, modelFor(scfg), base, results[r*span+1+ci], freqCols)
			}
			next = end
			if err := bw.Flush(); err != nil {
				return fmt.Errorf("writing output: %w", err)
			}
		}
		return nil
	}

	if progress {
		fmt.Fprintf(os.Stderr, "sweep: streaming %d points from %s\n", total, url)
	}
	var flushErr error
	doc, err := client.RunSweepStream(context.Background(), spec, func(ev service.JobEvent) {
		if flushErr != nil || ev.Kind != service.EventPoint || ev.Point == nil {
			return
		}
		if ev.Index >= 0 && ev.Index < total {
			results[ev.Index] = ev.Point.Result
		}
		if progress {
			fmt.Fprintf(os.Stderr, "sweep: point %d/%d (%s) %s\n", ev.Index+1, total, ev.Source, ev.Point.SimKey)
		}
		flushErr = flush()
	})
	if err != nil {
		return err
	}
	if flushErr != nil {
		return flushErr
	}
	if len(doc.Points) != total {
		return fmt.Errorf("daemon streamed %d points, want %d; version skew?", len(doc.Points), total)
	}
	// Anything the stream missed (it shouldn't — the log replays from
	// the start) is backfilled from the verified document.
	for i, p := range doc.Points {
		if results[i] == nil {
			if p.Result == nil {
				return fmt.Errorf("daemon returned no result for %s", p.SimKey)
			}
			results[i] = p.Result
		}
	}
	return flush()
}

func emit(w io.Writer, r row, cfg sim.Config, model *core.Model, base, res *sim.Result, freqCols bool) {
	b := model.Estimate(&res.Counts)
	bs := metrics.Sample{EnergyJoules: model.EstimateEnergy(&base.Counts), DelaySeconds: base.Seconds()}
	ss := metrics.Sample{EnergyJoules: b.Total(), DelaySeconds: res.Seconds()}
	pt := metrics.Derive(bs, cfg.GPMs, ss)
	stallFrac := float64(res.Counts.StallCycles) /
		(float64(res.Counts.Cycles) * float64(res.Counts.SMCount))
	fmt.Fprintf(w, "%s,%s,%d,%s,%s,%s,%d,%.6g,%.4g,%.6g,%.4g,%.4g,%.4g,%.4f,%.4f,%.4f,%.4g,%.4g,%.4f",
		r.name, r.category, cfg.GPMs, cfg.InterGPM, cfg.Topology, cfg.Domain,
		res.Counts.Cycles, res.Seconds(),
		pt.Speedup, ss.EnergyJoules, pt.EnergyRatio, pt.EDPSE, b.AveragePower(),
		res.L1HitRate(), res.L2HitRate(), res.RemoteFillFraction(),
		gb(res.Counts.TotalTransactionBytes(isa.TxnDRAMToL2)),
		gb(res.Counts.TotalTransactionBytes(isa.TxnInterGPM)),
		stallFrac)
	if freqCols {
		p := dvfs.PointOf(cfg)
		fmt.Fprintf(w, ",%g,%.2f", p.MHz(), p.Voltage)
	}
	fmt.Fprintln(w)
}

// modelFor prices a config's energy: the projection model of its
// integration domain, rescaled to any operating point stamped on it
// (the nominal path returns the unscaled model).
func modelFor(cfg sim.Config) *core.Model {
	m := core.ProjectionModel(core.OnBoardLinks())
	if cfg.Domain == sim.DomainOnPackage {
		m = core.ProjectionModel(core.OnPackageLinks())
	}
	return dvfs.ScaleForConfig(m, cfg)
}

func gb(b uint64) float64 { return float64(b) / (1 << 30) }
