// Command sweep runs workloads across a grid of multi-module designs
// and emits one CSV row per (workload, design) point: performance,
// cache behaviour, traffic, energy, and scaling metrics. It is the
// data-export tool behind custom analyses and plots.
//
// Usage:
//
//	sweep [-workloads Stream,Lulesh-150 | -all] [-gpms 1,2,4,8,16,32]
//	      [-bw 1x,2x,4x] [-topologies ring,switch] [-scale f] [-o out.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gpujoule/internal/core"
	"gpujoule/internal/interconnect"
	"gpujoule/internal/isa"
	"gpujoule/internal/metrics"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
	"gpujoule/internal/workloads"
)

func main() {
	names := flag.String("workloads", "Stream,Kmeans,Lulesh-150,MiniAMR", "comma-separated Table II workloads")
	all := flag.Bool("all", false, "sweep the full 14-workload evaluation subset")
	gpms := flag.String("gpms", "1,2,4,8,16,32", "comma-separated module counts")
	bws := flag.String("bw", "1x,2x,4x", "comma-separated bandwidth settings")
	topos := flag.String("topologies", "ring", "comma-separated topologies (ring, switch)")
	scale := flag.Float64("scale", 0.5, "workload scale factor")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	params := workloads.Params{Scale: *scale}
	var apps []*trace.App
	if *all {
		apps = workloads.Eval14(params)
	} else {
		for _, name := range splitList(*names) {
			app, err := workloads.ByName(name, params)
			if err != nil {
				fatal(err)
			}
			apps = append(apps, app)
		}
	}

	counts, err := parseInts(*gpms)
	if err != nil {
		fatal(err)
	}
	settings, err := parseBWs(*bws)
	if err != nil {
		fatal(err)
	}
	topologies, err := parseTopos(*topos)
	if err != nil {
		fatal(err)
	}

	fmt.Fprintln(w, "workload,category,gpms,bw,topology,domain,cycles,seconds,"+
		"speedup,energy_j,energy_ratio,edpse_pct,avg_power_w,"+
		"l1_hit,l2_hit,remote_fill_frac,dram_gb,intergpm_gb,stall_frac")

	for _, app := range apps {
		base, err := sim.Run(sim.MultiGPM(1, sim.BW2x), app)
		if err != nil {
			fatal(err)
		}
		for _, n := range counts {
			for _, bw := range settings {
				for _, topo := range topologies {
					if n == 1 && topo != interconnect.TopologyRing {
						continue
					}
					cfg := sim.MultiGPM(n, bw)
					cfg.Topology = topo
					if topo == interconnect.TopologySwitch {
						cfg.Domain = sim.DomainOnBoard
					}
					model := modelFor(cfg)
					res := base
					if n > 1 || bw != sim.BW2x {
						res, err = sim.Run(cfg, app)
						if err != nil {
							fatal(err)
						}
					}
					emit(w, app, cfg, model, base, res)
				}
				if n == 1 {
					break // the 1-GPM design has no fabric; one row suffices
				}
			}
		}
	}
}

func emit(w *os.File, app *trace.App, cfg sim.Config, model *core.Model, base, res *sim.Result) {
	b := model.Estimate(&res.Counts)
	bs := metrics.Sample{EnergyJoules: model.EstimateEnergy(&base.Counts), DelaySeconds: base.Seconds()}
	ss := metrics.Sample{EnergyJoules: b.Total(), DelaySeconds: res.Seconds()}
	pt := metrics.Derive(bs, cfg.GPMs, ss)
	stallFrac := float64(res.Counts.StallCycles) /
		(float64(res.Counts.Cycles) * float64(res.Counts.SMCount))
	fmt.Fprintf(w, "%s,%s,%d,%s,%s,%s,%d,%.6g,%.4g,%.6g,%.4g,%.4g,%.4g,%.4f,%.4f,%.4f,%.4g,%.4g,%.4f\n",
		app.Name, app.Category, cfg.GPMs, cfg.InterGPM, cfg.Topology, cfg.Domain,
		res.Counts.Cycles, res.Seconds(),
		pt.Speedup, ss.EnergyJoules, pt.EnergyRatio, pt.EDPSE, b.AveragePower(),
		res.L1HitRate(), res.L2HitRate(), res.RemoteFillFraction(),
		gb(res.Counts.TotalTransactionBytes(isa.TxnDRAMToL2)),
		gb(res.Counts.TotalTransactionBytes(isa.TxnInterGPM)),
		stallFrac)
}

func modelFor(cfg sim.Config) *core.Model {
	if cfg.Domain == sim.DomainOnPackage {
		return core.ProjectionModel(core.OnPackageLinks())
	}
	return core.ProjectionModel(core.OnBoardLinks())
}

func gb(b uint64) float64 { return float64(b) / (1 << 30) }

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad module count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseBWs(s string) ([]sim.BWSetting, error) {
	var out []sim.BWSetting
	for _, p := range splitList(s) {
		switch p {
		case "1x":
			out = append(out, sim.BW1x)
		case "2x":
			out = append(out, sim.BW2x)
		case "4x":
			out = append(out, sim.BW4x)
		default:
			return nil, fmt.Errorf("bad bandwidth setting %q (want 1x, 2x, 4x)", p)
		}
	}
	return out, nil
}

func parseTopos(s string) ([]interconnect.Topology, error) {
	var out []interconnect.Topology
	for _, p := range splitList(s) {
		switch p {
		case "ring":
			out = append(out, interconnect.TopologyRing)
		case "switch":
			out = append(out, interconnect.TopologySwitch)
		default:
			return nil, fmt.Errorf("bad topology %q (want ring or switch)", p)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
