package main

import (
	"testing"

	"gpujoule/internal/interconnect"
	"gpujoule/internal/sim"
)

// TestGridMatchesLegacyExpansion pins the shared grid helper to the
// nested-loop expansion sweep used before the run engine existed, so
// the CSV row order (and therefore the output bytes) stays identical.
func TestGridMatchesLegacyExpansion(t *testing.T) {
	counts := []int{1, 2, 4, 8, 16, 32}
	settings := []sim.BWSetting{sim.BW1x, sim.BW2x, sim.BW4x}
	topologies := []interconnect.Topology{interconnect.TopologyRing, interconnect.TopologySwitch}

	var want []sim.Config
	for _, n := range counts {
		for _, bw := range settings {
			for _, topo := range topologies {
				if n == 1 && topo != interconnect.TopologyRing {
					continue
				}
				cfg := sim.MultiGPM(n, bw)
				cfg.Topology = topo
				if topo == interconnect.TopologySwitch {
					cfg.Domain = sim.DomainOnBoard
				}
				want = append(want, cfg)
			}
			if n == 1 {
				break
			}
		}
	}

	got := sim.Grid{GPMs: counts, BWs: settings, Topologies: topologies}.Configs()
	if len(got) != len(want) {
		t.Fatalf("grid expands to %d configs, legacy loop produced %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("config %d: got %s, want %s", i, got[i].Name(), want[i].Name())
		}
	}
}

func TestModelFor(t *testing.T) {
	onPkg := modelFor(sim.MultiGPM(4, sim.BW2x))
	onBoard := modelFor(sim.MultiGPM(4, sim.BW1x))
	if onPkg.Amortization == 0 || onBoard.Amortization != 0 {
		t.Error("model selection by domain wrong")
	}
}
