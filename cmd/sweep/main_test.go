package main

import (
	"bufio"
	"bytes"
	"net/http/httptest"
	"testing"

	"gpujoule/internal/dvfs"
	"gpujoule/internal/interconnect"
	"gpujoule/internal/service"
	"gpujoule/internal/sim"
)

// TestGridMatchesLegacyExpansion pins the shared grid helper to the
// nested-loop expansion sweep used before the run engine existed, so
// the CSV row order (and therefore the output bytes) stays identical.
func TestGridMatchesLegacyExpansion(t *testing.T) {
	counts := []int{1, 2, 4, 8, 16, 32}
	settings := []sim.BWSetting{sim.BW1x, sim.BW2x, sim.BW4x}
	topologies := []interconnect.Topology{interconnect.TopologyRing, interconnect.TopologySwitch}

	var want []sim.Config
	for _, n := range counts {
		for _, bw := range settings {
			for _, topo := range topologies {
				if n == 1 && topo != interconnect.TopologyRing {
					continue
				}
				cfg := sim.MultiGPM(n, bw)
				cfg.Topology = topo
				if topo == interconnect.TopologySwitch {
					cfg.Domain = sim.DomainOnBoard
				}
				want = append(want, cfg)
			}
			if n == 1 {
				break
			}
		}
	}

	got := sim.Grid{GPMs: counts, BWs: settings, Topologies: topologies}.Configs()
	if len(got) != len(want) {
		t.Fatalf("grid expands to %d configs, legacy loop produced %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("config %d: got %s, want %s", i, got[i].Name(), want[i].Name())
		}
	}
}

func TestModelFor(t *testing.T) {
	onPkg := modelFor(sim.MultiGPM(4, sim.BW2x))
	onBoard := modelFor(sim.MultiGPM(4, sim.BW1x))
	if onPkg.Amortization == 0 || onBoard.Amortization != 0 {
		t.Error("model selection by domain wrong")
	}
}

// TestStreamedCSVMatchesBatch is the golden byte-identity check for
// streaming mode: one sweep rendered incrementally from the SSE feed
// must produce the exact bytes of the batch (submit, wait, poll) path
// — and a second streamed pass over a warm cache (points resolving in
// a burst, all from disk) must too.
func TestStreamedCSVMatchesBatch(t *testing.T) {
	s, err := service.New(service.Options{CacheDir: t.TempDir(), Executors: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	grid, err := sim.ParseGrid("1,2", "1x,2x", "ring")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := grid.Configs()
	spec := service.JobSpec{
		Workloads: "Stream,Kmeans", Scale: 0.05,
		GPMs: "1,2", BWs: "1x,2x", Topologies: "ring",
		Baseline: true,
	}

	// The batch path renders through the same emit loop run() uses.
	rows, results, err := runRemote(ts.URL, "", spec, false, len(cfgs))
	if err != nil {
		t.Fatal(err)
	}
	var batch bytes.Buffer
	bw := bufio.NewWriter(&batch)
	writeHeader(bw, false)
	i := 0
	for _, r := range rows {
		base := results[i]
		i++
		for _, cfg := range cfgs {
			emit(bw, r, cfg, modelFor(cfg), base, results[i], false)
			i++
		}
	}
	bw.Flush()

	for pass, tenant := range []string{"cold", "warm"} {
		var streamed bytes.Buffer
		sw := bufio.NewWriter(&streamed)
		if err := streamRemote(sw, ts.URL, tenant, spec, false, cfgs, dvfs.OperatingPoint{}, false); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		sw.Flush()
		if !bytes.Equal(streamed.Bytes(), batch.Bytes()) {
			t.Errorf("pass %d: streamed CSV differs from batch CSV:\nstreamed:\n%s\nbatch:\n%s",
				pass, streamed.Bytes(), batch.Bytes())
		}
	}
}
