package main

import (
	"reflect"
	"testing"

	"gpujoule/internal/interconnect"
	"gpujoule/internal/sim"
)

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("splitList = %v, want %v", got, want)
	}
	if splitList("") != nil {
		t.Error("empty list should be nil")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1,2,32")
	if err != nil || !reflect.DeepEqual(got, []int{1, 2, 32}) {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	for _, bad := range []string{"x", "0", "-2"} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) should fail", bad)
		}
	}
}

func TestParseBWs(t *testing.T) {
	got, err := parseBWs("1x,2x,4x")
	if err != nil || !reflect.DeepEqual(got, []sim.BWSetting{sim.BW1x, sim.BW2x, sim.BW4x}) {
		t.Errorf("parseBWs = %v, %v", got, err)
	}
	if _, err := parseBWs("8x"); err == nil {
		t.Error("unknown setting should fail")
	}
}

func TestParseTopos(t *testing.T) {
	got, err := parseTopos("ring,switch")
	if err != nil || !reflect.DeepEqual(got, []interconnect.Topology{
		interconnect.TopologyRing, interconnect.TopologySwitch}) {
		t.Errorf("parseTopos = %v, %v", got, err)
	}
	if _, err := parseTopos("torus"); err == nil {
		t.Error("unknown topology should fail")
	}
}

func TestModelFor(t *testing.T) {
	onPkg := modelFor(sim.MultiGPM(4, sim.BW2x))
	onBoard := modelFor(sim.MultiGPM(4, sim.BW1x))
	if onPkg.Amortization == 0 || onBoard.Amortization != 0 {
		t.Error("model selection by domain wrong")
	}
}
