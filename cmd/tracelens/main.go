// Command tracelens analyzes the simulator's timeline traces: it
// detects repeating kernel cycles, separates compute-bound from
// memory-bound phases (optionally costed in joules against a -counters
// export), and diffs a baseline trace against an optimized one with
// regression thresholds a CI gate can act on.
//
// Usage:
//
//	tracelens analyze  trace.json[.gz] [-counters report.json] [-csv phases.csv] [-o report.md]
//	tracelens compare  base.json[.gz] opt.json[.gz] [-threshold 5] [-csv deltas.csv] [-o report.md]
//	tracelens sig      trace.json[.gz]... [-o trace.sig]
//
// Input files may be exact cycles-domain obs.Trace JSON (as embedded
// in sim.Result exports) or rendered Chrome trace_event documents
// (single- or multi-point, as written by the -trace flags of gpmsim,
// sweep, and paper); gzip is detected by magic bytes, never the file
// name. Output paths ending in .gz are gzip-compressed; "-" or an
// empty -o means stdout.
//
// compare exits 2 when any per-kernel regression exceeds -threshold
// percent, which is what makes it a CI gate (see make trace-regress).
// All output is deterministic: the same inputs render byte-identical
// reports on every invocation and every machine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"gpujoule/internal/obs"
	"gpujoule/internal/traceanalyze"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "sig":
		err = cmdSig(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "tracelens: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		if err == errBreach {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "tracelens:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  tracelens analyze  trace.json[.gz] [-counters report.json] [-csv phases.csv] [-o report.md]
  tracelens compare  base.json[.gz] opt.json[.gz] [-threshold pct] [-csv deltas.csv] [-o report.md]
  tracelens sig      trace.json[.gz]... [-o trace.sig]
`)
}

// analysisFlags are the knobs shared by the subcommands.
type analysisFlags struct {
	minIters      int
	busyThreshold float64
	satThreshold  float64
}

func addAnalysisFlags(fs *flag.FlagSet) *analysisFlags {
	af := &analysisFlags{}
	fs.IntVar(&af.minIters, "min-iters", 2, "fewest repetitions that count as a kernel cycle")
	fs.Float64Var(&af.busyThreshold, "busy-threshold", 0.5, "busy fraction below which a launch is memory-bound")
	fs.Float64Var(&af.satThreshold, "sat-threshold", 0.5, "link-saturation residency at or above which a launch is memory-bound")
	return af
}

func (af *analysisFlags) cycleOpts() traceanalyze.CycleOptions {
	return traceanalyze.CycleOptions{MinIterations: af.minIters}
}

func (af *analysisFlags) phaseOpts() traceanalyze.PhaseOptions {
	return traceanalyze.PhaseOptions{BusyThreshold: af.busyThreshold, SatThreshold: af.satThreshold}
}

// parseMixed parses argv allowing flags and positional arguments to
// interleave (stdlib flag stops at the first positional), returning
// the positionals in order.
func parseMixed(fs *flag.FlagSet, argv []string) []string {
	var pos []string
	fs.Parse(argv)
	for fs.NArg() > 0 {
		pos = append(pos, fs.Arg(0))
		rest := append([]string(nil), fs.Args()[1:]...)
		fs.Parse(rest)
	}
	return pos
}

// stem labels runs loaded from bare obs.Trace files.
func stem(path string) string {
	base := filepath.Base(path)
	base = strings.TrimSuffix(base, ".gz")
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// emit writes render either to stdout (path empty or "-") or
// atomically to path, gzip-compressing *.gz.
func emit(path string, render func(io.Writer) error) error {
	if path == "" || path == "-" {
		return render(os.Stdout)
	}
	return obs.WriteFileAtomic(path, render)
}

// loadTerms reads a -counters export (obs.Report JSON) and indexes the
// per-point energy terms by the "<workload> on <config>" run name.
func loadTerms(path string) (map[string]obs.TermEnergy, error) {
	rc, err := obs.OpenAuto(path)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	var rep obs.Report
	if err := json.NewDecoder(rc).Decode(&rep); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	terms := map[string]obs.TermEnergy{}
	for i := range rep.Points {
		p := &rep.Points[i]
		if p.Energy == nil {
			continue
		}
		terms[p.Workload+" on "+p.Config] = p.Energy.Terms
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("%s carries no energy attribution (export with -counters from a pricing CLI)", path)
	}
	return terms, nil
}

func cmdAnalyze(argv []string) error {
	fs := flag.NewFlagSet("tracelens analyze", flag.ExitOnError)
	af := addAnalysisFlags(fs)
	countersPath := fs.String("counters", "", "obs.Report JSON with energy attribution; phases matching a point by name are costed in joules")
	csvPath := fs.String("csv", "", "also write the phase table as CSV to this file")
	out := fs.String("o", "", "write the markdown report here instead of stdout")
	pos := parseMixed(fs, argv)
	if len(pos) != 1 {
		return fmt.Errorf("analyze wants exactly one trace file, got %d", len(pos))
	}
	path := pos[0]
	runs, err := traceanalyze.LoadFile(path, stem(path))
	if err != nil {
		return err
	}
	var terms map[string]obs.TermEnergy
	if *countersPath != "" {
		if terms, err = loadTerms(*countersPath); err != nil {
			return err
		}
	}

	analyses := make([]*traceanalyze.Analysis, len(runs))
	for i, r := range runs {
		a := traceanalyze.Analyze(r, af.cycleOpts(), af.phaseOpts())
		if t, ok := terms[r.Name]; ok {
			a.Cost(t)
		} else if terms != nil {
			fmt.Fprintf(os.Stderr, "tracelens: no energy attribution for %q in %s; phases stay uncosted\n", r.Name, *countersPath)
		}
		analyses[i] = a
	}

	if err := emit(*out, func(w io.Writer) error {
		for i, a := range analyses {
			if i > 0 {
				if _, err := io.WriteString(w, "\n"); err != nil {
					return err
				}
			}
			if err := a.WriteMarkdown(w); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if *csvPath != "" {
		return emit(*csvPath, func(w io.Writer) error {
			for _, a := range analyses {
				if err := a.WritePhasesCSV(w); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return nil
}

// errBreach signals a threshold breach; main maps it to exit code 2.
var errBreach = fmt.Errorf("regression threshold breached")

func cmdCompare(argv []string) error {
	fs := flag.NewFlagSet("tracelens compare", flag.ExitOnError)
	af := addAnalysisFlags(fs)
	threshold := fs.Float64("threshold", 5, "fail (exit 2) when any per-kernel slowdown exceeds this percent")
	csvPath := fs.String("csv", "", "also write the per-kernel delta table as CSV to this file")
	out := fs.String("o", "", "write the markdown report here instead of stdout")
	pos := parseMixed(fs, argv)
	if len(pos) != 2 {
		return fmt.Errorf("compare wants a baseline and an optimized trace, got %d args", len(pos))
	}
	basePath, optPath := pos[0], pos[1]
	baseRuns, err := traceanalyze.LoadFile(basePath, stem(basePath))
	if err != nil {
		return err
	}
	optRuns, err := traceanalyze.LoadFile(optPath, stem(optPath))
	if err != nil {
		return err
	}

	// Pair runs by name when both sides are multi-point; positionally
	// otherwise (two single-run traces compare regardless of labels).
	type pair struct{ base, opt *traceanalyze.Run }
	var pairs []pair
	if len(baseRuns) == 1 && len(optRuns) == 1 {
		pairs = []pair{{baseRuns[0], optRuns[0]}}
	} else {
		byName := map[string]*traceanalyze.Run{}
		for _, r := range optRuns {
			byName[r.Name] = r
		}
		for _, b := range baseRuns {
			if o, ok := byName[b.Name]; ok {
				pairs = append(pairs, pair{b, o})
			} else {
				fmt.Fprintf(os.Stderr, "tracelens: point %q only in baseline; skipped\n", b.Name)
			}
		}
		if len(pairs) == 0 {
			return fmt.Errorf("no common points between %s and %s", basePath, optPath)
		}
	}

	comparisons := make([]*traceanalyze.Comparison, len(pairs))
	breached := false
	for i, p := range pairs {
		c := traceanalyze.Compare(p.base, p.opt, af.phaseOpts())
		comparisons[i] = c
		for _, d := range c.Breaches(*threshold) {
			breached = true
			fmt.Fprintf(os.Stderr, "tracelens: REGRESSION %s / %s: %s cycles %s -> %s (+%s%% > %g%%)\n",
				p.base.Name, d.Kernel, kindOf(&d), fmtF(d.BaseCycles), fmtF(d.OptCycles), fmtF(d.DeltaPct()), *threshold)
		}
	}

	if err := emit(*out, func(w io.Writer) error {
		for i, c := range comparisons {
			if i > 0 {
				if _, err := io.WriteString(w, "\n"); err != nil {
					return err
				}
			}
			if err := c.WriteMarkdown(w); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if *csvPath != "" {
		if err := emit(*csvPath, func(w io.Writer) error {
			for _, c := range comparisons {
				if err := c.WriteCSV(w); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if breached {
		return errBreach
	}
	return nil
}

func kindOf(d *traceanalyze.KernelDelta) string {
	if d.BaseLaunches == 0 {
		return "new kernel"
	}
	return "kernel"
}

func fmtF(v float64) string { return fmt.Sprintf("%g", v) }

func cmdSig(argv []string) error {
	fs := flag.NewFlagSet("tracelens sig", flag.ExitOnError)
	af := addAnalysisFlags(fs)
	out := fs.String("o", "", "write the signature here instead of stdout")
	pos := parseMixed(fs, argv)
	if len(pos) == 0 {
		return fmt.Errorf("sig wants at least one trace file")
	}
	var runs []*traceanalyze.Run
	for _, path := range pos {
		rs, err := traceanalyze.LoadFile(path, stem(path))
		if err != nil {
			return err
		}
		runs = append(runs, rs...)
	}
	return emit(*out, func(w io.Writer) error {
		return traceanalyze.WriteSignature(w, runs, af.cycleOpts(), af.phaseOpts())
	})
}
