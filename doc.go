// Package gpujoule reproduces "Understanding the Future of Energy
// Efficiency in Multi-Module GPUs" (Arunkumar, Bolotin, Nellans, Wu —
// HPCA 2019): the GPUJoule top-down instruction-based GPU energy model,
// the EDP Scaling Efficiency metric, a trace-driven multi-GPM GPU
// performance simulator, a reference-silicon substitute for model
// calibration and validation, the 18 Table II workloads, and an
// experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The root-level benchmarks (bench_test.go) regenerate each
// experiment; run them with:
//
//	go test -bench=. -benchmem
package gpujoule
