// Calibration walkthrough: exercise the GPUJoule methodology (Fig. 3)
// step by step against the reference silicon — measure idle power,
// derive one EPI with Eq. 5 by hand, then run the full automated
// calibration and compare the recovered Table Ib values against the
// published ones.
package main

import (
	"fmt"
	"log"

	"gpujoule/internal/calib"
	"gpujoule/internal/core"
	"gpujoule/internal/isa"
	"gpujoule/internal/microbench"
	"gpujoule/internal/silicon"
)

func main() {
	dev := silicon.NewK40()

	// Step 0: the idle (constant) power reading.
	idle := dev.IdlePowerReading()
	fmt.Printf("idle power: %.1f W\n\n", idle)

	// Step 1, by hand, for one instruction: run the FMA microbenchmark
	// and apply Eq. 5: EPI = (P_active - P_idle) * T / N.
	bench := microbench.ComputeBench(isa.OpFFMA32)
	m, err := dev.Run(bench.App)
	if err != nil {
		log.Fatal(err)
	}
	n := m.Result.Counts.Inst[isa.OpFFMA32]
	epi := (m.KernelPowerWatts - idle) * m.KernelSeconds / float64(n)
	fmt.Printf("FFMA32 microbenchmark: P_active=%.1f W over %.3f ms, %d instructions\n",
		m.KernelPowerWatts, m.KernelSeconds*1e3, n)
	fmt.Printf("Eq. 5 => EPI = %.4f nJ (Table Ib: 0.05 nJ)\n\n", epi*1e9)

	// Steps 1-3, automated: the full calibration workflow with its
	// validation loop.
	res, err := calib.Calibrate(dev, calib.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full calibration converged in %d iteration(s); mixed-bench MAE %.2f%%\n\n",
		res.Iterations, res.MixedMAEPct())

	paper := core.K40Model()
	fmt.Println("recovered data-movement energies (nJ, vs published Table Ib):")
	for _, k := range []isa.TxnKind{isa.TxnShmToRF, isa.TxnL1ToRF, isa.TxnL2ToL1, isa.TxnDRAMToL2} {
		fmt.Printf("  %-14v %6.3f (published %.2f)\n", k, res.Model.EPT[k]*1e9, paper.EPT[k]*1e9)
	}

	fmt.Println("\nFig. 4a validation (modeled vs measured, mixed microbenchmarks):")
	for _, e := range res.MixedErrors {
		fmt.Printf("  %-22s %+6.2f%%\n", e.Name, e.ErrPct())
	}
}
