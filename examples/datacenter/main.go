// Datacenter provisioning: the paper's §II motivation made concrete.
// A cloud operator with a fixed facility power budget cares about
// throughput per megawatt, not raw speedup. This example provisions a
// 2 MW hall with different 32-module GPU designs running the same HPC
// job mix and reports how many job-copies fit the budget and the hall's
// aggregate throughput — showing why a faster-but-less-efficient
// upgrade can REDUCE datacenter capacity.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"gpujoule/internal/core"
	"gpujoule/internal/metrics"
	"gpujoule/internal/sim"
	"gpujoule/internal/stats"
	"gpujoule/internal/trace"
	"gpujoule/internal/workloads"
)

const (
	hallBudgetWatts = 2e6 // a 2 MW GPU hall
	gpms            = 32
)

func main() {
	params := workloads.Params{Scale: 0.25}
	var apps []*trace.App
	for _, name := range []string{"Lulesh-150", "Nekbone-12", "Kmeans", "Srad-v2"} {
		app, err := workloads.ByName(name, params)
		if err != nil {
			log.Fatal(err)
		}
		apps = append(apps, app)
	}

	type design struct {
		name  string
		cfg   sim.Config
		model *core.Model
	}
	onBoard := core.ProjectionModel(core.OnBoardLinks())
	onPackage := core.ProjectionModel(core.OnPackageLinks())
	mono := sim.MultiGPM(gpms, sim.BW2x)
	mono.Monolithic = true
	designs := []design{
		{"hypothetical 32x monolithic", mono, onPackage},
		{"32-GPM on-board, 1x-BW ring", sim.MultiGPM(gpms, sim.BW1x), onBoard},
		{"32-GPM on-package, 2x-BW ring", sim.MultiGPM(gpms, sim.BW2x), onPackage},
		{"32-GPM on-package, 4x-BW ring", sim.MultiGPM(gpms, sim.BW4x), onPackage},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "design\tavg power/GPU\tspeedup\tGPUs in 2 MW\thall throughput\n")
	var baseThroughput float64
	for i, d := range designs {
		var powers, speedups []float64
		for _, app := range apps {
			base, err := sim.Simulate(context.Background(), sim.MultiGPM(1, sim.BW2x), app)
			if err != nil {
				log.Fatal(err)
			}
			r, err := sim.Simulate(context.Background(), d.cfg, app)
			if err != nil {
				log.Fatal(err)
			}
			b := d.model.Estimate(&r.Counts)
			powers = append(powers, b.AveragePower())
			bs := metrics.Sample{EnergyJoules: d.model.EstimateEnergy(&base.Counts), DelaySeconds: base.Seconds()}
			ss := metrics.Sample{EnergyJoules: b.Total(), DelaySeconds: r.Seconds()}
			speedups = append(speedups, metrics.Speedup(bs, ss))
		}
		power := stats.Mean(powers)
		speedup := stats.Mean(speedups)
		gpus := hallBudgetWatts / power
		throughput := gpus * speedup // job-copies per 1-GPM-job-time
		if i == 0 {
			baseThroughput = throughput
		}
		fmt.Fprintf(w, "%s\t%.0f W\t%.1fx\t%.0f\t%.0f (%.2fx)\n",
			d.name, power, speedup, gpus, throughput, throughput/baseThroughput)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThroughput is GPU-count x per-GPU speedup under the fixed 2 MW budget:")
	fmt.Println("a design that scales performance while doubling energy DELIVERS LESS")
	fmt.Println("per megawatt — the §II argument for energy-first multi-module design.")
}
