// Interconnect trade-off study: for a datacenter-style 32-module GPU,
// compare ring vs switch topologies and 1x/2x/4x link bandwidths, and
// demonstrate the paper's counter-intuitive conclusion — spending 4x
// the energy per bit to double bandwidth *reduces* total energy
// (§V-C/§V-D).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"gpujoule/internal/core"
	"gpujoule/internal/interconnect"
	"gpujoule/internal/metrics"
	"gpujoule/internal/sim"
	"gpujoule/internal/stats"
	"gpujoule/internal/trace"
	"gpujoule/internal/workloads"
)

const gpms = 32

func main() {
	params := workloads.Params{Scale: 0.25}
	var apps []*trace.App
	for _, name := range []string{"MiniAMR", "Lulesh-150", "Nekbone-18", "Kmeans"} {
		app, err := workloads.ByName(name, params)
		if err != nil {
			log.Fatal(err)
		}
		apps = append(apps, app)
	}

	onBoard := core.ProjectionModel(core.OnBoardLinks())

	baseline := make(map[string]metrics.Sample, len(apps))
	for _, app := range apps {
		r, err := sim.Simulate(context.Background(), sim.MultiGPM(1, sim.BW2x), app)
		if err != nil {
			log.Fatal(err)
		}
		baseline[app.Name] = metrics.Sample{
			EnergyJoules: onBoard.EstimateEnergy(&r.Counts),
			DelaySeconds: r.Seconds(),
		}
	}

	type design struct {
		name  string
		bw    sim.BWSetting
		topo  interconnect.Topology
		model *core.Model
	}
	designs := []design{
		{"ring 1x-BW, 10 pJ/bit", sim.BW1x, interconnect.TopologyRing, onBoard},
		{"ring 1x-BW, 40 pJ/bit", sim.BW1x, interconnect.TopologyRing, onBoard.WithLinkEnergy(4)},
		{"ring 2x-BW, 40 pJ/bit", sim.BW2x, interconnect.TopologyRing, onBoard.WithLinkEnergy(4)},
		{"ring 4x-BW, 10 pJ/bit", sim.BW4x, interconnect.TopologyRing, onBoard},
		{"switch 1x-BW, 10 pJ/bit", sim.BW1x, interconnect.TopologySwitch, onBoard},
		{"switch 2x-BW, 10 pJ/bit", sim.BW2x, interconnect.TopologySwitch, onBoard},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "32-GPM design\tavg speedup\tavg energy vs 1-GPM\tavg EDPSE\n")
	for _, d := range designs {
		cfg := sim.MultiGPM(gpms, d.bw)
		cfg.Topology = d.topo
		cfg.Domain = sim.DomainOnBoard
		var sp, er, ed []float64
		for _, app := range apps {
			r, err := sim.Simulate(context.Background(), cfg, app)
			if err != nil {
				log.Fatal(err)
			}
			s := metrics.Sample{
				EnergyJoules: d.model.EstimateEnergy(&r.Counts),
				DelaySeconds: r.Seconds(),
			}
			b := baseline[app.Name]
			sp = append(sp, metrics.Speedup(b, s))
			er = append(er, metrics.EnergyRatio(b, s))
			ed = append(ed, metrics.EDPSE(b, gpms, s))
		}
		fmt.Fprintf(w, "%s\t%.2fx\t%.2fx\t%.1f%%\n",
			d.name, stats.Mean(sp), stats.Mean(er), stats.Mean(ed))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNote how per-bit link energy barely moves the needle while link")
	fmt.Println("bandwidth and topology dominate — the paper's §V-C conclusion.")
}
