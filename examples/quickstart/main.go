// Quickstart: simulate one workload on a 4-module GPU, estimate its
// energy with GPUJoule, and compute the paper's EDP Scaling Efficiency
// against the single-module baseline — the whole pipeline in ~40
// lines.
package main

import (
	"context"
	"fmt"
	"log"

	"gpujoule/internal/core"
	"gpujoule/internal/metrics"
	"gpujoule/internal/sim"
	"gpujoule/internal/workloads"
)

func main() {
	// 1. Build a workload trace (Table II's STREAM triad, reduced size).
	app, err := workloads.ByName("Stream", workloads.Params{Scale: 0.25})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Simulate it on the 1-GPM baseline and on a 4-GPM on-package
	//    design with 1:1 inter-GPM to DRAM bandwidth (Table IV, 2x-BW).
	ctx := context.Background()
	base, err := sim.Simulate(ctx, sim.MultiGPM(1, sim.BW2x), app)
	if err != nil {
		log.Fatal(err)
	}
	quad, err := sim.Simulate(ctx, sim.MultiGPM(4, sim.BW2x), app)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Estimate energy with the GPUJoule projection model (Eq. 4).
	model := core.ProjectionModel(core.OnPackageLinks())
	baseSample := metrics.Sample{
		EnergyJoules: model.EstimateEnergy(&base.Counts),
		DelaySeconds: base.Seconds(),
	}
	quadSample := metrics.Sample{
		EnergyJoules: model.EstimateEnergy(&quad.Counts),
		DelaySeconds: quad.Seconds(),
	}

	// 4. Derive the scaling metrics (Eqs. 1-2).
	pt := metrics.Derive(baseSample, 4, quadSample)
	fmt.Printf("%s: 1-GPM %.3f ms / %.3f J -> 4-GPM %.3f ms / %.3f J\n",
		app.Name,
		baseSample.DelaySeconds*1e3, baseSample.EnergyJoules,
		quadSample.DelaySeconds*1e3, quadSample.EnergyJoules)
	fmt.Println(pt)
}
