// Scaling study: sweep an HPC workload mix from 1 to 32 GPU modules at
// the baseline on-package configuration and report, per step, the
// incremental speedup, the energy growth, and EDPSE — the Fig. 6/7
// analysis as a library client would write it.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"gpujoule/internal/core"
	"gpujoule/internal/metrics"
	"gpujoule/internal/sim"
	"gpujoule/internal/stats"
	"gpujoule/internal/trace"
	"gpujoule/internal/workloads"
)

func main() {
	params := workloads.Params{Scale: 0.25}
	// An HPC-flavoured mix: two CORAL solvers, one stencil, one
	// streaming kernel.
	var apps []*trace.App
	for _, name := range []string{"Lulesh-150", "Nekbone-12", "Srad-v2", "Stream"} {
		app, err := workloads.ByName(name, params)
		if err != nil {
			log.Fatal(err)
		}
		apps = append(apps, app)
	}

	model := core.ProjectionModel(core.OnPackageLinks())
	type point struct {
		res *sim.Result
		s   metrics.Sample
	}
	run := func(app *trace.App, n int) point {
		r, err := sim.Simulate(context.Background(), sim.MultiGPM(n, sim.BW2x), app)
		if err != nil {
			log.Fatal(err)
		}
		return point{res: r, s: metrics.Sample{
			EnergyJoules: model.EstimateEnergy(&r.Counts),
			DelaySeconds: r.Seconds(),
		}}
	}

	bases := make(map[string]point, len(apps))
	for _, app := range apps {
		bases[app.Name] = run(app, 1)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "GPMs\tavg speedup\tavg energy\tavg EDPSE\tavg remote fills")
	for _, n := range []int{2, 4, 8, 16, 32} {
		var sp, er, ed, rf []float64
		for _, app := range apps {
			base := bases[app.Name]
			p := run(app, n)
			pt := metrics.Derive(base.s, n, p.s)
			sp = append(sp, pt.Speedup)
			er = append(er, pt.EnergyRatio)
			ed = append(ed, pt.EDPSE)
			rf = append(rf, p.res.RemoteFillFraction())
		}
		fmt.Fprintf(w, "%d\t%.2fx\t%.2fx\t%.1f%%\t%.1f%%\n",
			n, stats.Mean(sp), stats.Mean(er), stats.Mean(ed), stats.Mean(rf)*100)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe paper's diagnosis: once inter-GPM bandwidth saturates, GPM idle")
	fmt.Println("time exposes constant energy and EDPSE collapses (§V-B).")
}
