module gpujoule

go 1.22
