// Package bottomup implements a GPUWattch/McPAT-style bottom-up GPU
// energy model: per-microarchitectural-component access energies plus
// structure leakage and clock power, combined with switching-activity
// counts (§II).
//
// The paper's motivation for GPUJoule is that such models are fragile:
// every parameter encodes guessed microarchitectural detail, and a
// model tuned for one generation mis-predicts the next until it is
// painstakingly retuned ("adopting a commonly used bottom-up energy
// model that was tuned for NVIDIA's Fermi architecture without
// retuning it to the Kepler generation led to an average error of over
// 100%"). This package exists to reproduce that comparison against the
// reference silicon: a Kepler-tuned instance tracks reality, while the
// Fermi-tuned instance — correct for its own generation — overshoots
// badly on Kepler-class hardware.
package bottomup

import (
	"fmt"

	"gpujoule/internal/isa"
)

// Params is a bottom-up parameterization: per-component access
// energies (joules) and static/clock power (watts), all of which a
// modeler must guess from die photos, process scaling rules, and
// microbenchmark reverse engineering.
type Params struct {
	// Name identifies the tuning (e.g. "Fermi-40nm").
	Name string

	// Per-thread-instruction front-end energy: fetch, decode,
	// scheduling, and operand-collector overhead.
	FrontEnd float64
	// Register-file energy per operand access.
	RFAccess float64
	// OperandsPerInst is the modeled average operand count.
	OperandsPerInst float64

	// Functional-unit energy per thread operation, by unit.
	IntALU, FP32ALU, FP64ALU, SFU float64

	// Memory-structure energies per modeled transaction. The
	// transaction granularity is itself a microarchitectural guess:
	// TxnBytes is what the modeler believes the L2/DRAM transfer size
	// is (128 B on Fermi, 32 B sectors on Kepler).
	SharedAccess, L1Access, L2Access, DRAMAccess float64
	TxnBytes                                     int

	// Static power: leakage per SM and per MB of L2, plus clock-tree
	// power per SM and board overhead.
	LeakPerSM, LeakPerMBL2, ClockPerSM, Board float64
}

// Model applies a Params tuning to event counts.
type Model struct {
	P Params
	// SMs and L2MB describe the machine the model THINKS it is
	// estimating (the Kepler-class reference: 16 SMs, 2 MB L2).
	SMs  int
	L2MB float64
	// ClockHz converts cycles to seconds.
	ClockHz float64
}

// New builds a bottom-up model instance for a 16-SM, 2-MB-L2 module at
// 1 GHz.
func New(p Params) *Model {
	return &Model{P: p, SMs: 16, L2MB: 2, ClockHz: 1e9}
}

// unitFor maps an instruction class to its functional-unit energy.
func (m *Model) unitFor(op isa.Op) float64 {
	switch op {
	case isa.OpIAdd32, isa.OpISub32, isa.OpAnd32, isa.OpOr32, isa.OpXor32:
		return m.P.IntALU
	case isa.OpIMul32, isa.OpIMad32:
		return m.P.IntALU * 2
	case isa.OpFAdd32, isa.OpFMul32, isa.OpFFMA32:
		return m.P.FP32ALU
	case isa.OpFAdd64, isa.OpFMul64, isa.OpFFMA64:
		return m.P.FP64ALU
	case isa.OpSin32, isa.OpCos32, isa.OpSqrt32, isa.OpLog2_32, isa.OpExp2_32, isa.OpRcp32:
		return m.P.SFU
	default:
		return 0
	}
}

// Estimate computes the bottom-up energy of a run from its event
// counts. Unlike GPUJoule's Eq. 4, every term leans on assumed
// microarchitectural structure (operand counts, transaction sizes,
// leakage per structure).
func (m *Model) Estimate(c *isa.Counts) float64 {
	var dynamic float64
	for op := isa.OpFAdd32; op <= isa.OpRcp32; op++ {
		n := float64(c.Inst[op])
		dynamic += n * (m.P.FrontEnd + m.P.OperandsPerInst*m.P.RFAccess + m.unitFor(op))
	}
	// Memory instructions pay front-end and RF costs too.
	for _, op := range []isa.Op{isa.OpLoadGlobal, isa.OpStoreGlobal, isa.OpLoadShared, isa.OpStoreShared} {
		dynamic += float64(c.Inst[op]) * (m.P.FrontEnd + m.P.RFAccess)
	}

	// Data movement at the modeler's assumed transaction size: counts
	// are in 32-byte sectors (what the hardware reports); the model
	// re-buckets them into its own granularity.
	sectorsPerTxn := float64(m.P.TxnBytes) / float64(isa.SectorBytes)
	dynamic += float64(c.Txn[isa.TxnShmToRF]) * m.P.SharedAccess
	dynamic += float64(c.Txn[isa.TxnL1ToRF]) * m.P.L1Access
	dynamic += float64(c.Txn[isa.TxnL2ToL1]) / sectorsPerTxn * m.P.L2Access
	dynamic += float64(c.Txn[isa.TxnDRAMToL2]) / sectorsPerTxn * m.P.DRAMAccess

	seconds := float64(c.Cycles) / m.ClockHz
	static := (m.P.LeakPerSM+m.P.ClockPerSM)*float64(m.SMs) +
		m.P.LeakPerMBL2*m.L2MB + m.P.Board
	return dynamic + static*seconds
}

// TunedKepler returns a bottom-up parameterization tuned for the
// 28 nm Kepler-class reference silicon: with its transaction sizes and
// process energies right, it lands in the same accuracy class as the
// calibrated top-down model (minus the effects neither can see).
func TunedKepler() *Model {
	return New(Params{
		Name:            "Kepler-28nm",
		FrontEnd:        0.015e-9,
		RFAccess:        0.008e-9,
		OperandsPerInst: 3,
		IntALU:          0.030e-9,
		FP32ALU:         0.012e-9,
		FP64ALU:         0.115e-9,
		SFU:             0.055e-9,
		SharedAccess:    5.2e-9,
		L1Access:        5.7e-9,
		L2Access:        3.9e-9, // per 32 B sector
		DRAMAccess:      7.7e-9, // per 32 B sector
		TxnBytes:        32,     // Kepler L2/DRAM move sectors
		LeakPerSM:       0.9,
		LeakPerMBL2:     1.2,
		ClockPerSM:      1.05,
		Board:           22,
	})
}

// TunedFermi returns the same model tuned for 40 nm Fermi — correct
// for its own generation, wrong for Kepler: roughly 2x the per-op
// dynamic energy (process node), higher leakage, and 128-byte
// non-sectored L2/DRAM transactions. Applying it to Kepler-class
// counts reproduces the >100% average error of §II.
func TunedFermi() *Model {
	return New(Params{
		Name:            "Fermi-40nm",
		FrontEnd:        0.033e-9,
		RFAccess:        0.017e-9,
		OperandsPerInst: 3,
		IntALU:          0.065e-9,
		FP32ALU:         0.026e-9,
		FP64ALU:         0.24e-9,
		SFU:             0.12e-9,
		SharedAccess:    10.5e-9,
		L1Access:        11.5e-9,
		L2Access:        16.0e-9, // per assumed 128 B line
		DRAMAccess:      31.0e-9, // per assumed 128 B line
		TxnBytes:        128,     // Fermi moved whole lines
		LeakPerSM:       2.1,
		LeakPerMBL2:     2.6,
		ClockPerSM:      1.9,
		Board:           28,
	})
}

// String describes the model.
func (m *Model) String() string {
	return fmt.Sprintf("bottom-up(%s)", m.P.Name)
}
