package bottomup

import (
	"testing"

	"gpujoule/internal/isa"
)

func sampleCounts() *isa.Counts {
	var c isa.Counts
	c.Inst[isa.OpFFMA32] = 1e9
	c.Inst[isa.OpFAdd64] = 2e8
	c.Inst[isa.OpSin32] = 5e7
	c.Inst[isa.OpLoadGlobal] = 1e8
	c.Txn[isa.TxnShmToRF] = 1e6
	c.Txn[isa.TxnL1ToRF] = 1e8
	c.Txn[isa.TxnL2ToL1] = 2e8
	c.Txn[isa.TxnDRAMToL2] = 1e8
	c.Cycles = 5e6
	c.SMCount = 16
	c.GPMCount = 1
	return &c
}

func TestKeplerTuningMatchesTableIbScale(t *testing.T) {
	// The Kepler tuning's per-instruction totals must land near the
	// Table Ib EPIs (that is what "tuned for this generation" means).
	m := TunedKepler()
	perFMA := m.P.FrontEnd + m.P.OperandsPerInst*m.P.RFAccess + m.P.FP32ALU
	if perFMA < 0.04e-9 || perFMA > 0.07e-9 {
		t.Errorf("Kepler FMA energy %.3g, want near Table Ib's 0.05 nJ", perFMA)
	}
	perDP := m.P.FrontEnd + m.P.OperandsPerInst*m.P.RFAccess + m.P.FP64ALU
	if perDP < 0.12e-9 || perDP > 0.20e-9 {
		t.Errorf("Kepler FP64 energy %.3g, want near Table Ib's 0.16 nJ", perDP)
	}
}

func TestFermiTuningIsHotter(t *testing.T) {
	// Everything about the 40 nm tuning costs more than the 28 nm one.
	f, k := TunedFermi().P, TunedKepler().P
	pairs := [][2]float64{
		{f.FrontEnd, k.FrontEnd}, {f.RFAccess, k.RFAccess},
		{f.IntALU, k.IntALU}, {f.FP32ALU, k.FP32ALU}, {f.FP64ALU, k.FP64ALU},
		{f.SFU, k.SFU}, {f.SharedAccess, k.SharedAccess}, {f.L1Access, k.L1Access},
		{f.LeakPerSM, k.LeakPerSM}, {f.ClockPerSM, k.ClockPerSM},
	}
	for i, p := range pairs {
		if p[0] <= p[1] {
			t.Errorf("parameter %d: Fermi %.3g not above Kepler %.3g", i, p[0], p[1])
		}
	}
	if f.TxnBytes != 128 || k.TxnBytes != 32 {
		t.Error("Fermi moves 128 B lines, Kepler 32 B sectors")
	}
}

func TestStaleTuningOvershoots(t *testing.T) {
	// The §II effect in isolation: identical counts, two tunings. On a
	// compute-dominated run the stale tuning overshoots by the full
	// process gap (~2x); on memory-heavy counts the overshoot is
	// smaller, because the line-vs-sector re-bucketing partially
	// cancels the per-bit gap — which is why the streaming workloads
	// show the smallest Fermi-tuned errors in the fidelity study.
	mixed := sampleCounts()
	ratioMixed := TunedFermi().Estimate(mixed) / TunedKepler().Estimate(mixed)
	if ratioMixed < 1.25 || ratioMixed > 2.6 {
		t.Errorf("stale tuning overshoot on mixed counts %.2fx, want 1.25-2.6x", ratioMixed)
	}

	var compute isa.Counts
	compute.Inst[isa.OpFFMA32] = 1e9
	compute.Inst[isa.OpFAdd64] = 2e8
	compute.Cycles = 3e6
	compute.SMCount = 16
	ratioCompute := TunedFermi().Estimate(&compute) / TunedKepler().Estimate(&compute)
	if ratioCompute < 1.7 || ratioCompute > 2.6 {
		t.Errorf("stale tuning overshoot on compute counts %.2fx, want ~2x", ratioCompute)
	}
	if ratioCompute <= ratioMixed {
		t.Errorf("compute-dominated overshoot (%.2fx) should exceed memory-diluted (%.2fx)",
			ratioCompute, ratioMixed)
	}
}

func TestEstimateComponents(t *testing.T) {
	// Zero counts: only static power over the elapsed time remains.
	m := TunedKepler()
	var c isa.Counts
	c.Cycles = 1e6 // 1 ms
	c.SMCount = 16
	want := ((m.P.LeakPerSM+m.P.ClockPerSM)*16 + m.P.LeakPerMBL2*2 + m.P.Board) * 1e-3
	got := m.Estimate(&c)
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("idle estimate %.6g, want %.6g", got, want)
	}

	// Adding instructions strictly increases energy.
	c.Inst[isa.OpFFMA32] = 1e9
	if m.Estimate(&c) <= got {
		t.Error("dynamic energy missing")
	}
}

func TestSectorRebucketing(t *testing.T) {
	// The Fermi tuning charges per 128 B transaction, so N sectors are
	// re-bucketed into N/4 transactions.
	var c isa.Counts
	c.Txn[isa.TxnDRAMToL2] = 400
	c.Cycles = 1
	f := TunedFermi()
	k := TunedKepler()
	fermiDyn := f.Estimate(&c) - f.Estimate(&isa.Counts{Cycles: 1})
	keplerDyn := k.Estimate(&c) - k.Estimate(&isa.Counts{Cycles: 1})
	wantFermi := 100 * f.P.DRAMAccess // 400 sectors = 100 Fermi lines
	if diff := fermiDyn - wantFermi; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("Fermi DRAM energy %.3g, want %.3g", fermiDyn, wantFermi)
	}
	wantKepler := 400 * k.P.DRAMAccess
	if diff := keplerDyn - wantKepler; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("Kepler DRAM energy %.3g, want %.3g", keplerDyn, wantKepler)
	}
}

func TestString(t *testing.T) {
	if TunedFermi().String() != "bottom-up(Fermi-40nm)" {
		t.Errorf("String = %q", TunedFermi().String())
	}
}
