// Package calib implements the GPUJoule modeling workflow of Fig. 3
// against a reference device:
//
//  1. run the microbenchmark suite and derive EPI/EPT values with
//     Eq. 5 (energy-per-instruction from steady-state power deltas),
//     combining the data-movement measurements by solving the small
//     linear system their transaction mixes form;
//  2. assemble the initial energy model;
//  3. validate against mixed-instruction microbenchmarks (Fig. 4a),
//     iterating with longer-running benchmarks if accuracy is not
//     reached;
//  4. validate against real applications (Fig. 4b).
//
// Calibration observes only what the paper's methodology could: event
// counts (profilers) and power-sensor readings. The hidden bottom-up
// model of the reference silicon is never consulted.
package calib

import (
	"fmt"
	"math"

	"gpujoule/internal/core"
	"gpujoule/internal/dvfs"
	"gpujoule/internal/isa"
	"gpujoule/internal/microbench"
	"gpujoule/internal/silicon"
	"gpujoule/internal/stats"
	"gpujoule/internal/trace"
)

// NamedError is one validation point: modeled vs. measured energy.
type NamedError struct {
	// Name identifies the benchmark or application.
	Name string
	// ModeledJoules is the GPUJoule estimate from event counts.
	ModeledJoules float64
	// MeasuredJoules is the sensor-derived measurement.
	MeasuredJoules float64
}

// ErrPct returns the relative error in percent (Fig. 4 convention).
func (e NamedError) ErrPct() float64 {
	return stats.RelErrPct(e.ModeledJoules, e.MeasuredJoules)
}

// Result is the outcome of a full calibration run.
type Result struct {
	// Model is the calibrated GPUJoule instance.
	Model *core.Model
	// IdleWatts is the measured constant power.
	IdleWatts float64
	// MixedErrors are the Fig. 4a validation points.
	MixedErrors []NamedError
	// Iterations is the number of validation refinement passes used.
	Iterations int
}

// MixedMAEPct returns the mean absolute error over the mixed suite.
func (r *Result) MixedMAEPct() float64 {
	errs := make([]float64, len(r.MixedErrors))
	for i, e := range r.MixedErrors {
		errs[i] = e.ErrPct()
	}
	return stats.MeanAbs(errs)
}

// Options tunes the calibration workflow.
type Options struct {
	// TargetMixedMAEPct is the Fig. 3 accuracy gate for the mixed
	// validation step; calibration re-runs with longer benchmarks
	// until it is met or MaxIterations is reached. Zero means 10%.
	TargetMixedMAEPct float64
	// MaxIterations bounds the refinement loop. Zero means 3.
	MaxIterations int
}

func (o Options) target() float64 {
	if o.TargetMixedMAEPct <= 0 {
		return 10
	}
	return o.TargetMixedMAEPct
}

func (o Options) maxIter() int {
	if o.MaxIterations <= 0 {
		return 3
	}
	return o.MaxIterations
}

// Calibrate runs the full Fig. 3 workflow on the device.
func Calibrate(dev *silicon.Device, opts Options) (*Result, error) {
	var last *Result
	for iter := 1; iter <= opts.maxIter(); iter++ {
		model, idle, err := calibrateOnce(dev)
		if err != nil {
			return nil, err
		}
		mixed, err := validateSuite(dev, model, microbench.MixedSuite())
		if err != nil {
			return nil, err
		}
		last = &Result{Model: model, IdleWatts: idle, MixedErrors: mixed, Iterations: iter}
		if last.MixedMAEPct() <= opts.target() {
			return last, nil
		}
	}
	return last, nil
}

// CalibrateAt reclocks the device to an operating point on its V/f
// curve and runs the full Fig. 3 workflow there. The whole
// microbenchmark suite re-executes on the reclocked silicon, so the
// calibrated EPI/EPT/ConstPower values absorb the frequency-dependent
// effects (leakage, clock tree, short-circuit slope) that the top-down
// V² scaling rule cannot predict. The nominal point is identical to
// Calibrate.
func CalibrateAt(dev *silicon.Device, p dvfs.OperatingPoint, opts Options) (*Result, error) {
	rd, err := dev.AtOperatingPoint(p)
	if err != nil {
		return nil, err
	}
	return Calibrate(rd, opts)
}

// CurveResult is one operating point's calibration outcome.
type CurveResult struct {
	Point  dvfs.OperatingPoint
	Result *Result
}

// CalibrateCurve calibrates the device at every point of its V/f curve,
// ascending in frequency — the per-operating-point model family the
// DVFS studies consume.
func CalibrateCurve(dev *silicon.Device, opts Options) ([]CurveResult, error) {
	curve := dev.Curve()
	if curve == nil {
		return nil, fmt.Errorf("calib: device has no V/f curve: %w", dvfs.ErrOffCurve)
	}
	out := make([]CurveResult, 0, len(curve.Points()))
	for _, p := range curve.Points() {
		r, err := CalibrateAt(dev, p, opts)
		if err != nil {
			return nil, fmt.Errorf("calib: at %v: %w", p, err)
		}
		out = append(out, CurveResult{Point: p, Result: r})
	}
	return out, nil
}

// calibrateOnce performs steps 1-2 of Fig. 3.
func calibrateOnce(dev *silicon.Device) (*core.Model, float64, error) {
	idle := dev.IdlePowerReading()

	model := &core.Model{
		Name:       "GPUJoule-calibrated",
		ConstPower: idle,
		ClockHz:    dev.ClockHz(),
	}

	// Step 1a: compute EPIs via Eq. 5. The pure-ALU benchmarks stall
	// negligibly at full occupancy, so the raw power delta is the
	// instruction energy.
	for _, b := range microbench.ComputeSuite() {
		m, err := dev.Run(b.App)
		if err != nil {
			return nil, 0, fmt.Errorf("calib: compute bench %s: %w", b.Name, err)
		}
		n := m.Result.Counts.Inst[b.Op]
		if n == 0 {
			return nil, 0, fmt.Errorf("calib: compute bench %s executed no %v", b.Name, b.Op)
		}
		active := m.KernelPowerWatts - idle
		model.EPI[b.Op] = active * m.KernelSeconds / float64(n)
		if model.EPI[b.Op] < 0 {
			model.EPI[b.Op] = 0
		}
	}

	// Step 1b: lane-stall energy from the low-occupancy probe, after
	// subtracting the now-known instruction energies.
	stallBench := microbench.StallBench()
	m, err := dev.Run(stallBench.App)
	if err != nil {
		return nil, 0, fmt.Errorf("calib: stall bench: %w", err)
	}
	c := &m.Result.Counts
	residual := (m.KernelPowerWatts-idle)*m.KernelSeconds - instructionJoules(model, c)
	if c.StallCycles > 0 && residual > 0 {
		model.EPStall = residual / float64(c.StallCycles)
	}

	// Step 1c: data-movement energies. Each memory benchmark yields
	// one equation Σ_k txns_bk · EPT_k = E_b(residual); the suite is
	// designed so the system is well-conditioned (shared memory and
	// DRAM nearly pure, L1/L2 carrying a known DRAM background
	// stream). Solve the 4x4 system.
	levels := []isa.TxnKind{isa.TxnShmToRF, isa.TxnL1ToRF, isa.TxnL2ToL1, isa.TxnDRAMToL2}
	suite := microbench.MemorySuite()
	if len(suite) != len(levels) {
		return nil, 0, fmt.Errorf("calib: memory suite has %d benches for %d levels", len(suite), len(levels))
	}
	a := make([][]float64, len(suite))
	rhs := make([]float64, len(suite))
	for i, b := range suite {
		m, err := dev.Run(b.App)
		if err != nil {
			return nil, 0, fmt.Errorf("calib: memory bench %s: %w", b.Name, err)
		}
		c := &m.Result.Counts
		row := make([]float64, len(levels))
		for j, k := range levels {
			row[j] = float64(c.Txn[k])
		}
		a[i] = row
		rhs[i] = (m.KernelPowerWatts-idle)*m.KernelSeconds -
			instructionJoules(model, c) -
			model.EPStall*float64(c.StallCycles)
	}
	ept, err := solveLinear(a, rhs)
	if err != nil {
		return nil, 0, fmt.Errorf("calib: solving transaction energies: %w", err)
	}
	for j, k := range levels {
		if ept[j] < 0 {
			ept[j] = 0
		}
		model.EPT[k] = ept[j]
	}

	if err := model.Validate(); err != nil {
		return nil, 0, err
	}
	return model, idle, nil
}

// instructionJoules sums the known compute-instruction energy of a run.
func instructionJoules(m *core.Model, c *isa.Counts) float64 {
	var e float64
	for op := range c.Inst {
		e += m.EPI[op] * float64(c.Inst[op])
	}
	return e
}

// validateSuite runs each benchmark, estimating energy from its event
// counts with the model and comparing with the sensor measurement.
func validateSuite(dev *silicon.Device, model *core.Model, suite []microbench.Bench) ([]NamedError, error) {
	out := make([]NamedError, 0, len(suite))
	for _, b := range suite {
		m, err := dev.Run(b.App)
		if err != nil {
			return nil, fmt.Errorf("calib: validating %s: %w", b.Name, err)
		}
		out = append(out, NamedError{
			Name:           b.Name,
			ModeledJoules:  model.EstimateEnergy(&m.Result.Counts),
			MeasuredJoules: m.SensorJoules,
		})
	}
	return out, nil
}

// ValidateApps performs step 4 of Fig. 3: end-to-end energy estimation
// error over real applications.
func ValidateApps(dev *silicon.Device, model *core.Model, apps []*trace.App) ([]NamedError, error) {
	out := make([]NamedError, 0, len(apps))
	for _, app := range apps {
		m, err := dev.Run(app)
		if err != nil {
			return nil, fmt.Errorf("calib: validating app %s: %w", app.Name, err)
		}
		out = append(out, NamedError{
			Name:           app.Name,
			ModeledJoules:  model.EstimateEnergy(&m.Result.Counts),
			MeasuredJoules: m.SensorJoules,
		})
	}
	return out, nil
}

// MAEPct returns the mean absolute error in percent over points.
func MAEPct(points []NamedError) float64 {
	errs := make([]float64, len(points))
	for i, p := range points {
		errs[i] = p.ErrPct()
	}
	return stats.MeanAbs(errs)
}

// solveLinear solves a·x = b by Gaussian elimination with partial
// pivoting. It is sized for the handful of equations calibration
// produces.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("calib: malformed system (%d rows, %d rhs)", n, len(b))
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("calib: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-18 {
			return nil, fmt.Errorf("calib: singular system at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		x[col], x[pivot] = x[pivot], x[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		sum := x[col]
		for c := col + 1; c < n; c++ {
			sum -= m[col][c] * x[c]
		}
		x[col] = sum / m[col][col]
	}
	return x, nil
}
