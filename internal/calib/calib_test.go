package calib

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gpujoule/internal/dvfs"
	"gpujoule/internal/isa"
	"gpujoule/internal/silicon"
	"gpujoule/internal/workloads"
)

func TestSolveLinearKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 => x = 1, y = 3.
	x, err := solveLinear([][]float64{{2, 1}, {1, 3}}, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solution %v, want [1 3]", x)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	x, err := solveLinear([][]float64{{0, 1}, {1, 0}}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("solution %v, want [3 2]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	if _, err := solveLinear([][]float64{{1, 2}, {2, 4}}, []float64{1, 2}); err == nil {
		t.Error("singular system must error")
	}
	if _, err := solveLinear(nil, nil); err == nil {
		t.Error("empty system must error")
	}
	if _, err := solveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("ragged system must error")
	}
}

func TestSolveLinearRoundTripProperty(t *testing.T) {
	// Property: solving A·x = A·x0 recovers x0 for diagonally dominant A.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4
		a := make([][]float64, n)
		x0 := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = r.Float64()
			}
			a[i][i] += float64(n) // dominance => well-conditioned
			x0[i] = r.Float64()*10 - 5
		}
		b := make([]float64, n)
		for i := range b {
			for j := range a[i] {
				b[i] += a[i][j] * x0[j]
			}
		}
		x, err := solveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-x0[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNamedErrorPct(t *testing.T) {
	e := NamedError{Name: "x", ModeledJoules: 90, MeasuredJoules: 100}
	if got := e.ErrPct(); math.Abs(got+10) > 1e-12 {
		t.Errorf("ErrPct = %g, want -10", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.target() != 10 || o.maxIter() != 3 {
		t.Error("zero options must default to 10% / 3 iterations")
	}
	o = Options{TargetMixedMAEPct: 5, MaxIterations: 7}
	if o.target() != 5 || o.maxIter() != 7 {
		t.Error("explicit options ignored")
	}
}

// TestCalibrationRecoversTableIb is the core §IV claim: the Fig. 3
// workflow, given only sensor readings and event counts, recovers the
// published Table Ib energies from the reference silicon.
func TestCalibrationRecoversTableIb(t *testing.T) {
	dev := silicon.NewK40()
	res, err := Calibrate(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.IdleWatts != 25 {
		t.Errorf("idle %g, want 25", res.IdleWatts)
	}

	published := map[isa.Op]float64{
		isa.OpFAdd32: 0.06, isa.OpFFMA32: 0.05, isa.OpIAdd32: 0.07,
		isa.OpSin32: 0.10, isa.OpFFMA64: 0.16, isa.OpRcp32: 0.31,
	}
	for op, want := range published {
		got := res.Model.EPI[op] * 1e9
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("EPI[%v] = %.4f nJ, want %.2f within 10%%", op, got, want)
		}
	}
	ept := map[isa.TxnKind]float64{
		isa.TxnShmToRF: 5.45, isa.TxnL1ToRF: 5.99,
		isa.TxnL2ToL1: 3.96, isa.TxnDRAMToL2: 7.82,
	}
	for k, want := range ept {
		got := res.Model.EPT[k] * 1e9
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("EPT[%v] = %.3f nJ, want %.2f within 10%%", k, got, want)
		}
	}
	// EPStall and ConstPower recovered too.
	if got := res.Model.EPStall * 1e9; math.Abs(got-2.2)/2.2 > 0.15 {
		t.Errorf("EPStall = %.3f nJ, want ≈2.2", got)
	}
}

// TestFig4aErrorsWithinPaperRange checks the mixed-benchmark validation
// stays in the paper's published band (within +2.5%/-6%, allowing a
// slightly wider floor for our substitute silicon).
func TestFig4aErrorsWithinPaperRange(t *testing.T) {
	dev := silicon.NewK40()
	res, err := Calibrate(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MixedErrors) != 5 {
		t.Fatalf("Fig. 4a has 5 points, got %d", len(res.MixedErrors))
	}
	for _, e := range res.MixedErrors {
		if err := e.ErrPct(); err > 4 || err < -10 {
			t.Errorf("%s error %.2f%% outside the Fig. 4a band", e.Name, err)
		}
	}
	if res.MixedMAEPct() > 6 {
		t.Errorf("mixed MAE %.2f%%, want small", res.MixedMAEPct())
	}
}

// TestFig4bStructure checks the application-validation error structure
// of Fig. 4b at reduced scale: a reasonable MAE and the paper's four
// outlier applications standing out for the paper's reasons.
func TestFig4bStructure(t *testing.T) {
	dev := silicon.NewK40()
	res, err := Calibrate(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	apps := workloads.All(workloads.Params{Scale: 0.25})
	errs, err := ValidateApps(dev, res.Model, apps)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 18 {
		t.Fatalf("Fig. 4b covers 18 applications, got %d", len(errs))
	}
	byName := make(map[string]float64, len(errs))
	for _, e := range errs {
		byName[e.Name] = e.ErrPct()
	}
	// Low-memory-utilization apps are underestimated...
	for _, name := range []string{"RSBench", "CoMD"} {
		if byName[name] > -15 {
			t.Errorf("%s should be strongly underestimated, got %+.1f%%", name, byName[name])
		}
	}
	// ...and short-launch apps are overestimated against the blurred
	// sensor.
	for _, name := range []string{"BFS", "MiniAMR"} {
		if byName[name] < 15 {
			t.Errorf("%s should be strongly overestimated, got %+.1f%%", name, byName[name])
		}
	}
	if mae := MAEPct(errs); mae > 20 {
		t.Errorf("Fig. 4b MAE %.1f%%, want near the paper's 9.4%%", mae)
	}
	// The well-behaved bulk stays accurate.
	for _, name := range []string{"Stream", "Lulesh-150", "Nekbone-12", "Kmeans"} {
		if math.Abs(byName[name]) > 12 {
			t.Errorf("%s error %+.1f%%, want within ±12%%", name, byName[name])
		}
	}
}

// TestCalibrateAtRecoversReclockedSilicon runs the full Fig. 3 workflow
// on silicon reclocked to 800 MHz / 0.90 V. The recalibrated model must
// meet the same accuracy gate as at nominal and absorb the reclocked
// physics: cheaper per-instruction dynamic energy and lower constant
// power than the nominal calibration.
func TestCalibrateAtRecoversReclockedSilicon(t *testing.T) {
	dev := silicon.NewK40()
	nom, err := Calibrate(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	low, err := CalibrateAt(dev, dvfs.OperatingPoint{FreqHz: 800e6, Voltage: 0.90}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mae := low.MixedMAEPct(); mae > 10 {
		t.Errorf("mixed MAE %.2f%% at 800 MHz, want <= 10%%", mae)
	}
	if low.Model.ClockHz != 800e6 {
		t.Errorf("recalibrated clock %g, want 800e6", low.Model.ClockHz)
	}
	if low.Model.EPI[isa.OpFFMA32] >= nom.Model.EPI[isa.OpFFMA32] {
		t.Errorf("EPI[FFMA32] %g at 0.90 V, want below nominal %g",
			low.Model.EPI[isa.OpFFMA32], nom.Model.EPI[isa.OpFFMA32])
	}
	if low.IdleWatts >= nom.IdleWatts {
		t.Errorf("idle %g W at 800 MHz, want below nominal %g W", low.IdleWatts, nom.IdleWatts)
	}
	// Off-curve requests surface the typed sentinel.
	if _, err := CalibrateAt(dev, dvfs.OperatingPoint{FreqHz: 850e6}, Options{}); !errors.Is(err, dvfs.ErrOffCurve) {
		t.Errorf("850 MHz error = %v, want ErrOffCurve", err)
	}
}
