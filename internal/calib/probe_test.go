package calib

import (
	"os"
	"testing"

	"gpujoule/internal/isa"
	"gpujoule/internal/silicon"
	"gpujoule/internal/workloads"
)

// TestProbeCalibration is an exploratory aid that prints the full
// calibration outcome: recovered Table Ib values, Fig. 4a mixed-bench
// errors, and Fig. 4b application errors.
func TestProbeCalibration(t *testing.T) {
	if os.Getenv("GPUJOULE_PROBE") == "" {
		t.Skip("exploratory probe; set GPUJOULE_PROBE=1 to run")
	}
	dev := silicon.NewK40()
	res, err := Calibrate(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("idle=%gW EPStall=%.3gnJ iterations=%d", res.IdleWatts, res.Model.EPStall*1e9, res.Iterations)
	for _, op := range isa.ComputeOps() {
		t.Logf("EPI %-8v calibrated=%.4f nJ", op, res.Model.EPI[op]*1e9)
	}
	for _, k := range []isa.TxnKind{isa.TxnShmToRF, isa.TxnL1ToRF, isa.TxnL2ToL1, isa.TxnDRAMToL2} {
		t.Logf("EPT %-14v calibrated=%.3f nJ", k, res.Model.EPT[k]*1e9)
	}
	for _, e := range res.MixedErrors {
		t.Logf("fig4a %-22s err=%+.2f%%", e.Name, e.ErrPct())
	}
	t.Logf("fig4a MAE=%.2f%%", res.MixedMAEPct())

	apps := workloads.All(workloads.Params{Scale: 1.0})
	appErrs, err := ValidateApps(dev, res.Model, apps)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range appErrs {
		t.Logf("fig4b %-11s err=%+.1f%%  (modeled %.3g J, measured %.3g J)",
			e.Name, e.ErrPct(), e.ModeledJoules, e.MeasuredJoules)
	}
	t.Logf("fig4b MAE=%.1f%%", MAEPct(appErrs))
}
