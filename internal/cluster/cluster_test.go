package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gpujoule/internal/service"
)

// swapHandler lets an httptest server start (fixing its URL) before
// the handler that needs that URL exists.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "starting", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// testNode is one cluster member under test.
type testNode struct {
	url string
	ts  *httptest.Server
	srv *service.Server
	fab *Fabric
}

// startNodes brings up an n-node loopback cluster with per-node disk
// caches under t.TempDir(). Node URLs are the httptest URLs, so the
// ring layout differs run to run — which is the point: determinism
// must not depend on placement.
func startNodes(t *testing.T, n int, fopts func(*Options)) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	urls := make([]string, n)
	for i := range nodes {
		sh := &swapHandler{}
		ts := httptest.NewServer(sh)
		t.Cleanup(ts.Close)
		nodes[i] = &testNode{url: ts.URL, ts: ts}
		urls[i] = ts.URL
	}
	for i, nd := range nodes {
		opts := Options{Self: nd.url, Nodes: urls, PeerTimeout: 5 * time.Second}
		if fopts != nil {
			fopts(&opts)
		}
		fab, err := NewFabric(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(fab.Close)
		srv, err := service.New(service.Options{
			CacheDir:  filepath.Join(t.TempDir(), fmt.Sprintf("node%d", i)),
			Executors: 4,
			QueueCap:  64,
			Cluster:   fab.Hooks(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		nd.fab, nd.srv = fab, srv
		sh := nd.ts.Config.Handler.(*swapHandler)
		sh.set(srv.Handler())
	}
	return nodes
}

// startGateway fronts the node set with a gateway on its own httptest
// server and returns a client dialed at it.
func startGateway(t *testing.T, nodes []*testNode) (*Gateway, *service.Client) {
	t.Helper()
	urls := make([]string, len(nodes))
	for i, nd := range nodes {
		urls[i] = nd.url
	}
	fab, err := NewFabric(Options{Nodes: urls, PeerTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fab.Close)
	local, err := service.New(service.Options{
		CacheDir:  filepath.Join(t.TempDir(), "gateway"),
		Executors: 4,
		QueueCap:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(local.Close)
	gw := NewGateway(local, fab, GatewayOptions{})
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	cl, err := service.Dial(service.WithBaseURL(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	return gw, cl
}

// testSpec is the shared sweep for the determinism tests: small enough
// to simulate quickly, wide enough (8 points, 2 workloads) to shard
// across a 3-node ring.
func testSpec() service.JobSpec {
	return service.JobSpec{Workloads: "Stream,Kmeans", Scale: 0.05, GPMs: "1,2", BWs: "1x,2x"}
}

// TestClusterDeterminism is the tentpole invariant: the rendered
// result document (and hence its sha256) is byte-identical whether a
// sweep runs on a single node, through a 3-node gateway, or through
// the same gateway after a node has been killed.
func TestClusterDeterminism(t *testing.T) {
	ctx := context.Background()
	spec := testSpec()

	// Reference: one plain single-node service.
	single, err := service.New(service.Options{Executors: 4, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	sts := httptest.NewServer(single.Handler())
	defer sts.Close()
	scl, err := service.Dial(service.WithBaseURL(sts.URL))
	if err != nil {
		t.Fatal(err)
	}
	refDoc, err := scl.RunSweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	ref := service.ResultDocDigest(*refDoc)

	// Distributed: 3 nodes behind a gateway, streamed.
	nodes := startNodes(t, 3, nil)
	_, gcl := startGateway(t, nodes)
	var mismatches int
	gotDoc, err := gcl.RunSweepStream(ctx, spec, func(ev service.JobEvent) {
		if ev.Kind == service.EventDigestMismatch {
			mismatches++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := service.ResultDocDigest(*gotDoc); got != ref {
		t.Errorf("gateway digest %s != single-node digest %s", got, ref)
	}
	if mismatches != 0 {
		t.Errorf("streamed reassembly hit %d digest mismatches", mismatches)
	}

	// Degraded: kill one node hard (drop live connections too) and
	// sweep again through the same gateway. Its points reroute to the
	// successor or compute on the gateway; bytes must not change.
	nodes[1].ts.CloseClientConnections()
	nodes[1].ts.Close()
	killedDoc, err := gcl.RunSweepStream(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := service.ResultDocDigest(*killedDoc); got != ref {
		t.Errorf("post-kill gateway digest %s != single-node digest %s", got, ref)
	}
}

// TestPeerCacheHit: a key computed on one node is served to another
// node from the peer cache — no recomputation, counted as PeerHits.
// Replication is disabled so the hit must come from peering, not from
// a replica that landed on the second node's own disk.
func TestPeerCacheHit(t *testing.T) {
	nodes := startNodes(t, 2, func(o *Options) { o.NoReplicate = true })
	ctx := context.Background()
	spec := testSpec()

	cla, err := service.Dial(service.WithBaseURL(nodes[0].url), service.WithNoRedirect())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cla.RunSweep(ctx, spec); err != nil {
		t.Fatal(err)
	}

	// With 2 nodes, Successors(key, 2) always includes node A, so
	// every one of B's local misses must resolve via peering.
	clb, err := service.Dial(service.WithBaseURL(nodes[1].url), service.WithNoRedirect())
	if err != nil {
		t.Fatal(err)
	}
	st, err := clb.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := clb.Wait(ctx, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ferr := fin.Err(); ferr != nil {
		t.Fatal(ferr)
	}
	if fin.PeerHits != fin.Points || fin.Submitted != 0 {
		t.Errorf("status = peer_hits %d, submitted %d over %d points; want all peer hits, nothing simulated",
			fin.PeerHits, fin.Submitted, fin.Points)
	}
	if hits := nodes[1].fab.peerHits.Load(); hits == 0 {
		t.Errorf("fabric counted %d peer hits", hits)
	}
}

// TestRouteReroutesUnhealthy: routing walks the successor chain past
// an unhealthy owner and counts the detour; with every remote down it
// degrades to local compute ("").
func TestRouteReroutesUnhealthy(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	fab, err := NewFabric(Options{Self: "http://a:1", Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()

	// Find a key owned by b with c as next successor, so the detour
	// lands on a remote node rather than self.
	var key string
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("sim-key-%d", i)
		succ := fab.Ring().Successors(k, 2)
		if succ[0] == "http://b:1" && succ[1] == "http://c:1" {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key with the wanted b->c successor chain in 10000 tries")
	}

	if got := fab.Route(key); got != "http://b:1" {
		t.Fatalf("healthy route = %q; want the owner b", got)
	}
	fab.MarkFailed("http://b:1")
	if got := fab.Route(key); got != "http://c:1" {
		t.Fatalf("route past unhealthy owner = %q; want the successor c", got)
	}
	if n := fab.rerouted.Load(); n != 1 {
		t.Errorf("rerouted counter = %d; want 1", n)
	}
	fab.MarkFailed("http://c:1")
	if got := fab.Route(key); got != "" {
		t.Errorf("route with all remotes down = %q; want \"\" (local compute)", got)
	}
}
