package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"gpujoule/internal/profiling"
	"gpujoule/internal/service"
	"gpujoule/internal/sim"
)

// Options configures a node's Fabric.
type Options struct {
	// Self is this node's own base URL exactly as it appears in Nodes
	// (empty for a gateway-only fabric that is not itself a ring
	// member).
	Self string
	// Nodes is the full cluster membership, including Self.
	Nodes []string
	// VNodes is the virtual-node count per physical node (<= 0 selects
	// DefaultVNodes).
	VNodes int
	// PeerTimeout bounds every peer cache request, including the
	// singleflight wait for a key the peer is computing right now
	// (default 5s). A wait that times out is a miss — the point
	// computes locally — never a health failure.
	PeerTimeout time.Duration
	// ReplicaQueue bounds the async replication queue (default 1024);
	// pushes beyond it are dropped and counted, never blocked on.
	ReplicaQueue int
	// NoReplicate disables pushing fresh results to the key's ring
	// owner and successor.
	NoReplicate bool
	// HTTPClient is the shared transport for peer requests (default: a
	// fresh client; pass one with a large pool for big clusters).
	HTTPClient *http.Client
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Fabric is one node's view of the cluster: the ring, per-peer
// health, cache peering, and the replication queue. Wire it into a
// service.Server via Hooks().
type Fabric struct {
	self    string
	ring    *Ring
	health  *healthTracker
	clients map[string]*service.Client
	timeout time.Duration
	logfFn  func(format string, args ...any)

	repCh   chan repTask
	repWG   sync.WaitGroup
	repOff  bool
	closing atomic.Bool

	peerHits    atomic.Uint64 // results served from a peer cache
	peerMisses  atomic.Uint64 // peer consultations that found nothing
	peerErrors  atomic.Uint64 // peer requests that failed (transport/protocol)
	stampSkips  atomic.Uint64 // peers skipped for a cache-stamp mismatch
	rerouted    atomic.Uint64 // keys routed past an unhealthy owner
	repSent     atomic.Uint64 // replica entries delivered
	repDropped  atomic.Uint64 // replica pushes dropped on a full queue
	repErrors   atomic.Uint64 // replica deliveries that failed
	repEnqueued atomic.Uint64 // replica deliveries accepted into the queue
}

// repTask is one queued replica delivery.
type repTask struct {
	node     string
	cacheKey string
	raw      []byte
}

// replicationWorkers is the concurrency of the replication drain: low
// on purpose — replication is a background optimization and must not
// compete with serving traffic for connections.
const replicationWorkers = 2

// NewFabric builds a node fabric. Callers must Close it.
func NewFabric(opts Options) (*Fabric, error) {
	if len(opts.Nodes) == 0 {
		return nil, errors.New("cluster: no nodes")
	}
	if opts.PeerTimeout <= 0 {
		opts.PeerTimeout = 5 * time.Second
	}
	if opts.ReplicaQueue <= 0 {
		opts.ReplicaQueue = 1024
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	f := &Fabric{
		self:    opts.Self,
		ring:    NewRing(opts.Nodes, opts.VNodes),
		health:  newHealthTracker(),
		clients: map[string]*service.Client{},
		timeout: opts.PeerTimeout,
		logfFn:  opts.Logf,
		repCh:   make(chan repTask, opts.ReplicaQueue),
		repOff:  opts.NoReplicate,
	}
	if opts.Self != "" && f.ring.Owner(opts.Self) == "" {
		return nil, errors.New("cluster: empty ring")
	}
	if opts.Self != "" {
		found := false
		for _, n := range f.ring.Nodes() {
			if n == opts.Self {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("cluster: self %q is not in the node list %v", opts.Self, f.ring.Nodes())
		}
	}
	for _, n := range f.ring.Nodes() {
		c, err := service.Dial(service.WithBaseURL(n), service.WithHTTPClient(hc), service.WithNoRedirect())
		if err != nil {
			return nil, err
		}
		f.clients[n] = c
	}
	for i := 0; i < replicationWorkers; i++ {
		f.repWG.Add(1)
		go f.replicator()
	}
	return f, nil
}

// Close stops the replication workers, dropping whatever is still
// queued (replication is best-effort by contract).
func (f *Fabric) Close() {
	if f.closing.Swap(true) {
		return
	}
	close(f.repCh)
	f.repWG.Wait()
}

// Ring exposes the fabric's hash ring.
func (f *Fabric) Ring() *Ring { return f.ring }

func (f *Fabric) logf(format string, args ...any) {
	if f.logfFn != nil {
		f.logfFn(format, args...)
	}
}

// MarkFailed records an out-of-band failure of a node (a gateway batch
// that died mid-stream), entering it into health backoff so routing
// steers around it.
func (f *Fabric) MarkFailed(node string) { f.health.MarkFail(node) }

// MarkOK records an out-of-band success.
func (f *Fabric) MarkOK(node string) { f.health.MarkOK(node) }

// Available reports whether the node is currently routable.
func (f *Fabric) Available(node string) bool { return f.health.Available(node) }

// Route returns the node that should handle simKey right now: the
// ring owner if healthy, else its first healthy successor ("degrading"
// clockwise), else "" — meaning compute locally. Self is reported as
// "" too (the caller is the right node already). Keys that route past
// an unhealthy owner are counted as rerouted.
func (f *Fabric) Route(simKey string) string {
	succ := f.ring.Successors(simKey, f.ring.Len())
	for i, node := range succ {
		if node == f.self {
			return ""
		}
		if f.health.Available(node) {
			if i > 0 {
				f.rerouted.Add(1)
			}
			return node
		}
	}
	return ""
}

// PeerGet consults the key's owner and first replica for a cached
// result, joining an in-flight computation on the serving node
// (wait=1) so a hot key computes once cluster-wide. It validates the
// peer's cache stamp and the entry's decodability before trusting it.
// Implements service.ClusterHooks.PeerGet.
func (f *Fabric) PeerGet(ctx context.Context, simKey, cacheKey string) (*sim.Result, bool) {
	stamp := service.CacheStamp()
	consulted := false
	for _, node := range f.ring.Successors(simKey, 2) {
		if node == f.self || !f.health.Available(node) {
			continue
		}
		consulted = true
		pctx, cancel := context.WithTimeout(ctx, f.timeout)
		raw, peerStamp, ok, err := f.clients[node].CacheGetRaw(pctx, cacheKey, true)
		cancel()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				// The peer is alive but slow (or still computing the
				// key): a miss, not a failure.
				continue
			}
			if ctx.Err() != nil {
				return nil, false // our own job died; don't blame the peer
			}
			f.peerErrors.Add(1)
			f.health.MarkFail(node)
			f.logf("cluster: peer %s cache get: %v", node, err)
			continue
		}
		f.health.MarkOK(node)
		if !ok {
			continue
		}
		if peerStamp != stamp {
			f.stampSkips.Add(1)
			f.logf("cluster: peer %s cache stamp %q != ours %q; skipping", node, peerStamp, stamp)
			continue
		}
		var res sim.Result
		if err := json.Unmarshal(raw, &res); err != nil {
			f.peerErrors.Add(1)
			f.logf("cluster: peer %s returned undecodable entry for %s: %v", node, cacheKey, err)
			continue
		}
		f.peerHits.Add(1)
		return &res, true
	}
	if consulted {
		f.peerMisses.Add(1)
	}
	return nil, false
}

// Replicate enqueues a freshly computed result for delivery to the
// key's ring owner and first successor (skipping self). Non-blocking:
// a full queue drops the push and counts it. Implements
// service.ClusterHooks.Replicate.
func (f *Fabric) Replicate(simKey, cacheKey string, res *sim.Result) {
	if f.repOff || f.closing.Load() {
		return
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return // a sim.Result always marshals; defensive only
	}
	for _, node := range f.ring.Successors(simKey, 2) {
		if node == f.self || !f.health.Available(node) {
			continue
		}
		select {
		case f.repCh <- repTask{node: node, cacheKey: cacheKey, raw: raw}:
			f.repEnqueued.Add(1)
		default:
			f.repDropped.Add(1)
		}
	}
}

// replicator drains the replication queue.
func (f *Fabric) replicator() {
	defer f.repWG.Done()
	stamp := service.CacheStamp()
	for task := range f.repCh {
		ctx, cancel := context.WithTimeout(context.Background(), f.timeout)
		err := f.clients[task.node].CachePutRaw(ctx, task.cacheKey, task.raw, stamp)
		cancel()
		if err != nil {
			f.repErrors.Add(1)
			f.health.MarkFail(task.node)
			f.logf("cluster: replicating to %s: %v", task.node, err)
			continue
		}
		f.repSent.Add(1)
		f.health.MarkOK(task.node)
	}
}

// Hooks bundles the fabric into the service's cluster seam.
func (f *Fabric) Hooks() *service.ClusterHooks {
	h := &service.ClusterHooks{
		PeerGet:    f.PeerGet,
		RouteOwner: f.Route,
	}
	if !f.repOff {
		h.Replicate = f.Replicate
	}
	return h
}

// WriteMetrics emits the fabric's Prometheus families; register it on
// the node's /metrics via service.Server.AddMetrics.
func (f *Fabric) WriteMetrics(w io.Writer) {
	profiling.WriteCounter(w, "gpujoule_cluster_peer_hits", "Results served from a peer node's cache.", float64(f.peerHits.Load()))
	profiling.WriteCounter(w, "gpujoule_cluster_peer_misses", "Peer cache consultations that found nothing.", float64(f.peerMisses.Load()))
	profiling.WriteCounter(w, "gpujoule_cluster_peer_errors", "Peer cache requests that failed.", float64(f.peerErrors.Load()))
	profiling.WriteCounter(w, "gpujoule_cluster_stamp_skips", "Peer entries skipped for a cache-stamp mismatch.", float64(f.stampSkips.Load()))
	profiling.WriteCounter(w, "gpujoule_cluster_rerouted_keys", "Keys routed past an unhealthy owner to a successor.", float64(f.rerouted.Load()))
	profiling.WriteCounter(w, "gpujoule_cluster_replica_enqueued", "Replica deliveries accepted into the queue.", float64(f.repEnqueued.Load()))
	profiling.WriteCounter(w, "gpujoule_cluster_replica_sent", "Replica entries delivered to peers.", float64(f.repSent.Load()))
	profiling.WriteCounter(w, "gpujoule_cluster_replica_dropped", "Replica pushes dropped on a full queue.", float64(f.repDropped.Load()))
	profiling.WriteCounter(w, "gpujoule_cluster_replica_errors", "Replica deliveries that failed.", float64(f.repErrors.Load()))
	// Replication lag: deliveries accepted but not yet applied.
	pending := f.repEnqueued.Load() - f.repSent.Load() - f.repErrors.Load()
	profiling.WriteGauge(w, "gpujoule_cluster_replica_pending", "Replica deliveries queued and not yet delivered (replication lag).", float64(pending))
	profiling.WriteGauge(w, "gpujoule_cluster_peers_unhealthy", "Peers currently in health backoff.", float64(len(f.health.Unhealthy())))
	profiling.WriteGauge(w, "gpujoule_cluster_ring_nodes", "Physical nodes in the hash ring.", float64(f.ring.Len()))
}
