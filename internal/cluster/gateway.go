package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gpujoule/internal/profiling"
	"gpujoule/internal/runner"
	"gpujoule/internal/service"
	"gpujoule/internal/sim"
)

// Gateway is the cluster's sweep-splitting front door. It expands an
// incoming job exactly like a node would, partitions the points by
// ring owner, fans the batches out as explicit-point sub-jobs, merges
// the sub-streams into one parent SSE feed, and reassembles the result
// document from its own expansion order — which is why the document is
// byte-identical (same sha256) to a single-node run: rendering is the
// one shared service.MakeResultDoc path over the same point sequence,
// and every point's result is content-addressed, so it does not matter
// which node produced it.
//
// Failure handling: a batch whose node dies mid-run fails over to the
// key's next ring successor (tried nodes are skipped), degrading to
// the gateway's local server last — a node kill slows a sweep down, it
// never changes its bytes. Only points the dead node had not already
// resolved are resubmitted, and those that did resolve were already
// recorded (and are in the cluster's caches), so the retried batch
// largely re-resolves from cache.
type Gateway struct {
	local *service.Server
	fab   *Fabric
	opts  GatewayOptions

	mu    sync.Mutex
	jobs  map[string]*gwJob
	order []string

	fanned    atomic.Uint64 // parent jobs fanned out
	subJobs   atomic.Uint64 // sub-jobs submitted (incl. failover resubmits)
	failovers atomic.Uint64 // batches rerouted after a node failure
	mismatch  atomic.Uint64 // sub-job digest mismatches

	latMu sync.Mutex
	lats  []time.Duration // fan-out latency ring buffer
	latN  int
}

// GatewayOptions configures a Gateway.
type GatewayOptions struct {
	// MaxJobs bounds concurrently admitted parent jobs (default 512);
	// beyond it submissions are rejected with service.ErrQueueFull.
	MaxJobs int
	// KeepJobs bounds retained terminal parent jobs (default 256).
	KeepJobs int
	// SubRetry is the retry policy for sub-job submissions (zero value:
	// unlimited queue-full retries honouring Retry-After, which is the
	// backpressure contract — the gateway waits, the caller streams).
	SubRetry service.RetryPolicy
	// HTTPClient is the shared transport for sub-job traffic.
	HTTPClient *http.Client
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// latWindow is the fan-out latency ring-buffer size (quantiles are
// computed over the last latWindow parent jobs).
const latWindow = 256

// gwJob is one parent job's state. Guarded by the gateway's lock.
type gwJob struct {
	status  service.JobStatus
	points  []runner.Point
	results []*sim.Result

	ctx      context.Context
	cancel   context.CancelFunc
	done     chan struct{}
	notify   chan struct{}
	events   []service.JobEvent
	digest   string
	resolved int
	started  time.Time
}

// NewGateway fronts the cluster behind fab, degrading to local for
// points no healthy node owns. The local server also provides the
// introspection plane the gateway's handler delegates to.
func NewGateway(local *service.Server, fab *Fabric, opts GatewayOptions) *Gateway {
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 512
	}
	if opts.KeepJobs <= 0 {
		opts.KeepJobs = 256
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{}
	}
	g := &Gateway{local: local, fab: fab, opts: opts, jobs: map[string]*gwJob{}}
	local.AddMetrics(g.WriteMetrics)
	local.AddMetrics(fab.WriteMetrics)
	return g
}

func (g *Gateway) logf(format string, args ...any) {
	if g.opts.Logf != nil {
		g.opts.Logf(format, args...)
	}
}

// Submit validates, expands, and fans a job out. The returned status
// snapshot is the parent job's.
func (g *Gateway) Submit(tenant string, spec service.JobSpec) (service.JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return service.JobStatus{}, err
	}
	pts, err := service.ExpandPoints(spec)
	if err != nil {
		return service.JobStatus{}, err
	}
	var idb [8]byte
	if _, err := rand.Read(idb[:]); err != nil {
		return service.JobStatus{}, fmt.Errorf("cluster: minting job id: %w", err)
	}
	id := "g" + hex.EncodeToString(idb[:])
	if tenant == "" {
		tenant = service.DefaultTenant
	}
	j := &gwJob{
		status: service.JobStatus{
			ID:      id,
			State:   service.StateQueued,
			Tenant:  tenant,
			Created: time.Now(),
			Points:  len(pts),
			Spec:    spec,
		},
		points:  pts,
		results: make([]*sim.Result, len(pts)),
		done:    make(chan struct{}),
		notify:  make(chan struct{}),
	}
	j.ctx, j.cancel = context.WithCancel(context.Background())

	g.mu.Lock()
	admitted := 0
	for _, jj := range g.jobs {
		if !jj.status.State.Terminal() {
			admitted++
		}
	}
	if admitted >= g.opts.MaxJobs {
		g.mu.Unlock()
		j.cancel()
		return service.JobStatus{}, service.ErrQueueFull
	}
	g.jobs[id] = j
	g.order = append(g.order, id)
	g.appendEventLocked(j, service.JobEvent{Kind: service.EventState, State: service.StateQueued})
	st := j.status
	g.mu.Unlock()

	go g.run(j, tenant, spec)
	return st, nil
}

// run fans one parent job out and reassembles it.
func (g *Gateway) run(j *gwJob, tenant string, spec service.JobSpec) {
	g.fanned.Add(1)
	start := time.Now()
	g.mu.Lock()
	j.status.State = service.StateRunning
	j.status.Started = start
	j.started = start
	g.appendEventLocked(j, service.JobEvent{Kind: service.EventState, State: service.StateRunning})
	g.mu.Unlock()

	// Partition by current routing: owner if healthy, successor past a
	// dead owner, "" for the local server.
	batches := map[string][]int{}
	for i, pt := range j.points {
		node := g.fab.Route(pt.Key())
		batches[node] = append(batches[node], i)
	}
	nodes := make([]string, 0, len(batches))
	for node := range batches {
		nodes = append(nodes, node)
	}
	sort.Strings(nodes)

	var wg sync.WaitGroup
	errCh := make(chan error, len(nodes))
	for _, node := range nodes {
		wg.Add(1)
		go func(node string, idxs []int) {
			defer wg.Done()
			if err := g.runBatch(j, tenant, spec, node, idxs, nil); err != nil {
				errCh <- err
			}
		}(node, batches[node])
	}
	wg.Wait()
	close(errCh)
	err := <-errCh // first batch error, if any (nil when channel empty)

	g.latObserve(time.Since(start))

	g.mu.Lock()
	defer g.mu.Unlock()
	if j.status.State.Terminal() {
		return // cancelled concurrently
	}
	if err == nil && j.ctx.Err() != nil {
		err = service.ErrCancelled
	}
	if err == nil {
		for i, r := range j.results {
			if r == nil {
				err = fmt.Errorf("cluster: point %d (%s) never resolved", i, j.points[i])
				break
			}
		}
	}
	g.finalizeLocked(j, err)
}

// runBatch runs one per-node batch of parent point indices, recording
// each resolved point. tried accumulates nodes that already failed for
// this batch so failover never loops.
func (g *Gateway) runBatch(j *gwJob, tenant string, spec service.JobSpec, node string, idxs []int, tried map[string]bool) error {
	if tried == nil {
		tried = map[string]bool{}
	}
	for {
		// Drop the indices a previous attempt already resolved.
		g.mu.Lock()
		remaining := idxs[:0]
		for _, i := range idxs {
			if j.results[i] == nil {
				remaining = append(remaining, i)
			}
		}
		idxs = remaining
		g.mu.Unlock()
		if len(idxs) == 0 {
			return nil
		}

		var err error
		if node == "" {
			err = g.runBatchLocal(j, tenant, spec, idxs)
		} else {
			err = g.runBatchRemote(j, tenant, spec, node, idxs)
		}
		if err == nil || j.ctx.Err() != nil {
			return err
		}

		// The node failed mid-batch: put it in backoff, count the
		// failover, and pick the next candidate — the first healthy
		// untried successor of the batch's first key, degrading to
		// local when the chain is exhausted.
		if node != "" {
			tried[node] = true
			g.fab.MarkFailed(node)
		}
		g.failovers.Add(1)
		prev := node
		node = ""
		for _, cand := range g.fab.Ring().Successors(j.points[idxs[0]].Key(), g.fab.Ring().Len()) {
			if cand == g.fab.self || tried[cand] || !g.fab.Available(cand) {
				continue
			}
			node = cand
			break
		}
		g.logf("cluster: batch of %d points on %s failed (%v); retrying on %s", len(idxs), prev, err, orLocal(node))
	}
}

func orLocal(node string) string {
	if node == "" {
		return "local"
	}
	return node
}

// recordPoint applies one resolved point to the parent job and emits
// its event. Late duplicates (a failover re-resolving a point that
// arrived after all) are ignored.
func (g *Gateway) recordPoint(j *gwJob, idx int, res *sim.Result, source, node string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if j.status.State.Terminal() || j.results[idx] != nil || res == nil {
		return
	}
	j.results[idx] = res
	j.resolved++
	j.status.PointsDone = j.resolved
	switch source {
	case "cache":
		j.status.CacheHits++
	case "coalesced":
		j.status.Coalesced++
	case "peer":
		j.status.PeerHits++
	case "simulated":
		j.status.Submitted++
	}
	g.appendEventLocked(j, service.JobEvent{Kind: service.EventPoint, Index: idx, Source: source, Node: node})
}

// runBatchRemote runs a batch as an explicit-point sub-job on one
// node, streaming its events and verifying its digest.
func (g *Gateway) runBatchRemote(j *gwJob, tenant string, spec service.JobSpec, node string, idxs []int) error {
	pts := make([]runner.Point, len(idxs))
	for bi, i := range idxs {
		pts[bi] = j.points[i]
	}
	sub := service.SpecFor(spec, pts)
	client, err := service.Dial(
		service.WithBaseURL(node),
		service.WithTenant(tenant),
		service.WithNoRedirect(),
		service.WithHTTPClient(g.opts.HTTPClient),
		service.WithRetry(g.opts.SubRetry),
		service.WithLogf(g.opts.Logf),
	)
	if err != nil {
		return err
	}
	g.subJobs.Add(1)
	subResults := make([]*sim.Result, len(idxs))
	doc, err := client.RunSweepStream(j.ctx, sub, func(ev service.JobEvent) {
		if ev.Kind == service.EventDigestMismatch {
			g.mismatch.Add(1)
			g.logf("cluster: sub-job digest mismatch on %s: %s", node, ev.Error)
			return
		}
		if ev.Kind != service.EventPoint || ev.Point == nil || ev.Index < 0 || ev.Index >= len(idxs) {
			return
		}
		subResults[ev.Index] = ev.Point.Result
		g.recordPoint(j, idxs[ev.Index], ev.Point.Result, ev.Source, node)
	})
	if err != nil {
		return err
	}
	// RunSweepStream already verified (or refetched past) the sub
	// stream's digest; the returned document is authoritative. Backfill
	// anything the stream view missed.
	if len(doc.Points) != len(idxs) {
		return fmt.Errorf("cluster: node %s returned %d points for a %d-point batch", node, len(doc.Points), len(idxs))
	}
	for bi, p := range doc.Points {
		if p.Result == nil {
			return fmt.Errorf("cluster: node %s returned no result for %s", node, p.SimKey)
		}
		if subResults[bi] == nil {
			g.recordPoint(j, idxs[bi], p.Result, "cache", node)
		}
	}
	return nil
}

// runBatchLocal runs a batch on the gateway's own server.
func (g *Gateway) runBatchLocal(j *gwJob, tenant string, spec service.JobSpec, idxs []int) error {
	pts := make([]runner.Point, len(idxs))
	for bi, i := range idxs {
		pts[bi] = j.points[i]
	}
	sub := service.SpecFor(spec, pts)
	g.subJobs.Add(1)
	st, err := g.submitLocalRetry(j.ctx, tenant, sub)
	if err != nil {
		return err
	}
	// Follow the local job's event log directly (no HTTP hop).
	from := 0
	for {
		evs, more, ok := g.local.Events(st.ID, from)
		if !ok {
			return fmt.Errorf("cluster: local sub-job %s vanished", st.ID)
		}
		for _, ev := range evs {
			from = ev.Seq + 1
			switch ev.Kind {
			case service.EventPoint:
				if ev.Index < 0 || ev.Index >= len(idxs) {
					continue
				}
				pr, okp := g.local.PointResult(st.ID, ev.Index)
				if !okp {
					// The sub-job was pruned from retention between the
					// event fetch and the result read: its results are
					// gone. Fail the batch so the retry re-resolves the
					// missing points (the cache makes that cheap).
					return fmt.Errorf("cluster: local sub-job %s pruned mid-read", st.ID)
				}
				g.recordPoint(j, idxs[ev.Index], pr.Result, ev.Source, "")
			case service.EventDone:
				if ev.State != service.StateDone {
					if fin, oks := g.local.Status(st.ID); oks {
						return fin.Err()
					}
					return fmt.Errorf("cluster: local sub-job %s %s: %s", st.ID, ev.State, ev.Error)
				}
				return nil
			}
		}
		select {
		case <-more:
		case <-j.ctx.Done():
			g.local.Cancel(st.ID)
			return j.ctx.Err()
		}
	}
}

// submitLocalRetry mirrors the client's queue-full retry for the
// in-process server.
func (g *Gateway) submitLocalRetry(ctx context.Context, tenant string, spec service.JobSpec) (service.JobStatus, error) {
	for {
		st, err := g.local.SubmitTenant(tenant, spec)
		if err == nil || err != service.ErrQueueFull {
			return st, err
		}
		delay := time.Duration(g.local.RetryAfterSeconds()) * time.Second
		if delay <= 0 {
			delay = time.Second
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// appendEventLocked mirrors the service's event-log append: stamp the
// sequence, wake subscribers. Caller holds g.mu.
func (g *Gateway) appendEventLocked(j *gwJob, ev service.JobEvent) {
	ev.Seq = len(j.events)
	if ev.Kind == service.EventDone {
		ev.Digest = j.digest
		ev.Error = j.status.Error
	}
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
}

// finalizeLocked moves a parent job to its terminal state. Caller
// holds g.mu.
func (g *Gateway) finalizeLocked(j *gwJob, err error) {
	if j.status.State.Terminal() {
		return
	}
	j.status.Finished = time.Now()
	switch {
	case err == nil:
		j.status.State = service.StateDone
		j.digest = service.ResultDocDigest(service.MakeResultDoc(j.points, j.results))
	case err == service.ErrCancelled || j.ctx.Err() != nil && err == j.ctx.Err():
		j.status.State = service.StateCancelled
		j.status.Error = service.ErrCancelled.Error()
	default:
		j.status.State = service.StateFailed
		j.status.Error = err.Error()
	}
	j.cancel()
	g.appendEventLocked(j, service.JobEvent{Kind: service.EventDone, State: j.status.State})
	close(j.done)

	// Retention: drop the oldest terminal jobs beyond KeepJobs.
	terminal := 0
	for _, id := range g.order {
		if jj, ok := g.jobs[id]; ok && jj.status.State.Terminal() {
			terminal++
		}
	}
	for i := 0; terminal > g.opts.KeepJobs && i < len(g.order); i++ {
		id := g.order[i]
		jj, ok := g.jobs[id]
		if !ok || !jj.status.State.Terminal() {
			continue
		}
		delete(g.jobs, id)
		g.order = append(g.order[:i], g.order[i+1:]...)
		i--
		terminal--
	}
}

// Status returns a parent job's snapshot.
func (g *Gateway) Status(id string) (service.JobStatus, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j, ok := g.jobs[id]
	if !ok {
		return service.JobStatus{}, false
	}
	return j.status, true
}

// Jobs lists retained parent jobs in submission order.
func (g *Gateway) Jobs() []service.JobStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]service.JobStatus, 0, len(g.order))
	for _, id := range g.order {
		if j, ok := g.jobs[id]; ok {
			out = append(out, j.status)
		}
	}
	return out
}

// Cancel requests cancellation of a parent job (propagated to its
// in-flight sub-jobs through their contexts).
func (g *Gateway) Cancel(id string) (service.JobStatus, bool) {
	g.mu.Lock()
	j, ok := g.jobs[id]
	if !ok {
		g.mu.Unlock()
		return service.JobStatus{}, false
	}
	if j.status.State.Terminal() {
		st := j.status
		g.mu.Unlock()
		return st, true
	}
	g.finalizeLocked(j, service.ErrCancelled)
	st := j.status
	g.mu.Unlock()
	j.cancel()
	return st, true
}

// Events returns the parent job's events from `from` onward plus the
// grow-notification channel (the service's wait primitive).
func (g *Gateway) Events(id string, from int) ([]service.JobEvent, <-chan struct{}, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j, ok := g.jobs[id]
	if !ok {
		return nil, nil, false
	}
	if from < 0 {
		from = 0
	}
	if from > len(j.events) {
		from = len(j.events)
	}
	return j.events[from:], j.notify, true
}

// Result returns a done parent job's points and results.
func (g *Gateway) Result(id string) ([]runner.Point, []*sim.Result, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j, ok := g.jobs[id]
	if !ok || j.status.State != service.StateDone {
		return nil, nil, false
	}
	return j.points, j.results, true
}

// Partial returns the parent job's current view (null results for
// unresolved points) plus its status.
func (g *Gateway) Partial(id string) ([]runner.Point, []*sim.Result, service.JobStatus, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j, ok := g.jobs[id]
	if !ok {
		return nil, nil, service.JobStatus{}, false
	}
	results := make([]*sim.Result, len(j.results))
	copy(results, j.results)
	return j.points, results, j.status, true
}

// PointResult snapshots one resolved point for SSE enrichment.
func (g *Gateway) PointResult(id string, idx int) (service.PointResult, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j, ok := g.jobs[id]
	if !ok || idx < 0 || idx >= len(j.points) || j.results[idx] == nil {
		return service.PointResult{}, false
	}
	pt := j.points[idx]
	return service.PointResult{
		Workload: pt.App.Name,
		Config:   pt.Config.Name(),
		SimKey:   pt.Key(),
		Result:   j.results[idx],
	}, true
}

// latObserve records one parent-job fan-out latency.
func (g *Gateway) latObserve(d time.Duration) {
	g.latMu.Lock()
	defer g.latMu.Unlock()
	if len(g.lats) < latWindow {
		g.lats = append(g.lats, d)
	} else {
		g.lats[g.latN%latWindow] = d
	}
	g.latN++
}

// latQuantiles returns (p50, p99) over the latency window.
func (g *Gateway) latQuantiles() (p50, p99 time.Duration) {
	g.latMu.Lock()
	buf := make([]time.Duration, len(g.lats))
	copy(buf, g.lats)
	g.latMu.Unlock()
	if len(buf) == 0 {
		return 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(buf)-1))
		return buf[i]
	}
	return at(0.50), at(0.99)
}

// WriteMetrics emits the gateway's Prometheus families.
func (g *Gateway) WriteMetrics(w io.Writer) {
	g.mu.Lock()
	active := 0
	for _, j := range g.jobs {
		if !j.status.State.Terminal() {
			active++
		}
	}
	g.mu.Unlock()
	p50, p99 := g.latQuantiles()
	profiling.WriteCounter(w, "gpujoule_gateway_jobs_fanned", "Parent jobs fanned out across the cluster.", float64(g.fanned.Load()))
	profiling.WriteCounter(w, "gpujoule_gateway_subjobs", "Sub-jobs submitted to cluster nodes (including failover resubmits).", float64(g.subJobs.Load()))
	profiling.WriteCounter(w, "gpujoule_gateway_failovers", "Batches rerouted after a node failure.", float64(g.failovers.Load()))
	profiling.WriteCounter(w, "gpujoule_gateway_subjob_digest_mismatches", "Sub-job streams whose digest verification failed.", float64(g.mismatch.Load()))
	profiling.WriteGauge(w, "gpujoule_gateway_active_jobs", "Parent jobs admitted and not yet terminal.", float64(active))
	profiling.WriteGauge(w, "gpujoule_gateway_fanout_latency_p50_seconds", "Median parent-job fan-out latency over the recent window.", p50.Seconds())
	profiling.WriteGauge(w, "gpujoule_gateway_fanout_latency_p99_seconds", "99th-percentile parent-job fan-out latency over the recent window.", p99.Seconds())
}

// Handler returns the gateway's HTTP surface: the same /v1 job API a
// node serves (so sweep -server and the v2 client work unchanged
// against a gateway), backed by fan-out, with everything else —
// /metrics, /progress, /debug/pprof, /v1/cache, /v1/version —
// delegated to the local server's handler.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", g.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		gwWriteJSON(w, http.StatusOK, map[string]any{"jobs": g.Jobs()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := g.Status(r.PathValue("id"))
		if !ok {
			gwWriteErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
			return
		}
		gwWriteJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", g.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", g.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := g.Cancel(r.PathValue("id"))
		if !ok {
			gwWriteErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
			return
		}
		gwWriteJSON(w, http.StatusOK, st)
	})
	mux.Handle("/", g.local.Handler())
	return mux
}

func gwWriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func gwWriteErr(w http.ResponseWriter, code int, format string, args ...any) {
	gwWriteJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec service.JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		gwWriteErr(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	st, err := g.Submit(r.Header.Get(service.TenantHeader), spec)
	switch {
	case err == nil:
		gwWriteJSON(w, http.StatusAccepted, st)
	case err == service.ErrQueueFull:
		w.Header().Set("Retry-After", strconv.Itoa(g.local.RetryAfterSeconds()))
		gwWriteErr(w, http.StatusTooManyRequests, "%v", err)
	default:
		gwWriteErr(w, http.StatusBadRequest, "%v", err)
	}
}

func (g *Gateway) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.Header.Get(service.DigestMismatchHeader) != "" {
		g.mismatch.Add(1)
		g.logf("cluster: client reported stream digest mismatch for job %s", id)
	}
	st, ok := g.Status(id)
	if !ok {
		gwWriteErr(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	if !st.State.Terminal() {
		if r.URL.Query().Get("partial") != "" {
			pts, results, pst, okp := g.Partial(id)
			if !okp {
				gwWriteErr(w, http.StatusNotFound, "no such job %q", id)
				return
			}
			w.Header().Set("X-Points-Done", strconv.Itoa(pst.PointsDone))
			w.Header().Set("X-Points-Total", strconv.Itoa(pst.Points))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(service.RenderResultDoc(service.MakeResultDoc(pts, results)))
			return
		}
		gwWriteErr(w, http.StatusConflict, "job %s is %s; result not ready", id, st.State)
		return
	}
	pts, results, ok := g.Result(id)
	if !ok {
		gwWriteErr(w, http.StatusConflict, "job %s %s: %s", id, st.State, st.Error)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(service.RenderResultDoc(service.MakeResultDoc(pts, results)))
}

// handleEvents streams the parent job's merged SSE feed — the same
// protocol a node serves, so streaming clients cannot tell a gateway
// from a node (beyond the per-event Node annotation).
func (g *Gateway) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		from, _ = strconv.Atoi(v)
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			from = n + 1
		}
	}
	if _, _, ok := g.Events(id, 0); !ok {
		gwWriteErr(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		gwWriteErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	for {
		evs, more, ok := g.Events(id, from)
		if !ok {
			return
		}
		for _, ev := range evs {
			if ev.Kind == service.EventPoint {
				if pr, okp := g.PointResult(id, ev.Index); okp {
					ev.Point = &pr
				}
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
			from = ev.Seq + 1
			if ev.Kind == service.EventDone {
				flusher.Flush()
				return
			}
		}
		flusher.Flush()
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}
