package cluster

import (
	"sync"
	"time"
)

// healthTracker is passive per-peer health: requests report their
// outcomes (MarkOK / MarkFail), and Available answers whether a peer
// should be tried right now. There is no prober goroutine — a peer in
// backoff becomes available again "half-open": once its backoff
// window expires, exactly one caller is allowed through as the probe,
// and its outcome re-opens or re-closes the peer. Real traffic is the
// health check, which is the only signal that matters for a fabric
// whose requests *are* cheap GETs.
type healthTracker struct {
	mu    sync.Mutex
	peers map[string]*peerHealth
	// now is a test seam (defaults to time.Now).
	now func() time.Time
}

type peerHealth struct {
	failures int       // consecutive failures
	until    time.Time // in backoff until this instant
	probing  bool      // one half-open probe is in flight
}

// Backoff bounds: 500ms doubling per consecutive failure, capped at
// 30s — a dead node costs at most one probe every 30s, while a blip
// recovers within a second.
const (
	backoffBase = 500 * time.Millisecond
	backoffMax  = 30 * time.Second
)

func newHealthTracker() *healthTracker {
	return &healthTracker{peers: map[string]*peerHealth{}, now: time.Now}
}

// Available reports whether the peer should be tried now. During a
// backoff window it answers false; at the window's expiry it admits a
// single caller as the half-open probe (concurrent callers keep
// getting false until that probe reports).
func (h *healthTracker) Available(peer string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peers[peer]
	if p == nil || p.failures == 0 {
		return true
	}
	if h.now().Before(p.until) {
		return false
	}
	if p.probing {
		return false
	}
	p.probing = true
	return true
}

// MarkOK records a successful request to the peer, clearing any
// backoff.
func (h *healthTracker) MarkOK(peer string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.peers, peer)
}

// MarkFail records a failed request to the peer, entering (or
// extending) exponential backoff.
func (h *healthTracker) MarkFail(peer string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peers[peer]
	if p == nil {
		p = &peerHealth{}
		h.peers[peer] = p
	}
	p.probing = false
	p.failures++
	d := backoffBase << (p.failures - 1)
	if d > backoffMax || d <= 0 {
		d = backoffMax
	}
	p.until = h.now().Add(d)
}

// Unhealthy returns the peers currently considered down (in a backoff
// window), for metrics.
func (h *healthTracker) Unhealthy() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	now := h.now()
	for peer, p := range h.peers {
		if p.failures > 0 && now.Before(p.until) {
			out = append(out, peer)
		}
	}
	return out
}
