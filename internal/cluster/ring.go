// Package cluster shards the gpujouled service across N nodes.
//
// The design leans entirely on content addressing: a simulation
// point's result is fully determined by its canonical sim key plus the
// binary/schema stamp, so identical keys are identical results on any
// node. That makes distribution a pure placement problem — the ring
// decides *where* a key's result should live and compute, never *what*
// it is — and lets every layer degrade safely: a mis-routed key is
// merely a cache miss, a dead owner's keys reroute to its successor,
// and in the worst case a node just computes locally. Correctness
// never depends on the ring; only efficiency does.
//
// The pieces:
//
//   - Ring (this file): consistent hashing with virtual nodes over
//     sim keys. Joining a node moves ~1/(N+1) of the key space.
//   - health.go: passive per-peer health with exponential backoff and
//     half-open probing.
//   - fabric.go: the per-node view — routing with reroute-on-
//     unhealthy, cache peering over /v1/cache (owner + one replica,
//     joining in-flight computations), and async best-effort
//     replication of fresh results.
//   - gateway.go: the sweep-splitting front door — per-owner point
//     batches fanned out as explicit-point sub-jobs, merged SSE, and
//     byte-identical document reassembly.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the default virtual-node count per physical node.
// 64 vnodes keep the expected per-node load imbalance within a few
// percent for single-digit cluster sizes while the ring stays small
// enough to rebuild on every membership change.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over node base URLs.
// Build one with NewRing; membership changes build a new Ring (they
// are rare — rings change on operator action, not per request).
type Ring struct {
	nodes  []string // sorted physical nodes
	points []ringPoint
}

// ringPoint is one virtual node position.
type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the given node base URLs with vnodes
// virtual nodes each (<= 0 selects DefaultVNodes). Duplicate nodes are
// collapsed.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
	}
	sort.Strings(r.nodes)
	for _, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by node name so every
		// ring built from the same membership is identical.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// ringHash positions a string on the ring: the first 8 bytes of its
// SHA-256. The same construction hashes keys and virtual nodes, and
// matches the content-addressed spirit of the cache (no seed, no
// process-local state — every node computes the same ring).
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the ring's physical nodes, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Len returns the number of physical nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node owning key: the first virtual node clockwise
// from the key's hash. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(ringHash(key))].node
}

// Successors returns up to n distinct nodes for key in ring order:
// the owner first, then the next distinct physical nodes clockwise.
// The second entry is the key's replica target.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for i, start := 0, r.search(ringHash(key)); len(out) < n && i < len(r.points); i++ {
		node := r.points[(start+i)%len(r.points)].node
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}

// search finds the index of the first ring point with hash >= h
// (wrapping to 0).
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
