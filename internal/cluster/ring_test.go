package cluster

import (
	"fmt"
	"testing"
	"time"
)

// TestRingDeterminism: ownership is a pure function of the membership
// set — independent of input order and stable across constructions.
func TestRingDeterminism(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := NewRing(nodes, 0)
	r2 := NewRing([]string{nodes[2], nodes[0], nodes[1], nodes[0]}, 0)
	if r1.Len() != 3 || r2.Len() != 3 {
		t.Fatalf("ring lengths = %d, %d; want 3 (dedup + order-independence)", r1.Len(), r2.Len())
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("sim-key-%d", i)
		if o1, o2 := r1.Owner(key), r2.Owner(key); o1 != o2 {
			t.Fatalf("key %q: owner %q vs %q across equal rings", key, o1, o2)
		}
	}
}

// TestRingDistribution: with virtual nodes, no node owns a grossly
// disproportionate share of a uniform key population.
func TestRingDistribution(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(nodes, 0)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("sim-key-%d", i))]++
	}
	want := keys / len(nodes)
	for _, n := range nodes {
		if c := counts[n]; c < want/3 || c > want*3 {
			t.Errorf("node %s owns %d of %d keys; want within 3x of the fair share %d", n, c, keys, want)
		}
	}
}

// TestRingRebalance: adding one node to an N-node ring must move at
// most ~1/(N+1) of the keys (consistent hashing's defining property);
// the test allows 2x slack for virtual-node variance.
func TestRingRebalance(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	before := NewRing(nodes, 0)
	after := NewRing(append(append([]string{}, nodes...), "http://d:1"), 0)
	const keys = 4000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("sim-key-%d", i)
		ob, oa := before.Owner(key), after.Owner(key)
		if ob != oa {
			moved++
			if oa != "http://d:1" {
				t.Fatalf("key %q moved %q -> %q: keys may only move to the new node", key, ob, oa)
			}
		}
	}
	ceiling := 2 * keys / (len(nodes) + 1)
	if moved > ceiling {
		t.Errorf("join moved %d of %d keys; consistent-hash ceiling (with 2x slack) is %d", moved, keys, ceiling)
	}
	if moved == 0 {
		t.Error("join moved no keys; the new node owns nothing")
	}
}

// TestRingSuccessors: the successor chain is distinct, starts at the
// owner, and covers the whole ring when asked for every node.
func TestRingSuccessors(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(nodes, 0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("sim-key-%d", i)
		succ := r.Successors(key, len(nodes))
		if len(succ) != len(nodes) {
			t.Fatalf("Successors(%q, %d) = %v", key, len(nodes), succ)
		}
		if succ[0] != r.Owner(key) {
			t.Fatalf("successor chain %v does not start at the owner %q", succ, r.Owner(key))
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("successor chain %v repeats %q", succ, n)
			}
			seen[n] = true
		}
	}
	if got := r.Successors("k", 10); len(got) != len(nodes) {
		t.Errorf("Successors over-asked = %v; want every node once", got)
	}
}

// TestHealthBackoff: a failing peer backs off exponentially, admits a
// single half-open probe at window expiry, and fully recovers on one
// success.
func TestHealthBackoff(t *testing.T) {
	h := newHealthTracker()
	clock := &fakeClock{t: time.Unix(1000, 0)}
	h.now = clock.now

	const peer = "http://a:1"
	if !h.Available(peer) {
		t.Fatal("fresh peer unavailable")
	}
	h.MarkFail(peer)
	if h.Available(peer) {
		t.Fatal("peer available immediately after a failure")
	}
	clock.advance(backoffBase)
	if !h.Available(peer) {
		t.Fatal("peer not admitted as half-open probe after backoff expiry")
	}
	if h.Available(peer) {
		t.Fatal("second caller admitted while the half-open probe is outstanding")
	}
	h.MarkFail(peer) // probe failed: window doubles
	clock.advance(backoffBase)
	if h.Available(peer) {
		t.Fatal("peer available before the doubled backoff elapsed")
	}
	clock.advance(backoffBase)
	if !h.Available(peer) {
		t.Fatal("peer not re-admitted after the doubled window")
	}
	h.MarkOK(peer)
	if !h.Available(peer) || len(h.Unhealthy()) != 0 {
		t.Fatal("success did not clear the backoff state")
	}
}

// fakeClock is a manual test clock for the health tracker's now seam.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
