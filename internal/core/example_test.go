package core_test

import (
	"fmt"

	"gpujoule/internal/core"
	"gpujoule/internal/isa"
)

// Applying Eq. 4 to hand-written event counts: a billion FMAs, some
// DRAM traffic, stalls, and a millisecond of wall time on one module.
func ExampleModel_Estimate() {
	m := core.K40Model()

	var c isa.Counts
	c.Inst[isa.OpFFMA32] = 1e9
	c.Txn[isa.TxnDRAMToL2] = 2e6
	c.StallCycles = 5e6
	c.Cycles = 1e6 // 1 ms at 1 GHz
	c.SMCount = 16
	c.GPMCount = 1

	b := m.Estimate(&c)
	fmt.Printf("compute  %.4f J\n", b.Compute)
	fmt.Printf("DRAM->L2 %.4f J\n", b.DRAMToL2)
	fmt.Printf("stalls   %.4f J\n", b.Stall)
	fmt.Printf("constant %.4f J\n", b.Constant)
	fmt.Printf("total    %.4f J\n", b.Total())
	// Output:
	// compute  0.0500 J
	// DRAM->L2 0.0156 J
	// stalls   0.0110 J
	// constant 0.0250 J
	// total    0.1016 J
}

// The multi-module projection replaces the K40's GDDR5 DRAM energy
// with HBM and adds integration-domain link costs (§V-A2).
func ExampleProjectionModel() {
	onPkg := core.ProjectionModel(core.OnPackageLinks())
	onBoard := core.ProjectionModel(core.OnBoardLinks())

	fmt.Printf("HBM DRAM->L2: %.2f nJ/sector\n", onPkg.EPT[isa.TxnDRAMToL2]*1e9)
	fmt.Printf("on-package link: %.3f nJ/sector-hop\n", onPkg.EPT[isa.TxnInterGPM]*1e9)
	fmt.Printf("on-board link: %.2f nJ/sector-hop\n", onBoard.EPT[isa.TxnInterGPM]*1e9)
	fmt.Printf("on-package amortization: %.0f%%\n", onPkg.Amortization*100)
	// Output:
	// HBM DRAM->L2: 5.40 nJ/sector
	// on-package link: 0.138 nJ/sector-hop
	// on-board link: 2.56 nJ/sector-hop
	// on-package amortization: 50%
}

// Constant power amortization under on-package integration (§V-A2):
// with a 50% rate, half the per-module constant power is shared.
func ExampleModel_ConstantPowerTotal() {
	m := core.ProjectionModel(core.OnPackageLinks())
	fmt.Printf("1 GPM:  %.1f W\n", m.ConstantPowerTotal(1))
	fmt.Printf("32 GPM: %.1f W\n", m.ConstantPowerTotal(32))
	fmt.Printf("32 GPM, no amortization: %.1f W\n", m.WithAmortization(0).ConstantPowerTotal(32))
	// Output:
	// 1 GPM:  25.0 W
	// 32 GPM: 412.5 W
	// 32 GPM, no amortization: 800.0 W
}
