// Package core implements GPUJoule, the paper's top-down
// instruction-based GPU energy estimation framework (§IV), and its
// multi-module extensions (§V-A2).
//
// The model is Eq. 4 of the paper:
//
//	E = Σc EPIc·ICc + Σm EPTm·TCm + EPStall·stalls + ConstPower·T
//
// It is deliberately decoupled from microarchitectural detail: its only
// inputs are the per-class instruction counts, data-movement
// transaction counts, lane-stall cycles, and execution time collected
// by any performance simulator (or hardware counters).
package core

import (
	"fmt"

	"gpujoule/internal/isa"
)

// Physical unit helpers. The model works in joules and seconds.
const (
	// NanoJoule is 1 nJ in joules.
	NanoJoule = 1e-9
	// PicoJoulePerBit converts a pJ/bit link cost into joules/bit.
	PicoJoulePerBit = 1e-12
)

// Published per-bit energy costs used by the multi-module projection
// (§V-A2).
const (
	// HBMPicoJoulePerBit is the DRAM-to-L2 energy of an HBM stack
	// (O'Connor et al., used in place of the K40's GDDR5).
	HBMPicoJoulePerBit = 21.1
	// OnPackagePicoJoulePerBit is the ground-referenced single-ended
	// on-package link cost (Poulton et al.).
	OnPackagePicoJoulePerBit = 0.54
	// OnBoardPicoJoulePerBit is the estimated on-board link cost.
	OnBoardPicoJoulePerBit = 10
	// SwitchPicoJoulePerBit is the additional cost of traversing a
	// high-radix switch chip (§V-C footnote).
	SwitchPicoJoulePerBit = 10
)

// Model is a GPUJoule energy model instance: the calibrated EPI/EPT
// tables plus the constant-power and stall terms of Eq. 4, extended
// with the multi-module constant-energy amortization of §V-A2.
type Model struct {
	// Name describes the model's provenance (e.g. "K40 Table Ib").
	Name string

	// EPI[op] is the energy per thread-level instruction, in joules.
	// Memory and control opcodes carry zero (their energy is accounted
	// through transactions and stalls).
	EPI [isa.NumOps]float64

	// EPT[kind] is the energy per data-movement transaction, in joules.
	EPT [isa.NumTxnKinds]float64

	// EPStall is the energy per SM lane-stall cycle, in joules.
	EPStall float64

	// ConstPower is the per-GPM constant (idle) power in watts:
	// voltage regulators, power delivery, host I/O, static power.
	ConstPower float64

	// ClockHz converts cycle counts to seconds.
	ClockHz float64

	// Amortization is the fraction of per-GPM constant power that is
	// shared across modules rather than replicated (0 for on-board
	// integration; 0.5 assumed for on-package, §V-A2). With
	// amortization a and N modules the total constant power is
	// ConstPower·((1−a)·N + a).
	Amortization float64
}

// Validate reports structural problems with the model.
func (m *Model) Validate() error {
	if m.ClockHz <= 0 {
		return fmt.Errorf("core: model %q: clock must be positive, got %g", m.Name, m.ClockHz)
	}
	if m.ConstPower < 0 || m.EPStall < 0 {
		return fmt.Errorf("core: model %q: negative constant terms", m.Name)
	}
	if m.Amortization < 0 || m.Amortization > 1 {
		return fmt.Errorf("core: model %q: amortization %g outside [0,1]", m.Name, m.Amortization)
	}
	for op, e := range m.EPI {
		if e < 0 {
			return fmt.Errorf("core: model %q: negative EPI for %v", m.Name, isa.Op(op))
		}
	}
	for k, e := range m.EPT {
		if e < 0 {
			return fmt.Errorf("core: model %q: negative EPT for %v", m.Name, isa.TxnKind(k))
		}
	}
	return nil
}

// ConstantPowerTotal returns the machine-wide constant power for a
// design with gpms modules, applying amortization.
func (m *Model) ConstantPowerTotal(gpms int) float64 {
	if gpms < 1 {
		gpms = 1
	}
	return m.ConstPower * ((1-m.Amortization)*float64(gpms) + m.Amortization)
}

// Breakdown is a component-wise energy decomposition in joules, using
// the categories of Fig. 7.
type Breakdown struct {
	// Compute is the SM Pipeline (Busy) term: Σ EPI·IC.
	Compute float64
	// Stall is the SM Pipeline (Idle) term: EPStall·stalls.
	Stall float64
	// Constant is the constant-energy overhead: ConstPower·T.
	Constant float64
	// ShmToRF, L1ToRF, L2ToL1, DRAMToL2 are the intra-module
	// data-movement terms.
	ShmToRF, L1ToRF, L2ToL1, DRAMToL2 float64
	// InterGPM is the inter-module term (link hops plus any switch
	// traversals).
	InterGPM float64
	// Seconds is the execution time used for the constant term.
	Seconds float64
}

// Total returns the summed energy in joules.
func (b Breakdown) Total() float64 {
	return b.Compute + b.Stall + b.Constant +
		b.ShmToRF + b.L1ToRF + b.L2ToL1 + b.DRAMToL2 + b.InterGPM
}

// AveragePower returns the run-average power in watts.
func (b Breakdown) AveragePower() float64 {
	if b.Seconds <= 0 {
		return 0
	}
	return b.Total() / b.Seconds
}

// Estimate applies Eq. 4 to the event counts of one run.
func (m *Model) Estimate(c *isa.Counts) Breakdown {
	var b Breakdown
	for op := range c.Inst {
		b.Compute += m.EPI[op] * float64(c.Inst[op])
	}
	b.ShmToRF = m.EPT[isa.TxnShmToRF] * float64(c.Txn[isa.TxnShmToRF])
	b.L1ToRF = m.EPT[isa.TxnL1ToRF] * float64(c.Txn[isa.TxnL1ToRF])
	b.L2ToL1 = m.EPT[isa.TxnL2ToL1] * float64(c.Txn[isa.TxnL2ToL1])
	b.DRAMToL2 = m.EPT[isa.TxnDRAMToL2] * float64(c.Txn[isa.TxnDRAMToL2])
	b.InterGPM = m.EPT[isa.TxnInterGPM]*float64(c.Txn[isa.TxnInterGPM]) +
		m.EPT[isa.TxnSwitch]*float64(c.Txn[isa.TxnSwitch])
	b.Stall = m.EPStall * float64(c.StallCycles)
	b.Seconds = float64(c.Cycles) / m.ClockHz
	b.Constant = m.ConstantPowerTotal(c.GPMCount) * b.Seconds
	return b
}

// EstimateEnergy returns just the total energy in joules.
func (m *Model) EstimateEnergy(c *isa.Counts) float64 { return m.Estimate(c).Total() }

// PerBitToSector converts a pJ/bit cost into joules per 32-byte sector.
func PerBitToSector(pJPerBit float64) float64 {
	return pJPerBit * PicoJoulePerBit * float64(isa.SectorBytes) * 8
}

// Clone returns a deep copy of the model (arrays copy by value).
func (m *Model) Clone() *Model {
	cp := *m
	return &cp
}

// WithLinkEnergy returns a copy whose inter-GPM link cost is scaled by
// factor (the §V-C link-energy sensitivity study).
func (m *Model) WithLinkEnergy(factor float64) *Model {
	cp := m.Clone()
	cp.EPT[isa.TxnInterGPM] *= factor
	cp.Name = fmt.Sprintf("%s(link×%g)", m.Name, factor)
	return cp
}

// WithAmortization returns a copy with the given constant-energy
// amortization rate (the §V-C amortization sensitivity study).
func (m *Model) WithAmortization(rate float64) *Model {
	cp := m.Clone()
	cp.Amortization = rate
	cp.Name = fmt.Sprintf("%s(amort=%g)", m.Name, rate)
	return cp
}

// WithOperatingPoint returns a copy rescaled to an operating point at
// freqHz with supply voltage voltageRatio times nominal. Dynamic
// switching energy is CV² per event, so every per-event term (EPI, EPT,
// EPStall) scales with the voltage ratio squared; ConstPower is a
// per-unit-time term and is left untouched — its *energy* share grows
// as frequency drops because runs take longer. ClockHz becomes freqHz
// so the Eq. 4 time term uses the new clock. A nominal point
// (voltageRatio 1, freqHz == ClockHz) returns an identical copy.
func (m *Model) WithOperatingPoint(freqHz, voltageRatio float64) *Model {
	cp := m.Clone()
	v2 := voltageRatio * voltageRatio
	for op := range cp.EPI {
		cp.EPI[op] *= v2
	}
	for k := range cp.EPT {
		cp.EPT[k] *= v2
	}
	cp.EPStall *= v2
	cp.ClockHz = freqHz
	cp.Name = fmt.Sprintf("%s@%gMHz", m.Name, freqHz/1e6)
	return cp
}
