package core

import (
	"math"
	"testing"
	"testing/quick"

	"gpujoule/internal/isa"
)

func TestK40ModelMatchesTableIb(t *testing.T) {
	m := K40Model()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Spot-check the published values (nJ).
	cases := []struct {
		op   isa.Op
		want float64
	}{
		{isa.OpFAdd32, 0.06}, {isa.OpFFMA32, 0.05}, {isa.OpIAdd32, 0.07},
		{isa.OpSin32, 0.10}, {isa.OpIMad32, 0.15}, {isa.OpFFMA64, 0.16},
		{isa.OpSqrt32, 0.02}, {isa.OpRcp32, 0.31},
	}
	for _, c := range cases {
		if got := m.EPI[c.op] * 1e9; math.Abs(got-c.want) > 1e-9 {
			t.Errorf("EPI[%v] = %g nJ, want %g", c.op, got, c.want)
		}
	}
	txns := []struct {
		k    isa.TxnKind
		want float64
	}{
		{isa.TxnShmToRF, 5.45}, {isa.TxnL1ToRF, 5.99},
		{isa.TxnL2ToL1, 3.96}, {isa.TxnDRAMToL2, 7.82},
	}
	for _, c := range txns {
		if got := m.EPT[c.k] * 1e9; math.Abs(got-c.want) > 1e-9 {
			t.Errorf("EPT[%v] = %g nJ, want %g", c.k, got, c.want)
		}
	}
	// Every Table Ib compute row must carry an EPI.
	for _, op := range isa.ComputeOps() {
		if m.EPI[op] == 0 {
			t.Errorf("EPI[%v] missing", op)
		}
	}
	// Memory and control opcodes carry none.
	if m.EPI[isa.OpLoadGlobal] != 0 || m.EPI[isa.OpBarrier] != 0 {
		t.Error("memory/control opcodes must have zero EPI")
	}
}

func TestTableIbSectorArithmetic(t *testing.T) {
	// The published per-bit numbers imply the transaction sizes used by
	// the simulator: ≈128 B for RF-facing classes, ≈32 B sectors below.
	check := func(nJ, pJPerBit float64, wantBytes float64) {
		bytes := nJ * 1e-9 / (pJPerBit * 1e-12) / 8
		if math.Abs(bytes-wantBytes) > wantBytes*0.05 {
			t.Errorf("%g nJ at %g pJ/bit implies %.1f bytes, want %g", nJ, pJPerBit, bytes, wantBytes)
		}
	}
	check(5.45, 5.32, 128) // SharedMem->RF
	check(5.99, 5.85, 128) // L1->RF
	check(3.96, 15.48, 32) // L2->L1
	check(7.82, 30.55, 32) // DRAM->L2
}

func TestEstimateHandComputed(t *testing.T) {
	m := &Model{
		Name:       "hand",
		EPStall:    2e-9,
		ConstPower: 10,
		ClockHz:    1e9,
	}
	m.EPI[isa.OpFFMA32] = 1e-9
	m.EPT[isa.TxnDRAMToL2] = 4e-9

	var c isa.Counts
	c.Inst[isa.OpFFMA32] = 1000
	c.Txn[isa.TxnDRAMToL2] = 500
	c.StallCycles = 100
	c.Cycles = 2000 // 2 µs
	c.GPMCount = 1

	b := m.Estimate(&c)
	if math.Abs(b.Compute-1e-6) > 1e-12 {
		t.Errorf("compute %g, want 1e-6", b.Compute)
	}
	if math.Abs(b.DRAMToL2-2e-6) > 1e-12 {
		t.Errorf("dram %g, want 2e-6", b.DRAMToL2)
	}
	if math.Abs(b.Stall-2e-7) > 1e-13 {
		t.Errorf("stall %g, want 2e-7", b.Stall)
	}
	if math.Abs(b.Constant-2e-5) > 1e-11 {
		t.Errorf("constant %g, want 2e-5", b.Constant)
	}
	want := 1e-6 + 2e-6 + 2e-7 + 2e-5
	if math.Abs(b.Total()-want) > 1e-12 {
		t.Errorf("total %g, want %g", b.Total(), want)
	}
	if p := b.AveragePower(); math.Abs(p-want/2e-6) > 1e-6 {
		t.Errorf("avg power %g", p)
	}
}

func TestConstantPowerAmortization(t *testing.T) {
	m := K40Model()
	m.Amortization = 0.5
	// §V-A2: with 50% amortization, half the per-GPM constant power
	// scales with module count and half is shared.
	if got := m.ConstantPowerTotal(1); math.Abs(got-m.ConstPower) > 1e-9 {
		t.Errorf("1 GPM total %g, want %g", got, m.ConstPower)
	}
	if got := m.ConstantPowerTotal(32); math.Abs(got-m.ConstPower*16.5) > 1e-9 {
		t.Errorf("32 GPM total %g, want %g", got, m.ConstPower*16.5)
	}
	m.Amortization = 0
	if got := m.ConstantPowerTotal(32); math.Abs(got-m.ConstPower*32) > 1e-9 {
		t.Errorf("unamortized 32 GPM total %g, want linear", got)
	}
}

func TestProjectionModelSubstitutions(t *testing.T) {
	p := ProjectionModel(OnPackageLinks())
	k40 := K40Model()
	// HBM replaces GDDR5 for DRAM->L2 (21.1 pJ/bit over a 32 B sector).
	wantDRAM := PerBitToSector(HBMPicoJoulePerBit)
	if math.Abs(p.EPT[isa.TxnDRAMToL2]-wantDRAM) > 1e-15 {
		t.Errorf("projection DRAM EPT %g, want %g", p.EPT[isa.TxnDRAMToL2], wantDRAM)
	}
	if p.EPT[isa.TxnDRAMToL2] >= k40.EPT[isa.TxnDRAMToL2] {
		t.Error("HBM must cost less per sector than GDDR5")
	}
	// On-package links at 0.54 pJ/bit; on-board at 10 pJ/bit.
	if math.Abs(p.EPT[isa.TxnInterGPM]-PerBitToSector(0.54)) > 1e-15 {
		t.Error("on-package link energy wrong")
	}
	b := ProjectionModel(OnBoardLinks())
	if math.Abs(b.EPT[isa.TxnInterGPM]-PerBitToSector(10)) > 1e-15 {
		t.Error("on-board link energy wrong")
	}
	if p.Amortization != 0.5 || b.Amortization != 0 {
		t.Error("domain amortization defaults wrong")
	}
	// Compute EPIs are inherited unchanged.
	for _, op := range isa.ComputeOps() {
		if p.EPI[op] != k40.EPI[op] {
			t.Errorf("projection changed EPI[%v]", op)
		}
	}
}

func TestPerBitToSector(t *testing.T) {
	// 10 pJ/bit over 32 bytes = 10e-12 * 256 = 2.56 nJ.
	if got := PerBitToSector(10); math.Abs(got-2.56e-9) > 1e-15 {
		t.Errorf("PerBitToSector(10) = %g, want 2.56e-9", got)
	}
}

func TestWithLinkEnergy(t *testing.T) {
	m := ProjectionModel(OnBoardLinks())
	m4 := m.WithLinkEnergy(4)
	if math.Abs(m4.EPT[isa.TxnInterGPM]-4*m.EPT[isa.TxnInterGPM]) > 1e-18 {
		t.Error("link energy not scaled")
	}
	if m4.EPT[isa.TxnDRAMToL2] != m.EPT[isa.TxnDRAMToL2] {
		t.Error("WithLinkEnergy must not touch other classes")
	}
	if m.EPT[isa.TxnInterGPM] == m4.EPT[isa.TxnInterGPM] {
		t.Error("original model mutated")
	}
}

func TestWithAmortization(t *testing.T) {
	m := ProjectionModel(OnPackageLinks())
	m25 := m.WithAmortization(0.25)
	if m25.Amortization != 0.25 || m.Amortization != 0.5 {
		t.Error("WithAmortization must copy, not mutate")
	}
}

func TestModelValidateRejections(t *testing.T) {
	bad := K40Model()
	bad.ClockHz = 0
	if bad.Validate() == nil {
		t.Error("zero clock must fail")
	}
	bad = K40Model()
	bad.Amortization = 1.5
	if bad.Validate() == nil {
		t.Error("amortization >1 must fail")
	}
	bad = K40Model()
	bad.EPI[isa.OpFAdd32] = -1
	if bad.Validate() == nil {
		t.Error("negative EPI must fail")
	}
	bad = K40Model()
	bad.EPT[isa.TxnL2ToL1] = -1
	if bad.Validate() == nil {
		t.Error("negative EPT must fail")
	}
}

func TestEstimateLinearityProperty(t *testing.T) {
	// Property: Eq. 4 is linear — doubling every event count and the
	// execution time doubles the energy.
	m := ProjectionModel(OnPackageLinks())
	f := func(inst, txn uint16, stalls, cycles uint16) bool {
		var c isa.Counts
		c.Inst[isa.OpFFMA32] = uint64(inst)
		c.Txn[isa.TxnDRAMToL2] = uint64(txn)
		c.StallCycles = uint64(stalls)
		c.Cycles = uint64(cycles) + 1
		c.GPMCount = 4

		double := c
		double.Inst[isa.OpFFMA32] *= 2
		double.Txn[isa.TxnDRAMToL2] *= 2
		double.StallCycles *= 2
		double.Cycles *= 2

		e1 := m.EstimateEnergy(&c)
		e2 := m.EstimateEnergy(&double)
		return math.Abs(e2-2*e1) <= 1e-9*math.Max(1, e2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBreakdownAveragePowerZeroTime(t *testing.T) {
	var b Breakdown
	if b.AveragePower() != 0 {
		t.Error("zero-time breakdown must report zero power")
	}
}
