package core

import (
	"gpujoule/internal/isa"
)

// Table Ib of the paper: EPI and EPT values measured on an NVIDIA
// Tesla K40 with the GPUJoule microbenchmark methodology. All values
// in nanojoules (converted to joules in the constructed model).
var tableIbEPI = map[isa.Op]float64{
	isa.OpFAdd32:  0.06,
	isa.OpFMul32:  0.05,
	isa.OpFFMA32:  0.05,
	isa.OpIAdd32:  0.07,
	isa.OpISub32:  0.07,
	isa.OpAnd32:   0.06,
	isa.OpOr32:    0.06,
	isa.OpXor32:   0.06,
	isa.OpSin32:   0.10,
	isa.OpCos32:   0.10,
	isa.OpIMul32:  0.13,
	isa.OpIMad32:  0.15,
	isa.OpFAdd64:  0.15,
	isa.OpFMul64:  0.13,
	isa.OpFFMA64:  0.16,
	isa.OpSqrt32:  0.02,
	isa.OpLog2_32: 0.03,
	isa.OpExp2_32: 0.08,
	isa.OpRcp32:   0.31,
}

// Table Ib data-movement transaction energies, in nanojoules per
// transaction (128 B for the RF-facing classes, 32 B sectors below).
var tableIbEPT = map[isa.TxnKind]float64{
	isa.TxnShmToRF:  5.45,
	isa.TxnL1ToRF:   5.99,
	isa.TxnL2ToL1:   3.96,
	isa.TxnDRAMToL2: 7.82,
}

// Baseline constant terms for the K40-class GPM. The paper reports the
// methodology (idle-power measurement) but not the numbers; these are
// representative values for a K40-class board and are recovered by the
// calibration flow against the reference silicon.
const (
	// K40ConstPower is the per-GPM constant power in watts.
	K40ConstPower = 25.0
	// K40EPStall is the energy per SM lane-stall cycle in joules
	// (≈2.2 W per stalled SM at 1 GHz).
	K40EPStall = 2.2 * NanoJoule
	// K40ClockHz is the module clock used throughout the study.
	K40ClockHz = 1e9
)

// K40Model returns the GPUJoule model with the published Table Ib
// values: the model validated against silicon in §IV-B.
func K40Model() *Model {
	m := &Model{
		Name:       "GPUJoule-K40",
		EPStall:    K40EPStall,
		ConstPower: K40ConstPower,
		ClockHz:    K40ClockHz,
	}
	for op, nj := range tableIbEPI {
		m.EPI[op] = nj * NanoJoule
	}
	for k, nj := range tableIbEPT {
		m.EPT[k] = nj * NanoJoule
	}
	return m
}

// LinkEnergyConfig selects the inter-GPM signaling energy for a
// projection model.
type LinkEnergyConfig struct {
	// LinkPicoJoulePerBit is the per-link-hop transfer energy.
	LinkPicoJoulePerBit float64
	// SwitchPicoJoulePerBit is the additional per-switch-traversal
	// energy (0 for ring topologies).
	SwitchPicoJoulePerBit float64
	// Amortization is the fraction of per-GPM constant power shared
	// across modules.
	Amortization float64
}

// OnPackageLinks returns the §V-A2 on-package configuration:
// 0.54 pJ/bit links and 50% constant-energy amortization.
func OnPackageLinks() LinkEnergyConfig {
	return LinkEnergyConfig{
		LinkPicoJoulePerBit:   OnPackagePicoJoulePerBit,
		SwitchPicoJoulePerBit: SwitchPicoJoulePerBit,
		Amortization:          0.5,
	}
}

// OnBoardLinks returns the §V-A2 on-board configuration: 10 pJ/bit
// links and no amortization.
func OnBoardLinks() LinkEnergyConfig {
	return LinkEnergyConfig{
		LinkPicoJoulePerBit:   OnBoardPicoJoulePerBit,
		SwitchPicoJoulePerBit: SwitchPicoJoulePerBit,
		Amortization:          0,
	}
}

// ProjectionModel returns the future-GPU energy model of §V-A2: the
// K40-calibrated EPI/EPT tables with the DRAM-to-L2 transaction cost
// replaced by HBM's 21.1 pJ/bit and inter-GPM link energies added per
// the integration domain.
func ProjectionModel(links LinkEnergyConfig) *Model {
	m := K40Model()
	m.Name = "GPUJoule-MultiGPM"
	m.EPT[isa.TxnDRAMToL2] = PerBitToSector(HBMPicoJoulePerBit)
	m.EPT[isa.TxnInterGPM] = PerBitToSector(links.LinkPicoJoulePerBit)
	m.EPT[isa.TxnSwitch] = PerBitToSector(links.SwitchPicoJoulePerBit)
	m.Amortization = links.Amortization
	return m
}
