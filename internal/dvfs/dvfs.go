// Package dvfs makes the clock a first-class simulated quantity:
// operating points on a per-architecture V/f curve, the energy-scaling
// rule that maps an operating point onto the Eq. 4 model, and governors
// that choose a point for a workload.
//
// The scaling rule is the classic CMOS decomposition. Dynamic switching
// energy is CV² per event, so every per-event term of the model (EPI,
// EPT, EPStall) scales with the voltage ratio squared; constant/leakage
// power is per-unit-time, so its share of total *energy* grows as the
// frequency drops and runs stretch out. That asymmetry is what creates
// a per-workload sweet spot in the middle of the curve.
//
// Determinism contract: the nominal operating point (1 GHz, 1.00 V) is
// the identity everywhere. Apply normalizes it to the zero Config
// fields, Scale and ScaleForConfig return the model pointer unchanged,
// and the simulator's clock conversions all multiply by exactly 1.0 —
// so every pre-DVFS output stays byte-identical.
package dvfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"gpujoule/internal/core"
	"gpujoule/internal/sim"
)

// ErrOffCurve reports a requested frequency that is not an operating
// point of the architecture's V/f curve.
var ErrOffCurve = errors.New("frequency is not on the V/f curve")

// OperatingPoint is one (frequency, supply voltage) pair on a V/f
// curve.
type OperatingPoint struct {
	// FreqHz is the core clock in Hz.
	FreqHz float64
	// Voltage is the supply voltage in volts (the model only ever uses
	// the ratio to the nominal 1.00 V).
	Voltage float64
}

// Nominal returns the identity operating point: the clock and voltage
// every pre-DVFS simulation ran at.
func Nominal() OperatingPoint {
	return OperatingPoint{FreqHz: sim.NominalClockHz, Voltage: sim.NominalVoltage}
}

// IsNominal reports whether p is the identity operating point (zero
// fields count as nominal, matching sim.Config's zero-value defaults).
func (p OperatingPoint) IsNominal() bool {
	return (p.FreqHz == 0 || p.FreqHz == sim.NominalClockHz) &&
		(p.Voltage == 0 || p.Voltage == sim.NominalVoltage)
}

// MHz returns the frequency in MHz (1000 for the nominal point).
func (p OperatingPoint) MHz() float64 {
	if p.FreqHz == 0 {
		return sim.NominalClockHz / 1e6
	}
	return p.FreqHz / 1e6
}

func (p OperatingPoint) String() string {
	return fmt.Sprintf("%gMHz@%.2fV", p.MHz(), p.voltage())
}

func (p OperatingPoint) voltage() float64 {
	if p.Voltage == 0 {
		return sim.NominalVoltage
	}
	return p.Voltage
}

// VoltageRatio is the supply voltage relative to nominal; dynamic
// energy scales with its square.
func (p OperatingPoint) VoltageRatio() float64 {
	return p.voltage() / sim.NominalVoltage
}

// FreqRatio is the clock relative to nominal.
func (p OperatingPoint) FreqRatio() float64 {
	if p.FreqHz == 0 {
		return 1
	}
	return p.FreqHz / sim.NominalClockHz
}

// Curve is an architecture's discrete V/f curve: the operating points
// the silicon can actually run at, ascending in frequency.
type Curve struct {
	name   string
	points []OperatingPoint
}

// NewCurve builds a curve from operating points. Points must have
// positive frequency and voltage and strictly ascend in both.
func NewCurve(name string, points ...OperatingPoint) (*Curve, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("dvfs: curve %q has no operating points", name)
	}
	pts := make([]OperatingPoint, len(points))
	copy(pts, points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].FreqHz < pts[j].FreqHz })
	for i, p := range pts {
		if p.FreqHz <= 0 {
			return nil, fmt.Errorf("dvfs: curve %q point %d: frequency %g must be positive: %w",
				name, i, p.FreqHz, sim.ErrBadFrequency)
		}
		if p.Voltage <= 0 {
			return nil, fmt.Errorf("dvfs: curve %q point %d: voltage %g must be positive: %w",
				name, i, p.Voltage, sim.ErrBadVoltage)
		}
		if i > 0 && (p.FreqHz == pts[i-1].FreqHz || p.Voltage < pts[i-1].Voltage) {
			return nil, fmt.Errorf("dvfs: curve %q: points must strictly ascend in frequency and monotonically in voltage (point %d: %v after %v)",
				name, i, p, pts[i-1])
		}
	}
	return &Curve{name: name, points: pts}, nil
}

// K40Curve is the reference V/f curve used throughout: seven operating
// points around the nominal 1 GHz / 1.00 V, with the near-quadratic
// voltage climb above nominal that makes high frequencies expensive.
func K40Curve() *Curve {
	c, err := NewCurve("K40",
		OperatingPoint{FreqHz: 600e6, Voltage: 0.80},
		OperatingPoint{FreqHz: 700e6, Voltage: 0.85},
		OperatingPoint{FreqHz: 800e6, Voltage: 0.90},
		OperatingPoint{FreqHz: 900e6, Voltage: 0.95},
		OperatingPoint{FreqHz: 1000e6, Voltage: 1.00},
		OperatingPoint{FreqHz: 1100e6, Voltage: 1.08},
		OperatingPoint{FreqHz: 1200e6, Voltage: 1.17},
	)
	if err != nil {
		panic(err) // static table; unreachable
	}
	return c
}

// Name reports the curve's architecture name.
func (c *Curve) Name() string { return c.name }

// Points returns the operating points ascending in frequency. The
// slice is a copy; callers may mutate it.
func (c *Curve) Points() []OperatingPoint {
	out := make([]OperatingPoint, len(c.points))
	copy(out, c.points)
	return out
}

// Min returns the slowest operating point on the curve.
func (c *Curve) Min() OperatingPoint { return c.points[0] }

// Max returns the fastest operating point on the curve.
func (c *Curve) Max() OperatingPoint { return c.points[len(c.points)-1] }

// At returns the curve's operating point at exactly freqHz, or a hint
// listing the valid frequencies wrapped around ErrOffCurve. A zero
// freqHz selects the nominal point if the curve has one.
func (c *Curve) At(freqHz float64) (OperatingPoint, error) {
	if freqHz == 0 {
		freqHz = sim.NominalClockHz
	}
	for _, p := range c.points {
		if p.FreqHz == freqHz {
			return p, nil
		}
	}
	return OperatingPoint{}, fmt.Errorf("dvfs: %g MHz on curve %q: %w (valid: %s MHz)",
		freqHz/1e6, c.name, ErrOffCurve, c.mhzList())
}

// AtMHz is At with the frequency given in MHz (the CLI unit).
func (c *Curve) AtMHz(mhz float64) (OperatingPoint, error) {
	return c.At(mhz * 1e6)
}

// mhzList renders the valid frequencies for hint text.
func (c *Curve) mhzList() string {
	var b strings.Builder
	for i, p := range c.points {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g", p.FreqHz/1e6)
	}
	return b.String()
}

// Apply stamps an operating point onto a simulator configuration. The
// exact nominal point normalizes to the zero fields so nominal configs
// keep their legacy SimKey, JSON serialization, and cache entries.
func Apply(cfg sim.Config, p OperatingPoint) sim.Config {
	if p.FreqHz == 0 || p.FreqHz == sim.NominalClockHz {
		cfg.ClockHz = 0
	} else {
		cfg.ClockHz = p.FreqHz
	}
	if p.Voltage == 0 || p.Voltage == sim.NominalVoltage {
		cfg.VoltageV = 0
	} else {
		cfg.VoltageV = p.Voltage
	}
	return cfg
}

// PointOf recovers the operating point a configuration runs at.
func PointOf(cfg sim.Config) OperatingPoint {
	return OperatingPoint{FreqHz: cfg.Clock(), Voltage: cfg.Voltage()}
}

// Scale rescales an Eq. 4 model to an operating point: per-event terms
// by the voltage ratio squared, clock to the point's frequency,
// constant power untouched (it is per-unit-time). The nominal point
// returns m itself, unchanged — callers comparing pointers get the
// identity guarantee for free.
func Scale(m *core.Model, p OperatingPoint) *core.Model {
	if p.IsNominal() {
		return m
	}
	return m.WithOperatingPoint(p.FreqHz, p.VoltageRatio())
}

// ScaleForConfig rescales a model to the operating point stamped on a
// configuration; a nominal configuration returns m itself.
func ScaleForConfig(m *core.Model, cfg sim.Config) *core.Model {
	if cfg.ClockHz == 0 && cfg.VoltageV == 0 {
		return m
	}
	return Scale(m, PointOf(cfg))
}
