package dvfs

import (
	"errors"
	"math"
	"testing"

	"gpujoule/internal/core"
	"gpujoule/internal/isa"
	"gpujoule/internal/sim"
)

func TestK40CurveShape(t *testing.T) {
	c := K40Curve()
	pts := c.Points()
	if len(pts) != 7 {
		t.Fatalf("K40 curve has %d points, want 7", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FreqHz <= pts[i-1].FreqHz || pts[i].Voltage < pts[i-1].Voltage {
			t.Errorf("curve not monotonic at %d: %v after %v", i, pts[i], pts[i-1])
		}
	}
	nom, err := c.At(0)
	if err != nil {
		t.Fatalf("At(0): %v", err)
	}
	if !nom.IsNominal() || nom.FreqHz != sim.NominalClockHz || nom.Voltage != sim.NominalVoltage {
		t.Errorf("At(0) = %v, want nominal 1 GHz / 1.00 V", nom)
	}
	if c.Min().FreqHz != 600e6 || c.Max().FreqHz != 1200e6 {
		t.Errorf("extremes = %v / %v, want 600/1200 MHz", c.Min(), c.Max())
	}
}

func TestCurveOffCurve(t *testing.T) {
	c := K40Curve()
	_, err := c.AtMHz(850)
	if !errors.Is(err, ErrOffCurve) {
		t.Fatalf("AtMHz(850) error = %v, want ErrOffCurve", err)
	}
	if got := err.Error(); got == "" || !contains(got, "600") || !contains(got, "1200") {
		t.Errorf("off-curve hint %q should list valid frequencies", got)
	}
	if _, err := c.AtMHz(900); err != nil {
		t.Errorf("AtMHz(900): %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		})())
}

func TestNewCurveRejectsBadPoints(t *testing.T) {
	if _, err := NewCurve("empty"); err == nil {
		t.Error("empty curve accepted")
	}
	_, err := NewCurve("negf", OperatingPoint{FreqHz: -1, Voltage: 1})
	if !errors.Is(err, sim.ErrBadFrequency) {
		t.Errorf("negative frequency error = %v, want ErrBadFrequency", err)
	}
	_, err = NewCurve("negv", OperatingPoint{FreqHz: 1e9, Voltage: 0})
	if !errors.Is(err, sim.ErrBadVoltage) {
		t.Errorf("zero voltage error = %v, want ErrBadVoltage", err)
	}
	_, err = NewCurve("dup",
		OperatingPoint{FreqHz: 1e9, Voltage: 1},
		OperatingPoint{FreqHz: 1e9, Voltage: 1.1})
	if err == nil {
		t.Error("duplicate frequency accepted")
	}
}

func TestApplyNormalizesNominal(t *testing.T) {
	cfg := sim.MultiGPM(4, sim.BW2x)
	stamped := Apply(cfg, Nominal())
	if stamped.ClockHz != 0 || stamped.VoltageV != 0 {
		t.Errorf("nominal Apply left ClockHz=%g VoltageV=%g, want zero fields", stamped.ClockHz, stamped.VoltageV)
	}
	if stamped.SimKey() != cfg.SimKey() {
		t.Errorf("nominal Apply changed SimKey %q -> %q", cfg.SimKey(), stamped.SimKey())
	}

	p := OperatingPoint{FreqHz: 800e6, Voltage: 0.90}
	stamped = Apply(cfg, p)
	if stamped.ClockHz != 800e6 || stamped.VoltageV != 0.90 {
		t.Errorf("Apply(800MHz) = ClockHz %g VoltageV %g", stamped.ClockHz, stamped.VoltageV)
	}
	if stamped.SimKey() == cfg.SimKey() {
		t.Error("non-nominal operating point must change SimKey")
	}
	if got := PointOf(stamped); got != p {
		t.Errorf("PointOf = %v, want %v", got, p)
	}
}

func testModel() *core.Model {
	m := &core.Model{
		Name:       "test",
		EPStall:    2e-10,
		ConstPower: 50,
		ClockHz:    sim.NominalClockHz,
	}
	for op := range m.EPI {
		m.EPI[op] = 1e-10
	}
	for k := range m.EPT {
		m.EPT[k] = 3e-10
	}
	return m
}

func TestScaleIdentityAtNominal(t *testing.T) {
	m := testModel()
	if got := Scale(m, Nominal()); got != m {
		t.Error("Scale at nominal must return the same model pointer")
	}
	if got := Scale(m, OperatingPoint{}); got != m {
		t.Error("Scale at zero point must return the same model pointer")
	}
	cfg := sim.MultiGPM(2, sim.BW2x)
	if got := ScaleForConfig(m, cfg); got != m {
		t.Error("ScaleForConfig on a zero-field config must return the same model pointer")
	}
}

func TestScaleAppliesVSquared(t *testing.T) {
	m := testModel()
	p := OperatingPoint{FreqHz: 600e6, Voltage: 0.80}
	s := Scale(m, p)
	if s == m {
		t.Fatal("non-nominal Scale returned the original pointer")
	}
	v2 := p.VoltageRatio() * p.VoltageRatio()
	if got, want := s.EPI[isa.OpFAdd32], m.EPI[isa.OpFAdd32]*v2; got != want {
		t.Errorf("EPI scaled to %g, want %g", got, want)
	}
	if got, want := s.EPT[isa.TxnDRAMToL2], m.EPT[isa.TxnDRAMToL2]*v2; got != want {
		t.Errorf("EPT scaled to %g, want %g", got, want)
	}
	if got, want := s.EPStall, m.EPStall*v2; got != want {
		t.Errorf("EPStall scaled to %g, want %g", got, want)
	}
	if s.ConstPower != m.ConstPower {
		t.Errorf("ConstPower changed %g -> %g; it is per-unit-time", m.ConstPower, s.ConstPower)
	}
	if s.ClockHz != 600e6 {
		t.Errorf("ClockHz = %g, want 600e6", s.ClockHz)
	}
}

// TestEnergyDirection pins the scaling rule's predicted directions on a
// synthetic count set: lowering frequency+voltage cuts the dynamic
// terms by V² while the constant term grows with the stretched runtime.
func TestEnergyDirection(t *testing.T) {
	m := testModel()
	var c isa.Counts
	c.Inst[isa.OpFAdd32] = 1e6
	c.Txn[isa.TxnDRAMToL2] = 1e5
	c.StallCycles = 1e5
	c.Cycles = 2e6
	c.GPMCount = 1

	nom := m.Estimate(&c)
	low := Scale(m, OperatingPoint{FreqHz: 600e6, Voltage: 0.80}).Estimate(&c)

	if low.Compute >= nom.Compute {
		t.Errorf("dynamic compute energy must fall at lower voltage: %g -> %g", nom.Compute, low.Compute)
	}
	if low.Constant <= nom.Constant {
		t.Errorf("constant energy must grow as runtime stretches: %g -> %g", nom.Constant, low.Constant)
	}
	if low.Seconds <= nom.Seconds {
		t.Errorf("runtime must stretch at lower clock: %g -> %g", nom.Seconds, low.Seconds)
	}
	wantConst := nom.Constant * (1000.0 / 600.0)
	if math.Abs(low.Constant-wantConst)/wantConst > 1e-12 {
		t.Errorf("constant energy %g, want %g (inverse frequency)", low.Constant, wantConst)
	}
}

// syntheticEval models a workload with dynamic energy D·v² and runtime
// W/f plus constant power P — enough structure for a mid-curve sweet
// spot.
func syntheticEval(dynJ, workCycles, constW float64) Evaluator {
	return func(p OperatingPoint) (Metrics, error) {
		v := p.VoltageRatio()
		secs := workCycles / p.FreqHz
		return Metrics{
			Point:   p,
			Energy:  dynJ*v*v + constW*secs,
			Seconds: secs,
		}, nil
	}
}

func TestFixedGovernor(t *testing.T) {
	g := Fixed{Point: OperatingPoint{FreqHz: 900e6}}
	d, err := g.Decide(K40Curve(), syntheticEval(10, 1e9, 50))
	if err != nil {
		t.Fatal(err)
	}
	if d.Point.FreqHz != 900e6 || d.Point.Voltage != 0.95 {
		t.Errorf("fixed decision = %v, want curve's 900 MHz point", d.Point)
	}
	if len(d.Candidates) != 1 {
		t.Errorf("fixed governor made %d evaluations, want 1", len(d.Candidates))
	}

	if _, err := (Fixed{Point: OperatingPoint{FreqHz: 850e6}}).Decide(K40Curve(), syntheticEval(10, 1e9, 50)); !errors.Is(err, ErrOffCurve) {
		t.Errorf("off-curve fixed point error = %v, want ErrOffCurve", err)
	}
}

func TestSweetSpotGovernor(t *testing.T) {
	// Heavy constant power pushes the energy-optimal point above the
	// curve minimum; heavy dynamic energy pulls it below the maximum.
	g := SweetSpot{Objective: MinEnergy, ObjectiveName: "energy"}
	d, err := g.Decide(K40Curve(), syntheticEval(20, 1e9, 40))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Candidates) != 7 {
		t.Fatalf("sweet-spot evaluated %d points, want 7", len(d.Candidates))
	}
	if d.Point == K40Curve().Min() || d.Point == K40Curve().Max() {
		t.Errorf("sweet spot %v landed on a curve extreme; synthetic workload has an interior optimum", d.Point)
	}
	for _, c := range d.Candidates {
		if c.Energy < d.Chosen.Energy {
			t.Errorf("candidate %v (%.4g J) beats chosen %v (%.4g J)", c.Point, c.Energy, d.Point, d.Chosen.Energy)
		}
	}
}

func TestRaceToIdleGovernor(t *testing.T) {
	// With free idle, racing always wins: full-voltage dynamic cost is
	// outweighed by the constant power saved during the bought slack.
	d, err := RaceToIdle{IdleWatts: 0}.Decide(K40Curve(), syntheticEval(1, 1e9, 100))
	if err != nil {
		t.Fatal(err)
	}
	if d.Point != K40Curve().Max() {
		t.Errorf("free-idle race chose %v, want curve max", d.Point)
	}
	// With idle as expensive as running, pacing wins: racing pays the
	// same constant power plus the V² dynamic premium.
	d, err = RaceToIdle{IdleWatts: 100}.Decide(K40Curve(), syntheticEval(1, 1e9, 100))
	if err != nil {
		t.Fatal(err)
	}
	if d.Point != K40Curve().Min() {
		t.Errorf("expensive-idle race chose %v, want curve min", d.Point)
	}
}

func TestPaceToFinishGovernor(t *testing.T) {
	eval := syntheticEval(10, 1e9, 50)
	// 1e9 cycles at 800 MHz = 1.25 s; a 1.3 s deadline admits 800 MHz
	// but not 700 (1.43 s).
	d, err := PaceToFinish{DeadlineSeconds: 1.3}.Decide(K40Curve(), eval)
	if err != nil {
		t.Fatal(err)
	}
	if d.Point.FreqHz != 800e6 {
		t.Errorf("pace chose %v, want 800 MHz", d.Point)
	}
	// An impossible deadline falls back to the fastest point.
	d, err = PaceToFinish{DeadlineSeconds: 0.1}.Decide(K40Curve(), eval)
	if err != nil {
		t.Fatal(err)
	}
	if d.Point != K40Curve().Max() {
		t.Errorf("impossible deadline chose %v, want curve max", d.Point)
	}
}
