package dvfs

import (
	"errors"
	"fmt"
	"math"
)

// DeepIdleFraction is the fraction of the machine's constant power that
// a deep-idle (clock-gated, rail-dropped) GPU still draws while parked
// after racing to finish. Race-to-idle is only a real contest if idling
// is cheaper than computing slowly; 25% residual is the conventional
// package-sleep assumption.
const DeepIdleFraction = 0.25

// Metrics is one candidate evaluation: a workload run (simulated or
// modeled) at an operating point.
type Metrics struct {
	Point OperatingPoint
	// Energy is the total Eq. 4 energy in joules.
	Energy float64
	// Seconds is the execution time.
	Seconds float64
}

// EDP is the energy-delay product, the classic single-number
// efficiency/performance compromise.
func (m Metrics) EDP() float64 { return m.Energy * m.Seconds }

// Evaluator runs one workload at an operating point and reports its
// energy and time. Governors call it once per candidate point; callers
// back it with the simulator, the analytic model, or a cache.
type Evaluator func(p OperatingPoint) (Metrics, error)

// Objective ranks candidate evaluations; governors minimize it.
type Objective func(m Metrics) float64

// Built-in objectives.
var (
	// MinEnergy minimizes joules, ignoring runtime.
	MinEnergy Objective = func(m Metrics) float64 { return m.Energy }
	// MinEDP minimizes the energy-delay product.
	MinEDP Objective = func(m Metrics) float64 { return m.EDP() }
	// MinED2P minimizes energy·delay², weighting performance harder.
	MinED2P Objective = func(m Metrics) float64 { return m.Energy * m.Seconds * m.Seconds }
)

// Decision is a governor's choice of operating point for one workload,
// with the evaluations that justified it.
type Decision struct {
	// Policy names the governor that decided.
	Policy string
	// Point is the chosen operating point.
	Point OperatingPoint
	// Chosen is the evaluation at the chosen point.
	Chosen Metrics
	// Candidates are all evaluations the governor made, ascending in
	// frequency.
	Candidates []Metrics
	// Reason is a one-line human-readable rationale.
	Reason string
}

// Governor picks an operating point for a workload by evaluating
// candidates from a V/f curve.
type Governor interface {
	// Name identifies the policy (stable; appears in reports).
	Name() string
	// Decide evaluates candidates from the curve and picks a point.
	Decide(curve *Curve, eval Evaluator) (Decision, error)
}

// Fixed runs everything at one operating point — the pre-DVFS behavior
// when the point is nominal.
type Fixed struct {
	Point OperatingPoint
}

// Name implements Governor.
func (f Fixed) Name() string { return "fixed" }

// Decide implements Governor: a single evaluation at the fixed point.
func (f Fixed) Decide(curve *Curve, eval Evaluator) (Decision, error) {
	p, err := curve.At(f.Point.FreqHz)
	if err != nil {
		return Decision{}, err
	}
	m, err := eval(p)
	if err != nil {
		return Decision{}, err
	}
	return Decision{
		Policy:     f.Name(),
		Point:      p,
		Chosen:     m,
		Candidates: []Metrics{m},
		Reason:     fmt.Sprintf("pinned to %v", p),
	}, nil
}

// SweetSpot sweeps the whole curve and picks the point minimizing the
// objective (MinEDP when nil) — the per-workload sweet-spot search.
type SweetSpot struct {
	// Objective ranks candidates; nil means MinEDP.
	Objective Objective
	// ObjectiveName labels the objective in the decision reason (e.g.
	// "EDP"); empty defaults to "EDP".
	ObjectiveName string
}

// Name implements Governor.
func (s SweetSpot) Name() string { return "sweetspot" }

// Decide implements Governor: evaluate every curve point, keep the
// minimum-objective one. Ties go to the lower frequency (points ascend,
// strict < keeps the first).
func (s SweetSpot) Decide(curve *Curve, eval Evaluator) (Decision, error) {
	obj := s.Objective
	if obj == nil {
		obj = MinEDP
	}
	objName := s.ObjectiveName
	if objName == "" {
		objName = "EDP"
	}
	var (
		cands []Metrics
		best  Metrics
		bestV = math.Inf(1)
	)
	for _, p := range curve.Points() {
		m, err := eval(p)
		if err != nil {
			return Decision{}, err
		}
		cands = append(cands, m)
		if v := obj(m); v < bestV {
			best, bestV = m, v
		}
	}
	return Decision{
		Policy:     s.Name(),
		Point:      best.Point,
		Chosen:     best,
		Candidates: cands,
		Reason:     fmt.Sprintf("min %s over %d points: %v", objName, len(cands), best.Point),
	}, nil
}

// RaceToIdle compares finishing fast then deep-idling until the
// pace-to-finish deadline against computing slowly the whole time. The
// deadline is the runtime at the curve's slowest point; racing charges
// IdleWatts for the slack it buys.
type RaceToIdle struct {
	// IdleWatts is the machine's deep-idle power draw (typically
	// DeepIdleFraction times the model's total constant power).
	IdleWatts float64
}

// Name implements Governor.
func (r RaceToIdle) Name() string { return "racetoidle" }

// Decide implements Governor: evaluate the curve's extremes, charge the
// racer for its idle slack, pick the cheaper strategy.
func (r RaceToIdle) Decide(curve *Curve, eval Evaluator) (Decision, error) {
	if r.IdleWatts < 0 {
		return Decision{}, errors.New("dvfs: race-to-idle idle power must be non-negative")
	}
	pace, err := eval(curve.Min())
	if err != nil {
		return Decision{}, err
	}
	race, err := eval(curve.Max())
	if err != nil {
		return Decision{}, err
	}
	slack := pace.Seconds - race.Seconds
	if slack < 0 {
		slack = 0
	}
	raceTotal := race.Energy + r.IdleWatts*slack
	d := Decision{
		Policy:     r.Name(),
		Candidates: []Metrics{pace, race},
	}
	if raceTotal < pace.Energy {
		d.Point, d.Chosen = race.Point, race
		d.Reason = fmt.Sprintf("race %.4g J (incl. %.4g J idle) beats pace %.4g J over %.4g s deadline",
			raceTotal, r.IdleWatts*slack, pace.Energy, pace.Seconds)
	} else {
		d.Point, d.Chosen = pace.Point, pace
		d.Reason = fmt.Sprintf("pace %.4g J beats race %.4g J (incl. %.4g J idle) over %.4g s deadline",
			pace.Energy, raceTotal, r.IdleWatts*slack, pace.Seconds)
	}
	return d, nil
}

// PaceToFinish picks the slowest operating point that still meets a
// deadline — the dual of racing. A zero deadline means "the slowest
// point's runtime", which always selects the curve minimum.
type PaceToFinish struct {
	// DeadlineSeconds is the latest acceptable completion time.
	DeadlineSeconds float64
}

// Name implements Governor.
func (p PaceToFinish) Name() string { return "pacetofinish" }

// Decide implements Governor: walk the curve ascending and return the
// first (slowest) point meeting the deadline; if none does, the fastest
// point is the best effort.
func (p PaceToFinish) Decide(curve *Curve, eval Evaluator) (Decision, error) {
	var cands []Metrics
	for _, pt := range curve.Points() {
		m, err := eval(pt)
		if err != nil {
			return Decision{}, err
		}
		cands = append(cands, m)
		if p.DeadlineSeconds <= 0 || m.Seconds <= p.DeadlineSeconds {
			return Decision{
				Policy:     p.Name(),
				Point:      m.Point,
				Chosen:     m,
				Candidates: cands,
				Reason:     fmt.Sprintf("slowest point meeting %.4g s deadline: %v (%.4g s)", p.DeadlineSeconds, m.Point, m.Seconds),
			}, nil
		}
	}
	last := cands[len(cands)-1]
	return Decision{
		Policy:     p.Name(),
		Point:      last.Point,
		Chosen:     last,
		Candidates: cands,
		Reason:     fmt.Sprintf("no point meets %.4g s deadline; best effort %v (%.4g s)", p.DeadlineSeconds, last.Point, last.Seconds),
	}, nil
}
