package harness

import (
	"gpujoule/internal/core"
	"gpujoule/internal/isa"
	"gpujoule/internal/metrics"
	"gpujoule/internal/sim"
	"gpujoule/internal/stats"
)

// AblationRow is one design-choice ablation at the 32-GPM on-package
// 2x-BW design point.
type AblationRow struct {
	// Name describes the ablated choice.
	Name string
	// Speedup is the mean speedup over the 1-GPM baseline.
	Speedup float64
	// EnergyRatio is the mean energy normalized to the 1-GPM baseline.
	EnergyRatio float64
	// EDPSE is the mean EDP scaling efficiency in percent.
	EDPSE float64
	// InterGPMGB is the mean inter-GPM link traffic in gigabytes.
	InterGPMGB float64
}

// AblationResult collects the §V-A/§V-E design-choice ablations: the
// locality mechanisms the paper adopts from prior multi-module work
// (distributed contiguous CTA scheduling + first-touch placement) and
// the §V-E suggestion of aggressive SM clock-gating.
type AblationResult struct {
	Rows []AblationRow
}

// Row returns the named row.
func (r AblationResult) Row(name string) (AblationRow, bool) {
	for _, row := range r.Rows {
		if row.Name == name {
			return row, true
		}
	}
	return AblationRow{}, false
}

// Ablation names.
const (
	AblationBaseline     = "baseline (contiguous CTAs, first-touch, module-side L2)"
	AblationRoundRobin   = "round-robin CTA scheduling"
	AblationStripedPages = "striped (NUMA-blind) page placement"
	AblationMemorySideL2 = "memory-side L2 placement"
	AblationClockGating  = "aggressive SM clock-gating (70% idle power saved)"
)

// AblationStudy quantifies how much each §V-A1 locality mechanism and
// the §V-E clock-gating suggestion contribute at the 32-GPM design
// point. The locality ablations rerun the simulator; the clock-gating
// ablation reprices the baseline run with a reduced stall energy.
func (h *Harness) AblationStudy() (AblationResult, error) {
	var res AblationResult

	baseCfg := sim.MultiGPM(32, sim.BW2x)

	rrCfg := baseCfg
	rrCfg.CTASchedule = sim.ScheduleRoundRobin

	stripedCfg := baseCfg
	stripedCfg.ForceStripedPages = true

	memSideCfg := baseCfg
	memSideCfg.L2 = sim.L2MemorySide

	gated := h.onPackage.Clone()
	gated.EPStall *= 0.3
	gated.Name = h.onPackage.Name + "(gated)"

	points := []struct {
		name  string
		cfg   sim.Config
		model *core.Model
	}{
		{AblationBaseline, baseCfg, h.onPackage},
		{AblationRoundRobin, rrCfg, h.onPackage},
		{AblationStripedPages, stripedCfg, h.onPackage},
		{AblationMemorySideL2, memSideCfg, h.onPackage},
		{AblationClockGating, baseCfg, gated},
	}

	if err := h.prime(baselineCfg(), baseCfg, rrCfg, stripedCfg, memSideCfg); err != nil {
		return res, err
	}

	for _, p := range points {
		var sp, er, ed, gb []float64
		for _, app := range h.apps {
			base, err := h.baseline(app)
			if err != nil {
				return res, err
			}
			r, err := h.run(app, p.cfg)
			if err != nil {
				return res, err
			}
			bs := sample(p.model, base)
			ss := sample(p.model, r)
			sp = append(sp, metrics.Speedup(bs, ss))
			er = append(er, metrics.EnergyRatio(bs, ss))
			ed = append(ed, metrics.EDPSE(bs, p.cfg.GPMs, ss))
			gb = append(gb, float64(r.Counts.TotalTransactionBytes(isa.TxnInterGPM))/(1<<30))
		}
		res.Rows = append(res.Rows, AblationRow{
			Name:        p.name,
			Speedup:     stats.Mean(sp),
			EnergyRatio: stats.Mean(er),
			EDPSE:       stats.Mean(ed),
			InterGPMGB:  stats.Mean(gb),
		})
	}
	return res, nil
}

// AblationTable renders the ablation study.
func AblationTable(r AblationResult) *Table {
	t := &Table{
		Title: "Ablation: §V-A1 locality mechanisms and §V-E clock-gating (32-GPM, 2x-BW)",
		Note: "contiguous CTA scheduling + first-touch placement are the locality choices the " +
			"paper adopts; removing either exposes far more inter-GPM traffic",
		Header: []string{"Design point", "Speedup", "Energy vs 1-GPM", "EDPSE (%)", "Inter-GPM GB"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, f2(row.Speedup), f2(row.EnergyRatio), f1(row.EDPSE), f2(row.InterGPMGB))
	}
	return t
}
