package harness

import (
	"strings"
	"testing"
)

func TestShapeAblationStudy(t *testing.T) {
	skipIfShort(t)
	res, err := sharedHarness.AblationStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("ablation has 5 design points, got %d", len(res.Rows))
	}
	base, ok := res.Row(AblationBaseline)
	if !ok {
		t.Fatal("baseline row missing")
	}
	rr, _ := res.Row(AblationRoundRobin)
	striped, _ := res.Row(AblationStripedPages)
	gated, _ := res.Row(AblationClockGating)

	// The §V-A1 locality mechanisms matter: removing either contiguous
	// CTA scheduling or first-touch placement hurts efficiency.
	if rr.EDPSE >= base.EDPSE {
		t.Errorf("round-robin CTA scheduling should hurt EDPSE: %.1f >= %.1f",
			rr.EDPSE, base.EDPSE)
	}
	if striped.EDPSE >= base.EDPSE {
		t.Errorf("NUMA-blind placement should hurt EDPSE: %.1f >= %.1f",
			striped.EDPSE, base.EDPSE)
	}
	if rr.EnergyRatio <= base.EnergyRatio {
		t.Errorf("locality-blind scheduling should cost energy: %.2f <= %.2f",
			rr.EnergyRatio, base.EnergyRatio)
	}

	// §V-A1: module-side L2s filter remote traffic; memory-side
	// placement crosses the fabric on every remote L1 miss, including
	// home-L2 hits, so it can never move less inter-GPM data.
	if memSide, ok := res.Row(AblationMemorySideL2); !ok {
		t.Error("memory-side L2 row missing")
	} else {
		if memSide.InterGPMGB < base.InterGPMGB*0.99 {
			t.Errorf("memory-side L2 must not reduce fabric traffic: %.2f GB < %.2f GB",
				memSide.InterGPMGB, base.InterGPMGB)
		}
		if memSide.EDPSE > base.EDPSE*1.3 {
			t.Errorf("memory-side L2 should not dramatically beat module-side: %.1f vs %.1f",
				memSide.EDPSE, base.EDPSE)
		}
	}

	// §V-E: reducing idle-SM power improves energy without touching
	// performance.
	if gated.Speedup != base.Speedup {
		t.Errorf("clock-gating is an energy lever only: speedup %.2f vs %.2f",
			gated.Speedup, base.Speedup)
	}
	if gated.EnergyRatio >= base.EnergyRatio || gated.EDPSE <= base.EDPSE {
		t.Errorf("clock-gating should save energy and lift EDPSE: E %.2f vs %.2f, EDPSE %.1f vs %.1f",
			gated.EnergyRatio, base.EnergyRatio, gated.EDPSE, base.EDPSE)
	}
}

func TestAblationTableRenders(t *testing.T) {
	tb := AblationTable(AblationResult{Rows: []AblationRow{
		{Name: "x", Speedup: 2, EnergyRatio: 1.5, EDPSE: 40, InterGPMGB: 3.25},
	}})
	var sb strings.Builder
	if err := tb.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Ablation") || !strings.Contains(sb.String(), "40.0") {
		t.Errorf("table missing content:\n%s", sb.String())
	}
}
