package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSVDir(t *testing.T) {
	rep := &Report{
		Scale: 1,
		Records: []ExperimentRecord{
			{ID: "Figure 6", Table: func() *Table {
				tb := &Table{Header: []string{"a", "b"}}
				tb.AddRow("1", "2")
				return tb
			}()},
			{ID: "Link-energy study (§V-C)", Table: &Table{Header: []string{"x"}}},
		},
	}
	dir := t.TempDir()
	if err := rep.WriteCSVDir(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("wrote %d files, want 2", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure_6.csv"))
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(string(data))
	if got != "a,b\n1,2" {
		t.Errorf("figure_6.csv = %q", got)
	}
	for _, e := range entries {
		if strings.ContainsAny(e.Name(), " §()") {
			t.Errorf("unsanitized filename %q", e.Name())
		}
	}
}
