package harness

import (
	"fmt"
	"math"

	"gpujoule/internal/dvfs"
	"gpujoule/internal/isa"
	"gpujoule/internal/obs"
	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
)

// SweetSpotRow is one workload's sweet-spot search outcome.
type SweetSpotRow struct {
	// Workload is the application name.
	Workload string
	// Decision is the governor's choice with all candidate evaluations.
	Decision dvfs.Decision
	// Nominal is the evaluation at the nominal 1 GHz point.
	Nominal dvfs.Metrics
	// GainPct is the objective improvement of the chosen point over
	// nominal, in percent (positive = the sweet spot is better).
	GainPct float64
}

// SweetSpotResult is the per-workload sweet-spot study.
type SweetSpotResult struct {
	// GPMs is the module count the search ran at.
	GPMs int
	// Objective names the minimized objective.
	Objective string
	// Rows holds one entry per workload, in evaluation order.
	Rows []SweetSpotRow
}

// SweetSpotStudy sweeps every workload over the K40 V/f curve at the
// given module count (1 = the baseline GPM) and picks each workload's
// objective-minimizing operating point. A nil objective minimizes EDP.
// The whole (workloads × curve) grid primes through the run engine
// first, so the governor's evaluations are memo hits.
func (h *Harness) SweetSpotStudy(gpms int, obj dvfs.Objective, objName string) (SweetSpotResult, error) {
	if obj == nil {
		obj, objName = dvfs.MinEDP, "EDP"
	}
	curve := dvfs.K40Curve()
	res := SweetSpotResult{GPMs: gpms, Objective: objName}

	cfgFor := func(p dvfs.OperatingPoint) sim.Config {
		return dvfs.Apply(sim.MultiGPM(gpms, sim.BW2x), p)
	}
	var pts []runner.Point
	for _, app := range h.apps {
		for _, p := range curve.Points() {
			pts = append(pts, runner.Point{App: app, Scale: h.params.Scale, Config: cfgFor(p)})
		}
	}
	if _, err := h.engine.Run(h.ctx, pts); err != nil {
		return res, err
	}

	gov := dvfs.SweetSpot{Objective: obj, ObjectiveName: objName}
	for _, app := range h.apps {
		eval := h.evaluator(app, cfgFor)
		d, err := gov.Decide(curve, eval)
		if err != nil {
			return res, err
		}
		nom, err := eval(dvfs.Nominal())
		if err != nil {
			return res, err
		}
		gain := 0.0
		if v := obj(nom); v > 0 {
			gain = (v - obj(d.Chosen)) / v * 100
		}
		res.Rows = append(res.Rows, SweetSpotRow{
			Workload: app.Name,
			Decision: d,
			Nominal:  nom,
			GainPct:  gain,
		})
	}
	return res, nil
}

// evaluator backs a governor with memoized simulations: each operating
// point simulates the stamped config and prices it with the matching
// rescaled model.
func (h *Harness) evaluator(app *trace.App, cfgFor func(dvfs.OperatingPoint) sim.Config) dvfs.Evaluator {
	return func(p dvfs.OperatingPoint) (dvfs.Metrics, error) {
		cfg := cfgFor(p)
		r, err := h.run(app, cfg)
		if err != nil {
			return dvfs.Metrics{}, err
		}
		m := h.Model(cfg)
		return dvfs.Metrics{
			Point:   p,
			Energy:  m.EstimateEnergy(&r.Counts),
			Seconds: r.Seconds(),
		}, nil
	}
}

// Table renders the sweet-spot study.
func (r SweetSpotResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("DVFS sweet spot per workload (%d-GPM, min %s over the K40 V/f curve)", r.GPMs, r.Objective),
		Note: "candidates simulated at every curve point; energy priced by the per-point rescaled model " +
			"(dynamic terms ×V², constant power per-unit-time); gain is vs the nominal 1 GHz point",
		Header: []string{"workload", "sweet spot", "energy J", "seconds", "nominal J", r.Objective + " gain"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			row.Workload,
			row.Decision.Point.String(),
			fmt.Sprintf("%.4g", row.Decision.Chosen.Energy),
			fmt.Sprintf("%.4g", row.Decision.Chosen.Seconds),
			fmt.Sprintf("%.4g", row.Nominal.Energy),
			fmt.Sprintf("%+.1f%%", row.GainPct),
		)
	}
	return t
}

// RaceToIdleRow is one module count's race-vs-pace outcome.
type RaceToIdleRow struct {
	// GPMs is the module count.
	GPMs int
	// IdleWatts is the deep-idle power charged to the racer
	// (DeepIdleFraction × the design's total constant power).
	IdleWatts float64
	// RaceWins and PaceWins count the workloads each strategy won.
	RaceWins, PaceWins int
	// AvgSavingPct is the mean energy saving of each workload's winning
	// strategy over its losing one, in percent.
	AvgSavingPct float64
}

// RaceToIdleResult is the race-to-idle vs pace-to-finish study.
type RaceToIdleResult struct {
	// Rows holds one entry per module count, ascending.
	Rows []RaceToIdleRow
}

// RaceToIdleStudy pits racing (run at the curve maximum, deep-idle the
// slack until the pace deadline) against pacing (run at the curve
// minimum) for every workload at 1–32 GPMs. The deadline is the paced
// runtime; the racer is charged DeepIdleFraction of the design's
// constant power over the slack it buys. As module count grows, the
// idle bill of a racing multi-module machine grows with (amortized)
// per-GPM constant power — the multi-GPM twist on the classic result.
func (h *Harness) RaceToIdleStudy() (RaceToIdleResult, error) {
	var res RaceToIdleResult
	curve := dvfs.K40Curve()
	steps := append([]int{1}, GPMSteps...)

	var pts []runner.Point
	cfgFor := func(n int, p dvfs.OperatingPoint) sim.Config {
		return dvfs.Apply(sim.MultiGPM(n, sim.BW2x), p)
	}
	for _, n := range steps {
		for _, p := range []dvfs.OperatingPoint{curve.Min(), curve.Max()} {
			for _, app := range h.apps {
				pts = append(pts, runner.Point{App: app, Scale: h.params.Scale, Config: cfgFor(n, p)})
			}
		}
	}
	if _, err := h.engine.Run(h.ctx, pts); err != nil {
		return res, err
	}

	for _, n := range steps {
		idle := dvfs.DeepIdleFraction * h.Model(sim.MultiGPM(n, sim.BW2x)).ConstantPowerTotal(n)
		gov := dvfs.RaceToIdle{IdleWatts: idle}
		row := RaceToIdleRow{GPMs: n, IdleWatts: idle}
		var savings []float64
		for _, app := range h.apps {
			d, err := gov.Decide(curve, h.evaluator(app, func(p dvfs.OperatingPoint) sim.Config {
				return cfgFor(n, p)
			}))
			if err != nil {
				return res, err
			}
			pace, race := d.Candidates[0], d.Candidates[1]
			slack := pace.Seconds - race.Seconds
			if slack < 0 {
				slack = 0
			}
			raceTotal := race.Energy + idle*slack
			if d.Point == race.Point {
				row.RaceWins++
				savings = append(savings, (pace.Energy-raceTotal)/pace.Energy*100)
			} else {
				row.PaceWins++
				savings = append(savings, (raceTotal-pace.Energy)/raceTotal*100)
			}
		}
		var sum float64
		for _, s := range savings {
			sum += s
		}
		if len(savings) > 0 {
			row.AvgSavingPct = sum / float64(len(savings))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the race-to-idle study.
func (r RaceToIdleResult) Table() *Table {
	t := &Table{
		Title: "Race-to-idle vs pace-to-finish at 1-32 GPMs (2x-BW ring, on-package)",
		Note: fmt.Sprintf("deadline = runtime at the curve minimum; racer charged %.0f%% of the design's "+
			"constant power while deep-idling the slack", dvfs.DeepIdleFraction*100),
		Header: []string{"GPMs", "idle W", "race wins", "pace wins", "avg saving"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%d", row.GPMs),
			fmt.Sprintf("%.1f", row.IdleWatts),
			fmt.Sprintf("%d", row.RaceWins),
			fmt.Sprintf("%d", row.PaceWins),
			fmt.Sprintf("%.1f%%", row.AvgSavingPct),
		)
	}
	return t
}

// RooflineRow is one (workload, design) point of the energy roofline.
type RooflineRow struct {
	// Workload is the application name.
	Workload string
	// GPMs is the module count; Topology the fabric ("ring"/"switch",
	// "-" for the fabric-less 1-GPM design).
	GPMs     int
	Topology string
	// FreqMHz is the operating-point clock the design ran at.
	FreqMHz float64
	// AI is the arithmetic intensity: thread-level compute instructions
	// per DRAM byte moved (math.Inf(1) for kernels that never touch
	// DRAM).
	AI float64
	// OpsPerJoule is the energy efficiency: compute instructions per
	// joule of total attributed energy.
	OpsPerJoule float64
	// TotalJ is the attributed total energy; ConstSharePct the constant
	// term's share of it in percent.
	TotalJ        float64
	ConstSharePct float64
}

// RooflineResult is the energy-roofline report: ops/J vs arithmetic
// intensity per GPM count and topology.
type RooflineResult struct {
	// FreqMHz is the operating-point clock of the study.
	FreqMHz float64
	// Rows holds workload-major rows (all designs of one workload
	// together), designs ascending in GPM count, ring before switch.
	Rows []RooflineRow
}

// defaultRooflineSteps are the module counts of the roofline report.
var defaultRooflineSteps = []int{1, 4, 16, 32}

// EnergyRooflineStudy builds the energy-roofline report: for every
// workload and every (GPM count, topology) design, the arithmetic
// intensity (compute instructions per DRAM byte) against achieved
// energy efficiency (ops/J). Energy is the bit-exact per-term
// attribution of obs.AttributeEnergy, so the report's totals reconcile
// with the Eq. 4 aggregate by construction. gpmCounts nil selects
// 1/4/16/32; switch designs cover the counts above 1.
//
// The study needs per-GPM/per-link counters, so it runs its grid
// through a dedicated counters-enabled engine (the harness's shared
// engine keeps its construction-time options).
func (h *Harness) EnergyRooflineStudy(gpmCounts []int) (RooflineResult, error) {
	if len(gpmCounts) == 0 {
		gpmCounts = defaultRooflineSteps
	}
	res := RooflineResult{FreqMHz: dvfs.PointOf(h.cfgAt(baselineCfg())).MHz()}

	var cfgs []sim.Config
	for _, n := range gpmCounts {
		cfgs = append(cfgs, h.cfgAt(sim.MultiGPM(n, sim.BW2x)))
		if n > 1 {
			cfgs = append(cfgs, h.cfgAt(switchedCfg(n, sim.BW2x)))
		}
	}

	eng := runner.New(runner.Options{
		Workers:     h.engine.Workers(),
		Counters:    true,
		GPMParallel: h.engine.GPMParallel(),
	})
	var pts []runner.Point
	for _, app := range h.apps {
		for _, cfg := range cfgs {
			pts = append(pts, runner.Point{App: app, Scale: h.params.Scale, Config: cfg})
		}
	}
	results, err := eng.Run(h.ctx, pts)
	if err != nil {
		return res, err
	}

	for i, pt := range pts {
		r := results[i]
		a, err := obs.AttributeEnergy(h.Model(pt.Config), &r.Counts, r.Counters)
		if err != nil {
			return res, err
		}
		ops := float64(r.Counts.TotalInstructions())
		dramBytes := float64(r.Counts.TotalTransactionBytes(isa.TxnDRAMToL2))
		ai := math.Inf(1)
		if dramBytes > 0 {
			ai = ops / dramBytes
		}
		topo := "-"
		if pt.Config.GPMs > 1 {
			topo = pt.Config.Topology.String()
		}
		row := RooflineRow{
			Workload:    pt.App.Name,
			GPMs:        pt.Config.GPMs,
			Topology:    topo,
			FreqMHz:     dvfs.PointOf(pt.Config).MHz(),
			AI:          ai,
			OpsPerJoule: ops / a.TotalJ,
			TotalJ:      a.TotalJ,
		}
		if a.TotalJ > 0 {
			row.ConstSharePct = a.Terms.ConstantJ / a.TotalJ * 100
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the energy roofline.
func (r RooflineResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Energy roofline: ops/J vs arithmetic intensity per GPM count and topology (%g MHz)", r.FreqMHz),
		Note: "AI = thread compute instructions per DRAM byte; energy is the bit-exact obs.AttributeEnergy " +
			"decomposition of the Eq. 4 model (const share shown)",
		Header: []string{"workload", "GPMs", "topology", "MHz", "AI ops/B", "Mops/J", "total J", "const"},
	}
	for _, row := range r.Rows {
		ai := "inf"
		if !math.IsInf(row.AI, 1) {
			ai = fmt.Sprintf("%.3f", row.AI)
		}
		t.AddRow(
			row.Workload,
			fmt.Sprintf("%d", row.GPMs),
			row.Topology,
			fmt.Sprintf("%g", row.FreqMHz),
			ai,
			fmt.Sprintf("%.2f", row.OpsPerJoule/1e6),
			fmt.Sprintf("%.4g", row.TotalJ),
			fmt.Sprintf("%.1f%%", row.ConstSharePct),
		)
	}
	return t
}
