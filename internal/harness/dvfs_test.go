package harness

import (
	"math"
	"testing"

	"gpujoule/internal/dvfs"
	"gpujoule/internal/obs"
	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
)

// TestNominalOperatingPointIsIdentity pins the byte-identity contract
// without running a single simulation: at the nominal point (and for a
// harness constructed the pre-DVFS way) config stamping and model
// selection are the exact identity — same values, same pointers.
func TestNominalOperatingPointIsIdentity(t *testing.T) {
	h := New(shapeScale)
	cfg := sim.MultiGPM(8, sim.BW2x)
	if got := h.cfgAt(cfg); got != cfg {
		t.Errorf("cfgAt at nominal changed the config: %+v", got)
	}
	if h.Model(cfg) != h.onPackage {
		t.Error("Model at nominal must return the shared on-package pointer")
	}
	brd := cfg
	brd.Domain = sim.DomainOnBoard
	if h.Model(brd) != h.onBoard {
		t.Error("Model at nominal must return the shared on-board pointer")
	}

	// An explicitly-nominal Options.OperatingPoint must behave the same.
	hn := NewWithOptions(Options{Scale: shapeScale, OperatingPoint: dvfs.Nominal()})
	if got := hn.cfgAt(cfg); got != cfg {
		t.Errorf("explicit nominal OperatingPoint changed the config: %+v", got)
	}
}

// TestHarnessOperatingPointStampsConfigs checks the non-nominal path: a
// harness-wide operating point stamps every config it builds, but never
// overrides a config that chose its own point.
func TestHarnessOperatingPointStampsConfigs(t *testing.T) {
	p, err := dvfs.K40Curve().AtMHz(800)
	if err != nil {
		t.Fatal(err)
	}
	h := NewWithOptions(Options{Scale: shapeScale, OperatingPoint: p})
	cfg := h.cfgAt(sim.MultiGPM(4, sim.BW2x))
	if cfg.ClockHz != 800e6 || cfg.VoltageV != 0.90 {
		t.Errorf("cfgAt did not stamp the harness point: clock=%g V=%g", cfg.ClockHz, cfg.VoltageV)
	}
	own := sim.MultiGPM(4, sim.BW2x)
	own.ClockHz = 1.2e9
	if got := h.cfgAt(own); got.ClockHz != 1.2e9 {
		t.Errorf("cfgAt overrode a config's own point: clock=%g", got.ClockHz)
	}
	if m := h.Model(cfg); m == h.onPackage || m == h.onBoard || m.ClockHz != 800e6 {
		t.Error("Model at 800 MHz must be a rescaled copy carrying the point's clock")
	}
}

// TestEvaluatorEnergyReconcilesWithModel checks the acceptance contract
// end to end at a non-nominal point: the governor evaluator's energy is
// exactly the rescaled model priced on the simulated counts, and the
// per-term attribution reconciles bit-exactly with that aggregate.
func TestEvaluatorEnergyReconcilesWithModel(t *testing.T) {
	skipIfShort(t)
	h := New(shapeScale)
	app := h.apps[0]
	p, err := dvfs.K40Curve().AtMHz(800)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dvfs.Apply(sim.MultiGPM(2, sim.BW2x), p)

	eng := runner.New(runner.Options{Counters: true})
	res, err := eng.One(h.ctx, runner.Point{App: app, Scale: h.params.Scale, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	m := h.Model(cfg)
	a, err := obs.AttributeEnergy(m, &res.Counts, res.Counters)
	if err != nil {
		t.Fatal(err)
	}
	if want := m.EstimateEnergy(&res.Counts); a.TotalJ != want {
		t.Errorf("attribution total %.17g != model aggregate %.17g (must be bit-exact)", a.TotalJ, want)
	}

	// The evaluator must price with the same model.
	got, err := h.evaluator(app, func(dvfs.OperatingPoint) sim.Config { return cfg })(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Energy != a.TotalJ {
		t.Errorf("evaluator energy %.17g != attributed total %.17g", got.Energy, a.TotalJ)
	}
	if got.Seconds != res.Seconds() {
		t.Errorf("evaluator seconds %g != result %g", got.Seconds, res.Seconds())
	}
}

func TestShapeSweetSpotStudy(t *testing.T) {
	skipIfShort(t)
	h := sharedHarness
	res, err := h.SweetSpotStudy(1, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != "EDP" {
		t.Errorf("nil objective must default to EDP, got %q", res.Objective)
	}
	if len(res.Rows) != len(h.apps) {
		t.Fatalf("rows = %d, want one per workload (%d)", len(res.Rows), len(h.apps))
	}
	curvePts := len(dvfs.K40Curve().Points())
	for _, row := range res.Rows {
		if len(row.Decision.Candidates) != curvePts {
			t.Errorf("%s: %d candidates, want the full curve (%d)", row.Workload, len(row.Decision.Candidates), curvePts)
		}
		// The chosen point must actually minimize EDP over the candidates.
		for _, c := range row.Decision.Candidates {
			if c.EDP() < row.Decision.Chosen.EDP() {
				t.Errorf("%s: candidate %s EDP %.4g beats chosen %s EDP %.4g",
					row.Workload, c.Point, c.EDP(), row.Decision.Point, row.Decision.Chosen.EDP())
			}
		}
		// Nominal is on the curve, so the sweet spot can only improve.
		if row.GainPct < 0 {
			t.Errorf("%s: negative gain %.2f%% over nominal", row.Workload, row.GainPct)
		}
	}
	if res.Table() == nil || len(res.Table().Rows) != len(res.Rows) {
		t.Error("Table must render one row per workload")
	}
}

func TestShapeRaceToIdleStudy(t *testing.T) {
	skipIfShort(t)
	h := sharedHarness
	res, err := h.RaceToIdleStudy()
	if err != nil {
		t.Fatal(err)
	}
	wantSteps := 1 + len(GPMSteps)
	if len(res.Rows) != wantSteps {
		t.Fatalf("rows = %d, want %d (1 GPM + Table III steps)", len(res.Rows), wantSteps)
	}
	for i, row := range res.Rows {
		if row.RaceWins+row.PaceWins != len(h.apps) {
			t.Errorf("%d-GPM: %d+%d verdicts, want %d workloads", row.GPMs, row.RaceWins, row.PaceWins, len(h.apps))
		}
		if row.IdleWatts <= 0 {
			t.Errorf("%d-GPM: non-positive idle power %.2f W", row.GPMs, row.IdleWatts)
		}
		if i > 0 && row.IdleWatts <= res.Rows[i-1].IdleWatts {
			t.Errorf("idle power must grow with module count: %d-GPM %.1f W <= %d-GPM %.1f W",
				row.GPMs, row.IdleWatts, res.Rows[i-1].GPMs, res.Rows[i-1].IdleWatts)
		}
	}
}

func TestShapeEnergyRooflineStudy(t *testing.T) {
	skipIfShort(t)
	h := sharedHarness
	res, err := h.EnergyRooflineStudy([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	// 1-GPM ring + 4-GPM ring + 4-GPM switch per workload.
	if want := 3 * len(h.apps); len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	if res.FreqMHz != 1000 {
		t.Errorf("nominal study must report 1000 MHz, got %g", res.FreqMHz)
	}
	byCat := map[trace.Category][]float64{}
	cat := map[string]trace.Category{}
	for _, app := range h.apps {
		cat[app.Name] = app.Category
	}
	for _, row := range res.Rows {
		if row.OpsPerJoule <= 0 || row.TotalJ <= 0 {
			t.Errorf("%s %d-GPM %s: non-positive efficiency (%.3g ops/J, %.3g J)",
				row.Workload, row.GPMs, row.Topology, row.OpsPerJoule, row.TotalJ)
		}
		if row.ConstSharePct <= 0 || row.ConstSharePct >= 100 {
			t.Errorf("%s %d-GPM: constant share %.1f%% out of range", row.Workload, row.GPMs, row.ConstSharePct)
		}
		if row.GPMs == 1 && !math.IsInf(row.AI, 1) {
			byCat[cat[row.Workload]] = append(byCat[cat[row.Workload]], row.AI)
		}
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	// The roofline's x-axis must separate the Table II classes: the
	// compute-intensive apps sit at higher arithmetic intensity.
	if c, m := byCat[trace.CategoryCompute], byCat[trace.CategoryMemory]; len(c) > 0 && len(m) > 0 {
		if mean(c) <= mean(m) {
			t.Errorf("mean AI: compute %.3f <= memory %.3f", mean(c), mean(m))
		}
	}
}
