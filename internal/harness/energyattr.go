package harness

import (
	"fmt"

	"gpujoule/internal/obs"
	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
	"gpujoule/internal/workloads"
)

// energyAttrSteps are the module counts of the attribution walkthrough.
var energyAttrSteps = []int{4, 16, 32}

// EnergyAttributionStudy reproduces the paper's headline attribution
// argument (§V-B/§VI) from the exact per-term energy decomposition: as
// the module count grows, the inter-GPM share of total energy stays
// small even on the on-board 1x-bandwidth design where link energy/bit
// is at its worst — the links hurt through the *stall* term (exposed
// remote latency), not through their own energy. The final column
// quantifies the "energy/bit doesn't matter" half directly: quadrupling
// the per-bit link energy moves total energy by well under the stall
// term's share.
//
// The study needs per-GPM/per-link counters, so it runs its points
// through a dedicated counters-enabled engine rather than the harness's
// shared one (whose options are fixed at construction).
func (h *Harness) EnergyAttributionStudy() (*Table, error) {
	app, err := workloads.ByName("MiniAMR", h.params)
	if err != nil {
		return nil, err
	}
	eng := runner.New(runner.Options{
		Workers:     h.engine.Workers(),
		Counters:    true,
		GPMParallel: h.engine.GPMParallel(),
	})

	var points []runner.Point
	for _, n := range energyAttrSteps {
		points = append(points, runner.Point{App: app, Scale: h.params.Scale, Config: h.cfgAt(sim.MultiGPM(n, sim.BW1x))})
	}
	results, err := eng.Run(h.ctx, points)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Energy attribution: per-term shares on the on-board 1x-BW ring (MiniAMR)",
		Note: "exact decomposition (obs.AttributeEnergy reconciles bit-exactly with the aggregate); " +
			"Δtotal@4x-link reprices the same counts with 4x link energy/bit (§V-C)",
		Header: []string{"GPMs", "Total J", "compute", "stall", "const",
			"shm->RF", "L1->RF", "L2->L1", "DRAM->L2", "inter-GPM", "Δtotal@4x-link"},
	}
	pct := func(part, total float64) string {
		if total == 0 {
			return "0.0%"
		}
		return fmt.Sprintf("%.1f%%", part/total*100)
	}
	for i, pt := range points {
		res := results[i]
		model := h.Model(pt.Config)
		a, err := obs.AttributeEnergy(model, &res.Counts, res.Counters)
		if err != nil {
			return nil, err
		}
		scaled := model.WithLinkEnergy(4).EstimateEnergy(&res.Counts)
		t.AddRow(
			fmt.Sprintf("%d", pt.Config.GPMs),
			fmt.Sprintf("%.3f", a.TotalJ),
			pct(a.Terms.ComputeJ, a.TotalJ),
			pct(a.Terms.StallJ, a.TotalJ),
			pct(a.Terms.ConstantJ, a.TotalJ),
			pct(a.Terms.ShmToRFJ, a.TotalJ),
			pct(a.Terms.L1ToRFJ, a.TotalJ),
			pct(a.Terms.L2ToL1J, a.TotalJ),
			pct(a.Terms.DRAMToL2J, a.TotalJ),
			pct(a.Terms.InterGPMJ, a.TotalJ),
			fmt.Sprintf("%+.2f%%", (scaled-a.TotalJ)/a.TotalJ*100),
		)
	}
	return t, nil
}
