package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gpujoule/internal/stats"
)

// Comparison is one paper-vs-measured data point of the reproduction
// record.
type Comparison struct {
	// Metric names the quantity.
	Metric string
	// Paper is the published value or claim.
	Paper string
	// Measured is this run's value.
	Measured string
	// Holds reports whether the qualitative claim (direction, rough
	// factor, crossover) reproduces.
	Holds bool
}

// ExperimentRecord is one experiment's reproduction record.
type ExperimentRecord struct {
	// ID is the table/figure identifier.
	ID string
	// Table is the regenerated data.
	Table *Table
	// Comparisons are the headline paper-vs-measured points.
	Comparisons []Comparison
}

// Report is the full reproduction record: every experiment with its
// regenerated data and paper-vs-measured comparisons.
type Report struct {
	Scale   float64
	Records []ExperimentRecord
}

// Holds reports whether every qualitative claim reproduced.
func (r *Report) Holds() bool {
	for _, rec := range r.Records {
		for _, c := range rec.Comparisons {
			if !c.Holds {
				return false
			}
		}
	}
	return true
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

// BuildReport runs every experiment and assembles the reproduction
// record. It is the programmatic source of EXPERIMENTS.md.
func (h *Harness) BuildReport() (*Report, error) {
	rep := &Report{Scale: h.params.Scale}
	if rep.Scale == 0 {
		rep.Scale = 1
	}

	// §IV: calibration and validation.
	v, err := h.Validate()
	if err != nil {
		return nil, err
	}
	vt := ValidationTables(v)

	var maxIbErr float64
	for _, row := range v.TableIb {
		if e := row.ErrPct(); e > maxIbErr || -e > maxIbErr {
			if e < 0 {
				e = -e
			}
			maxIbErr = e
		}
	}
	rep.Records = append(rep.Records, ExperimentRecord{
		ID: "Table Ib", Table: vt[0],
		Comparisons: []Comparison{
			{"EPI/EPT recovery", "published K40 values",
				fmt.Sprintf("max deviation %.1f%%", maxIbErr), maxIbErr <= 20},
		},
	})

	var fig4aErrs []float64
	for _, e := range v.Fig4a {
		fig4aErrs = append(fig4aErrs, e.ErrPct())
	}
	lo, hi := stats.Min(fig4aErrs), stats.Max(fig4aErrs)
	rep.Records = append(rep.Records, ExperimentRecord{
		ID: "Figure 4a", Table: vt[1],
		Comparisons: []Comparison{
			{"mixed-µbench error band", "within +2.5% / -6%",
				fmt.Sprintf("within %+.1f%% / %+.1f%%", hi, lo), hi <= 5 && lo >= -12},
		},
	})

	outliers := v.Fig4bOutliers(25)
	rep.Records = append(rep.Records, ExperimentRecord{
		ID: "Figure 4b", Table: vt[2],
		Comparisons: []Comparison{
			{"application MAE", "9.4%",
				fmt.Sprintf("%.1f%%", v.Fig4bMAEPct()), v.Fig4bMAEPct() <= 15},
			{"outliers (|err|>25%)", "RSBench, CoMD, BFS, MiniAMR",
				fmt.Sprintf("%v", outliers), len(outliers) >= 3 && len(outliers) <= 5},
		},
	})

	// §II motivation: Figure 2.
	fig2, err := h.Figure2()
	if err != nil {
		return nil, err
	}
	last2 := fig2[len(fig2)-1]
	rep.Records = append(rep.Records, ExperimentRecord{
		ID: "Figure 2", Table: Fig2Table(fig2),
		Comparisons: []Comparison{
			{"32x on-board energy vs 1-GPM", "~2x",
				fmt.Sprintf("%.2fx", last2.EnergyRatio), last2.EnergyRatio >= 1.5},
			{"energy grows monotonically", "yes",
				yes(monotoneUp(fig2)), monotoneUp(fig2)},
		},
	})

	// §V-B: Figures 6 and 7.
	fig6, err := h.Figure6()
	if err != nil {
		return nil, err
	}
	first6, last6 := fig6[0], fig6[len(fig6)-1]
	rep.Records = append(rep.Records, ExperimentRecord{
		ID: "Figure 6", Table: Fig6Table(fig6),
		Comparisons: []Comparison{
			{"EDPSE at 2 GPMs", "94%", fmt.Sprintf("%.1f%%", first6.All),
				first6.All >= 80},
			{"EDPSE at 32 GPMs", "36%", fmt.Sprintf("%.1f%%", last6.All),
				last6.All <= 60},
			{"compute-intensive >100% at small counts", "yes",
				fmt.Sprintf("%.1f%% at 2 GPMs", first6.Compute), first6.Compute >= 95},
			{"memory-intensive trails compute", "yes",
				yes(last6.Memory < last6.Compute), last6.Memory < last6.Compute},
		},
	})

	fig7, err := h.Figure7()
	if err != nil {
		return nil, err
	}
	first7, last7 := fig7[0], fig7[len(fig7)-1]
	rep.Records = append(rep.Records, ExperimentRecord{
		ID: "Figure 7", Table: Fig7Table(fig7),
		Comparisons: []Comparison{
			{"1->2 GPM incremental speedup", "1.87x",
				fmt.Sprintf("%.2fx", first7.Speedup), first7.Speedup >= 1.6},
			{"16->32 GPM incremental speedup", "1.47x",
				fmt.Sprintf("%.2fx", last7.Speedup), last7.Speedup >= 1.1 && last7.Speedup <= 1.7},
			{"monolithic 16->32 speedup", "1.81x",
				fmt.Sprintf("%.2fx", last7.MonolithicSpeedup),
				last7.MonolithicSpeedup > last7.Speedup},
			{"16->32 energy increase", "+15.7%",
				fmt.Sprintf("%+.1f%%", last7.EnergyIncreasePct), last7.EnergyIncreasePct > 5},
			{"idle+constant dominate the growth", "yes",
				fmt.Sprintf("%.1f%% of %.1f%%", last7.SMIdlePct+last7.ConstantPct, last7.EnergyIncreasePct),
				last7.SMIdlePct+last7.ConstantPct > last7.InterModulePct*3},
		},
	})

	// §V-C: Figures 8 and 9 plus the point studies.
	fig8, err := h.Figure8()
	if err != nil {
		return nil, err
	}
	var bw1, bw4 float64
	for _, r := range fig8 {
		switch r.BW.String() {
		case "1x-BW":
			bw1 = r.ByGPM[32]
		case "4x-BW":
			bw4 = r.ByGPM[32]
		}
	}
	rep.Records = append(rep.Records, ExperimentRecord{
		ID: "Figure 8", Table: Fig8Table(fig8),
		Comparisons: []Comparison{
			{"32-GPM EDPSE gain, 1x->4x BW", "~3x",
				fmt.Sprintf("%.2fx (%.1f%% -> %.1f%%)", bw4/bw1, bw1, bw4), bw4/bw1 >= 1.5},
		},
	})

	fig9, err := h.Figure9()
	if err != nil {
		return nil, err
	}
	last9 := fig9[len(fig9)-1]
	rep.Records = append(rep.Records, ExperimentRecord{
		ID: "Figure 9", Table: Fig9Table(fig9),
		Comparisons: []Comparison{
			{"32-GPM switch vs ring EDPSE", "~2x",
				fmt.Sprintf("%.2fx (%.1f%% vs %.1f%%)",
					last9.Switch1x/last9.Ring1x, last9.Switch1x, last9.Ring1x),
				last9.Switch1x/last9.Ring1x >= 1.4},
		},
	})

	link, err := h.LinkEnergyStudy()
	if err != nil {
		return nil, err
	}
	rep.Records = append(rep.Records, ExperimentRecord{
		ID: "Link-energy study (§V-C)", Table: LinkEnergyTable(link),
		Comparisons: []Comparison{
			{"EDPSE change at 4x link energy", "<1%",
				fmt.Sprintf("%.2f%%", link.MaxEDPSEChangePct()), link.MaxEDPSEChangePct() <= 6},
			{"4x energy for 2x bandwidth", "+8.8% EDPSE",
				fmt.Sprintf("%+.2f%%", link.DoubledBWGainPct()), link.DoubledBWGainPct() > 0},
		},
	})

	amort, err := h.AmortizationStudy()
	if err != nil {
		return nil, err
	}
	var a25, a50 AmortizationRow
	for _, r := range amort.Rows {
		if r.Rate == 0.25 {
			a25 = r
		}
		if r.Rate == 0.5 {
			a50 = r
		}
	}
	rep.Records = append(rep.Records, ExperimentRecord{
		ID: "Amortization study (§V-C)", Table: AmortizationTable(amort),
		Comparisons: []Comparison{
			{"energy saving at 50% rate", "22.3%",
				fmt.Sprintf("%.1f%%", a50.EnergySavingPct),
				a50.EnergySavingPct >= 10 && a50.EnergySavingPct <= 35},
			{"EDPSE gain at 50% rate", "+8.1 pts",
				fmt.Sprintf("%+.1f pts", a50.EDPSEGainPts), a50.EDPSEGainPts > 0},
			{"energy saving at 25% rate", "10.4%",
				fmt.Sprintf("%.1f%%", a25.EnergySavingPct),
				a25.EnergySavingPct > 0 && a25.EnergySavingPct < a50.EnergySavingPct},
		},
	})

	// §V-D: Figure 10 and the concluding trade.
	fig10, err := h.Figure10()
	if err != nil {
		return nil, err
	}
	var e32x1, e16x2, s16x2, s32x1 float64
	for _, r := range fig10 {
		if r.N == 32 && r.BW.String() == "1x-BW" {
			e32x1, s32x1 = r.EnergyRatio, r.Speedup
		}
		if r.N == 16 && r.BW.String() == "2x-BW" {
			e16x2, s16x2 = r.EnergyRatio, r.Speedup
		}
	}
	rep.Records = append(rep.Records, ExperimentRecord{
		ID: "Figure 10", Table: Fig10Table(fig10),
		Comparisons: []Comparison{
			{"16-GPM/2x-BW energy vs 32-GPM/1x-BW", "about half",
				fmt.Sprintf("%.2fx vs %.2fx", e16x2, e32x1), e16x2 < 0.75*e32x1},
			{"16-GPM/2x-BW performance vs 32-GPM/1x-BW", "outperforms",
				fmt.Sprintf("%.2fx vs %.2fx speedup", s16x2, s32x1), s16x2 >= 0.75*s32x1},
		},
	})

	head, err := h.HeadlineStudy()
	if err != nil {
		return nil, err
	}
	rep.Records = append(rep.Records, ExperimentRecord{
		ID: "Concluding trade (§V-D, §VII)", Table: HeadlineTable(head),
		Comparisons: []Comparison{
			{"energy saving from 4x bandwidth", "27.4%",
				fmt.Sprintf("%.1f%%", head.EnergySavingBW4xPct), head.EnergySavingBW4xPct >= 15},
			{"with on-package amortization", "45%",
				fmt.Sprintf("%.1f%%", head.EnergySavingOnPackagePct),
				head.EnergySavingOnPackagePct > head.EnergySavingBW4xPct},
			{"best-design strong-scaling speedup", "~18x",
				fmt.Sprintf("%.2fx", head.BestSpeedup), head.BestSpeedup >= 10},
		},
	})

	// §II model-fidelity motivation.
	fid, err := h.FidelityStudy()
	if err != nil {
		return nil, err
	}
	rep.Records = append(rep.Records, ExperimentRecord{
		ID: "Model fidelity (§II)", Table: FidelityTable(fid),
		Comparisons: []Comparison{
			{"stale bottom-up model (Fermi-tuned on Kepler)", ">100% average error",
				fmt.Sprintf("%+.0f%% mean (%.0f%% MAE)", fid.FermiMeanErr, fid.FermiMAE),
				fid.FermiMeanErr >= 60},
			{"top-down beats same-generation bottom-up", "motivates GPUJoule",
				fmt.Sprintf("%.1f%% vs %.1f%% MAE", fid.TopDownMAE, fid.KeplerMAE),
				fid.TopDownMAE < fid.KeplerMAE},
		},
	})

	// Repo-specific ablation of the adopted design choices.
	abl, err := h.AblationStudy()
	if err != nil {
		return nil, err
	}
	base, _ := abl.Row(AblationBaseline)
	rr, _ := abl.Row(AblationRoundRobin)
	striped, _ := abl.Row(AblationStripedPages)
	rep.Records = append(rep.Records, ExperimentRecord{
		ID: "Design-choice ablation (§V-A1, §V-E)", Table: AblationTable(abl),
		Comparisons: []Comparison{
			{"locality mechanisms matter", "adopted from prior work",
				fmt.Sprintf("EDPSE %.1f%% vs %.1f%% (rr-CTA) / %.1f%% (striped)",
					base.EDPSE, rr.EDPSE, striped.EDPSE),
				base.EDPSE > rr.EDPSE && base.EDPSE > striped.EDPSE},
		},
	})

	return rep, nil
}

func monotoneUp(rows []Fig2Row) bool {
	for i := 1; i < len(rows); i++ {
		if rows[i].EnergyRatio < rows[i-1].EnergyRatio {
			return false
		}
	}
	return true
}

// WriteMarkdown renders the reproduction record as the EXPERIMENTS.md
// document.
func (rep *Report) WriteMarkdown(w io.Writer) error {
	fmt.Fprintf(w, "# EXPERIMENTS — paper vs. measured\n\n")
	fmt.Fprintf(w, "Generated by `go run ./cmd/paper -markdown -scale %g` on %s.\n\n",
		rep.Scale, time.Now().UTC().Format("2006-01-02"))
	fmt.Fprintf(w, "Absolute magnitudes come from the synthetic substrate documented in\n")
	fmt.Fprintf(w, "DESIGN.md; the comparisons below record whether each of the paper's\n")
	fmt.Fprintf(w, "qualitative findings (directions, rough factors, crossovers)\n")
	fmt.Fprintf(w, "reproduces. Overall: **%d/%d claims hold**.\n\n", rep.holdCount(), rep.totalCount())

	for _, rec := range rep.Records {
		fmt.Fprintf(w, "## %s\n\n", rec.ID)
		fmt.Fprintf(w, "| Metric | Paper | This reproduction | Holds |\n")
		fmt.Fprintf(w, "|---|---|---|---|\n")
		for _, c := range rec.Comparisons {
			fmt.Fprintf(w, "| %s | %s | %s | %s |\n", c.Metric, c.Paper, c.Measured, yes(c.Holds))
		}
		fmt.Fprintf(w, "\n```\n")
		if err := rec.Table.Fprint(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "```\n\n")
	}
	return nil
}

// WriteTables renders the reproduction record as plain aligned-text
// tables (the cmd/paper default format), reusing the same experiment
// results as the markdown record.
func (rep *Report) WriteTables(w io.Writer) error {
	if err := TableIII().Fprint(w); err != nil {
		return err
	}
	if err := TableIV().Fprint(w); err != nil {
		return err
	}
	for _, rec := range rep.Records {
		if err := rec.Table.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVDir writes each experiment's table as a CSV file under dir
// (created if needed), named after the experiment id.
func (rep *Report) WriteCSVDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("harness: creating %s: %w", dir, err)
	}
	for _, rec := range rep.Records {
		name := strings.ToLower(rec.ID)
		name = strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
				return r
			default:
				return '_'
			}
		}, name)
		name = strings.Trim(strings.ReplaceAll(name, "__", "_"), "_")
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return fmt.Errorf("harness: creating CSV for %s: %w", rec.ID, err)
		}
		if err := rec.Table.FprintCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func (rep *Report) holdCount() int {
	n := 0
	for _, rec := range rep.Records {
		for _, c := range rec.Comparisons {
			if c.Holds {
				n++
			}
		}
	}
	return n
}

func (rep *Report) totalCount() int {
	n := 0
	for _, rec := range rep.Records {
		n += len(rec.Comparisons)
	}
	return n
}
