package harness

import (
	"strings"
	"testing"

	"gpujoule/internal/sim"
)

func TestShapeMetricsStudy(t *testing.T) {
	skipIfShort(t)
	rows, err := sharedHarness.MetricsStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("metrics study covers 5 module counts, got %d", len(rows))
	}
	// §V-D: the diminishing trend shows up under every weighting.
	for i := 1; i < len(rows); i++ {
		if rows[i].EDPSE > rows[i-1].EDPSE+2 {
			t.Errorf("EDPSE must decline: %d-GPM %.1f > %d-GPM %.1f",
				rows[i].N, rows[i].EDPSE, rows[i-1].N, rows[i-1].EDPSE)
		}
		if rows[i].ED2PSE > rows[i-1].ED2PSE+2 {
			t.Errorf("ED2PSE must decline: %d-GPM %.1f > %d-GPM %.1f",
				rows[i].N, rows[i].ED2PSE, rows[i-1].N, rows[i-1].ED2PSE)
		}
	}
	// Higher delay weighting punishes sub-linear scaling harder.
	last := rows[len(rows)-1]
	if !(last.ED2PSE <= last.EDPSE && last.EDPSE <= last.EnergySE) {
		t.Errorf("weighting order violated at 32 GPMs: i=0 %.1f, i=1 %.1f, i=2 %.1f",
			last.EnergySE, last.EDPSE, last.ED2PSE)
	}
}

func TestPerWorkloadTables(t *testing.T) {
	skipIfShort(t)
	tb, err := sharedHarness.PerWorkloadEDPSE()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 14 {
		t.Fatalf("per-workload table covers 14 workloads, got %d", len(tb.Rows))
	}
	names := make(map[string]bool)
	for _, row := range tb.Rows {
		names[row[0]] = true
		if row[1] != "C" && row[1] != "M" {
			t.Errorf("%s category cell %q", row[0], row[1])
		}
	}
	if !names["Stream"] || !names["Lulesh-150"] {
		t.Error("expected workloads missing")
	}

	sc, err := sharedHarness.PerWorkloadScaling(8, sim.BW2x)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Rows) != 14 || len(sc.Header) != 7 {
		t.Errorf("scaling table shape %dx%d", len(sc.Rows), len(sc.Header))
	}
}

func TestBuildReportAndMarkdown(t *testing.T) {
	skipIfShort(t)
	rep, err := sharedHarness.BuildReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) < 12 {
		t.Fatalf("report covers every experiment, got %d records", len(rep.Records))
	}
	ids := make(map[string]bool)
	for _, rec := range rep.Records {
		ids[rec.ID] = true
		if rec.Table == nil {
			t.Errorf("%s: missing table", rec.ID)
		}
		if len(rec.Comparisons) == 0 {
			t.Errorf("%s: no comparisons", rec.ID)
		}
	}
	for _, want := range []string{"Table Ib", "Figure 2", "Figure 4a", "Figure 4b",
		"Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10"} {
		if !ids[want] {
			t.Errorf("report missing %s", want)
		}
	}

	var sb strings.Builder
	if err := rep.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	md := sb.String()
	for _, want := range []string{"# EXPERIMENTS", "| Metric | Paper |", "## Figure 6", "claims hold"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	// At reduced scale most—though not necessarily all—claims hold.
	if rep.holdCount() < rep.totalCount()*2/3 {
		t.Errorf("only %d/%d claims hold at reduced scale", rep.holdCount(), rep.totalCount())
	}
}

func TestShapeFidelityStudy(t *testing.T) {
	skipIfShort(t)
	res, err := sharedHarness.FidelityStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 18 {
		t.Fatalf("fidelity study covers all 18 applications, got %d", len(res.Rows))
	}
	// §II: the stale bottom-up tuning overshoots massively on average...
	if res.FermiMeanErr < 50 {
		t.Errorf("Fermi-tuned mean error %+.0f%%, paper reports >100%%", res.FermiMeanErr)
	}
	// ...while the calibrated top-down model stays far more accurate
	// than either bottom-up instance.
	if res.TopDownMAE >= res.KeplerMAE {
		t.Errorf("top-down MAE %.1f%% should beat same-generation bottom-up %.1f%%",
			res.TopDownMAE, res.KeplerMAE)
	}
	if res.KeplerMAE >= res.FermiMAE {
		t.Errorf("same-generation bottom-up (%.1f%%) must beat the stale tuning (%.1f%%)",
			res.KeplerMAE, res.FermiMAE)
	}
}
