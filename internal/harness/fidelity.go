package harness

import (
	"fmt"

	"gpujoule/internal/bottomup"
	"gpujoule/internal/calib"
	"gpujoule/internal/silicon"
	"gpujoule/internal/stats"
	"gpujoule/internal/workloads"
)

// FidelityRow is one application's estimation error under each model.
type FidelityRow struct {
	App string
	// TopDownPct is the calibrated GPUJoule error (Fig. 4b).
	TopDownPct float64
	// KeplerTunedPct is the bottom-up model tuned for the silicon's own
	// generation.
	KeplerTunedPct float64
	// FermiTunedPct is the bottom-up model tuned for the previous
	// generation and applied without retuning (§II).
	FermiTunedPct float64
}

// FidelityResult is the §II model-fidelity comparison.
type FidelityResult struct {
	Rows []FidelityRow
	// MAE per model, percent.
	TopDownMAE, KeplerMAE, FermiMAE float64
	// FermiMeanErr is the signed mean error of the stale tuning (the
	// paper reports an average error of over 100%).
	FermiMeanErr float64
}

// FidelityStudy reproduces the §II motivation: calibrate GPUJoule
// top-down against the reference silicon, then compare its
// application-level accuracy with a bottom-up model tuned for the same
// generation and with one tuned for the previous generation applied
// without retuning.
func (h *Harness) FidelityStudy() (FidelityResult, error) {
	var res FidelityResult

	dev := silicon.NewK40()
	cal, err := calib.Calibrate(dev, calib.Options{})
	if err != nil {
		return res, err
	}
	kepler := bottomup.TunedKepler()
	fermi := bottomup.TunedFermi()

	var td, kp, fm, fmSigned []float64
	for _, app := range workloads.All(h.params) {
		m, err := dev.Run(app)
		if err != nil {
			return res, err
		}
		c := &m.Result.Counts
		row := FidelityRow{
			App:            app.Name,
			TopDownPct:     stats.RelErrPct(cal.Model.EstimateEnergy(c), m.SensorJoules),
			KeplerTunedPct: stats.RelErrPct(kepler.Estimate(c), m.SensorJoules),
			FermiTunedPct:  stats.RelErrPct(fermi.Estimate(c), m.SensorJoules),
		}
		res.Rows = append(res.Rows, row)
		td = append(td, row.TopDownPct)
		kp = append(kp, row.KeplerTunedPct)
		fm = append(fm, row.FermiTunedPct)
		fmSigned = append(fmSigned, row.FermiTunedPct)
	}
	res.TopDownMAE = stats.MeanAbs(td)
	res.KeplerMAE = stats.MeanAbs(kp)
	res.FermiMAE = stats.MeanAbs(fm)
	res.FermiMeanErr = stats.Mean(fmSigned)
	return res, nil
}

// FidelityTable renders the model-fidelity comparison.
func FidelityTable(r FidelityResult) *Table {
	t := &Table{
		Title: "Study: top-down vs bottom-up model fidelity (§II)",
		Note: fmt.Sprintf("MAE: GPUJoule %.1f%%, bottom-up same-generation %.1f%%, "+
			"bottom-up stale (Fermi-tuned) %.1f%% (mean %+.0f%%; paper reports >100%% average error "+
			"without retuning)", r.TopDownMAE, r.KeplerMAE, r.FermiMAE, r.FermiMeanErr),
		Header: []string{"Application", "GPUJoule", "Bottom-up (Kepler-tuned)", "Bottom-up (Fermi-tuned)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.App,
			fmt.Sprintf("%+.1f%%", row.TopDownPct),
			fmt.Sprintf("%+.1f%%", row.KeplerTunedPct),
			fmt.Sprintf("%+.1f%%", row.FermiTunedPct))
	}
	return t
}
