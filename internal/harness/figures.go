package harness

import (
	"gpujoule/internal/core"
	"gpujoule/internal/metrics"
	"gpujoule/internal/sim"
	"gpujoule/internal/stats"
	"gpujoule/internal/trace"
)

// Fig2Row is one point of Figure 2: the average energy to solution of
// an n-GPM on-board (1x-BW) GPU, normalized to the single-GPM design.
type Fig2Row struct {
	N           int
	EnergyRatio float64
}

// Figure2 regenerates Figure 2: the energy cost of strong scaling with
// on-board integration, averaged over the 14 evaluation workloads.
// The paper's headline: the 32-GPM point costs ≈2× the energy of the
// monolithic baseline.
func (h *Harness) Figure2() ([]Fig2Row, error) {
	if err := h.prime(scaledConfigs(sim.BW1x)...); err != nil {
		return nil, err
	}
	out := make([]Fig2Row, 0, len(GPMSteps))
	for _, n := range GPMSteps {
		var ratios []float64
		for _, app := range h.apps {
			base, err := h.baseline(app)
			if err != nil {
				return nil, err
			}
			r, err := h.scaled(app, n, sim.BW1x)
			if err != nil {
				return nil, err
			}
			m := h.onBoard
			ratios = append(ratios, metrics.EnergyRatio(sample(m, base), sample(m, r)))
		}
		out = append(out, Fig2Row{N: n, EnergyRatio: stats.Mean(ratios)})
	}
	return out, nil
}

// Fig6Row is one point of Figure 6: average EDPSE (percent) at n GPMs
// for the compute-intensive, memory-intensive, and full workload sets,
// at the baseline on-package 2x-BW configuration.
type Fig6Row struct {
	N                    int
	Compute, Memory, All float64
}

// Figure6 regenerates Figure 6.
func (h *Harness) Figure6() ([]Fig6Row, error) {
	if err := h.prime(scaledConfigs(sim.BW2x)...); err != nil {
		return nil, err
	}
	out := make([]Fig6Row, 0, len(GPMSteps))
	for _, n := range GPMSteps {
		var comp, mem, all []float64
		for _, app := range h.apps {
			cfg := sim.MultiGPM(n, sim.BW2x)
			r, err := h.scaled(app, n, sim.BW2x)
			if err != nil {
				return nil, err
			}
			pt, err := h.point(app, cfg, r)
			if err != nil {
				return nil, err
			}
			all = append(all, pt.EDPSE)
			if app.Category == trace.CategoryCompute {
				comp = append(comp, pt.EDPSE)
			} else {
				mem = append(mem, pt.EDPSE)
			}
		}
		out = append(out, Fig6Row{
			N:       n,
			Compute: stats.Mean(comp),
			Memory:  stats.Mean(mem),
			All:     stats.Mean(all),
		})
	}
	return out, nil
}

// Fig7Row is one scaling step of Figure 7: the average incremental
// speedup over the preceding configuration, the average incremental
// energy increase, its decomposition into the paper's component
// categories (as percent of the preceding configuration's energy), and
// the hypothetical monolithic GPU's incremental speedup over the same
// step.
type Fig7Row struct {
	FromN, ToN int
	// Speedup is the mean incremental speedup t_from/t_to.
	Speedup float64
	// MonolithicSpeedup is the same step on a fused monolithic die.
	MonolithicSpeedup float64
	// EnergyIncreasePct is the mean total energy change in percent.
	EnergyIncreasePct float64
	// Component deltas, percent of the preceding config's energy,
	// matching the Fig. 7 stack: SM busy, SM idle, constant, L1->Reg
	// (incl. shared memory), L2->L1, inter-module, DRAM->L2.
	SMBusyPct, SMIdlePct, ConstantPct, L1RegPct, L2L1Pct, InterModulePct, DRAMPct float64
}

// Figure7 regenerates Figure 7 at the on-package 2x-BW baseline.
func (h *Harness) Figure7() ([]Fig7Row, error) {
	steps := append([]int{1}, GPMSteps...)
	cfgs := scaledConfigs(sim.BW2x)
	for _, n := range steps {
		cfgs = append(cfgs, monolithicCfg(n))
	}
	if err := h.prime(cfgs...); err != nil {
		return nil, err
	}
	out := make([]Fig7Row, 0, len(GPMSteps))
	m := h.onPackage
	for i := 1; i < len(steps); i++ {
		from, to := steps[i-1], steps[i]
		var row Fig7Row
		row.FromN, row.ToN = from, to
		var speedups, mono []float64
		var dE, dBusy, dIdle, dConst, dL1, dL2, dInter, dDRAM []float64
		for _, app := range h.apps {
			prev, err := h.scaled(app, from, sim.BW2x)
			if err != nil {
				return nil, err
			}
			cur, err := h.scaled(app, to, sim.BW2x)
			if err != nil {
				return nil, err
			}
			speedups = append(speedups, prev.Seconds()/cur.Seconds())

			pb := m.Estimate(&prev.Counts)
			cb := m.Estimate(&cur.Counts)
			tot := pb.Total()
			dE = append(dE, (cb.Total()-tot)/tot*100)
			dBusy = append(dBusy, (cb.Compute-pb.Compute)/tot*100)
			dIdle = append(dIdle, (cb.Stall-pb.Stall)/tot*100)
			dConst = append(dConst, (cb.Constant-pb.Constant)/tot*100)
			dL1 = append(dL1, (cb.L1ToRF+cb.ShmToRF-pb.L1ToRF-pb.ShmToRF)/tot*100)
			dL2 = append(dL2, (cb.L2ToL1-pb.L2ToL1)/tot*100)
			dInter = append(dInter, (cb.InterGPM-pb.InterGPM)/tot*100)
			dDRAM = append(dDRAM, (cb.DRAMToL2-pb.DRAMToL2)/tot*100)

			mprev, err := h.monolithic(app, from)
			if err != nil {
				return nil, err
			}
			mcur, err := h.monolithic(app, to)
			if err != nil {
				return nil, err
			}
			mono = append(mono, mprev.Seconds()/mcur.Seconds())
		}
		row.Speedup = stats.Mean(speedups)
		row.MonolithicSpeedup = stats.Mean(mono)
		row.EnergyIncreasePct = stats.Mean(dE)
		row.SMBusyPct = stats.Mean(dBusy)
		row.SMIdlePct = stats.Mean(dIdle)
		row.ConstantPct = stats.Mean(dConst)
		row.L1RegPct = stats.Mean(dL1)
		row.L2L1Pct = stats.Mean(dL2)
		row.InterModulePct = stats.Mean(dInter)
		row.DRAMPct = stats.Mean(dDRAM)
		out = append(out, row)
	}
	return out, nil
}

// Fig8Row is one bandwidth setting of Figure 8: average EDPSE per GPM
// count.
type Fig8Row struct {
	BW      sim.BWSetting
	ByGPM   map[int]float64
	Average float64
}

// Figure8 regenerates Figure 8: EDPSE as a function of the Table IV
// interconnect bandwidth setting.
func (h *Harness) Figure8() ([]Fig8Row, error) {
	grid := sim.Grid{GPMs: GPMSteps, BWs: []sim.BWSetting{sim.BW1x, sim.BW2x, sim.BW4x}}
	if err := h.prime(append(grid.Configs(), baselineCfg())...); err != nil {
		return nil, err
	}
	out := make([]Fig8Row, 0, 3)
	for _, bw := range []sim.BWSetting{sim.BW1x, sim.BW2x, sim.BW4x} {
		row := Fig8Row{BW: bw, ByGPM: make(map[int]float64, len(GPMSteps))}
		var avgAll []float64
		for _, n := range GPMSteps {
			cfg := sim.MultiGPM(n, bw)
			var vals []float64
			for _, app := range h.apps {
				r, err := h.scaled(app, n, bw)
				if err != nil {
					return nil, err
				}
				pt, err := h.point(app, cfg, r)
				if err != nil {
					return nil, err
				}
				vals = append(vals, pt.EDPSE)
			}
			row.ByGPM[n] = stats.Mean(vals)
			avgAll = append(avgAll, row.ByGPM[n])
		}
		row.Average = stats.Mean(avgAll)
		out = append(out, row)
	}
	return out, nil
}

// Fig9Row is one GPM count of Figure 9: average EDPSE for on-board
// integration with a ring at 1x-BW, a switch at 1x-BW, and a switch at
// 2x-BW.
type Fig9Row struct {
	N                          int
	Ring1x, Switch1x, Switch2x float64
}

// Figure9 regenerates Figure 9. All three designs are on-board
// (10 pJ/bit links, no amortization); the switch adds its own
// 10 pJ/bit traversal cost.
func (h *Harness) Figure9() ([]Fig9Row, error) {
	cfgs := scaledConfigs(sim.BW1x)
	for _, n := range GPMSteps {
		cfgs = append(cfgs, switchedCfg(n, sim.BW1x), switchedCfg(n, sim.BW2x))
	}
	if err := h.prime(cfgs...); err != nil {
		return nil, err
	}
	out := make([]Fig9Row, 0, len(GPMSteps))
	for _, n := range GPMSteps {
		var row Fig9Row
		row.N = n
		var ring, sw1, sw2 []float64
		for _, app := range h.apps {
			ringCfg := sim.MultiGPM(n, sim.BW1x)
			r, err := h.scaled(app, n, sim.BW1x)
			if err != nil {
				return nil, err
			}
			pt, err := h.point(app, ringCfg, r)
			if err != nil {
				return nil, err
			}
			ring = append(ring, pt.EDPSE)

			for _, v := range []struct {
				bw  sim.BWSetting
				acc *[]float64
			}{{sim.BW1x, &sw1}, {sim.BW2x, &sw2}} {
				sr, err := h.switched(app, n, v.bw)
				if err != nil {
					return nil, err
				}
				swCfg := sim.MultiGPM(n, v.bw)
				swCfg.Domain = sim.DomainOnBoard
				pt, err := h.point(app, swCfg, sr)
				if err != nil {
					return nil, err
				}
				*v.acc = append(*v.acc, pt.EDPSE)
			}
		}
		row.Ring1x = stats.Mean(ring)
		row.Switch1x = stats.Mean(sw1)
		row.Switch2x = stats.Mean(sw2)
		out = append(out, row)
	}
	return out, nil
}

// Fig10Row is one (GPM count, bandwidth) point of Figure 10: average
// speedup over the 1-GPM GPU and average energy normalized to it.
// Energy accounting follows §V-D: the 1x-BW points are on-board (no
// amortization), the 2x/4x points on-package with amortization.
type Fig10Row struct {
	N           int
	BW          sim.BWSetting
	Speedup     float64
	EnergyRatio float64
}

// Figure10 regenerates Figure 10.
func (h *Harness) Figure10() ([]Fig10Row, error) {
	grid := sim.Grid{GPMs: GPMSteps, BWs: []sim.BWSetting{sim.BW1x, sim.BW2x, sim.BW4x}}
	if err := h.prime(append(grid.Configs(), baselineCfg())...); err != nil {
		return nil, err
	}
	var out []Fig10Row
	for _, n := range GPMSteps {
		for _, bw := range []sim.BWSetting{sim.BW1x, sim.BW2x, sim.BW4x} {
			cfg := sim.MultiGPM(n, bw)
			m := h.Model(cfg)
			var sp, er []float64
			for _, app := range h.apps {
				base, err := h.baseline(app)
				if err != nil {
					return nil, err
				}
				r, err := h.scaled(app, n, bw)
				if err != nil {
					return nil, err
				}
				bs, ss := sample(m, base), sample(m, r)
				sp = append(sp, metrics.Speedup(bs, ss))
				er = append(er, metrics.EnergyRatio(bs, ss))
			}
			out = append(out, Fig10Row{N: n, BW: bw, Speedup: stats.Mean(sp), EnergyRatio: stats.Mean(er)})
		}
	}
	return out, nil
}

// averageEDPSE computes the mean EDPSE over the evaluation suite for
// an arbitrary configuration and model (used by the point studies).
func (h *Harness) averageEDPSE(cfg sim.Config, m *core.Model) (float64, error) {
	if err := h.prime(cfg, baselineCfg()); err != nil {
		return 0, err
	}
	var vals []float64
	for _, app := range h.apps {
		base, err := h.baseline(app)
		if err != nil {
			return 0, err
		}
		r, err := h.run(app, cfg)
		if err != nil {
			return 0, err
		}
		vals = append(vals, metrics.EDPSE(sample(m, base), cfg.GPMs, sample(m, r)))
	}
	return stats.Mean(vals), nil
}
