// Package harness defines and runs the paper's evaluation (§V): one
// experiment per table and figure, each producing machine-checkable
// rows plus a renderable table. All simulation points execute through
// the shared run engine (internal/runner), which parallelizes each
// experiment's point grid across a worker pool and memoizes results by
// canonical point key — the 2x-BW sweep feeds Figs. 2, 6, 7, and 10,
// so regenerating the whole evaluation costs one pass per distinct
// configuration regardless of how many experiments share it.
package harness

import (
	"context"

	"gpujoule/internal/core"
	"gpujoule/internal/dvfs"
	"gpujoule/internal/interconnect"
	"gpujoule/internal/metrics"
	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
	"gpujoule/internal/workloads"
)

// GPMSteps are the multi-module design points of Table III.
var GPMSteps = []int{2, 4, 8, 16, 32}

// Options configures a Harness.
type Options struct {
	// Scale is the workload sizing factor (1.0 = paper scale; 0 means
	// 1.0).
	Scale float64
	// Workers bounds concurrent simulations; <= 0 selects one worker
	// per CPU.
	Workers int
	// OnEvent, when non-nil, receives the run engine's progress events
	// (points started/completed, cache hits, wall time).
	OnEvent func(runner.Event)
	// Counters enables per-GPM/per-link observability counters on every
	// simulation the harness runs (see internal/obs).
	Counters bool
	// GPMParallel, when > 1, runs each simulation's GPMs on up to this
	// many parallel lanes (runner.Options.GPMParallel); results and
	// every rendered table stay byte-identical at any lane count.
	GPMParallel int
	// Trace records a timeline trace on every simulation the harness
	// runs (runner.Options.Trace, implies counters); collect the traces
	// with Engine().Traces().
	Trace bool
	// Context cancels in-flight experiment grids when done; nil means
	// context.Background().
	Context context.Context
	// OperatingPoint runs the whole evaluation at a DVFS operating
	// point: every config the harness builds is stamped with it (unless
	// a study stamps its own) and the projection models are rescaled to
	// match. The zero value is the nominal point and changes nothing.
	OperatingPoint dvfs.OperatingPoint
}

// Harness runs the evaluation at a chosen workload scale.
type Harness struct {
	params workloads.Params
	apps   []*trace.App
	engine *runner.Engine
	ctx    context.Context
	op     dvfs.OperatingPoint

	onPackage *core.Model
	onBoard   *core.Model
}

// New returns a harness over the 14-workload evaluation subset at the
// given scale (1.0 = paper scale), with default execution options.
func New(scale float64) *Harness {
	return NewWithOptions(Options{Scale: scale})
}

// NewWithOptions returns a harness with explicit execution options.
func NewWithOptions(opts Options) *Harness {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return &Harness{
		params: workloads.Params{Scale: opts.Scale},
		apps:   workloads.Eval14(workloads.Params{Scale: opts.Scale}),
		engine: runner.New(runner.Options{
			Workers:     opts.Workers,
			OnEvent:     opts.OnEvent,
			Counters:    opts.Counters,
			GPMParallel: opts.GPMParallel,
			Trace:       opts.Trace,
		}),
		ctx:       ctx,
		op:        opts.OperatingPoint,
		onPackage: core.ProjectionModel(core.OnPackageLinks()),
		onBoard:   core.ProjectionModel(core.OnBoardLinks()),
	}
}

// OperatingPoint returns the harness-wide DVFS operating point (the
// nominal point unless Options set one).
func (h *Harness) OperatingPoint() dvfs.OperatingPoint { return h.op }

// cfgAt stamps the harness operating point onto a config that has not
// chosen its own. At the nominal point this returns cfg unchanged, so
// every pre-DVFS key and serialization is preserved.
func (h *Harness) cfgAt(cfg sim.Config) sim.Config {
	if cfg.ClockHz != 0 || cfg.VoltageV != 0 || h.op.IsNominal() {
		return cfg
	}
	return dvfs.Apply(cfg, h.op)
}

// Apps returns the evaluation workloads.
func (h *Harness) Apps() []*trace.App { return h.apps }

// Params returns the workload sizing parameters.
func (h *Harness) Params() workloads.Params { return h.params }

// Runs reports how many distinct simulations the engine has memoized.
func (h *Harness) Runs() int { return h.engine.Distinct() }

// Engine exposes the shared run engine (for progress statistics).
func (h *Harness) Engine() *runner.Engine { return h.engine }

// pointFor wraps (app, cfg) as a run-engine point at the harness scale
// and operating point.
func (h *Harness) pointFor(app *trace.App, cfg sim.Config) runner.Point {
	return runner.Point{App: app, Scale: h.params.Scale, Config: h.cfgAt(cfg)}
}

// run simulates app on cfg through the engine (memoized by canonical
// point key).
func (h *Harness) run(app *trace.App, cfg sim.Config) (*sim.Result, error) {
	return h.engine.One(h.ctx, h.pointFor(app, cfg))
}

// prime batch-executes the full (apps × configs) grid through the run
// engine, so it runs across the worker pool and every per-point lookup
// that follows is a cache hit. Experiment builders call this with their
// whole grid before deriving metrics serially.
func (h *Harness) prime(cfgs ...sim.Config) error {
	stamped := make([]sim.Config, len(cfgs))
	for i, c := range cfgs {
		stamped[i] = h.cfgAt(c)
	}
	_, err := h.engine.Run(h.ctx, runner.Points(h.apps, h.params.Scale, stamped...))
	return err
}

// baselineCfg is the 1-GPM design every scaling metric normalizes to.
func baselineCfg() sim.Config { return sim.MultiGPM(1, sim.BW2x) }

// scaledConfigs returns the n-GPM ring configs for the given bandwidth
// across the Table III module steps, prefixed with the 1-GPM baseline.
func scaledConfigs(bw sim.BWSetting) []sim.Config {
	cfgs := []sim.Config{baselineCfg()}
	for _, n := range GPMSteps {
		cfgs = append(cfgs, sim.MultiGPM(n, bw))
	}
	return cfgs
}

// Model returns the projection energy model for a configuration's
// integration domain, rescaled to the configuration's operating point
// (the same pointer as today for nominal configs).
func (h *Harness) Model(cfg sim.Config) *core.Model {
	m := h.onBoard
	if cfg.Domain == sim.DomainOnPackage {
		m = h.onPackage
	}
	return dvfs.ScaleForConfig(m, h.cfgAt(cfg))
}

// sample derives the (energy, delay) sample of a run under a model.
func sample(m *core.Model, r *sim.Result) metrics.Sample {
	return metrics.Sample{
		EnergyJoules: m.EstimateEnergy(&r.Counts),
		DelaySeconds: r.Seconds(),
	}
}

// baseline returns the 1-GPM run of an app (the EDPSE denominator's
// base design). The 1-GPM design has no inter-GPM links, so its energy
// is domain-independent.
func (h *Harness) baseline(app *trace.App) (*sim.Result, error) {
	return h.run(app, baselineCfg())
}

// scaled returns the n-GPM ring run of an app at the given bandwidth
// setting (with the Table IV default domain).
func (h *Harness) scaled(app *trace.App, n int, bw sim.BWSetting) (*sim.Result, error) {
	return h.run(app, sim.MultiGPM(n, bw))
}

// switchedCfg is the n-GPM switch-topology on-board design.
func switchedCfg(n int, bw sim.BWSetting) sim.Config {
	cfg := sim.MultiGPM(n, bw)
	cfg.Topology = interconnect.TopologySwitch
	cfg.Domain = sim.DomainOnBoard
	return cfg
}

// switched returns the n-GPM switch-topology on-board run.
func (h *Harness) switched(app *trace.App, n int, bw sim.BWSetting) (*sim.Result, error) {
	return h.run(app, switchedCfg(n, bw))
}

// monolithicCfg is the hypothetical n×-capability monolithic die.
func monolithicCfg(n int) sim.Config {
	cfg := sim.MultiGPM(n, sim.BW2x)
	cfg.Monolithic = true
	return cfg
}

// monolithic returns the hypothetical n×-capability monolithic run.
func (h *Harness) monolithic(app *trace.App, n int) (*sim.Result, error) {
	return h.run(app, monolithicCfg(n))
}

// point computes an app's scaling point for a scaled run against its
// 1-GPM baseline, using the model that matches the scaled config's
// domain.
func (h *Harness) point(app *trace.App, cfg sim.Config, scaled *sim.Result) (metrics.ScalingPoint, error) {
	base, err := h.baseline(app)
	if err != nil {
		return metrics.ScalingPoint{}, err
	}
	m := h.Model(cfg)
	return metrics.Derive(sample(m, base), cfg.GPMs, sample(m, scaled)), nil
}
