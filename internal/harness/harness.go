// Package harness defines and runs the paper's evaluation (§V): one
// experiment per table and figure, each producing machine-checkable
// rows plus a renderable table. Simulation results are cached and
// shared across experiments (the 2x-BW sweep feeds Figs. 2, 6, 7, and
// 10), so regenerating the whole evaluation costs one pass per distinct
// configuration.
package harness

import (
	"fmt"

	"gpujoule/internal/core"
	"gpujoule/internal/interconnect"
	"gpujoule/internal/metrics"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
	"gpujoule/internal/workloads"
)

// GPMSteps are the multi-module design points of Table III.
var GPMSteps = []int{2, 4, 8, 16, 32}

// Harness runs the evaluation at a chosen workload scale.
type Harness struct {
	params workloads.Params
	apps   []*trace.App
	cache  map[cacheKey]*sim.Result

	onPackage *core.Model
	onBoard   *core.Model
}

type cacheKey struct {
	app string
	cfg string
}

// New returns a harness over the 14-workload evaluation subset at the
// given scale (1.0 = paper scale).
func New(scale float64) *Harness {
	return &Harness{
		params:    workloads.Params{Scale: scale},
		apps:      workloads.Eval14(workloads.Params{Scale: scale}),
		cache:     make(map[cacheKey]*sim.Result),
		onPackage: core.ProjectionModel(core.OnPackageLinks()),
		onBoard:   core.ProjectionModel(core.OnBoardLinks()),
	}
}

// Apps returns the evaluation workloads.
func (h *Harness) Apps() []*trace.App { return h.apps }

// Params returns the workload sizing parameters.
func (h *Harness) Params() workloads.Params { return h.params }

// Runs reports how many distinct simulations the cache holds.
func (h *Harness) Runs() int { return len(h.cache) }

// run simulates app on cfg, memoizing by (app, config) identity.
func (h *Harness) run(app *trace.App, cfg sim.Config) (*sim.Result, error) {
	key := cacheKey{app: app.Name, cfg: cfg.Name()}
	if r, ok := h.cache[key]; ok {
		return r, nil
	}
	r, err := sim.Run(cfg, app)
	if err != nil {
		return nil, fmt.Errorf("harness: %s on %s: %w", app.Name, cfg.Name(), err)
	}
	h.cache[key] = r
	return r, nil
}

// Model returns the projection energy model for a configuration's
// integration domain.
func (h *Harness) Model(cfg sim.Config) *core.Model {
	if cfg.Domain == sim.DomainOnPackage {
		return h.onPackage
	}
	return h.onBoard
}

// sample derives the (energy, delay) sample of a run under a model.
func sample(m *core.Model, r *sim.Result) metrics.Sample {
	return metrics.Sample{
		EnergyJoules: m.EstimateEnergy(&r.Counts),
		DelaySeconds: r.Seconds(),
	}
}

// baseline returns the 1-GPM run of an app (the EDPSE denominator's
// base design). The 1-GPM design has no inter-GPM links, so its energy
// is domain-independent.
func (h *Harness) baseline(app *trace.App) (*sim.Result, error) {
	return h.run(app, sim.MultiGPM(1, sim.BW2x))
}

// scaled returns the n-GPM ring run of an app at the given bandwidth
// setting (with the Table IV default domain).
func (h *Harness) scaled(app *trace.App, n int, bw sim.BWSetting) (*sim.Result, error) {
	return h.run(app, sim.MultiGPM(n, bw))
}

// switched returns the n-GPM switch-topology on-board run.
func (h *Harness) switched(app *trace.App, n int, bw sim.BWSetting) (*sim.Result, error) {
	cfg := sim.MultiGPM(n, bw)
	cfg.Topology = interconnect.TopologySwitch
	cfg.Domain = sim.DomainOnBoard
	return h.run(app, cfg)
}

// monolithic returns the hypothetical n×-capability monolithic run.
func (h *Harness) monolithic(app *trace.App, n int) (*sim.Result, error) {
	cfg := sim.MultiGPM(n, sim.BW2x)
	cfg.Monolithic = true
	return h.run(app, cfg)
}

// point computes an app's scaling point for a scaled run against its
// 1-GPM baseline, using the model that matches the scaled config's
// domain.
func (h *Harness) point(app *trace.App, cfg sim.Config, scaled *sim.Result) (metrics.ScalingPoint, error) {
	base, err := h.baseline(app)
	if err != nil {
		return metrics.ScalingPoint{}, err
	}
	m := h.Model(cfg)
	return metrics.Derive(sample(m, base), cfg.GPMs, sample(m, scaled)), nil
}
