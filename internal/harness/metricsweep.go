package harness

import (
	"fmt"

	"gpujoule/internal/metrics"
	"gpujoule/internal/sim"
	"gpujoule/internal/stats"
)

// MetricsRow is one module count's average scaling efficiency under
// three figures of merit: pure energy (EDiPSE with i=0, equivalent to
// performance-per-watt scaling), EDP (i=1, the paper's EDPSE), and
// ED²P (i=2).
type MetricsRow struct {
	N                       int
	EnergySE, EDPSE, ED2PSE float64
}

// MetricsStudy checks the §V-D remark that the diminishing-efficiency
// trend is not an artifact of the EDP weighting: it reappears with
// ED²P (and with pure energy / performance-per-watt).
func (h *Harness) MetricsStudy() ([]MetricsRow, error) {
	if err := h.prime(scaledConfigs(sim.BW2x)...); err != nil {
		return nil, err
	}
	out := make([]MetricsRow, 0, len(GPMSteps))
	m := h.onPackage
	for _, n := range GPMSteps {
		var e0, e1, e2 []float64
		for _, app := range h.apps {
			base, err := h.baseline(app)
			if err != nil {
				return nil, err
			}
			r, err := h.scaled(app, n, sim.BW2x)
			if err != nil {
				return nil, err
			}
			bs, ss := sample(m, base), sample(m, r)
			e0 = append(e0, metrics.EDiPSE(bs, n, ss, 0))
			e1 = append(e1, metrics.EDiPSE(bs, n, ss, 1))
			e2 = append(e2, metrics.EDiPSE(bs, n, ss, 2))
		}
		out = append(out, MetricsRow{
			N:        n,
			EnergySE: stats.Mean(e0),
			EDPSE:    stats.Mean(e1),
			ED2PSE:   stats.Mean(e2),
		})
	}
	return out, nil
}

// MetricsTable renders the metric-sensitivity study.
func MetricsTable(rows []MetricsRow) *Table {
	t := &Table{
		Title: "Study: metric sensitivity — EDiPSE for i=0 (perf/W), i=1 (EDP), i=2 (ED2P), 2x-BW",
		Note: "§V-D: the diminishing-efficiency trend appears with ED2P and " +
			"performance/watt just as with EDPSE",
		Header: []string{"Config", "Energy SE (i=0)", "EDPSE (i=1)", "ED2PSE (i=2)"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d-GPM", r.N), f1(r.EnergySE), f1(r.EDPSE), f1(r.ED2PSE))
	}
	return t
}

// PerWorkloadEDPSE returns the per-workload EDPSE at each module count
// (the appendix behind Figure 6's averages).
func (h *Harness) PerWorkloadEDPSE() (*Table, error) {
	if err := h.prime(scaledConfigs(sim.BW2x)...); err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Appendix: per-workload EDPSE at 2x-BW (percent)",
		Header: []string{"Workload", "Cat", "2-GPM", "4-GPM", "8-GPM", "16-GPM", "32-GPM"},
	}
	for _, app := range h.apps {
		row := []string{app.Name, app.Category.String()}
		for _, n := range GPMSteps {
			cfg := sim.MultiGPM(n, sim.BW2x)
			r, err := h.scaled(app, n, sim.BW2x)
			if err != nil {
				return nil, err
			}
			pt, err := h.point(app, cfg, r)
			if err != nil {
				return nil, err
			}
			row = append(row, f1(pt.EDPSE))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// PerWorkloadScaling returns per-workload speedup and energy at one
// design point, for drill-down reporting.
func (h *Harness) PerWorkloadScaling(n int, bw sim.BWSetting) (*Table, error) {
	cfg := sim.MultiGPM(n, bw)
	if err := h.prime(cfg, baselineCfg()); err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Appendix: per-workload scaling at %s", cfg.Name()),
		Header: []string{"Workload", "Cat", "Speedup", "Energy vs 1-GPM", "EDPSE (%)",
			"Remote fills (%)", "L2 hit (%)"},
	}
	for _, app := range h.apps {
		r, err := h.run(app, cfg)
		if err != nil {
			return nil, err
		}
		pt, err := h.point(app, cfg, r)
		if err != nil {
			return nil, err
		}
		t.AddRow(app.Name, app.Category.String(),
			f2(pt.Speedup), f2(pt.EnergyRatio), f1(pt.EDPSE),
			f1(r.RemoteFillFraction()*100), f1(r.L2HitRate()*100))
	}
	return t, nil
}
