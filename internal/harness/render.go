package harness

import (
	"fmt"
	"io"
	"strings"

	"gpujoule/internal/sim"
)

// Table is a renderable experiment result.
type Table struct {
	// Title names the table or figure it reproduces.
	Title string
	// Note is an optional caption (paper reference values, caveats).
	Note string
	// Header holds the column names.
	Header []string
	// Rows holds the formatted cells.
	Rows [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "note: %s\n", t.Note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// FprintCSV renders the table as CSV (header + rows).
func (t *Table) FprintCSV(w io.Writer) error {
	rows := append([][]string{t.Header}, t.Rows...)
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, c := range row {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			cells[i] = c
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// TableIII renders the simulated multi-module configurations.
func TableIII() *Table {
	t := &Table{
		Title:  "Table III: simulated multi-module GPU configurations",
		Header: []string{"Configuration", "Modules", "Total SMs", "L1/SM", "Total L2", "Total DRAM BW"},
	}
	for _, n := range sim.TableIIIGPMCounts {
		cfg := sim.MultiGPM(n, sim.BW2x)
		t.AddRow(
			fmt.Sprintf("%d-GPM", n),
			fmt.Sprintf("%d", cfg.GPMs),
			fmt.Sprintf("%d", cfg.TotalSMs()),
			fmt.Sprintf("%d KB", cfg.L1PerSMBytes/1024),
			fmt.Sprintf("%d MB", cfg.GPMs*cfg.L2PerGPMBytes/(1024*1024)),
			fmt.Sprintf("%d GB/s", int(float64(cfg.GPMs)*cfg.DRAMBytesPerCycle)),
		)
	}
	return t
}

// TableIV renders the per-GPM I/O bandwidth settings.
func TableIV() *Table {
	t := &Table{
		Title:  "Table IV: simulated per-GPM I/O bandwidth",
		Header: []string{"Configuration", "Inter-GPM BW", "Inter-GPM:DRAM", "Integration domain"},
	}
	ratios := map[sim.BWSetting]string{sim.BW1x: "1:2", sim.BW2x: "1:1", sim.BW4x: "2:1"}
	for _, bw := range []sim.BWSetting{sim.BW1x, sim.BW2x, sim.BW4x} {
		cfg := sim.MultiGPM(2, bw)
		t.AddRow(
			bw.String(),
			fmt.Sprintf("%d GB/s", int(cfg.InterGPMBytesPerCycle())),
			ratios[bw],
			cfg.Domain.String(),
		)
	}
	return t
}
