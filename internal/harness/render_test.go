package harness

import (
	"strings"
	"testing"
)

func TestTableFprint(t *testing.T) {
	tb := &Table{
		Title:  "T",
		Note:   "n",
		Header: []string{"a", "bb"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	var sb strings.Builder
	if err := tb.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== T ==", "a", "bb", "---", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableFprintCSV(t *testing.T) {
	tb := &Table{Header: []string{"x", "y"}}
	tb.AddRow("plain", "with,comma")
	tb.AddRow("quo\"te", "line")
	var sb strings.Builder
	if err := tb.FprintCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3", len(lines))
	}
	if lines[0] != "x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != `plain,"with,comma"` {
		t.Errorf("comma cell not quoted: %q", lines[1])
	}
	if lines[2] != `"quo""te",line` {
		t.Errorf("quote cell not escaped: %q", lines[2])
	}
}

func TestTableIIIContents(t *testing.T) {
	tb := TableIII()
	if len(tb.Rows) != 6 {
		t.Fatalf("Table III has 6 configurations, got %d", len(tb.Rows))
	}
	last := tb.Rows[5]
	if last[0] != "32-GPM" || last[2] != "512" || last[4] != "64 MB" || last[5] != "8192 GB/s" {
		t.Errorf("32-GPM row wrong: %v", last)
	}
}

func TestTableIVContents(t *testing.T) {
	tb := TableIV()
	if len(tb.Rows) != 3 {
		t.Fatalf("Table IV has 3 settings, got %d", len(tb.Rows))
	}
	if tb.Rows[0][1] != "128 GB/s" || tb.Rows[0][3] != "on-board" {
		t.Errorf("1x-BW row wrong: %v", tb.Rows[0])
	}
	if tb.Rows[2][1] != "512 GB/s" || tb.Rows[2][2] != "2:1" {
		t.Errorf("4x-BW row wrong: %v", tb.Rows[2])
	}
}

func TestTableIbRowErrPct(t *testing.T) {
	r := TableIbRow{Name: "x", CalibratedNJ: 5.5, PaperNJ: 5.0}
	if got := r.ErrPct(); got < 9.9 || got > 10.1 {
		t.Errorf("ErrPct = %g, want 10", got)
	}
	if (TableIbRow{PaperNJ: 0}).ErrPct() != 0 {
		t.Error("zero reference handled")
	}
}
