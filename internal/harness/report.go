package harness

import (
	"fmt"
	"io"
)

// Fig2Table renders the Figure 2 rows.
func Fig2Table(rows []Fig2Row) *Table {
	t := &Table{
		Title:  "Figure 2: energy of strong scaling, on-board integration (normalized to 1-GPM)",
		Note:   "paper: average energy rises to ~2x at the 32x design point",
		Header: []string{"GPU capability", "Energy vs 1-GPM"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%dx", r.N), f2(r.EnergyRatio))
	}
	return t
}

// Fig6Table renders the Figure 6 rows.
func Fig6Table(rows []Fig6Row) *Table {
	t := &Table{
		Title:  "Figure 6: EDPSE by workload class, on-package 2x-BW (percent)",
		Note:   "paper: all-workload average falls from 94% at 2 GPMs to 36% at 32 GPMs; compute >100% at small counts",
		Header: []string{"Config", "Compute", "Memory", "All"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d-GPM", r.N), f1(r.Compute), f1(r.Memory), f1(r.All))
	}
	return t
}

// Fig7Table renders the Figure 7 rows.
func Fig7Table(rows []Fig7Row) *Table {
	t := &Table{
		Title: "Figure 7: incremental speedup and energy increase vs preceding configuration (2x-BW)",
		Note: "paper: 1->2 speedup 1.87x, 16->32 speedup 1.47x (monolithic 1.81x), " +
			"16->32 energy +15.7%; constant energy dominates the growth",
		Header: []string{"Step", "Speedup", "Monolithic", "dEnergy%",
			"SMbusy", "SMidle", "Const", "L1->Reg", "L2->L1", "InterGPM", "DRAM->L2"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d->%d", r.FromN, r.ToN),
			f2(r.Speedup), f2(r.MonolithicSpeedup), f1(r.EnergyIncreasePct),
			f1(r.SMBusyPct), f1(r.SMIdlePct), f1(r.ConstantPct),
			f1(r.L1RegPct), f1(r.L2L1Pct), f1(r.InterModulePct), f1(r.DRAMPct),
		)
	}
	return t
}

// Fig8Table renders the Figure 8 rows.
func Fig8Table(rows []Fig8Row) *Table {
	t := &Table{
		Title:  "Figure 8: EDPSE as a function of interconnect bandwidth (percent)",
		Note:   "paper: at high GPM counts, 4x bandwidth improves EDPSE by ~3x",
		Header: []string{"Config", "2-GPM", "4-GPM", "8-GPM", "16-GPM", "32-GPM"},
	}
	for _, r := range rows {
		t.AddRow(r.BW.String(),
			f1(r.ByGPM[2]), f1(r.ByGPM[4]), f1(r.ByGPM[8]), f1(r.ByGPM[16]), f1(r.ByGPM[32]))
	}
	return t
}

// Fig9Table renders the Figure 9 rows.
func Fig9Table(rows []Fig9Row) *Table {
	t := &Table{
		Title:  "Figure 9: EDPSE for on-board ring vs switched fabrics (percent)",
		Note:   "paper: a switch nearly doubles 32-GPM EDPSE at unchanged link bandwidth",
		Header: []string{"Config", "Ring (1x-BW)", "Switch (1x-BW)", "Switch (2x-BW)"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d-GPM", r.N), f1(r.Ring1x), f1(r.Switch1x), f1(r.Switch2x))
	}
	return t
}

// Fig10Table renders the Figure 10 rows.
func Fig10Table(rows []Fig10Row) *Table {
	t := &Table{
		Title: "Figure 10: speedup and energy vs 1-GPM across bandwidth settings",
		Note: "paper: 16-GPM/2x-BW outperforms 32-GPM/1x-BW at half the energy; " +
			"4x bandwidth at 32 GPMs cuts energy 27.4% (45% with on-package amortization)",
		Header: []string{"Config", "BW", "Speedup", "Energy vs 1-GPM"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d-GPM", r.N), r.BW.String(), f2(r.Speedup), f2(r.EnergyRatio))
	}
	return t
}

// LinkEnergyTable renders the link-energy study.
func LinkEnergyTable(r LinkEnergyResult) *Table {
	t := &Table{
		Title:  "Study: interconnect energy sensitivity (32-GPM, on-board 1x-BW)",
		Note:   "paper: 4x link energy changes EDPSE <1%; 4x energy for 2x bandwidth gains +8.8%",
		Header: []string{"Design point", "EDPSE (%)", "vs baseline"},
	}
	t.AddRow("10 pJ/bit (baseline)", f2(r.BaseEDPSE), "")
	t.AddRow("2x link energy", f2(r.EDPSEAt2x), fmt.Sprintf("%+.2f%%", (r.EDPSEAt2x-r.BaseEDPSE)/r.BaseEDPSE*100))
	t.AddRow("4x link energy", f2(r.EDPSEAt4x), fmt.Sprintf("%+.2f%%", (r.EDPSEAt4x-r.BaseEDPSE)/r.BaseEDPSE*100))
	t.AddRow("4x link energy, 2x bandwidth", f2(r.DoubledBWEDPSE), fmt.Sprintf("%+.2f%%", r.DoubledBWGainPct()))
	return t
}

// AmortizationTable renders the amortization study.
func AmortizationTable(r AmortizationResult) *Table {
	t := &Table{
		Title:  "Study: constant-energy amortization (32-GPM, on-package 2x-BW)",
		Note:   "paper: 50% rate saves 22.3% energy (+8.1 EDPSE pts); 25% saves 10.4% (+3.5 pts)",
		Header: []string{"Amortization rate", "Energy saving (%)", "EDPSE gain (pts)"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.0f%%", row.Rate*100), f1(row.EnergySavingPct), f1(row.EDPSEGainPts))
	}
	return t
}

// HeadlineTable renders the concluding study.
func HeadlineTable(r HeadlineResult) *Table {
	t := &Table{
		Title: "Study: the paper's concluding trade (32 GPMs)",
		Note: "paper: 4x bandwidth cuts energy 27.4% (45% adding on-package amortization); " +
			"best design reaches ~18x speedup with ~10% energy growth",
		Header: []string{"Quantity", "Value"},
	}
	t.AddRow("energy saving, 1x->4x BW (on-board)", f1(r.EnergySavingBW4xPct)+"%")
	t.AddRow("energy saving, + on-package amortization", f1(r.EnergySavingOnPackagePct)+"%")
	t.AddRow("best-design speedup vs 1-GPM", f2(r.BestSpeedup)+"x")
	t.AddRow("best-design energy vs 1-GPM", f2(r.BestEnergyRatio)+"x")
	return t
}

// TableIbTable renders the calibrated-vs-published comparison.
func TableIbTable(rows []TableIbRow) *Table {
	t := &Table{
		Title:  "Table Ib: calibrated EPI/EPT vs published values (nJ)",
		Note:   "calibrated on the reference silicon with the Fig. 3 microbenchmark flow (Eq. 5)",
		Header: []string{"Class", "Calibrated", "Published", "Error"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, fmt.Sprintf("%.4f", r.CalibratedNJ), fmt.Sprintf("%.4f", r.PaperNJ),
			fmt.Sprintf("%+.1f%%", r.ErrPct()))
	}
	return t
}

// ValidationTables renders Table Ib, Fig. 4a, and Fig. 4b.
func ValidationTables(v *Validation) []*Table {
	fig4a := &Table{
		Title:  "Figure 4a: energy estimation error, mixed-instruction microbenchmarks",
		Note:   "paper: errors within +2.5% and -6%",
		Header: []string{"Microbenchmark", "Error"},
	}
	for _, e := range v.Fig4a {
		fig4a.AddRow(e.Name, fmt.Sprintf("%+.2f%%", e.ErrPct()))
	}
	fig4b := &Table{
		Title: "Figure 4b: energy estimation error, real applications",
		Note: fmt.Sprintf("paper: 9.4%% MAE with 4 outliers >30%% (RSBench, CoMD, BFS, MiniAMR); "+
			"this run: %.1f%% MAE, outliers %v", v.Fig4bMAEPct(), v.Fig4bOutliers(30)),
		Header: []string{"Application", "Error", "Modeled (J)", "Measured (J)"},
	}
	for _, e := range v.Fig4b {
		fig4b.AddRow(e.Name, fmt.Sprintf("%+.1f%%", e.ErrPct()),
			fmt.Sprintf("%.4g", e.ModeledJoules), fmt.Sprintf("%.4g", e.MeasuredJoules))
	}
	return []*Table{TableIbTable(v.TableIb), fig4a, fig4b}
}

// RunAll executes every experiment and writes the full report.
func (h *Harness) RunAll(w io.Writer) error {
	if err := TableIII().Fprint(w); err != nil {
		return err
	}
	if err := TableIV().Fprint(w); err != nil {
		return err
	}

	v, err := h.Validate()
	if err != nil {
		return err
	}
	for _, t := range ValidationTables(v) {
		if err := t.Fprint(w); err != nil {
			return err
		}
	}

	fig2, err := h.Figure2()
	if err != nil {
		return err
	}
	if err := Fig2Table(fig2).Fprint(w); err != nil {
		return err
	}

	fig6, err := h.Figure6()
	if err != nil {
		return err
	}
	if err := Fig6Table(fig6).Fprint(w); err != nil {
		return err
	}

	fig7, err := h.Figure7()
	if err != nil {
		return err
	}
	if err := Fig7Table(fig7).Fprint(w); err != nil {
		return err
	}

	fig8, err := h.Figure8()
	if err != nil {
		return err
	}
	if err := Fig8Table(fig8).Fprint(w); err != nil {
		return err
	}

	fig9, err := h.Figure9()
	if err != nil {
		return err
	}
	if err := Fig9Table(fig9).Fprint(w); err != nil {
		return err
	}

	fig10, err := h.Figure10()
	if err != nil {
		return err
	}
	if err := Fig10Table(fig10).Fprint(w); err != nil {
		return err
	}

	link, err := h.LinkEnergyStudy()
	if err != nil {
		return err
	}
	if err := LinkEnergyTable(link).Fprint(w); err != nil {
		return err
	}

	amort, err := h.AmortizationStudy()
	if err != nil {
		return err
	}
	if err := AmortizationTable(amort).Fprint(w); err != nil {
		return err
	}

	head, err := h.HeadlineStudy()
	if err != nil {
		return err
	}
	if err := HeadlineTable(head).Fprint(w); err != nil {
		return err
	}

	abl, err := h.AblationStudy()
	if err != nil {
		return err
	}
	return AblationTable(abl).Fprint(w)
}
