package harness

import (
	"testing"

	"gpujoule/internal/sim"
)

// The shape tests assert the paper's qualitative findings — who wins,
// in which direction, and where crossovers fall — at a reduced workload
// scale so the whole file runs in a few minutes. Absolute magnitudes
// are checked loosely; EXPERIMENTS.md records the paper-scale values.

const shapeScale = 0.15

// sharedHarness caches one harness across shape tests (runs memoize).
var sharedHarness = New(shapeScale)

func TestShapeFigure2EnergyGrowsWithModules(t *testing.T) {
	skipIfShort(t)
	rows, err := sharedHarness.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Figure 2 has 5 design points, got %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].EnergyRatio < rows[i-1].EnergyRatio {
			t.Errorf("on-board energy must grow with modules: %d-GPM %.2f < %d-GPM %.2f",
				rows[i].N, rows[i].EnergyRatio, rows[i-1].N, rows[i-1].EnergyRatio)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.EnergyRatio > 1.4 {
		t.Errorf("2-GPM energy ratio %.2f, want near 1", first.EnergyRatio)
	}
	if last.EnergyRatio < 1.5 {
		t.Errorf("32-GPM on-board energy ratio %.2f, paper finds ≈2x", last.EnergyRatio)
	}
}

func TestShapeFigure6EDPSEDeclines(t *testing.T) {
	skipIfShort(t)
	rows, err := sharedHarness.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].All > rows[i-1].All+2 {
			t.Errorf("EDPSE must decline with module count: %d-GPM %.1f > %d-GPM %.1f",
				rows[i].N, rows[i].All, rows[i-1].N, rows[i-1].All)
		}
	}
	// At reduced scale the compute apps run out of parallelism at high
	// module counts, so the class split is only asserted where the
	// grids still fill the machine (paper-scale output asserts it
	// everywhere; see EXPERIMENTS.md).
	for _, r := range rows {
		if r.N <= 4 && r.Memory >= r.Compute {
			t.Errorf("%d-GPM: memory-intensive EDPSE (%.1f) must trail compute (%.1f)",
				r.N, r.Memory, r.Compute)
		}
	}
	if first := rows[0].All; first < 70 {
		t.Errorf("2-GPM EDPSE %.1f, paper finds ≈94%%", first)
	}
	if last := rows[len(rows)-1].All; last > 60 {
		t.Errorf("32-GPM EDPSE %.1f, paper finds ≈36%% (the 50%% threshold is crossed)", last)
	}
}

func TestShapeFigure7SpeedupAndEnergyTrends(t *testing.T) {
	skipIfShort(t)
	rows, err := sharedHarness.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Figure 7 has 5 steps, got %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.Speedup < 1.5 || first.Speedup > 2.05 {
		t.Errorf("1->2 incremental speedup %.2f, paper finds 1.87x", first.Speedup)
	}
	if last.Speedup >= first.Speedup {
		t.Errorf("incremental speedup must shrink: 16->32 %.2f >= 1->2 %.2f",
			last.Speedup, first.Speedup)
	}
	if last.MonolithicSpeedup <= last.Speedup {
		t.Errorf("monolithic 16->32 (%.2f) must beat the NUMA design (%.2f) — the paper's "+
			"NUMA-attribution argument", last.MonolithicSpeedup, last.Speedup)
	}
	if last.EnergyIncreasePct < 5 {
		t.Errorf("16->32 energy increase %.1f%%, paper finds +15.7%%", last.EnergyIncreasePct)
	}
	// Idle/constant energy dominates the late growth (the §V-B claim);
	// inter-module transfer energy itself stays minor.
	growth := last.SMIdlePct + last.ConstantPct
	if growth < last.InterModulePct*3 {
		t.Errorf("idle+constant growth (%.1f%%) must dwarf inter-module energy (%.1f%%)",
			growth, last.InterModulePct)
	}
}

func TestShapeFigure8BandwidthDominates(t *testing.T) {
	skipIfShort(t)
	rows, err := sharedHarness.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Figure 8 has 3 bandwidth settings, got %d", len(rows))
	}
	byBW := map[string]Fig8Row{}
	for _, r := range rows {
		byBW[r.BW.String()] = r
	}
	for _, n := range GPMSteps {
		if byBW["2x-BW"].ByGPM[n] < byBW["1x-BW"].ByGPM[n] {
			t.Errorf("%d-GPM: 2x-BW EDPSE below 1x-BW", n)
		}
		if byBW["4x-BW"].ByGPM[n] < byBW["2x-BW"].ByGPM[n]-1 {
			t.Errorf("%d-GPM: 4x-BW EDPSE below 2x-BW", n)
		}
	}
	// At the 32-GPM point, bandwidth is the decisive factor.
	gain := byBW["4x-BW"].ByGPM[32] / byBW["1x-BW"].ByGPM[32]
	if gain < 1.3 {
		t.Errorf("4x bandwidth should strongly lift 32-GPM EDPSE, gain %.2fx (paper ≈3x)", gain)
	}
}

func TestShapeFigure9SwitchBeatsRing(t *testing.T) {
	skipIfShort(t)
	rows, err := sharedHarness.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last.N != 32 {
		t.Fatalf("last row is %d-GPM, want 32", last.N)
	}
	if last.Switch1x <= last.Ring1x {
		t.Errorf("32-GPM: a switch at unchanged link bandwidth must beat the ring "+
			"(switch %.1f vs ring %.1f, paper finds ≈2x)", last.Switch1x, last.Ring1x)
	}
	if last.Switch2x < last.Switch1x-1 {
		t.Errorf("more switch bandwidth cannot hurt: %.1f vs %.1f", last.Switch2x, last.Switch1x)
	}
	// At tiny module counts the topologies are near-equivalent.
	first := rows[0]
	if diff := first.Switch1x - first.Ring1x; diff > 25 || diff < -25 {
		t.Errorf("2-GPM topologies should be close, diff %.1f", diff)
	}
}

func TestShapeFigure10BandwidthBuysEnergy(t *testing.T) {
	skipIfShort(t)
	rows, err := sharedHarness.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	point := func(n int, bw string) Fig10Row {
		for _, r := range rows {
			if r.N == n && r.BW.String() == bw {
				return r
			}
		}
		t.Fatalf("missing point %d/%s", n, bw)
		return Fig10Row{}
	}
	// §V-D: at 32 GPMs, raising inter-GPM bandwidth reduces energy.
	e1 := point(32, "1x-BW").EnergyRatio
	e4 := point(32, "4x-BW").EnergyRatio
	if e4 >= e1 {
		t.Errorf("4x bandwidth must cut 32-GPM energy: %.2f vs %.2f", e4, e1)
	}
	// And speedup rises with bandwidth.
	if point(32, "4x-BW").Speedup <= point(32, "1x-BW").Speedup {
		t.Error("4x bandwidth must raise 32-GPM speedup")
	}
	// 16-GPM/2x-BW consumes far less energy than 32-GPM/1x-BW (§V-D).
	if r16 := point(16, "2x-BW"); r16.EnergyRatio > e1*0.75 {
		t.Errorf("16-GPM/2x-BW energy (%.2f) should be well under 32-GPM/1x-BW (%.2f)",
			r16.EnergyRatio, e1)
	}
}

func TestShapeLinkEnergyStudy(t *testing.T) {
	skipIfShort(t)
	res, err := sharedHarness.LinkEnergyStudy()
	if err != nil {
		t.Fatal(err)
	}
	// §V-C: even 4x the per-bit link energy moves EDPSE only a little,
	// while halving/doubling bandwidth moves it a lot (the strict <1%
	// bound holds at paper scale; see EXPERIMENTS.md).
	if change := res.MaxEDPSEChangePct(); change > 10 {
		t.Errorf("link energy should barely matter: max EDPSE change %.2f%% (paper <1%%)", change)
	}
	// Paying 4x the energy for 2x the bandwidth must IMPROVE EDPSE.
	if res.DoubledBWEDPSE <= res.EDPSEAt4x {
		t.Errorf("buying bandwidth with energy must win: %.2f vs %.2f",
			res.DoubledBWEDPSE, res.EDPSEAt4x)
	}
	if res.DoubledBWGainPct() <= 0 {
		t.Errorf("the advocated trade must gain EDPSE, got %+.2f%% (paper +8.8%%)",
			res.DoubledBWGainPct())
	}
}

func TestShapeAmortizationStudy(t *testing.T) {
	skipIfShort(t)
	res, err := sharedHarness.AmortizationStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("amortization study has 25%% and 50%% rows, got %d", len(res.Rows))
	}
	r25, r50 := res.Rows[0], res.Rows[1]
	if r25.Rate != 0.25 || r50.Rate != 0.5 {
		t.Fatal("rows out of order")
	}
	if r50.EnergySavingPct <= r25.EnergySavingPct || r25.EnergySavingPct <= 0 {
		t.Errorf("savings must grow with the rate: 25%%=%.1f 50%%=%.1f",
			r25.EnergySavingPct, r50.EnergySavingPct)
	}
	if r50.EDPSEGainPts <= 0 {
		t.Errorf("amortization must lift EDPSE, got %+.1f pts", r50.EDPSEGainPts)
	}
	// Paper: ≈22.3% / ≈10.4%; allow a generous band at reduced scale.
	if r50.EnergySavingPct < 10 || r50.EnergySavingPct > 40 {
		t.Errorf("50%% amortization saves %.1f%%, paper finds 22.3%%", r50.EnergySavingPct)
	}
}

func TestShapeHeadlineStudy(t *testing.T) {
	skipIfShort(t)
	res, err := sharedHarness.HeadlineStudy()
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergySavingBW4xPct <= 0 {
		t.Errorf("4x bandwidth must save energy, got %.1f%%", res.EnergySavingBW4xPct)
	}
	if res.EnergySavingOnPackagePct <= res.EnergySavingBW4xPct {
		t.Error("on-package amortization must add savings on top of bandwidth")
	}
	if res.BestSpeedup < 4 {
		t.Errorf("best 32-GPM design speedup %.1fx (reduced scale), paper finds ≈18x", res.BestSpeedup)
	}
	// The best design's energy growth must sit far below the on-board
	// 1x-BW design's (paper: >100% growth cut to ≈10%).
	rows, err := sharedHarness.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.N == 32 && r.BW == sim.BW1x {
			if res.BestEnergyRatio > 0.8*r.EnergyRatio {
				t.Errorf("best design energy (%.2fx) should be far below the 1x-BW design (%.2fx)",
					res.BestEnergyRatio, r.EnergyRatio)
			}
		}
	}
}

func TestHarnessAccessors(t *testing.T) {
	h := New(0.1)
	if len(h.Apps()) != 14 {
		t.Errorf("harness runs the 14-workload subset, got %d", len(h.Apps()))
	}
	if h.Params().Scale != 0.1 {
		t.Error("params not propagated")
	}
	if h.Runs() != 0 {
		t.Error("fresh harness has no cached runs")
	}
	if h.Model(sim.MultiGPM(4, sim.BW2x)) != h.onPackage {
		t.Error("on-package configs use the on-package model")
	}
	if h.Model(sim.MultiGPM(4, sim.BW1x)) != h.onBoard {
		t.Error("on-board configs use the on-board model")
	}
}
