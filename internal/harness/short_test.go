package harness

import "testing"

// skipIfShort guards the multi-minute integration tests; `go test
// -short` runs only the fast unit tests.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("integration shape test; skipped with -short")
	}
}
