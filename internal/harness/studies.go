package harness

import (
	"gpujoule/internal/core"
	"gpujoule/internal/metrics"
	"gpujoule/internal/sim"
	"gpujoule/internal/stats"
)

// LinkEnergyResult is the §V-C interconnect-energy point study on the
// 32-GPM on-board (1x-BW) design.
type LinkEnergyResult struct {
	// BaseEDPSE is the average EDPSE at the published 10 pJ/bit cost.
	BaseEDPSE float64
	// EDPSEAt2x and EDPSEAt4x rerun the energy model with 2× and 4×
	// the per-bit link cost, bandwidth unchanged.
	EDPSEAt2x, EDPSEAt4x float64
	// DoubledBWEDPSE evaluates the trade the paper advocates: pay 4×
	// the per-bit energy to obtain 2× the bandwidth (the 2x-BW run
	// priced at 40 pJ/bit, still on-board).
	DoubledBWEDPSE float64
}

// MaxEDPSEChangePct returns the largest relative EDPSE change (in
// percent) caused by the 2×/4× link-energy increases; the paper reports
// it stays below 1%.
func (r LinkEnergyResult) MaxEDPSEChangePct() float64 {
	c2 := (r.BaseEDPSE - r.EDPSEAt2x) / r.BaseEDPSE * 100
	c4 := (r.BaseEDPSE - r.EDPSEAt4x) / r.BaseEDPSE * 100
	return stats.Max([]float64{c2, c4})
}

// DoubledBWGainPct returns the EDPSE gain (percentage points relative
// change) of buying 2× bandwidth with 4× link energy; the paper reports
// +8.8% for the 32-GPM design.
func (r LinkEnergyResult) DoubledBWGainPct() float64 {
	return (r.DoubledBWEDPSE - r.BaseEDPSE) / r.BaseEDPSE * 100
}

// LinkEnergyStudy regenerates the §V-C interconnect-energy study.
func (h *Harness) LinkEnergyStudy() (LinkEnergyResult, error) {
	var res LinkEnergyResult
	cfg := sim.MultiGPM(32, sim.BW1x) // on-board by default

	base, err := h.averageEDPSE(cfg, h.onBoard)
	if err != nil {
		return res, err
	}
	res.BaseEDPSE = base

	at2x, err := h.averageEDPSE(cfg, h.onBoard.WithLinkEnergy(2))
	if err != nil {
		return res, err
	}
	res.EDPSEAt2x = at2x

	at4x, err := h.averageEDPSE(cfg, h.onBoard.WithLinkEnergy(4))
	if err != nil {
		return res, err
	}
	res.EDPSEAt4x = at4x

	// The advocated trade: 2× bandwidth at 4× per-bit energy, still
	// on-board (no amortization).
	cfg2x := sim.MultiGPM(32, sim.BW2x)
	cfg2x.Domain = sim.DomainOnBoard
	traded, err := h.averageEDPSE(cfg2x, h.onBoard.WithLinkEnergy(4))
	if err != nil {
		return res, err
	}
	res.DoubledBWEDPSE = traded
	return res, nil
}

// AmortizationResult is the §V-C constant-energy amortization study on
// the 32-GPM on-package (2x-BW) design.
type AmortizationResult struct {
	// Rows holds one entry per amortization rate.
	Rows []AmortizationRow
}

// AmortizationRow is one amortization rate's outcome.
type AmortizationRow struct {
	// Rate is the fraction of per-GPM constant power shared.
	Rate float64
	// EnergySavingPct is the average absolute energy decrease versus
	// no amortization.
	EnergySavingPct float64
	// EDPSEGainPts is the average EDPSE increase versus no
	// amortization, in percentage points.
	EDPSEGainPts float64
}

// AmortizationStudy regenerates the §V-C study: the paper reports a
// 22.3% energy decrease and +8.1 EDPSE at a 50% rate, and 10.4% /
// +3.5 at 25%.
func (h *Harness) AmortizationStudy() (AmortizationResult, error) {
	var res AmortizationResult
	cfg := sim.MultiGPM(32, sim.BW2x)
	if err := h.prime(cfg, baselineCfg()); err != nil {
		return res, err
	}

	type accum struct{ energy, edpse []float64 }
	rates := []float64{0, 0.25, 0.5}
	accums := make([]accum, len(rates))
	models := make([]*core.Model, len(rates))
	for i, rate := range rates {
		models[i] = h.onPackage.WithAmortization(rate)
	}

	for _, app := range h.apps {
		base, err := h.baseline(app)
		if err != nil {
			return res, err
		}
		r, err := h.run(app, cfg)
		if err != nil {
			return res, err
		}
		for i, m := range models {
			s := sample(m, r)
			accums[i].energy = append(accums[i].energy, s.EnergyJoules)
			accums[i].edpse = append(accums[i].edpse, metrics.EDPSE(sample(m, base), cfg.GPMs, s))
		}
	}

	baseEnergy := stats.Mean(accums[0].energy)
	baseEDPSE := stats.Mean(accums[0].edpse)
	for i, rate := range rates[1:] {
		e := stats.Mean(accums[i+1].energy)
		d := stats.Mean(accums[i+1].edpse)
		res.Rows = append(res.Rows, AmortizationRow{
			Rate:            rate,
			EnergySavingPct: (baseEnergy - e) / baseEnergy * 100,
			EDPSEGainPts:    d - baseEDPSE,
		})
	}
	return res, nil
}

// HeadlineResult is the §V-D / §VII conclusion: starting from the
// 32-GPM on-board 1x-BW design, raising inter-GPM bandwidth 4× cuts
// energy substantially, and moving on-package (amortizing constant
// energy) cuts it further — while strong-scaling speedup reaches ≈18×.
type HeadlineResult struct {
	// EnergySavingBW4xPct is the average energy reduction from the
	// 1x-BW on-board design to the 4x-BW design, same domain (paper:
	// 27.4%).
	EnergySavingBW4xPct float64
	// EnergySavingOnPackagePct adds on-package amortization (paper:
	// 45%).
	EnergySavingOnPackagePct float64
	// BestSpeedup is the mean 32-GPM speedup over 1-GPM at 4x-BW.
	BestSpeedup float64
	// BestEnergyRatio is the mean 32-GPM on-package 4x-BW energy
	// normalized to 1-GPM (paper: energy growth cut from >100% to
	// ≈10%).
	BestEnergyRatio float64
}

// HeadlineStudy regenerates the paper's concluding numbers.
func (h *Harness) HeadlineStudy() (HeadlineResult, error) {
	var res HeadlineResult

	cfg4xOnBoard := sim.MultiGPM(32, sim.BW4x)
	cfg4xOnBoard.Domain = sim.DomainOnBoard
	if err := h.prime(baselineCfg(), sim.MultiGPM(32, sim.BW1x), sim.MultiGPM(32, sim.BW4x)); err != nil {
		return res, err
	}

	var e1x, e4xBoard, e4xPkg, speedups, ratios []float64
	for _, app := range h.apps {
		base, err := h.baseline(app)
		if err != nil {
			return res, err
		}
		r1x, err := h.scaled(app, 32, sim.BW1x)
		if err != nil {
			return res, err
		}
		r4x, err := h.scaled(app, 32, sim.BW4x)
		if err != nil {
			return res, err
		}
		// Same physical run; energy priced per domain.
		e1x = append(e1x, h.onBoard.EstimateEnergy(&r1x.Counts))
		e4xBoard = append(e4xBoard, h.onBoard.EstimateEnergy(&r4x.Counts))
		e4xPkg = append(e4xPkg, h.onPackage.EstimateEnergy(&r4x.Counts))

		bs := sample(h.onPackage, base)
		ss := sample(h.onPackage, r4x)
		speedups = append(speedups, metrics.Speedup(bs, ss))
		ratios = append(ratios, metrics.EnergyRatio(bs, ss))
	}
	base := stats.Mean(e1x)
	res.EnergySavingBW4xPct = (base - stats.Mean(e4xBoard)) / base * 100
	res.EnergySavingOnPackagePct = (base - stats.Mean(e4xPkg)) / base * 100
	res.BestSpeedup = stats.Mean(speedups)
	res.BestEnergyRatio = stats.Mean(ratios)
	return res, nil
}
