package harness

import (
	"fmt"

	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
	"gpujoule/internal/stats"
	"gpujoule/internal/workloads"
)

// EfficientScaleRow reports, for one bandwidth setting, the largest
// module count whose average EDPSE still meets the threshold — the
// design rule the paper proposes in §III ("future designs will have to
// satisfy EDPSE design thresholds, e.g. 50%, to justify hardware
// improvements").
type EfficientScaleRow struct {
	BW sim.BWSetting
	// MaxEfficientGPMs is the largest Table III module count meeting
	// the threshold (0 when even 2 GPMs miss it).
	MaxEfficientGPMs int
	// EDPSEAtMax is the average EDPSE at that point.
	EDPSEAtMax float64
	// EDPSEAt32 is the average EDPSE at the 32-GPM point, for context.
	EDPSEAt32 float64
}

// EfficientScaleStudy applies the §III threshold rule across the
// Table IV bandwidth settings. The paper's observation: at the
// baseline 2x-BW, on-package designs cross the 50% threshold when
// scaled beyond 16 GPMs.
func (h *Harness) EfficientScaleStudy(thresholdPct float64) ([]EfficientScaleRow, error) {
	fig8, err := h.Figure8()
	if err != nil {
		return nil, err
	}
	out := make([]EfficientScaleRow, 0, len(fig8))
	for _, row := range fig8 {
		r := EfficientScaleRow{BW: row.BW, EDPSEAt32: row.ByGPM[32]}
		for _, n := range GPMSteps {
			if v := row.ByGPM[n]; v >= thresholdPct {
				r.MaxEfficientGPMs = n
				r.EDPSEAtMax = v
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// EfficientScaleTable renders the threshold study.
func EfficientScaleTable(rows []EfficientScaleRow, thresholdPct float64) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Study: largest efficient scale at the §III %.0f%% EDPSE threshold", thresholdPct),
		Note:   "paper: on-package designs run into efficiency limits beyond 16 GPMs at 2x-BW",
		Header: []string{"Bandwidth", "Max efficient GPMs", "EDPSE there", "EDPSE at 32 GPMs"},
	}
	for _, r := range rows {
		max := fmt.Sprintf("%d", r.MaxEfficientGPMs)
		at := f1(r.EDPSEAtMax)
		if r.MaxEfficientGPMs == 0 {
			max, at = "none", "-"
		}
		t.AddRow(r.BW.String(), max, at, f1(r.EDPSEAt32))
	}
	return t
}

// WeakScalingRow is one module count of the weak-scaling companion
// study: the problem grows with the machine (Gustafson regime), unlike
// the paper's strong-scaling focus.
type WeakScalingRow struct {
	N int
	// TimeRatio is t_N/t_1: 1.0 means perfect weak scaling.
	TimeRatio float64
	// EnergyPerWork is E_N/(N*E_1): energy per unit of work relative
	// to the 1-GPM design.
	EnergyPerWork float64
}

// WeakScalingStudy runs the evaluation workloads with the problem size
// scaled proportionally to the module count at the baseline 2x-BW
// design (the Gustafson regime the paper's intro contrasts with strong
// scaling). Partitioned work weak-scales cleanly; the all-to-all
// components (gather/scatter, reductions) do not, because ring
// bisection bandwidth per module shrinks with module count — so time
// stays near-flat at small counts and degrades at large ones, a milder
// version of the strong-scaling collapse.
func (h *Harness) WeakScalingStudy() ([]WeakScalingRow, error) {
	baseScale := h.params.Scale
	if baseScale <= 0 {
		baseScale = 1
	}
	// Weak scaling sizes the problem with the machine, so each module
	// count gets its own app builds; the per-point scale keys them
	// apart in the engine's memo cache.
	m := h.onPackage
	steps := append([]int{1}, GPMSteps...)
	var pts []runner.Point
	for _, n := range steps {
		scale := baseScale / 4 * float64(n)
		for _, app := range workloads.Eval14(workloads.Params{Scale: scale}) {
			pts = append(pts, runner.Point{App: app, Scale: scale, Config: sim.MultiGPM(n, sim.BW2x)})
		}
	}
	results, err := h.engine.Run(h.ctx, pts)
	if err != nil {
		return nil, err
	}

	perStep := len(h.apps)
	mean := func(step int) (t, e float64) {
		var ts, es []float64
		for _, r := range results[step*perStep : (step+1)*perStep] {
			ts = append(ts, r.Seconds())
			es = append(es, m.EstimateEnergy(&r.Counts))
		}
		return stats.Mean(ts), stats.Mean(es)
	}

	t1, e1 := mean(0)
	out := make([]WeakScalingRow, 0, len(GPMSteps))
	for i, n := range GPMSteps {
		tn, en := mean(i + 1)
		out = append(out, WeakScalingRow{
			N:             n,
			TimeRatio:     tn / t1,
			EnergyPerWork: en / (float64(n) * e1),
		})
	}
	return out, nil
}

// WeakScalingTable renders the weak-scaling study.
func WeakScalingTable(rows []WeakScalingRow) *Table {
	t := &Table{
		Title: "Study: weak scaling (problem grows with modules, 2x-BW)",
		Note: "weak scaling holds while traffic stays partition-local and degrades once " +
			"all-to-all phases meet ring bisection - a milder form of the strong-scaling collapse",
		Header: []string{"Config", "Time vs 1-GPM", "Energy per work vs 1-GPM"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d-GPM", r.N), f2(r.TimeRatio), f2(r.EnergyPerWork))
	}
	return t
}
