package harness

import "testing"

func TestShapeEfficientScaleStudy(t *testing.T) {
	skipIfShort(t)
	rows, err := sharedHarness.EfficientScaleStudy(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("threshold study covers 3 bandwidth settings, got %d", len(rows))
	}
	byBW := map[string]EfficientScaleRow{}
	for _, r := range rows {
		byBW[r.BW.String()] = r
		if r.MaxEfficientGPMs == 0 {
			t.Errorf("%v: even the smallest design misses the threshold", r.BW)
		}
		if r.EDPSEAtMax < 50 {
			t.Errorf("%v: reported max point %d has EDPSE %.1f < threshold",
				r.BW, r.MaxEfficientGPMs, r.EDPSEAtMax)
		}
	}
	// More bandwidth can only extend (never shrink) the efficient scale.
	if byBW["4x-BW"].MaxEfficientGPMs < byBW["1x-BW"].MaxEfficientGPMs {
		t.Errorf("4x-BW efficient scale (%d) below 1x-BW (%d)",
			byBW["4x-BW"].MaxEfficientGPMs, byBW["1x-BW"].MaxEfficientGPMs)
	}
}

func TestShapeWeakScalingStudy(t *testing.T) {
	skipIfShort(t)
	rows, err := sharedHarness.WeakScalingStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("weak scaling covers 5 module counts, got %d", len(rows))
	}
	// Small counts weak-scale well: time and energy/work near-flat.
	first := rows[0]
	if first.TimeRatio > 1.5 {
		t.Errorf("2-GPM weak-scaled time ratio %.2f, want near 1", first.TimeRatio)
	}
	if first.EnergyPerWork > 1.3 {
		t.Errorf("2-GPM energy per work %.2f, want near 1", first.EnergyPerWork)
	}
	// Degradation is monotone-ish but far milder than a strong-scaling
	// slowdown of the same machine would be (time ratio stays well
	// under N).
	last := rows[len(rows)-1]
	if last.TimeRatio > 16 {
		t.Errorf("32-GPM weak-scaled time ratio %.2f, should stay well under N", last.TimeRatio)
	}
}
