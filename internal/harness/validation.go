package harness

import (
	"gpujoule/internal/calib"
	"gpujoule/internal/core"
	"gpujoule/internal/isa"
	"gpujoule/internal/silicon"
	"gpujoule/internal/workloads"
)

// TableIbRow compares one calibrated energy value with the published
// Table Ib value.
type TableIbRow struct {
	// Name is the instruction or transaction class.
	Name string
	// CalibratedNJ is the value recovered from the reference silicon.
	CalibratedNJ float64
	// PaperNJ is the published Table Ib value.
	PaperNJ float64
}

// ErrPct returns the deviation from the published value in percent.
func (r TableIbRow) ErrPct() float64 {
	if r.PaperNJ == 0 {
		return 0
	}
	return (r.CalibratedNJ - r.PaperNJ) / r.PaperNJ * 100
}

// Validation is the outcome of the §IV calibration and validation
// experiments (Table Ib, Fig. 4a, Fig. 4b).
type Validation struct {
	// Calibration is the full Fig. 3 workflow result.
	Calibration *calib.Result
	// TableIb compares calibrated against published values.
	TableIb []TableIbRow
	// Fig4a are the mixed-microbenchmark validation errors.
	Fig4a []calib.NamedError
	// Fig4b are the 18-application validation errors.
	Fig4b []calib.NamedError
}

// Fig4bMAEPct returns the Fig. 4b mean absolute error (paper: 9.4%).
func (v *Validation) Fig4bMAEPct() float64 { return calib.MAEPct(v.Fig4b) }

// Fig4bOutliers returns the applications with absolute error above the
// given percent threshold (the paper reports four above 30%).
func (v *Validation) Fig4bOutliers(thresholdPct float64) []string {
	var out []string
	for _, e := range v.Fig4b {
		if err := e.ErrPct(); err > thresholdPct || err < -thresholdPct {
			out = append(out, e.Name)
		}
	}
	return out
}

// Validate runs the §IV experiments: calibrate GPUJoule against the
// reference silicon, then validate on the mixed microbenchmarks and
// the full 18-application suite at the harness scale.
func (h *Harness) Validate() (*Validation, error) {
	dev := silicon.NewK40()
	res, err := calib.Calibrate(dev, calib.Options{})
	if err != nil {
		return nil, err
	}

	v := &Validation{Calibration: res, Fig4a: res.MixedErrors}

	paper := core.K40Model() // the published Table Ib values
	for _, op := range isa.ComputeOps() {
		v.TableIb = append(v.TableIb, TableIbRow{
			Name:         op.String(),
			CalibratedNJ: res.Model.EPI[op] * 1e9,
			PaperNJ:      paper.EPI[op] * 1e9,
		})
	}
	for _, k := range []isa.TxnKind{isa.TxnShmToRF, isa.TxnL1ToRF, isa.TxnL2ToL1, isa.TxnDRAMToL2} {
		v.TableIb = append(v.TableIb, TableIbRow{
			Name:         k.String(),
			CalibratedNJ: res.Model.EPT[k] * 1e9,
			PaperNJ:      paper.EPT[k] * 1e9,
		})
	}

	apps := workloads.All(h.params)
	fig4b, err := calib.ValidateApps(dev, res.Model, apps)
	if err != nil {
		return nil, err
	}
	v.Fig4b = fig4b
	return v, nil
}
