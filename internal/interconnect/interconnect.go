// Package interconnect models the inter-GPM fabrics of multi-module
// GPUs: the multi-hop ring assumed for on-package integration and the
// high-radix switch used by on-board systems (§II, §V-C). Fabrics route
// sector-sized transfers between modules, reserving bandwidth on every
// traversed link so that NUMA congestion amplifies with module count in
// rings, exactly the effect the paper identifies as the dominant energy
// efficiency limiter.
package interconnect

import (
	"fmt"

	"gpujoule/internal/memsys"
)

// Topology names a fabric layout.
type Topology uint8

// Fabric topologies.
const (
	// TopologyRing connects GPMs in a bidirectional ring; transfers
	// take the minimal-hop direction and consume bandwidth on every
	// link they traverse.
	TopologyRing Topology = iota
	// TopologySwitch connects every GPM to one central high-radix
	// switch chip; every remote transfer takes exactly one
	// GPM->switch->GPM route.
	TopologySwitch
)

func (t Topology) String() string {
	switch t {
	case TopologyRing:
		return "ring"
	case TopologySwitch:
		return "switch"
	default:
		return fmt.Sprintf("topology(%d)", uint8(t))
	}
}

// Transfer describes the fabric's handling of one remote sector.
type Transfer struct {
	// Done is the completion time in cycles.
	Done float64
	// Hops is the number of inter-GPM link traversals charged.
	Hops int
	// Switched reports whether the transfer crossed a switch chip.
	Switched bool
}

// LinkStats is one unidirectional link's lifetime counters: the
// observability view behind the paper's per-hop congestion argument
// (ring links amplify NUMA traffic with module count, §V-B).
type LinkStats struct {
	// Name is the diagnostic link name (e.g. "ring-link[d0][3]").
	Name string
	// Bytes is the payload that traversed the link.
	Bytes uint64
	// BusyCycles is the service time implied by the bytes moved.
	BusyCycles float64
	// QueueCycles is the cumulative queueing delay transfers saw at
	// this link.
	QueueCycles float64
	// BytesPerCycle is the link's configured bandwidth.
	BytesPerCycle float64
}

// Fabric routes sector transfers between GPMs.
type Fabric interface {
	// Send routes bytes from GPM src to GPM dst starting at time now
	// (cycles) and returns the transfer outcome. src must differ from
	// dst.
	Send(now float64, src, dst, bytes int) Transfer
	// Hops returns the number of link traversals a transfer from src
	// to dst makes, without reserving bandwidth.
	Hops(src, dst int) int
	// Topology reports the layout.
	Topology() Topology
	// GPMs reports the module count.
	GPMs() int
	// LinkUtilization returns per-link utilization over the horizon.
	LinkUtilization(horizon float64) []float64
	// LinkStats returns per-link lifetime counters, in the same link
	// order as LinkUtilization.
	LinkStats() []LinkStats
	// Reset clears all reservations and statistics.
	Reset()
}

// HopLatency is the per-link-traversal latency in cycles (serialization
// and transit of one hop at 1 GHz).
const HopLatency = 40

// switchLatency is the additional latency of crossing a switch chip.
const switchLatency = 60

// Ring is a bidirectional ring fabric. The per-GPM I/O bandwidth budget
// (Table IV) is split across the two directions, so each of the 2N
// unidirectional links carries half the per-GPM budget.
type Ring struct {
	n int
	// hop is the per-traversal latency in core cycles (HopLatency scaled
	// by the core-clock ratio; the fabric's wall-clock speed is fixed).
	hop float64
	// links[d][i] is the unidirectional link from GPM i in direction d
	// (0 = clockwise to (i+1)%n, 1 = counter-clockwise to (i-1+n)%n).
	links [2][]*memsys.BWResource
}

// NewRing builds a ring of n GPMs where each GPM has perGPMBytesPerCycle
// of total inter-GPM I/O bandwidth (half per direction).
func NewRing(n int, perGPMBytesPerCycle float64) *Ring {
	return newRingAtClock(n, perGPMBytesPerCycle, 1)
}

func newRingAtClock(n int, perGPMBytesPerCycle, clockScale float64) *Ring {
	if n < 2 {
		panic(fmt.Sprintf("interconnect: ring needs at least 2 GPMs, got %d", n))
	}
	r := &Ring{n: n, hop: HopLatency * clockScale}
	for d := 0; d < 2; d++ {
		r.links[d] = make([]*memsys.BWResource, n)
		for i := 0; i < n; i++ {
			r.links[d][i] = memsys.NewBWResource(
				fmt.Sprintf("ring-link[d%d][%d]", d, i), perGPMBytesPerCycle/2/clockScale)
		}
	}
	return r
}

// Topology implements Fabric.
func (r *Ring) Topology() Topology { return TopologyRing }

// Hops implements Fabric: the minimal hop count around the ring.
func (r *Ring) Hops(src, dst int) int {
	cw := (dst - src + r.n) % r.n
	ccw := (src - dst + r.n) % r.n
	if ccw < cw {
		return ccw
	}
	return cw
}

// GPMs implements Fabric.
func (r *Ring) GPMs() int { return r.n }

// Send implements Fabric: the transfer takes the minimal-hop direction,
// reserving bandwidth on every link along the path in sequence.
func (r *Ring) Send(now float64, src, dst, bytes int) Transfer {
	if src == dst {
		panic(fmt.Sprintf("interconnect: ring transfer %d->%d is local", src, dst))
	}
	cw := (dst - src + r.n) % r.n  // hops going clockwise
	ccw := (src - dst + r.n) % r.n // hops going counter-clockwise
	dir, hops := 0, cw
	if ccw < cw {
		dir, hops = 1, ccw
	}
	t := now
	node := src
	for h := 0; h < hops; h++ {
		t = r.links[dir][node].Acquire(t, bytes) + r.hop
		if dir == 0 {
			node = (node + 1) % r.n
		} else {
			node = (node - 1 + r.n) % r.n
		}
	}
	return Transfer{Done: t, Hops: hops}
}

// LinkUtilization implements Fabric.
func (r *Ring) LinkUtilization(horizon float64) []float64 {
	out := make([]float64, 0, 2*r.n)
	for d := 0; d < 2; d++ {
		for _, l := range r.links[d] {
			out = append(out, l.Utilization(horizon))
		}
	}
	return out
}

// LinkStats implements Fabric.
func (r *Ring) LinkStats() []LinkStats {
	out := make([]LinkStats, 0, 2*r.n)
	for d := 0; d < 2; d++ {
		for _, l := range r.links[d] {
			out = append(out, statsOf(l))
		}
	}
	return out
}

// Reset implements Fabric.
func (r *Ring) Reset() {
	for d := 0; d < 2; d++ {
		for _, l := range r.links[d] {
			l.Reset()
		}
	}
}

// Switch is a star fabric through one high-radix switch chip (NVSwitch
// style, §V-C). Each GPM owns an ingress and an egress link of the full
// per-GPM I/O bandwidth; every remote transfer consumes the source's
// egress link and the destination's ingress link — always two link
// traversals, independent of module count.
type Switch struct {
	n       int
	hop     float64              // per-traversal latency in core cycles
	swLat   float64              // switch-crossing latency in core cycles
	egress  []*memsys.BWResource // GPM -> switch
	ingress []*memsys.BWResource // switch -> GPM
}

// NewSwitch builds a switch fabric over n GPMs with the given per-GPM
// I/O bandwidth on each of the ingress and egress links.
func NewSwitch(n int, perGPMBytesPerCycle float64) *Switch {
	return newSwitchAtClock(n, perGPMBytesPerCycle, 1)
}

func newSwitchAtClock(n int, perGPMBytesPerCycle, clockScale float64) *Switch {
	if n < 2 {
		panic(fmt.Sprintf("interconnect: switch needs at least 2 GPMs, got %d", n))
	}
	s := &Switch{
		n:       n,
		hop:     HopLatency * clockScale,
		swLat:   switchLatency * clockScale,
		egress:  make([]*memsys.BWResource, n),
		ingress: make([]*memsys.BWResource, n),
	}
	for i := 0; i < n; i++ {
		s.egress[i] = memsys.NewBWResource(fmt.Sprintf("switch-egress[%d]", i), perGPMBytesPerCycle/clockScale)
		s.ingress[i] = memsys.NewBWResource(fmt.Sprintf("switch-ingress[%d]", i), perGPMBytesPerCycle/clockScale)
	}
	return s
}

// Topology implements Fabric.
func (s *Switch) Topology() Topology { return TopologySwitch }

// Hops implements Fabric: always two link traversals (egress + ingress).
func (s *Switch) Hops(src, dst int) int { return 2 }

// GPMs implements Fabric.
func (s *Switch) GPMs() int { return s.n }

// Send implements Fabric.
func (s *Switch) Send(now float64, src, dst, bytes int) Transfer {
	if src == dst {
		panic(fmt.Sprintf("interconnect: switch transfer %d->%d is local", src, dst))
	}
	t := s.egress[src].Acquire(now, bytes) + s.hop + s.swLat
	t = s.ingress[dst].Acquire(t, bytes) + s.hop
	return Transfer{Done: t, Hops: 2, Switched: true}
}

// LinkUtilization implements Fabric.
func (s *Switch) LinkUtilization(horizon float64) []float64 {
	out := make([]float64, 0, 2*s.n)
	for _, l := range s.egress {
		out = append(out, l.Utilization(horizon))
	}
	for _, l := range s.ingress {
		out = append(out, l.Utilization(horizon))
	}
	return out
}

// LinkStats implements Fabric.
func (s *Switch) LinkStats() []LinkStats {
	out := make([]LinkStats, 0, 2*s.n)
	for _, l := range s.egress {
		out = append(out, statsOf(l))
	}
	for _, l := range s.ingress {
		out = append(out, statsOf(l))
	}
	return out
}

// statsOf snapshots one link's bandwidth-resource counters.
func statsOf(l *memsys.BWResource) LinkStats {
	return LinkStats{
		Name:          l.Name(),
		Bytes:         l.BytesServed,
		BusyCycles:    l.BusyCycles(),
		QueueCycles:   l.QueueCycles,
		BytesPerCycle: l.BytesPerCycle(),
	}
}

// Reset implements Fabric.
func (s *Switch) Reset() {
	for i := 0; i < s.n; i++ {
		s.egress[i].Reset()
		s.ingress[i].Reset()
	}
}

// New builds a fabric of the given topology. A 1-GPM GPU has no fabric;
// callers must not construct one.
func New(t Topology, gpms int, perGPMBytesPerCycle float64) Fabric {
	return NewAtClock(t, gpms, perGPMBytesPerCycle, 1)
}

// NewAtClock builds a fabric whose latencies and bandwidths are
// expressed in core cycles of a clock running at clockScale times the
// nominal frequency. The fabric itself is a fixed wall-clock device, so
// in core-cycle units its latencies scale up with the core clock and its
// per-cycle bandwidth scales down. clockScale 1 reproduces New exactly.
func NewAtClock(t Topology, gpms int, perGPMBytesPerCycle, clockScale float64) Fabric {
	switch t {
	case TopologyRing:
		return newRingAtClock(gpms, perGPMBytesPerCycle, clockScale)
	case TopologySwitch:
		return newSwitchAtClock(gpms, perGPMBytesPerCycle, clockScale)
	default:
		panic(fmt.Sprintf("interconnect: unknown topology %v", t))
	}
}
