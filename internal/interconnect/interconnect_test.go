package interconnect

import (
	"testing"
	"testing/quick"
)

func TestRingHops(t *testing.T) {
	r := NewRing(8, 128)
	cases := []struct{ src, dst, hops int }{
		{0, 1, 1}, {0, 7, 1}, {0, 4, 4}, {1, 6, 3}, {6, 1, 3}, {3, 4, 1},
	}
	for _, c := range cases {
		if got := r.Hops(c.src, c.dst); got != c.hops {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.hops)
		}
	}
}

func TestRingHopsProperty(t *testing.T) {
	r := NewRing(16, 128)
	f := func(a, b uint8) bool {
		src, dst := int(a%16), int(b%16)
		if src == dst {
			return true
		}
		h := r.Hops(src, dst)
		// Symmetric, positive, and at most half the ring.
		return h == r.Hops(dst, src) && h >= 1 && h <= 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingSendChargesPerHop(t *testing.T) {
	r := NewRing(8, 128)
	tr := r.Send(0, 0, 3, 128)
	if tr.Hops != 3 {
		t.Errorf("0->3 should traverse 3 links, got %d", tr.Hops)
	}
	if tr.Switched {
		t.Error("ring transfers never cross a switch")
	}
	// Per-hop latency must accumulate.
	if tr.Done < 3*HopLatency {
		t.Errorf("3-hop transfer done at %f, want >= %d", tr.Done, 3*HopLatency)
	}
	one := r.Send(0, 4, 5, 128)
	if one.Hops != 1 || one.Done >= tr.Done {
		t.Error("adjacent transfer should be cheaper than 3-hop")
	}
}

func TestRingTakesShortestDirection(t *testing.T) {
	r := NewRing(8, 128)
	if tr := r.Send(0, 7, 0, 32); tr.Hops != 1 {
		t.Errorf("0->7 on an 8-ring wraps in 1 hop, got %d", tr.Hops)
	}
}

func TestRingBandwidthContention(t *testing.T) {
	r := NewRing(4, 128) // 64 B/cyc per directional link
	var last float64
	for i := 0; i < 1000; i++ {
		last = r.Send(0, 0, 1, 128).Done
	}
	// 1000 * 128 bytes over a 64 B/cyc link is 2000 cycles of service.
	if last < 1900 {
		t.Errorf("saturated link finished at %f, want >= 1900", last)
	}
}

func TestRingLocalTransferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("src == dst must panic")
		}
	}()
	NewRing(4, 128).Send(0, 2, 2, 32)
}

func TestSwitchHopsAndLatency(t *testing.T) {
	s := NewSwitch(16, 128)
	tr := s.Send(0, 3, 11, 128)
	if tr.Hops != 2 || !tr.Switched {
		t.Errorf("switch transfer: hops=%d switched=%v, want 2/true", tr.Hops, tr.Switched)
	}
	if s.Hops(1, 2) != 2 {
		t.Error("switch hop count is always 2")
	}
	if tr.Done < 2*HopLatency+switchLatency {
		t.Errorf("switch latency missing: done %f", tr.Done)
	}
}

func TestSwitchAvoidsThroughTraffic(t *testing.T) {
	// The defining property of a high-radix switch (§V-C): disjoint
	// pairs do not contend, while a ring's through-traffic does.
	ring := NewRing(8, 128)
	sw := NewSwitch(8, 128)

	// Saturate path 0->4 on both fabrics.
	for i := 0; i < 500; i++ {
		ring.Send(0, 0, 4, 128)
		sw.Send(0, 0, 4, 128)
	}
	// A disjoint pair 1->5: on the ring its shortest path shares links
	// with 0->4 traffic; on the switch it is fully independent.
	ringDone := ring.Send(0, 1, 5, 128).Done
	swDone := sw.Send(0, 1, 5, 128).Done
	if swDone >= ringDone {
		t.Errorf("switch transfer (%f) should beat congested ring (%f)", swDone, ringDone)
	}
}

func TestFabricConstructors(t *testing.T) {
	if New(TopologyRing, 4, 128).Topology() != TopologyRing {
		t.Error("New(ring) built the wrong fabric")
	}
	if New(TopologySwitch, 4, 128).Topology() != TopologySwitch {
		t.Error("New(switch) built the wrong fabric")
	}
	for _, f := range []Fabric{New(TopologyRing, 4, 128), New(TopologySwitch, 4, 128)} {
		if f.GPMs() != 4 {
			t.Errorf("%v fabric reports %d GPMs, want 4", f.Topology(), f.GPMs())
		}
		if got := len(f.LinkUtilization(100)); got != 8 {
			t.Errorf("%v fabric reports %d links, want 8", f.Topology(), got)
		}
	}
}

func TestFabricReset(t *testing.T) {
	for _, f := range []Fabric{New(TopologyRing, 4, 64), New(TopologySwitch, 4, 64)} {
		for i := 0; i < 100; i++ {
			f.Send(0, 0, 2, 128)
		}
		f.Reset()
		for _, u := range f.LinkUtilization(1000) {
			if u != 0 {
				t.Errorf("%v link utilization %f after Reset", f.Topology(), u)
			}
		}
	}
}

func TestTopologyStrings(t *testing.T) {
	if TopologyRing.String() != "ring" || TopologySwitch.String() != "switch" {
		t.Error("topology names wrong")
	}
}

func TestSmallFabricPanics(t *testing.T) {
	for _, build := range []func(){
		func() { NewRing(1, 128) },
		func() { NewSwitch(1, 128) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("single-GPM fabric must panic")
				}
			}()
			build()
		}()
	}
}

func TestLinkStats(t *testing.T) {
	r := NewRing(4, 64)
	tr := r.Send(0, 0, 2, 128) // 2 hops clockwise: links d0[0], d0[1]
	stats := r.LinkStats()
	if len(stats) != 8 {
		t.Fatalf("ring of 4 has %d link stats, want 8", len(stats))
	}
	var bytes uint64
	var withTraffic int
	for _, s := range stats {
		if s.Name == "" || s.BytesPerCycle != 32 {
			t.Errorf("link stats malformed: %+v", s)
		}
		bytes += s.Bytes
		if s.Bytes > 0 {
			withTraffic++
		}
	}
	if want := uint64(tr.Hops) * 128; bytes != want {
		t.Errorf("link bytes sum %d, want %d (128 B per traversed hop)", bytes, want)
	}
	if withTraffic != tr.Hops {
		t.Errorf("%d links carried traffic, want %d", withTraffic, tr.Hops)
	}

	sw := NewSwitch(4, 64)
	sw.Send(0, 1, 3, 128)
	sstats := sw.LinkStats()
	if len(sstats) != 8 {
		t.Fatalf("switch of 4 has %d link stats, want 8", len(sstats))
	}
	var sbytes uint64
	for _, s := range sstats {
		sbytes += s.Bytes
	}
	if sbytes != 256 {
		t.Errorf("switch link bytes sum %d, want 256 (egress + ingress)", sbytes)
	}
}

func TestLinkStatsQueueCycles(t *testing.T) {
	// Hammer one ring link far past its capacity; queueing delay must
	// show up on exactly the congested links.
	r := NewRing(2, 2)
	for i := 0; i < 100; i++ {
		r.Send(0, 0, 1, 128)
	}
	var queued float64
	for _, s := range r.LinkStats() {
		queued += s.QueueCycles
	}
	if queued <= 0 {
		t.Error("congested ring accumulated no queueing delay")
	}
	r.Reset()
	for _, s := range r.LinkStats() {
		if s.Bytes != 0 || s.QueueCycles != 0 {
			t.Errorf("Reset left residue on %s: %+v", s.Name, s)
		}
	}
}
