package isa

import "fmt"

// TxnKind classifies a data-movement transaction between two levels of
// the GPU memory hierarchy. These are exactly the transaction classes of
// Table Ib's "Data Movement Transactions" section, extended with the
// inter-GPM link transfers introduced by multi-module designs (§V-A2).
type TxnKind uint8

// Data-movement transaction classes.
const (
	// TxnShmToRF is a 128-byte shared memory to register file transfer.
	TxnShmToRF TxnKind = iota
	// TxnL1ToRF is a 128-byte L1 cache to register file transfer
	// (an L1 hit delivering a full cache line to the warp).
	TxnL1ToRF
	// TxnL2ToL1 is a 32-byte sector transfer from L2 into L1.
	TxnL2ToL1
	// TxnDRAMToL2 is a 32-byte sector transfer from DRAM into L2.
	TxnDRAMToL2
	// TxnInterGPM is a 32-byte sector crossing one inter-GPM link hop.
	// Multi-hop transfers record one transaction per hop so that link
	// energy scales with distance, as in a ring.
	TxnInterGPM
	// TxnSwitch is a 32-byte sector traversing a switch chip (charged
	// in addition to the link hops on either side, per §V-C footnote).
	TxnSwitch

	numTxnKinds
)

// NumTxnKinds is the number of transaction classes, for sizing arrays.
const NumTxnKinds = int(numTxnKinds)

// Transaction payload sizes in bytes, matching the per-bit energies of
// Table Ib (5.45 nJ / 5.32 pJ/bit => 128 B; 3.96 nJ / 15.48 pJ/bit and
// 7.82 nJ / 30.55 pJ/bit => 32 B sectors).
const (
	// LineBytes is the cache line size: RF-facing transactions move
	// whole lines.
	LineBytes = 128
	// SectorBytes is the sector size: inter-cache, DRAM, and inter-GPM
	// transactions move 32-byte sectors.
	SectorBytes = 32
	// SectorsPerLine is the number of sectors in a cache line.
	SectorsPerLine = LineBytes / SectorBytes
)

var txnNames = [NumTxnKinds]string{
	TxnShmToRF:  "SharedMem->RF",
	TxnL1ToRF:   "L1->RF",
	TxnL2ToL1:   "L2->L1",
	TxnDRAMToL2: "DRAM->L2",
	TxnInterGPM: "InterGPM",
	TxnSwitch:   "Switch",
}

// String returns the human-readable name of the transaction class.
func (k TxnKind) String() string {
	if int(k) < NumTxnKinds {
		return txnNames[k]
	}
	return fmt.Sprintf("TXN(%d)", uint8(k))
}

// Bytes returns the payload size of one transaction of this class.
func (k TxnKind) Bytes() int {
	switch k {
	case TxnShmToRF, TxnL1ToRF:
		return LineBytes
	default:
		return SectorBytes
	}
}

// Counts aggregates every event class the GPUJoule energy model consumes
// (Eq. 4): per-class instruction counts, per-class transaction counts,
// SM lane-stall cycles, and execution time. The performance simulator
// (and the reference silicon) produce a Counts; the energy model reads
// it without any further knowledge of the machine.
// The JSON field names are part of the simulator's stable result
// schema (see internal/sim/result.go).
type Counts struct {
	// Inst[op] is the number of executed warp-level instructions of
	// class op, multiplied by the number of active threads (the paper's
	// EPIs are per thread-level instruction).
	Inst [NumOps]uint64 `json:"inst"`

	// WarpInst[op] is the number of executed warp-level instructions of
	// class op, regardless of how many threads were active. The
	// difference between 32*WarpInst and Inst measures control
	// divergence, which GPUJoule deliberately does not model (§IV-A)
	// but the reference silicon charges for.
	WarpInst [NumOps]uint64 `json:"warp_inst"`

	// Txn[kind] is the number of data-movement transactions of the
	// given class.
	Txn [NumTxnKinds]uint64 `json:"txn"`

	// StallCycles is the total number of SM cycles in which an SM had
	// at least one resident warp but could issue nothing (a compute
	// lane stall, §IV). Idle SMs with no work also accumulate here:
	// the paper attributes GPM idle time waiting on remote memory to
	// this term plus constant power exposure.
	StallCycles uint64 `json:"stall_cycles"`

	// Cycles is the end-to-end execution time in GPU cycles.
	Cycles uint64 `json:"cycles"`

	// SMCount and GPMCount describe the machine that produced the
	// counts; the energy model uses them to scale constant power.
	SMCount  int `json:"sm_count"`
	GPMCount int `json:"gpm_count"`
}

// TotalWarpInstructions returns the number of warp-level instructions
// executed across all classes — the natural denominator for
// per-instruction cost metrics (simulator throughput, EPI).
func (c *Counts) TotalWarpInstructions() uint64 {
	var n uint64
	for _, v := range c.WarpInst {
		n += v
	}
	return n
}

// Add accumulates o into c (element-wise; Cycles takes the max, since
// kernels on different GPMs overlap in time).
func (c *Counts) Add(o *Counts) {
	for i := range c.Inst {
		c.Inst[i] += o.Inst[i]
		c.WarpInst[i] += o.WarpInst[i]
	}
	for i := range c.Txn {
		c.Txn[i] += o.Txn[i]
	}
	c.StallCycles += o.StallCycles
	if o.Cycles > c.Cycles {
		c.Cycles = o.Cycles
	}
	if o.SMCount > c.SMCount {
		c.SMCount = o.SMCount
	}
	if o.GPMCount > c.GPMCount {
		c.GPMCount = o.GPMCount
	}
}

// AddSequential accumulates o into c treating o as a later phase of the
// same run: cycles add instead of max.
func (c *Counts) AddSequential(o *Counts) {
	cyc := c.Cycles + o.Cycles
	c.Add(o)
	c.Cycles = cyc
}

// TotalInstructions returns the total thread-level instruction count
// across all compute classes.
func (c *Counts) TotalInstructions() uint64 {
	var n uint64
	for op := OpFAdd32; op <= OpRcp32; op++ {
		n += c.Inst[op]
	}
	return n
}

// TotalTransactionBytes returns the total bytes moved by transactions of
// the given class.
func (c *Counts) TotalTransactionBytes(k TxnKind) uint64 {
	return c.Txn[k] * uint64(k.Bytes())
}
