// Package isa defines the PTX-like virtual instruction set used by the
// GPUJoule reproduction: the compute instruction classes of Table Ib in
// the paper, the memory-space operations that generate data-movement
// transactions, and the per-class pipeline latencies used by the
// performance simulator.
//
// The granularity deliberately matches the paper's top-down energy
// model: instructions are classified only as finely as the energy model
// distinguishes them (opcode + data type/width), never by
// microarchitectural port or pipe.
package isa

import "fmt"

// Op is a PTX-level opcode class. Each Op corresponds to one row of the
// paper's Table Ib (or a memory operation that produces data-movement
// transactions rather than a compute EPI).
type Op uint8

// Compute opcode classes (Table Ib, "PTX Instructions" section).
const (
	OpNop Op = iota

	// 32-bit floating point.
	OpFAdd32
	OpFMul32
	OpFFMA32

	// 32-bit integer arithmetic.
	OpIAdd32
	OpISub32

	// 32-bit bitwise.
	OpAnd32
	OpOr32
	OpXor32

	// 32-bit float special functions.
	OpSin32
	OpCos32

	// 32-bit integer multiply family.
	OpIMul32
	OpIMad32

	// 64-bit floating point.
	OpFAdd64
	OpFMul64
	OpFFMA64

	// 32-bit float special-function-unit ops.
	OpSqrt32
	OpLog2_32
	OpExp2_32
	OpRcp32

	// Memory operations. These carry no EPI; their energy is accounted
	// through data-movement transactions (EPT) by the memory system.
	OpLoadGlobal
	OpStoreGlobal
	OpLoadShared
	OpStoreShared

	// Control / synchronization (no Table Ib energy row; modeled as
	// pipeline-occupancy only).
	OpBranch
	OpBarrier
	OpExit

	numOps
)

// NumOps is the number of distinct opcode classes, for sizing count arrays.
const NumOps = int(numOps)

var opNames = [NumOps]string{
	OpNop:         "NOP",
	OpFAdd32:      "FADD32",
	OpFMul32:      "FMUL32",
	OpFFMA32:      "FFMA32",
	OpIAdd32:      "IADD32",
	OpISub32:      "ISUB32",
	OpAnd32:       "AND32",
	OpOr32:        "OR32",
	OpXor32:       "XOR32",
	OpSin32:       "SIN32",
	OpCos32:       "COS32",
	OpIMul32:      "IMUL32",
	OpIMad32:      "IMAD32",
	OpFAdd64:      "FADD64",
	OpFMul64:      "FMUL64",
	OpFFMA64:      "FFMA64",
	OpSqrt32:      "SQRT32",
	OpLog2_32:     "LG2_32",
	OpExp2_32:     "EX2_32",
	OpRcp32:       "RCP32",
	OpLoadGlobal:  "LD.GLOBAL",
	OpStoreGlobal: "ST.GLOBAL",
	OpLoadShared:  "LD.SHARED",
	OpStoreShared: "ST.SHARED",
	OpBranch:      "BRA",
	OpBarrier:     "BAR.SYNC",
	OpExit:        "EXIT",
}

// String returns the PTX-flavoured mnemonic for the opcode class.
func (o Op) String() string {
	if int(o) < NumOps {
		return opNames[o]
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Valid reports whether o names a defined opcode class.
func (o Op) Valid() bool { return o > OpNop && o < numOps }

// IsCompute reports whether the opcode consumes a compute EPI
// (i.e. it is one of the Table Ib PTX instruction rows).
func (o Op) IsCompute() bool { return o >= OpFAdd32 && o <= OpRcp32 }

// IsMemory reports whether the opcode accesses a memory space and so
// generates data-movement transactions.
func (o Op) IsMemory() bool { return o >= OpLoadGlobal && o <= OpStoreShared }

// IsGlobalMemory reports whether the opcode accesses the global memory
// space (and thus traverses the L1/L2/DRAM hierarchy).
func (o Op) IsGlobalMemory() bool { return o == OpLoadGlobal || o == OpStoreGlobal }

// IsShared reports whether the opcode accesses the on-chip shared memory.
func (o Op) IsShared() bool { return o == OpLoadShared || o == OpStoreShared }

// IsControl reports whether the opcode is a control or synchronization
// instruction.
func (o Op) IsControl() bool { return o == OpBranch || o == OpBarrier || o == OpExit }

// ComputeOps lists every opcode class that carries a Table Ib EPI, in
// table order. Calibration iterates this list to build microbenchmarks.
func ComputeOps() []Op {
	ops := make([]Op, 0, int(OpRcp32-OpFAdd32)+1)
	for o := OpFAdd32; o <= OpRcp32; o++ {
		ops = append(ops, o)
	}
	return ops
}

// Latency returns the pipeline latency, in cycles, from issue of the
// instruction until a dependent instruction of the same warp may issue.
// Values are representative of a Kepler-class SM; the energy model never
// reads them (top-down decoupling), only the performance simulator does.
func (o Op) Latency() int {
	switch o {
	case OpFAdd32, OpFMul32, OpFFMA32, OpIAdd32, OpISub32,
		OpAnd32, OpOr32, OpXor32:
		return 9
	case OpIMul32, OpIMad32:
		return 13
	case OpFAdd64, OpFMul64, OpFFMA64:
		return 18
	case OpSin32, OpCos32, OpSqrt32, OpLog2_32, OpExp2_32, OpRcp32:
		return 24
	case OpBranch:
		return 6
	case OpBarrier:
		return 1
	default:
		return 1
	}
}

// IssueCycles returns the number of SM issue slots the warp instruction
// occupies. Special-function and 64-bit ops issue at reduced rate on a
// Kepler-class SM (fewer SFU/DP lanes than the 32-wide warp).
func (o Op) IssueCycles() int {
	switch o {
	case OpSin32, OpCos32, OpSqrt32, OpLog2_32, OpExp2_32, OpRcp32:
		return 4 // 8 SFU lanes per 32-thread warp
	case OpFAdd64, OpFMul64, OpFFMA64, OpIMul32, OpIMad32:
		return 2
	default:
		return 1
	}
}

// Space identifies the memory space accessed by a memory instruction.
type Space uint8

// Memory spaces.
const (
	SpaceNone Space = iota
	SpaceGlobal
	SpaceShared
)

func (s Space) String() string {
	switch s {
	case SpaceGlobal:
		return "global"
	case SpaceShared:
		return "shared"
	default:
		return "none"
	}
}

// Space returns the memory space the opcode accesses.
func (o Op) Space() Space {
	switch {
	case o.IsGlobalMemory():
		return SpaceGlobal
	case o.IsShared():
		return SpaceShared
	default:
		return SpaceNone
	}
}
