package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op                                 Op
		compute, memory, global, shm, ctrl bool
	}{
		{OpFAdd32, true, false, false, false, false},
		{OpFFMA64, true, false, false, false, false},
		{OpRcp32, true, false, false, false, false},
		{OpLoadGlobal, false, true, true, false, false},
		{OpStoreGlobal, false, true, true, false, false},
		{OpLoadShared, false, true, false, true, false},
		{OpStoreShared, false, true, false, true, false},
		{OpBranch, false, false, false, false, true},
		{OpBarrier, false, false, false, false, true},
		{OpExit, false, false, false, false, true},
		{OpNop, false, false, false, false, false},
	}
	for _, c := range cases {
		if got := c.op.IsCompute(); got != c.compute {
			t.Errorf("%v.IsCompute() = %v, want %v", c.op, got, c.compute)
		}
		if got := c.op.IsMemory(); got != c.memory {
			t.Errorf("%v.IsMemory() = %v, want %v", c.op, got, c.memory)
		}
		if got := c.op.IsGlobalMemory(); got != c.global {
			t.Errorf("%v.IsGlobalMemory() = %v, want %v", c.op, got, c.global)
		}
		if got := c.op.IsShared(); got != c.shm {
			t.Errorf("%v.IsShared() = %v, want %v", c.op, got, c.shm)
		}
		if got := c.op.IsControl(); got != c.ctrl {
			t.Errorf("%v.IsControl() = %v, want %v", c.op, got, c.ctrl)
		}
	}
}

func TestOpClassesArePartition(t *testing.T) {
	// Every valid opcode is exactly one of compute, memory, or control.
	for op := OpNop + 1; op < numOps; op++ {
		n := 0
		if op.IsCompute() {
			n++
		}
		if op.IsMemory() {
			n++
		}
		if op.IsControl() {
			n++
		}
		if n != 1 {
			t.Errorf("%v belongs to %d classes, want exactly 1", op, n)
		}
	}
}

func TestComputeOpsCoverTableIb(t *testing.T) {
	ops := ComputeOps()
	if len(ops) != 19 {
		t.Fatalf("Table Ib has 19 instruction rows, got %d", len(ops))
	}
	seen := make(map[Op]bool)
	for _, op := range ops {
		if !op.IsCompute() {
			t.Errorf("%v in ComputeOps but not compute", op)
		}
		if seen[op] {
			t.Errorf("%v duplicated in ComputeOps", op)
		}
		seen[op] = true
	}
}

func TestOpStringsAreUnique(t *testing.T) {
	seen := make(map[string]Op)
	for op := Op(0); op < numOps; op++ {
		s := op.String()
		if s == "" {
			t.Errorf("op %d has empty name", op)
		}
		if prev, ok := seen[s]; ok {
			t.Errorf("ops %v and %v share name %q", prev, op, s)
		}
		seen[s] = op
	}
	if !strings.HasPrefix(Op(200).String(), "OP(") {
		t.Errorf("out-of-range op should format numerically, got %q", Op(200).String())
	}
}

func TestLatencyAndIssuePositive(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if op.Latency() <= 0 {
			t.Errorf("%v latency %d not positive", op, op.Latency())
		}
		if op.IssueCycles() <= 0 {
			t.Errorf("%v issue cycles %d not positive", op, op.IssueCycles())
		}
	}
	if OpFFMA64.Latency() <= OpFAdd32.Latency() {
		t.Error("DP latency should exceed SP latency")
	}
	if OpSin32.IssueCycles() <= OpFAdd32.IssueCycles() {
		t.Error("SFU ops should issue slower than SP ops")
	}
}

func TestSpace(t *testing.T) {
	if OpLoadGlobal.Space() != SpaceGlobal || OpStoreShared.Space() != SpaceShared {
		t.Error("memory spaces misclassified")
	}
	if OpFAdd32.Space() != SpaceNone {
		t.Error("compute ops access no memory space")
	}
	for _, s := range []Space{SpaceNone, SpaceGlobal, SpaceShared} {
		if s.String() == "" {
			t.Errorf("space %d has empty name", s)
		}
	}
}

func TestTxnKindBytes(t *testing.T) {
	// Table Ib sector arithmetic: RF-facing transactions move 128-byte
	// lines, everything below moves 32-byte sectors.
	if TxnShmToRF.Bytes() != 128 || TxnL1ToRF.Bytes() != 128 {
		t.Error("RF-facing transactions must be 128 bytes")
	}
	for _, k := range []TxnKind{TxnL2ToL1, TxnDRAMToL2, TxnInterGPM, TxnSwitch} {
		if k.Bytes() != 32 {
			t.Errorf("%v must be a 32-byte sector, got %d", k, k.Bytes())
		}
	}
	if SectorsPerLine != 4 {
		t.Errorf("128-byte lines hold 4 sectors, got %d", SectorsPerLine)
	}
}

func TestCountsAdd(t *testing.T) {
	var a, b Counts
	a.Inst[OpFAdd32] = 10
	a.WarpInst[OpFAdd32] = 1
	a.Txn[TxnDRAMToL2] = 5
	a.StallCycles = 7
	a.Cycles = 100
	a.SMCount = 16
	a.GPMCount = 1

	b.Inst[OpFAdd32] = 32
	b.WarpInst[OpFAdd32] = 1
	b.Txn[TxnDRAMToL2] = 3
	b.StallCycles = 2
	b.Cycles = 250
	b.SMCount = 32
	b.GPMCount = 2

	sum := a
	sum.Add(&b)
	if sum.Inst[OpFAdd32] != 42 || sum.WarpInst[OpFAdd32] != 2 {
		t.Errorf("instruction counts not summed: %+v", sum.Inst[OpFAdd32])
	}
	if sum.Txn[TxnDRAMToL2] != 8 || sum.StallCycles != 9 {
		t.Error("transaction or stall counts not summed")
	}
	if sum.Cycles != 250 {
		t.Errorf("Add takes max cycles (overlap), got %d", sum.Cycles)
	}
	if sum.SMCount != 32 || sum.GPMCount != 2 {
		t.Error("machine shape should take the max")
	}

	seq := a
	seq.AddSequential(&b)
	if seq.Cycles != 350 {
		t.Errorf("AddSequential sums cycles, got %d", seq.Cycles)
	}
}

func TestCountsTotals(t *testing.T) {
	var c Counts
	c.Inst[OpFAdd32] = 10
	c.Inst[OpFFMA64] = 5
	c.Inst[OpLoadGlobal] = 99 // memory ops excluded from compute total
	if got := c.TotalInstructions(); got != 15 {
		t.Errorf("TotalInstructions = %d, want 15", got)
	}
	c.Txn[TxnL2ToL1] = 3
	if got := c.TotalTransactionBytes(TxnL2ToL1); got != 96 {
		t.Errorf("TotalTransactionBytes = %d, want 96", got)
	}
}

func TestCountsAddCommutesProperty(t *testing.T) {
	f := func(i1, i2 uint32, t1, t2 uint16, s1, s2 uint32) bool {
		var a, b Counts
		a.Inst[OpIAdd32] = uint64(i1)
		b.Inst[OpIAdd32] = uint64(i2)
		a.Txn[TxnL1ToRF] = uint64(t1)
		b.Txn[TxnL1ToRF] = uint64(t2)
		a.StallCycles = uint64(s1)
		b.StallCycles = uint64(s2)

		ab := a
		ab.Add(&b)
		ba := b
		ba.Add(&a)
		return ab == ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
