package memsys

import (
	"fmt"

	"gpujoule/internal/isa"
)

// BWResource models a shared throughput-limited component (a DRAM
// stack, an interconnect link, an L2 bank group) on a continuous time
// axis measured in cycles.
//
// Capacity is tracked in fixed-width time buckets over a sliding
// window. A request arriving at time t consumes capacity from its
// bucket forward; when near-term buckets are full it spills into later
// ones, which yields queueing delay and saturation organically. Unlike
// a single next-free FIFO, bucketed accounting lets requests that are
// issued later but arrive earlier backfill idle capacity, so dependent
// (pointer-chase) request chains do not forfeit bandwidth for
// everyone else.
type BWResource struct {
	name string
	rate float64 // bytes per cycle

	bucketCycles float64
	// invBucket is 1/bucketCycles, hoisting the bucket-index division
	// out of Acquire. The bucket width is a power of two, so the
	// reciprocal is exact and multiplying by it rounds identically to
	// dividing.
	invBucket float64
	// lineCycles is isa.LineBytes/rate, precomputed because nearly
	// every Acquire in the simulator moves exactly one cache line: the
	// unloaded-completion division then becomes a constant load. It is
	// the identical IEEE-754 quotient, just computed once, so results
	// are bit-identical.
	lineCycles float64
	bucketCap float64 // bytes per bucket
	used         []float64
	mask         int64 // len(used)-1; the window length is a power of two
	base         int64 // bucket index of the window start

	// minFree is a skip hint: every bucket with index in [base, minFree)
	// is known full, so a request arriving below it starts its walk at
	// minFree instead of re-walking saturated buckets. Buckets only gain
	// load (until Reset or window-slide reuse, which both touch indexes
	// at or above minFree), so the hint never skips usable capacity and
	// completion times are unchanged.
	minFree int64

	// skipFrom/skipTo is an amortized cursor over the most recent
	// contiguous run of full buckets observed by a walk that started
	// above minFree (a saturated stretch behind an idle gap, which the
	// window-start hint cannot cover). A walk starting inside
	// [skipFrom, skipTo) jumps to skipTo. Buckets only gain load and
	// the cursor tracks absolute bucket indexes, so a recorded run
	// stays full for the lifetime of the window and the jump never
	// skips usable capacity.
	skipFrom, skipTo int64

	// BytesServed accumulates total payload moved.
	BytesServed uint64
	// QueueCycles accumulates the queueing delay requests experienced:
	// the gap between each transfer's actual completion and its
	// unloaded completion (arrival + bytes/bandwidth). Zero on an
	// uncontended resource; growth measures saturation.
	QueueCycles float64
}

const (
	// defaultBucketCycles is the capacity-accounting granularity.
	defaultBucketCycles = 64
	// defaultWindowBuckets is the sliding-window length; the window
	// must comfortably exceed the largest spread between concurrently
	// outstanding request times (epoch length plus worst-case latency).
	// Must be a power of two: bucket indexes wrap with a mask, not a
	// division, on the per-line Acquire path.
	defaultWindowBuckets = 4096
)

// NewBWResource builds a resource serving bytesPerCycle of payload per
// cycle.
func NewBWResource(name string, bytesPerCycle float64) *BWResource {
	if bytesPerCycle <= 0 {
		panic(fmt.Sprintf("memsys: resource %q needs positive bandwidth, got %g", name, bytesPerCycle))
	}
	return &BWResource{
		name:         name,
		rate:         bytesPerCycle,
		bucketCycles: defaultBucketCycles,
		invBucket:    1.0 / defaultBucketCycles,
		lineCycles:   float64(isa.LineBytes) / bytesPerCycle,
		bucketCap:    bytesPerCycle * defaultBucketCycles,
		used:         make([]float64, defaultWindowBuckets),
		mask:         defaultWindowBuckets - 1,
	}
}

// Name returns the diagnostic name of the resource.
func (r *BWResource) Name() string { return r.name }

// BytesPerCycle returns the configured service bandwidth.
func (r *BWResource) BytesPerCycle() float64 { return r.rate }

// Acquire reserves service for a transfer of the given size arriving at
// time now (in cycles) and returns the completion time. Completion is
// never earlier than now + bytes/bandwidth; contention pushes it later.
func (r *BWResource) Acquire(now float64, bytes int) float64 {
	if now < 0 {
		now = 0
	}
	idx := int64(now * r.invBucket)
	if idx < r.base {
		// Straggler older than the window: charge it at the window
		// start (slightly pessimistic, bounded by the window span).
		idx = r.base
	}
	if idx < r.minFree {
		// Skip buckets the hint proves full; the walk below would pass
		// over them without taking capacity anyway.
		idx = r.minFree
	}
	hintStart := idx
	if idx >= r.skipFrom && idx < r.skipTo {
		// The cursor proves [idx, skipTo) full; jump the walk past it.
		idx = r.skipTo
	}
	remaining := float64(bytes)
	var lastIdx int64
	var lastFill float64
	n := int64(len(r.used))
	for {
		if idx >= r.base+n {
			// Slow path hoisted out of ensure so the in-window check
			// stays inline in the walk.
			r.ensure(idx)
		}
		slot := &r.used[idx&r.mask]
		if free := r.bucketCap - *slot; free > 0 {
			take := free
			if remaining < take {
				take = remaining
			}
			*slot += take
			remaining -= take
			lastIdx = idx
			lastFill = *slot
			if remaining <= 0 {
				break
			}
		}
		idx++
	}
	// The walk filled every bucket in [start, lastIdx) to capacity; when
	// it started at or below the hint (before any cursor jump, which is
	// itself contiguous), fullness is contiguous from the window start
	// and the hint advances.
	if hintStart <= r.minFree && lastIdx > r.minFree {
		r.minFree = lastIdx
	}
	// Fold [hintStart, lastIdx) — full after this walk — into the run
	// cursor: extend an overlapping or adjacent run, otherwise keep the
	// longer of the two.
	if lastIdx > hintStart {
		switch {
		case hintStart <= r.skipTo && r.skipFrom <= lastIdx:
			if hintStart < r.skipFrom {
				r.skipFrom = hintStart
			}
			if lastIdx > r.skipTo {
				r.skipTo = lastIdx
			}
		case lastIdx-hintStart > r.skipTo-r.skipFrom:
			r.skipFrom, r.skipTo = hintStart, lastIdx
		}
	}
	r.BytesServed += uint64(bytes)

	var unloaded float64
	if bytes == isa.LineBytes {
		unloaded = now + r.lineCycles
	} else {
		unloaded = now + float64(bytes)/r.rate
	}
	completion := float64(lastIdx)*r.bucketCycles + lastFill/r.rate
	if completion < unloaded {
		completion = unloaded
	}
	r.QueueCycles += completion - unloaded
	return completion
}

// ensure advances the sliding window so bucket idx is addressable,
// zeroing vacated slots.
func (r *BWResource) ensure(idx int64) {
	n := int64(len(r.used))
	if idx < r.base+n {
		return
	}
	newBase := idx - n + 1
	if newBase-r.base >= n {
		for i := range r.used {
			r.used[i] = 0
		}
	} else {
		for i := r.base; i < newBase; i++ {
			r.used[i&r.mask] = 0
		}
	}
	r.base = newBase
}

// BusyCycles returns the total service time implied by the bytes moved.
func (r *BWResource) BusyCycles() float64 { return float64(r.BytesServed) / r.rate }

// Utilization returns the fraction of [0, horizon] the resource spent
// busy. Horizon must be positive.
func (r *BWResource) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	u := r.BusyCycles() / horizon
	if u > 1 {
		u = 1
	}
	return u
}

// Reset clears reservations and statistics.
func (r *BWResource) Reset() {
	for i := range r.used {
		r.used[i] = 0
	}
	r.base = 0
	r.minFree = 0
	r.skipFrom, r.skipTo = 0, 0
	r.BytesServed = 0
	r.QueueCycles = 0
}
