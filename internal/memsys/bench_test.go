package memsys

import (
	"math/rand"
	"testing"
)

// BenchmarkPageTableHome measures the lookup cost the simulator pays on
// every L2 miss and every memory-side access, on a table shaped like
// the simulator's: a contiguous reserved layout served by the dense
// backing, with a stream of addresses that revisits assigned pages.
func BenchmarkPageTableHome(b *testing.B) {
	const base = uint64(16 * 1024 * 1024)
	const bytes = uint64(256 * 1024 * 1024)

	bench := func(b *testing.B, dense bool) {
		pt := NewPageTable(8)
		if dense {
			pt.Reserve(base, bytes)
		}
		pages := bytes / PageBytes
		rng := rand.New(rand.NewSource(1))
		addrs := make([]uint64, 4096)
		for i := range addrs {
			addrs[i] = base + (rng.Uint64()%pages)*PageBytes
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pt.Home(addrs[i&(len(addrs)-1)], i&7)
		}
	}

	// dense is the simulator's configuration (newGPU reserves the whole
	// layout); map is the fallback for out-of-range addresses and the
	// pre-rewrite cost for every lookup.
	b.Run("dense", func(b *testing.B) { bench(b, true) })
	b.Run("map", func(b *testing.B) { bench(b, false) })
}

// BenchmarkBWAcquire measures the per-line-fill reservation cost at two
// operating points: uncontended (every request fits its arrival
// bucket) and saturated (requests spill forward and the walk leans on
// the first-non-full hint).
func BenchmarkBWAcquire(b *testing.B) {
	b.Run("uncontended", func(b *testing.B) {
		r := NewBWResource("bench", 256)
		for i := 0; i < b.N; i++ {
			r.Acquire(float64(i)*4, 128)
		}
	})
	b.Run("saturated", func(b *testing.B) {
		// Offered load of 4x the service rate: the hint must keep the
		// walk O(1) amortized instead of re-walking full buckets.
		r := NewBWResource("bench", 32)
		for i := 0; i < b.N; i++ {
			r.Acquire(float64(i), 128)
		}
	})
}

// BenchmarkCacheAccessSoA isolates the three control paths of the flat
// SoA tag store at the simulator's L1 geometry: the one-compare
// hit-at-MRU exit (the streaming common case), a hit deep in the set
// (the copy-rotate path), and a guaranteed miss (the evict-insert
// path). Together with the mixed-stream BenchmarkCacheAccess these are
// the per-line costs the memory-system fast path is built around.
func BenchmarkCacheAccessSoA(b *testing.B) {
	b.Run("hit-mru", func(b *testing.B) {
		c := MustNewCache(16*1024, 4)
		c.Access(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Access(0)
		}
	})
	b.Run("hit-mid-set", func(b *testing.B) {
		c := MustNewCache(16*1024, 4)
		// Two resident lines of one set, alternated: every access hits
		// at way 1 and rotates it to MRU.
		sets := uint64(c.Lines() / c.Ways())
		a0, a1 := uint64(0), sets*128
		c.Access(a0)
		c.Access(a1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i&1 == 0 {
				c.Access(a0)
			} else {
				c.Access(a1)
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		c := MustNewCache(16*1024, 4)
		// A line walk over 8x the capacity: by the time a set is
		// revisited its ways have turned over, so every access evicts.
		lines := uint64(c.Lines()) * 8
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Access((uint64(i) % lines) * 128)
		}
	})
}

// BenchmarkCacheAccess measures the tag-lookup cost of the simulator's
// L1/L2 geometry on a mixed hit/miss stream (a working set ~2x the
// cache), the per-line cost of every simulated memory access.
func BenchmarkCacheAccess(b *testing.B) {
	c := MustNewCache(2*1024*1024, 16)
	lines := uint64(c.Lines()) * 2
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 8192)
	for i := range addrs {
		addrs[i] = (rng.Uint64() % lines) * 128
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(len(addrs)-1)])
	}
}
