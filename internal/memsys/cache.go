// Package memsys provides the memory-system building blocks of the
// multi-GPM simulator: set-associative caches with LRU replacement, a
// page table implementing first-touch (or striped) page placement, and
// bandwidth-limited resources that model DRAM stacks and other shared
// throughput constraints with organic queueing delay.
package memsys

import (
	"fmt"

	"gpujoule/internal/isa"
)

// Cache is a set-associative, LRU, write-allocate cache with 128-byte
// lines. It tracks tags only (no data), which is all a performance and
// energy study needs.
//
// The tag store is a single flat array in struct-of-arrays layout: set
// s occupies tags[s*ways : (s+1)*ways], most-recently-used first. The
// flat layout removes the per-set slice header load the previous
// []cacheSet representation paid on every access, and lets the
// hit-at-MRU common case resolve with one compare against the set's
// first word before any loop is entered.
//
// Tags are stored as 32-bit words: a tag is the line index plus one,
// and line indexes stay below 2^32 for any address under 2^32 line
// sizes (~549 GB with 128-byte lines), far beyond any simulated
// footprint — Access checks the bound and panics rather than alias two
// distinct lines. Halving the tag word halves the resident tag-store
// footprint (a module's multi-megabyte L2 walks a tag array bigger
// than the host's L1d; the simulator's own cache misses on that array
// are a measured cost), with identical hit/miss verdicts.
type Cache struct {
	// tags holds all sets contiguously, MRU first within each set. Tag
	// 0 is reserved as invalid; stored tags are the line index offset
	// by 1 to allow address 0.
	tags    []uint32
	setMask uint64
	ways    int

	// Statistics.
	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of the given total size and associativity.
// sizeBytes must be a multiple of ways*isa.LineBytes, and the resulting
// set count must be a power of two.
func NewCache(sizeBytes, ways int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("memsys: cache size %d and ways %d must be positive", sizeBytes, ways)
	}
	lines := sizeBytes / isa.LineBytes
	if lines*isa.LineBytes != sizeBytes {
		return nil, fmt.Errorf("memsys: cache size %d is not a multiple of the %d-byte line", sizeBytes, isa.LineBytes)
	}
	nsets := lines / ways
	if nsets*ways != lines {
		return nil, fmt.Errorf("memsys: %d lines do not divide into %d ways", lines, ways)
	}
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("memsys: set count %d is not a power of two", nsets)
	}
	return &Cache{
		tags:    make([]uint32, nsets*ways),
		setMask: uint64(nsets - 1),
		ways:    ways,
	}, nil
}

// MustNewCache is NewCache that panics on configuration error; for use
// with static, known-good geometries.
func MustNewCache(sizeBytes, ways int) *Cache {
	c, err := NewCache(sizeBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Lines returns the total line capacity of the cache.
func (c *Cache) Lines() int { return len(c.tags) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Access looks up the line containing addr, allocating it on a miss
// (evicting LRU). It returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	line := addr / isa.LineBytes
	if line >= 1<<32-1 {
		panic(fmt.Sprintf("memsys: address %#x beyond the 32-bit tag range", addr))
	}
	tag := uint32(line + 1) // reserve 0 as the invalid tag
	base := int(line&c.setMask) * c.ways
	set := c.tags[base : base+c.ways : base+c.ways]
	if set[0] == tag {
		// Hit at MRU: replacement state is already correct, no rotation.
		return true
	}
	for i := 1; i < len(set); i++ {
		if set[i] == tag {
			// Move to MRU position.
			copy(set[1:i+1], set[:i])
			set[0] = tag
			return true
		}
	}
	c.Misses++
	// Evict LRU (last slot), insert at MRU.
	copy(set[1:], set[:len(set)-1])
	set[0] = tag
	return false
}

// Probe reports whether the line containing addr is present without
// updating replacement state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	line := addr / isa.LineBytes
	if line >= 1<<32-1 {
		panic(fmt.Sprintf("memsys: address %#x beyond the 32-bit tag range", addr))
	}
	tag := uint32(line + 1)
	base := int(line&c.setMask) * c.ways
	set := c.tags[base : base+c.ways]
	for _, t := range set {
		if t == tag {
			return true
		}
	}
	return false
}

// Invalidate flushes the entire cache. The simulator calls this at
// kernel boundaries to model software-based coherence of private
// caches (§V-A).
func (c *Cache) Invalidate() {
	clear(c.tags)
}

// InvalidateIf evicts every line whose address satisfies pred. Used for
// selective invalidation of remote lines in module-side L2 caches at
// kernel boundaries. Survivors compact toward the MRU end of their set,
// preserving recency order; vacated ways zero.
func (c *Cache) InvalidateIf(pred func(addr uint64) bool) {
	for base := 0; base < len(c.tags); base += c.ways {
		set := c.tags[base : base+c.ways]
		w := 0
		for _, t := range set {
			if t == 0 {
				continue
			}
			addr := (uint64(t) - 1) * isa.LineBytes
			if !pred(addr) {
				set[w] = t
				w++
			}
		}
		for ; w < len(set); w++ {
			set[w] = 0
		}
	}
}

// HitRate returns the fraction of accesses that hit, or 0 with no
// accesses.
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return 1 - float64(c.Misses)/float64(c.Accesses)
}

// ResetStats zeroes the access counters without touching contents.
func (c *Cache) ResetStats() {
	c.Accesses = 0
	c.Misses = 0
}
