// Package memsys provides the memory-system building blocks of the
// multi-GPM simulator: set-associative caches with LRU replacement, a
// page table implementing first-touch (or striped) page placement, and
// bandwidth-limited resources that model DRAM stacks and other shared
// throughput constraints with organic queueing delay.
package memsys

import (
	"fmt"

	"gpujoule/internal/isa"
)

// Cache is a set-associative, LRU, write-allocate cache with 128-byte
// lines. It tracks tags only (no data), which is all a performance and
// energy study needs.
type Cache struct {
	sets    []cacheSet
	setMask uint64
	ways    int

	// Statistics.
	Accesses uint64
	Misses   uint64
}

type cacheSet struct {
	// ways, most-recently-used first. Tag 0 is reserved as invalid; the
	// cache offsets stored tags by 1 to allow address 0.
	tags []uint64
}

// NewCache builds a cache of the given total size and associativity.
// sizeBytes must be a multiple of ways*isa.LineBytes, and the resulting
// set count must be a power of two.
func NewCache(sizeBytes, ways int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("memsys: cache size %d and ways %d must be positive", sizeBytes, ways)
	}
	lines := sizeBytes / isa.LineBytes
	if lines*isa.LineBytes != sizeBytes {
		return nil, fmt.Errorf("memsys: cache size %d is not a multiple of the %d-byte line", sizeBytes, isa.LineBytes)
	}
	nsets := lines / ways
	if nsets*ways != lines {
		return nil, fmt.Errorf("memsys: %d lines do not divide into %d ways", lines, ways)
	}
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("memsys: set count %d is not a power of two", nsets)
	}
	c := &Cache{
		sets:    make([]cacheSet, nsets),
		setMask: uint64(nsets - 1),
		ways:    ways,
	}
	backing := make([]uint64, nsets*ways)
	for i := range c.sets {
		c.sets[i].tags = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	return c, nil
}

// MustNewCache is NewCache that panics on configuration error; for use
// with static, known-good geometries.
func MustNewCache(sizeBytes, ways int) *Cache {
	c, err := NewCache(sizeBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Lines returns the total line capacity of the cache.
func (c *Cache) Lines() int { return len(c.sets) * c.ways }

// Access looks up the line containing addr, allocating it on a miss
// (evicting LRU). It returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	line := addr / isa.LineBytes
	tag := line + 1 // reserve 0 as the invalid tag
	set := &c.sets[line&c.setMask]
	for i, t := range set.tags {
		if t == tag {
			// Move to MRU position.
			copy(set.tags[1:i+1], set.tags[:i])
			set.tags[0] = tag
			return true
		}
	}
	c.Misses++
	// Evict LRU (last slot), insert at MRU.
	copy(set.tags[1:], set.tags[:len(set.tags)-1])
	set.tags[0] = tag
	return false
}

// Probe reports whether the line containing addr is present without
// updating replacement state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	line := addr / isa.LineBytes
	tag := line + 1
	set := &c.sets[line&c.setMask]
	for _, t := range set.tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Invalidate flushes the entire cache. The simulator calls this at
// kernel boundaries to model software-based coherence of private
// caches (§V-A).
func (c *Cache) Invalidate() {
	for i := range c.sets {
		tags := c.sets[i].tags
		for j := range tags {
			tags[j] = 0
		}
	}
}

// InvalidateIf evicts every line whose address satisfies pred. Used for
// selective invalidation of remote lines in module-side L2 caches at
// kernel boundaries.
func (c *Cache) InvalidateIf(pred func(addr uint64) bool) {
	for i := range c.sets {
		tags := c.sets[i].tags
		w := 0
		for _, t := range tags {
			if t == 0 {
				continue
			}
			addr := (t - 1) * isa.LineBytes
			if !pred(addr) {
				tags[w] = t
				w++
			}
		}
		for ; w < len(tags); w++ {
			tags[w] = 0
		}
	}
}

// HitRate returns the fraction of accesses that hit, or 0 with no
// accesses.
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return 1 - float64(c.Misses)/float64(c.Accesses)
}

// ResetStats zeroes the access counters without touching contents.
func (c *Cache) ResetStats() {
	c.Accesses = 0
	c.Misses = 0
}
