package memsys

import (
	"math/rand"
	"slices"
	"testing"

	"gpujoule/internal/isa"
)

// refCache is an executable specification of Cache: per-set slices of
// tags in MRU-first order, manipulated with the obvious list
// operations. The flat SoA Cache must match it access for access —
// hit/miss verdicts, Probe answers, and the full replacement state.
type refCache struct {
	sets [][]uint64
	ways int
}

func newRefCache(nsets, ways int) *refCache {
	return &refCache{sets: make([][]uint64, nsets), ways: ways}
}

func (r *refCache) set(addr uint64) int {
	return int((addr / isa.LineBytes) % uint64(len(r.sets)))
}

func (r *refCache) access(addr uint64) bool {
	tag := addr/isa.LineBytes + 1
	s := r.sets[r.set(addr)]
	if i := slices.Index(s, tag); i >= 0 {
		r.sets[r.set(addr)] = append([]uint64{tag}, append(slices.Clone(s[:i]), s[i+1:]...)...)
		return true
	}
	s = append([]uint64{tag}, s...)
	if len(s) > r.ways {
		s = s[:r.ways]
	}
	r.sets[r.set(addr)] = s
	return false
}

func (r *refCache) probe(addr uint64) bool {
	return slices.Contains(r.sets[r.set(addr)], addr/isa.LineBytes+1)
}

func (r *refCache) invalidateIf(pred func(addr uint64) bool) {
	for i, s := range r.sets {
		var keep []uint64
		for _, tag := range s {
			if !pred((tag - 1) * isa.LineBytes) {
				keep = append(keep, tag)
			}
		}
		r.sets[i] = keep
	}
}

// tagsOf renders the SoA cache's set s as a MRU-first tag list with
// trailing invalid slots dropped, for comparison against the model.
func tagsOf(c *Cache, s int) []uint64 {
	set := c.tags[s*c.ways : (s+1)*c.ways]
	var out []uint64
	for _, t := range set {
		if t != 0 {
			out = append(out, uint64(t))
		}
	}
	return out
}

func sameState(t *testing.T, step int, c *Cache, r *refCache) {
	t.Helper()
	for s := range r.sets {
		if !slices.Equal(tagsOf(c, s), r.sets[s]) {
			t.Fatalf("step %d set %d: SoA %v != model %v", step, s, tagsOf(c, s), r.sets[s])
		}
	}
}

// TestCacheMatchesReferenceModel drives the flat SoA cache and the
// list-based reference model with the same randomized operation stream
// (accesses with skewed locality, probes, selective invalidations) and
// requires bit-identical verdicts and replacement state throughout.
func TestCacheMatchesReferenceModel(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nsets, ways := 8, 4
		c := MustNewCache(nsets*ways*isa.LineBytes, ways)
		ref := newRefCache(nsets, ways)

		// A small address pool concentrates reuse so hits, MRU moves,
		// and evictions all occur often.
		pool := make([]uint64, 64)
		for i := range pool {
			pool[i] = uint64(rng.Intn(1<<12)) * isa.LineBytes
		}
		for step := 0; step < 2000; step++ {
			switch op := rng.Intn(10); {
			case op < 7:
				addr := pool[rng.Intn(len(pool))]
				if got, want := c.Access(addr), ref.access(addr); got != want {
					t.Fatalf("seed %d step %d: Access(%#x) = %v, model says %v", seed, step, addr, got, want)
				}
			case op < 9:
				addr := pool[rng.Intn(len(pool))]
				if got, want := c.Probe(addr), ref.probe(addr); got != want {
					t.Fatalf("seed %d step %d: Probe(%#x) = %v, model says %v", seed, step, addr, got, want)
				}
			default:
				k := uint64(1 + rng.Intn(7))
				pred := func(addr uint64) bool { return (addr/isa.LineBytes)%8 == k }
				c.InvalidateIf(pred)
				ref.invalidateIf(pred)
			}
			sameState(t, step, c, ref)
		}
	}
}

// TestCacheInvalidateIfCompactsRecencyOrder pins the documented
// compaction contract directly: survivors pack toward the MRU end in
// their original recency order and vacated ways zero.
func TestCacheInvalidateIfCompactsRecencyOrder(t *testing.T) {
	c := MustNewCache(4*isa.LineBytes, 4) // one set, four ways
	// Touch lines 0..3 of the set's residence class; MRU order is 3,2,1,0.
	for i := uint64(0); i < 4; i++ {
		c.Access(i * isa.LineBytes)
	}
	// Drop the middle of the recency order (lines 2 and 1).
	c.InvalidateIf(func(addr uint64) bool {
		l := addr / isa.LineBytes
		return l == 1 || l == 2
	})
	want := []uint64{4, 1} // tags are line+1; survivors 3 then 0, MRU first
	if got := tagsOf(c, 0); !slices.Equal(got, want) {
		t.Fatalf("survivors = %v, want %v", got, want)
	}
	if c.tags[2] != 0 || c.tags[3] != 0 {
		t.Fatalf("vacated ways not zeroed: %v", c.tags)
	}
}

// TestCacheInvalidateIfNoOpIsIdentity is the property the simulator's
// remote-line invalidation skip rests on (internal/sim gates the
// launch-boundary InvalidateIf behind an l2HasRemote flag): when no
// line satisfies pred, the sweep must leave the tag store byte-for-
// byte unchanged, so skipping it entirely is unobservable.
func TestCacheInvalidateIfNoOpIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := MustNewCache(16*4*isa.LineBytes, 4)
	for i := 0; i < 500; i++ {
		c.Access(uint64(rng.Intn(1<<10)) * isa.LineBytes)
	}
	before := slices.Clone(c.tags)
	c.InvalidateIf(func(uint64) bool { return false })
	if !slices.Equal(c.tags, before) {
		t.Fatal("no-op InvalidateIf changed the tag store")
	}
}
