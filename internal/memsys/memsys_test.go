package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gpujoule/internal/isa"
)

func TestCacheGeometryErrors(t *testing.T) {
	cases := []struct {
		size, ways int
	}{
		{0, 4},
		{32 << 10, 0},
		{100, 4},         // not a multiple of the line size
		{3 * 128, 2},     // lines do not divide into ways
		{6 * 128 * 4, 4}, // 6 sets: not a power of two
	}
	for _, c := range cases {
		if _, err := NewCache(c.size, c.ways); err == nil {
			t.Errorf("NewCache(%d, %d) should fail", c.size, c.ways)
		}
	}
	if _, err := NewCache(32<<10, 4); err != nil {
		t.Errorf("valid 32KB/4-way cache rejected: %v", err)
	}
}

func TestMustNewCachePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewCache should panic on bad geometry")
		}
	}()
	MustNewCache(100, 3)
}

func TestCacheHitMiss(t *testing.T) {
	c := MustNewCache(2*128*4, 2) // 4 sets, 2 ways, 8 lines
	if c.Access(0) {
		t.Error("cold access should miss")
	}
	if !c.Access(0) {
		t.Error("second access should hit")
	}
	if !c.Access(64) {
		t.Error("same-line access should hit")
	}
	if c.Accesses != 3 || c.Misses != 1 {
		t.Errorf("stats accesses=%d misses=%d, want 3/1", c.Accesses, c.Misses)
	}
	if hr := c.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Errorf("hit rate %f, want 2/3", hr)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := MustNewCache(128*4, 2) // 2 sets, 2 ways
	// Three lines mapping to set 0: line numbers 0, 2, 4.
	a, b, d := uint64(0), uint64(2*128), uint64(4*128)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is MRU, b is LRU
	c.Access(d) // evicts b
	if !c.Probe(a) {
		t.Error("a should survive (MRU)")
	}
	if c.Probe(b) {
		t.Error("b should be evicted (LRU)")
	}
	if !c.Probe(d) {
		t.Error("d should be resident")
	}
}

func TestCacheProbeDoesNotTouch(t *testing.T) {
	c := MustNewCache(128*4, 2)
	c.Access(0)
	acc, miss := c.Accesses, c.Misses
	c.Probe(0)
	c.Probe(1 << 20)
	if c.Accesses != acc || c.Misses != miss {
		t.Error("Probe must not update statistics")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := MustNewCache(32<<10, 4)
	for i := uint64(0); i < 16; i++ {
		c.Access(i * 128)
	}
	c.Invalidate()
	for i := uint64(0); i < 16; i++ {
		if c.Probe(i * 128) {
			t.Fatalf("line %d survived Invalidate", i)
		}
	}
}

func TestCacheInvalidateIf(t *testing.T) {
	c := MustNewCache(32<<10, 4)
	for i := uint64(0); i < 32; i++ {
		c.Access(i * 128)
	}
	// Drop odd lines only.
	c.InvalidateIf(func(addr uint64) bool { return (addr/128)%2 == 1 })
	for i := uint64(0); i < 32; i++ {
		got := c.Probe(i * 128)
		want := i%2 == 0
		if got != want {
			t.Errorf("line %d resident=%v, want %v", i, got, want)
		}
	}
}

func TestCacheAddressZero(t *testing.T) {
	// Address 0 must be cacheable (tag 0 is reserved internally).
	c := MustNewCache(128*8, 2)
	c.Access(0)
	if !c.Probe(0) {
		t.Error("address 0 not stored")
	}
}

func TestCacheResetStats(t *testing.T) {
	c := MustNewCache(128*8, 2)
	c.Access(0)
	c.ResetStats()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("ResetStats should zero counters")
	}
	if !c.Probe(0) {
		t.Error("ResetStats must not evict contents")
	}
}

func TestCacheWorkingSetProperty(t *testing.T) {
	// Property: re-streaming a working set that fits the cache hits on
	// every post-warmup access.
	f := func(seed int64) bool {
		c := MustNewCache(64*128, 4) // 64 lines
		r := rand.New(rand.NewSource(seed))
		lines := make([]uint64, 32)
		base := uint64(r.Intn(1000)) * 128 * 1024
		for i := range lines {
			lines[i] = base + uint64(i)*128
		}
		for _, a := range lines { // warmup
			c.Access(a)
		}
		for _, a := range lines {
			if !c.Access(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPageTableFirstTouch(t *testing.T) {
	pt := NewPageTable(4)
	home := pt.Home(0, 2)
	if home != 2 {
		t.Errorf("first touch should assign to toucher 2, got %d", home)
	}
	if got := pt.Home(PageBytes-1, 3); got != 2 {
		t.Errorf("same page must keep its home, got %d", got)
	}
	if got := pt.Home(PageBytes, 3); got != 3 {
		t.Errorf("next page homes on its toucher, got %d", got)
	}
	if pt.Pages() != 2 || pt.FirstTouchAssignments != 2 {
		t.Error("page accounting wrong")
	}
}

func TestPageTableLookup(t *testing.T) {
	pt := NewPageTable(2)
	if _, ok := pt.Lookup(0); ok {
		t.Error("untouched page should not resolve")
	}
	pt.Home(0, 1)
	if home, ok := pt.Lookup(100); !ok || home != 1 {
		t.Error("lookup after touch failed")
	}
}

func TestPageTableStripe(t *testing.T) {
	pt := NewPageTable(4)
	pt.Stripe(0, 8*PageBytes)
	dist := pt.Distribution()
	for g, n := range dist {
		if n != 2 {
			t.Errorf("GPM %d holds %d pages, want 2", g, n)
		}
	}
	// Striping must not override existing homes.
	pt2 := NewPageTable(4)
	pt2.Home(0, 3)
	pt2.Stripe(0, 2*PageBytes)
	if home, _ := pt2.Lookup(0); home != 3 {
		t.Error("Stripe overrode a first-touch assignment")
	}
}

func TestPageTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range toucher should panic")
		}
	}()
	pt := NewPageTable(2)
	pt.Home(0, 5)
}

func TestBWResourceUncontended(t *testing.T) {
	r := NewBWResource("dram", 256)
	done := r.Acquire(1000, 128)
	if done < 1000.5 || done > 1000.5+defaultBucketCycles {
		t.Errorf("uncontended completion %f, want ≈1000.5", done)
	}
}

func TestBWResourceMinimumServiceTime(t *testing.T) {
	// Completion can never beat bytes/bandwidth.
	f := func(now uint16, kb uint8) bool {
		r := NewBWResource("x", 64)
		bytes := (int(kb) + 1) * 128
		done := r.Acquire(float64(now), bytes)
		return done >= float64(now)+float64(bytes)/64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBWResourceSaturation(t *testing.T) {
	// Pushing 2x the capacity of a window must take ~2x the window.
	r := NewBWResource("dram", 100)
	var last float64
	for i := 0; i < 2000; i++ {
		last = r.Acquire(0, 100) // 2000 * 100 bytes at 100 B/cyc = 2000 cycles
	}
	if last < 1900 || last > 2200 {
		t.Errorf("saturated completion %f, want ≈2000", last)
	}
	if u := r.Utilization(2000); u < 0.95 {
		t.Errorf("utilization %f, want ≈1", u)
	}
}

func TestBWResourceBackfill(t *testing.T) {
	// A request issued later but arriving earlier must be able to use
	// capacity before a far-future request — the property whose absence
	// produced the pointer-chase convoy pathology.
	r := NewBWResource("dram", 256)
	future := r.Acquire(10000, 128)
	early := r.Acquire(100, 128)
	if early >= future {
		t.Errorf("early request (done %f) starved by future request (done %f)", early, future)
	}
	if early > 200+defaultBucketCycles {
		t.Errorf("early request should complete promptly, done %f", early)
	}
}

func TestBWResourceWindowAdvance(t *testing.T) {
	r := NewBWResource("x", 10)
	// Jump far beyond the window; must not panic, must serve promptly.
	far := float64(defaultWindowBuckets*defaultBucketCycles) * 10
	done := r.Acquire(far, 100)
	if done < far+10 || done > far+10+defaultBucketCycles {
		t.Errorf("far-future request mishandled: done %f for now %f", done, far)
	}
	// A straggler older than the window clamps to the window start.
	done2 := r.Acquire(0, 100)
	if done2 <= 0 {
		t.Error("straggler must still be served")
	}
}

func TestBWResourceReset(t *testing.T) {
	r := NewBWResource("x", 10)
	r.Acquire(0, 1000)
	r.Reset()
	if r.BytesServed != 0 || r.BusyCycles() != 0 {
		t.Error("Reset should clear statistics")
	}
	if done := r.Acquire(0, 10); done > 1+defaultBucketCycles {
		t.Errorf("post-reset resource should be idle, done %f", done)
	}
}

func TestBWResourceMonotoneInLoadProperty(t *testing.T) {
	// Property: with equal arrival times, adding more prior traffic
	// never makes a later request finish sooner.
	f := func(nReq uint8) bool {
		light := NewBWResource("l", 32)
		heavy := NewBWResource("h", 32)
		for i := 0; i < int(nReq); i++ {
			heavy.Acquire(0, 128)
		}
		return heavy.Acquire(0, 128) >= light.Acquire(0, 128)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBWResourcePanicsOnZeroBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bandwidth should panic")
		}
	}()
	NewBWResource("bad", 0)
}

var _ = isa.LineBytes // keep the import for geometry-derived constants

func TestBWResourceQueueCycles(t *testing.T) {
	// One small request on an idle resource sees no queueing at all
	// (the bucket has headroom, so completion is exactly unloaded).
	r := NewBWResource("dram", 256)
	r.Acquire(0, 128)
	if r.QueueCycles != 0 {
		t.Errorf("idle resource accumulated %g queue cycles", r.QueueCycles)
	}

	// Saturating the resource must accumulate queueing delay: the last
	// request completes roughly a full window after its unloaded time.
	sat := NewBWResource("dram", 100)
	for i := 0; i < 2000; i++ {
		sat.Acquire(0, 100)
	}
	if sat.QueueCycles < 1000 {
		t.Errorf("saturated resource queue cycles %g, want substantial delay", sat.QueueCycles)
	}

	sat.Reset()
	if sat.QueueCycles != 0 {
		t.Error("Reset must clear QueueCycles")
	}
}
