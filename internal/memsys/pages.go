package memsys

import "fmt"

// PageBytes is the placement granularity used by the page table. 64 KB
// matches the large-page granularity assumed by prior multi-module GPU
// work for first-touch placement.
const PageBytes = 64 * 1024

// PageTable maps pages of the global address space to home GPMs. It
// implements first-touch placement (the configuration of §V-A1) and
// striped placement for pre-placed data.
//
// Lookups are served from a dense array when the caller reserves the
// address range it will lay data out in (Reserve): the simulator's
// region layout is contiguous from a fixed base, so Home — called on
// every L2 miss and every memory-side access — becomes an array index
// instead of a map probe. Addresses outside the reserved range fall
// back to a map, so the table stays correct for arbitrary addresses.
type PageTable struct {
	gpms int

	// densePage is the first page of the reserved range; dense[i] is the
	// home of page densePage+i, or unassignedHome.
	densePage uint64
	dense     []int16

	// homes backs pages outside the reserved range.
	homes map[uint64]int

	// assigned counts pages with homes across both backings.
	assigned int

	// FirstTouchAssignments counts pages homed by first touch.
	FirstTouchAssignments uint64
}

// unassignedHome marks a dense slot with no home yet.
const unassignedHome = int16(-1)

// NewPageTable returns a page table for a GPU with the given GPM count.
func NewPageTable(gpms int) *PageTable {
	if gpms <= 0 {
		panic(fmt.Sprintf("memsys: page table needs positive GPM count, got %d", gpms))
	}
	if gpms > 1<<15-1 {
		panic(fmt.Sprintf("memsys: page table GPM count %d exceeds dense-home range", gpms))
	}
	return &PageTable{gpms: gpms, homes: make(map[uint64]int)}
}

// GPMs returns the number of modules the table distributes pages over.
func (pt *PageTable) GPMs() int { return pt.gpms }

// Reserve backs the pages of [base, base+bytes) with the dense array.
// It must be called before any page is assigned (the simulator reserves
// its whole region layout right after computing it); reserving twice or
// after an assignment panics.
func (pt *PageTable) Reserve(base, bytes uint64) {
	if pt.dense != nil || pt.assigned > 0 {
		panic("memsys: page table Reserve after use")
	}
	if bytes == 0 {
		return
	}
	first := base / PageBytes
	last := (base + bytes - 1) / PageBytes
	pt.densePage = first
	pt.dense = make([]int16, last-first+1)
	for i := range pt.dense {
		pt.dense[i] = unassignedHome
	}
}

// Home returns the home GPM of the page containing addr, assigning it
// to toucher (the GPM issuing the access) if the page is untouched.
func (pt *PageTable) Home(addr uint64, toucher int) int {
	page := addr / PageBytes
	// Unsigned subtraction: pages below densePage wrap to huge values
	// and fail the bound check, taking the map path.
	if i := page - pt.densePage; i < uint64(len(pt.dense)) {
		if home := pt.dense[i]; home != unassignedHome {
			return int(home)
		}
		pt.checkToucher(toucher)
		pt.dense[i] = int16(toucher)
		pt.assigned++
		pt.FirstTouchAssignments++
		return toucher
	}
	if home, ok := pt.homes[page]; ok {
		return home
	}
	pt.checkToucher(toucher)
	pt.homes[page] = toucher
	pt.assigned++
	pt.FirstTouchAssignments++
	return toucher
}

func (pt *PageTable) checkToucher(toucher int) {
	if toucher < 0 || toucher >= pt.gpms {
		panic(fmt.Sprintf("memsys: toucher GPM %d out of range [0,%d)", toucher, pt.gpms))
	}
}

// Lookup returns the home of the page containing addr without
// assigning, and whether it was assigned.
func (pt *PageTable) Lookup(addr uint64) (int, bool) {
	page := addr / PageBytes
	if i := page - pt.densePage; i < uint64(len(pt.dense)) {
		if home := pt.dense[i]; home != unassignedHome {
			return int(home), true
		}
		return 0, false
	}
	home, ok := pt.homes[page]
	return home, ok
}

// Stripe pre-assigns every page of [base, base+bytes) round-robin
// across GPMs, modeling data whose placement was established by an
// earlier phase with a different access shape.
func (pt *PageTable) Stripe(base, bytes uint64) {
	first := base / PageBytes
	last := (base + bytes - 1) / PageBytes
	for page := first; page <= last; page++ {
		home := int(page % uint64(pt.gpms))
		if i := page - pt.densePage; i < uint64(len(pt.dense)) {
			if pt.dense[i] == unassignedHome {
				pt.dense[i] = int16(home)
				pt.assigned++
			}
			continue
		}
		if _, ok := pt.homes[page]; !ok {
			pt.homes[page] = home
			pt.assigned++
		}
	}
}

// Pages returns the number of pages with assigned homes.
func (pt *PageTable) Pages() int { return pt.assigned }

// Distribution returns the number of pages homed on each GPM.
func (pt *PageTable) Distribution() []int {
	dist := make([]int, pt.gpms)
	for _, home := range pt.dense {
		if home != unassignedHome {
			dist[home]++
		}
	}
	for _, home := range pt.homes {
		dist[home]++
	}
	return dist
}
