package memsys

import "fmt"

// PageBytes is the placement granularity used by the page table. 64 KB
// matches the large-page granularity assumed by prior multi-module GPU
// work for first-touch placement.
const PageBytes = 64 * 1024

// PageTable maps pages of the global address space to home GPMs. It
// implements first-touch placement (the configuration of §V-A1) and
// striped placement for pre-placed data.
type PageTable struct {
	gpms  int
	homes map[uint64]int

	// FirstTouchAssignments counts pages homed by first touch.
	FirstTouchAssignments uint64
}

// NewPageTable returns a page table for a GPU with the given GPM count.
func NewPageTable(gpms int) *PageTable {
	if gpms <= 0 {
		panic(fmt.Sprintf("memsys: page table needs positive GPM count, got %d", gpms))
	}
	return &PageTable{gpms: gpms, homes: make(map[uint64]int)}
}

// GPMs returns the number of modules the table distributes pages over.
func (pt *PageTable) GPMs() int { return pt.gpms }

// Home returns the home GPM of the page containing addr, assigning it
// to toucher (the GPM issuing the access) if the page is untouched.
func (pt *PageTable) Home(addr uint64, toucher int) int {
	page := addr / PageBytes
	if home, ok := pt.homes[page]; ok {
		return home
	}
	if toucher < 0 || toucher >= pt.gpms {
		panic(fmt.Sprintf("memsys: toucher GPM %d out of range [0,%d)", toucher, pt.gpms))
	}
	pt.homes[page] = toucher
	pt.FirstTouchAssignments++
	return toucher
}

// Lookup returns the home of the page containing addr without
// assigning, and whether it was assigned.
func (pt *PageTable) Lookup(addr uint64) (int, bool) {
	home, ok := pt.homes[addr/PageBytes]
	return home, ok
}

// Stripe pre-assigns every page of [base, base+bytes) round-robin
// across GPMs, modeling data whose placement was established by an
// earlier phase with a different access shape.
func (pt *PageTable) Stripe(base, bytes uint64) {
	first := base / PageBytes
	last := (base + bytes - 1) / PageBytes
	for page := first; page <= last; page++ {
		if _, ok := pt.homes[page]; !ok {
			pt.homes[page] = int(page % uint64(pt.gpms))
		}
	}
}

// Pages returns the number of pages with assigned homes.
func (pt *PageTable) Pages() int { return len(pt.homes) }

// Distribution returns the number of pages homed on each GPM.
func (pt *PageTable) Distribution() []int {
	dist := make([]int, pt.gpms)
	for _, home := range pt.homes {
		dist[home]++
	}
	return dist
}
