package metrics_test

import (
	"fmt"

	"gpujoule/internal/metrics"
)

// A design scaled to 8 modules that achieves a 6x speedup while using
// 1.2x the energy: Eq. 2 scores the fraction of linear EDP scaling
// realized.
func ExampleEDPSE() {
	base := metrics.Sample{EnergyJoules: 100, DelaySeconds: 8}
	scaled := metrics.Sample{EnergyJoules: 120, DelaySeconds: 8.0 / 6}

	fmt.Printf("EDPSE = %.1f%%\n", metrics.EDPSE(base, 8, scaled))
	// Output:
	// EDPSE = 62.5%
}

// Parallel efficiency (Eq. 1) ignores energy; EDPSE extends it.
func ExampleParallelEfficiency() {
	fmt.Printf("PE = %.1f%%\n", metrics.ParallelEfficiency(8, 8, 8.0/6))
	// Output:
	// PE = 75.0%
}

// EDiPSE (Eq. 3) generalizes the delay weighting: i=2 uses ED²P, which
// punishes sub-linear speedup harder than EDP does.
func ExampleEDiPSE() {
	base := metrics.Sample{EnergyJoules: 100, DelaySeconds: 8}
	scaled := metrics.Sample{EnergyJoules: 100, DelaySeconds: 2} // 4x on 8 modules

	fmt.Printf("EDPSE  = %.1f%%\n", metrics.EDiPSE(base, 8, scaled, 1))
	fmt.Printf("ED2PSE = %.1f%%\n", metrics.EDiPSE(base, 8, scaled, 2))
	// Output:
	// EDPSE  = 50.0%
	// ED2PSE = 25.0%
}

// Derive bundles the scaling metrics of one design point.
func ExampleDerive() {
	base := metrics.Sample{EnergyJoules: 50, DelaySeconds: 10}
	scaled := metrics.Sample{EnergyJoules: 60, DelaySeconds: 2.5}

	fmt.Println(metrics.Derive(base, 4, scaled))
	// Output:
	// N=4 speedup=4.00x energy=1.20x EDPSE=83.3% PE=100.0%
}
