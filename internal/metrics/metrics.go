// Package metrics implements the efficiency metrics of §III: energy
// delay product (EDP) and its generalizations, parallel efficiency
// (Eq. 1), and the paper's contribution, EDP Scaling Efficiency
// (EDPSE, Eq. 2) with its weighted generalization EDiPSE (Eq. 3).
package metrics

import (
	"fmt"
	"math"
)

// Sample is one (energy, delay) measurement of a design point.
type Sample struct {
	// EnergyJoules is the total energy to solution.
	EnergyJoules float64
	// DelaySeconds is the time to solution.
	DelaySeconds float64
}

// EDP returns the energy-delay product E·D.
func (s Sample) EDP() float64 { return s.EnergyJoules * s.DelaySeconds }

// EDiP returns the generalized energy-delay product E·Dⁱ.
func (s Sample) EDiP(i int) float64 {
	return s.EnergyJoules * math.Pow(s.DelaySeconds, float64(i))
}

// ED2P returns E·D², the latency-weighted variant mentioned in §III.
func (s Sample) ED2P() float64 { return s.EDiP(2) }

// Valid reports whether the sample is physically meaningful.
func (s Sample) Valid() bool {
	return s.EnergyJoules > 0 && s.DelaySeconds > 0 &&
		!math.IsInf(s.EnergyJoules, 0) && !math.IsInf(s.DelaySeconds, 0) &&
		!math.IsNaN(s.EnergyJoules) && !math.IsNaN(s.DelaySeconds)
}

// ParallelEfficiency implements Eq. 1: the fraction (in percent) of
// ideal speedup realized when scaling from 1 to n processors, where t1
// and tn are the respective execution times.
func ParallelEfficiency(t1 float64, n int, tn float64) float64 {
	if n <= 0 || tn <= 0 {
		return math.NaN()
	}
	return t1 * 100 / (float64(n) * tn)
}

// EDPSE implements Eq. 2: EDP Scaling Efficiency in percent, for a
// design scaled from the base sample (one unit of resources) to n
// units. 100% means linear EDP scaling (n× speedup at constant
// energy); values above 100% indicate super-linear speedup or an
// energy decrease.
func EDPSE(base Sample, n int, scaled Sample) float64 {
	return EDiPSE(base, n, scaled, 1)
}

// EDiPSE implements Eq. 3: the generalized scaling efficiency using
// E·Dⁱ as the figure of merit, in percent.
func EDiPSE(base Sample, n int, scaled Sample, i int) float64 {
	if n <= 0 || !base.Valid() || !scaled.Valid() {
		return math.NaN()
	}
	return base.EDiP(i) * 100 / (math.Pow(float64(n), float64(i)) * scaled.EDiP(i))
}

// Speedup returns t_base/t_scaled.
func Speedup(base, scaled Sample) float64 {
	if scaled.DelaySeconds <= 0 {
		return math.NaN()
	}
	return base.DelaySeconds / scaled.DelaySeconds
}

// EnergyRatio returns E_scaled/E_base, the normalized energy of Fig. 2
// and Fig. 10.
func EnergyRatio(base, scaled Sample) float64 {
	if base.EnergyJoules <= 0 {
		return math.NaN()
	}
	return scaled.EnergyJoules / base.EnergyJoules
}

// ScalingPoint bundles the derived metrics of one scaled design point
// relative to a base design.
type ScalingPoint struct {
	// N is the resource multiple of the scaled design.
	N int
	// Speedup is t1/tN.
	Speedup float64
	// EnergyRatio is EN/E1.
	EnergyRatio float64
	// EDPSE is Eq. 2 in percent.
	EDPSE float64
	// ParallelEff is Eq. 1 in percent.
	ParallelEff float64
}

// Derive computes the full scaling point for base → scaled with n
// resource units.
func Derive(base Sample, n int, scaled Sample) ScalingPoint {
	return ScalingPoint{
		N:           n,
		Speedup:     Speedup(base, scaled),
		EnergyRatio: EnergyRatio(base, scaled),
		EDPSE:       EDPSE(base, n, scaled),
		ParallelEff: ParallelEfficiency(base.DelaySeconds, n, scaled.DelaySeconds),
	}
}

func (p ScalingPoint) String() string {
	return fmt.Sprintf("N=%d speedup=%.2fx energy=%.2fx EDPSE=%.1f%% PE=%.1f%%",
		p.N, p.Speedup, p.EnergyRatio, p.EDPSE, p.ParallelEff)
}
