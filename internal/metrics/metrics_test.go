package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEDPFamily(t *testing.T) {
	s := Sample{EnergyJoules: 10, DelaySeconds: 2}
	if s.EDP() != 20 {
		t.Errorf("EDP = %g, want 20", s.EDP())
	}
	if s.ED2P() != 40 {
		t.Errorf("ED2P = %g, want 40", s.ED2P())
	}
	if s.EDiP(0) != 10 {
		t.Errorf("EDiP(0) is just energy, got %g", s.EDiP(0))
	}
	if s.EDiP(3) != 80 {
		t.Errorf("EDiP(3) = %g, want 80", s.EDiP(3))
	}
}

func TestParallelEfficiency(t *testing.T) {
	// Eq. 1: t1=100s, 4 processors, t4=25s => 100%.
	if pe := ParallelEfficiency(100, 4, 25); math.Abs(pe-100) > 1e-9 {
		t.Errorf("ideal PE = %g, want 100", pe)
	}
	// Sub-linear: t4=50s => 50%.
	if pe := ParallelEfficiency(100, 4, 50); math.Abs(pe-50) > 1e-9 {
		t.Errorf("PE = %g, want 50", pe)
	}
	if !math.IsNaN(ParallelEfficiency(100, 0, 25)) {
		t.Error("zero processors is undefined")
	}
}

func TestEDPSEIdealScaling(t *testing.T) {
	// Eq. 2: linear speedup at constant energy gives exactly 100%.
	base := Sample{EnergyJoules: 100, DelaySeconds: 10}
	scaled := Sample{EnergyJoules: 100, DelaySeconds: 10.0 / 8}
	if v := EDPSE(base, 8, scaled); math.Abs(v-100) > 1e-9 {
		t.Errorf("ideal EDPSE = %g, want 100", v)
	}
}

func TestEDPSESuperLinear(t *testing.T) {
	// Footnote 1: super-linear speedup or an energy decrease pushes
	// EDPSE above 100%.
	base := Sample{EnergyJoules: 100, DelaySeconds: 10}
	scaled := Sample{EnergyJoules: 90, DelaySeconds: 10.0 / 9}
	if v := EDPSE(base, 8, scaled); v <= 100 {
		t.Errorf("super-linear EDPSE = %g, want > 100", v)
	}
}

func TestEDPSEPaperExample(t *testing.T) {
	// §III: doubling resources with EDP falling to 0.7x of the base is
	// NOT a good investment — EDPSE is 1/(2*0.7) ≈ 71%, not 100%.
	base := Sample{EnergyJoules: 1, DelaySeconds: 1}
	scaled := Sample{EnergyJoules: 0.7, DelaySeconds: 1} // EDP 0.7x
	if v := EDPSE(base, 2, scaled); math.Abs(v-100/1.4) > 1e-9 {
		t.Errorf("EDPSE = %g, want %g", v, 100/1.4)
	}
}

func TestEDiPSEWeighting(t *testing.T) {
	// Eq. 3 with i=2 (ED2P): linear scaling still gives 100%.
	base := Sample{EnergyJoules: 50, DelaySeconds: 8}
	scaled := Sample{EnergyJoules: 50, DelaySeconds: 2}
	if v := EDiPSE(base, 4, scaled, 2); math.Abs(v-100) > 1e-9 {
		t.Errorf("ED2PSE ideal = %g, want 100", v)
	}
	// Energy growth hurts EDPSE more than ED2PSE when delay is ideal.
	grown := Sample{EnergyJoules: 100, DelaySeconds: 2}
	if e1, e2 := EDiPSE(base, 4, grown, 1), EDiPSE(base, 4, grown, 2); math.Abs(e1-e2) > 1e-9 {
		t.Errorf("pure energy growth hits all exponents equally: %g vs %g", e1, e2)
	}
	// Delay shortfall hurts higher exponents more.
	slow := Sample{EnergyJoules: 50, DelaySeconds: 4}
	if e1, e2 := EDiPSE(base, 4, slow, 1), EDiPSE(base, 4, slow, 2); e2 >= e1 {
		t.Errorf("ED2PSE (%g) should punish slowness harder than EDPSE (%g)", e2, e1)
	}
}

func TestSpeedupAndEnergyRatio(t *testing.T) {
	base := Sample{EnergyJoules: 10, DelaySeconds: 8}
	scaled := Sample{EnergyJoules: 15, DelaySeconds: 2}
	if v := Speedup(base, scaled); v != 4 {
		t.Errorf("speedup = %g, want 4", v)
	}
	if v := EnergyRatio(base, scaled); v != 1.5 {
		t.Errorf("energy ratio = %g, want 1.5", v)
	}
}

func TestInvalidSamples(t *testing.T) {
	bad := Sample{EnergyJoules: 0, DelaySeconds: 1}
	good := Sample{EnergyJoules: 1, DelaySeconds: 1}
	if bad.Valid() {
		t.Error("zero energy is invalid")
	}
	if !math.IsNaN(EDPSE(bad, 2, good)) || !math.IsNaN(EDPSE(good, 2, bad)) {
		t.Error("invalid samples must yield NaN")
	}
	if !math.IsNaN(EDPSE(good, 0, good)) {
		t.Error("non-positive N must yield NaN")
	}
	inf := Sample{EnergyJoules: math.Inf(1), DelaySeconds: 1}
	if inf.Valid() {
		t.Error("infinite energy is invalid")
	}
}

func TestDerive(t *testing.T) {
	base := Sample{EnergyJoules: 100, DelaySeconds: 10}
	scaled := Sample{EnergyJoules: 120, DelaySeconds: 2.5}
	pt := Derive(base, 8, scaled)
	if pt.N != 8 || pt.Speedup != 4 || pt.EnergyRatio != 1.2 {
		t.Errorf("derive wrong: %+v", pt)
	}
	wantEDPSE := (100.0 * 10) * 100 / (8 * 120 * 2.5)
	if math.Abs(pt.EDPSE-wantEDPSE) > 1e-9 {
		t.Errorf("EDPSE = %g, want %g", pt.EDPSE, wantEDPSE)
	}
	if pt.String() == "" {
		t.Error("scaling point must format")
	}
}

func TestEDPSEInverseInNProperty(t *testing.T) {
	// Property: with fixed samples, EDPSE is inversely proportional to
	// the resource count N.
	f := func(e1, d1, e2, d2 uint16, n uint8) bool {
		base := Sample{EnergyJoules: float64(e1) + 1, DelaySeconds: float64(d1) + 1}
		scaled := Sample{EnergyJoules: float64(e2) + 1, DelaySeconds: float64(d2) + 1}
		n1 := int(n%30) + 1
		v1 := EDPSE(base, n1, scaled)
		v2 := EDPSE(base, 2*n1, scaled)
		return math.Abs(v1-2*v2) < 1e-6*math.Max(1, v1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEDPSEMatchesParallelEfficiencyProperty(t *testing.T) {
	// Property: at constant energy, EDPSE degenerates to parallel
	// efficiency (Eq. 2 extends Eq. 1).
	f := func(d1, dn uint16, n uint8) bool {
		t1 := float64(d1) + 1
		tn := float64(dn) + 1
		nn := int(n%31) + 1
		base := Sample{EnergyJoules: 42, DelaySeconds: t1}
		scaled := Sample{EnergyJoules: 42, DelaySeconds: tn}
		return math.Abs(EDPSE(base, nn, scaled)-ParallelEfficiency(t1, nn, tn)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
