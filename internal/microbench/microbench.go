// Package microbench constructs the GPUJoule calibration and
// validation microbenchmarks of §IV-A (Fig. 3, steps 1 and 3):
//
//   - compute benchmarks that execute one PTX instruction class
//     repeatedly at full occupancy with no memory traffic (the
//     Algorithm 1 pattern: registers initialized outside the ROI,
//     compiler effects excluded by construction);
//   - a low-occupancy stall probe that exposes the energy of SM lane
//     stalls;
//   - data-movement benchmarks that isolate one level of the memory
//     hierarchy at a time (shared memory, L1, L2, DRAM), managing
//     warp- and block-level locality so accesses hit exactly the
//     intended level;
//   - mixed validation benchmarks combining FADD64 with each memory
//     level (the Fig. 4a suite).
//
// The L1 and L2 benchmarks carry a DRAM-saturating background stream:
// the memory interface's utilization-dependent background power would
// otherwise be mis-attributed to the cache transactions under
// calibration. The known background transaction costs are subtracted
// during calibration (the Fig. 3 refinement loop).
package microbench

import (
	"fmt"

	"gpujoule/internal/isa"
	"gpujoule/internal/trace"
)

// Kind classifies a microbenchmark.
type Kind uint8

// Microbenchmark kinds.
const (
	// KindCompute isolates one compute instruction class.
	KindCompute Kind = iota
	// KindStall exposes SM lane-stall energy at low occupancy.
	KindStall
	// KindMemory isolates one data-movement transaction class.
	KindMemory
	// KindMixed combines FADD64 with memory traffic for validation.
	KindMixed
)

func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindStall:
		return "stall"
	case KindMemory:
		return "memory"
	case KindMixed:
		return "mixed"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Bench is one microbenchmark with the metadata calibration needs.
type Bench struct {
	// Name identifies the benchmark.
	Name string
	// Kind classifies it.
	Kind Kind
	// App is the runnable trace.
	App *trace.App
	// Op is the stressed instruction class (KindCompute only).
	Op isa.Op
	// Level is the stressed transaction class (KindMemory only).
	Level isa.TxnKind
}

// Steady-state shaping shared by the suite: enough warps to fill the
// 16-SM reference GPM at full occupancy, enough iterations to dwarf
// ramp-up and drain.
const (
	benchGrid  = 256
	benchWarps = 8
	benchIters = 8
)

// ComputeBench isolates one compute instruction class: a pure-ALU
// kernel with zero memory traffic.
func ComputeBench(op isa.Op) Bench {
	if !op.IsCompute() {
		panic(fmt.Sprintf("microbench: %v is not a compute instruction class", op))
	}
	k := &trace.Kernel{
		Name: fmt.Sprintf("ubench-%v", op), Grid: benchGrid, WarpsPerCTA: benchWarps,
		Iters: benchIters,
		Body:  []trace.Inst{{Op: op, Times: 50}},
	}
	app := &trace.App{
		Name:          k.Name,
		Category:      trace.CategoryCompute,
		HostGapCycles: 1, // steady-state ROI measurement
		Launches:      []trace.Launch{{Kernel: k}},
	}
	return Bench{Name: k.Name, Kind: KindCompute, App: app, Op: op}
}

// ComputeSuite returns one compute benchmark per Table Ib instruction
// row.
func ComputeSuite() []Bench {
	ops := isa.ComputeOps()
	out := make([]Bench, 0, len(ops))
	for _, op := range ops {
		out = append(out, ComputeBench(op))
	}
	return out
}

// StallBench runs a single warp per SM through long dependent FFMA
// chains: the SM stalls on the dependency latency between every issue,
// exposing the per-stall energy once the (already calibrated) FFMA
// energy is subtracted.
func StallBench() Bench {
	k := &trace.Kernel{
		Name: "ubench-stall", Grid: 16, WarpsPerCTA: 1, Iters: 64,
		Body: []trace.Inst{{Op: isa.OpFFMA32, Times: 50}},
	}
	app := &trace.App{
		Name:          k.Name,
		Category:      trace.CategoryCompute,
		HostGapCycles: 1,
		Launches:      []trace.Launch{{Kernel: k}},
	}
	return Bench{Name: k.Name, Kind: KindStall, App: app}
}

// SharedBench isolates shared-memory-to-register-file transfers: pure
// on-chip traffic, no global memory at all.
func SharedBench() Bench {
	k := &trace.Kernel{
		Name: "ubench-shm", Grid: benchGrid, WarpsPerCTA: benchWarps, Iters: benchIters,
		Body: []trace.Inst{{Op: isa.OpLoadShared, Times: 24}},
	}
	app := &trace.App{
		Name:          k.Name,
		Category:      trace.CategoryMemory,
		HostGapCycles: 1,
		Launches:      []trace.Launch{{Kernel: k}},
	}
	return Bench{Name: k.Name, Kind: KindMemory, App: app, Level: isa.TxnShmToRF}
}

// backgroundRegion and backgroundLoad give the L1/L2 benchmarks their
// DRAM-saturating background stream (see the package comment).
const backgroundRegionBytes = 96 << 20

func backgroundLoad(region int) trace.Inst {
	return trace.Inst{Op: isa.OpLoadGlobal,
		Mem: &trace.MemAccess{Region: region, Pattern: trace.PatOwn}}
}

// L1Bench isolates L1-to-register-file transfers: each warp cycles
// over a private 3-line working set so the per-SM resident footprint
// fits comfortably in the 32 KB L1 and every post-warmup access hits.
func L1Bench() Bench {
	totalWarps := uint64(benchGrid * benchWarps)
	k := &trace.Kernel{
		Name: "ubench-l1", Grid: benchGrid, WarpsPerCTA: benchWarps, Iters: benchIters,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn}, Times: 24},
			backgroundLoad(1), backgroundLoad(1), backgroundLoad(1),
		},
	}
	app := &trace.App{
		Name:     k.Name,
		Category: trace.CategoryMemory,
		Regions: []trace.Region{
			{Name: "l1set", Bytes: totalWarps * 3 * isa.LineBytes},
			{Name: "bg", Bytes: backgroundRegionBytes},
		},
		HostGapCycles: 1,
		Launches:      []trace.Launch{{Kernel: k}},
	}
	return Bench{Name: k.Name, Kind: KindMemory, App: app, Level: isa.TxnL1ToRF}
}

// L2Bench isolates L2-to-L1 sector transfers: random accesses over a
// region that fits the 2 MB L2 but dwarfs the L1s, so essentially
// every access misses L1 and hits L2 after warmup.
func L2Bench() Bench {
	k := &trace.Kernel{
		Name: "ubench-l2", Grid: benchGrid, WarpsPerCTA: benchWarps, Iters: benchIters,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatRandom}, Times: 16},
			backgroundLoad(1), backgroundLoad(1), backgroundLoad(1), backgroundLoad(1),
			backgroundLoad(1), backgroundLoad(1), backgroundLoad(1), backgroundLoad(1),
		},
	}
	app := &trace.App{
		Name:     k.Name,
		Category: trace.CategoryMemory,
		Regions: []trace.Region{
			{Name: "l2set", Bytes: 1536 << 10},
			{Name: "bg", Bytes: backgroundRegionBytes},
		},
		HostGapCycles: 1,
		Launches:      []trace.Launch{{Kernel: k}},
	}
	return Bench{Name: k.Name, Kind: KindMemory, App: app, Level: isa.TxnL2ToL1}
}

// DRAMBench isolates DRAM-to-L2 sector transfers: random accesses over
// a region far larger than the L2, saturating the DRAM interface.
func DRAMBench() Bench {
	k := &trace.Kernel{
		Name: "ubench-dram", Grid: benchGrid, WarpsPerCTA: benchWarps, Iters: benchIters,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatRandom}, Times: 12},
		},
	}
	app := &trace.App{
		Name:          k.Name,
		Category:      trace.CategoryMemory,
		Regions:       []trace.Region{{Name: "dramset", Bytes: 128 << 20}},
		HostGapCycles: 1,
		Launches:      []trace.Launch{{Kernel: k}},
	}
	return Bench{Name: k.Name, Kind: KindMemory, App: app, Level: isa.TxnDRAMToL2}
}

// MemorySuite returns the four data-movement benchmarks in calibration
// order: shared memory and DRAM first (self-contained), then L2 and L1
// (whose background-stream costs require the DRAM energy to be known).
func MemorySuite() []Bench {
	return []Bench{SharedBench(), DRAMBench(), L2Bench(), L1Bench()}
}

// MixedBench builds one Fig. 4a validation benchmark: FADD64 combined
// with traffic to the given levels.
func MixedBench(name string, body []trace.Inst, regions []trace.Region) Bench {
	k := &trace.Kernel{
		Name: name, Grid: benchGrid, WarpsPerCTA: benchWarps, Iters: benchIters,
		Body: body,
	}
	app := &trace.App{
		Name:          name,
		Category:      trace.CategoryCompute,
		Regions:       regions,
		HostGapCycles: 1,
		Launches:      []trace.Launch{{Kernel: k}},
	}
	return Bench{Name: name, Kind: KindMixed, App: app}
}

// MixedSuite returns the five Fig. 4a validation benchmarks.
func MixedSuite() []Bench {
	totalWarps := uint64(benchGrid * benchWarps)
	l1Region := trace.Region{Name: "l1set", Bytes: totalWarps * 3 * isa.LineBytes}
	l2Region := trace.Region{Name: "l2set", Bytes: 1536 << 10}
	dramRegion := trace.Region{Name: "dramset", Bytes: 128 << 20}
	bgRegion := trace.Region{Name: "bg", Bytes: backgroundRegionBytes}
	fadd := trace.Inst{Op: isa.OpFAdd64, Times: 8}

	return []Bench{
		MixedBench("FADD64+SharedMemory", []trace.Inst{
			fadd, {Op: isa.OpLoadShared, Times: 4},
		}, nil),
		// The cache-level mixes carry the calibration suite's background
		// stream so the memory interface is in the same activity state
		// it was calibrated in.
		MixedBench("FADD64+L1DCache", []trace.Inst{
			fadd, {Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn}, Times: 4},
			backgroundLoad(1),
		}, []trace.Region{l1Region, bgRegion}),
		MixedBench("FADD64+L2Cache", []trace.Inst{
			fadd, {Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatRandom}, Times: 4},
			backgroundLoad(1),
		}, []trace.Region{l2Region, bgRegion}),
		MixedBench("FADD64+DRAM", []trace.Inst{
			fadd, {Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatRandom}, Times: 4},
		}, []trace.Region{dramRegion}),
		MixedBench("FADD64+L2Cache+DRAM", []trace.Inst{
			fadd,
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatRandom}, Times: 2},
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatRandom}, Times: 2},
		}, []trace.Region{l2Region, dramRegion}),
	}
}
