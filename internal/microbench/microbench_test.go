package microbench

import (
	"context"

	"testing"

	"gpujoule/internal/isa"
	"gpujoule/internal/sim"
)

func TestComputeSuiteCoversTableIb(t *testing.T) {
	suite := ComputeSuite()
	if len(suite) != len(isa.ComputeOps()) {
		t.Fatalf("compute suite has %d benches for %d Table Ib rows",
			len(suite), len(isa.ComputeOps()))
	}
	for _, b := range suite {
		if b.Kind != KindCompute {
			t.Errorf("%s has kind %v", b.Name, b.Kind)
		}
		if err := b.App.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestComputeBenchIsPureALU(t *testing.T) {
	b := ComputeBench(isa.OpFFMA32)
	r, err := sim.Simulate(context.Background(), sim.BaseGPM(), b.App)
	if err != nil {
		t.Fatal(err)
	}
	c := &r.Counts
	if c.Inst[isa.OpFFMA32] == 0 {
		t.Fatal("bench executed no target instructions")
	}
	for k := 0; k < isa.NumTxnKinds; k++ {
		if c.Txn[k] != 0 {
			t.Errorf("pure-ALU bench produced %v transactions", isa.TxnKind(k))
		}
	}
	// Other compute classes must not pollute the measurement.
	for _, op := range isa.ComputeOps() {
		if op != isa.OpFFMA32 && c.Inst[op] != 0 {
			t.Errorf("bench executed stray %v", op)
		}
	}
	// Full occupancy: stalls should be a small fraction of SM-cycles.
	stallFrac := float64(c.StallCycles) / (float64(c.Cycles) * float64(c.SMCount))
	if stallFrac > 0.15 {
		t.Errorf("compute bench stall fraction %.2f too high for Eq. 5", stallFrac)
	}
}

func TestComputeBenchRejectsNonCompute(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-compute opcode must panic")
		}
	}()
	ComputeBench(isa.OpLoadGlobal)
}

func TestStallBenchStallsHeavily(t *testing.T) {
	b := StallBench()
	r, err := sim.Simulate(context.Background(), sim.BaseGPM(), b.App)
	if err != nil {
		t.Fatal(err)
	}
	c := &r.Counts
	stallFrac := float64(c.StallCycles) / (float64(c.Cycles) * float64(c.SMCount))
	if stallFrac < 0.5 {
		t.Errorf("one dependent warp per SM should stall most cycles, got %.2f", stallFrac)
	}
}

func TestSharedBenchIsolation(t *testing.T) {
	b := SharedBench()
	r, err := sim.Simulate(context.Background(), sim.BaseGPM(), b.App)
	if err != nil {
		t.Fatal(err)
	}
	c := &r.Counts
	if c.Txn[isa.TxnShmToRF] == 0 {
		t.Fatal("no shared-memory transactions")
	}
	if c.Txn[isa.TxnL1ToRF] != 0 || c.Txn[isa.TxnDRAMToL2] != 0 {
		t.Error("shared bench must not touch global memory")
	}
}

func TestL1BenchHitsL1(t *testing.T) {
	b := L1Bench()
	r, err := sim.Simulate(context.Background(), sim.BaseGPM(), b.App)
	if err != nil {
		t.Fatal(err)
	}
	if hr := r.L1HitRate(); hr < 0.75 {
		t.Errorf("L1 bench hit rate %.2f, want mostly hits", hr)
	}
	// The background stream must keep DRAM busy.
	u := dramUtil(r)
	if u < 0.5 {
		t.Errorf("background stream left DRAM at %.2f utilization", u)
	}
}

func TestL2BenchHitsL2MissesL1(t *testing.T) {
	b := L2Bench()
	r, err := sim.Simulate(context.Background(), sim.BaseGPM(), b.App)
	if err != nil {
		t.Fatal(err)
	}
	if hr := r.L1HitRate(); hr > 0.3 {
		t.Errorf("L2 bench should miss L1, hit rate %.2f", hr)
	}
	// The DRAM background stream pollutes the L2 by design, so the
	// aggregate hit rate sits near 0.5; the calibration solve accounts
	// for the mixture.
	if hr := r.L2HitRate(); hr < 0.4 {
		t.Errorf("L2 bench should still hit L2 substantially, hit rate %.2f", hr)
	}
	if r.L2HitRate() <= r.L1HitRate() {
		t.Error("L2 bench must hit L2 more than L1")
	}
}

func TestDRAMBenchMissesL2(t *testing.T) {
	b := DRAMBench()
	r, err := sim.Simulate(context.Background(), sim.BaseGPM(), b.App)
	if err != nil {
		t.Fatal(err)
	}
	if hr := r.L2HitRate(); hr > 0.2 {
		t.Errorf("DRAM bench should miss L2, hit rate %.2f", hr)
	}
	if u := dramUtil(r); u < 0.6 {
		t.Errorf("DRAM bench should saturate the interface, utilization %.2f", u)
	}
}

func TestMemorySuiteOrderAndLevels(t *testing.T) {
	suite := MemorySuite()
	wantLevels := []isa.TxnKind{isa.TxnShmToRF, isa.TxnDRAMToL2, isa.TxnL2ToL1, isa.TxnL1ToRF}
	if len(suite) != len(wantLevels) {
		t.Fatalf("memory suite size %d", len(suite))
	}
	for i, b := range suite {
		if b.Level != wantLevels[i] {
			t.Errorf("suite[%d] stresses %v, want %v", i, b.Level, wantLevels[i])
		}
		if err := b.App.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestMixedSuiteShape(t *testing.T) {
	suite := MixedSuite()
	if len(suite) != 5 {
		t.Fatalf("Fig. 4a has five mixed benchmarks, got %d", len(suite))
	}
	for _, b := range suite {
		if b.Kind != KindMixed {
			t.Errorf("%s kind %v", b.Name, b.Kind)
		}
		if err := b.App.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		r, err := sim.Simulate(context.Background(), sim.BaseGPM(), b.App)
		if err != nil {
			t.Fatal(err)
		}
		if r.Counts.Inst[isa.OpFAdd64] == 0 {
			t.Errorf("%s must execute FADD64", b.Name)
		}
	}
}

func TestBenchesUseSteadyStateGaps(t *testing.T) {
	for _, b := range append(append(ComputeSuite(), MemorySuite()...), MixedSuite()...) {
		if b.App.HostGapCycles <= 0 || b.App.HostGapCycles > 10 {
			t.Errorf("%s: microbenchmarks measure steady state (tiny gap), got %g",
				b.Name, b.App.HostGapCycles)
		}
	}
}

func dramUtil(r *sim.Result) float64 {
	bytes := float64(r.Counts.TotalTransactionBytes(isa.TxnDRAMToL2))
	var kernelCycles float64
	for i := range r.Launches {
		kernelCycles += r.Launches[i].Duration()
	}
	return bytes / (kernelCycles * 256)
}
