// Timeline tracing: the opt-in per-run timeline recorded by
// sim.WithTrace and its Chrome trace_event rendering.
//
// The Trace itself stays in simulator units (cycles) so it is exact and
// schema-versioned like every other obs section; WriteChrome converts
// to the Chrome trace_event JSON format (ph "X" duration events, ph "C"
// counter events, ph "M" metadata, timestamps in microseconds) that
// chrome://tracing and Perfetto load directly. Track layout per traced
// run: thread 0 carries the kernel-launch spans and the sampler's
// counter series, threads 1..N carry each GPM's per-launch busy/stall
// phases, and one thread per fabric link carries its saturation
// episodes.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
)

// Trace production counters, exported on the Prometheus /metrics
// surface (internal/profiling) so traced runs are visible wherever the
// introspection endpoints are mounted — the sweep/gpmsim -httpaddr
// servers and the gpujouled service alike. Process-wide atomics: traced
// runs may snapshot concurrently under runner workers.
var (
	traceRuns  atomic.Uint64
	traceBytes atomic.Uint64
)

// TraceRunsTotal reports how many traced runs this process snapshotted.
func TraceRunsTotal() uint64 { return traceRuns.Load() }

// TraceBytesWrittenTotal reports the cumulative size of the Chrome
// trace_event documents this process rendered (pre-compression bytes:
// what the encoder produced, regardless of any ".gz" path compression).
func TraceBytesWrittenTotal() uint64 { return traceBytes.Load() }

// SaturationUtilization is the per-sample-window utilization at or
// above which a link counts as saturated in the trace timeline.
const SaturationUtilization = 0.9

// TraceGPMPhase is one module's activity within one launch window.
type TraceGPMPhase struct {
	// GPM is the module index.
	GPM int `json:"gpm"`
	// BusyCycles is the SM-cycles the module's SMs spent issuing during
	// the launch; StallCycles is the complement within the window.
	BusyCycles  float64 `json:"busy_cycles"`
	StallCycles float64 `json:"stall_cycles"`
}

// TraceLaunch is one kernel launch's timeline record.
type TraceLaunch struct {
	// Kernel is the kernel name.
	Kernel string `json:"kernel"`
	// StartCycles/EndCycles bound the launch window on the global clock.
	StartCycles float64 `json:"start_cycles"`
	EndCycles   float64 `json:"end_cycles"`
	// GPMs holds one phase per module, in module order.
	GPMs []TraceGPMPhase `json:"gpms,omitempty"`
}

// LinkEpisode is one maximal span of sample windows during which a
// fabric link stayed at or above SaturationUtilization.
type LinkEpisode struct {
	// Link is the diagnostic link name.
	Link string `json:"link"`
	// StartCycles/EndCycles bound the episode on the global clock.
	StartCycles float64 `json:"start_cycles"`
	EndCycles   float64 `json:"end_cycles"`
	// Utilization is the episode-average utilization (busy cycles over
	// elapsed cycles, clamped to 1).
	Utilization float64 `json:"utilization"`
}

// Trace is one run's timeline, attached to sim.Result by sim.WithTrace.
type Trace struct {
	// SchemaVersion is the obs JSON schema version.
	SchemaVersion int `json:"schema_version"`
	// ClockHz converts the cycle timestamps to wall time.
	ClockHz float64 `json:"clock_hz"`
	// Launches holds one record per kernel launch, in launch order.
	Launches []TraceLaunch `json:"launches"`
	// Episodes lists link-saturation episodes, grouped by link.
	Episodes []LinkEpisode `json:"episodes,omitempty"`
	// Samples is the sampler time series the episodes were derived from.
	Samples []Sample `json:"samples,omitempty"`
}

// TraceSnapshot freezes the collector's timeline into a Trace,
// deriving link-saturation episodes from the sampled link-busy series.
func (c *Collector) TraceSnapshot(clockHz float64) *Trace {
	traceRuns.Add(1)
	return &Trace{
		SchemaVersion: SchemaVersion,
		ClockHz:       clockHz,
		Launches:      append([]TraceLaunch(nil), c.launches...),
		Episodes:      deriveEpisodes(c.linkNames, c.samples, c.sampleLinkBusy),
		Samples:       append([]Sample(nil), c.samples...),
	}
}

// deriveEpisodes scans each link's cumulative-busy series and merges
// consecutive sample windows with utilization ≥ SaturationUtilization
// into maximal episodes. busy is parallel to samples, one cumulative
// value per link per sample.
func deriveEpisodes(names []string, samples []Sample, busy [][]float64) []LinkEpisode {
	if len(names) == 0 || len(busy) != len(samples) || len(samples) == 0 {
		return nil
	}
	var eps []LinkEpisode
	for li, name := range names {
		prevT, prevB := 0.0, 0.0
		open := -1
		var openBusy float64
		for si := range samples {
			t, b := samples[si].TimeCycles, busy[si][li]
			dt := t - prevT
			if dt > 0 {
				util := (b - prevB) / dt
				if util >= SaturationUtilization {
					if open < 0 {
						eps = append(eps, LinkEpisode{Link: name, StartCycles: prevT})
						open = len(eps) - 1
						openBusy = 0
					}
					e := &eps[open]
					e.EndCycles = t
					openBusy += b - prevB
					e.Utilization = min(1, openBusy/(e.EndCycles-e.StartCycles))
				} else {
					open = -1
				}
			}
			prevT, prevB = t, b
		}
	}
	return eps
}

// chromeEvent is one entry of the Chrome trace_event format.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level JSON object Chrome/Perfetto load.
type chromeFile struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// PointTrace pairs one grid point's identity with its trace, so a
// sweep's traces can share one Chrome file (one process per point).
type PointTrace struct {
	// Name labels the point's process track ("<workload> on <config>").
	Name string `json:"name"`
	// Trace is the point's timeline.
	Trace *Trace `json:"trace"`
}

// WriteChrome renders the trace as a Chrome trace_event JSON document
// on w, labelling the single process track with label.
func (t *Trace) WriteChrome(w io.Writer, label string) error {
	return WriteChromeTraces(w, []PointTrace{{Name: label, Trace: t}})
}

// WriteChromeFile writes the Chrome rendering atomically to path.
func (t *Trace) WriteChromeFile(path, label string) error {
	return WriteFileAtomic(path, func(w io.Writer) error { return t.WriteChrome(w, label) })
}

// WriteChromeTraces renders several traced points into one Chrome
// trace_event document, one process track per point. The document's
// otherData records the cycles→microseconds clock (clock_hz), which is
// what lets internal/traceanalyze convert a rendered file back into the
// exact cycles domain.
func WriteChromeTraces(w io.Writer, points []PointTrace) error {
	file := chromeFile{
		TraceEvents:     []chromeEvent{},
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"generator":      "gpujoule",
			"schema_version": SchemaVersion,
		},
	}
	for i, pt := range points {
		if pt.Trace == nil {
			continue
		}
		if _, ok := file.OtherData["clock_hz"]; !ok {
			file.OtherData["clock_hz"] = pt.Trace.ClockHz
		}
		file.TraceEvents = appendChromeEvents(file.TraceEvents, i+1, pt.Name, pt.Trace)
	}
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	enc.SetIndent("", " ")
	err := enc.Encode(file)
	traceBytes.Add(cw.n)
	return err
}

// countingWriter counts the bytes the Chrome encoder produces, feeding
// the trace-bytes-written metric.
type countingWriter struct {
	w io.Writer
	n uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}

// WriteChromeTracesFile writes the multi-point rendering atomically.
func WriteChromeTracesFile(path string, points []PointTrace) error {
	return WriteFileAtomic(path, func(w io.Writer) error { return WriteChromeTraces(w, points) })
}

// appendChromeEvents emits one traced run as process pid. Thread 0 is
// the kernel track, threads 1..N the GPM tracks, then one thread per
// link that saturated.
func appendChromeEvents(events []chromeEvent, pid int, label string, t *Trace) []chromeEvent {
	us := 1e6 / t.ClockHz // cycles → microseconds
	meta := func(name string, tid int, value string) chromeEvent {
		return chromeEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": value}}
	}
	events = append(events, meta("process_name", 0, label), meta("thread_name", 0, "kernels"))

	gpms := 0
	for i := range t.Launches {
		if n := len(t.Launches[i].GPMs); n > gpms {
			gpms = n
		}
	}
	for g := 0; g < gpms; g++ {
		events = append(events, meta("thread_name", 1+g, fmt.Sprintf("GPM %d", g)))
	}
	linkTid := map[string]int{}
	for i := range t.Episodes {
		name := t.Episodes[i].Link
		if _, ok := linkTid[name]; !ok {
			tid := 1 + gpms + len(linkTid)
			linkTid[name] = tid
			events = append(events, meta("thread_name", tid, "link "+name))
		}
	}

	for i := range t.Launches {
		l := &t.Launches[i]
		events = append(events, chromeEvent{
			Name: l.Kernel, Ph: "X",
			Ts: l.StartCycles * us, Dur: (l.EndCycles - l.StartCycles) * us,
			Pid: pid, Tid: 0,
			Args: map[string]any{"launch": i},
		})
		for _, p := range l.GPMs {
			window := p.BusyCycles + p.StallCycles
			frac := 0.0
			if window > 0 {
				frac = p.BusyCycles / window
			}
			// The launch index is the stable launch ID shared with the
			// tid-0 kernel span: it is what lets a reader reattach a GPM
			// phase to its launch exactly, instead of matching windows by
			// timestamp (which collide for zero-duration launches).
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("%s busy %.0f%%", l.Kernel, frac*100), Ph: "X",
				Ts: l.StartCycles * us, Dur: (l.EndCycles - l.StartCycles) * us,
				Pid: pid, Tid: 1 + p.GPM,
				Args: map[string]any{
					"launch":       i,
					"busy_cycles":  p.BusyCycles,
					"stall_cycles": p.StallCycles,
				},
			})
		}
	}
	for i := range t.Episodes {
		e := &t.Episodes[i]
		events = append(events, chromeEvent{
			Name: "saturated", Ph: "X",
			Ts: e.StartCycles * us, Dur: (e.EndCycles - e.StartCycles) * us,
			Pid: pid, Tid: linkTid[e.Link],
			Args: map[string]any{"utilization": e.Utilization},
		})
	}
	for i := range t.Samples {
		s := &t.Samples[i]
		events = append(events,
			chromeEvent{Name: "active_warps", Ph: "C", Ts: s.TimeCycles * us, Pid: pid, Tid: 0,
				Args: map[string]any{"warps": s.ActiveWarps}},
			chromeEvent{Name: "pending_ctas", Ph: "C", Ts: s.TimeCycles * us, Pid: pid, Tid: 0,
				Args: map[string]any{"ctas": s.PendingCTAs}},
		)
	}
	return events
}
