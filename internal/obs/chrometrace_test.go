package obs

import (
	"math"
	"testing"
)

// TestDeriveEpisodes feeds a synthetic cumulative-busy series and
// checks the episode merge: consecutive saturated windows coalesce,
// sub-threshold windows split, and utilization is the episode average.
func TestDeriveEpisodes(t *testing.T) {
	samples := []Sample{
		{TimeCycles: 100}, {TimeCycles: 200}, {TimeCycles: 300},
		{TimeCycles: 400}, {TimeCycles: 500},
	}
	// Per-window utilizations (each window is 100 cycles):
	//   hot:  0.95, 1.0, 0.1, 0.9, 0.5  → episodes [0,200) and [300,400)
	//   cold: 0.10, 0.1, 0.1, 0.1, 0.05 → never saturated
	busy := [][]float64{
		{95, 10},
		{195, 20},
		{205, 30},
		{295, 40},
		{345, 45},
	}
	eps := deriveEpisodes([]string{"hot", "cold"}, samples, busy)
	if len(eps) != 2 {
		t.Fatalf("got %d episodes, want 2: %+v", len(eps), eps)
	}
	first, second := eps[0], eps[1]
	if first.Link != "hot" || first.StartCycles != 0 || first.EndCycles != 200 {
		t.Errorf("first episode = %+v, want hot [0, 200)", first)
	}
	if want := 195.0 / 200.0; first.Utilization != want {
		t.Errorf("first episode utilization = %g, want %g", first.Utilization, want)
	}
	if second.Link != "hot" || second.StartCycles != 300 || second.EndCycles != 400 {
		t.Errorf("second episode = %+v, want hot [300, 400)", second)
	}
	if second.Utilization != 0.9 {
		t.Errorf("second episode utilization = %g, want 0.9", second.Utilization)
	}
}

// TestDeriveEpisodesClampsUtilization checks that an over-unity busy
// delta (timing-wheel rounding can overshoot a window) clamps to 1.
func TestDeriveEpisodesClampsUtilization(t *testing.T) {
	samples := []Sample{{TimeCycles: 100}}
	eps := deriveEpisodes([]string{"l"}, samples, [][]float64{{120}})
	if len(eps) != 1 || eps[0].Utilization != 1 {
		t.Fatalf("got %+v, want one episode at utilization 1", eps)
	}
}

// TestDeriveEpisodesDegenerate checks the nil returns: no links, no
// samples, or a busy series that is not parallel to the samples.
func TestDeriveEpisodesDegenerate(t *testing.T) {
	s := []Sample{{TimeCycles: 1}}
	b := [][]float64{{1}}
	if eps := deriveEpisodes(nil, s, b); eps != nil {
		t.Errorf("no links: %+v", eps)
	}
	if eps := deriveEpisodes([]string{"l"}, nil, nil); eps != nil {
		t.Errorf("no samples: %+v", eps)
	}
	if eps := deriveEpisodes([]string{"l"}, s, nil); eps != nil {
		t.Errorf("mismatched busy series: %+v", eps)
	}
}

// foldShares is the reference left-to-right fold exactShares targets.
func foldShares(shares []float64) float64 {
	var s float64
	for _, v := range shares {
		s += v
	}
	return s
}

// ulpsAway walks x n ulps toward (n > 0) or away from (n < 0) +Inf.
func ulpsAway(x float64, n int) float64 {
	dir := math.Inf(1)
	if n < 0 {
		dir, n = math.Inf(-1), -n
	}
	for ; n > 0; n-- {
		x = math.Nextafter(x, dir)
	}
	return x
}

// TestExactShares exercises the bit-exact fold adjustment: for every
// share vector and every few-ulp perturbation of its natural fold, the
// adjusted fold must equal the target exactly while each share moves by
// at most rounding noise.
func TestExactShares(t *testing.T) {
	cases := [][]float64{
		{1, 2, 3, 4},
		{1e-5, 2e-5, 3e-5},
		{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7},
		{1.8184320000000003e-05, 2.2556160000000003e-05, 1.8216000000000003e-05, 2.2556160000000003e-05},
		{5, 7, 0, 0},
		{42},
	}
	for i, base := range cases {
		f := foldShares(base)
		for _, d := range []int{0, 1, 3, -1, -2} {
			total := ulpsAway(f, d)
			shares := append([]float64(nil), base...)
			if err := exactShares(shares, total); err != nil {
				t.Errorf("case %d %+d ulps: %v", i, d, err)
				continue
			}
			if got := foldShares(shares); got != total {
				t.Errorf("case %d %+d ulps: fold = %v, want %v", i, d, got, total)
			}
			for j := range shares {
				if diff := math.Abs(shares[j] - base[j]); diff > 1e-9*math.Abs(total) {
					t.Errorf("case %d %+d ulps: share %d moved %v -> %v (adjustment should be ulp-scale)",
						i, d, j, base[j], shares[j])
				}
			}
		}
	}

	// The regression observed in the wild (a 4-GPM ShmToRF split): the
	// naive full-residual feedback loop bounces between
	// 8.151263999999999e-05 and 8.151264000000002e-05 without ever
	// hitting this total.
	osc := []float64{1.8184320000000003e-05, 2.2556160000000003e-05, 1.8216000000000003e-05, 2.2556160000000003e-05}
	if err := exactShares(osc, 8.151264e-05); err != nil {
		t.Errorf("oscillating split: %v", err)
	} else if got := foldShares(osc); got != 8.151264e-05 {
		t.Errorf("oscillating split folds to %v", got)
	}

	// Trailing zero shares stay untouched: the residual lands on the
	// last NONZERO share so zero rows never acquire phantom energy.
	zs := []float64{5, 7, 0, 0}
	if err := exactShares(zs, ulpsAway(12, 1)); err != nil {
		t.Errorf("trailing zeros: %v", err)
	}
	if zs[2] != 0 || zs[3] != 0 {
		t.Errorf("trailing zero shares perturbed: %v", zs)
	}

	// Empty shares: only a zero total is attributable.
	if err := exactShares(nil, 0); err != nil {
		t.Errorf("zero total over zero shares: %v", err)
	}
	if err := exactShares(nil, 1); err == nil {
		t.Error("nonzero total over zero shares must error")
	}
}
