package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestDeriveEpisodes feeds a synthetic cumulative-busy series and
// checks the episode merge: consecutive saturated windows coalesce,
// sub-threshold windows split, and utilization is the episode average.
func TestDeriveEpisodes(t *testing.T) {
	samples := []Sample{
		{TimeCycles: 100}, {TimeCycles: 200}, {TimeCycles: 300},
		{TimeCycles: 400}, {TimeCycles: 500},
	}
	// Per-window utilizations (each window is 100 cycles):
	//   hot:  0.95, 1.0, 0.1, 0.9, 0.5  → episodes [0,200) and [300,400)
	//   cold: 0.10, 0.1, 0.1, 0.1, 0.05 → never saturated
	busy := [][]float64{
		{95, 10},
		{195, 20},
		{205, 30},
		{295, 40},
		{345, 45},
	}
	eps := deriveEpisodes([]string{"hot", "cold"}, samples, busy)
	if len(eps) != 2 {
		t.Fatalf("got %d episodes, want 2: %+v", len(eps), eps)
	}
	first, second := eps[0], eps[1]
	if first.Link != "hot" || first.StartCycles != 0 || first.EndCycles != 200 {
		t.Errorf("first episode = %+v, want hot [0, 200)", first)
	}
	if want := 195.0 / 200.0; first.Utilization != want {
		t.Errorf("first episode utilization = %g, want %g", first.Utilization, want)
	}
	if second.Link != "hot" || second.StartCycles != 300 || second.EndCycles != 400 {
		t.Errorf("second episode = %+v, want hot [300, 400)", second)
	}
	if second.Utilization != 0.9 {
		t.Errorf("second episode utilization = %g, want 0.9", second.Utilization)
	}
}

// TestDeriveEpisodesClampsUtilization checks that an over-unity busy
// delta (timing-wheel rounding can overshoot a window) clamps to 1.
func TestDeriveEpisodesClampsUtilization(t *testing.T) {
	samples := []Sample{{TimeCycles: 100}}
	eps := deriveEpisodes([]string{"l"}, samples, [][]float64{{120}})
	if len(eps) != 1 || eps[0].Utilization != 1 {
		t.Fatalf("got %+v, want one episode at utilization 1", eps)
	}
}

// TestDeriveEpisodesDegenerate checks the nil returns: no links, no
// samples, or a busy series that is not parallel to the samples.
func TestDeriveEpisodesDegenerate(t *testing.T) {
	s := []Sample{{TimeCycles: 1}}
	b := [][]float64{{1}}
	if eps := deriveEpisodes(nil, s, b); eps != nil {
		t.Errorf("no links: %+v", eps)
	}
	if eps := deriveEpisodes([]string{"l"}, nil, nil); eps != nil {
		t.Errorf("no samples: %+v", eps)
	}
	if eps := deriveEpisodes([]string{"l"}, s, nil); eps != nil {
		t.Errorf("mismatched busy series: %+v", eps)
	}
}

// TestDeriveEpisodesRunsToEnd checks an episode still open at the end
// of the trace: a link saturated through the final sample closes at the
// last sample time with the correct episode-average utilization.
func TestDeriveEpisodesRunsToEnd(t *testing.T) {
	samples := []Sample{
		{TimeCycles: 100}, {TimeCycles: 200}, {TimeCycles: 300},
	}
	// Windows: 0.2, 0.95, 1.0 — saturation starts at 100 and never ends.
	busy := [][]float64{{20}, {115}, {215}}
	eps := deriveEpisodes([]string{"l"}, samples, busy)
	if len(eps) != 1 {
		t.Fatalf("got %d episodes, want 1: %+v", len(eps), eps)
	}
	e := eps[0]
	if e.StartCycles != 100 || e.EndCycles != 300 {
		t.Errorf("episode window [%g, %g), want [100, 300)", e.StartCycles, e.EndCycles)
	}
	if want := 195.0 / 200.0; e.Utilization != want {
		t.Errorf("utilization = %g, want %g", e.Utilization, want)
	}
}

// renderChrome renders one trace and decodes the document back.
func renderChrome(t *testing.T, tr *Trace) chromeFile {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	var doc chromeFile
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	return doc
}

// TestChromeExportEmptySamplerSeries checks the rendering of a trace
// with no sampler series: no link-saturation threads, no counter
// events, and the kernel/GPM tracks still render.
func TestChromeExportEmptySamplerSeries(t *testing.T) {
	tr := &Trace{
		SchemaVersion: SchemaVersion,
		ClockHz:       1e9,
		Launches: []TraceLaunch{{
			Kernel: "k", StartCycles: 0, EndCycles: 100,
			GPMs: []TraceGPMPhase{{GPM: 0, BusyCycles: 60, StallCycles: 40}},
		}},
	}
	doc := renderChrome(t, tr)
	var spans, counters, linkThreads int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "C":
			counters++
		case "X":
			spans++
		case "M":
			if name, _ := ev.Args["name"].(string); strings.HasPrefix(name, "link ") {
				linkThreads++
			}
		}
	}
	if counters != 0 {
		t.Errorf("sampler-less trace rendered %d counter events", counters)
	}
	if linkThreads != 0 {
		t.Errorf("sampler-less trace rendered %d link threads", linkThreads)
	}
	if spans != 2 { // one kernel span + one GPM phase span
		t.Errorf("rendered %d duration events, want 2", spans)
	}
}

// TestChromeExportZeroDurationLaunch checks a launch whose window is
// empty (Start == End): the spans render with zero duration, the busy
// percentage degrades to 0 instead of NaN, and the stable launch ID is
// carried on both the kernel and the GPM span.
func TestChromeExportZeroDurationLaunch(t *testing.T) {
	tr := &Trace{
		SchemaVersion: SchemaVersion,
		ClockHz:       1e9,
		Launches: []TraceLaunch{
			{Kernel: "warmup", StartCycles: 500, EndCycles: 500,
				GPMs: []TraceGPMPhase{{GPM: 0}}},
			{Kernel: "real", StartCycles: 500, EndCycles: 700,
				GPMs: []TraceGPMPhase{{GPM: 0, BusyCycles: 100, StallCycles: 100}}},
		},
	}
	doc := renderChrome(t, tr)
	var sawZero bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if math.IsNaN(ev.Ts) || math.IsNaN(ev.Dur) {
			t.Fatalf("event %q has NaN ts/dur", ev.Name)
		}
		if strings.Contains(ev.Name, "NaN") {
			t.Fatalf("event name %q carries NaN busy fraction", ev.Name)
		}
		if ev.Tid != 0 { // GPM phase span: must carry the launch ID
			if _, ok := ev.Args["launch"]; !ok {
				t.Errorf("GPM span %q carries no launch ID", ev.Name)
			}
		}
		if ev.Dur == 0 && strings.HasPrefix(ev.Name, "warmup") {
			sawZero = true
			if !strings.Contains(ev.Name, "busy 0%") && ev.Tid != 0 {
				t.Errorf("zero-window GPM span named %q, want busy 0%%", ev.Name)
			}
		}
	}
	if !sawZero {
		t.Error("zero-duration launch rendered no zero-duration span")
	}
}

// TestChromeExportSaturationToEndOfTrace checks the full pipeline for a
// saturation episode that runs to end-of-trace: the collector's
// snapshot derives it and the rendering closes the span at the last
// sample rather than dropping or extending it.
func TestChromeExportSaturationToEndOfTrace(t *testing.T) {
	c := NewCollector(1, 100)
	busy := 0.0
	c.EnableTrace([]string{"ring[0]"}, func() []float64 { return []float64{busy} })
	c.RecordLaunch("k", 0, 300, []TraceGPMPhase{{GPM: 0, BusyCycles: 300}})
	for _, s := range []struct{ now, b float64 }{{100, 20}, {200, 115}, {300, 215}} {
		busy = s.b
		c.MaybeSample(s.now, 1, 0)
	}
	tr := c.TraceSnapshot(1e9)
	if len(tr.Episodes) != 1 {
		t.Fatalf("snapshot derived %d episodes, want 1: %+v", len(tr.Episodes), tr.Episodes)
	}
	if e := tr.Episodes[0]; e.EndCycles != 300 {
		t.Errorf("open episode closes at %g, want end-of-trace 300", e.EndCycles)
	}
	doc := renderChrome(t, tr)
	var satSpans int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "saturated" {
			satSpans++
			want := 300 * 1e6 / tr.ClockHz
			if gotEnd := ev.Ts + ev.Dur; math.Abs(gotEnd-want) > 1e-12 {
				t.Errorf("saturation span ends at %g µs, want %g", gotEnd, want)
			}
		}
	}
	if satSpans != 1 {
		t.Errorf("rendered %d saturation spans, want 1", satSpans)
	}
}

// TestTraceProductionCounters checks the process-wide production
// metrics: TraceSnapshot counts a run, and rendering counts exactly
// the bytes the Chrome encoder produced (pre-compression).
func TestTraceProductionCounters(t *testing.T) {
	c := NewCollector(1, 100)
	c.RecordLaunch("k", 0, 100, []TraceGPMPhase{{GPM: 0, BusyCycles: 60, StallCycles: 40}})

	runs0 := TraceRunsTotal()
	tr := c.TraceSnapshot(1e9)
	if got := TraceRunsTotal() - runs0; got != 1 {
		t.Errorf("TraceSnapshot advanced the run counter by %d, want 1", got)
	}

	bytes0 := TraceBytesWrittenTotal()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	if got, want := TraceBytesWrittenTotal()-bytes0, uint64(buf.Len()); got != want {
		t.Errorf("byte counter advanced by %d, want the %d rendered bytes", got, want)
	}
}

// foldShares is the reference left-to-right fold exactShares targets.
func foldShares(shares []float64) float64 {
	var s float64
	for _, v := range shares {
		s += v
	}
	return s
}

// ulpsAway walks x n ulps toward (n > 0) or away from (n < 0) +Inf.
func ulpsAway(x float64, n int) float64 {
	dir := math.Inf(1)
	if n < 0 {
		dir, n = math.Inf(-1), -n
	}
	for ; n > 0; n-- {
		x = math.Nextafter(x, dir)
	}
	return x
}

// TestExactShares exercises the bit-exact fold adjustment: for every
// share vector and every few-ulp perturbation of its natural fold, the
// adjusted fold must equal the target exactly while each share moves by
// at most rounding noise.
func TestExactShares(t *testing.T) {
	cases := [][]float64{
		{1, 2, 3, 4},
		{1e-5, 2e-5, 3e-5},
		{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7},
		{1.8184320000000003e-05, 2.2556160000000003e-05, 1.8216000000000003e-05, 2.2556160000000003e-05},
		{5, 7, 0, 0},
		{42},
	}
	for i, base := range cases {
		f := foldShares(base)
		for _, d := range []int{0, 1, 3, -1, -2} {
			total := ulpsAway(f, d)
			shares := append([]float64(nil), base...)
			if err := exactShares(shares, total); err != nil {
				t.Errorf("case %d %+d ulps: %v", i, d, err)
				continue
			}
			if got := foldShares(shares); got != total {
				t.Errorf("case %d %+d ulps: fold = %v, want %v", i, d, got, total)
			}
			for j := range shares {
				if diff := math.Abs(shares[j] - base[j]); diff > 1e-9*math.Abs(total) {
					t.Errorf("case %d %+d ulps: share %d moved %v -> %v (adjustment should be ulp-scale)",
						i, d, j, base[j], shares[j])
				}
			}
		}
	}

	// The regression observed in the wild (a 4-GPM ShmToRF split): the
	// naive full-residual feedback loop bounces between
	// 8.151263999999999e-05 and 8.151264000000002e-05 without ever
	// hitting this total.
	osc := []float64{1.8184320000000003e-05, 2.2556160000000003e-05, 1.8216000000000003e-05, 2.2556160000000003e-05}
	if err := exactShares(osc, 8.151264e-05); err != nil {
		t.Errorf("oscillating split: %v", err)
	} else if got := foldShares(osc); got != 8.151264e-05 {
		t.Errorf("oscillating split folds to %v", got)
	}

	// Trailing zero shares stay untouched: the residual lands on the
	// last NONZERO share so zero rows never acquire phantom energy.
	zs := []float64{5, 7, 0, 0}
	if err := exactShares(zs, ulpsAway(12, 1)); err != nil {
		t.Errorf("trailing zeros: %v", err)
	}
	if zs[2] != 0 || zs[3] != 0 {
		t.Errorf("trailing zero shares perturbed: %v", zs)
	}

	// Empty shares: only a zero total is attributable.
	if err := exactShares(nil, 0); err != nil {
		t.Errorf("zero total over zero shares: %v", err)
	}
	if err := exactShares(nil, 1); err == nil {
		t.Error("nonzero total over zero shares must error")
	}
}
