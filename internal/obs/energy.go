// Energy attribution: the exact decomposition of one run's model
// energy over modules, model terms, and fabric links.
//
// Because the GPUJoule model is linear (Eq. 4, core.Model.Estimate),
// every joule is a coefficient times an event count, and the per-GPM
// event counters recorded by the Collector partition the aggregate
// counts exactly. Attribution therefore is not an estimate: each
// per-term column reconciles with the aggregate Breakdown term
// bit-exactly, and the terms fold to sim.Result's aggregate energy in
// Breakdown.Total's summation order. Floating-point addition is not
// associative, so a naive Σg coeff·count_g can differ from
// coeff·Σg count_g by a few ulps; exactShares closes that gap by
// folding the residual into the last nonzero share, which keeps every
// share within rounding of its true value while making the
// left-to-right sum exact. The integer event counts need no adjustment — uint64 sums are
// associative — and a reconciliation pass errors out if the per-GPM
// counters ever stop partitioning the aggregates.
package obs

import (
	"errors"
	"fmt"
	"math"

	"gpujoule/internal/core"
	"gpujoule/internal/isa"
)

// SwitchLinkName is the pseudo-link row under which switch-traversal
// energy (EPT[Switch]) appears in the per-link attribution.
const SwitchLinkName = "switch"

// TermEnergy is one energy-model term vector in joules. Total folds the
// fields in core.Breakdown.Total's order, so a TermEnergy built from a
// Breakdown reproduces its total bit-exactly.
type TermEnergy struct {
	// ComputeJ is the SM-pipeline (busy) term: Σ EPI·IC.
	ComputeJ float64 `json:"compute_j"`
	// StallJ is the SM-pipeline (idle) term: EPStall·stalls.
	StallJ float64 `json:"stall_j"`
	// ConstantJ is the constant-power term: ConstPower·T (amortized).
	ConstantJ float64 `json:"constant_j"`
	// ShmToRFJ..DRAMToL2J are the intra-module data-movement terms.
	ShmToRFJ  float64 `json:"shm_rf_j"`
	L1ToRFJ   float64 `json:"l1_rf_j"`
	L2ToL1J   float64 `json:"l2_l1_j"`
	DRAMToL2J float64 `json:"dram_l2_j"`
	// InterGPMJ is the fabric term (link hops plus switch traversals).
	// Zero on per-GPM rows — fabric energy belongs to links.
	InterGPMJ float64 `json:"intergpm_j"`
}

// Total folds the terms in core.Breakdown.Total's order.
func (t TermEnergy) Total() float64 {
	return t.ComputeJ + t.StallJ + t.ConstantJ +
		t.ShmToRFJ + t.L1ToRFJ + t.L2ToL1J + t.DRAMToL2J + t.InterGPMJ
}

// ClassEnergy is one instruction class's contribution to a module's
// compute term.
type ClassEnergy struct {
	// Class is the opcode-class name (isa.Op.String).
	Class string `json:"class"`
	// Count is the thread-level instruction count of the class.
	Count uint64 `json:"count"`
	// Joules is EPI[class]·Count (unadjusted product; the per-class rows
	// are detail, the module's ComputeJ is the reconciled figure).
	Joules float64 `json:"joules"`
}

// GPMEnergy is one module's attributed energy.
type GPMEnergy struct {
	// GPM is the module index.
	GPM int `json:"gpm"`
	// Terms is the module's share of each model term. InterGPMJ is
	// always zero (see LinkEnergy). Summing any term over modules in
	// row order reproduces the aggregate term bit-exactly.
	Terms TermEnergy `json:"terms"`
	// TotalJ is Terms.Total().
	TotalJ float64 `json:"total_j"`
	// Classes details ComputeJ by instruction class, in opcode order,
	// restricted to classes with a nonzero count and coefficient.
	Classes []ClassEnergy `json:"classes,omitempty"`
}

// LinkEnergy is one fabric link's attributed energy. The final row may
// be the SwitchLinkName pseudo-link carrying switch-traversal energy.
type LinkEnergy struct {
	// Link is the diagnostic link name.
	Link string `json:"link"`
	// Bytes is the payload that traversed the link (zero on the switch
	// pseudo-row, which is counted in traversals, not bytes).
	Bytes uint64 `json:"bytes"`
	// Joules is the link's share of the InterGPM term; summing over rows
	// in order reproduces the aggregate InterGPMJ bit-exactly.
	Joules float64 `json:"joules"`
}

// EnergyAttribution decomposes one run's total model energy. The
// invariants, enforced at construction:
//
//	TotalJ                        == core.Model.Estimate(counts).Total()
//	Terms.Total()                 == TotalJ
//	Σg GPMs[g].Terms.<term>       == Terms.<term>   (every per-GPM term)
//	Σl Links[l].Joules            == Terms.InterGPMJ
//
// with every sum a left-to-right float64 fold, bit-exact.
type EnergyAttribution struct {
	// SchemaVersion is the obs JSON schema version.
	SchemaVersion int `json:"schema_version"`
	// Model names the pricing model (core.Model.Name).
	Model string `json:"model"`
	// TotalJ is the aggregate model energy; Seconds the execution time
	// the constant term was charged over.
	TotalJ  float64 `json:"total_j"`
	Seconds float64 `json:"seconds"`
	// Terms is the aggregate per-term decomposition, taken verbatim from
	// the model's Breakdown.
	Terms TermEnergy `json:"terms"`
	// GPMs holds one row per module, in module order.
	GPMs []GPMEnergy `json:"gpms"`
	// Links holds one row per fabric link (plus the switch pseudo-row),
	// empty for fabric-less designs.
	Links []LinkEnergy `json:"links,omitempty"`
}

// AttributeEnergy decomposes the aggregate energy m.Estimate(counts)
// over the per-GPM and per-link counters in c. It errors if c is nil
// (the run must have been simulated with sim.WithCounters) or if the
// counters do not partition the aggregate counts — which would mean a
// simulator charge site drifted out of sync with the collector.
func AttributeEnergy(m *core.Model, counts *isa.Counts, c *Counters) (*EnergyAttribution, error) {
	if c == nil {
		return nil, errors.New("obs: energy attribution requires counters (run with sim.WithCounters)")
	}
	n := len(c.GPMs)
	if n == 0 {
		return nil, errors.New("obs: energy attribution requires per-GPM counters")
	}
	if err := reconcileCounts(counts, c); err != nil {
		return nil, err
	}

	b := m.Estimate(counts)
	a := &EnergyAttribution{
		SchemaVersion: SchemaVersion,
		Model:         m.Name,
		TotalJ:        b.Total(),
		Seconds:       b.Seconds,
		Terms: TermEnergy{
			ComputeJ:  b.Compute,
			StallJ:    b.Stall,
			ConstantJ: b.Constant,
			ShmToRFJ:  b.ShmToRF,
			L1ToRFJ:   b.L1ToRF,
			L2ToL1J:   b.L2ToL1,
			DRAMToL2J: b.DRAMToL2,
			InterGPMJ: b.InterGPM,
		},
		GPMs: make([]GPMEnergy, n),
	}

	shares := make([]float64, n)
	split := func(total float64, raw func(g *GPMCounters) float64, set func(e *GPMEnergy, v float64)) error {
		for g := range shares {
			shares[g] = raw(&c.GPMs[g])
		}
		if err := exactShares(shares, total); err != nil {
			return err
		}
		for g := range shares {
			set(&a.GPMs[g], shares[g])
		}
		return nil
	}

	// Compute mirrors Estimate's loop: every opcode in index order, so
	// each module's raw share uses the same summation order as the
	// aggregate.
	err := split(b.Compute, func(gc *GPMCounters) float64 {
		var e float64
		for op := range gc.Inst {
			e += m.EPI[op] * float64(gc.Inst[op])
		}
		return e
	}, func(e *GPMEnergy, v float64) { e.Terms.ComputeJ = v })
	if err == nil {
		err = split(b.Stall,
			func(gc *GPMCounters) float64 { return m.EPStall * gc.StallCycles },
			func(e *GPMEnergy, v float64) { e.Terms.StallJ = v })
	}
	if err == nil {
		// Constant power is a machine-wide overhead; split it evenly.
		err = split(b.Constant,
			func(gc *GPMCounters) float64 { return b.Constant / float64(n) },
			func(e *GPMEnergy, v float64) { e.Terms.ConstantJ = v })
	}
	txnTerms := []struct {
		kind  isa.TxnKind
		total float64
		set   func(e *GPMEnergy, v float64)
	}{
		{isa.TxnShmToRF, b.ShmToRF, func(e *GPMEnergy, v float64) { e.Terms.ShmToRFJ = v }},
		{isa.TxnL1ToRF, b.L1ToRF, func(e *GPMEnergy, v float64) { e.Terms.L1ToRFJ = v }},
		{isa.TxnL2ToL1, b.L2ToL1, func(e *GPMEnergy, v float64) { e.Terms.L2ToL1J = v }},
		{isa.TxnDRAMToL2, b.DRAMToL2, func(e *GPMEnergy, v float64) { e.Terms.DRAMToL2J = v }},
	}
	for _, t := range txnTerms {
		if err != nil {
			break
		}
		t := t
		err = split(t.total,
			func(gc *GPMCounters) float64 { return m.EPT[t.kind] * float64(gc.Txn[t.kind]) },
			t.set)
	}
	if err != nil {
		return nil, err
	}

	for g := range a.GPMs {
		e := &a.GPMs[g]
		e.GPM = c.GPMs[g].GPM
		e.TotalJ = e.Terms.Total()
		for op := range c.GPMs[g].Inst {
			cnt := c.GPMs[g].Inst[op]
			if cnt == 0 || m.EPI[op] == 0 {
				continue
			}
			e.Classes = append(e.Classes, ClassEnergy{
				Class:  isa.Op(op).String(),
				Count:  cnt,
				Joules: m.EPI[op] * float64(cnt),
			})
		}
	}

	links, err := attributeLinks(m, counts, c, b.InterGPM)
	if err != nil {
		return nil, err
	}
	a.Links = links
	return a, nil
}

// attributeLinks splits the InterGPM term over the fabric links (by
// sectors moved) plus the switch pseudo-row (by traversals).
func attributeLinks(m *core.Model, counts *isa.Counts, c *Counters, total float64) ([]LinkEnergy, error) {
	rows := make([]LinkEnergy, 0, len(c.Links)+1)
	raw := make([]float64, 0, len(c.Links)+1)
	for i := range c.Links {
		l := &c.Links[i]
		rows = append(rows, LinkEnergy{Link: l.Link, Bytes: l.Bytes})
		raw = append(raw, m.EPT[isa.TxnInterGPM]*float64(l.Bytes/isa.SectorBytes))
	}
	if counts.Txn[isa.TxnSwitch] > 0 {
		rows = append(rows, LinkEnergy{Link: SwitchLinkName})
		raw = append(raw, m.EPT[isa.TxnSwitch]*float64(counts.Txn[isa.TxnSwitch]))
	}
	if len(rows) == 0 {
		if total != 0 {
			return nil, fmt.Errorf("obs: inter-GPM energy %g J with no fabric links to attribute it to", total)
		}
		return nil, nil
	}
	if err := exactShares(raw, total); err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].Joules = raw[i]
	}
	return rows, nil
}

// reconcileCounts verifies that the per-GPM (and per-link) counters
// partition the aggregate event counts exactly. These are integer sums,
// so any mismatch is a real bug, not rounding.
func reconcileCounts(counts *isa.Counts, c *Counters) error {
	var inst [isa.NumOps]uint64
	var txn [isa.NumTxnKinds]uint64
	for g := range c.GPMs {
		for op := range inst {
			inst[op] += c.GPMs[g].Inst[op]
		}
		for k := range txn {
			txn[k] += c.GPMs[g].Txn[k]
		}
	}
	for op := range inst {
		if inst[op] != counts.Inst[op] {
			return fmt.Errorf("obs: per-GPM %v instructions (%d) do not partition the aggregate (%d)",
				isa.Op(op), inst[op], counts.Inst[op])
		}
	}
	for _, k := range []isa.TxnKind{isa.TxnShmToRF, isa.TxnL1ToRF, isa.TxnL2ToL1, isa.TxnDRAMToL2} {
		if txn[k] != counts.Txn[k] {
			return fmt.Errorf("obs: per-GPM %v transactions (%d) do not partition the aggregate (%d)",
				k, txn[k], counts.Txn[k])
		}
	}
	var sectors uint64
	for i := range c.Links {
		sectors += c.Links[i].Bytes / isa.SectorBytes
	}
	if sectors != counts.Txn[isa.TxnInterGPM] {
		return fmt.Errorf("obs: per-link sectors (%d) do not partition the inter-GPM transactions (%d)",
			sectors, counts.Txn[isa.TxnInterGPM])
	}
	return nil
}

// exactShares adjusts shares in place so their left-to-right float64
// fold equals total bit-exactly. Each raw share is already within
// rounding of its true value (same coefficients, same summation order
// as the aggregate), so the residual is a few ulps of total.
//
// The residual is absorbed by the last nonzero share, deliberately:
// every fold position after it adds zero (an identity), so that share
// enters the fold in its final effective, single-rounded addition and
// its perturbation is never re-rounded by later terms. (Perturbing an
// earlier share does not work — the additions after it re-round, and
// the fold's step function can straddle total forever without hitting
// it, which is exactly what naive residual feedback does.) The share
// is rebuilt as total − prefix: when the prefix is at least half the
// total that subtraction is exact (Sterbenz), so the fold lands on
// total in one step. Otherwise the rebuilt share is within a couple
// ulps and is walked onto total one ulp at a time — the rebuilt share
// then dominates the sum, so its ulp is no coarser than total's and
// single-ulp steps cannot skip a representable fold value. Errors only
// if the walk refuses to converge within a generous bound, which a
// finite input cannot cause.
func exactShares(shares []float64, total float64) error {
	if len(shares) == 0 {
		if total != 0 {
			return fmt.Errorf("obs: cannot attribute %g J over zero shares", total)
		}
		return nil
	}
	last := len(shares) - 1
	for last > 0 && shares[last] == 0 {
		last--
	}
	var prefix float64
	for _, v := range shares[:last] {
		prefix += v
	}
	shares[last] = total - prefix
	for iter := 0; iter < 256; iter++ {
		sum := prefix + shares[last]
		if sum == total {
			return nil
		}
		dir := math.Inf(1)
		if sum > total {
			dir = math.Inf(-1)
		}
		shares[last] = math.Nextafter(shares[last], dir)
	}
	return fmt.Errorf("obs: share adjustment did not converge on total %v", total)
}
