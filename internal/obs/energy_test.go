package obs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"gpujoule/internal/core"
	"gpujoule/internal/interconnect"
	"gpujoule/internal/isa"
	"gpujoule/internal/obs"
	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
)

// attrApp is a multi-kernel app with deliberate remote traffic
// (shared-region reads and random stores), so the attribution exercises
// every energy term including the fabric links.
func attrApp() *trace.App {
	compute := &trace.Kernel{
		Name:        "attr-compute",
		Grid:        24,
		WarpsPerCTA: 8,
		Iters:       5,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatShared, Lines: 2}},
			{Op: isa.OpFFMA32, Times: 3},
			{Op: isa.OpLoadShared},
			{Op: isa.OpBarrier},
			{Op: isa.OpFAdd32},
			{Op: isa.OpStoreShared},
		},
	}
	scatter := &trace.Kernel{
		Name:        "attr-scatter",
		Grid:        18,
		WarpsPerCTA: 4,
		Iters:       7,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn, Lines: 3}},
			{Op: isa.OpIMad32, Times: 2},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatRandom, Lines: 2}},
		},
	}
	return &trace.App{
		Name:     "attr-app",
		Category: trace.CategoryMemory,
		Regions: []trace.Region{
			{Name: "shared", Bytes: 4 << 20, Home: trace.HomeStriped},
			{Name: "stream", Bytes: 16 << 20},
		},
		Launches: []trace.Launch{
			{Kernel: compute, Count: 2},
			{Kernel: scatter, Count: 2},
			{Kernel: compute},
		},
	}
}

// attrConfigs are the machine shapes the reconciliation test sweeps:
// multi-GPM ring, switch topology (switch pseudo-row), memory-side L2
// (home-attributed L2 transactions), and a fabric-less single module.
func attrConfigs() []sim.Config {
	ring := sim.MultiGPM(4, sim.BW2x)
	sw := sim.MultiGPM(4, sim.BW1x)
	sw.Topology = interconnect.TopologySwitch
	sw.Domain = sim.DomainOnBoard
	memside := sim.MultiGPM(4, sim.BW2x)
	memside.L2 = sim.L2MemorySide
	single := sim.MultiGPM(1, sim.BW2x)
	return []sim.Config{ring, sw, memside, single}
}

func modelFor(cfg sim.Config) *core.Model {
	if cfg.Domain == sim.DomainOnPackage {
		return core.ProjectionModel(core.OnPackageLinks())
	}
	return core.ProjectionModel(core.OnBoardLinks())
}

// checkExact verifies every reconciliation invariant of an attribution
// against its run, all comparisons bit-exact.
func checkExact(t *testing.T, m *core.Model, res *sim.Result, a *obs.EnergyAttribution) {
	t.Helper()
	total := m.Estimate(&res.Counts).Total()
	if a.TotalJ != total {
		t.Errorf("TotalJ = %v, aggregate energy = %v", a.TotalJ, total)
	}
	if got := a.Terms.Total(); got != a.TotalJ {
		t.Errorf("Terms fold to %v, want TotalJ %v", got, a.TotalJ)
	}

	fold := func(pick func(obs.TermEnergy) float64) float64 {
		var s float64
		for i := range a.GPMs {
			s += pick(a.GPMs[i].Terms)
		}
		return s
	}
	perGPM := []struct {
		name string
		pick func(obs.TermEnergy) float64
		want float64
	}{
		{"compute", func(te obs.TermEnergy) float64 { return te.ComputeJ }, a.Terms.ComputeJ},
		{"stall", func(te obs.TermEnergy) float64 { return te.StallJ }, a.Terms.StallJ},
		{"constant", func(te obs.TermEnergy) float64 { return te.ConstantJ }, a.Terms.ConstantJ},
		{"shm_rf", func(te obs.TermEnergy) float64 { return te.ShmToRFJ }, a.Terms.ShmToRFJ},
		{"l1_rf", func(te obs.TermEnergy) float64 { return te.L1ToRFJ }, a.Terms.L1ToRFJ},
		{"l2_l1", func(te obs.TermEnergy) float64 { return te.L2ToL1J }, a.Terms.L2ToL1J},
		{"dram_l2", func(te obs.TermEnergy) float64 { return te.DRAMToL2J }, a.Terms.DRAMToL2J},
	}
	for _, c := range perGPM {
		if got := fold(c.pick); got != c.want {
			t.Errorf("per-GPM %s folds to %v, want aggregate %v", c.name, got, c.want)
		}
	}
	var links float64
	for i := range a.Links {
		links += a.Links[i].Joules
	}
	if links != a.Terms.InterGPMJ {
		t.Errorf("per-link energy folds to %v, want aggregate %v", links, a.Terms.InterGPMJ)
	}
	for i := range a.GPMs {
		g := &a.GPMs[i]
		if g.Terms.InterGPMJ != 0 {
			t.Errorf("GPM %d carries inter-GPM energy %v (links own that term)", g.GPM, g.Terms.InterGPMJ)
		}
		if got := g.Terms.Total(); got != g.TotalJ {
			t.Errorf("GPM %d terms fold to %v, want TotalJ %v", g.GPM, got, g.TotalJ)
		}
	}
}

// TestEnergyAttributionReconcilesExactly is the tentpole invariant: on
// a multi-GPM, multi-kernel app, the per-GPM/per-term/per-link
// decomposition reconciles bit-exactly with sim.Result's aggregate
// model energy on every machine shape.
func TestEnergyAttributionReconcilesExactly(t *testing.T) {
	app := attrApp()
	for _, cfg := range attrConfigs() {
		res, err := sim.Simulate(context.Background(), cfg, app, sim.WithCounters())
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		m := modelFor(cfg)
		a, err := obs.AttributeEnergy(m, &res.Counts, res.Counters)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		t.Run(cfg.Name(), func(t *testing.T) { checkExact(t, m, res, a) })
	}
}

// TestEnergyAttributionCoversTerms sanity-checks that the test app
// actually exercises the interesting rows: fabric links with nonzero
// energy on the ring, a switch pseudo-row on the switch topology, and
// per-class compute rows on every GPM.
func TestEnergyAttributionCoversTerms(t *testing.T) {
	app := attrApp()
	cfgs := attrConfigs()

	ringRes, err := sim.Simulate(context.Background(), cfgs[0], app, sim.WithCounters())
	if err != nil {
		t.Fatal(err)
	}
	ring, err := obs.AttributeEnergy(modelFor(cfgs[0]), &ringRes.Counts, ringRes.Counters)
	if err != nil {
		t.Fatal(err)
	}
	if len(ring.Links) == 0 || ring.Terms.InterGPMJ <= 0 {
		t.Fatalf("ring run has no attributed link energy: links=%d intergpm=%v", len(ring.Links), ring.Terms.InterGPMJ)
	}
	for i := range ring.GPMs {
		if len(ring.GPMs[i].Classes) == 0 {
			t.Errorf("GPM %d has no per-class compute rows", i)
		}
	}

	swRes, err := sim.Simulate(context.Background(), cfgs[1], app, sim.WithCounters())
	if err != nil {
		t.Fatal(err)
	}
	sw, err := obs.AttributeEnergy(modelFor(cfgs[1]), &swRes.Counts, swRes.Counters)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(sw.Links); n == 0 || sw.Links[n-1].Link != obs.SwitchLinkName {
		t.Fatalf("switch run lacks the %q pseudo-row: %+v", obs.SwitchLinkName, sw.Links)
	}

	if _, err := obs.AttributeEnergy(modelFor(cfgs[0]), &ringRes.Counts, nil); err == nil {
		t.Fatal("AttributeEnergy accepted a nil counters snapshot")
	}
}

// TestEnergyAttributionDeterministicAcrossWorkers runs the same grid at
// workers=1 and workers=4 and requires byte-identical attribution JSON.
func TestEnergyAttributionDeterministicAcrossWorkers(t *testing.T) {
	app := attrApp()
	cfgs := attrConfigs()
	var points []runner.Point
	for _, cfg := range cfgs {
		points = append(points, runner.Point{App: app, Scale: 1, Config: cfg})
	}

	attribute := func(workers int) []byte {
		t.Helper()
		eng := runner.New(runner.Options{Workers: workers, Counters: true})
		results, err := eng.Run(context.Background(), points)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for i, res := range results {
			a, err := obs.AttributeEnergy(modelFor(cfgs[i]), &res.Counts, res.Counters)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(a)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(b)
			buf.WriteByte('\n')
		}
		return buf.Bytes()
	}

	serial := attribute(1)
	parallel := attribute(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("attribution differs across worker counts:\nworkers=1:\n%s\nworkers=4:\n%s", serial, parallel)
	}
	if !strings.Contains(string(serial), `"gpms"`) {
		t.Fatal("attribution JSON carries no per-GPM section")
	}
}
