// Package obs is the opt-in observability layer of the simulator: the
// per-resource counters the paper's attribution arguments rest on.
// The headline claims (inter-GPM bandwidth dominates energy at scale,
// link energy/bit is almost irrelevant, §V-B/§VI) are statements about
// *which* resource saturated — a GPM's SM lanes, a DRAM stack, one ring
// link — so the simulator records per-GPM instruction/stall/cache
// counters, the local-vs-remote fill split, per-link fabric bytes and
// queueing delay, and (optionally) a coarse time series, alongside the
// GPU-wide aggregates of sim.Result.
//
// The layer is strictly opt-in and zero-cost when disabled: a run
// without sim.WithCounters carries a nil *Collector and the simulator
// never touches it, so disabled-path output is byte-identical to a
// build without this package. Collection is per-run and single-threaded
// (one Collector per simulated GPU), so counters are deterministic
// regardless of how many runner workers execute the grid.
//
// All exported structs carry stable, documented JSON field names: the
// schema (SchemaVersion) is shared by the -counters export of
// cmd/sweep and cmd/gpmsim, and by sim.Result's own JSON form.
package obs

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"gpujoule/internal/isa"
)

// SchemaVersion identifies the JSON schema of Counters and Report.
// Bump it when a field is renamed or its meaning changes; adding fields
// is backward-compatible and does not bump the version.
//
// v2: per-GPM instruction-class and transaction-class arrays on GPM
// rows, the per-GPM/per-term/per-link energy attribution section
// (EnergyAttribution), the timeline trace section (Trace), and the
// runner-profile warp-instruction throughput fields.
const SchemaVersion = 2

// GPMCounters holds one GPU module's event counters for a whole run.
type GPMCounters struct {
	// GPM is the module index.
	GPM int `json:"gpm"`
	// WarpInstructions counts warp-level instructions issued by the
	// module's SMs; ThreadInstructions weights them by active threads.
	WarpInstructions   uint64 `json:"warp_instructions"`
	ThreadInstructions uint64 `json:"thread_instructions"`
	// BusyCycles is the total SM-cycles the module's SMs spent issuing;
	// StallCycles is the complement within launch windows (both in
	// fractional cycles — the aggregate sim.Result truncates per launch,
	// so per-GPM sums reconcile within one cycle per launch).
	BusyCycles  float64 `json:"busy_cycles"`
	StallCycles float64 `json:"stall_cycles"`
	// L1 counters of the module's SM-private caches.
	L1Accesses uint64 `json:"l1_accesses"`
	L1Misses   uint64 `json:"l1_misses"`
	// L2 counters of the module's L2 slice (module-side: requests from
	// this module's SMs; memory-side: requests homed at this module).
	L2Accesses uint64 `json:"l2_accesses"`
	L2Misses   uint64 `json:"l2_misses"`
	// LocalFills and RemoteFills split this module's DRAM line fills by
	// whether the home stack was local — the per-GPM NUMA exposure.
	LocalFills  uint64 `json:"local_fills"`
	RemoteFills uint64 `json:"remote_fills"`
	// DRAMBytes is the payload served by this module's DRAM stack, and
	// DRAMQueueCycles the cumulative queueing delay behind it.
	DRAMBytes       uint64  `json:"dram_bytes"`
	DRAMQueueCycles float64 `json:"dram_queue_cycles"`
	// L2Bytes / L2QueueCycles are the same for the L2 bank group.
	L2Bytes       uint64  `json:"l2_bytes"`
	L2QueueCycles float64 `json:"l2_queue_cycles"`
	// Inst splits ThreadInstructions by opcode class — the per-GPM view
	// of isa.Counts.Inst, which is what lets the energy attribution
	// price each module's compute exactly.
	Inst [isa.NumOps]uint64 `json:"inst"`
	// Txn splits the module's data-movement transactions by class (in
	// isa.TxnKind order). ShmToRF and L1ToRF are charged to the
	// requesting module; L2ToL1 follows the module whose L2 slice served
	// the request (the requester under module-side caching, the home
	// module under memory-side caching); DRAMToL2 follows the home
	// module whose DRAM stack was read, matching DRAMBytes. InterGPM and
	// Switch stay zero here: fabric traffic is attributed per link, not
	// per module.
	Txn [isa.NumTxnKinds]uint64 `json:"txn"`
}

// LinkCounters holds one unidirectional fabric link's counters.
type LinkCounters struct {
	// Link is the diagnostic link name (e.g. "ring-link[d0][3]").
	Link string `json:"link"`
	// Bytes is the payload that traversed the link.
	Bytes uint64 `json:"bytes"`
	// BusyCycles is the service time implied by the bytes moved.
	BusyCycles float64 `json:"busy_cycles"`
	// QueueCycles is the cumulative queueing delay transfers experienced
	// at this link (completion minus unloaded completion).
	QueueCycles float64 `json:"queue_cycles"`
	// Utilization is BusyCycles over the run's end-to-end cycles.
	Utilization float64 `json:"utilization"`
}

// Sample is one point of the optional coarse time series recorded by
// sim.WithSampler: a snapshot taken at epoch granularity.
type Sample struct {
	// TimeCycles is the global clock at the snapshot.
	TimeCycles float64 `json:"time_cycles"`
	// ActiveWarps is the number of resident, unretired warps.
	ActiveWarps int `json:"active_warps"`
	// PendingCTAs is the number of CTAs still queued on the modules.
	PendingCTAs int `json:"pending_ctas"`
	// WarpInstructions is the cumulative warp-instruction count.
	WarpInstructions uint64 `json:"warp_instructions"`
}

// Counters is the complete observability snapshot of one simulation
// run, attached to sim.Result when counters are enabled.
type Counters struct {
	// SchemaVersion is the obs JSON schema version.
	SchemaVersion int `json:"schema_version"`
	// GPMs holds one entry per physical module, in module order.
	GPMs []GPMCounters `json:"gpms"`
	// Links holds one entry per unidirectional fabric link (empty for
	// single-module and monolithic designs, which have no fabric).
	Links []LinkCounters `json:"links,omitempty"`
	// Samples is the optional time series (sim.WithSampler).
	Samples []Sample `json:"samples,omitempty"`
}

// TotalWarpInstructions sums warp instructions over modules.
func (c *Counters) TotalWarpInstructions() uint64 {
	var n uint64
	for i := range c.GPMs {
		n += c.GPMs[i].WarpInstructions
	}
	return n
}

// TotalLinkBytes sums payload bytes over all fabric links.
func (c *Counters) TotalLinkBytes() uint64 {
	var n uint64
	for i := range c.Links {
		n += c.Links[i].Bytes
	}
	return n
}

// Collector accumulates counters during one simulation run. It is
// owned by a single GPU instance and is not safe for concurrent use —
// the simulator is single-threaded per run, which is what makes the
// counters deterministic across runner worker counts. A nil *Collector
// is the disabled state; the simulator guards every update with a nil
// check, so the disabled path costs one predictable branch.
type Collector struct {
	// GPMs is indexed by physical module id; the simulator updates the
	// entries in place on its hot paths.
	GPMs []GPMCounters

	samples  []Sample
	interval float64
	next     float64

	// Trace state, populated only after EnableTrace: per-launch timeline
	// records plus, per time-series sample, a snapshot of each fabric
	// link's cumulative busy cycles (parallel to samples).
	traceOn        bool
	launches       []TraceLaunch
	linkNames      []string
	linkBusy       func() []float64
	sampleLinkBusy [][]float64
}

// NewCollector builds a collector for a run over gpms physical modules.
// A positive sampleInterval additionally records a time-series sample
// every interval cycles (at epoch granularity).
func NewCollector(gpms int, sampleInterval float64) *Collector {
	c := &Collector{
		GPMs:     make([]GPMCounters, gpms),
		interval: sampleInterval,
		next:     sampleInterval,
	}
	for i := range c.GPMs {
		c.GPMs[i].GPM = i
	}
	return c
}

// MaybeSample records a time-series sample if the clock has crossed the
// next sampling point. The simulator calls it at epoch boundaries, so
// sample spacing is at least the configured interval but quantized to
// epochs.
func (c *Collector) MaybeSample(now float64, activeWarps, pendingCTAs int) {
	if c.interval <= 0 || now < c.next {
		return
	}
	c.samples = append(c.samples, Sample{
		TimeCycles:       now,
		ActiveWarps:      activeWarps,
		PendingCTAs:      pendingCTAs,
		WarpInstructions: c.totalWarpInstructions(),
	})
	if c.traceOn && c.linkBusy != nil {
		c.sampleLinkBusy = append(c.sampleLinkBusy, c.linkBusy())
	}
	for c.next <= now {
		c.next += c.interval
	}
}

// EnableTrace switches the collector into trace mode: RecordLaunch
// becomes active and every time-series sample additionally snapshots
// the fabric links' cumulative busy cycles (linkBusy returns one value
// per link, in linkNames order; both may be nil for fabric-less
// designs).
func (c *Collector) EnableTrace(linkNames []string, linkBusy func() []float64) {
	c.traceOn = true
	c.linkNames = linkNames
	c.linkBusy = linkBusy
}

// TraceEnabled reports whether EnableTrace was called.
func (c *Collector) TraceEnabled() bool { return c.traceOn }

// RecordLaunch appends one kernel-launch window with its per-GPM
// busy/stall phases. A no-op unless tracing is enabled.
func (c *Collector) RecordLaunch(kernel string, startCycles, endCycles float64, gpms []TraceGPMPhase) {
	if !c.traceOn {
		return
	}
	c.launches = append(c.launches, TraceLaunch{
		Kernel:      kernel,
		StartCycles: startCycles,
		EndCycles:   endCycles,
		GPMs:        gpms,
	})
}

func (c *Collector) totalWarpInstructions() uint64 {
	var n uint64
	for i := range c.GPMs {
		n += c.GPMs[i].WarpInstructions
	}
	return n
}

// Snapshot freezes the collector into an exportable Counters, attaching
// the fabric link counters gathered by the simulator.
func (c *Collector) Snapshot(links []LinkCounters) *Counters {
	return &Counters{
		SchemaVersion: SchemaVersion,
		GPMs:          append([]GPMCounters(nil), c.GPMs...),
		Links:         links,
		Samples:       append([]Sample(nil), c.samples...),
	}
}

// PointProfile is one simulated point's wall-clock cost.
type PointProfile struct {
	// Point names the point ("<workload> on <config>").
	Point string `json:"point"`
	// Seconds is the point's simulation wall time.
	Seconds float64 `json:"seconds"`
	// NsPerInstruction is the simulator's cost per simulated warp
	// instruction at this point — the normalized throughput number that
	// makes points of different sizes comparable and hot-path
	// regressions visible regardless of grid shape. Zero when the point
	// issued no instructions.
	NsPerInstruction float64 `json:"ns_per_instruction,omitempty"`
}

// RunnerProfile summarizes a run engine's execution: where the wall
// clock went, how much the memo cache saved, and how busy the worker
// pool was.
type RunnerProfile struct {
	// Workers is the pool's concurrency bound.
	Workers int `json:"workers"`
	// Points is the total number of points resolved (including cache
	// hits); Simulated and CacheHits split it.
	Points    int `json:"points"`
	Simulated int `json:"simulated"`
	CacheHits int `json:"cache_hits"`
	// Coalesced is the subset of CacheHits that joined a simulation
	// still in flight when claimed — one execution shared by concurrent
	// requests rather than a read of a resolved memo entry.
	Coalesced int `json:"coalesced,omitempty"`
	// Failed counts executions that resolved with an error (never
	// memoized, so retries that succeed also count under Simulated).
	Failed int `json:"failed,omitempty"`
	// SimWallSeconds is cumulative wall time inside the simulator;
	// BatchWallSeconds is elapsed time across Run calls.
	SimWallSeconds   float64 `json:"sim_wall_seconds"`
	BatchWallSeconds float64 `json:"batch_wall_seconds"`
	// Occupancy is SimWall / (BatchWall × Workers): the fraction of
	// worker-seconds spent simulating. Low occupancy on a large grid
	// means the pool starved (cache hits, skew, or too many workers).
	Occupancy float64 `json:"occupancy"`
	// WarpInstructions is the cumulative warp-instruction count over all
	// simulated (non-memoized) points; NsPerInstruction is SimWallSeconds
	// normalized by it — the engine-wide throughput number that the live
	// /metrics endpoint exports. Zero when nothing was simulated.
	WarpInstructions uint64  `json:"warp_instructions"`
	NsPerInstruction float64 `json:"ns_per_instruction,omitempty"`
	// Slowest lists the most expensive simulated points, costliest
	// first (bounded; ties broken by name for determinism).
	Slowest []PointProfile `json:"slowest,omitempty"`
}

// String renders the one-line summary printed by -progress.
func (p RunnerProfile) String() string {
	s := fmt.Sprintf("workers=%d points=%d simulated=%d cache_hits=%d sim_wall=%.2fs batch_wall=%.2fs occupancy=%.0f%%",
		p.Workers, p.Points, p.Simulated, p.CacheHits,
		p.SimWallSeconds, p.BatchWallSeconds, p.Occupancy*100)
	if len(p.Slowest) > 0 {
		s += fmt.Sprintf(" slowest=%s (%.2fs)", p.Slowest[0].Point, p.Slowest[0].Seconds)
	}
	return s
}

// PointCounters pairs one grid point's identity with its counters in
// the -counters export.
type PointCounters struct {
	// Workload is the application name.
	Workload string `json:"workload"`
	// Config is the human-readable configuration name.
	Config string `json:"config"`
	// SimKey is the canonical simulation key (sim.Config.SimKey plus
	// workload and scale) identifying the memoized run.
	SimKey string `json:"sim_key"`
	// Counters is the run's observability snapshot.
	Counters *Counters `json:"counters"`
	// Energy is the exact per-GPM/per-term/per-link decomposition of the
	// point's model energy, when the exporting CLI can price the point.
	Energy *EnergyAttribution `json:"energy,omitempty"`
	// OperatingPoint records the DVFS operating point and governor
	// decision behind the run. nil for nominal fixed-clock runs, so
	// pre-DVFS exports are byte-identical.
	OperatingPoint *OperatingPointInfo `json:"operating_point,omitempty"`
}

// OperatingPointInfo is the additive (v2-compatible) DVFS section of a
// point record: which clock/voltage the point ran at and, when a
// governor chose it, which policy and why.
type OperatingPointInfo struct {
	// FreqMHz is the core clock in MHz.
	FreqMHz float64 `json:"freq_mhz"`
	// VoltageV is the supply voltage in volts.
	VoltageV float64 `json:"voltage_v,omitempty"`
	// Governor names the policy that chose the point ("fixed",
	// "sweetspot", "racetoidle", "pacetofinish"); empty when the point
	// was pinned by hand.
	Governor string `json:"governor,omitempty"`
	// Reason is the governor's one-line rationale.
	Reason string `json:"reason,omitempty"`
}

// Report is the top-level -counters JSON document.
type Report struct {
	// SchemaVersion is the obs JSON schema version.
	SchemaVersion int `json:"schema_version"`
	// Profile is the run engine's execution profile, when available.
	Profile *RunnerProfile `json:"runner_profile,omitempty"`
	// Points holds one entry per grid point, in grid order. Points that
	// collapse to one memoized simulation repeat the shared counters.
	Points []PointCounters `json:"points"`
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	if r.SchemaVersion == 0 {
		r.SchemaVersion = SchemaVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path atomically: the JSON is written
// to a temporary file in the same directory and renamed into place, so
// a reader (or a crash) never observes a partial export and a failed
// write leaves any previous file untouched.
func (r *Report) WriteFile(path string) error {
	return WriteFileAtomic(path, r.WriteJSON)
}

// WriteFileAtomic streams write into a temp file next to path and
// renames it over path on success; on any failure the temp file is
// removed and path is left as it was. It is the shared commit
// discipline of every artifact this repository persists — counter
// reports, Chrome traces, and the gpujouled result cache — so a crash
// or a concurrent reader never observes a torn file.
//
// A path ending in ".gz" is gzip-compressed transparently: write
// receives the compression writer, and the commit happens only after
// the gzip stream is flushed and closed, so a ".gz" artifact on disk is
// always a complete, valid stream. Every reader in this repository
// sniffs the gzip magic bytes rather than trusting the extension (see
// OpenAuto), so compressed and plain artifacts are interchangeable.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(stage string, err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("obs: %s %s: %w", stage, path, err)
	}
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		if err := write(gz); err != nil {
			return fail("writing", err)
		}
		if err := gz.Close(); err != nil {
			return fail("compressing", err)
		}
	} else if err := write(f); err != nil {
		return fail("writing", err)
	}
	if err := f.Close(); err != nil {
		return fail("closing", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: committing %s: %w", path, err)
	}
	return nil
}
