package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCollectorSampling(t *testing.T) {
	c := NewCollector(4, 1000)
	if len(c.GPMs) != 4 || c.GPMs[3].GPM != 3 {
		t.Fatalf("collector GPM slots wrong: %+v", c.GPMs)
	}

	c.GPMs[0].WarpInstructions = 10
	c.MaybeSample(500, 7, 3) // before the first sampling point: no-op
	if len(c.samples) != 0 {
		t.Fatalf("sampled too early: %+v", c.samples)
	}
	c.MaybeSample(1200, 7, 3)
	c.MaybeSample(1400, 9, 2) // same sampling window: no-op
	c.GPMs[1].WarpInstructions = 5
	c.MaybeSample(5000, 1, 0) // skips several windows, records once
	if len(c.samples) != 2 {
		t.Fatalf("got %d samples, want 2: %+v", len(c.samples), c.samples)
	}
	if c.samples[0].TimeCycles != 1200 || c.samples[0].ActiveWarps != 7 ||
		c.samples[0].WarpInstructions != 10 {
		t.Errorf("first sample wrong: %+v", c.samples[0])
	}
	if c.samples[1].TimeCycles != 5000 || c.samples[1].WarpInstructions != 15 {
		t.Errorf("second sample wrong: %+v", c.samples[1])
	}
	// The next sampling point must be past the last recorded time.
	if c.next <= 5000 {
		t.Errorf("next sampling point %g not advanced past 5000", c.next)
	}
}

func TestCollectorSamplingDisabled(t *testing.T) {
	c := NewCollector(2, 0)
	c.MaybeSample(1e9, 1, 1)
	if len(c.samples) != 0 {
		t.Error("interval 0 must disable sampling")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	c := NewCollector(2, 0)
	c.GPMs[0].L1Accesses = 42
	snap := c.Snapshot([]LinkCounters{{Link: "l0", Bytes: 128}})
	c.GPMs[0].L1Accesses = 99
	if snap.GPMs[0].L1Accesses != 42 {
		t.Error("snapshot must copy GPM counters, not alias them")
	}
	if snap.SchemaVersion != SchemaVersion {
		t.Errorf("snapshot schema version = %d", snap.SchemaVersion)
	}
	if snap.TotalLinkBytes() != 128 {
		t.Errorf("TotalLinkBytes = %d", snap.TotalLinkBytes())
	}
	c.GPMs[1].WarpInstructions = 7
	if got := c.Snapshot(nil).TotalWarpInstructions(); got != 7 {
		t.Errorf("TotalWarpInstructions = %d", got)
	}
}

func TestReportJSONSchema(t *testing.T) {
	rep := &Report{
		Profile: &RunnerProfile{Workers: 4, Points: 10, Simulated: 6, CacheHits: 4},
		Points: []PointCounters{{
			Workload: "Stream",
			Config:   "4-GPM/2x-BW/ring/on-package",
			SimKey:   "k",
			Counters: &Counters{
				SchemaVersion: SchemaVersion,
				GPMs:          []GPMCounters{{GPM: 0, WarpInstructions: 1}},
				Links:         []LinkCounters{{Link: "ring-link[d0][0]", Bytes: 256}},
			},
		}},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != SchemaVersion {
		t.Error("WriteJSON must stamp the schema version")
	}

	// The documented field names are the schema; pin the load-bearing ones.
	for _, field := range []string{
		`"schema_version"`, `"runner_profile"`, `"points"`,
		`"workload"`, `"config"`, `"sim_key"`, `"counters"`,
		`"gpms"`, `"gpm"`, `"warp_instructions"`, `"links"`, `"link"`, `"bytes"`,
	} {
		if !strings.Contains(buf.String(), field) {
			t.Errorf("report JSON lacks documented field %s", field)
		}
	}

	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != SchemaVersion || len(back.Points) != 1 ||
		back.Points[0].Counters.GPMs[0].WarpInstructions != 1 {
		t.Errorf("round trip mangled the report: %+v", back)
	}
}

func TestReportWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "counters.json")
	rep := &Report{Points: []PointCounters{}}
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Error("written file is not valid JSON")
	}

	// Failure path: writing into a directory that does not exist fails
	// without leaving a file behind.
	bad := filepath.Join(dir, "missing", "counters.json")
	if err := rep.WriteFile(bad); err == nil {
		t.Error("WriteFile into a missing directory must fail")
	}
}

func TestRunnerProfileString(t *testing.T) {
	p := RunnerProfile{
		Workers: 4, Points: 12, Simulated: 8, CacheHits: 4,
		SimWallSeconds: 2.0, BatchWallSeconds: 1.0, Occupancy: 0.5,
		Slowest: []PointProfile{{Point: "Stream on 32-GPM", Seconds: 1.5}},
	}
	s := p.String()
	for _, want := range []string{"workers=4", "points=12", "simulated=8",
		"cache_hits=4", "occupancy=50%", "Stream on 32-GPM"} {
		if !strings.Contains(s, want) {
			t.Errorf("profile summary %q lacks %q", s, want)
		}
	}
}
