// Shared trace-schema readers: the file-opening discipline every
// consumer of persisted observability artifacts uses. Artifacts may be
// stored plain or gzip-compressed (WriteFileAtomic compresses ".gz"
// paths); readers never trust the extension — they sniff the two gzip
// magic bytes, so a renamed or piped file still opens correctly.
package obs

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// gzipMagic is the two-byte header every gzip stream starts with
// (RFC 1952 §2.3.1).
var gzipMagic = []byte{0x1f, 0x8b}

// MaybeGzip wraps r with transparent gzip decompression when the
// stream starts with the gzip magic bytes, and returns it unchanged
// (buffered) otherwise. The decision reads nothing from the logical
// stream: the sniffed bytes are unread for the next consumer.
func MaybeGzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(2)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if len(head) == 2 && head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, err
		}
		return gz, nil
	}
	return br, nil
}

// OpenAuto opens path for reading with transparent gzip decompression
// (sniffed, not extension-based). Closing the returned ReadCloser
// closes the underlying file.
func OpenAuto(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := MaybeGzip(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: opening %s: %w", path, err)
	}
	return &autoReadCloser{r: r, f: f}, nil
}

// autoReadCloser pairs the (possibly decompressing) reader with the
// file it draws from.
type autoReadCloser struct {
	r io.Reader
	f *os.File
}

func (a *autoReadCloser) Read(p []byte) (int, error) { return a.r.Read(p) }

func (a *autoReadCloser) Close() error {
	if gz, ok := a.r.(*gzip.Reader); ok {
		// Surface a truncated stream on Close even if the consumer
		// stopped reading early; the file close still runs.
		if err := gz.Close(); err != nil {
			a.f.Close()
			return err
		}
	}
	return a.f.Close()
}

// ReadTraceFile reads one exact cycles-domain Trace from a JSON file
// (plain or gzipped): the schema-versioned form attached to sim.Result
// by sim.WithTrace, as opposed to the rendered Chrome trace_event
// document. Files holding a full sim.Result JSON also load — the
// embedded "trace" section is extracted.
func ReadTraceFile(path string) (*Trace, error) {
	rc, err := OpenAuto(path)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		return nil, fmt.Errorf("obs: reading %s: %w", path, err)
	}
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("obs: parsing %s: %w", path, err)
	}
	if len(t.Launches) == 0 {
		// Maybe a document embedding the trace (a sim.Result export).
		var wrapper struct {
			Trace *Trace `json:"trace"`
		}
		if err := json.Unmarshal(data, &wrapper); err == nil && wrapper.Trace != nil {
			return wrapper.Trace, nil
		}
	}
	if t.ClockHz == 0 && len(t.Launches) == 0 {
		return nil, fmt.Errorf("obs: %s holds no trace (want an obs.Trace JSON document)", path)
	}
	return &t, nil
}
