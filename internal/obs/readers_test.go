package obs

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleTrace is a minimal but non-trivial trace for round-trips.
func sampleTrace() *Trace {
	return &Trace{
		SchemaVersion: SchemaVersion,
		ClockHz:       1e9,
		Launches: []TraceLaunch{
			{Kernel: "a", StartCycles: 0, EndCycles: 100,
				GPMs: []TraceGPMPhase{{GPM: 0, BusyCycles: 80, StallCycles: 20}}},
			{Kernel: "b", StartCycles: 150, EndCycles: 400,
				GPMs: []TraceGPMPhase{{GPM: 0, BusyCycles: 50, StallCycles: 200}}},
		},
		Episodes: []LinkEpisode{{Link: "ring[0]", StartCycles: 200, EndCycles: 300, Utilization: 0.95}},
		Samples:  []Sample{{TimeCycles: 100, ActiveWarps: 4}},
	}
}

// TestWriteFileAtomicGzip checks the ".gz" path of the atomic writer:
// the committed file is a complete gzip stream whose payload matches a
// plain write, and OpenAuto reads it back transparently.
func TestWriteFileAtomicGzip(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "out.json")
	zipped := filepath.Join(dir, "out.json.gz")
	write := func(w io.Writer) error {
		_, err := io.WriteString(w, `{"hello":"world"}`)
		return err
	}
	if err := WriteFileAtomic(plain, write); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(zipped, write); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf(".gz file does not start with the gzip magic: % x", raw[:2])
	}
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := os.ReadFile(plain)
	if !bytes.Equal(payload, want) {
		t.Errorf("gzip payload = %q, want %q", payload, want)
	}

	for _, path := range []string{plain, zipped} {
		rc, err := OpenAuto(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(rc)
		if err != nil {
			t.Fatal(err)
		}
		if err := rc.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("OpenAuto(%s) = %q, want %q", path, got, want)
		}
	}
}

// TestMaybeGzipSniffsNotExtension checks the magic-byte sniff: a ".gz"
// name holding plain bytes reads as plain, short streams don't error.
func TestMaybeGzipSniffsNotExtension(t *testing.T) {
	r, err := MaybeGzip(strings.NewReader("plain text"))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	if string(got) != "plain text" {
		t.Errorf("plain stream read as %q", got)
	}
	for _, short := range []string{"", "x"} {
		r, err := MaybeGzip(strings.NewReader(short))
		if err != nil {
			t.Fatalf("short stream %q: %v", short, err)
		}
		got, _ := io.ReadAll(r)
		if string(got) != short {
			t.Errorf("short stream %q read as %q", short, got)
		}
	}
}

// TestReadTraceFile checks the exact-trace reader over plain, gzipped,
// and sim.Result-embedded documents.
func TestReadTraceFile(t *testing.T) {
	dir := t.TempDir()
	tr := sampleTrace()

	writeJSON := func(path string, v any) {
		t.Helper()
		if err := WriteFileAtomic(path, func(w io.Writer) error {
			return json.NewEncoder(w).Encode(v)
		}); err != nil {
			t.Fatal(err)
		}
	}

	plain := filepath.Join(dir, "trace.json")
	zipped := filepath.Join(dir, "trace.json.gz")
	embedded := filepath.Join(dir, "result.json")
	writeJSON(plain, tr)
	writeJSON(zipped, tr)
	writeJSON(embedded, map[string]any{"cycles": 400, "trace": tr})

	for _, path := range []string{plain, zipped, embedded} {
		got, err := ReadTraceFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got.ClockHz != tr.ClockHz || len(got.Launches) != len(tr.Launches) {
			t.Errorf("%s: read %d launches at %g Hz, want %d at %g",
				path, len(got.Launches), got.ClockHz, len(tr.Launches), tr.ClockHz)
		}
		if got.Launches[1].Kernel != "b" || got.Launches[1].EndCycles != 400 {
			t.Errorf("%s: launch 1 = %+v", path, got.Launches[1])
		}
	}

	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte(`{"nope":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTraceFile(junk); err == nil {
		t.Error("trace-less document read without error")
	}
}
