package obs_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"gpujoule/internal/obs"
	"gpujoule/internal/sim"
)

// collectJSONSchema walks the exported struct fields reachable from the
// seed values and returns one sorted "pkg.Type.jsonname" line per
// serialized field — the complete exported JSON surface.
func collectJSONSchema(seeds ...any) []string {
	seen := map[reflect.Type]bool{}
	var lines []string
	var walk func(t reflect.Type)
	walk = func(t reflect.Type) {
		switch t.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Array, reflect.Map:
			walk(t.Elem())
			return
		case reflect.Struct:
		default:
			return
		}
		if seen[t] {
			return
		}
		seen[t] = true
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			name, _, _ := strings.Cut(f.Tag.Get("json"), ",")
			if name == "-" {
				continue
			}
			if name == "" {
				name = f.Name
			}
			lines = append(lines, fmt.Sprintf("%s.%s", t.String(), name))
			walk(f.Type)
		}
	}
	for _, s := range seeds {
		walk(reflect.TypeOf(s))
	}
	sort.Strings(lines)
	return lines
}

// TestSchemaStability is the tripwire for silent schema drift: the full
// set of exported JSON field names reachable from the public result and
// report types must match the golden file for the current
// obs.SchemaVersion. Renaming or removing a serialized field without
// bumping SchemaVersion fails here; after a deliberate change, bump
// obs.SchemaVersion and regenerate the new version's golden with
//
//	UPDATE_OBS_SCHEMA=1 go test ./internal/obs/ -run TestSchemaStability
func TestSchemaStability(t *testing.T) {
	lines := collectJSONSchema(
		sim.Result{},
		obs.Report{},
		obs.EnergyAttribution{},
		obs.Trace{},
		obs.RunnerProfile{},
	)
	got := strings.Join(lines, "\n") + "\n"
	golden := filepath.Join("testdata", fmt.Sprintf("schema_v%d.golden", obs.SchemaVersion))

	if os.Getenv("UPDATE_OBS_SCHEMA") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d fields)", golden, len(lines))
		return
	}

	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("no golden schema for SchemaVersion %d (%v).\n"+
			"If the exported JSON schema changed deliberately, bump obs.SchemaVersion and run\n"+
			"  UPDATE_OBS_SCHEMA=1 go test ./internal/obs/ -run TestSchemaStability",
			obs.SchemaVersion, err)
	}
	if got == string(want) {
		return
	}

	wantSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(string(want)), "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range lines {
		gotSet[l] = true
	}
	var added, removed []string
	for l := range gotSet {
		if !wantSet[l] {
			added = append(added, l)
		}
	}
	for l := range wantSet {
		if !gotSet[l] {
			removed = append(removed, l)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	t.Errorf("exported JSON schema drifted from %s without a SchemaVersion bump.\n"+
		"added: %v\nremoved: %v\n"+
		"Consumers pin these names; if the change is deliberate, bump obs.SchemaVersion\n"+
		"and regenerate with UPDATE_OBS_SCHEMA=1 go test ./internal/obs/ -run TestSchemaStability",
		golden, added, removed)
}
