// Live introspection for long sweeps and the resident service: an
// HTTP surface that exposes
//
//	/debug/pprof/   the standard net/http/pprof handlers
//	/progress       a JSON snapshot of batch progress and the runner
//	                profile (points done/total, memo hits, occupancy,
//	                ns/instruction)
//	/metrics        the same figures in Prometheus text exposition
//	                format, hand-rendered so no dependency is pulled in
//
// so a multi-hour sweep is inspectable (and scrapeable) without
// -progress log scraping. CLIs open it with ServeHTTP (the -httpaddr
// flag of cmd/sweep and cmd/gpmsim, strictly opt-in); the gpujouled
// daemon instead builds the surface with NewServer and mounts it on
// its own mux with Register, extending /metrics with service gauges
// via AddMetrics.
package profiling

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"gpujoule/internal/obs"
)

// Progress is the live batch position published via SetProgress.
type Progress struct {
	// Done and Total are the resolved and total point counts of the
	// current batch.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// HTTPServer is the live-introspection surface of one process. Built
// with NewServer it is just a handler set to mount on an existing mux;
// ServeHTTP additionally opens its own listener.
type HTTPServer struct {
	ln      net.Listener
	srv     *http.Server
	profile func() obs.RunnerProfile

	mu     sync.Mutex
	prog   Progress
	extras []func(io.Writer)
}

// NewServer builds the introspection surface without opening a
// listener. profile supplies the current runner profile on demand and
// may be nil before an engine exists. Mount the endpoints with
// Register.
func NewServer(profile func() obs.RunnerProfile) *HTTPServer {
	return &HTTPServer{profile: profile}
}

// Register mounts the introspection endpoints (/debug/pprof/,
// /progress, /metrics) on the given mux.
func (s *HTTPServer) Register(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/metrics", s.handleMetrics)
}

// AddMetrics appends an emitter to the /metrics endpoint: on every
// scrape it is called after the built-in runner gauges and may write
// additional families with WriteGauge and WriteCounter. The gpujouled
// service uses this to export its cache, coalescing, and queue gauges
// through the same scrape.
func (s *HTTPServer) AddMetrics(emit func(w io.Writer)) {
	s.mu.Lock()
	s.extras = append(s.extras, emit)
	s.mu.Unlock()
}

// ServeHTTP starts a standalone introspection server on addr
// (host:port; an empty host binds all interfaces, port 0 picks a free
// port). The server runs until Close.
func ServeHTTP(addr string, profile func() obs.RunnerProfile) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("profiling: listening on %s: %w", addr, err)
	}
	s := NewServer(profile)
	s.ln = ln
	mux := http.NewServeMux()
	s.Register(mux)
	mux.HandleFunc("/", s.handleIndex)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (resolving a :0 port).
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// SetProgress publishes the batch position; wire it to the run
// engine's PointDone events.
func (s *HTTPServer) SetProgress(done, total int) {
	s.mu.Lock()
	s.prog = Progress{Done: done, Total: total}
	s.mu.Unlock()
}

// Close shuts a standalone server down immediately; it is a no-op for
// a surface built with NewServer.
func (s *HTTPServer) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *HTTPServer) snapshot() (Progress, obs.RunnerProfile, []func(io.Writer)) {
	s.mu.Lock()
	prog := s.prog
	extras := s.extras
	s.mu.Unlock()
	var rp obs.RunnerProfile
	if s.profile != nil {
		rp = s.profile()
	}
	return prog, rp, extras
}

func (s *HTTPServer) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "gpujoule live introspection\n\n"+
		"  /progress      batch progress + runner profile (JSON)\n"+
		"  /metrics       Prometheus text exposition\n"+
		"  /debug/pprof/  net/http/pprof\n")
}

func (s *HTTPServer) handleProgress(w http.ResponseWriter, r *http.Request) {
	prog, rp, _ := s.snapshot()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		SchemaVersion int               `json:"schema_version"`
		Progress      Progress          `json:"progress"`
		Profile       obs.RunnerProfile `json:"runner_profile"`
	}{obs.SchemaVersion, prog, rp})
}

// WriteGauge renders one Prometheus gauge family in text exposition
// format (version 0.0.4) — hand-rolled, a handful of families does not
// justify a client-library dependency.
func WriteGauge(w io.Writer, name, help string, value float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, value)
}

// WriteCounter renders one Prometheus counter family in text
// exposition format.
func WriteCounter(w io.Writer, name, help string, value float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, value)
}

func (s *HTTPServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	prog, rp, extras := s.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteGauge(w, "gpujoule_batch_points_done", "Points resolved in the current batch.", float64(prog.Done))
	WriteGauge(w, "gpujoule_batch_points_total", "Points in the current batch.", float64(prog.Total))
	WriteGauge(w, "gpujoule_runner_workers", "Worker-pool concurrency bound.", float64(rp.Workers))
	WriteGauge(w, "gpujoule_runner_points", "Points resolved over the engine's lifetime.", float64(rp.Points))
	WriteGauge(w, "gpujoule_runner_simulated", "Real simulator executions.", float64(rp.Simulated))
	WriteGauge(w, "gpujoule_runner_cache_hits", "Points served from the memo cache.", float64(rp.CacheHits))
	WriteGauge(w, "gpujoule_runner_coalesced", "Points that joined an in-flight simulation.", float64(rp.Coalesced))
	WriteGauge(w, "gpujoule_runner_failed", "Simulator executions that resolved with an error.", float64(rp.Failed))
	WriteGauge(w, "gpujoule_runner_sim_wall_seconds", "Cumulative wall time inside the simulator.", rp.SimWallSeconds)
	WriteGauge(w, "gpujoule_runner_batch_wall_seconds", "Elapsed wall time across Run calls.", rp.BatchWallSeconds)
	WriteGauge(w, "gpujoule_runner_occupancy", "Fraction of worker-seconds spent simulating.", rp.Occupancy)
	WriteGauge(w, "gpujoule_runner_warp_instructions", "Cumulative simulated warp instructions.", float64(rp.WarpInstructions))
	WriteGauge(w, "gpujoule_runner_ns_per_instruction", "Simulator cost per warp instruction.", rp.NsPerInstruction)
	WriteCounter(w, "gpujoule_trace_runs_total", "Simulation runs that recorded a timeline trace.", float64(obs.TraceRunsTotal()))
	WriteCounter(w, "gpujoule_trace_bytes_written_total", "Bytes of Chrome trace_event output rendered (pre-compression).", float64(obs.TraceBytesWrittenTotal()))
	for _, emit := range extras {
		emit(w)
	}
}
