// Live introspection for long sweeps: an optional HTTP server (the
// -httpaddr flag of cmd/sweep and cmd/gpmsim) that exposes
//
//	/debug/pprof/   the standard net/http/pprof handlers
//	/progress       a JSON snapshot of batch progress and the runner
//	                profile (points done/total, memo hits, occupancy,
//	                ns/instruction)
//	/metrics        the same figures in Prometheus text exposition
//	                format, hand-rendered so no dependency is pulled in
//
// so a multi-hour sweep is inspectable (and scrapeable) without
// -progress log scraping. The server is strictly opt-in: without
// -httpaddr no listener is opened and the CLI's output is untouched.
package profiling

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"gpujoule/internal/obs"
)

// Progress is the live batch position published via SetProgress.
type Progress struct {
	// Done and Total are the resolved and total point counts of the
	// current batch.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// HTTPServer is the live-introspection endpoint of one CLI process.
type HTTPServer struct {
	ln      net.Listener
	srv     *http.Server
	profile func() obs.RunnerProfile

	mu   sync.Mutex
	prog Progress
}

// ServeHTTP starts the introspection server on addr (host:port; an
// empty host binds all interfaces, port 0 picks a free port). profile
// supplies the current runner profile on demand and may be nil before
// an engine exists. The server runs until Close.
func ServeHTTP(addr string, profile func() obs.RunnerProfile) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("profiling: listening on %s: %w", addr, err)
	}
	s := &HTTPServer{ln: ln, profile: profile}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/", s.handleIndex)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (resolving a :0 port).
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// SetProgress publishes the batch position; wire it to the run
// engine's PointDone events.
func (s *HTTPServer) SetProgress(done, total int) {
	s.mu.Lock()
	s.prog = Progress{Done: done, Total: total}
	s.mu.Unlock()
}

// Close shuts the server down immediately.
func (s *HTTPServer) Close() error { return s.srv.Close() }

func (s *HTTPServer) snapshot() (Progress, obs.RunnerProfile) {
	s.mu.Lock()
	prog := s.prog
	s.mu.Unlock()
	var rp obs.RunnerProfile
	if s.profile != nil {
		rp = s.profile()
	}
	return prog, rp
}

func (s *HTTPServer) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "gpujoule live introspection\n\n"+
		"  /progress      batch progress + runner profile (JSON)\n"+
		"  /metrics       Prometheus text exposition\n"+
		"  /debug/pprof/  net/http/pprof\n")
}

func (s *HTTPServer) handleProgress(w http.ResponseWriter, r *http.Request) {
	prog, rp := s.snapshot()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		SchemaVersion int               `json:"schema_version"`
		Progress      Progress          `json:"progress"`
		Profile       obs.RunnerProfile `json:"runner_profile"`
	}{obs.SchemaVersion, prog, rp})
}

// handleMetrics renders the Prometheus text exposition format
// (version 0.0.4) by hand — a handful of gauges does not justify a
// client-library dependency.
func (s *HTTPServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	prog, rp := s.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	gauge := func(name, help string, value float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, value)
	}
	gauge("gpujoule_batch_points_done", "Points resolved in the current batch.", float64(prog.Done))
	gauge("gpujoule_batch_points_total", "Points in the current batch.", float64(prog.Total))
	gauge("gpujoule_runner_workers", "Worker-pool concurrency bound.", float64(rp.Workers))
	gauge("gpujoule_runner_points", "Points resolved over the engine's lifetime.", float64(rp.Points))
	gauge("gpujoule_runner_simulated", "Real simulator executions.", float64(rp.Simulated))
	gauge("gpujoule_runner_cache_hits", "Points served from the memo cache.", float64(rp.CacheHits))
	gauge("gpujoule_runner_sim_wall_seconds", "Cumulative wall time inside the simulator.", rp.SimWallSeconds)
	gauge("gpujoule_runner_batch_wall_seconds", "Elapsed wall time across Run calls.", rp.BatchWallSeconds)
	gauge("gpujoule_runner_occupancy", "Fraction of worker-seconds spent simulating.", rp.Occupancy)
	gauge("gpujoule_runner_warp_instructions", "Cumulative simulated warp instructions.", float64(rp.WarpInstructions))
	gauge("gpujoule_runner_ns_per_instruction", "Simulator cost per warp instruction.", rp.NsPerInstruction)
}
