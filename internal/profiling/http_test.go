package profiling

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gpujoule/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServeHTTP spins the introspection server up on an ephemeral port
// and checks every endpoint family: /progress reflects SetProgress and
// the wired profile callback, /metrics renders the Prometheus gauges,
// and the pprof mux is mounted.
func TestServeHTTP(t *testing.T) {
	profile := func() obs.RunnerProfile {
		return obs.RunnerProfile{Workers: 3, Points: 7, CacheHits: 2, WarpInstructions: 1000}
	}
	srv, err := ServeHTTP("127.0.0.1:0", profile)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	srv.SetProgress(5, 12)

	code, body := get(t, base+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress: status %d", code)
	}
	var prog struct {
		SchemaVersion int               `json:"schema_version"`
		Progress      Progress          `json:"progress"`
		Profile       obs.RunnerProfile `json:"runner_profile"`
	}
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress is not valid JSON: %v\n%s", err, body)
	}
	if prog.SchemaVersion != obs.SchemaVersion {
		t.Errorf("schema_version = %d, want %d", prog.SchemaVersion, obs.SchemaVersion)
	}
	if prog.Progress != (Progress{Done: 5, Total: 12}) {
		t.Errorf("progress = %+v, want 5/12", prog.Progress)
	}
	if prog.Profile.Workers != 3 || prog.Profile.Points != 7 || prog.Profile.WarpInstructions != 1000 {
		t.Errorf("runner_profile = %+v, want the wired callback's values", prog.Profile)
	}

	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		"gpujoule_batch_points_done 5\n",
		"gpujoule_batch_points_total 12\n",
		"gpujoule_runner_workers 3\n",
		"gpujoule_runner_cache_hits 2\n",
		"gpujoule_runner_warp_instructions 1000\n",
		"# TYPE gpujoule_runner_occupancy gauge\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	if code, _ = get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: status %d", code)
	}
	if code, body = get(t, base+"/"); code != http.StatusOK || !strings.Contains(body, "/progress") {
		t.Errorf("index: status %d body %q", code, body)
	}
	if code, _ = get(t, base+"/no-such-page"); code != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", code)
	}
}

// TestServeHTTPNilProfile checks the pre-engine window: a nil profile
// callback serves a zero runner profile instead of crashing.
func TestServeHTTPNilProfile(t *testing.T) {
	srv, err := ServeHTTP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, "http://"+srv.Addr()+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress: status %d", code)
	}
	if !strings.Contains(body, `"runner_profile"`) {
		t.Errorf("/progress lacks runner_profile section:\n%s", body)
	}
}

// TestServeHTTPBadAddr checks that an unusable listen address surfaces
// as an error instead of a background panic.
func TestServeHTTPBadAddr(t *testing.T) {
	if _, err := ServeHTTP("256.256.256.256:0", nil); err == nil {
		t.Fatal("ServeHTTP accepted an unusable address")
	}
}

// TestVersionString checks the -version line carries the binary name,
// the obs schema version, and the Go runtime version.
func TestVersionString(t *testing.T) {
	v := VersionString("sweep")
	if !strings.HasPrefix(v, "sweep ") {
		t.Errorf("version %q lacks the binary name prefix", v)
	}
	for _, want := range []string{"obs schema v", "go1"} {
		if !strings.Contains(v, want) {
			t.Errorf("version %q missing %q", v, want)
		}
	}
}

// TestRegisterAndAddMetrics exercises the embeddable surface the
// gpujouled daemon uses: NewServer + Register on a caller-owned mux,
// with an AddMetrics extension showing up in the same /metrics scrape
// after the built-in runner gauges.
func TestRegisterAndAddMetrics(t *testing.T) {
	s := NewServer(func() obs.RunnerProfile {
		return obs.RunnerProfile{Workers: 2, Coalesced: 3}
	})
	s.AddMetrics(func(w io.Writer) {
		WriteCounter(w, "gpujoule_test_extra", "Extension metric.", 42)
	})
	mux := http.NewServeMux()
	s.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		"gpujoule_runner_workers 2\n",
		"gpujoule_runner_coalesced 3\n",
		"# TYPE gpujoule_test_extra counter\n",
		"gpujoule_test_extra 42\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	idx := strings.Index(body, "gpujoule_runner_workers")
	if ext := strings.Index(body, "gpujoule_test_extra"); ext < idx {
		t.Error("extension metrics must follow the built-in gauges")
	}
	if code, _ := get(t, ts.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: status %d", code)
	}
	// Close on a non-listening surface is a harmless no-op.
	if err := s.Close(); err != nil {
		t.Errorf("Close on NewServer surface: %v", err)
	}
}

// TestBuildVersion checks the cache-stamp component is non-empty and
// consistent with VersionString.
func TestBuildVersion(t *testing.T) {
	v := BuildVersion()
	if v == "" {
		t.Fatal("BuildVersion is empty")
	}
	if !strings.Contains(VersionString("x"), v) {
		t.Errorf("VersionString does not embed BuildVersion %q", v)
	}
}
