// Package profiling wires the standard pprof collectors into the
// repo's CLIs with two flags, so any slow sweep can be profiled in
// place (see the Profiling section of the README).
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations selected on a command line.
type Flags struct {
	CPU string
	Mem string
}

// AddFlags registers -cpuprofile and -memprofile on the default flag
// set and returns the destination holder. Call Start after flag.Parse.
func AddFlags() *Flags {
	f := &Flags{}
	flag.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file on exit")
	return f
}

// Start begins CPU profiling if requested and returns a stop function
// that finishes the CPU profile and writes the heap profile. The stop
// function must run on the normal exit path (defer it in main); error
// exits through os.Exit lose the profiles, as with net/http/pprof.
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if f.CPU != "" {
		cpuFile, err = os.Create(f.CPU)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if f.Mem != "" {
			mf, err := os.Create(f.Mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer mf.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
	}, nil
}
