package profiling

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"gpujoule/internal/obs"
)

// BuildVersion returns the module version of the running binary, with
// the VCS revision appended when the build recorded one ("(devel)"
// otherwise). Besides -version output it is one component of the
// gpujouled result-cache stamp: a cache entry written by one build is
// never served by a binary whose recorded version differs.
func BuildVersion() string {
	version := "(devel)"
	revision := ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				revision = s.Value[:12]
			}
		}
	}
	if revision != "" {
		version += "+" + revision
	}
	return version
}

// VersionString renders the -version output of a CLI: the binary name,
// the module version (with VCS revision when the build recorded one),
// the obs JSON schema version, and the Go toolchain. Archived counter,
// energy, and trace artifacts are traceable to a schema through it.
func VersionString(binary string) string {
	return fmt.Sprintf("%s %s (obs schema v%d, %s)", binary, BuildVersion(), obs.SchemaVersion, runtime.Version())
}
