package profiling

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"gpujoule/internal/obs"
)

// VersionString renders the -version output of a CLI: the binary name,
// the module version (with VCS revision when the build recorded one),
// the obs JSON schema version, and the Go toolchain. Archived counter,
// energy, and trace artifacts are traceable to a schema through it.
func VersionString(binary string) string {
	version := "(devel)"
	revision := ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				revision = s.Value[:12]
			}
		}
	}
	if revision != "" {
		version += "+" + revision
	}
	return fmt.Sprintf("%s %s (obs schema v%d, %s)", binary, version, obs.SchemaVersion, runtime.Version())
}
