// Package resultcache is the disk-backed, content-addressed simulation
// result store behind the gpujouled service. A cycle-level simulation
// of one (workload, scale, config) point costs tens of seconds at paper
// scale; the paper's methodology re-evaluates the same grid points
// across figures, ablations, and user sweeps, so a warm point should
// never simulate again — across requests and across daemon restarts.
//
// Addressing. An entry's address is SHA-256 over (stamp, key):
//
//   - the key is the point's canonical simulation identity — the
//     runner's memoization key (workload name, scale, sim.Config.SimKey)
//     plus the observability option signature, since a run with
//     counters produces a different Result than one without;
//   - the stamp binds the entry to its producer: obs.SchemaVersion and
//     the binary's build version. A schema bump or a new binary changes
//     every address, so stale entries are never *served*; they are
//     simply unreachable and age out when the directory is cleaned.
//
// Because the address commits to the full identity, the cache never
// needs invalidation logic: a lookup either finds the exact bytes a
// byte-identical simulation would produce, or misses.
//
// Integrity. Entries are JSON envelopes carrying the stamp, the key,
// and the SHA-256 of the embedded result document. Writes are atomic
// (temp + rename, via obs.WriteFileAtomic) so a crash never leaves a
// torn entry visible; reads verify the envelope and checksum and treat
// any mismatch — truncation, corruption, a hash collision of the
// address — as a miss, deleting the bad entry so the point falls back
// to recomputation instead of failing the request.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"gpujoule/internal/obs"
	"gpujoule/internal/sim"
)

// Stats is a snapshot of a cache's lifetime counters.
type Stats struct {
	// Hits counts lookups served from disk.
	Hits uint64
	// Misses counts lookups that found no entry (including entries
	// dropped as corrupt).
	Misses uint64
	// Puts counts entries written.
	Puts uint64
	// Corrupt counts entries that failed envelope or checksum
	// verification and were deleted; each also counts as a miss.
	Corrupt uint64
}

// Cache is a content-addressed result store rooted at one directory.
// It is safe for concurrent use; distinct processes may share a
// directory because entries are immutable once renamed into place.
type Cache struct {
	dir   string
	stamp string

	mu    sync.Mutex
	stats Stats
}

// Open roots a cache at dir (created if missing), binding all
// addresses to the given producer stamp.
func Open(dir, stamp string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &Cache{dir: dir, stamp: stamp}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Stamp returns the producer stamp all addresses are bound to.
func (c *Cache) Stamp() string { return c.stamp }

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// path returns the entry file for a key: two-level fan-out by address
// prefix so large caches do not degenerate into one huge directory.
func (c *Cache) path(key string) string {
	h := sha256.Sum256([]byte(c.stamp + "\x00" + key))
	addr := hex.EncodeToString(h[:])
	return filepath.Join(c.dir, addr[:2], addr+".json")
}

// envelope is the on-disk entry format.
type envelope struct {
	// Stamp and Key restate the address preimage, so a (vanishingly
	// unlikely) address collision or a hand-copied file is detected
	// instead of served.
	Stamp string `json:"stamp"`
	Key   string `json:"key"`
	// SHA256 is the hex checksum of the Result bytes.
	SHA256 string `json:"result_sha256"`
	// Result is the simulation result document.
	Result json.RawMessage `json:"result"`
}

// Get looks the key up. It returns (result, true) on a verified hit
// and (nil, false) otherwise; a corrupt entry (truncated write, bit
// rot, checksum mismatch) is deleted and reported as a miss so the
// caller recomputes the point.
func (c *Cache) Get(key string) (*sim.Result, bool) {
	path := c.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		c.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	res, err := decode(data, c.stamp, key)
	if err != nil {
		os.Remove(path)
		c.count(func(s *Stats) { s.Misses++; s.Corrupt++ })
		return nil, false
	}
	c.count(func(s *Stats) { s.Hits++ })
	return res, true
}

// GetRaw looks the key up and returns the verified raw result bytes —
// the exact Result JSON Put stored — without unmarshalling. This is
// the cluster peering read path: an entry crosses the wire as the
// bytes on disk, and the receiving node re-verifies before storing, so
// replication can never amplify corruption. Counting and corrupt-entry
// handling match Get.
func (c *Cache) GetRaw(key string) ([]byte, bool) {
	path := c.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		c.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	raw, err := decodeRaw(data, c.stamp, key)
	if err != nil {
		os.Remove(path)
		c.count(func(s *Stats) { s.Misses++; s.Corrupt++ })
		return nil, false
	}
	c.count(func(s *Stats) { s.Hits++ })
	return raw, true
}

// decode verifies an entry's envelope against the expected identity
// and unmarshals the result.
func decode(data []byte, stamp, key string) (*sim.Result, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("resultcache: bad envelope: %w", err)
	}
	if env.Stamp != stamp || env.Key != key {
		return nil, fmt.Errorf("resultcache: entry identity mismatch (stamp %q key %q)", env.Stamp, env.Key)
	}
	sum := sha256.Sum256(env.Result)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return nil, errors.New("resultcache: result checksum mismatch")
	}
	var res sim.Result
	if err := json.Unmarshal(env.Result, &res); err != nil {
		return nil, fmt.Errorf("resultcache: bad result document: %w", err)
	}
	return &res, nil
}

// decodeRaw verifies an entry's envelope and checksum and returns the
// raw result bytes.
func decodeRaw(data []byte, stamp, key string) ([]byte, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("resultcache: bad envelope: %w", err)
	}
	if env.Stamp != stamp || env.Key != key {
		return nil, fmt.Errorf("resultcache: entry identity mismatch (stamp %q key %q)", env.Stamp, env.Key)
	}
	sum := sha256.Sum256(env.Result)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return nil, errors.New("resultcache: result checksum mismatch")
	}
	return env.Result, nil
}

// Put writes the key's entry atomically. Concurrent writers of the
// same key are benign: both render identical bytes and rename over one
// another.
func (c *Cache) Put(key string, res *sim.Result) error {
	raw, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("resultcache: encoding result: %w", err)
	}
	sum := sha256.Sum256(raw)
	env := envelope{
		Stamp:  c.stamp,
		Key:    key,
		SHA256: hex.EncodeToString(sum[:]),
		Result: raw,
	}
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := obs.WriteFileAtomic(path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(&env)
	}); err != nil {
		return err
	}
	c.count(func(s *Stats) { s.Puts++ })
	return nil
}

// PutRaw writes the key's entry from raw result bytes already rendered
// by a peer's Put (cluster replication). The checksum is computed over
// the bytes as received, so a replica read back by GetRaw returns the
// identical bytes the origin stored. Callers are responsible for
// validating the bytes decode as a result document (the HTTP handler
// does) — PutRaw itself only seals them into a verified envelope.
func (c *Cache) PutRaw(key string, raw []byte) error {
	sum := sha256.Sum256(raw)
	env := envelope{
		Stamp:  c.stamp,
		Key:    key,
		SHA256: hex.EncodeToString(sum[:]),
		Result: json.RawMessage(raw),
	}
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := obs.WriteFileAtomic(path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(&env)
	}); err != nil {
		return err
	}
	c.count(func(s *Stats) { s.Puts++ })
	return nil
}

// Len walks the cache directory and reports the number of entries on
// disk — an O(entries) diagnostic for tests and the /metrics scrape of
// a freshly started daemon (the lifetime counters start at zero on
// every restart; the directory does not).
func (c *Cache) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}

func (c *Cache) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}
