package resultcache

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gpujoule/internal/sim"
	"gpujoule/internal/workloads"
)

func testResult(t *testing.T) *sim.Result {
	t.Helper()
	app, err := workloads.ByName("Stream", workloads.Params{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Simulate(context.Background(), sim.MultiGPM(2, sim.BW2x), app)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// entryFile returns the single entry file in the cache directory.
func entryFile(t *testing.T, c *Cache) string {
	t.Helper()
	var found string
	err := filepath.WalkDir(c.Dir(), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			found = path
		}
		return nil
	})
	if err != nil || found == "" {
		t.Fatalf("no entry file found (err %v)", err)
	}
	return found
}

func TestRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir(), "stamp-v1")
	if err != nil {
		t.Fatal(err)
	}
	res := testResult(t)

	if _, ok := c.Get("k1"); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Put("k1", res); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k1")
	if !ok {
		t.Fatal("warm key missed")
	}
	if !reflect.DeepEqual(got.Counts, res.Counts) || got.Counts.Cycles == 0 {
		t.Error("round-tripped result differs from the original")
	}
	if !reflect.DeepEqual(got.Launches, res.Launches) {
		t.Error("round-tripped launch stats differ")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 put", st)
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d (%v), want 1", n, err)
	}
}

func TestPersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	res := testResult(t)
	c1, err := Open(dir, "stamp-v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("k1", res); err != nil {
		t.Fatal(err)
	}

	// A fresh handle on the same directory — a daemon restart — serves
	// the entry; a handle with a different stamp (schema bump, new
	// binary) does not.
	c2, err := Open(dir, "stamp-v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("k1"); !ok {
		t.Error("entry did not survive a reopen")
	}
	c3, err := Open(dir, "stamp-v2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.Get("k1"); ok {
		t.Error("a different stamp must not see the old entry")
	}
	if st := c3.Stats(); st.Corrupt != 0 {
		t.Errorf("stamp change counted as corruption: %+v", st)
	}
}

func TestCorruptEntriesFallBackToMiss(t *testing.T) {
	res := testResult(t)
	for name, corrupt := range map[string]func(path string) error{
		"truncated": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, data[:len(data)/2], 0o644)
		},
		"bit-flipped": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			data[len(data)/2] ^= 0x41
			return os.WriteFile(path, data, 0o644)
		},
		"emptied": func(path string) error {
			return os.WriteFile(path, nil, 0o644)
		},
	} {
		t.Run(name, func(t *testing.T) {
			c, err := Open(t.TempDir(), "stamp")
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Put("k", res); err != nil {
				t.Fatal(err)
			}
			path := entryFile(t, c)
			if err := corrupt(path); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get("k"); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			st := c.Stats()
			if st.Corrupt != 1 || st.Misses != 1 {
				t.Errorf("stats = %+v, want the corruption counted as a miss", st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry was not deleted")
			}
			// The point recomputes and re-caches cleanly.
			if err := c.Put("k", res); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get("k"); !ok {
				t.Error("re-put after corruption missed")
			}
		})
	}
}

func TestKeyIsolation(t *testing.T) {
	c, err := Open(t.TempDir(), "stamp")
	if err != nil {
		t.Fatal(err)
	}
	res := testResult(t)
	if err := c.Put("point-a", res); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("point-b"); ok {
		t.Error("different key hit another key's entry")
	}
}

func TestOpenBadDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(file, "sub"), "s"); err == nil {
		t.Error("Open under a regular file must fail")
	}
}
