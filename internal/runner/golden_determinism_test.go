package runner_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"gpujoule/internal/isa"
	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
)

// goldenApp is a small app that exercises every scheduler and memory
// path the hot-path rewrite touched: two kernels (one barriered and
// shared-memory heavy, one a strided global streamer with stores),
// multiple launches, and enough CTAs to spread over several GPMs with
// warps retiring at different times.
func goldenApp() *trace.App {
	compute := &trace.Kernel{
		Name:        "golden-compute",
		Grid:        24,
		WarpsPerCTA: 8,
		Iters:       6,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn, Lines: 2}},
			{Op: isa.OpFFMA32, Times: 4},
			{Op: isa.OpLoadShared},
			{Op: isa.OpBarrier},
			{Op: isa.OpFAdd32, Times: 2},
			{Op: isa.OpStoreShared},
		},
	}
	stream := &trace.Kernel{
		Name:        "golden-stream",
		Grid:        17, // deliberately not a multiple of the GPM count
		WarpsPerCTA: 4,
		Iters:       9,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn, Lines: 4}},
			{Op: isa.OpIAdd32},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn, Lines: 4}},
		},
	}
	return &trace.App{
		Name:     "golden-determinism",
		Category: trace.CategoryMemory,
		Regions: []trace.Region{
			{Name: "a", Bytes: 8 << 20},
			{Name: "b", Bytes: 16 << 20},
		},
		Launches: []trace.Launch{
			{Kernel: compute, Count: 2},
			{Kernel: stream, Count: 2},
			{Kernel: compute},
		},
	}
}

// marshal renders a result the way the export tools do — the full JSON
// Result including the counters snapshot — so "byte-identical" means
// the serialized form users actually diff.
func marshalResult(t *testing.T, res *sim.Result) []byte {
	t.Helper()
	b, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestGoldenDeterminism is the regression tripwire for the scheduler /
// page-table / allocation-reuse rewrite: a multi-GPM, multi-kernel app
// simulated twice on fresh GPUs, and once more through the run engine
// at 4 workers, must produce byte-identical JSON results and counters.
// Any hidden shared state, pool-reuse contamination, or
// selection-order drift shows up here as a diff.
func TestGoldenDeterminism(t *testing.T) {
	app := goldenApp()
	cfg := sim.MultiGPM(4, sim.BW2x)

	first, err := sim.Simulate(context.Background(), cfg, app, sim.WithCounters())
	if err != nil {
		t.Fatal(err)
	}
	second, err := sim.Simulate(context.Background(), cfg, app, sim.WithCounters())
	if err != nil {
		t.Fatal(err)
	}
	fb, sb := marshalResult(t, first), marshalResult(t, second)
	if !bytes.Equal(fb, sb) {
		t.Fatalf("two fresh simulations differ:\nfirst:\n%s\nsecond:\n%s", fb, sb)
	}

	// The same point through the engine at 4 workers, alongside sibling
	// points that keep the other workers busy while it runs.
	eng := runner.New(runner.Options{Workers: 4, Counters: true})
	pts := []runner.Point{
		{App: app, Scale: 1, Config: cfg},
		{App: app, Scale: 1, Config: sim.MultiGPM(2, sim.BW2x)},
		{App: app, Scale: 1, Config: sim.MultiGPM(1, sim.BW1x)},
		{App: app, Scale: 1, Config: sim.MultiGPM(4, sim.BW1x)},
	}
	results, err := eng.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	pb := marshalResult(t, results[0])
	if !bytes.Equal(fb, pb) {
		t.Fatalf("engine result at 4 workers differs from fresh simulation:\nfresh:\n%s\nengine:\n%s", fb, pb)
	}

	if first.Counters == nil || results[0].Counters == nil {
		t.Fatal("counters snapshot missing from a WithCounters run")
	}

	// Tracing is opt-in: a run without WithTrace must not carry (or
	// serialize) a trace section, so counters-only output is
	// byte-identical to the pre-trace schema.
	if first.Trace != nil {
		t.Fatal("Trace present on a run without WithTrace")
	}
	if bytes.Contains(fb, []byte(`"trace"`)) {
		t.Fatalf("untraced result serializes a trace field:\n%s", fb)
	}
}

// TestGoldenDeterminismTrace extends the golden tripwire to the traced
// path: tracing must not perturb the simulation, and traced runs must
// be byte-identical across fresh GPUs and engine worker counts.
func TestGoldenDeterminismTrace(t *testing.T) {
	app := goldenApp()
	cfg := sim.MultiGPM(4, sim.BW2x)

	plain, err := sim.Simulate(context.Background(), cfg, app, sim.WithCounters())
	if err != nil {
		t.Fatal(err)
	}
	first, err := sim.Simulate(context.Background(), cfg, app, sim.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	second, err := sim.Simulate(context.Background(), cfg, app, sim.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	fb, sb := marshalResult(t, first), marshalResult(t, second)
	if !bytes.Equal(fb, sb) {
		t.Fatalf("two fresh traced simulations differ:\nfirst:\n%s\nsecond:\n%s", fb, sb)
	}
	if first.Trace == nil || len(first.Trace.Launches) == 0 {
		t.Fatal("WithTrace run carries no timeline")
	}

	// Stripping the trace-only sections (the trace itself and the
	// sampler series its default interval added) must recover the
	// counters-only result exactly: tracing observed the same simulation.
	stripped := *first
	stripped.Trace = nil
	cc := *first.Counters
	cc.Samples = nil
	stripped.Counters = &cc
	if !bytes.Equal(marshalResult(t, &stripped), marshalResult(t, plain)) {
		t.Fatal("tracing perturbed the simulated result")
	}

	eng := runner.New(runner.Options{Workers: 4, Trace: true})
	pts := []runner.Point{
		{App: app, Scale: 1, Config: cfg},
		{App: app, Scale: 1, Config: sim.MultiGPM(2, sim.BW2x)},
		{App: app, Scale: 1, Config: sim.MultiGPM(1, sim.BW1x)},
		{App: app, Scale: 1, Config: sim.MultiGPM(4, sim.BW1x)},
	}
	results, err := eng.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if pb := marshalResult(t, results[0]); !bytes.Equal(fb, pb) {
		t.Fatalf("engine traced result at 4 workers differs from fresh simulation:\nfresh:\n%s\nengine:\n%s", fb, pb)
	}
}
