package runner_test

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"

	"gpujoule/internal/isa"
	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
)

// goldenApp is a small app that exercises every scheduler and memory
// path the hot-path rewrite touched: two kernels (one barriered and
// shared-memory heavy, one a strided global streamer with stores),
// multiple launches, and enough CTAs to spread over several GPMs with
// warps retiring at different times.
func goldenApp() *trace.App {
	compute := &trace.Kernel{
		Name:        "golden-compute",
		Grid:        24,
		WarpsPerCTA: 8,
		Iters:       6,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn, Lines: 2}},
			{Op: isa.OpFFMA32, Times: 4},
			{Op: isa.OpLoadShared},
			{Op: isa.OpBarrier},
			{Op: isa.OpFAdd32, Times: 2},
			{Op: isa.OpStoreShared},
		},
	}
	stream := &trace.Kernel{
		Name:        "golden-stream",
		Grid:        17, // deliberately not a multiple of the GPM count
		WarpsPerCTA: 4,
		Iters:       9,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn, Lines: 4}},
			{Op: isa.OpIAdd32},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 1, Pattern: trace.PatOwn, Lines: 4}},
		},
	}
	return &trace.App{
		Name:     "golden-determinism",
		Category: trace.CategoryMemory,
		Regions: []trace.Region{
			{Name: "a", Bytes: 8 << 20},
			{Name: "b", Bytes: 16 << 20},
		},
		Launches: []trace.Launch{
			{Kernel: compute, Count: 2},
			{Kernel: stream, Count: 2},
			{Kernel: compute},
		},
	}
}

// marshal renders a result the way the export tools do — the full JSON
// Result including the counters snapshot — so "byte-identical" means
// the serialized form users actually diff.
func marshalResult(t *testing.T, res *sim.Result) []byte {
	t.Helper()
	b, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestGoldenDeterminism is the regression tripwire for the scheduler /
// page-table / allocation-reuse rewrite: a multi-GPM, multi-kernel app
// simulated twice on fresh GPUs, and once more through the run engine
// at 4 workers, must produce byte-identical JSON results and counters.
// Any hidden shared state, pool-reuse contamination, or
// selection-order drift shows up here as a diff.
func TestGoldenDeterminism(t *testing.T) {
	app := goldenApp()
	cfg := sim.MultiGPM(4, sim.BW2x)

	first, err := sim.Simulate(context.Background(), cfg, app, sim.WithCounters())
	if err != nil {
		t.Fatal(err)
	}
	second, err := sim.Simulate(context.Background(), cfg, app, sim.WithCounters())
	if err != nil {
		t.Fatal(err)
	}
	fb, sb := marshalResult(t, first), marshalResult(t, second)
	if !bytes.Equal(fb, sb) {
		t.Fatalf("two fresh simulations differ:\nfirst:\n%s\nsecond:\n%s", fb, sb)
	}

	// The same point through the engine at 4 workers, alongside sibling
	// points that keep the other workers busy while it runs.
	eng := runner.New(runner.Options{Workers: 4, Counters: true})
	pts := []runner.Point{
		{App: app, Scale: 1, Config: cfg},
		{App: app, Scale: 1, Config: sim.MultiGPM(2, sim.BW2x)},
		{App: app, Scale: 1, Config: sim.MultiGPM(1, sim.BW1x)},
		{App: app, Scale: 1, Config: sim.MultiGPM(4, sim.BW1x)},
	}
	results, err := eng.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	pb := marshalResult(t, results[0])
	if !bytes.Equal(fb, pb) {
		t.Fatalf("engine result at 4 workers differs from fresh simulation:\nfresh:\n%s\nengine:\n%s", fb, pb)
	}

	if first.Counters == nil || results[0].Counters == nil {
		t.Fatal("counters snapshot missing from a WithCounters run")
	}

	// Tracing is opt-in: a run without WithTrace must not carry (or
	// serialize) a trace section, so counters-only output is
	// byte-identical to the pre-trace schema.
	if first.Trace != nil {
		t.Fatal("Trace present on a run without WithTrace")
	}
	if bytes.Contains(fb, []byte(`"trace"`)) {
		t.Fatalf("untraced result serializes a trace field:\n%s", fb)
	}
}

// TestGoldenDeterminismGPMParallel is the byte-identity matrix for
// intra-run parallelism: the same points simulated at GPM lane counts
// {1, 2, 8} and engine worker counts {1, 4} must all serialize to
// exactly the bytes of the sequential single-worker run — counters and
// sampler timeline included. GOMAXPROCS is raised for the test's
// duration so the lanes genuinely run concurrently (on a 1-core box
// the budget would otherwise quietly serialize them and the matrix
// would not exercise the turnstile at all).
func TestGoldenDeterminismGPMParallel(t *testing.T) {
	old := runtime.GOMAXPROCS(16)
	defer runtime.GOMAXPROCS(old)

	app := goldenApp()
	cfg := sim.MultiGPM(8, sim.BW1x)

	// Sequential reference with counters and a mid-launch sampler (the
	// sampler reads the collector at epoch boundaries, exactly where
	// the parallel driver parks its lanes — the most delicate spot).
	ref, err := sim.Simulate(context.Background(), cfg, app,
		sim.WithCounters(), sim.WithSampler(2048))
	if err != nil {
		t.Fatal(err)
	}
	rb := marshalResult(t, ref)
	for _, lanes := range []int{2, 8} {
		res, err := sim.Simulate(context.Background(), cfg, app,
			sim.WithCounters(), sim.WithSampler(2048), sim.WithGPMParallel(lanes))
		if err != nil {
			t.Fatal(err)
		}
		if pb := marshalResult(t, res); !bytes.Equal(rb, pb) {
			t.Fatalf("%d-lane simulation differs from sequential:\nseq:\n%s\nlanes:\n%s", lanes, rb, pb)
		}
	}

	// The engine matrix: every (workers × gpm-parallel) combination
	// must reproduce the lane-less single-worker counters JSON for
	// every point of a mixed-size batch.
	pts := []runner.Point{
		{App: app, Scale: 1, Config: cfg},
		{App: app, Scale: 1, Config: sim.MultiGPM(4, sim.BW2x)},
		{App: app, Scale: 1, Config: sim.MultiGPM(2, sim.BW2x)},
		{App: app, Scale: 1, Config: sim.MultiGPM(1, sim.BW1x)},
	}
	var want [][]byte
	for _, workers := range []int{1, 4} {
		for _, lanes := range []int{1, 2, 8} {
			eng := runner.New(runner.Options{Workers: workers, GPMParallel: lanes, Counters: true})
			results, err := eng.Run(context.Background(), pts)
			if err != nil {
				t.Fatal(err)
			}
			for i, res := range results {
				pb := marshalResult(t, res)
				if want == nil || i >= len(want) {
					want = append(want, pb)
					continue
				}
				if !bytes.Equal(want[i], pb) {
					t.Fatalf("point %d at workers=%d lanes=%d differs from workers=1 lanes=1:\nwant:\n%s\ngot:\n%s",
						i, workers, lanes, want[i], pb)
				}
			}
		}
	}
}

// TestGoldenDeterminismTrace extends the golden tripwire to the traced
// path: tracing must not perturb the simulation, and traced runs must
// be byte-identical across fresh GPUs and engine worker counts.
func TestGoldenDeterminismTrace(t *testing.T) {
	app := goldenApp()
	cfg := sim.MultiGPM(4, sim.BW2x)

	plain, err := sim.Simulate(context.Background(), cfg, app, sim.WithCounters())
	if err != nil {
		t.Fatal(err)
	}
	first, err := sim.Simulate(context.Background(), cfg, app, sim.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	second, err := sim.Simulate(context.Background(), cfg, app, sim.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	fb, sb := marshalResult(t, first), marshalResult(t, second)
	if !bytes.Equal(fb, sb) {
		t.Fatalf("two fresh traced simulations differ:\nfirst:\n%s\nsecond:\n%s", fb, sb)
	}
	if first.Trace == nil || len(first.Trace.Launches) == 0 {
		t.Fatal("WithTrace run carries no timeline")
	}

	// Stripping the trace-only sections (the trace itself and the
	// sampler series its default interval added) must recover the
	// counters-only result exactly: tracing observed the same simulation.
	stripped := *first
	stripped.Trace = nil
	cc := *first.Counters
	cc.Samples = nil
	stripped.Counters = &cc
	if !bytes.Equal(marshalResult(t, &stripped), marshalResult(t, plain)) {
		t.Fatal("tracing perturbed the simulated result")
	}

	eng := runner.New(runner.Options{Workers: 4, Trace: true})
	pts := []runner.Point{
		{App: app, Scale: 1, Config: cfg},
		{App: app, Scale: 1, Config: sim.MultiGPM(2, sim.BW2x)},
		{App: app, Scale: 1, Config: sim.MultiGPM(1, sim.BW1x)},
		{App: app, Scale: 1, Config: sim.MultiGPM(4, sim.BW1x)},
	}
	results, err := eng.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if pb := marshalResult(t, results[0]); !bytes.Equal(fb, pb) {
		t.Fatalf("engine traced result at 4 workers differs from fresh simulation:\nfresh:\n%s\nengine:\n%s", fb, pb)
	}
}
