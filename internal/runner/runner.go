// Package runner is the shared concurrent execution engine for
// simulation point grids. Every evaluation in the paper is a grid of
// independent (workload × GPM count × bandwidth × topology) points;
// this package runs such grids across a worker pool, deduplicates and
// memoizes points by a canonical key (so Figs. 6/7/8, the ablations,
// and the EDPSE tables all share one simulation of a shared point),
// supports context cancellation, and returns results in deterministic
// input order regardless of completion order.
//
// Each sim.GPU is built per point and never shared, and sim.Simulate is a
// pure function of (Config, App), so parallel execution is
// byte-identical to the old serial loops: the engine owns all shared
// state (the cache and the progress counters), and the simulator
// touches none.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"gpujoule/internal/obs"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
)

// Point is one simulation to execute: a workload at a sizing scale on
// one machine configuration.
type Point struct {
	// App is the workload trace. The scale it was built at must be
	// recorded in Scale, since the trace itself does not carry it.
	App *trace.App
	// Scale is the workload sizing factor the app was generated with;
	// it is part of the memoization key.
	Scale float64
	// Config is the simulated machine.
	Config sim.Config
}

// Key returns the canonical memoization key of the point. Two points
// with equal keys produce identical simulation results: the config
// part normalizes away fields the simulator never reads (integration
// domain, and fabric parameters of single-module designs).
func (p Point) Key() string {
	return fmt.Sprintf("%s|%g|%s", p.App.Name, p.Scale, p.Config.SimKey())
}

func (p Point) String() string {
	return fmt.Sprintf("%s on %s", p.App.Name, p.Config.Name())
}

// EventKind tags a progress event.
type EventKind uint8

// Progress event kinds.
const (
	// PointStarted fires when a worker begins simulating a point.
	PointStarted EventKind = iota
	// PointDone fires when a point resolves — simulated, served from
	// cache, or failed.
	PointDone
)

// Event is one progress notification. Callbacks (the Options.OnEvent
// hook and every Subscribe subscriber) are serialized by the engine;
// they may be invoked from worker goroutines.
type Event struct {
	Kind  EventKind
	Point Point
	// CacheHit reports whether the point was served without simulating
	// in this Run call (only meaningful for PointDone).
	CacheHit bool
	// Coalesced refines CacheHit: the point attached to a simulation
	// that was still in flight when the point was claimed, rather than
	// to an already-resolved memo entry. For such points the result is
	// not available yet at event time.
	Coalesced bool
	// Err is the point's failure, if any (PointDone only).
	Err error
	// Completed and Total are the batch progress counters at the time
	// of the event.
	Completed, Total int
	// Elapsed is the point's simulation wall time (PointDone after a
	// real simulation; zero for cache hits).
	Elapsed time.Duration
}

// Options configures an Engine.
type Options struct {
	// Workers bounds concurrent simulations; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// OnEvent, when non-nil, receives serialized progress events.
	OnEvent func(Event)
	// Counters enables the observability layer (sim.WithCounters) on
	// every point the engine simulates: results carry per-GPM and
	// per-link counter snapshots. Counters are deterministic across
	// worker counts, and memoized results share one snapshot.
	Counters bool
	// SampleInterval, when positive, additionally records a coarse
	// time series every interval cycles (sim.WithSampler; implies
	// Counters).
	SampleInterval float64
	// Trace enables timeline recording (sim.WithTrace; implies
	// Counters): results carry a Result.Trace renderable as a Chrome
	// trace_event file.
	Trace bool
	// Ephemeral disables cross-batch memoization: a resolved entry is
	// evicted as soon as it is published, so the engine holds no result
	// in memory once every claimant of the entry has been served.
	// In-flight deduplication is unaffected — concurrent claims of one
	// key still share a single simulation. Long-running services that
	// keep their own (disk-backed) result cache use this to keep the
	// engine's memory footprint bounded.
	Ephemeral bool
	// GPMParallel, when > 1, runs each simulation's GPMs on up to this
	// many parallel lanes per epoch (sim.WithGPMParallel). Results are
	// bit-identical at every lane count, so memoization keys and golden
	// outputs are unaffected. Extra lanes beyond each simulation's own
	// worker draw from a shared budget sized to the cores left over
	// after the worker pool (GOMAXPROCS - Workers, floored at zero), so
	// intra-run parallelism fills idle cores — e.g. the tail of a batch
	// where fewer points than workers remain — without oversubscribing
	// a fully busy pool.
	GPMParallel int
}

// Stats is a snapshot of an engine's lifetime counters.
type Stats struct {
	// Simulated counts real simulator executions.
	Simulated int
	// CacheHits counts points served from the memo cache (including
	// duplicates within one batch).
	CacheHits int
	// Coalesced counts the subset of CacheHits that attached to a
	// simulation still in flight when claimed — the points that shared
	// one execution with a concurrent claimant instead of reading a
	// resolved memo entry.
	Coalesced int
	// Failed counts simulator executions that resolved with an error
	// (including cancellation). Failed entries are never memoized, so a
	// retried point that later succeeds counts under both.
	Failed int
	// SimWall is the cumulative wall time spent inside sim.Simulate; with
	// multiple workers it exceeds elapsed time.
	SimWall time.Duration
	// Instructions is the cumulative warp-instruction count over all
	// real simulations — the denominator of the engine-wide
	// ns/instruction throughput figure.
	Instructions uint64
}

// Engine executes simulation points across a worker pool with
// memoization. The zero value is not usable; construct with New. An
// Engine is safe for concurrent use.
type Engine struct {
	workers     int
	gpmParallel int
	budget      *sim.Budget // nil unless gpmParallel > 1
	onEvent     func(Event)
	simOpts     []sim.Option
	ephemeral   bool

	evMu   sync.Mutex // serializes event delivery, guards subs
	subs   map[int]func(Event)
	subSeq int

	mu        sync.Mutex
	cache     map[string]*entry
	stats     Stats
	batchWall time.Duration      // completed batches only
	active    map[int]time.Time  // start times of in-flight Run calls
	batchSeq  int                // next active-batch id
	timings   []obs.PointProfile // one entry per real simulation
}

// entry is one memoized (or in-flight) point. done is closed exactly
// once, after res/err are set; failed entries are evicted from the
// cache so errors are never memoized. name is the claiming point's
// human label, fixed at claim time so Traces can attribute memoized
// results without re-deriving point identity.
type entry struct {
	done chan struct{}
	name string
	res  *sim.Result
	err  error
}

// New builds an engine.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	var simOpts []sim.Option
	if opts.Counters {
		simOpts = append(simOpts, sim.WithCounters())
	}
	if opts.SampleInterval > 0 {
		simOpts = append(simOpts, sim.WithSampler(opts.SampleInterval))
	}
	if opts.Trace {
		simOpts = append(simOpts, sim.WithTrace())
	}
	gp := opts.GPMParallel
	var budget *sim.Budget
	if gp > 1 {
		budget = sim.NewBudget(runtime.GOMAXPROCS(0) - w)
		simOpts = append(simOpts, sim.WithGPMParallel(gp), sim.WithParallelBudget(budget))
	} else {
		gp = 1
	}
	return &Engine{
		workers:     w,
		gpmParallel: gp,
		budget:      budget,
		onEvent:     opts.OnEvent,
		simOpts:     simOpts,
		ephemeral:   opts.Ephemeral,
		cache:       make(map[string]*entry),
		active:      make(map[int]time.Time),
	}
}

// Workers returns the engine's concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// GPMParallel returns the per-simulation GPM lane count (1 when intra-
// run parallelism is off).
func (e *Engine) GPMParallel() int { return e.gpmParallel }

// ParallelBudget returns the shared budget extra GPM lanes draw from,
// or nil when intra-run parallelism is off. Callers expose its Cap and
// Free in metrics.
func (e *Engine) ParallelBudget() *sim.Budget { return e.budget }

// Distinct reports how many distinct simulations the cache holds.
func (e *Engine) Distinct() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// Stats returns a snapshot of the engine's counters.
// Traces returns the timeline trace of every resolved point in the
// memo cache, one obs.PointTrace per distinct simulation, sorted by
// point name so the rendered Chrome file is deterministic regardless
// of resolution order. Empty unless the engine was built with
// Options.Trace; in-flight and failed points are skipped.
func (e *Engine) Traces() []obs.PointTrace {
	e.mu.Lock()
	entries := make([]*entry, 0, len(e.cache))
	for _, ent := range e.cache {
		entries = append(entries, ent)
	}
	e.mu.Unlock()
	var out []obs.PointTrace
	for _, ent := range entries {
		select {
		case <-ent.done:
		default:
			continue // still in flight
		}
		if ent.err == nil && ent.res != nil && ent.res.Trace != nil {
			out = append(out, obs.PointTrace{Name: ent.name, Trace: ent.res.Trace})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Subscribe registers an additional progress-event listener and
// returns its cancel function. Subscribers receive the same serialized
// event stream as Options.OnEvent (every listener observes events in
// one global order), so several independent consumers — a progress
// display, a throughput estimator, a per-job streaming fan-out — can
// follow one engine without coordinating. Cancel is idempotent and
// safe to call while events are being delivered; it returns only after
// any in-progress delivery to the subscriber has completed.
func (e *Engine) Subscribe(fn func(Event)) (cancel func()) {
	e.evMu.Lock()
	defer e.evMu.Unlock()
	if e.subs == nil {
		e.subs = make(map[int]func(Event))
	}
	id := e.subSeq
	e.subSeq++
	e.subs[id] = fn
	return func() {
		e.evMu.Lock()
		delete(e.subs, id)
		e.evMu.Unlock()
	}
}

func (e *Engine) emit(ev Event) {
	e.evMu.Lock()
	defer e.evMu.Unlock()
	if e.onEvent != nil {
		e.onEvent(ev)
	}
	if len(e.subs) == 0 {
		return
	}
	// Deliver in subscription order so the stream every listener sees
	// is deterministic given a deterministic event order.
	ids := make([]int, 0, len(e.subs))
	for id := range e.subs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		e.subs[id](ev)
	}
}

// job is one cache entry this batch claimed and must resolve.
type job struct {
	pt  Point
	key string
	ent *entry
}

// Run executes the given points and returns their results in input
// order. Duplicate points (and points already memoized by earlier
// calls) are simulated once. On failure the returned slice still holds
// every result that resolved (nil for the rest) alongside a non-nil
// error; a cancelled context returns promptly with an error wrapping
// ctx.Err(). Workers always drain their claimed work — cancelled
// entries fail fast and are evicted, never left pending.
func (e *Engine) Run(ctx context.Context, points []Point) ([]*sim.Result, error) {
	// Track the batch in the active set while it runs, so Profile can
	// report a live wall clock (and a meaningful occupancy) to /metrics
	// readers before the batch completes.
	e.mu.Lock()
	batchID := e.batchSeq
	e.batchSeq++
	e.active[batchID] = time.Now()
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.batchWall += time.Since(e.active[batchID])
		delete(e.active, batchID)
		e.mu.Unlock()
	}()

	total := len(points)
	entries := make([]*entry, total)
	var jobs []job

	// hit is a point served without simulating in this call: either an
	// already-resolved memo entry or a coalesced join onto an entry
	// still in flight.
	type hit struct {
		pt        Point
		coalesced bool
	}
	var hits []hit

	// Claim or reuse a cache entry per point. Holding the lock across
	// the whole loop also dedupes within the batch: the second
	// occurrence of a key finds the entry the first one claimed.
	e.mu.Lock()
	for i, p := range points {
		k := p.Key()
		if ent, ok := e.cache[k]; ok {
			entries[i] = ent
			h := hit{pt: p}
			select {
			case <-ent.done:
			default:
				h.coalesced = true
				e.stats.Coalesced++
			}
			hits = append(hits, h)
			continue
		}
		ent := &entry{done: make(chan struct{}), name: p.String()}
		e.cache[k] = ent
		entries[i] = ent
		jobs = append(jobs, job{pt: p, key: k, ent: ent})
	}
	e.stats.CacheHits += len(hits)
	e.mu.Unlock()

	// Worker pool over the claimed jobs. The channel is pre-filled and
	// closed, so workers exit as soon as it drains; on cancellation
	// they fail the remaining claims instead of simulating them.
	var completed int
	var cmu sync.Mutex
	tick := func() int {
		cmu.Lock()
		defer cmu.Unlock()
		completed++
		return completed
	}

	for _, h := range hits {
		e.emit(Event{Kind: PointDone, Point: h.pt, CacheHit: true, Coalesced: h.coalesced,
			Completed: tick(), Total: total})
	}

	jobCh := make(chan job, len(jobs))
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)

	nw := e.workers
	if nw > len(jobs) {
		nw = len(jobs)
	}
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				if err := ctx.Err(); err != nil {
					e.resolve(j, nil, err, 0)
					e.emit(Event{Kind: PointDone, Point: j.pt, Err: err, Completed: tick(), Total: total})
					continue
				}
				e.emit(Event{Kind: PointStarted, Point: j.pt, Total: total})
				start := time.Now()
				res, err := sim.Simulate(ctx, j.pt.Config, j.pt.App, e.simOpts...)
				if err != nil {
					err = fmt.Errorf("runner: %s: %w", j.pt, err)
				}
				elapsed := time.Since(start)
				e.resolve(j, res, err, elapsed)
				e.emit(Event{Kind: PointDone, Point: j.pt, Err: err,
					Completed: tick(), Total: total, Elapsed: elapsed})
			}
		}()
	}

	// Collect in input order. A point claimed by a concurrent Run call
	// resolves when that call's worker finishes it; on cancellation we
	// stop waiting rather than block on foreign in-flight work.
	results := make([]*sim.Result, total)
	var errs []error
	gathered := 0
	for i, ent := range entries {
		select {
		case <-ent.done:
			if ent.err != nil {
				errs = append(errs, ent.err)
			} else {
				results[i] = ent.res
				gathered++
			}
		case <-ctx.Done():
			wg.Wait() // our own workers fail fast once ctx is done
			return results, fmt.Errorf("runner: cancelled after %d/%d points: %w",
				gathered, total, context.Cause(ctx))
		}
	}
	wg.Wait()

	if len(errs) > 0 {
		return results, errors.Join(errs...)
	}
	return results, nil
}

// resolve publishes a job's outcome and updates cache bookkeeping.
// Failed entries are evicted so transient errors (cancellation above
// all) are retried by later calls; waiters holding the entry pointer
// still observe the error through it. An ephemeral engine also evicts
// successful entries: every claimant captured the entry pointer before
// resolution, so eviction only forgets the result, never loses it.
func (e *Engine) resolve(j job, res *sim.Result, err error, elapsed time.Duration) {
	j.ent.res, j.ent.err = res, err
	e.mu.Lock()
	if err != nil || e.ephemeral {
		if e.cache[j.key] == j.ent {
			delete(e.cache, j.key)
		}
	}
	if err != nil {
		e.stats.Failed++
	}
	if err == nil {
		e.stats.Simulated++
		e.stats.SimWall += elapsed
		pp := obs.PointProfile{
			Point:   j.pt.String(),
			Seconds: elapsed.Seconds(),
		}
		insts := res.Counts.TotalWarpInstructions()
		e.stats.Instructions += insts
		if insts > 0 {
			pp.NsPerInstruction = float64(elapsed.Nanoseconds()) / float64(insts)
		}
		e.timings = append(e.timings, pp)
	}
	e.mu.Unlock()
	close(j.ent.done)
}

// profileSlowest bounds the Slowest list of a runner profile.
const profileSlowest = 10

// Profile snapshots the engine's lifetime execution profile: point and
// cache counters, cumulative simulation and batch wall time, worker
// occupancy, and the slowest simulated points. Point order in Slowest
// is deterministic (cost-descending, ties broken by name) even though
// completion order is not. Profile is safe to call from any goroutine
// while batches run — in-flight Run calls contribute their elapsed
// time so live readers (/progress, /metrics) see a current wall clock
// instead of the last completed batch's.
func (e *Engine) Profile() obs.RunnerProfile {
	e.mu.Lock()
	defer e.mu.Unlock()
	slowest := append([]obs.PointProfile(nil), e.timings...)
	sort.Slice(slowest, func(i, j int) bool {
		if slowest[i].Seconds != slowest[j].Seconds {
			return slowest[i].Seconds > slowest[j].Seconds
		}
		return slowest[i].Point < slowest[j].Point
	})
	if len(slowest) > profileSlowest {
		slowest = slowest[:profileSlowest]
	}
	batchWall := e.batchWall
	for _, start := range e.active {
		batchWall += time.Since(start)
	}
	occupancy := 0.0
	if batchWall > 0 && e.workers > 0 {
		occupancy = e.stats.SimWall.Seconds() / (batchWall.Seconds() * float64(e.workers))
		if occupancy > 1 {
			occupancy = 1
		}
	}
	nsPerInst := 0.0
	if e.stats.Instructions > 0 {
		nsPerInst = float64(e.stats.SimWall.Nanoseconds()) / float64(e.stats.Instructions)
	}
	return obs.RunnerProfile{
		Workers:          e.workers,
		Points:           e.stats.Simulated + e.stats.CacheHits,
		Simulated:        e.stats.Simulated,
		CacheHits:        e.stats.CacheHits,
		Coalesced:        e.stats.Coalesced,
		Failed:           e.stats.Failed,
		SimWallSeconds:   e.stats.SimWall.Seconds(),
		BatchWallSeconds: batchWall.Seconds(),
		Occupancy:        occupancy,
		WarpInstructions: e.stats.Instructions,
		NsPerInstruction: nsPerInst,
		Slowest:          slowest,
	}
}

// One executes a single point through the engine (memoized like any
// batch point).
func (e *Engine) One(ctx context.Context, p Point) (*sim.Result, error) {
	rs, err := e.Run(ctx, []Point{p})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// Points builds the cross product of the given apps and configs at one
// scale, apps innermost — the standard grid expansion order shared by
// the harness and the CLIs.
func Points(apps []*trace.App, scale float64, cfgs ...sim.Config) []Point {
	pts := make([]Point, 0, len(apps)*len(cfgs))
	for _, cfg := range cfgs {
		for _, app := range apps {
			pts = append(pts, Point{App: app, Scale: scale, Config: cfg})
		}
	}
	return pts
}

// GridPoints builds the sweep row layout: for each app in order, an
// optional 1-GPM baseline point (the reference of the scaling metrics)
// followed by every config in grid order. cmd/sweep and the gpujouled
// service expand sweep jobs through this one function, so a job
// submitted to the service resolves the exact point sequence a local
// sweep would, row for row.
func GridPoints(apps []*trace.App, scale float64, baseline bool, cfgs ...sim.Config) []Point {
	per := len(cfgs)
	if baseline {
		per++
	}
	baseCfg := sim.MultiGPM(1, sim.BW2x)
	pts := make([]Point, 0, len(apps)*per)
	for _, app := range apps {
		if baseline {
			pts = append(pts, Point{App: app, Scale: scale, Config: baseCfg})
		}
		for _, cfg := range cfgs {
			pts = append(pts, Point{App: app, Scale: scale, Config: cfg})
		}
	}
	return pts
}
