package runner_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
	"gpujoule/internal/workloads"
)

const testScale = 0.05

// testPoints builds a small but real (workload × config) grid,
// including a duplicate point and two configs that collapse to one
// canonical key (1-GPM at different bandwidth settings).
func testPoints(t *testing.T) []runner.Point {
	t.Helper()
	var apps []*trace.App
	for _, name := range []string{"Stream", "Kmeans"} {
		app, err := workloads.ByName(name, workloads.Params{Scale: testScale})
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
	}
	cfgs := []sim.Config{
		sim.MultiGPM(1, sim.BW2x),
		sim.MultiGPM(1, sim.BW1x), // same physical design as above
		sim.MultiGPM(2, sim.BW2x),
		sim.MultiGPM(4, sim.BW1x),
		sim.MultiGPM(4, sim.BW2x),
	}
	pts := runner.Points(apps, testScale, cfgs...)
	return append(pts, pts[0]) // literal duplicate
}

// csvBytes renders results the way a data-export tool would, so the
// determinism test can assert byte-identical output across worker
// counts.
func csvBytes(pts []runner.Point, results []*sim.Result) []byte {
	var buf bytes.Buffer
	fmt.Fprintln(&buf, "workload,config,cycles,stalls,l1_hit,l2_hit,remote_fills,dram_txn")
	for i, r := range results {
		fmt.Fprintf(&buf, "%s,%s,%d,%d,%.6f,%.6f,%d,%d\n",
			pts[i].App.Name, pts[i].Config.Name(), r.Counts.Cycles, r.Counts.StallCycles,
			r.L1HitRate(), r.L2HitRate(), r.RemoteLineFills, r.Counts.Txn[0])
	}
	return buf.Bytes()
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	pts := testPoints(t)

	serialEng := runner.New(runner.Options{Workers: 1})
	serial, err := serialEng.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	parallelEng := runner.New(runner.Options{Workers: 8})
	parallel, err := parallelEng.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial) != len(pts) || len(parallel) != len(pts) {
		t.Fatalf("result lengths %d/%d, want %d", len(serial), len(parallel), len(pts))
	}
	for i := range pts {
		if serial[i] == nil || parallel[i] == nil {
			t.Fatalf("point %d (%s): nil result", i, pts[i])
		}
		if !reflect.DeepEqual(serial[i].Counts, parallel[i].Counts) {
			t.Errorf("point %d (%s): isa.Counts differ between 1 and 8 workers", i, pts[i])
		}
		if !reflect.DeepEqual(serial[i].Launches, parallel[i].Launches) {
			t.Errorf("point %d (%s): launch stats differ between 1 and 8 workers", i, pts[i])
		}
	}
	if !bytes.Equal(csvBytes(pts, serial), csvBytes(pts, parallel)) {
		t.Error("CSV bytes differ between 1 and 8 workers")
	}
}

func TestMemoizationAndDedup(t *testing.T) {
	pts := testPoints(t)
	eng := runner.New(runner.Options{Workers: 4})

	first, err := eng.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	// The grid holds 12 points: the duplicate and the two fabric-less
	// 1-GPM variants (per app) must collapse, leaving 8 distinct sims.
	if want := 8; st.Simulated != want {
		t.Errorf("Simulated = %d, want %d (dedup by canonical key)", st.Simulated, want)
	}
	if want := len(pts) - 8; st.CacheHits != want {
		t.Errorf("CacheHits = %d, want %d", st.CacheHits, want)
	}
	if eng.Distinct() != 8 {
		t.Errorf("Distinct = %d, want 8", eng.Distinct())
	}
	// The collapsed 1-GPM points must share one result object.
	if first[0] != first[2] {
		t.Error("1-GPM results at 2x and 1x bandwidth should be the same memoized run")
	}

	second, err := eng.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Simulated; got != st.Simulated {
		t.Errorf("re-running the grid simulated %d more points, want 0", got-st.Simulated)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("point %d: second run returned a different result object", i)
		}
	}
}

func TestProgressEvents(t *testing.T) {
	pts := testPoints(t)
	var done, hits, started int
	var lastCompleted int
	eng := runner.New(runner.Options{Workers: 1, OnEvent: func(ev runner.Event) {
		switch ev.Kind {
		case runner.PointStarted:
			started++
		case runner.PointDone:
			done++
			lastCompleted = ev.Completed
			if ev.CacheHit {
				hits++
			}
			if ev.Total != len(pts) {
				t.Errorf("event Total = %d, want %d", ev.Total, len(pts))
			}
		}
	}})
	if _, err := eng.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	if done != len(pts) {
		t.Errorf("saw %d PointDone events, want %d", done, len(pts))
	}
	if lastCompleted != len(pts) {
		t.Errorf("final Completed = %d, want %d", lastCompleted, len(pts))
	}
	if started != 8 {
		t.Errorf("saw %d PointStarted events, want 8 (one per distinct sim)", started)
	}
	if hits != len(pts)-8 {
		t.Errorf("saw %d cache-hit events, want %d", hits, len(pts)-8)
	}
}

func TestCancellationMidGrid(t *testing.T) {
	before := runtime.NumGoroutine()

	app, err := workloads.ByName("Stream", workloads.Params{Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Enough distinct points that cancellation lands mid-grid.
	var cfgs []sim.Config
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		for _, bw := range []sim.BWSetting{sim.BW1x, sim.BW2x, sim.BW4x} {
			cfgs = append(cfgs, sim.MultiGPM(n, bw))
		}
	}
	pts := runner.Points([]*trace.App{app}, 0.2, cfgs...)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := runner.New(runner.Options{Workers: 2, OnEvent: func(ev runner.Event) {
		if ev.Kind == runner.PointDone && ev.Completed >= 2 {
			cancel() // pull the plug after the first couple of points
		}
	}})

	start := time.Now()
	results, err := eng.Run(ctx, pts)
	if err == nil {
		t.Fatal("cancelled run must return an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v should wrap context.Canceled", err)
	}
	// Prompt return: at most the in-flight points finish, the queued
	// remainder is abandoned without simulating.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancelled run took %v, want prompt return", elapsed)
	}
	if len(results) != len(pts) {
		t.Errorf("partial results slice has %d slots, want %d", len(results), len(pts))
	}
	if eng.Stats().Simulated >= len(cfgs) {
		t.Error("cancellation should have prevented most simulations")
	}

	// No goroutine leak: workers drain their queue and exit. Poll
	// briefly to let in-flight sims finish.
	deadline := time.Now().Add(30 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before, %d after cancellation", before, after)
	}

	// A fresh context must be able to re-run the abandoned points:
	// failed claims are evicted, not memoized.
	if _, err := eng.Run(context.Background(), pts[:2]); err != nil {
		t.Errorf("re-run after cancellation failed: %v", err)
	}
}

func TestErrorsAreNotMemoized(t *testing.T) {
	bad := &trace.App{Name: "bad"} // no launches: fails validation
	good, err := workloads.ByName("Stream", workloads.Params{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	pts := []runner.Point{
		{App: bad, Scale: testScale, Config: sim.MultiGPM(2, sim.BW2x)},
		{App: good, Scale: testScale, Config: sim.MultiGPM(2, sim.BW2x)},
	}
	eng := runner.New(runner.Options{Workers: 2})
	results, err := eng.Run(context.Background(), pts)
	if err == nil {
		t.Fatal("invalid app must fail the batch")
	}
	if results[0] != nil {
		t.Error("failed point should have a nil result")
	}
	if results[1] == nil {
		t.Error("healthy point must still resolve alongside a failure")
	}
	if eng.Distinct() != 1 {
		t.Errorf("Distinct = %d, want 1 (errors are evicted)", eng.Distinct())
	}
	if _, err := eng.Run(context.Background(), pts[:1]); err == nil {
		t.Error("failed point must fail again on retry, not hit a memoized error")
	}
}

func TestCountersDeterministicAcrossWorkerCounts(t *testing.T) {
	pts := testPoints(t)
	var snapshots [][]*sim.Result
	for _, workers := range []int{1, 4, 8} {
		eng := runner.New(runner.Options{Workers: workers, Counters: true})
		results, err := eng.Run(context.Background(), pts)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Counters == nil {
				t.Fatalf("workers=%d point %d (%s): Counters option produced no snapshot",
					workers, i, pts[i])
			}
		}
		snapshots = append(snapshots, results)
	}
	for w, results := range snapshots[1:] {
		for i := range pts {
			if !reflect.DeepEqual(snapshots[0][i].Counters, results[i].Counters) {
				t.Errorf("point %d (%s): counters differ between 1 and %d workers",
					i, pts[i], []int{4, 8}[w])
			}
		}
	}

	// Disabled counters leave results clean.
	plain, err := runner.New(runner.Options{Workers: 4}).Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range plain {
		if r.Counters != nil {
			t.Errorf("point %d (%s): counters attached without the option", i, pts[i])
		}
	}
}

func TestProfile(t *testing.T) {
	pts := testPoints(t)
	eng := runner.New(runner.Options{Workers: 2})
	if _, err := eng.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	p := eng.Profile()
	if p.Workers != 2 {
		t.Errorf("Workers = %d, want 2", p.Workers)
	}
	if p.Points != len(pts) {
		t.Errorf("Points = %d, want %d", p.Points, len(pts))
	}
	if p.Simulated != 8 || p.CacheHits != len(pts)-8 {
		t.Errorf("Simulated/CacheHits = %d/%d, want 8/%d", p.Simulated, p.CacheHits, len(pts)-8)
	}
	if len(p.Slowest) != 8 {
		t.Errorf("Slowest has %d entries, want 8 (one per distinct sim)", len(p.Slowest))
	}
	for i := 1; i < len(p.Slowest); i++ {
		if p.Slowest[i].Seconds > p.Slowest[i-1].Seconds {
			t.Fatalf("Slowest not sorted descending at %d", i)
		}
	}
	if p.BatchWallSeconds <= 0 || p.SimWallSeconds <= 0 {
		t.Errorf("wall times %.3f/%.3f must be positive", p.SimWallSeconds, p.BatchWallSeconds)
	}
	if p.Occupancy < 0 || p.Occupancy > 1 {
		t.Errorf("Occupancy = %g, want within [0,1]", p.Occupancy)
	}
	if p.String() == "" {
		t.Error("profile summary is empty")
	}

	// A fresh engine that has run nothing reports a zero profile.
	if z := runner.New(runner.Options{}).Profile(); z.Points != 0 || z.Occupancy != 0 {
		t.Errorf("idle engine profile = %+v, want zeros", z)
	}
}

func TestOne(t *testing.T) {
	// RSBench is compute-bound, so its wall time must track the core
	// clock (a bandwidth-bound app like Stream is clock-invariant).
	app, err := workloads.ByName("RSBench", workloads.Params{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	eng := runner.New(runner.Options{})
	r, err := eng.One(context.Background(), runner.Point{App: app, Scale: testScale, Config: sim.MultiGPM(2, sim.BW2x)})
	if err != nil {
		t.Fatal(err)
	}
	if r == nil || r.Counts.Cycles == 0 {
		t.Fatal("One returned an empty result")
	}
	if eng.Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("default Workers = %d, want GOMAXPROCS", eng.Workers())
	}
}

func TestCoalescedCounter(t *testing.T) {
	pts := testPoints(t)
	eng := runner.New(runner.Options{Workers: 4})

	var coalescedEvents int
	eng2 := runner.New(runner.Options{Workers: 4, OnEvent: func(ev runner.Event) {
		if ev.Kind == runner.PointDone && ev.Coalesced {
			if !ev.CacheHit {
				t.Error("a coalesced event must also be a cache hit")
			}
			coalescedEvents++
		}
	}})
	if _, err := eng2.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	// Claims happen before any worker starts, so every within-batch
	// duplicate joins an in-flight entry: all 4 first-batch hits (the
	// literal duplicate plus the two collapsed 1-GPM variants) coalesce.
	if want := len(pts) - 8; coalescedEvents != want {
		t.Errorf("saw %d coalesced events, want %d", coalescedEvents, want)
	}
	if got := eng2.Stats().Coalesced; got != len(pts)-8 {
		t.Errorf("Stats.Coalesced = %d, want %d", got, len(pts)-8)
	}

	// On a warmed engine the same points are resolved memo entries:
	// hits, but no new coalescing.
	if _, err := eng.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	first := eng.Stats().Coalesced
	if _, err := eng.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Coalesced; got != first {
		t.Errorf("re-running a warmed grid coalesced %d more points, want 0", got-first)
	}
}

func TestEphemeralEviction(t *testing.T) {
	// RSBench is compute-bound, so its wall time must track the core
	// clock (a bandwidth-bound app like Stream is clock-invariant).
	app, err := workloads.ByName("RSBench", workloads.Params{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	pt := runner.Point{App: app, Scale: testScale, Config: sim.MultiGPM(2, sim.BW2x)}
	pts := []runner.Point{pt, pt} // duplicate: must still dedupe in-flight

	eng := runner.New(runner.Options{Workers: 2, Ephemeral: true})
	first, err := eng.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if first[0] != first[1] {
		t.Error("within-batch duplicate must share one simulation even when ephemeral")
	}
	st := eng.Stats()
	if st.Simulated != 1 || st.CacheHits != 1 || st.Coalesced != 1 {
		t.Errorf("Stats = %+v, want 1 simulated / 1 hit / 1 coalesced", st)
	}
	if eng.Distinct() != 0 {
		t.Errorf("Distinct = %d, want 0 (ephemeral entries are evicted on resolve)", eng.Distinct())
	}

	// A second batch re-simulates: nothing was memoized.
	if _, err := eng.Run(context.Background(), pts[:1]); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Simulated; got != 2 {
		t.Errorf("Simulated = %d after re-run, want 2 (no cross-batch memo)", got)
	}
}

// TestProfileConcurrentReaders hammers the engine's introspection
// surface from reader goroutines while a batch runs — the exact access
// pattern of the /metrics and /progress handlers of a live daemon. Run
// under -race this is the regression test for profile-counter safety.
func TestProfileConcurrentReaders(t *testing.T) {
	pts := testPoints(t)
	eng := runner.New(runner.Options{Workers: 4})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := eng.Profile()
				if p.BatchWallSeconds < 0 || p.Occupancy < 0 || p.Occupancy > 1 {
					t.Errorf("live profile out of range: %+v", p)
					return
				}
				_ = eng.Stats()
				_ = eng.Distinct()
			}
		}()
	}
	if _, err := eng.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	// While the batch was live, BatchWallSeconds must have been ticking.
	mid := eng.Profile().BatchWallSeconds
	close(stop)
	wg.Wait()
	if mid <= 0 {
		t.Errorf("BatchWallSeconds = %g after a real batch, want > 0", mid)
	}
}

func TestGridPoints(t *testing.T) {
	var apps []*trace.App
	for _, name := range []string{"Stream", "Kmeans"} {
		app, err := workloads.ByName(name, workloads.Params{Scale: testScale})
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
	}
	cfgs := []sim.Config{sim.MultiGPM(2, sim.BW2x), sim.MultiGPM(4, sim.BW1x)}

	pts := runner.GridPoints(apps, testScale, true, cfgs...)
	if len(pts) != 6 {
		t.Fatalf("len = %d, want 6 (2 apps × (baseline + 2 cfgs))", len(pts))
	}
	base := sim.MultiGPM(1, sim.BW2x)
	want := []runner.Point{
		{App: apps[0], Scale: testScale, Config: base},
		{App: apps[0], Scale: testScale, Config: cfgs[0]},
		{App: apps[0], Scale: testScale, Config: cfgs[1]},
		{App: apps[1], Scale: testScale, Config: base},
		{App: apps[1], Scale: testScale, Config: cfgs[0]},
		{App: apps[1], Scale: testScale, Config: cfgs[1]},
	}
	if !reflect.DeepEqual(pts, want) {
		t.Error("GridPoints layout differs from the sweep row order")
	}
	if n := len(runner.GridPoints(apps, testScale, false, cfgs...)); n != 4 {
		t.Errorf("without baseline len = %d, want 4", n)
	}
}

// TestSubscribe checks the engine's event fan-out: every subscriber
// observes the same serialized event stream as Options.OnEvent, and a
// cancelled subscription stops receiving immediately.
func TestSubscribe(t *testing.T) {
	pts := testPoints(t)
	var onEvent []runner.EventKind
	eng := runner.New(runner.Options{Workers: 2, OnEvent: func(ev runner.Event) {
		onEvent = append(onEvent, ev.Kind)
	}})
	var a, b []runner.EventKind
	cancelA := eng.Subscribe(func(ev runner.Event) { a = append(a, ev.Kind) })
	eng.Subscribe(func(ev runner.Event) { b = append(b, ev.Kind) })

	if _, err := eng.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	// Delivery is serialized: OnEvent and every subscriber see the
	// identical sequence.
	if !reflect.DeepEqual(a, onEvent) || !reflect.DeepEqual(b, onEvent) {
		t.Errorf("subscriber streams diverge from OnEvent:\nonEvent: %v\na: %v\nb: %v", onEvent, a, b)
	}
	done := 0
	for _, k := range a {
		if k == runner.PointDone {
			done++
		}
	}
	if done != len(pts) {
		t.Errorf("subscriber saw %d PointDone events, want %d", done, len(pts))
	}

	// After cancellation only the live subscriber grows.
	cancelA()
	alen := len(a)
	if _, err := eng.Run(context.Background(), pts); err != nil {
		t.Fatal(err)
	}
	if len(a) != alen {
		t.Errorf("cancelled subscriber still received %d events", len(a)-alen)
	}
	if len(b) <= alen {
		t.Error("live subscriber stopped receiving after another subscription was cancelled")
	}
}

// TestOperatingPointsGetDistinctCacheEntries pins the DVFS cache-key
// contract: the same (workload, design) at two clock frequencies must
// occupy two memo entries (and produce different timing), never alias.
func TestOperatingPointsGetDistinctCacheEntries(t *testing.T) {
	// RSBench is compute-bound, so its wall time must track the core
	// clock (a bandwidth-bound app like Stream is clock-invariant).
	app, err := workloads.ByName("RSBench", workloads.Params{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	base := sim.MultiGPM(2, sim.BW2x)
	slow, fast := base, base
	slow.ClockHz, slow.VoltageV = 600e6, 0.80
	fast.ClockHz, fast.VoltageV = 1.2e9, 1.17

	eng := runner.New(runner.Options{Workers: 2})
	pts := []runner.Point{
		{App: app, Scale: testScale, Config: slow},
		{App: app, Scale: testScale, Config: fast},
		{App: app, Scale: testScale, Config: slow}, // dup: must hit, not add
	}
	results, err := eng.Run(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Distinct(); got != 2 {
		t.Errorf("Distinct() = %d, want 2 (one cache entry per operating point)", got)
	}
	if results[0].Seconds() <= results[1].Seconds() {
		t.Errorf("600 MHz wall time %g must exceed 1200 MHz %g",
			results[0].Seconds(), results[1].Seconds())
	}
	if results[0].Counts.Inst != results[1].Counts.Inst {
		t.Error("operating point must not change instruction counts")
	}
}
