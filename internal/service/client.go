package service

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"gpujoule/internal/obs"
)

// Client is the HTTP client for a gpujouled daemon or cluster. It
// speaks only the /v1 API; all simulation, caching, coalescing, and
// scheduling stay server-side.
//
// The v2 surface is cluster-aware: the client follows 307 ownership
// redirects (rebasing onto the owning node, so a whole job
// conversation — submit, stream, result — stays on one node) and
// honours Retry-After backpressure hints on 429 (and, opted in via
// RetryPolicy, 503) automatically. Construct it with Dial and
// functional options:
//
//	c, err := service.Dial(
//	    service.WithBaseURL("http://127.0.0.1:8344"),
//	    service.WithTenant("ci"),
//	    service.WithRetry(service.RetryPolicy{MaxAttempts: 8}),
//	)
type Client struct {
	hc       *http.Client
	priority int
	retry    RetryPolicy
	logfFn   func(format string, args ...any)
	noRedir  bool

	// Tenant, when non-empty, is sent as the X-Tenant header on every
	// request, billing submitted jobs to that scheduling tenant.
	//
	// Deprecated: set it with WithTenant at Dial time. The field stays
	// exported for one release as the v1 surface.
	Tenant string

	mu   sync.Mutex
	base string // current base URL; rebased when a 307 is followed
}

// ClientOption configures a Client at Dial time.
type ClientOption func(*Client)

// WithBaseURL targets the daemon (or gateway) at base, e.g.
// "http://127.0.0.1:8344". A bare host:port is promoted to http.
func WithBaseURL(base string) ClientOption {
	return func(c *Client) { c.base = normalizeBase(base) }
}

// WithTenant bills submitted jobs to the named scheduling tenant
// (empty selects the server's DefaultTenant).
func WithTenant(tenant string) ClientOption {
	return func(c *Client) { c.Tenant = tenant }
}

// WithPriority sets a default scheduling priority applied to submitted
// specs that carry none (Priority == 0). Specs with an explicit
// priority are sent unchanged.
func WithPriority(priority int) ClientOption {
	return func(c *Client) { c.priority = priority }
}

// WithRetry sets the client's backpressure retry policy (see
// RetryPolicy; the zero value retries queue-full rejections forever
// with the server's hints).
func WithRetry(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// WithHTTPClient supplies the underlying transport, e.g. one with a
// large connection pool for load generation. The client is shallow-
// copied so redirect interception can be installed without mutating
// the caller's client.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) {
		cp := *hc
		c.hc = &cp
	}
}

// WithLogf routes the client's operational log lines (digest
// mismatches, retry waits) to f. Silent by default.
func WithLogf(f func(format string, args ...any)) ClientOption {
	return func(c *Client) { c.logfFn = f }
}

// WithNoRedirect disables 307 ownership-redirect following: instead of
// rebasing onto the owning node the client surfaces ErrNotOwner (with
// the owner's base URL) and sends the X-GPUJoule-No-Redirect header so
// the serving node runs the job itself rather than redirecting.
// Cluster-internal callers (the gateway) use this; end-user clients
// should not.
func WithNoRedirect() ClientOption {
	return func(c *Client) { c.noRedir = true }
}

// RetryPolicy governs automatic retry of queue-full (429) — and,
// opted in, unavailable (503) — submissions. The server's Retry-After
// hint is always preferred; without one the delay doubles from
// BaseDelay up to MaxDelay.
type RetryPolicy struct {
	// MaxAttempts bounds total submission attempts (0 = retry until
	// the context expires — the v1 behaviour).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff used when the server
	// sends no Retry-After hint (default 1s).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 30s).
	MaxDelay time.Duration
	// RetryUnavailable also retries 503 responses (a node mid-restart
	// behind a load balancer). Off by default: a draining single node
	// is not coming back, and callers should see ErrDraining.
	RetryUnavailable bool
	// Notify, when non-nil, observes every retry: the rejection and
	// the delay about to be slept. Load generators use it to count
	// backpressure events.
	Notify func(err error, delay time.Duration)
}

// Dial builds a v2 client from functional options. WithBaseURL is
// required.
func Dial(opts ...ClientOption) (*Client, error) {
	c := &Client{}
	for _, o := range opts {
		o(c)
	}
	if c.base == "" {
		return nil, errors.New("service: Dial requires WithBaseURL")
	}
	if c.hc == nil {
		c.hc = &http.Client{}
	}
	// Redirects are protocol, not plumbing: the client must observe a
	// 307 to rebase (or surface ErrNotOwner), so the transport never
	// follows them on its own.
	c.hc.CheckRedirect = func(req *http.Request, via []*http.Request) error {
		return http.ErrUseLastResponse
	}
	return c, nil
}

// NewClient targets a daemon at base (e.g. "http://127.0.0.1:8344").
//
// Deprecated: use Dial(WithBaseURL(base), ...). NewClient remains as
// the v1 constructor for one release and is equivalent to Dial with
// the default options (it cannot fail: base is given).
func NewClient(base string) *Client {
	c, err := Dial(WithBaseURL(base))
	if err != nil {
		panic("service: NewClient: " + err.Error()) // unreachable: base is set
	}
	return c
}

func normalizeBase(base string) string {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimRight(base, "/")
}

// Base returns the client's current base URL — the node it last
// rebased onto if a 307 was followed, else the dialled one.
func (c *Client) Base() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base
}

func (c *Client) setBase(base string) {
	c.mu.Lock()
	c.base = base
	c.mu.Unlock()
}

func (c *Client) logf(format string, args ...any) {
	if c.logfFn != nil {
		c.logfFn(format, args...)
	}
}

// QueueFullError is the typed form of a 429 rejection: it unwraps to
// ErrQueueFull and carries the server's adaptive Retry-After hint.
type QueueFullError struct {
	// RetryAfter is the server's suggested backoff (zero when the
	// response carried no usable hint).
	RetryAfter time.Duration
	msg        string
}

func (e *QueueFullError) Error() string { return e.msg }

// Unwrap lets errors.Is(err, ErrQueueFull) keep working on the typed
// error.
func (e *QueueFullError) Unwrap() error { return ErrQueueFull }

// UnavailableError is the typed form of a 503 rejection: it unwraps to
// ErrDraining and carries the server's Retry-After hint when one was
// sent (a node mid-restart hints; a draining one does not need to —
// it is not coming back).
type UnavailableError struct {
	RetryAfter time.Duration
	msg        string
}

func (e *UnavailableError) Error() string { return e.msg }

// Unwrap lets errors.Is(err, ErrDraining) keep working on the typed
// error.
func (e *UnavailableError) Unwrap() error { return ErrDraining }

func retryAfterHint(resp *http.Response) time.Duration {
	if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
		return time.Duration(sec) * time.Second
	}
	return 0
}

// apiError decodes the server's {"error": ...} body into a Go error,
// preserving queue-full and unavailable (with their Retry-After hints)
// as matchable typed values so callers can implement retry policy.
func apiError(resp *http.Response, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		return &QueueFullError{RetryAfter: retryAfterHint(resp), msg: fmt.Sprintf("%v (%s)", ErrQueueFull, msg)}
	case http.StatusServiceUnavailable:
		return &UnavailableError{RetryAfter: retryAfterHint(resp), msg: fmt.Sprintf("%v (%s)", ErrDraining, msg)}
	}
	return fmt.Errorf("service: HTTP %d: %s", resp.StatusCode, msg)
}

// maxRedirectHops bounds ownership-redirect chasing per request. One
// hop is the protocol (the owner answers for itself); a second can
// legitimately happen when ring views differ mid-rebalance; beyond
// that something is looping.
const maxRedirectHops = 3

// do runs one request against the current base and decodes the JSON
// response into out (when non-nil). 307/308 ownership redirects are
// followed (rebasing the client onto the owner) unless WithNoRedirect
// was set, in which case they surface as ErrNotOwner. Non-2xx
// responses become errors.
func (c *Client) do(ctx context.Context, method, path string, hdr http.Header, in, out any) error {
	var raw []byte
	if in != nil {
		var err error
		raw, err = json.Marshal(in)
		if err != nil {
			return err
		}
	}
	for hop := 0; ; hop++ {
		var body io.Reader
		if in != nil {
			body = bytes.NewReader(raw)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.Base()+path, body)
		if err != nil {
			return err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.Tenant != "" {
			req.Header.Set(TenantHeader, c.Tenant)
		}
		if c.noRedir {
			req.Header.Set(NoRedirectHeader, "1")
		}
		for k, vs := range hdr {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		rbody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTemporaryRedirect || resp.StatusCode == http.StatusPermanentRedirect {
			owner, perr := redirectBase(resp)
			if perr != nil {
				return perr
			}
			if c.noRedir {
				return ErrNotOwner{Owner: owner}
			}
			if hop+1 >= maxRedirectHops {
				return fmt.Errorf("service: %d ownership redirects without converging (last owner %s)", hop+1, owner)
			}
			c.logf("service: %s %s redirected to owning node %s", method, path, owner)
			c.setBase(owner)
			continue
		}
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			return apiError(resp, rbody)
		}
		if out != nil {
			return json.Unmarshal(rbody, out)
		}
		return nil
	}
}

// redirectBase extracts the owning node's base URL from a redirect's
// Location header (which points at the resource, e.g.
// "http://node2:8344/v1/jobs").
func redirectBase(resp *http.Response) (string, error) {
	loc := resp.Header.Get("Location")
	u, err := url.Parse(loc)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return "", fmt.Errorf("service: unusable redirect Location %q", loc)
	}
	return u.Scheme + "://" + u.Host, nil
}

// Submit enqueues a job and returns its queued status. A client
// default priority (WithPriority) is applied to specs that carry none.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	if spec.Priority == 0 && c.priority != 0 {
		spec.Priority = c.priority
	}
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", nil, spec, &st)
	return st, err
}

// submitRetry submits under the client's RetryPolicy: queue-full (and,
// opted in, unavailable) rejections back off — preferring the server's
// Retry-After hint, else exponentially from BaseDelay — and retry
// until MaxAttempts or the context expires.
func (c *Client) submitRetry(ctx context.Context, spec JobSpec) (JobStatus, error) {
	p := c.retry
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Second
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 30 * time.Second
	}
	backoff := p.BaseDelay
	for attempt := 1; ; attempt++ {
		st, err := c.Submit(ctx, spec)
		if err == nil {
			return st, nil
		}
		var hint time.Duration
		var qf *QueueFullError
		var ua *UnavailableError
		switch {
		case errors.As(err, &qf):
			hint = qf.RetryAfter
		case p.RetryUnavailable && errors.As(err, &ua):
			hint = ua.RetryAfter
		default:
			return st, err
		}
		if p.MaxAttempts > 0 && attempt >= p.MaxAttempts {
			return st, fmt.Errorf("service: %d submission attempts exhausted: %w", attempt, err)
		}
		delay := hint
		if delay <= 0 {
			delay = backoff
			backoff *= 2
			if backoff > p.MaxDelay {
				backoff = p.MaxDelay
			}
		}
		if p.Notify != nil {
			p.Notify(err, delay)
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Status fetches a job's current snapshot.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, nil, &st)
	return st, err
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil, &st)
	return st, err
}

// Result fetches a done job's result document.
func (c *Client) Result(ctx context.Context, id string) (*ResultDoc, error) {
	var doc ResultDoc
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// resultAfterMismatch is the authoritative refetch after a streamed
// reassembly failed digest verification: the same GET, marked with the
// mismatch header so the server counts the event.
func (c *Client) resultAfterMismatch(ctx context.Context, id, detail string) (*ResultDoc, error) {
	hdr := http.Header{}
	hdr.Set(DigestMismatchHeader, detail)
	var doc ResultDoc
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", hdr, nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Partial fetches a running job's partial result document: the final
// document's shape with null results for unresolved points.
func (c *Client) Partial(ctx context.Context, id string) (*ResultDoc, error) {
	var doc ResultDoc
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result?partial=1", nil, nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Version fetches the daemon's version string.
func (c *Client) Version(ctx context.Context) (string, error) {
	var v struct {
		Version string `json:"version"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/version", nil, nil, &v)
	return v.Version, err
}

// CacheGetRaw fetches one raw result-cache entry from the node, with
// its cache stamp. With wait set, a key currently computing on the
// node blocks until it settles (the cluster-wide singleflight join).
// A miss returns ("", nil, false, nil); transport and HTTP errors are
// returned as errors.
func (c *Client) CacheGetRaw(ctx context.Context, key string, wait bool) (raw []byte, stamp string, ok bool, err error) {
	q := url.Values{"key": {key}}
	if wait {
		q.Set("wait", "1")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base()+"/v1/cache?"+q.Encode(), nil)
	if err != nil {
		return nil, "", false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, "", false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", false, err
	}
	stamp = resp.Header.Get(CacheStampHeader)
	switch resp.StatusCode {
	case http.StatusOK:
		return body, stamp, true, nil
	case http.StatusNotFound:
		return nil, stamp, false, nil
	}
	return nil, stamp, false, apiError(resp, body)
}

// CachePutRaw replicates one raw result-cache entry to the node,
// stamped so the receiver can reject cross-version entries.
func (c *Client) CachePutRaw(ctx context.Context, key string, rawEntry []byte, stamp string) error {
	q := url.Values{"key": {key}}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.Base()+"/v1/cache?"+q.Encode(), bytes.NewReader(rawEntry))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(CacheStampHeader, stamp)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp, body)
	}
	return nil
}

// Wait polls until the job reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Stream subscribes to a job's SSE event feed from sequence number
// `from`, invoking fn for every event in order (history replays
// first, so from=0 observes the complete log). It returns the
// terminal event once the stream ends with one. A non-nil error from
// fn aborts the stream.
func (c *Client) Stream(ctx context.Context, id string, from int, fn func(JobEvent) error) (JobEvent, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", c.Base(), id, from), nil)
	if err != nil {
		return JobEvent{}, err
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return JobEvent{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return JobEvent{}, apiError(resp, raw)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):]...)
		case line == "" && len(data) > 0:
			var ev JobEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				return JobEvent{}, fmt.Errorf("service: decoding stream event: %w", err)
			}
			data = nil
			if fn != nil {
				if err := fn(ev); err != nil {
					return JobEvent{}, err
				}
			}
			if ev.Kind == EventDone {
				return ev, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return JobEvent{}, err
	}
	return JobEvent{}, errors.New("service: event stream ended without a terminal event")
}

// RunSweep submits a spec, waits it out, and returns the result
// document — one sweep round-trip. Submission retries under the
// client's RetryPolicy, honouring the server's adaptive Retry-After
// hints.
func (c *Client) RunSweep(ctx context.Context, spec JobSpec) (*ResultDoc, error) {
	st, err := c.submitRetry(ctx, spec)
	if err != nil {
		return nil, err
	}
	fin, err := c.Wait(ctx, st.ID, 0)
	if err != nil {
		return nil, err
	}
	if ferr := fin.Err(); ferr != nil {
		return nil, ferr
	}
	return c.Result(ctx, fin.ID)
}

// RunSweepStream is RunSweep's streaming form: it submits the spec,
// follows the job's SSE feed (invoking onEvent, when non-nil, for
// every event — point events carry the resolved PointResult), and
// reassembles the result document client-side in expansion order. The
// reassembly is verified against the digest in the terminal event —
// the sha256 of the document the server would serve. A mismatch is
// never silent: it is logged (WithLogf), surfaced to onEvent as a
// synthetic EventDigestMismatch event, and reported to the server
// (which counts it in gpujoule_stream_digest_mismatch_total) on the
// authoritative /result refetch — so the returned document is always
// byte-equivalent to the polled path.
func (c *Client) RunSweepStream(ctx context.Context, spec JobSpec, onEvent func(JobEvent)) (*ResultDoc, error) {
	st, err := c.submitRetry(ctx, spec)
	if err != nil {
		return nil, err
	}
	doc := &ResultDoc{SchemaVersion: obs.SchemaVersion, Points: make([]PointResult, st.Points)}
	fin, err := c.Stream(ctx, st.ID, 0, func(ev JobEvent) error {
		if ev.Kind == EventPoint && ev.Point != nil && ev.Index >= 0 && ev.Index < len(doc.Points) {
			doc.Points[ev.Index] = *ev.Point
		}
		if onEvent != nil {
			onEvent(ev)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if fin.State != StateDone {
		return nil, JobStatus{ID: st.ID, State: fin.State, Error: fin.Error}.Err()
	}
	sum := sha256.Sum256(RenderResultDoc(*doc))
	actual := hex.EncodeToString(sum[:])
	if fin.Digest != "" && actual == fin.Digest {
		return doc, nil
	}
	if fin.Digest == "" {
		// A server too old to stamp a digest: nothing to verify
		// against, /result is authoritative.
		return c.Result(ctx, st.ID)
	}
	detail := fmt.Sprintf("%v: job %s: stream digest %s != server digest %s", ErrDigestMismatch, st.ID, actual, fin.Digest)
	c.logf("service: %s; refetching authoritative /result", detail)
	if onEvent != nil {
		onEvent(JobEvent{Kind: EventDigestMismatch, Error: detail})
	}
	return c.resultAfterMismatch(ctx, st.ID, detail)
}
