package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is the thin HTTP client for a gpujouled daemon, used by
// cmd/sweep -server and the service tests. It speaks only the /v1 API;
// all simulation, caching, and coalescing stay server-side.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets a daemon at base (e.g. "http://127.0.0.1:8344").
// A bare host:port is promoted to http.
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// apiError decodes the server's {"error": ...} body into a Go error,
// preserving queue-full and draining as their sentinel values so
// callers can implement retry policy.
func apiError(code int, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	switch code {
	case http.StatusTooManyRequests:
		return fmt.Errorf("%w (%s)", ErrQueueFull, msg)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w (%s)", ErrDraining, msg)
	}
	return fmt.Errorf("service: HTTP %d: %s", code, msg)
}

// do runs one request and decodes the JSON response into out (when
// non-nil). Non-2xx responses become errors.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp.StatusCode, raw)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

// Submit enqueues a job and returns its queued status.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Status fetches a job's current snapshot.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Result fetches a done job's result document.
func (c *Client) Result(ctx context.Context, id string) (*ResultDoc, error) {
	var doc ResultDoc
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Version fetches the daemon's version string.
func (c *Client) Version(ctx context.Context) (string, error) {
	var v struct {
		Version string `json:"version"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/version", nil, &v)
	return v.Version, err
}

// Wait polls until the job reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// RunSweep submits a spec, waits it out, and returns the result
// document — one sweep round-trip. Submission retries on queue-full
// backpressure, honouring the server's Retry-After hint.
func (c *Client) RunSweep(ctx context.Context, spec JobSpec) (*ResultDoc, error) {
	var st JobStatus
	for {
		var err error
		st, err = c.Submit(ctx, spec)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrQueueFull) {
			return nil, err
		}
		select {
		case <-time.After(time.Second):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	fin, err := c.Wait(ctx, st.ID, 0)
	if err != nil {
		return nil, err
	}
	if fin.State != StateDone {
		return nil, fmt.Errorf("service: job %s %s: %s", fin.ID, fin.State, fin.Error)
	}
	return c.Result(ctx, fin.ID)
}
