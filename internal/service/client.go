package service

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gpujoule/internal/obs"
)

// Client is the thin HTTP client for a gpujouled daemon, used by
// cmd/sweep -server and the service tests. It speaks only the /v1 API;
// all simulation, caching, coalescing, and scheduling stay
// server-side.
type Client struct {
	base string
	hc   *http.Client

	// Tenant, when non-empty, is sent as the X-Tenant header on every
	// request, billing submitted jobs to that scheduling tenant.
	Tenant string
}

// NewClient targets a daemon at base (e.g. "http://127.0.0.1:8344").
// A bare host:port is promoted to http.
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// QueueFullError is the typed form of a 429 rejection: it unwraps to
// ErrQueueFull and carries the server's adaptive Retry-After hint.
type QueueFullError struct {
	// RetryAfter is the server's suggested backoff (zero when the
	// response carried no usable hint).
	RetryAfter time.Duration
	msg        string
}

func (e *QueueFullError) Error() string { return e.msg }

// Unwrap lets errors.Is(err, ErrQueueFull) keep working on the typed
// error.
func (e *QueueFullError) Unwrap() error { return ErrQueueFull }

// apiError decodes the server's {"error": ...} body into a Go error,
// preserving queue-full (with its Retry-After hint) and draining as
// matchable sentinel values so callers can implement retry policy.
func apiError(resp *http.Response, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		var retry time.Duration
		if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
			retry = time.Duration(sec) * time.Second
		}
		return &QueueFullError{RetryAfter: retry, msg: fmt.Sprintf("%v (%s)", ErrQueueFull, msg)}
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w (%s)", ErrDraining, msg)
	}
	return fmt.Errorf("service: HTTP %d: %s", resp.StatusCode, msg)
}

// do runs one request and decodes the JSON response into out (when
// non-nil). Non-2xx responses become errors.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return apiError(resp, raw)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

// Submit enqueues a job and returns its queued status.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// submitRetry submits with backoff on queue-full rejections, honouring
// the server's adaptive Retry-After hint.
func (c *Client) submitRetry(ctx context.Context, spec JobSpec) (JobStatus, error) {
	for {
		st, err := c.Submit(ctx, spec)
		if err == nil {
			return st, nil
		}
		var qf *QueueFullError
		if !errors.As(err, &qf) {
			return st, err
		}
		backoff := qf.RetryAfter
		if backoff <= 0 {
			backoff = time.Second
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Status fetches a job's current snapshot.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Result fetches a done job's result document.
func (c *Client) Result(ctx context.Context, id string) (*ResultDoc, error) {
	var doc ResultDoc
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Partial fetches a running job's partial result document: the final
// document's shape with null results for unresolved points.
func (c *Client) Partial(ctx context.Context, id string) (*ResultDoc, error) {
	var doc ResultDoc
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result?partial=1", nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Version fetches the daemon's version string.
func (c *Client) Version(ctx context.Context) (string, error) {
	var v struct {
		Version string `json:"version"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/version", nil, &v)
	return v.Version, err
}

// Wait polls until the job reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Stream subscribes to a job's SSE event feed from sequence number
// `from`, invoking fn for every event in order (history replays
// first, so from=0 observes the complete log). It returns the
// terminal event once the stream ends with one. A non-nil error from
// fn aborts the stream.
func (c *Client) Stream(ctx context.Context, id string, from int, fn func(JobEvent) error) (JobEvent, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", c.base, id, from), nil)
	if err != nil {
		return JobEvent{}, err
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return JobEvent{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return JobEvent{}, apiError(resp, raw)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):]...)
		case line == "" && len(data) > 0:
			var ev JobEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				return JobEvent{}, fmt.Errorf("service: decoding stream event: %w", err)
			}
			data = nil
			if fn != nil {
				if err := fn(ev); err != nil {
					return JobEvent{}, err
				}
			}
			if ev.Kind == EventDone {
				return ev, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return JobEvent{}, err
	}
	return JobEvent{}, errors.New("service: event stream ended without a terminal event")
}

// RunSweep submits a spec, waits it out, and returns the result
// document — one sweep round-trip. Submission retries on queue-full
// backpressure, honouring the server's adaptive Retry-After hint.
func (c *Client) RunSweep(ctx context.Context, spec JobSpec) (*ResultDoc, error) {
	st, err := c.submitRetry(ctx, spec)
	if err != nil {
		return nil, err
	}
	fin, err := c.Wait(ctx, st.ID, 0)
	if err != nil {
		return nil, err
	}
	if ferr := fin.Err(); ferr != nil {
		return nil, ferr
	}
	return c.Result(ctx, fin.ID)
}

// RunSweepStream is RunSweep's streaming form: it submits the spec,
// follows the job's SSE feed (invoking onEvent, when non-nil, for
// every event — point events carry the resolved PointResult), and
// reassembles the result document client-side in expansion order. The
// reassembly is verified against the digest in the terminal event —
// the sha256 of the document the server would serve — and falls back
// to fetching /result on any mismatch, so the returned document is
// always byte-equivalent to the polled path.
func (c *Client) RunSweepStream(ctx context.Context, spec JobSpec, onEvent func(JobEvent)) (*ResultDoc, error) {
	st, err := c.submitRetry(ctx, spec)
	if err != nil {
		return nil, err
	}
	doc := &ResultDoc{SchemaVersion: obs.SchemaVersion, Points: make([]PointResult, st.Points)}
	fin, err := c.Stream(ctx, st.ID, 0, func(ev JobEvent) error {
		if ev.Kind == EventPoint && ev.Point != nil && ev.Index >= 0 && ev.Index < len(doc.Points) {
			doc.Points[ev.Index] = *ev.Point
		}
		if onEvent != nil {
			onEvent(ev)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if fin.State != StateDone {
		return nil, JobStatus{ID: st.ID, State: fin.State, Error: fin.Error}.Err()
	}
	sum := sha256.Sum256(renderResultDoc(*doc))
	if fin.Digest != "" && hex.EncodeToString(sum[:]) == fin.Digest {
		return doc, nil
	}
	// Digest mismatch (or a server too old to stamp one): the stream
	// is advisory, /result is authoritative.
	return c.Result(ctx, st.ID)
}
