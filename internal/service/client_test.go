package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gpujoule/internal/obs"
	"gpujoule/internal/sim"
)

// clientSpec is a one-point sweep, cheap enough for client round-trip
// tests.
func clientSpec() JobSpec {
	return JobSpec{Workloads: "Stream", Scale: 0.05, GPMs: "1", BWs: "1x"}
}

// TestClientFollowsOwnershipRedirect: a 307 from a non-owning node
// rebases the client onto the owner and the request is retried there
// transparently; subsequent calls go straight to the owner.
func TestClientFollowsOwnershipRedirect(t *testing.T) {
	s := newTestServer(t, Options{Executors: 2, QueueCap: 8})
	owner := httptest.NewServer(s.Handler())
	defer owner.Close()

	var redirects atomic.Int64
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		redirects.Add(1)
		w.Header().Set("Location", owner.URL+r.URL.Path)
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer front.Close()

	c, err := Dial(WithBaseURL(front.URL))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	doc, err := c.RunSweep(ctx, clientSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Points) == 0 || doc.Points[0].Result == nil {
		t.Fatalf("redirected sweep returned an empty document: %+v", doc)
	}
	if got := c.Base(); got != owner.URL {
		t.Errorf("client base after redirect = %q; want the owner %q", got, owner.URL)
	}
	if n := redirects.Load(); n != 1 {
		t.Errorf("front node saw %d requests; the client should rebase after the first 307", n)
	}
}

// TestClientNoRedirectSurfacesOwner: with WithNoRedirect, the same 307
// surfaces as the typed ErrNotOwner carrying the owner's base URL.
func TestClientNoRedirectSurfacesOwner(t *testing.T) {
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Location", "http://owner.example:8344/v1/jobs")
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer front.Close()

	c, err := Dial(WithBaseURL(front.URL), WithNoRedirect())
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(context.Background(), clientSpec())
	if !errors.Is(err, ErrNotOwner{}) {
		t.Fatalf("Submit error = %v; want an ErrNotOwner", err)
	}
	var eno ErrNotOwner
	if !errors.As(err, &eno) || eno.Owner != "http://owner.example:8344" {
		t.Errorf("ErrNotOwner.Owner = %q; want the Location host", eno.Owner)
	}
	if got := c.Base(); got != front.URL {
		t.Errorf("client base = %q; a surfaced redirect must not rebase", got)
	}
}

// TestClientRetryPolicy: queue-full rejections back off and retry
// under the configured policy, with each rejection reported through
// Notify.
func TestClientRetryPolicy(t *testing.T) {
	s := newTestServer(t, Options{Executors: 2, QueueCap: 8})
	real := s.Handler()
	var rejected atomic.Int64
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && rejected.Load() < 2 {
			rejected.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer front.Close()

	var notified atomic.Int64
	c, err := Dial(WithBaseURL(front.URL), WithRetry(RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		Notify: func(err error, delay time.Duration) {
			if !errors.Is(err, ErrQueueFull) {
				t.Errorf("Notify error = %v; want queue-full", err)
			}
			notified.Add(1)
		},
	}))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := c.RunSweep(context.Background(), clientSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Points) == 0 {
		t.Fatal("empty document after retries")
	}
	if n := notified.Load(); n != 2 {
		t.Errorf("Notify fired %d times; want one per rejection (2)", n)
	}

	// A bounded policy gives up with the rejection still matchable.
	rejected.Store(-1000) // reject everything from here on
	c2, _ := Dial(WithBaseURL(front.URL), WithRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}))
	if _, err := c2.RunSweep(context.Background(), clientSpec()); !errors.Is(err, ErrQueueFull) {
		t.Errorf("exhausted retries = %v; want a queue-full error", err)
	}
}

// TestStreamDigestMismatchSurfaced: a terminal digest that does not
// match the streamed reassembly must be surfaced (synthetic event) and
// reported on the authoritative refetch — never silently absorbed.
func TestStreamDigestMismatchSurfaced(t *testing.T) {
	doc := ResultDoc{SchemaVersion: obs.SchemaVersion, Points: []PointResult{{
		Workload: "Stream", Config: "cfg", SimKey: "k", Result: &sim.Result{},
	}}}
	rendered := RenderResultDoc(doc)

	var reported atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(JobStatus{ID: "j1", State: StateQueued, Points: 1})
	})
	mux.HandleFunc("GET /v1/jobs/j1/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		point, _ := json.Marshal(JobEvent{Seq: 0, Kind: EventPoint, Index: 0, Source: "cache", Point: &doc.Points[0]})
		done, _ := json.Marshal(JobEvent{Seq: 1, Kind: EventDone, State: StateDone, Digest: "not-the-right-digest"})
		fmt.Fprintf(w, "id: 0\nevent: point\ndata: %s\n\nid: 1\nevent: done\ndata: %s\n\n", point, done)
	})
	mux.HandleFunc("GET /v1/jobs/j1/result", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(DigestMismatchHeader) != "" {
			reported.Add(1)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(rendered)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var mismatches, logged atomic.Int64
	c, err := Dial(WithBaseURL(ts.URL), WithLogf(func(format string, args ...any) {
		logged.Add(1)
	}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.RunSweepStream(context.Background(), clientSpec(), func(ev JobEvent) {
		if ev.Kind == EventDigestMismatch {
			mismatches.Add(1)
			if ev.Error == "" {
				t.Error("digest-mismatch event carries no detail")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(RenderResultDoc(*got)) != string(rendered) {
		t.Error("mismatch fallback did not return the authoritative document")
	}
	if mismatches.Load() != 1 {
		t.Errorf("saw %d digest-mismatch events; want exactly 1", mismatches.Load())
	}
	if reported.Load() != 1 {
		t.Errorf("server saw %d mismatch-reported refetches; want 1", reported.Load())
	}
	if logged.Load() == 0 {
		t.Error("mismatch was not logged")
	}
}

// TestCacheRawRoundTrip: the peering endpoints round-trip an entry
// byte-identically under the correct stamp and reject foreign stamps
// and undecodable bodies.
func TestCacheRawRoundTrip(t *testing.T) {
	s := newTestServer(t, Options{Executors: 1, QueueCap: 4, CacheDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c, err := Dial(WithBaseURL(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	res := &sim.Result{}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := c.CacheGetRaw(ctx, "k1", false); err != nil || ok {
		t.Fatalf("get before put = ok %v, err %v; want a clean miss", ok, err)
	}
	if err := c.CachePutRaw(ctx, "k1", raw, CacheStamp()); err != nil {
		t.Fatal(err)
	}
	back, stamp, ok, err := c.CacheGetRaw(ctx, "k1", false)
	if err != nil || !ok {
		t.Fatalf("get after put = ok %v, err %v", ok, err)
	}
	if string(back) != string(raw) {
		t.Errorf("round-trip changed the entry bytes:\n put %s\n got %s", raw, back)
	}
	if stamp != CacheStamp() {
		t.Errorf("served stamp %q != %q", stamp, CacheStamp())
	}
	if err := c.CachePutRaw(ctx, "k2", raw, "some-other-binary v9"); err == nil {
		t.Error("foreign-stamp put accepted; want a 409 rejection")
	}
	if err := c.CachePutRaw(ctx, "k3", []byte("not json"), CacheStamp()); err == nil {
		t.Error("undecodable put accepted; want a 400 rejection")
	}
}

// TestExplicitPointExpansion: SpecFor and ExpandPoints invert each
// other — the explicit-point wire form a gateway ships re-expands to
// exactly the grid points it was built from.
func TestExplicitPointExpansion(t *testing.T) {
	parent := JobSpec{Workloads: "Stream,Kmeans", Scale: 0.05, GPMs: "1,2", BWs: "1x,2x"}
	pts, err := ExpandPoints(parent)
	if err != nil {
		t.Fatal(err)
	}
	sub := SpecFor(parent, pts)
	if len(sub.Points) != len(pts) {
		t.Fatalf("SpecFor kept %d of %d points", len(sub.Points), len(pts))
	}
	back, err := ExpandPoints(sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pts) {
		t.Fatalf("re-expansion produced %d of %d points", len(back), len(pts))
	}
	for i := range pts {
		if pts[i].Key() != back[i].Key() {
			t.Errorf("point %d: key %q re-expanded to %q", i, pts[i].Key(), back[i].Key())
		}
	}
}
