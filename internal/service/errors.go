package service

import (
	"errors"
	"fmt"
)

// The typed error taxonomy of the cluster path. Every cross-node
// failure mode a caller might branch on is a matchable value here —
// errors.Is on the sentinels, errors.Is/errors.As on ErrNotOwner —
// instead of an ad-hoc fmt.Errorf string. internal/cluster wraps these
// (never re-mints parallel strings), so retry policy written against
// the service package keeps working behind a gateway.
var (
	// ErrPeerUnavailable reports that a cluster peer could not be
	// reached (connection failure, timeout, or health-check backoff).
	// The fabric reroutes around it; callers that see this error
	// surfaced have exhausted the reroute chain.
	ErrPeerUnavailable = errors.New("cluster: peer unavailable")

	// ErrDigestMismatch reports that a streamed result reassembly did
	// not hash to the digest stamped in the terminal event. The
	// document fetched from /result remains authoritative; the
	// mismatch is logged and counted, never silently absorbed.
	ErrDigestMismatch = errors.New("service: result digest mismatch")
)

// ErrNotOwner reports that the receiving node does not own the
// submitted points under the cluster's hash ring; Owner is the base
// URL of the node that does. The HTTP surface maps it to a 307 with a
// Location header, which the v2 client follows automatically; callers
// that disabled redirect-following receive the typed value itself.
//
// Matchable both ways:
//
//	errors.Is(err, ErrNotOwner{})          // any owner
//	var eno ErrNotOwner; errors.As(err, &eno); eno.Owner
type ErrNotOwner struct {
	// Owner is the base URL of the owning node.
	Owner string
}

func (e ErrNotOwner) Error() string {
	return fmt.Sprintf("service: not the owning node (owner %s)", e.Owner)
}

// Is matches any ErrNotOwner regardless of owner, so
// errors.Is(err, ErrNotOwner{}) works as a class test.
func (e ErrNotOwner) Is(target error) bool {
	_, ok := target.(ErrNotOwner)
	return ok
}
