package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"gpujoule/internal/obs"
	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
)

// Event kinds in a job's event log.
const (
	// EventState marks a lifecycle transition (queued, running).
	EventState = "state"
	// EventPoint marks one point resolving; Index addresses the point
	// in expansion order and Source says how it resolved.
	EventPoint = "point"
	// EventDone is the terminal event: State is the final state and,
	// for done jobs, Digest is the sha256 of the result document — the
	// same bytes GET /v1/jobs/{id}/result serves, so a streaming
	// client can verify its reassembled view without a second fetch.
	EventDone = "done"
	// EventDigestMismatch is synthesized by the client (never stored in
	// a server-side log) when a streamed reassembly fails digest
	// verification and the client falls back to fetching /result. It
	// surfaces the mismatch to event consumers instead of hiding the
	// refetch; Error carries the expected/actual digests.
	EventDigestMismatch = "digest_mismatch"
)

// JobEvent is one entry in a job's append-only event log, replayed in
// order to every SSE subscriber (late subscribers receive the full
// history, so a stream observed from any point is lossless).
type JobEvent struct {
	Seq    int    `json:"seq"`
	Kind   string `json:"kind"`
	State  State  `json:"state,omitempty"`
	Index  int    `json:"index,omitempty"`
	Source string `json:"source,omitempty"`
	Digest string `json:"digest,omitempty"`
	Error  string `json:"error,omitempty"`
	// Node names the cluster node that resolved the point, on events
	// merged by a gateway (empty on single-node streams).
	Node string `json:"node,omitempty"`
	// Point carries the resolved point's data on streamed EventPoint
	// events. It is attached at stream-serialization time, not stored
	// in the log, so the log stays light while the SSE stream is
	// self-contained (a subscriber can reassemble the full result
	// document from the stream alone).
	Point *PointResult `json:"point,omitempty"`
}

// appendEventLocked appends to the job's event log and wakes every
// event waiter by closing-and-replacing the notify channel. Terminal
// events are stamped with the job's digest and error. Caller holds
// s.mu.
func (s *Server) appendEventLocked(j *Job, ev JobEvent) {
	ev.Seq = len(j.events)
	if ev.Kind == EventDone {
		ev.Digest = j.digest
		ev.Error = j.status.Error
	}
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
}

// Events returns the job's events from sequence number `from` onward
// plus a channel that is closed when the log grows — the wait
// primitive SSE handlers block on. The returned slice aliases the
// append-only log, which is never mutated in place, so callers may
// read it without the lock.
func (s *Server) Events(id string, from int) (evs []JobEvent, more <-chan struct{}, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, okj := s.jobs[id]
	if !okj {
		return nil, nil, false
	}
	if from < 0 {
		from = 0
	}
	if from > len(j.events) {
		from = len(j.events)
	}
	return j.events[from:], j.notify, true
}

// Partial returns a running (or terminal) job's points and the results
// resolved so far — nil slots for unresolved points — plus its status
// snapshot. The results slice is copied: the scheduler keeps writing
// the live one.
func (s *Server) Partial(id string) ([]runner.Point, []*sim.Result, JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, JobStatus{}, false
	}
	results := make([]*sim.Result, len(j.results))
	copy(results, j.results)
	return j.points, results, j.status, true
}

// PointResult snapshots one resolved point of a job for stream
// enrichment (ok is false for unknown jobs, out-of-range indices, or
// points not yet resolved). Exported for the cluster gateway, which
// enriches merged SSE streams served from an in-process node.
func (s *Server) PointResult(id string, idx int) (PointResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || idx < 0 || idx >= len(j.points) || j.results[idx] == nil {
		return PointResult{}, false
	}
	pt := j.points[idx]
	return PointResult{
		Workload: pt.App.Name,
		Config:   pt.Config.Name(),
		SimKey:   pt.Key(),
		Result:   j.results[idx],
	}, true
}

// MakeResultDoc assembles the deterministic result document for a
// point sequence: the single rendering path shared by the HTTP result
// handler, the server-side digest, client-side verification, and the
// cluster gateway's distributed reassembly, so "byte-identical" is
// enforced by construction rather than by parallel implementations.
func MakeResultDoc(pts []runner.Point, results []*sim.Result) ResultDoc {
	doc := ResultDoc{SchemaVersion: obs.SchemaVersion, Points: make([]PointResult, len(pts))}
	for i, pt := range pts {
		doc.Points[i] = PointResult{
			Workload: pt.App.Name,
			Config:   pt.Config.Name(),
			SimKey:   pt.Key(),
			Result:   results[i],
		}
	}
	return doc
}

// RenderResultDoc renders the document to the exact bytes the HTTP
// handler serves (indented JSON plus trailing newline — the encoding
// of writeJSON).
func RenderResultDoc(doc ResultDoc) []byte {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		// A ResultDoc is plain data; marshalling cannot fail.
		panic("service: rendering result document: " + err.Error())
	}
	return append(b, '\n')
}

// ResultDocDigest is the sha256 of the rendered result document,
// carried by the terminal SSE event.
func ResultDocDigest(doc ResultDoc) string {
	sum := sha256.Sum256(RenderResultDoc(doc))
	return hex.EncodeToString(sum[:])
}
