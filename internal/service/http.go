package service

import (
	"encoding/json"
	"fmt"
	"net/http"

	"gpujoule/internal/obs"
	"gpujoule/internal/sim"
)

// ResultDoc is the deterministic result document served by
// GET /v1/jobs/{id}/result. It contains no timestamps or
// server-specific state, so the same job spec against the same binary
// renders byte-identical documents — the property the persistent cache
// and the smoke test's byte-compare both rely on.
type ResultDoc struct {
	SchemaVersion int           `json:"schema_version"`
	Points        []PointResult `json:"points"`
}

// PointResult pairs one expanded grid point with its result.
type PointResult struct {
	// Workload and Config are human-readable labels; SimKey is the
	// point's canonical simulation identity (the runner memo key).
	Workload string      `json:"workload"`
	Config   string      `json:"config"`
	SimKey   string      `json:"sim_key"`
	Result   *sim.Result `json:"result"`
}

// Handler returns the daemon's full HTTP surface: the /v1 job API plus
// the shared introspection plane (pprof, /progress, /metrics with the
// service extensions).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	s.prof.Register(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	st, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, st)
	case err == ErrQueueFull:
		// Backpressure: the queue is bounded by design; clients retry
		// after the hinted delay instead of the daemon buffering
		// unboundedly.
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "%v", err)
	case err == ErrDraining:
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeErr(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Status(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	if !st.State.Terminal() {
		writeErr(w, http.StatusConflict, "job %s is %s; result not ready", id, st.State)
		return
	}
	pts, results, ok := s.Result(id)
	if !ok {
		writeErr(w, http.StatusConflict, "job %s %s: %s", id, st.State, st.Error)
		return
	}
	doc := ResultDoc{SchemaVersion: obs.SchemaVersion, Points: make([]PointResult, len(pts))}
	for i, pt := range pts {
		doc.Points[i] = PointResult{
			Workload: pt.App.Name,
			Config:   pt.Config.Name(),
			SimKey:   pt.Key(),
			Result:   results[i],
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"version":     s.opts.Version,
		"cache_stamp": CacheStamp(),
	})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, `gpujouled — resident multi-module GPU simulation service

  POST   /v1/jobs             submit a sweep job (JSON spec)
  GET    /v1/jobs             list jobs
  GET    /v1/jobs/{id}        job status
  GET    /v1/jobs/{id}/result result document (done jobs)
  DELETE /v1/jobs/{id}        cancel a job
  GET    /v1/version          build + schema versions
  GET    /progress            live batch progress
  GET    /metrics             Prometheus metrics
  GET    /debug/pprof/        Go profiling
`)
}
