package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"gpujoule/internal/sim"
)

// TenantHeader names the request header that selects the scheduling
// tenant for job submission (absent or empty → DefaultTenant).
const TenantHeader = "X-Tenant"

// ResultDoc is the deterministic result document served by
// GET /v1/jobs/{id}/result. It contains no timestamps or
// server-specific state, so the same job spec against the same binary
// renders byte-identical documents — regardless of how the scheduler
// interleaved the job's points with other tenants' work. The smoke
// test's byte-compare, the persistent cache, and the SSE digest all
// rely on this.
type ResultDoc struct {
	SchemaVersion int           `json:"schema_version"`
	Points        []PointResult `json:"points"`
}

// PointResult pairs one expanded grid point with its result. In a
// partial document (running job) Result is null for points that have
// not resolved yet.
type PointResult struct {
	// Workload and Config are human-readable labels; SimKey is the
	// point's canonical simulation identity (the runner memo key).
	Workload string      `json:"workload"`
	Config   string      `json:"config"`
	SimKey   string      `json:"sim_key"`
	Result   *sim.Result `json:"result"`
}

// Handler returns the daemon's full HTTP surface: the /v1 job API plus
// the shared introspection plane (pprof, /progress, /metrics with the
// service extensions).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	s.prof.Register(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	st, err := s.SubmitTenant(r.Header.Get(TenantHeader), spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, st)
	case err == ErrQueueFull:
		// Backpressure: the queue is bounded by design; clients retry
		// after the hinted delay instead of the daemon buffering
		// unboundedly. The hint is adaptive — estimated drain time of
		// the current point backlog at recently observed throughput.
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterSeconds()))
		writeErr(w, http.StatusTooManyRequests, "%v", err)
	case err == ErrDraining:
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeErr(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Status(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	if !st.State.Terminal() {
		// Partial retrieval: a running job serves its current view —
		// same document shape, null results for unresolved points —
		// when asked explicitly. Without ?partial the pre-streaming
		// contract holds: 409 until terminal.
		if r.URL.Query().Get("partial") != "" {
			pts, results, pst, okp := s.Partial(id)
			if !okp {
				writeErr(w, http.StatusNotFound, "no such job %q", id)
				return
			}
			w.Header().Set("X-Points-Done", strconv.Itoa(pst.PointsDone))
			w.Header().Set("X-Points-Total", strconv.Itoa(pst.Points))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(renderResultDoc(resultDoc(pts, results)))
			return
		}
		writeErr(w, http.StatusConflict, "job %s is %s; result not ready", id, st.State)
		return
	}
	pts, results, ok := s.Result(id)
	if !ok {
		writeErr(w, http.StatusConflict, "job %s %s: %s", id, st.State, st.Error)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(renderResultDoc(resultDoc(pts, results)))
}

// handleEvents streams a job's event log as server-sent events: the
// full history replays first (late subscribers lose nothing), then
// live events as points resolve, ending with the terminal "done"
// event whose data carries the result-document digest. Reconnecting
// clients resume with ?from=N or the standard Last-Event-ID header.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		from, _ = strconv.Atoi(v)
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			from = n + 1
		}
	}
	if _, _, ok := s.Events(id, 0); !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	for {
		evs, more, ok := s.Events(id, from)
		if !ok {
			return // job pruned from retention mid-stream
		}
		for _, ev := range evs {
			if ev.Kind == EventPoint {
				if pr, okp := s.pointResult(id, ev.Index); okp {
					ev.Point = &pr
				}
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
			from = ev.Seq + 1
			if ev.Kind == EventDone {
				flusher.Flush()
				return
			}
		}
		flusher.Flush()
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"version":     s.opts.Version,
		"cache_stamp": CacheStamp(),
	})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, `gpujouled — resident multi-module GPU simulation service

  POST   /v1/jobs             submit a sweep job (JSON spec; X-Tenant selects the tenant)
  GET    /v1/jobs             list jobs
  GET    /v1/jobs/{id}        job status
  GET    /v1/jobs/{id}/result result document (?partial=1 for running jobs)
  GET    /v1/jobs/{id}/events live SSE event stream (points, states, final digest)
  DELETE /v1/jobs/{id}        cancel a job
  GET    /v1/version          build + schema versions
  GET    /progress            live batch progress
  GET    /metrics             Prometheus metrics
  GET    /debug/pprof/        Go profiling
`)
}
