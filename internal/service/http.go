package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"gpujoule/internal/sim"
)

// TenantHeader names the request header that selects the scheduling
// tenant for job submission (absent or empty → DefaultTenant).
const TenantHeader = "X-Tenant"

// Cluster protocol headers.
const (
	// NoRedirectHeader, when present on a submit, suppresses the 307
	// ownership redirect: the receiving node runs the job itself even
	// if the ring says another node owns every point. The gateway sets
	// it on sub-jobs (they are already routed), and the v2 client sets
	// it when redirect-following is disabled.
	NoRedirectHeader = "X-GPUJoule-No-Redirect"
	// DigestMismatchHeader marks a /result fetch as the authoritative
	// refetch after a streamed reassembly failed digest verification.
	// The server counts it (gpujoule_stream_digest_mismatch_total).
	DigestMismatchHeader = "X-GPUJoule-Digest-Mismatch"
	// CacheStampHeader carries the node's CacheStamp on /v1/cache
	// responses and requests, so peers never exchange entries across
	// binary or schema versions.
	CacheStampHeader = "X-GPUJoule-Cache-Stamp"
)

// ResultDoc is the deterministic result document served by
// GET /v1/jobs/{id}/result. It contains no timestamps or
// server-specific state, so the same job spec against the same binary
// renders byte-identical documents — regardless of how the scheduler
// interleaved the job's points with other tenants' work. The smoke
// test's byte-compare, the persistent cache, and the SSE digest all
// rely on this.
type ResultDoc struct {
	SchemaVersion int           `json:"schema_version"`
	Points        []PointResult `json:"points"`
}

// PointResult pairs one expanded grid point with its result. In a
// partial document (running job) Result is null for points that have
// not resolved yet.
type PointResult struct {
	// Workload and Config are human-readable labels; SimKey is the
	// point's canonical simulation identity (the runner memo key).
	Workload string      `json:"workload"`
	Config   string      `json:"config"`
	SimKey   string      `json:"sim_key"`
	Result   *sim.Result `json:"result"`
}

// Handler returns the daemon's full HTTP surface: the /v1 job API plus
// the shared introspection plane (pprof, /progress, /metrics with the
// service extensions).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/cache", s.handleCacheGet)
	mux.HandleFunc("PUT /v1/cache", s.handleCachePut)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	s.prof.Register(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	if owner, redirect := s.redirectOwner(r, spec); redirect {
		// Every point of this job is owned by one healthy remote node:
		// answer with a 307 so the client resubmits there and the work
		// runs cache-local. 307 preserves method and body, and the v2
		// client follows it transparently (or surfaces ErrNotOwner when
		// redirect-following is disabled).
		w.Header().Set("Location", owner+"/v1/jobs")
		writeJSON(w, http.StatusTemporaryRedirect, map[string]string{
			"error": ErrNotOwner{Owner: owner}.Error(),
			"owner": owner,
		})
		return
	}
	st, err := s.SubmitTenant(r.Header.Get(TenantHeader), spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, st)
	case err == ErrQueueFull:
		// Backpressure: the queue is bounded by design; clients retry
		// after the hinted delay instead of the daemon buffering
		// unboundedly. The hint is adaptive — estimated drain time of
		// the current point backlog at recently observed throughput.
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterSeconds()))
		writeErr(w, http.StatusTooManyRequests, "%v", err)
	case err == ErrDraining:
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeErr(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// redirectOwner decides whether a submit should be answered with a 307
// to the owning node: a fabric is wired in, the client did not opt
// out, the spec expands cleanly, and every point routes to the same
// non-local owner. Mixed-owner sweeps run here (the gateway is the
// component that splits those).
func (s *Server) redirectOwner(r *http.Request, spec JobSpec) (string, bool) {
	cl := s.opts.Cluster
	if cl == nil || cl.RouteOwner == nil || r.Header.Get(NoRedirectHeader) != "" {
		return "", false
	}
	if err := spec.Validate(); err != nil {
		return "", false // let SubmitTenant mint the real error
	}
	pts, err := ExpandPoints(spec)
	if err != nil || len(pts) == 0 {
		return "", false
	}
	owner := cl.RouteOwner(pts[0].Key())
	if owner == "" {
		return "", false
	}
	for _, pt := range pts[1:] {
		if cl.RouteOwner(pt.Key()) != owner {
			return "", false
		}
	}
	return owner, true
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.Header.Get(DigestMismatchHeader) != "" {
		s.digestMismatches.Add(1)
		s.logf("service: client reported stream digest mismatch for job %s: %s", id, r.Header.Get(DigestMismatchHeader))
	}
	st, ok := s.Status(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	if !st.State.Terminal() {
		// Partial retrieval: a running job serves its current view —
		// same document shape, null results for unresolved points —
		// when asked explicitly. Without ?partial the pre-streaming
		// contract holds: 409 until terminal.
		if r.URL.Query().Get("partial") != "" {
			pts, results, pst, okp := s.Partial(id)
			if !okp {
				writeErr(w, http.StatusNotFound, "no such job %q", id)
				return
			}
			w.Header().Set("X-Points-Done", strconv.Itoa(pst.PointsDone))
			w.Header().Set("X-Points-Total", strconv.Itoa(pst.Points))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(RenderResultDoc(MakeResultDoc(pts, results)))
			return
		}
		writeErr(w, http.StatusConflict, "job %s is %s; result not ready", id, st.State)
		return
	}
	pts, results, ok := s.Result(id)
	if !ok {
		writeErr(w, http.StatusConflict, "job %s %s: %s", id, st.State, st.Error)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(RenderResultDoc(MakeResultDoc(pts, results)))
}

// handleCacheGet serves one raw result-cache entry to a peer:
// GET /v1/cache?key=<cacheKey>[&wait=1]. With wait=1 a request for a
// key currently being computed here blocks until the flight settles —
// the cluster-wide singleflight join — then retries the cache once.
// Responses carry the node's CacheStamp so the peer can reject
// cross-version entries.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeErr(w, http.StatusBadRequest, "missing key")
		return
	}
	w.Header().Set(CacheStampHeader, CacheStamp())
	if s.cache == nil {
		writeErr(w, http.StatusNotFound, "no result cache on this node")
		return
	}
	raw, ok := s.cache.GetRaw(key)
	if !ok && r.URL.Query().Get("wait") != "" {
		if done, inFlight := s.flightDone(key); inFlight {
			select {
			case <-done:
				raw, ok = s.cache.GetRaw(key)
			case <-r.Context().Done():
				return
			}
		}
	}
	if !ok {
		writeErr(w, http.StatusNotFound, "no cached result for key")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

// handleCachePut accepts one replicated result-cache entry from a
// peer: PUT /v1/cache?key=<cacheKey> with the raw result JSON as the
// body and the producer's CacheStamp in the header. Entries from a
// different stamp are rejected with 409 (they would be unreachable
// garbage), and bodies that do not decode as a sim.Result with 400.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeErr(w, http.StatusBadRequest, "missing key")
		return
	}
	if s.cache == nil {
		writeErr(w, http.StatusNotImplemented, "no result cache on this node")
		return
	}
	if stamp := r.Header.Get(CacheStampHeader); stamp != CacheStamp() {
		writeErr(w, http.StatusConflict, "cache stamp %q does not match this node's %q", stamp, CacheStamp())
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCacheEntryBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading entry: %v", err)
		return
	}
	var res sim.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		writeErr(w, http.StatusBadRequest, "entry is not a result: %v", err)
		return
	}
	if err := s.cache.PutRaw(key, raw); err != nil {
		writeErr(w, http.StatusInternalServerError, "storing entry: %v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// maxCacheEntryBytes bounds a replicated cache entry (counters-laden
// results are ~1 MiB; 64 MiB is far beyond any legitimate entry).
const maxCacheEntryBytes = 64 << 20

// flightDone returns the done channel of the in-flight resolution of
// cacheKey, if one exists right now.
func (s *Server) flightDone(key string) (<-chan struct{}, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fl := s.flights[key]
	if fl == nil {
		return nil, false
	}
	return fl.done, true
}

// handleEvents streams a job's event log as server-sent events: the
// full history replays first (late subscribers lose nothing), then
// live events as points resolve, ending with the terminal "done"
// event whose data carries the result-document digest. Reconnecting
// clients resume with ?from=N or the standard Last-Event-ID header.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		from, _ = strconv.Atoi(v)
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			from = n + 1
		}
	}
	if _, _, ok := s.Events(id, 0); !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	for {
		evs, more, ok := s.Events(id, from)
		if !ok {
			return // job pruned from retention mid-stream
		}
		for _, ev := range evs {
			if ev.Kind == EventPoint {
				if pr, okp := s.PointResult(id, ev.Index); okp {
					ev.Point = &pr
				}
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
			from = ev.Seq + 1
			if ev.Kind == EventDone {
				flusher.Flush()
				return
			}
		}
		flusher.Flush()
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"version":     s.opts.Version,
		"cache_stamp": CacheStamp(),
	})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, `gpujouled — resident multi-module GPU simulation service

  POST   /v1/jobs             submit a sweep job (JSON spec; X-Tenant selects the tenant)
  GET    /v1/jobs             list jobs
  GET    /v1/jobs/{id}        job status
  GET    /v1/jobs/{id}/result result document (?partial=1 for running jobs)
  GET    /v1/jobs/{id}/events live SSE event stream (points, states, final digest)
  DELETE /v1/jobs/{id}        cancel a job
  GET    /v1/cache            raw result-cache entry by key (?wait=1 joins an in-flight compute)
  PUT    /v1/cache            replicate a result-cache entry (peer use)
  GET    /v1/version          build + schema versions
  GET    /progress            live batch progress
  GET    /metrics             Prometheus metrics
  GET    /debug/pprof/        Go profiling
`)
}
