package service

// The point-granular scheduler. Jobs are decomposed into their grid
// points at admission; the dispatcher hands points — never whole jobs
// — to the executor pool, picking the next point by
//
//  1. priority: among runnable jobs, the highest Spec.Priority wins.
//     A higher-priority arrival therefore preempts lower-priority
//     jobs at the next point boundary: in-flight points finish (a
//     point is the unit of work, never abandoned mid-simulation), and
//     every subsequent dispatch serves the newcomer first. Nothing is
//     lost — completed points are already published to the result
//     cache and recorded in the preempted job, which resumes exactly
//     where it stopped once the higher-priority work drains.
//  2. weighted-fair queuing across tenants within the winning
//     priority: each tenant carries a virtual time that advances by
//     1/weight per dispatched point; the backlogged tenant with the
//     smallest virtual time goes next. Over any sustained interval,
//     tenant throughput converges to the weight ratio, and a weight-1
//     tenant's virtual time is eventually undercut by every heavier
//     tenant's advance — no tenant starves within its priority class.
//  3. FIFO within a tenant: equal-priority jobs of one tenant run in
//     admission order, and each job's points dispatch in expansion
//     order (which maximizes the chance that a re-submitted prefix is
//     already cached).
//
// Coalescing is scheduler-native: when the next point's key is
// already in flight (owned by any job, any tenant), the dispatcher
// registers the point as a waiter on that flight instead of consuming
// an executor slot — joining costs nothing, so it bypasses both the
// slot pool and the tenant's in-flight quota.
//
// Reassembly is deterministic by construction: every point carries
// its index in the job's expansion order, results land in
// results[idx], and the result document is rendered from that slice —
// so the document is byte-identical to local execution regardless of
// how scheduling interleaved the points.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
)

// DefaultTenant is the tenant requests are accounted to when they
// carry no X-Tenant header (or an empty -tenant flag).
const DefaultTenant = "default"

// TenantConfig configures one tenant's share of the point scheduler.
type TenantConfig struct {
	// Weight is the tenant's weighted-fair share (minimum and default
	// 1): a weight-3 tenant receives 3 dispatched points for every 1 a
	// weight-1 tenant receives while both are backlogged.
	Weight int
	// MaxInflight caps the tenant's concurrently executing points
	// (0 = no per-tenant cap; the executor pool still bounds the
	// total). Coalesced joins are free and not counted.
	MaxInflight int
}

// tenantState is one tenant's live scheduling state. Guarded by the
// server's registry lock.
type tenantState struct {
	name   string
	weight int
	quota  int

	// vtime is the tenant's weighted-fair virtual finish time: it
	// advances by 1/weight per dispatched point, and is clamped up to
	// the scheduler's virtual clock when the tenant re-enters the
	// backlog so an idle tenant cannot bank credit.
	vtime float64

	inflight int    // owned in-flight points (quota accounting)
	jobs     []*Job // non-terminal jobs in admission order

	dispatched uint64 // lifetime dispatched points (owned + coalesced)
	coalesced  uint64 // lifetime coalesced joins
}

// queuedPoints is the tenant's backlog: points admitted but not yet
// dispatched.
func (t *tenantState) queuedPoints() int {
	n := 0
	for _, j := range t.jobs {
		n += len(j.pending)
	}
	return n
}

func (t *tenantState) removeJob(j *Job) {
	for i, jj := range t.jobs {
		if jj == j {
			t.jobs = append(t.jobs[:i], t.jobs[i+1:]...)
			return
		}
	}
}

// flight is one in-flight point resolution, keyed by the point's full
// cache identity. The owning job's executor resolves it; waiters are
// (job, point-index) claims recorded by the dispatcher that are
// settled when the flight completes.
type flight struct {
	waiters []pointClaim
	// done is closed when the flight settles (result cached or failed).
	// The /v1/cache?wait=1 handler blocks on it so a peer asking for an
	// in-flight key joins the cluster-wide singleflight instead of
	// triggering a duplicate computation on its own node.
	done chan struct{}
}

// pointClaim addresses one point slot of one job.
type pointClaim struct {
	j   *Job
	idx int
}

// pointTask is one owned point execution handed to an executor.
type pointTask struct {
	j   *Job
	idx int
	pt  runner.Point
	key string
}

// maxPointAttempts bounds re-dispatches of a single point. A point is
// only re-queued when the foreign flight it had joined was cancelled
// by its owner while this job is still live, so attempts are consumed
// by distinct foreign cancellations — runaway looping indicates a
// bug, not load.
const maxPointAttempts = 8

// Point sources, recorded per resolved point and reported in job
// events and counters.
const (
	srcSimulated = "simulated"
	srcCache     = "cache"
	srcCoalesced = "coalesced"
	srcPeer      = "peer"
)

// tenantLocked returns (creating on first use) the tenant's state.
// Caller holds s.mu.
func (s *Server) tenantLocked(name string) *tenantState {
	if name == "" {
		name = DefaultTenant
	}
	t := s.tenants[name]
	if t == nil {
		cfg := s.opts.Tenants[name]
		if cfg.Weight <= 0 {
			cfg.Weight = 1
		}
		t = &tenantState{name: name, weight: cfg.Weight, quota: cfg.MaxInflight}
		s.tenants[name] = t
	}
	return t
}

// dispatcher is the scheduling loop: one goroutine that owns all
// dispatch decisions. It runs until the server is draining and every
// admitted job has reached a terminal state, then closes the executor
// channel.
func (s *Server) dispatcher() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		if s.dispatchSomeLocked() {
			continue
		}
		if s.draining && s.allTerminalLocked() {
			break
		}
		s.cond.Wait()
	}
	s.mu.Unlock()
	close(s.execCh)
}

func (s *Server) allTerminalLocked() bool {
	for _, j := range s.jobs {
		if !j.status.State.Terminal() {
			return false
		}
	}
	return true
}

// dispatchSomeLocked reaps dead jobs and dispatches points until no
// candidate remains, reporting whether it made any progress.
func (s *Server) dispatchSomeLocked() bool {
	progress := s.reapLocked()
	for {
		j := s.pickLocked()
		if j == nil {
			return progress
		}
		s.dispatchHeadLocked(j)
		progress = true
	}
}

// reapLocked finalizes jobs whose context died while they still had
// undispatched work and own no in-flight points (jobs cancelled while
// queued by Close, or expired deadlines with no point to carry the
// error back). Jobs with owned in-flight points are finalized by
// their completion path instead.
func (s *Server) reapLocked() bool {
	progress := false
	for _, j := range s.jobs {
		if j.status.State.Terminal() || j.owned > 0 {
			continue
		}
		if err := j.liveCtx().Err(); err != nil {
			s.finalizeLocked(j, err)
			progress = true
		}
	}
	return progress
}

// runnableHeadLocked reports whether job j's head point can be
// dispatched right now, and whether doing so would coalesce onto an
// existing flight (which needs no executor slot and no quota).
func (s *Server) runnableHeadLocked(j *Job) (ok, coalesce bool) {
	if j.status.State.Terminal() || len(j.pending) == 0 || j.liveCtx().Err() != nil {
		return false, false
	}
	key := s.cacheKey(j.points[j.pending[0]])
	if _, inFlight := s.flights[key]; inFlight {
		return true, true
	}
	t := j.tenant
	if s.execFree <= 0 || (t.quota > 0 && t.inflight >= t.quota) {
		return false, false
	}
	return true, false
}

// pickLocked selects the next job to dispatch a point from:
// max priority first, then min tenant virtual time, then tenant name,
// then tenant admission order (t.jobs is FIFO and scanned in order).
func (s *Server) pickLocked() *Job {
	var best *Job
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := s.tenants[name]
		// The tenant's candidate: its highest-priority runnable job,
		// ties broken by admission order (t.jobs is FIFO).
		var cand *Job
		for _, j := range t.jobs {
			ok, _ := s.runnableHeadLocked(j)
			if !ok {
				continue
			}
			if cand == nil || j.status.Spec.Priority > cand.status.Spec.Priority {
				cand = j
			}
		}
		if cand == nil {
			continue
		}
		if best == nil ||
			cand.status.Spec.Priority > best.status.Spec.Priority ||
			(cand.status.Spec.Priority == best.status.Spec.Priority && t.vtime < best.tenant.vtime) {
			best = cand
		}
	}
	return best
}

// dispatchHeadLocked dispatches job j's head point: either as a
// waiter on the flight already resolving its key (coalescing — free),
// or as an owned execution consuming an executor slot and tenant
// quota. Caller established runnability via pickLocked.
func (s *Server) dispatchHeadLocked(j *Job) {
	t := j.tenant
	idx := j.pending[0]
	j.pending = j.pending[1:]
	pt := j.points[idx]
	key := s.cacheKey(pt)
	s.markRunningLocked(j)
	t.dispatched++

	if fl := s.flights[key]; fl != nil {
		fl.waiters = append(fl.waiters, pointClaim{j, idx})
		j.joined++
		j.status.Coalesced++
		s.coalesced++
		t.coalesced++
		return
	}

	s.flights[key] = &flight{done: make(chan struct{})}
	j.owned++
	t.inflight++
	t.vtime = math.Max(t.vtime, s.vclock) + 1/float64(t.weight)
	s.vclock = t.vtime - 1/float64(t.weight)
	s.execFree--
	// Never blocks: cap(execCh) == Executors and at most Executors
	// tasks are outstanding (execFree accounting).
	s.execCh <- pointTask{j: j, idx: idx, pt: pt, key: key}
}

// markRunningLocked transitions a queued job to running on its first
// dispatched point: the per-job deadline (if any) starts here, and a
// context watchdog wakes the dispatcher when the job dies so pending
// points are reaped promptly.
func (s *Server) markRunningLocked(j *Job) {
	if j.status.State != StateQueued {
		return
	}
	j.status.State = StateRunning
	j.status.Started = time.Now()
	if t := j.status.Spec.TimeoutSeconds; t > 0 {
		j.runCtx, j.runCancel = context.WithTimeout(j.ctx, time.Duration(t*float64(time.Second)))
	} else {
		j.runCtx, j.runCancel = context.WithCancel(j.ctx)
	}
	context.AfterFunc(j.runCtx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	s.appendEventLocked(j, JobEvent{Kind: EventState, State: StateRunning})
}

// executor is one worker of the point-execution pool: it resolves
// owned points (disk cache first, then the shared engine) and settles
// their flights.
func (s *Server) executor() {
	defer s.wg.Done()
	for task := range s.execCh {
		res, src, err := s.executePoint(task)
		s.completeFlight(task, res, src, err)
	}
}

// executePoint resolves one owned point: the disk cache first, then
// the cluster's peer caches (when a fabric is wired in), then one
// single-point engine batch, publishing fresh results back to the
// cache and replicating them toward the key's ring owner.
func (s *Server) executePoint(task pointTask) (*sim.Result, string, error) {
	if s.cache != nil {
		if res, ok := s.cache.Get(task.key); ok {
			return res, srcCache, nil
		}
	}
	s.mu.Lock()
	ctx := task.j.liveCtx()
	s.mu.Unlock()
	if cl := s.opts.Cluster; cl != nil && cl.PeerGet != nil {
		if res, ok := cl.PeerGet(ctx, task.pt.Key(), task.key); ok {
			if s.cache != nil {
				if perr := s.cache.Put(task.key, res); perr != nil {
					s.logf("service: caching peer result %s: %v", task.pt, perr)
				}
			}
			return res, srcPeer, nil
		}
	}
	s.mu.Lock()
	task.j.status.Submitted++
	s.mu.Unlock()
	rs, err := s.runBatch(ctx, []runner.Point{task.pt})
	var res *sim.Result
	if len(rs) > 0 {
		res = rs[0]
	}
	if err == nil && res == nil {
		err = fmt.Errorf("service: %s: no result", task.pt)
	}
	if err != nil {
		return nil, srcSimulated, err
	}
	if s.cache != nil {
		if perr := s.cache.Put(task.key, res); perr != nil {
			s.logf("service: caching %s: %v", task.pt, perr)
		}
	}
	if cl := s.opts.Cluster; cl != nil && cl.Replicate != nil {
		cl.Replicate(task.pt.Key(), task.key, res)
	}
	return res, srcSimulated, nil
}

// completeFlight settles an owned point execution: the flight is
// retired, the result (or error) is applied to the owner and every
// coalesced waiter, and the executor slot and tenant quota are
// released.
func (s *Server) completeFlight(task pointTask, res *sim.Result, src string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fl := s.flights[task.key]
	delete(s.flights, task.key)
	if fl != nil {
		close(fl.done)
	}
	task.j.owned--
	task.j.tenant.inflight--
	s.execFree++
	s.recordPointLocked(task.j, task.idx, res, src, err, true)
	if fl != nil {
		for _, w := range fl.waiters {
			w.j.joined--
			s.recordPointLocked(w.j, w.idx, res, srcCoalesced, err, false)
		}
	}
	s.cond.Broadcast()
}

// recordPointLocked applies one point outcome to one job. For owners
// any error is terminal for the job (the point ran under the job's
// own context, so a cancellation is the job's own). For waiters a
// foreign cancellation re-queues the point — the waiting job is still
// live and must not inherit its neighbour's cancellation — while real
// simulation errors propagate.
func (s *Server) recordPointLocked(j *Job, idx int, res *sim.Result, src string, err error, owner bool) {
	if j.status.State.Terminal() {
		return // late arrival after the job was cancelled or failed
	}
	if err == nil {
		if j.results[idx] == nil {
			j.resolved++
			j.status.PointsDone = j.resolved
		}
		j.results[idx] = res
		if src == srcCache {
			j.status.CacheHits++
		}
		if src == srcPeer {
			j.status.PeerHits++
			s.peerHits++
		}
		s.appendEventLocked(j, JobEvent{Kind: EventPoint, Index: idx, Source: src})
		if j.resolved == len(j.points) {
			s.finalizeLocked(j, nil)
		}
		return
	}
	cancelled := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	if owner || !cancelled {
		s.finalizeLocked(j, err)
		return
	}
	// A foreign flight died under its owner's cancellation. If this
	// job is still live, reclaim the point; it will re-dispatch (and
	// likely own its own flight) on the next scheduling pass.
	if cerr := j.liveCtx().Err(); cerr != nil {
		s.finalizeLocked(j, cerr)
		return
	}
	j.attempts[idx]++
	if j.attempts[idx] >= maxPointAttempts {
		s.finalizeLocked(j, fmt.Errorf("service: point %s re-dispatched %d times without converging", j.points[idx], maxPointAttempts))
		return
	}
	j.pending = append(j.pending, idx)
}

// throughputEstimator tracks recent per-point simulation cost (an
// EWMA over the engine's PointDone events) to turn queue depth into a
// time estimate for the 429 Retry-After hint.
type throughputEstimator struct {
	mu       sync.Mutex
	perPoint float64 // EWMA seconds per simulated point
	samples  uint64
}

// estimatorAlpha is the EWMA smoothing factor: ~the last 10 points
// dominate the estimate.
const estimatorAlpha = 0.2

func (e *throughputEstimator) observe(d time.Duration) {
	if d <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	sec := d.Seconds()
	if e.samples == 0 {
		e.perPoint = sec
	} else {
		e.perPoint += estimatorAlpha * (sec - e.perPoint)
	}
	e.samples++
}

// estimate converts a backlog of queued points into a whole-seconds
// retry hint: backlog × recent per-point cost ÷ worker parallelism,
// clamped to [1, 600]. With no history yet it answers 1 — the
// pre-scheduler static hint.
func (e *throughputEstimator) estimate(queuedPoints, workers int) int {
	e.mu.Lock()
	perPoint := e.perPoint
	n := e.samples
	e.mu.Unlock()
	if n == 0 || queuedPoints <= 0 {
		return 1
	}
	if workers < 1 {
		workers = 1
	}
	sec := math.Ceil(float64(queuedPoints) * perPoint / float64(workers))
	if sec < 1 {
		return 1
	}
	if sec > 600 {
		return 600
	}
	return int(sec)
}

// RetryAfterSeconds is the adaptive backpressure hint served with 429
// responses: the estimated time for the current point backlog to
// drain at the recently observed simulation throughput.
func (s *Server) RetryAfterSeconds() int {
	s.mu.Lock()
	queued := 0
	for _, j := range s.jobs {
		if !j.status.State.Terminal() {
			queued += len(j.pending) + j.owned
		}
	}
	s.mu.Unlock()
	return s.est.estimate(queued, s.eng.Workers())
}

// Preemptions reports the lifetime count of preemption events: a
// higher-priority arrival displacing an already-running job's pending
// points.
func (s *Server) Preemptions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.preemptions
}
