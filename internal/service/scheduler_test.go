package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
)

// orderGate installs a runBatch stub that records the workload name of
// every point handed to the engine — with Executors=1 that sequence IS
// the dispatch order — and blocks each execution until fed a token, so
// tests control exactly how far the scheduler advances.
func orderGate(s *Server) (feed func(n int), order func() []string) {
	var mu sync.Mutex
	var names []string
	tokens := make(chan struct{}, 4096)
	real := s.runBatch
	s.runBatch = func(ctx context.Context, pts []runner.Point) ([]*sim.Result, error) {
		mu.Lock()
		names = append(names, pts[0].App.Name)
		mu.Unlock()
		select {
		case <-tokens:
			return real(ctx, pts)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return func(n int) {
			for i := 0; i < n; i++ {
				tokens <- struct{}{}
			}
		}, func() []string {
			mu.Lock()
			defer mu.Unlock()
			return append([]string(nil), names...)
		}
}

// waitCounters polls until the predicate holds on the job's status.
func waitCounters(t *testing.T, s *Server, id string, pred func(JobStatus) bool) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if pred(st) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never satisfied the wait predicate", id)
	return JobStatus{}
}

// TestWeightedFairShares runs a weight-3 and a weight-1 tenant against
// a single executor with both backlogs full: dispatched points must
// converge to the 3:1 weight ratio.
func TestWeightedFairShares(t *testing.T) {
	s := newTestServer(t, Options{Executors: 1, QueueCap: 8, Tenants: map[string]TenantConfig{
		"heavy": {Weight: 3},
		"light": {Weight: 1},
	}})
	feed, order := orderGate(s)

	heavy := JobSpec{Workloads: "Stream", Scale: 0.05, GPMs: "1,2,4,8,16,32", BWs: "1x"}
	light := heavy
	light.Workloads = "Kmeans"

	sh, err := s.SubmitTenant("heavy", heavy)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, sh.ID, StateRunning) // first point claimed, gate holds it
	sl, err := s.SubmitTenant("light", light)
	if err != nil {
		t.Fatal(err)
	}
	feed(100)
	for _, id := range []string{sh.ID, sl.ID} {
		if fin, err := s.Wait(context.Background(), id); err != nil || fin.State != StateDone {
			t.Fatalf("job %s: %+v, err %v", id, fin, err)
		}
	}

	got := order()
	if len(got) != 12 {
		t.Fatalf("dispatched %d points, want 12: %v", len(got), got)
	}
	// While both tenants are backlogged (the first 8 dispatches — after
	// that the heavy job runs dry), the share must match the weights:
	// 6 heavy vs 2 light, ±1 for the pre-backlog head start.
	heavyCount := 0
	firstLight := -1
	for i, name := range got[:8] {
		if name == "Stream" {
			heavyCount++
		} else if firstLight < 0 {
			firstLight = i
		}
	}
	if heavyCount < 5 || heavyCount > 7 {
		t.Errorf("heavy tenant got %d of the first 8 dispatches, want ~6 (3:1 share): %v", heavyCount, got)
	}
	if firstLight < 0 || firstLight > 3 {
		t.Errorf("light tenant first served at dispatch %d, want within the first 4: %v", firstLight, got)
	}
}

// TestStarvationFreedom pits a weight-8 tenant with a deep backlog
// against a weight-1 tenant: the light tenant must still be served at
// weight-proportional intervals, never starved.
func TestStarvationFreedom(t *testing.T) {
	s := newTestServer(t, Options{Executors: 1, QueueCap: 8, Tenants: map[string]TenantConfig{
		"heavy": {Weight: 8},
		"light": {Weight: 1},
	}})
	feed, order := orderGate(s)

	heavy := JobSpec{Workloads: "Stream,MiniAMR", Scale: 0.05, GPMs: "1,2,4,8,16,32", BWs: "1x"} // 12 points
	light := JobSpec{Workloads: "Kmeans", Scale: 0.05, GPMs: "1,2,4,8,16,32", BWs: "1x"}         // 6 points

	sh, err := s.SubmitTenant("heavy", heavy)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, sh.ID, StateRunning)
	sl, err := s.SubmitTenant("light", light)
	if err != nil {
		t.Fatal(err)
	}
	feed(100)
	for _, id := range []string{sh.ID, sl.ID} {
		if fin, err := s.Wait(context.Background(), id); err != nil || fin.State != StateDone {
			t.Fatalf("job %s: %+v, err %v", id, fin, err)
		}
	}

	got := order()
	if len(got) != 18 {
		t.Fatalf("dispatched %d points, want 18: %v", len(got), got)
	}
	var lightIdx []int
	for i, name := range got {
		if name == "Kmeans" {
			lightIdx = append(lightIdx, i)
		}
	}
	if len(lightIdx) != 6 {
		t.Fatalf("light tenant dispatched %d points, want 6: %v", len(lightIdx), got)
	}
	// Starvation-freedom: the weight-1 tenant is served within the
	// heavy tenant's weight-window — once per ~8 heavy dispatches —
	// not pushed behind the whole heavy backlog.
	if lightIdx[0] > 2 {
		t.Errorf("light tenant first served at dispatch %d, want within the first 3: %v", lightIdx[0], got)
	}
	if lightIdx[1] > 12 {
		t.Errorf("light tenant second served at dispatch %d, want within ~one weight window: %v", lightIdx[1], got)
	}
}

// TestPreemptionLosslessAtPointBoundary checks the tentpole preemption
// property: a higher-priority arrival takes over at the next point
// boundary, the in-flight point finishes, nothing completed is lost —
// a re-submission of the preempted spec is answered purely from cache.
func TestPreemptionLosslessAtPointBoundary(t *testing.T) {
	s := newTestServer(t, Options{CacheDir: t.TempDir(), Executors: 1, QueueCap: 8})
	feed, order := orderGate(s)

	low := JobSpec{Workloads: "Stream", Scale: 0.05, GPMs: "1,2,4", BWs: "1x"}             // 3 points
	high := JobSpec{Workloads: "Kmeans", Scale: 0.05, GPMs: "1,2", BWs: "1x", Priority: 5} // 2 points

	stLow, err := s.Submit(low)
	if err != nil {
		t.Fatal(err)
	}
	feed(1) // let the first point complete
	// Point 0 done, point 1 claimed and held at the gate: the job sits
	// exactly on a point boundary with one point still pending.
	waitCounters(t, s, stLow.ID, func(st JobStatus) bool {
		return st.PointsDone == 1 && st.Submitted == 2
	})

	stHigh, err := s.Submit(high)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Status(stLow.ID); st.Preemptions != 1 {
		t.Errorf("low-priority job preemption count = %d, want 1", st.Preemptions)
	}

	feed(100)
	finHigh, err := s.Wait(context.Background(), stHigh.ID)
	if err != nil || finHigh.State != StateDone {
		t.Fatalf("high-priority job: %+v, err %v", finHigh, err)
	}
	finLow, err := s.Wait(context.Background(), stLow.ID)
	if err != nil || finLow.State != StateDone {
		t.Fatalf("low-priority job: %+v, err %v", finLow, err)
	}

	// The dispatch order proves preemption at the point boundary: the
	// in-flight low point finished, then both high points jumped the
	// remaining low point.
	want := []string{"Stream", "Stream", "Kmeans", "Kmeans", "Stream"}
	got := order()
	if len(got) != len(want) {
		t.Fatalf("dispatch order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
	if got := s.Preemptions(); got != 1 {
		t.Errorf("service preemption counter = %d, want 1", got)
	}
	// Zero lost work: every point simulated exactly once despite the
	// preemption...
	if got := s.Engine().Stats().Simulated; got != 5 {
		t.Errorf("engine simulated %d points, want 5", got)
	}
	// ...and the preempted spec resumes entirely from cache.
	st2, err := s.Submit(low)
	if err != nil {
		t.Fatal(err)
	}
	fin2, err := s.Wait(context.Background(), st2.ID)
	if err != nil || fin2.State != StateDone {
		t.Fatalf("resumed job: %+v, err %v", fin2, err)
	}
	if fin2.CacheHits != 3 || fin2.Submitted != 0 {
		t.Errorf("resumed job counters = %+v, want 3 cache hits and 0 submitted", fin2)
	}
}

// TestStreamedMatchesPolled runs one sweep through the SSE streaming
// client and asserts the reassembled document is byte-identical to the
// polled /result body, that the terminal event's digest matches those
// bytes, and that a late subscriber replays the identical event log.
func TestStreamedMatchesPolled(t *testing.T) {
	s := newTestServer(t, Options{CacheDir: t.TempDir(), Executors: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	var evs []JobEvent
	doc, err := c.RunSweepStream(ctx, tinySpec(), func(ev JobEvent) { evs = append(evs, ev) })
	if err != nil {
		t.Fatal(err)
	}

	jobs := s.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("jobs = %+v", jobs)
	}
	id := jobs[0].ID
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	polled, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("polled result: status %d, err %v", resp.StatusCode, err)
	}

	if streamed := RenderResultDoc(*doc); !bytes.Equal(streamed, polled) {
		t.Errorf("streamed document differs from polled:\nstreamed: %s\npolled: %s", streamed, polled)
	}

	// The event log has the full story: queued, running, one point
	// event per point (carrying its result), then done with the digest
	// of the polled bytes.
	if len(evs) < 4 || evs[0].Kind != EventState || evs[0].State != StateQueued {
		t.Fatalf("event log starts %+v", evs)
	}
	last := evs[len(evs)-1]
	if last.Kind != EventDone || last.State != StateDone {
		t.Fatalf("terminal event = %+v", last)
	}
	sum := sha256.Sum256(polled)
	if last.Digest != hex.EncodeToString(sum[:]) {
		t.Errorf("terminal digest %q does not match polled result bytes", last.Digest)
	}
	points := 0
	for _, ev := range evs {
		if ev.Kind == EventPoint {
			points++
			if ev.Point == nil || ev.Point.Result == nil {
				t.Errorf("point event without payload: %+v", ev)
			}
		}
	}
	if points != jobs[0].Points {
		t.Errorf("streamed %d point events, want %d", points, jobs[0].Points)
	}

	// A late subscriber replays the same log from the start.
	replayed := 0
	fin, err := c.Stream(ctx, id, 0, func(JobEvent) error { replayed++; return nil })
	if err != nil || fin.Kind != EventDone {
		t.Fatalf("replay: fin %+v, err %v", fin, err)
	}
	if replayed != len(evs) {
		t.Errorf("late subscriber replayed %d events, live stream saw %d", replayed, len(evs))
	}
}

// TestPartialResults fetches a running job's partial document: same
// shape as the final document, null results for unresolved points,
// while the plain result endpoint still answers 409.
func TestPartialResults(t *testing.T) {
	s := newTestServer(t, Options{Executors: 1})
	feed, _ := orderGate(s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	st, err := c.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	feed(1)
	waitCounters(t, s, st.ID, func(st JobStatus) bool { return st.PointsDone == 1 })

	pdoc, err := c.Partial(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resolved := 0
	for _, p := range pdoc.Points {
		if p.Result != nil {
			resolved++
		}
	}
	if len(pdoc.Points) != st.Points || resolved != 1 {
		t.Errorf("partial doc: %d points, %d resolved; want %d and 1", len(pdoc.Points), resolved, st.Points)
	}
	if _, err := c.Result(ctx, st.ID); err == nil {
		t.Error("plain result fetch of a running job succeeded; want 409")
	}

	feed(10)
	if fin, err := c.Wait(ctx, st.ID, time.Millisecond); err != nil || fin.State != StateDone {
		t.Fatalf("job: %+v, err %v", fin, err)
	}
	if doc, err := c.Result(ctx, st.ID); err != nil || len(doc.Points) != st.Points {
		t.Errorf("final result: %+v, err %v", doc, err)
	}
}

// TestErrCancelledSentinel checks the typed cancellation error
// surfaces consistently: in the server-side status, through the HTTP
// document, and from the client's JobStatus.Err.
func TestErrCancelledSentinel(t *testing.T) {
	s := newTestServer(t, Options{Executors: 1})
	release := gate(s)
	defer release()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	st, err := c.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateRunning)
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, st.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateCancelled {
		t.Fatalf("cancelled job state = %s (%s)", fin.State, fin.Error)
	}
	if !errors.Is(fin.Err(), ErrCancelled) {
		t.Errorf("client-side Err() = %v, want ErrCancelled", fin.Err())
	}
	if fin.Error != ErrCancelled.Error() {
		t.Errorf("status error = %q, want the typed sentinel text %q", fin.Error, ErrCancelled.Error())
	}
	// The server-side snapshot agrees.
	if srvSt, _ := s.Status(st.ID); !errors.Is(srvSt.Err(), ErrCancelled) {
		t.Errorf("server-side Err() = %v, want ErrCancelled", srvSt.Err())
	}
}

// TestQueueFullRetryAfterTyped checks 429 rejections reach the client
// as a typed QueueFullError carrying the adaptive Retry-After hint and
// still matching the ErrQueueFull sentinel.
func TestQueueFullRetryAfterTyped(t *testing.T) {
	s := newTestServer(t, Options{QueueCap: 1, Executors: 1})
	release := gate(s)
	defer release()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	st1, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st1.ID, StateRunning)
	if _, err := s.Submit(tinySpec()); err != nil {
		t.Fatal(err)
	}

	_, err = c.Submit(ctx, tinySpec())
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("overflow submit error = %v (%T), want *QueueFullError", err, err)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Error("typed queue-full error does not match ErrQueueFull")
	}
	if qf.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want at least the 1s floor", qf.RetryAfter)
	}
	release()
}

// TestThroughputEstimator unit-tests the adaptive Retry-After source:
// no history answers the 1s floor, estimates scale with backlog and
// worker count, clamp at 600s, and the EWMA tracks recent samples.
func TestThroughputEstimator(t *testing.T) {
	var e throughputEstimator
	if got := e.estimate(50, 4); got != 1 {
		t.Errorf("no-history estimate = %d, want 1", got)
	}
	e.observe(time.Second)
	if got := e.estimate(10, 1); got != 10 {
		t.Errorf("estimate(10 pts, 1 worker) = %d, want 10", got)
	}
	if got := e.estimate(10, 2); got != 5 {
		t.Errorf("estimate(10 pts, 2 workers) = %d, want 5", got)
	}
	if got := e.estimate(1_000_000, 1); got != 600 {
		t.Errorf("huge backlog estimate = %d, want the 600s clamp", got)
	}
	if got := e.estimate(0, 1); got != 1 {
		t.Errorf("empty backlog estimate = %d, want 1", got)
	}
	for i := 0; i < 50; i++ {
		e.observe(100 * time.Millisecond)
	}
	if got := e.estimate(10, 1); got > 2 {
		t.Errorf("EWMA estimate after fast samples = %d, want ~1", got)
	}
}
