// Package service implements gpujouled, the resident simulation
// service: a long-running daemon that accepts simulation and sweep
// jobs over HTTP, runs them on one shared run engine, and answers from
// a persistent content-addressed result cache so a warm point never
// simulates again — across requests and across restarts.
//
// The layering, outermost first:
//
//   - bounded admission with backpressure: jobs are accepted until
//     the registry holds QueueCap waiting jobs beyond the executor
//     pool, then rejected with 429 + an adaptive Retry-After (queued
//     points ÷ recent point throughput) so a sweep storm degrades
//     into client retries instead of memory growth. Accepted jobs run
//     under per-job deadlines and can be cancelled mid-flight.
//   - the point scheduler (scheduler.go): every job is decomposed
//     into its grid points at admission, and the dispatcher hands
//     points — not jobs — to the executor pool: priorities preempt at
//     point boundaries (losslessly — completed points are cached),
//     weighted-fair queuing shares the engine across tenants, and
//     per-point events feed SSE streams and partial-result reads.
//   - singleflight coalescing per simulation point: the first point
//     to need a key claims a flight; points of concurrent jobs
//     needing the same key join that flight instead of re-simulating.
//     Two tenants sweeping overlapping grids cost one simulation per
//     shared point.
//   - the disk cache (internal/resultcache): flight owners consult it
//     before simulating and publish into it after, so the next daemon
//     — not just the next request — starts warm. Entries are addressed
//     by simulation identity, obs schema, and binary version, which is
//     the whole invalidation story: a new schema or binary changes
//     every address, and stale entries simply become unreachable.
//   - one shared runner.Engine in ephemeral mode executes what is left:
//     the worker pool bounds concurrent simulations and nothing is
//     memoized in RAM (the disk cache is the system of record), so the
//     daemon's footprint stays bounded over weeks of traffic.
//
// Graceful drain: BeginDrain stops admission (503), in-flight and
// already-queued jobs run to completion, then the dispatcher and
// executors exit — wired to SIGTERM by cmd/gpujouled.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"sync"
	"sync/atomic"

	"gpujoule/internal/dvfs"
	"gpujoule/internal/obs"
	"gpujoule/internal/profiling"
	"gpujoule/internal/resultcache"
	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
	"gpujoule/internal/workloads"
)

// State is a job's lifecycle position.
type State string

// Job states. Terminal states are StateDone, StateFailed, and
// StateCancelled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobSpec describes one sweep job, using the same comma-separated list
// syntax as the CLI flags so a curl body reads like a sweep invocation.
type JobSpec struct {
	// Workloads is the comma-separated Table II workload list
	// (ignored when All is set).
	Workloads string `json:"workloads,omitempty"`
	// All selects the full 14-workload evaluation subset.
	All bool `json:"all,omitempty"`
	// Scale is the workload scale factor (default 0.5).
	Scale float64 `json:"scale,omitempty"`
	// GPMs, BWs, and Topologies define the design grid (defaults
	// "1,2,4,8,16,32", "1x,2x,4x", "ring" — the cmd/sweep defaults).
	GPMs       string `json:"gpms,omitempty"`
	BWs        string `json:"bw,omitempty"`
	Topologies string `json:"topologies,omitempty"`
	// Baseline prepends each workload's 1-GPM reference point, the
	// sweep row layout required by the scaling metrics.
	Baseline bool `json:"baseline,omitempty"`
	// Priority orders jobs in the scheduler: a higher-priority job
	// preempts lower-priority work at the next point boundary
	// (default 0; negative priorities yield to the default).
	Priority int `json:"priority,omitempty"`
	// TimeoutSeconds bounds the job's execution once it starts running
	// (0 = no deadline).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// FreqMHz pins the whole grid to a K40 V/f-curve operating point:
	// every expanded grid config (baseline included) is stamped with
	// the matching (clock, voltage) pair, so the points get their own
	// cache identities. 0 is the nominal 1000 MHz and stamps nothing.
	// Ignored by explicit Points specs, whose configs ride verbatim.
	FreqMHz float64 `json:"freq_mhz,omitempty"`
	// Points, when non-empty, bypasses the grid syntax entirely: the
	// job is exactly this point list, in order, with no baseline
	// injection. This is the wire form a cluster gateway uses to hand
	// a node its owned slice of a sweep — the sim.Config rides along
	// verbatim (its JSON field names are part of the stable result
	// schema), so the point's simulation identity survives the hop
	// bit-for-bit. Workloads/All/GPMs/BWs/Topologies/Baseline are
	// ignored when set.
	Points []PointSpec `json:"points,omitempty"`
}

// PointSpec pins one explicit simulation point: a workload at a scale
// on a fully specified machine configuration. Unlike the grid fields
// it round-trips through JSON without re-deriving anything, which is
// what makes gateway-split sweeps resolve byte-identical results.
type PointSpec struct {
	// Workload is the Table II workload name.
	Workload string `json:"workload"`
	// Scale is the workload sizing factor (<= 0 inherits the job's
	// Scale, defaulting like the grid path).
	Scale float64 `json:"scale,omitempty"`
	// Config is the simulated machine, carried verbatim.
	Config sim.Config `json:"config"`
}

func (sp JobSpec) scale() float64 {
	if sp.Scale <= 0 {
		return 0.5
	}
	return sp.Scale
}

func (sp JobSpec) gridFields() (gpms, bws, topos string) {
	gpms, bws, topos = sp.GPMs, sp.BWs, sp.Topologies
	if gpms == "" {
		gpms = "1,2,4,8,16,32"
	}
	if bws == "" {
		bws = "1x,2x,4x"
	}
	if topos == "" {
		topos = "ring"
	}
	return
}

// names returns the workload list the spec resolves to, in the order
// points will be expanded.
func (sp JobSpec) names() []string {
	if len(sp.Points) > 0 {
		var out []string
		seen := map[string]bool{}
		for _, p := range sp.Points {
			if !seen[p.Workload] {
				seen[p.Workload] = true
				out = append(out, p.Workload)
			}
		}
		return out
	}
	if sp.All {
		var out []string
		for _, g := range workloads.Generators() {
			if g.InEval14 {
				out = append(out, g.Name)
			}
		}
		return out
	}
	return sim.SplitList(sp.Workloads)
}

// Validate checks the spec without building any traces: the grid (or
// every explicit point config) must validate and every workload name
// must exist.
func (sp JobSpec) Validate() error {
	if len(sp.Points) > 0 {
		for i, p := range sp.Points {
			if err := p.Config.Validate(); err != nil {
				return fmt.Errorf("service: point %d: %w", i, err)
			}
		}
	} else if _, err := sp.configs(); err != nil {
		return err
	}
	if len(sp.Points) == 0 && sp.FreqMHz != 0 {
		if _, err := dvfs.K40Curve().AtMHz(sp.FreqMHz); err != nil {
			return fmt.Errorf("service: %w", err)
		}
	}
	names := sp.names()
	if len(names) == 0 {
		return errors.New("service: job selects no workloads")
	}
	known := map[string]bool{}
	for _, n := range workloads.Names() {
		known[n] = true
	}
	for _, n := range names {
		if !known[n] {
			return fmt.Errorf("service: unknown workload %q (have %v)", n, workloads.Names())
		}
	}
	return nil
}

// configs expands the spec's design grid.
func (sp JobSpec) configs() ([]sim.Config, error) {
	gpms, bws, topos := sp.gridFields()
	grid, err := sim.ParseGrid(gpms, bws, topos)
	if err != nil {
		return nil, err
	}
	return grid.Configs(), nil
}

// JobStatus is the introspectable snapshot of one job, served by
// GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Tenant is the scheduling account the job is billed to.
	Tenant string `json:"tenant"`
	// Created, Started, and Finished timestamp the lifecycle (zero
	// until the state is reached).
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Points is the job's expanded point count; PointsDone of them
	// have resolved so far (equal to Points on a done job).
	Points     int `json:"points"`
	PointsDone int `json:"points_done"`
	// CacheHits counts points served from the disk cache, Coalesced
	// points that joined another in-flight simulation, and Submitted
	// points handed to the simulation engine for this job. A fully
	// warm job reports CacheHits == Points and Submitted == 0.
	CacheHits int `json:"cache_hits"`
	Coalesced int `json:"coalesced"`
	Submitted int `json:"submitted"`
	// PeerHits counts points served from a cluster peer's cache
	// instead of recomputing (zero on single-node daemons).
	PeerHits int `json:"peer_hits,omitempty"`
	// Preemptions counts higher-priority arrivals that displaced this
	// job's pending points while it was running.
	Preemptions int `json:"preemptions,omitempty"`
	// Spec is the job's submitted specification.
	Spec JobSpec `json:"spec"`
}

// Err converts a terminal status into the error a caller should
// surface: nil for done, ErrCancelled (wrapped with the job id) for
// cancelled, and a descriptive failure otherwise. The one place the
// typed cancellation sentinel is minted client- and server-side.
func (st JobStatus) Err() error {
	switch st.State {
	case StateCancelled:
		return fmt.Errorf("%w (job %s)", ErrCancelled, st.ID)
	case StateFailed:
		return fmt.Errorf("service: job %s failed: %s", st.ID, st.Error)
	}
	return nil
}

// Job is one accepted sweep job. All fields are guarded by the
// server's registry lock; handlers only ever see Status snapshots.
type Job struct {
	status JobStatus
	tenant *tenantState

	// ctx is the job's admission-scoped context (cancelled by Cancel
	// and server Close); runCtx additionally carries the per-job
	// deadline and exists once the job starts running.
	ctx       context.Context
	cancel    context.CancelFunc
	runCtx    context.Context
	runCancel context.CancelFunc

	cancelRequested bool
	done            chan struct{} // closed on terminal state

	points   []runner.Point
	results  []*sim.Result
	pending  []int   // point indices awaiting dispatch, FIFO
	attempts []uint8 // per-point re-dispatch counts
	owned    int     // points executing in executor slots
	joined   int     // points waiting on foreign flights
	resolved int

	events []JobEvent
	notify chan struct{} // closed and replaced on every event append
	digest string        // sha256 of the result document (done jobs)
}

// liveCtx is the context the job's points run under: the deadline-
// carrying run context once running, the admission context before.
func (j *Job) liveCtx() context.Context {
	if j.runCtx != nil {
		return j.runCtx
	}
	return j.ctx
}

// Options configures a Server.
type Options struct {
	// Workers bounds concurrent simulations of the shared engine
	// (<= 0 selects one per CPU).
	Workers int
	// Counters runs every simulation with the observability layer, so
	// cached results carry per-GPM/per-link counters. Part of the cache
	// key: counted and plain results never alias.
	Counters bool
	// CacheDir roots the persistent result cache; empty disables
	// persistence (coalescing still applies).
	CacheDir string
	// QueueCap bounds admission (default 16): a submit is rejected
	// with 429 once QueueCap + Executors jobs are admitted and not yet
	// terminal.
	QueueCap int
	// Executors bounds concurrently executing points (default 2).
	// Each executing point feeds the one shared engine, whose Workers
	// bound still governs simulation parallelism; coalesced points
	// join in-flight work without consuming an executor.
	Executors int
	// GPMParallel, when > 1, runs each simulation's GPMs on up to
	// this many parallel lanes (runner.Options.GPMParallel). Results
	// are byte-identical at any lane count, so lanes do not enter the
	// cache key. The requested value is capped so that
	// GPMParallel × Executors never exceeds GOMAXPROCS — lanes fill
	// otherwise-idle cores, they must not oversubscribe the node —
	// and the extra lanes further share the engine's dynamic budget
	// (GOMAXPROCS − Workers) at run time. The effective lane count
	// and budget appear on /metrics.
	GPMParallel int
	// DefaultFreqMHz stamps grid jobs that did not pick an operating
	// point with this K40 V/f-curve frequency (0 leaves them at the
	// nominal 1000 MHz). Explicit-point jobs are never restamped.
	DefaultFreqMHz float64
	// Tenants configures per-tenant weights and in-flight quotas for
	// the weighted-fair scheduler. Tenants absent from the map get
	// weight 1 and no quota.
	Tenants map[string]TenantConfig
	// KeepJobs bounds retained terminal job records (default 64):
	// beyond it, the oldest finished jobs (and their results) are
	// dropped from the registry.
	KeepJobs int
	// Version is the string served by GET /v1/version (default
	// profiling.VersionString("gpujouled")).
	Version string
	// Logf, when non-nil, receives operational log lines (cache write
	// failures, drain progress).
	Logf func(format string, args ...any)
	// Cluster wires the node into a multi-node fabric
	// (internal/cluster). Nil for a single-node daemon — every hook is
	// optional and the zero behaviour is exactly the pre-cluster one.
	Cluster *ClusterHooks
}

// ClusterHooks are the seams a cluster fabric plugs into the service:
// the service stays ignorant of rings, peers, and HTTP — it only knows
// that a missing key may be answerable remotely, that fresh results
// may be worth replicating, and that some submissions belong
// elsewhere. internal/cluster provides the implementations.
type ClusterHooks struct {
	// PeerGet consults peer caches for a point missing locally,
	// keyed by the point's canonical sim key (ring routing) and full
	// cache key (entry identity). It returns (result, true) on a
	// verified remote hit. Called with the point's live context; the
	// implementation bounds its own per-peer timeouts.
	PeerGet func(ctx context.Context, simKey, cacheKey string) (*sim.Result, bool)
	// Replicate pushes a freshly computed result toward the key's
	// ring owner and successor, best-effort and asynchronous.
	Replicate func(simKey, cacheKey string, res *sim.Result)
	// RouteOwner reports the base URL of the healthy node that owns
	// simKey, or "" when this node should handle it itself (it is the
	// owner, or the reroute chain degraded to local compute). The
	// HTTP handler uses it to answer single-owner submissions with a
	// 307 to the owning node.
	RouteOwner func(simKey string) string
}

// Server is the resident simulation service.
type Server struct {
	opts    Options
	eng     *runner.Engine
	cache   *resultcache.Cache
	prof    *profiling.HTTPServer
	optsSig string
	est     *throughputEstimator

	baseCtx    context.Context
	baseCancel context.CancelFunc
	execCh     chan pointTask
	wg         sync.WaitGroup // dispatcher + executors

	// runBatch executes a batch of points; defaults to the shared
	// engine. A test seam for lifecycle tests that need slow or gated
	// executions.
	runBatch func(ctx context.Context, pts []runner.Point) ([]*sim.Result, error)

	// digestMismatches counts streaming clients that reported a digest
	// mismatch on their reassembled document (via the
	// X-GPUJoule-Digest-Mismatch header on the authoritative refetch).
	digestMismatches atomic.Uint64

	mu          sync.Mutex // guards everything below plus all Job/tenantState fields
	cond        *sync.Cond // broadcast on any scheduling-relevant change
	jobs        map[string]*Job
	order       []string
	tenants     map[string]*tenantState
	vclock      float64 // weighted-fair virtual clock
	execFree    int     // free executor slots
	flights     map[string]*flight
	draining    bool
	drained     bool
	coalesced   int
	preemptions uint64
	peerHits    uint64 // points served from a cluster peer's cache
}

// CacheStamp composes the producer stamp the service binds cache
// entries to: binary build version plus obs schema version. Either
// changing re-addresses every entry.
func CacheStamp() string {
	return fmt.Sprintf("%s|obs-schema=v%d", profiling.BuildVersion(), obs.SchemaVersion)
}

// New builds and starts a server: the dispatcher and executor pool
// are live on return and the handler (Handler) can be mounted
// immediately. Callers must Close (or Drain) it.
func New(opts Options) (*Server, error) {
	if opts.QueueCap <= 0 {
		opts.QueueCap = 16
	}
	if opts.Executors <= 0 {
		opts.Executors = 2
	}
	if opts.KeepJobs <= 0 {
		opts.KeepJobs = 64
	}
	if opts.Version == "" {
		opts.Version = profiling.VersionString("gpujouled")
	}
	if opts.DefaultFreqMHz != 0 {
		if _, err := dvfs.K40Curve().AtMHz(opts.DefaultFreqMHz); err != nil {
			return nil, fmt.Errorf("service: default operating point: %w", err)
		}
	}
	optsSig := "plain"
	if opts.Counters {
		optsSig = "counters"
	}
	// Cap intra-run parallelism so GPMParallel × Executors stays
	// within GOMAXPROCS: every executor can be driving a point
	// through the engine at once, and each point may fan its GPMs
	// across this many lanes. Lane count never changes results, so
	// clamping is an execution decision, not a correctness one.
	if max := runtime.GOMAXPROCS(0) / opts.Executors; opts.GPMParallel > max {
		opts.GPMParallel = max
	}
	if opts.GPMParallel < 1 {
		opts.GPMParallel = 1
	}
	s := &Server{
		opts:     opts,
		optsSig:  optsSig,
		est:      &throughputEstimator{},
		execCh:   make(chan pointTask, opts.Executors),
		execFree: opts.Executors,
		jobs:     make(map[string]*Job),
		tenants:  make(map[string]*tenantState),
		flights:  make(map[string]*flight),
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.eng = runner.New(runner.Options{
		Workers:     opts.Workers,
		Counters:    opts.Counters,
		GPMParallel: opts.GPMParallel,
		Ephemeral:   true, // the disk cache is the system of record
		OnEvent: func(ev runner.Event) {
			if ev.Kind == runner.PointDone {
				s.prof.SetProgress(ev.Completed, ev.Total)
			}
		},
	})
	// The Retry-After estimator rides the engine's event fan-out: one
	// more subscriber on the same serialized stream the progress
	// gauge uses.
	s.eng.Subscribe(func(ev runner.Event) {
		if ev.Kind == runner.PointDone && ev.Err == nil && ev.Elapsed > 0 {
			s.est.observe(ev.Elapsed)
		}
	})
	s.runBatch = s.eng.Run
	if opts.CacheDir != "" {
		cache, err := resultcache.Open(opts.CacheDir, CacheStamp())
		if err != nil {
			return nil, err
		}
		s.cache = cache
	}
	s.prof = profiling.NewServer(s.eng.Profile)
	s.prof.AddMetrics(s.writeServiceMetrics)
	s.wg.Add(1)
	go s.dispatcher()
	for i := 0; i < opts.Executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s, nil
}

// Engine exposes the shared run engine (for introspection and tests).
func (s *Server) Engine() *runner.Engine { return s.eng }

// AddMetrics registers an extra emitter on the node's /metrics scrape
// — the seam the cluster fabric and gateway use to publish their
// families alongside the service plane's.
func (s *Server) AddMetrics(emit func(io.Writer)) { s.prof.AddMetrics(emit) }

// Cache exposes the result cache (nil when persistence is disabled).
func (s *Server) Cache() *resultcache.Cache { return s.cache }

// Coalesced reports the lifetime count of points that joined another
// in-flight simulation.
func (s *Server) Coalesced() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coalesced
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Errors returned by Submit and surfaced through job statuses,
// mirrored onto HTTP statuses by the handler (429, 503) and preserved
// as sentinels by the client.
var (
	// ErrQueueFull reports that admission is at capacity.
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrDraining reports that the server is shutting down and no
	// longer accepts jobs.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrCancelled reports that a job was cancelled — while queued or
	// mid-flight — rather than failing. JobStatus.Err returns it
	// (wrapped) for cancelled jobs on both the server and the client.
	ErrCancelled = errors.New("service: job cancelled")
)

// Submit validates and enqueues a job for the default tenant,
// returning its queued status.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	return s.SubmitTenant("", spec)
}

// SubmitTenant validates and enqueues a job billed to the given
// tenant (empty selects DefaultTenant). The job's points are expanded
// here, so the returned status carries the exact point count and the
// scheduler can dispatch at point granularity.
func (s *Server) SubmitTenant(tenant string, spec JobSpec) (JobStatus, error) {
	if spec.FreqMHz == 0 && len(spec.Points) == 0 {
		spec.FreqMHz = s.opts.DefaultFreqMHz
	}
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	pts, err := ExpandPoints(spec)
	if err != nil {
		return JobStatus{}, err
	}
	id, err := newID()
	if err != nil {
		return JobStatus{}, err
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	pending := make([]int, len(pts))
	for i := range pending {
		pending[i] = i
	}
	j := &Job{
		status: JobStatus{
			ID:      id,
			State:   StateQueued,
			Tenant:  tenant,
			Created: time.Now(),
			Points:  len(pts),
			Spec:    spec,
		},
		points:   pts,
		results:  make([]*sim.Result, len(pts)),
		pending:  pending,
		attempts: make([]uint8, len(pts)),
		done:     make(chan struct{}),
		notify:   make(chan struct{}),
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobStatus{}, ErrDraining
	}
	admitted := 0
	for _, jj := range s.jobs {
		if !jj.status.State.Terminal() {
			admitted++
		}
	}
	if admitted >= s.opts.QueueCap+s.opts.Executors {
		return JobStatus{}, ErrQueueFull
	}
	t := s.tenantLocked(tenant)
	if t.queuedPoints() == 0 {
		// Re-entering the backlog: forfeit banked idle time.
		if t.vtime < s.vclock {
			t.vtime = s.vclock
		}
	}
	j.tenant = t
	j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	s.jobs[id] = j
	s.order = append(s.order, id)
	t.jobs = append(t.jobs, j)
	// Preemption accounting: this arrival displaces the pending
	// points of every running lower-priority job.
	for _, jj := range s.jobs {
		if jj != j && jj.status.State == StateRunning &&
			jj.status.Spec.Priority < spec.Priority && len(jj.pending) > 0 {
			jj.status.Preemptions++
			s.preemptions++
		}
	}
	s.appendEventLocked(j, JobEvent{Kind: EventState, State: StateQueued})
	s.cond.Broadcast()
	return j.status, nil
}

// Status returns a job's snapshot.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.status, true
}

// Jobs lists all retained jobs in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j.status)
		}
	}
	return out
}

// Cancel requests cancellation: a job with no owned in-flight points
// is finished immediately with ErrCancelled; one with points
// executing has its context cancelled, and the last point completion
// finalizes it (the engine abandons unstarted points promptly).
// Either way the job's completed points are already in the result
// cache, so a re-submission resumes from pure cache hits. Cancelling
// a terminal job is a no-op.
func (s *Server) Cancel(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	if j.status.State.Terminal() {
		return j.status, true
	}
	j.cancelRequested = true
	j.cancel()
	if j.owned == 0 {
		s.finalizeLocked(j, ErrCancelled)
	}
	s.cond.Broadcast()
	return j.status, true
}

// Wait blocks until the job reaches a terminal state or the context
// expires.
func (s *Server) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("service: no such job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
	st, _ := s.Status(id)
	return st, nil
}

// Result returns a done job's point results in expansion order.
func (s *Server) Result(id string) ([]runner.Point, []*sim.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.status.State != StateDone {
		return nil, nil, false
	}
	return j.points, j.results, true
}

// BeginDrain stops admission: subsequent Submit calls fail with
// ErrDraining, queued and running jobs complete, and the dispatcher
// and executors exit once every job is terminal. Idempotent.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	s.cond.Broadcast()
}

// Drain gracefully shuts the job plane down: admission stops and the
// call blocks until every accepted job has completed or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.mu.Lock()
		s.drained = true
		s.mu.Unlock()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// Close shuts down immediately: running jobs are cancelled, then the
// scheduler goroutines are awaited. For a graceful stop call Drain
// first.
func (s *Server) Close() {
	s.BeginDrain()
	s.baseCancel()
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// finalizeLocked moves a job to its terminal state, releases its
// contexts and pending work, and prunes old terminal records beyond
// the retention bound. Caller holds s.mu.
func (s *Server) finalizeLocked(j *Job, err error) {
	if j.status.State.Terminal() {
		return
	}
	j.status.Finished = time.Now()
	j.pending = nil
	switch {
	case err == nil:
		j.status.State = StateDone
		j.digest = ResultDocDigest(MakeResultDoc(j.points, j.results))
	case j.cancelRequested || errors.Is(err, ErrCancelled) || errors.Is(err, context.Canceled):
		j.status.State = StateCancelled
		j.status.Error = ErrCancelled.Error()
	default:
		j.status.State = StateFailed
		j.status.Error = err.Error()
	}
	if j.runCancel != nil {
		j.runCancel()
	}
	if j.cancel != nil {
		j.cancel()
	}
	if j.tenant != nil {
		j.tenant.removeJob(j)
	}
	s.appendEventLocked(j, JobEvent{Kind: EventDone, State: j.status.State})
	close(j.done)
	s.cond.Broadcast()

	// Retention: drop the oldest terminal jobs beyond KeepJobs.
	terminal := 0
	for _, id := range s.order {
		if jj, ok := s.jobs[id]; ok && jj.status.State.Terminal() {
			terminal++
		}
	}
	for i := 0; terminal > s.opts.KeepJobs && i < len(s.order); i++ {
		id := s.order[i]
		jj, ok := s.jobs[id]
		if !ok || !jj.status.State.Terminal() {
			continue
		}
		delete(s.jobs, id)
		s.order = append(s.order[:i], s.order[i+1:]...)
		i--
		terminal--
	}
}

// ExpandPoints builds the job's point sequence. Grid specs expand to
// the sweep row layout over the spec's workloads and design grid
// (shared with cmd/sweep through runner.GridPoints, so service and
// local execution resolve identical point sequences); explicit
// Points specs expand to exactly the listed points, in order. The
// cluster gateway calls this on the same spec a node would, which is
// why a split sweep reassembles the byte-identical document.
func ExpandPoints(spec JobSpec) ([]runner.Point, error) {
	if len(spec.Points) > 0 {
		return expandExplicit(spec)
	}
	cfgs, err := spec.configs()
	if err != nil {
		return nil, err
	}
	params := workloads.Params{Scale: spec.scale()}
	var apps []*trace.App
	for _, name := range spec.names() {
		app, err := workloads.ByName(name, params)
		if err != nil {
			return nil, err
		}
		apps = append(apps, app)
	}
	pts := runner.GridPoints(apps, spec.scale(), spec.Baseline, cfgs...)
	if spec.FreqMHz != 0 {
		p, err := dvfs.K40Curve().AtMHz(spec.FreqMHz)
		if err != nil {
			return nil, err
		}
		for i := range pts {
			pts[i].Config = dvfs.Apply(pts[i].Config, p)
		}
	}
	return pts, nil
}

// expandExplicit resolves an explicit point list. Workload traces are
// built once per (name, scale) and shared across points, mirroring the
// app reuse of the grid path.
func expandExplicit(spec JobSpec) ([]runner.Point, error) {
	type appKey struct {
		name  string
		scale float64
	}
	apps := map[appKey]*trace.App{}
	pts := make([]runner.Point, 0, len(spec.Points))
	for _, p := range spec.Points {
		scale := p.Scale
		if scale <= 0 {
			scale = spec.scale()
		}
		k := appKey{p.Workload, scale}
		app, ok := apps[k]
		if !ok {
			var err error
			app, err = workloads.ByName(p.Workload, workloads.Params{Scale: scale})
			if err != nil {
				return nil, err
			}
			apps[k] = app
		}
		pts = append(pts, runner.Point{App: app, Scale: scale, Config: p.Config})
	}
	return pts, nil
}

// SpecFor inverts ExpandPoints for a point subset: the explicit-point
// JobSpec that resolves exactly pts, carrying priority and deadline
// from the parent spec. The gateway uses it to hand each node its
// owned batch.
func SpecFor(parent JobSpec, pts []runner.Point) JobSpec {
	sub := JobSpec{
		Priority:       parent.Priority,
		TimeoutSeconds: parent.TimeoutSeconds,
		Points:         make([]PointSpec, len(pts)),
	}
	for i, pt := range pts {
		sub.Points[i] = PointSpec{Workload: pt.App.Name, Scale: pt.Scale, Config: pt.Config}
	}
	return sub
}

// cacheKey is a point's full cache identity: the runner's canonical
// memoization key plus the engine's observability option signature
// (counted and plain results are different documents).
func (s *Server) cacheKey(pt runner.Point) string {
	return pt.Key() + "|obs=" + s.optsSig
}

// writeServiceMetrics extends the /metrics scrape with the service
// plane: result-cache counters, coalescing, scheduler and per-tenant
// gauges, preemptions, the adaptive retry hint, and job states.
func (s *Server) writeServiceMetrics(w io.Writer) {
	if s.cache != nil {
		cs := s.cache.Stats()
		profiling.WriteCounter(w, "gpujoule_result_cache_hits", "Disk result-cache hits.", float64(cs.Hits))
		profiling.WriteCounter(w, "gpujoule_result_cache_misses", "Disk result-cache misses.", float64(cs.Misses))
		profiling.WriteCounter(w, "gpujoule_result_cache_puts", "Disk result-cache entries written.", float64(cs.Puts))
		profiling.WriteCounter(w, "gpujoule_result_cache_corrupt", "Corrupt result-cache entries dropped.", float64(cs.Corrupt))
	}
	// Intra-run parallelism: the effective (post-clamp) lane count and
	// the shared budget extra lanes draw from. A budget appears only
	// when lanes > 1; cap/free are 0 on a lane-less engine.
	profiling.WriteGauge(w, "gpujoule_gpm_parallel_lanes",
		"Effective per-simulation GPM lanes (after the GOMAXPROCS/executors clamp).",
		float64(s.eng.GPMParallel()))
	if b := s.eng.ParallelBudget(); b != nil {
		profiling.WriteGauge(w, "gpujoule_gpm_parallel_budget_cap",
			"Extra-lane budget shared by all in-flight simulations.", float64(b.Cap()))
		profiling.WriteGauge(w, "gpujoule_gpm_parallel_budget_free",
			"Extra-lane budget currently unclaimed.", float64(b.Free()))
	}
	retryAfter := s.RetryAfterSeconds()
	s.mu.Lock()
	coalesced := s.coalesced
	preemptions := s.preemptions
	peerHits := s.peerHits
	queuedJobs, queuedPoints, inflightPoints := 0, 0, 0
	// Operating point of the most recently admitted live job (nominal
	// jobs report 1000 MHz; 0 means no live job).
	opMHz := 0.0
	for _, id := range s.order {
		jj, ok := s.jobs[id]
		if !ok || jj.status.State.Terminal() {
			continue
		}
		if opMHz = jj.status.Spec.FreqMHz; opMHz == 0 {
			opMHz = sim.NominalClockHz / 1e6
		}
	}
	states := map[State]int{}
	for _, jj := range s.jobs {
		states[jj.status.State]++
		if jj.status.State == StateQueued {
			queuedJobs++
		}
		if !jj.status.State.Terminal() {
			queuedPoints += len(jj.pending)
			inflightPoints += jj.owned
		}
	}
	type tenantRow struct {
		name                string
		weight, queued, inf int
		dispatched, coal    uint64
	}
	var rows []tenantRow
	for name, t := range s.tenants {
		rows = append(rows, tenantRow{name, t.weight, t.queuedPoints(), t.inflight, t.dispatched, t.coalesced})
	}
	s.mu.Unlock()
	sortTenantRows := func() {
		for i := 1; i < len(rows); i++ {
			for k := i; k > 0 && rows[k].name < rows[k-1].name; k-- {
				rows[k], rows[k-1] = rows[k-1], rows[k]
			}
		}
	}
	sortTenantRows()

	profiling.WriteCounter(w, "gpujoule_service_coalesced_points", "Points that joined another job's in-flight simulation.", float64(coalesced))
	profiling.WriteCounter(w, "gpujoule_sched_preemptions_total", "Higher-priority arrivals that displaced running lower-priority jobs.", float64(preemptions))
	profiling.WriteCounter(w, "gpujoule_service_peer_hit_points", "Points served from a cluster peer's cache instead of recomputing.", float64(peerHits))
	profiling.WriteCounter(w, "gpujoule_stream_digest_mismatch_total", "Streaming clients that reported a digest mismatch on their reassembled document.", float64(s.digestMismatches.Load()))
	profiling.WriteGauge(w, "gpujoule_queue_depth", "Jobs admitted and not yet running.", float64(queuedJobs))
	profiling.WriteGauge(w, "gpujoule_queue_capacity", "Admission capacity beyond the executor pool.", float64(s.opts.QueueCap))
	profiling.WriteGauge(w, "gpujoule_sched_queued_points", "Points admitted and not yet dispatched.", float64(queuedPoints))
	profiling.WriteGauge(w, "gpujoule_sched_inflight_points", "Points executing in executor slots.", float64(inflightPoints))
	profiling.WriteGauge(w, "gpujoule_retry_after_hint_seconds", "Current adaptive 429 Retry-After hint.", float64(retryAfter))
	profiling.WriteGauge(w, "gpujoule_operating_point_mhz", "DVFS operating-point clock of the most recently admitted live job (0 = idle).", opMHz)

	writeTenantFamily := func(name, help, typ string, value func(tenantRow) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, r := range rows {
			fmt.Fprintf(w, "%s{tenant=%q} %g\n", name, r.name, value(r))
		}
	}
	if len(rows) > 0 {
		writeTenantFamily("gpujoule_tenant_weight", "Configured weighted-fair share.", "gauge",
			func(r tenantRow) float64 { return float64(r.weight) })
		writeTenantFamily("gpujoule_tenant_queued_points", "Points admitted and not yet dispatched, per tenant.", "gauge",
			func(r tenantRow) float64 { return float64(r.queued) })
		writeTenantFamily("gpujoule_tenant_inflight_points", "Points executing in executor slots, per tenant.", "gauge",
			func(r tenantRow) float64 { return float64(r.inf) })
		writeTenantFamily("gpujoule_tenant_dispatched_points_total", "Lifetime dispatched points, per tenant.", "counter",
			func(r tenantRow) float64 { return float64(r.dispatched) })
		writeTenantFamily("gpujoule_tenant_coalesced_points_total", "Lifetime coalesced joins, per tenant.", "counter",
			func(r tenantRow) float64 { return float64(r.coal) })
	}
	fmt.Fprintf(w, "# HELP gpujoule_jobs Jobs in the registry by state.\n# TYPE gpujoule_jobs gauge\n")
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		fmt.Fprintf(w, "gpujoule_jobs{state=%q} %d\n", st, states[st])
	}
}

// newID mints a random job id.
func newID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: minting job id: %w", err)
	}
	return "j" + hex.EncodeToString(b[:]), nil
}
