// Package service implements gpujouled, the resident simulation
// service: a long-running daemon that accepts simulation and sweep
// jobs over HTTP, runs them on one shared run engine, and answers from
// a persistent content-addressed result cache so a warm point never
// simulates again — across requests and across restarts.
//
// The layering, outermost first:
//
//   - a bounded admission queue with backpressure: jobs are accepted
//     until the queue fills, then rejected with 429 + Retry-After so a
//     sweep storm degrades into client retries instead of memory
//     growth. Accepted jobs run under per-job deadlines and can be
//     cancelled mid-flight.
//   - singleflight coalescing per simulation point: the first job to
//     need a point claims a flight; concurrent jobs needing the same
//     point wait on that flight instead of re-simulating. Two users
//     sweeping overlapping grids cost one simulation per shared point.
//   - the disk cache (internal/resultcache): flight owners consult it
//     before simulating and publish into it after, so the next daemon
//     — not just the next request — starts warm. Entries are addressed
//     by simulation identity, obs schema, and binary version, which is
//     the whole invalidation story: a new schema or binary changes
//     every address, and stale entries simply become unreachable.
//   - one shared runner.Engine in ephemeral mode executes what is left:
//     the worker pool bounds concurrent simulations, in-batch
//     duplicates dedupe, and nothing is memoized in RAM (the disk
//     cache is the system of record), so the daemon's footprint stays
//     bounded over weeks of traffic.
//
// Graceful drain: BeginDrain stops admission (503), in-flight and
// already-queued jobs run to completion, then the executors exit —
// wired to SIGTERM by cmd/gpujouled.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"time"

	"sync"

	"gpujoule/internal/obs"
	"gpujoule/internal/profiling"
	"gpujoule/internal/resultcache"
	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
	"gpujoule/internal/workloads"
)

// State is a job's lifecycle position.
type State string

// Job states. Terminal states are StateDone, StateFailed, and
// StateCancelled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobSpec describes one sweep job, using the same comma-separated list
// syntax as the CLI flags so a curl body reads like a sweep invocation.
type JobSpec struct {
	// Workloads is the comma-separated Table II workload list
	// (ignored when All is set).
	Workloads string `json:"workloads,omitempty"`
	// All selects the full 14-workload evaluation subset.
	All bool `json:"all,omitempty"`
	// Scale is the workload scale factor (default 0.5).
	Scale float64 `json:"scale,omitempty"`
	// GPMs, BWs, and Topologies define the design grid (defaults
	// "1,2,4,8,16,32", "1x,2x,4x", "ring" — the cmd/sweep defaults).
	GPMs       string `json:"gpms,omitempty"`
	BWs        string `json:"bw,omitempty"`
	Topologies string `json:"topologies,omitempty"`
	// Baseline prepends each workload's 1-GPM reference point, the
	// sweep row layout required by the scaling metrics.
	Baseline bool `json:"baseline,omitempty"`
	// TimeoutSeconds bounds the job's execution once it starts running
	// (0 = no deadline).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

func (sp JobSpec) scale() float64 {
	if sp.Scale <= 0 {
		return 0.5
	}
	return sp.Scale
}

func (sp JobSpec) gridFields() (gpms, bws, topos string) {
	gpms, bws, topos = sp.GPMs, sp.BWs, sp.Topologies
	if gpms == "" {
		gpms = "1,2,4,8,16,32"
	}
	if bws == "" {
		bws = "1x,2x,4x"
	}
	if topos == "" {
		topos = "ring"
	}
	return
}

// names returns the workload list the spec resolves to, in the order
// points will be expanded.
func (sp JobSpec) names() []string {
	if sp.All {
		var out []string
		for _, g := range workloads.Generators() {
			if g.InEval14 {
				out = append(out, g.Name)
			}
		}
		return out
	}
	return sim.SplitList(sp.Workloads)
}

// Validate checks the spec without building any traces: the grid must
// parse and every workload name must exist.
func (sp JobSpec) Validate() error {
	if _, err := sp.configs(); err != nil {
		return err
	}
	names := sp.names()
	if len(names) == 0 {
		return errors.New("service: job selects no workloads")
	}
	known := map[string]bool{}
	for _, n := range workloads.Names() {
		known[n] = true
	}
	for _, n := range names {
		if !known[n] {
			return fmt.Errorf("service: unknown workload %q (have %v)", n, workloads.Names())
		}
	}
	return nil
}

// configs expands the spec's design grid.
func (sp JobSpec) configs() ([]sim.Config, error) {
	gpms, bws, topos := sp.gridFields()
	grid, err := sim.ParseGrid(gpms, bws, topos)
	if err != nil {
		return nil, err
	}
	return grid.Configs(), nil
}

// numPoints is the point count of the expanded job.
func (sp JobSpec) numPoints() int {
	cfgs, err := sp.configs()
	if err != nil {
		return 0
	}
	per := len(cfgs)
	if sp.Baseline {
		per++
	}
	return len(sp.names()) * per
}

// JobStatus is the introspectable snapshot of one job, served by
// GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Created, Started, and Finished timestamp the lifecycle (zero
	// until the state is reached).
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Points is the job's expanded point count. CacheHits counts points
	// served from the disk cache, Coalesced points that joined another
	// job's in-flight simulation, and Submitted points handed to the
	// simulation engine for this job. A fully warm job reports
	// CacheHits == Points and Submitted == 0.
	Points    int `json:"points"`
	CacheHits int `json:"cache_hits"`
	Coalesced int `json:"coalesced"`
	Submitted int `json:"submitted"`
	// Spec is the job's submitted specification.
	Spec JobSpec `json:"spec"`
}

// Job is one accepted sweep job. All fields are guarded by the
// server's registry lock; handlers only ever see Status snapshots.
type Job struct {
	status JobStatus

	cancel          context.CancelFunc
	cancelRequested bool
	done            chan struct{} // closed on terminal state

	points  []runner.Point
	results []*sim.Result
}

// flight is one in-flight point resolution: claimed by the first job
// that needs the point, awaited by every other.
type flight struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// Options configures a Server.
type Options struct {
	// Workers bounds concurrent simulations of the shared engine
	// (<= 0 selects one per CPU).
	Workers int
	// Counters runs every simulation with the observability layer, so
	// cached results carry per-GPM/per-link counters. Part of the cache
	// key: counted and plain results never alias.
	Counters bool
	// CacheDir roots the persistent result cache; empty disables
	// persistence (coalescing still applies).
	CacheDir string
	// QueueCap bounds the admission queue (default 16).
	QueueCap int
	// Executors bounds concurrently running jobs (default 2). Each
	// running job feeds the one shared engine, whose Workers bound
	// still governs simulation parallelism.
	Executors int
	// KeepJobs bounds retained terminal job records (default 64):
	// beyond it, the oldest finished jobs (and their results) are
	// dropped from the registry.
	KeepJobs int
	// Version is the string served by GET /v1/version (default
	// profiling.VersionString("gpujouled")).
	Version string
	// Logf, when non-nil, receives operational log lines (cache write
	// failures, drain progress).
	Logf func(format string, args ...any)
}

// Server is the resident simulation service.
type Server struct {
	opts    Options
	eng     *runner.Engine
	cache   *resultcache.Cache
	prof    *profiling.HTTPServer
	optsSig string

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup

	// runBatch executes a batch of points; defaults to the shared
	// engine. A test seam for lifecycle tests that need slow or gated
	// executions.
	runBatch func(ctx context.Context, pts []runner.Point) ([]*sim.Result, error)

	mu        sync.Mutex // guards jobs, order, draining, drained, coalesced
	jobs      map[string]*Job
	order     []string
	draining  bool
	drained   bool
	coalesced int

	flmu    sync.Mutex
	flights map[string]*flight
}

// CacheStamp composes the producer stamp the service binds cache
// entries to: binary build version plus obs schema version. Either
// changing re-addresses every entry.
func CacheStamp() string {
	return fmt.Sprintf("%s|obs-schema=v%d", profiling.BuildVersion(), obs.SchemaVersion)
}

// New builds and starts a server: the executor pool is live on return
// and the handler (Handler) can be mounted immediately. Callers must
// Close (or Drain) it.
func New(opts Options) (*Server, error) {
	if opts.QueueCap <= 0 {
		opts.QueueCap = 16
	}
	if opts.Executors <= 0 {
		opts.Executors = 2
	}
	if opts.KeepJobs <= 0 {
		opts.KeepJobs = 64
	}
	if opts.Version == "" {
		opts.Version = profiling.VersionString("gpujouled")
	}
	optsSig := "plain"
	if opts.Counters {
		optsSig = "counters"
	}
	s := &Server{
		opts:    opts,
		optsSig: optsSig,
		queue:   make(chan *Job, opts.QueueCap),
		jobs:    make(map[string]*Job),
		flights: make(map[string]*flight),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.eng = runner.New(runner.Options{
		Workers:   opts.Workers,
		Counters:  opts.Counters,
		Ephemeral: true, // the disk cache is the system of record
		OnEvent: func(ev runner.Event) {
			if ev.Kind == runner.PointDone {
				s.prof.SetProgress(ev.Completed, ev.Total)
			}
		},
	})
	s.runBatch = s.eng.Run
	if opts.CacheDir != "" {
		cache, err := resultcache.Open(opts.CacheDir, CacheStamp())
		if err != nil {
			return nil, err
		}
		s.cache = cache
	}
	s.prof = profiling.NewServer(s.eng.Profile)
	s.prof.AddMetrics(s.writeServiceMetrics)
	for i := 0; i < opts.Executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s, nil
}

// Engine exposes the shared run engine (for introspection and tests).
func (s *Server) Engine() *runner.Engine { return s.eng }

// Cache exposes the result cache (nil when persistence is disabled).
func (s *Server) Cache() *resultcache.Cache { return s.cache }

// Coalesced reports the lifetime count of points that joined another
// job's in-flight simulation.
func (s *Server) Coalesced() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coalesced
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Errors returned by Submit, mirrored onto HTTP statuses by the
// handler (429 and 503 respectively).
var (
	// ErrQueueFull reports that the admission queue is at capacity.
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrDraining reports that the server is shutting down and no
	// longer accepts jobs.
	ErrDraining = errors.New("service: draining, not accepting jobs")
)

// Submit validates and enqueues a job, returning its queued status.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	id, err := newID()
	if err != nil {
		return JobStatus{}, err
	}
	j := &Job{
		status: JobStatus{
			ID:      id,
			State:   StateQueued,
			Created: time.Now(),
			Points:  spec.numPoints(),
			Spec:    spec,
		},
		done: make(chan struct{}),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobStatus{}, ErrDraining
	}
	select {
	case s.queue <- j:
	default:
		return JobStatus{}, ErrQueueFull
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	return j.status, nil
}

// Status returns a job's snapshot.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.status, true
}

// Jobs lists all retained jobs in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j.status)
		}
	}
	return out
}

// Cancel requests cancellation: a queued job is finished immediately,
// a running job has its context cancelled (the engine abandons its
// unstarted points promptly). Cancelling a terminal job is a no-op.
func (s *Server) Cancel(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	if j.status.State.Terminal() {
		return j.status, true
	}
	j.cancelRequested = true
	if j.cancel != nil {
		j.cancel()
	} else if j.status.State == StateQueued {
		// Not yet picked up: resolve it here; the executor skips
		// cancelled jobs when it dequeues them.
		s.finishJobLocked(j, nil, errors.New("cancelled while queued"))
	}
	return j.status, true
}

// Wait blocks until the job reaches a terminal state or the context
// expires.
func (s *Server) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("service: no such job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
	st, _ := s.Status(id)
	return st, nil
}

// Result returns a done job's point results in expansion order.
func (s *Server) Result(id string) ([]runner.Point, []*sim.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.status.State != StateDone {
		return nil, nil, false
	}
	return j.points, j.results, true
}

// BeginDrain stops admission: subsequent Submit calls fail with
// ErrDraining, queued and running jobs complete, and the executors
// exit once the queue empties. Idempotent.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	close(s.queue)
}

// Drain gracefully shuts the job plane down: admission stops and the
// call blocks until every accepted job has completed or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.mu.Lock()
		s.drained = true
		s.mu.Unlock()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// Close shuts down immediately: running jobs are cancelled, then the
// executors are awaited. For a graceful stop call Drain first.
func (s *Server) Close() {
	s.BeginDrain()
	s.baseCancel()
	s.wg.Wait()
}

func (s *Server) executor() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	if j.status.State.Terminal() { // cancelled while queued
		s.mu.Unlock()
		return
	}
	ctx := s.baseCtx
	var cancel context.CancelFunc
	if t := j.status.Spec.TimeoutSeconds; t > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(t*float64(time.Second)))
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.cancel = cancel
	j.status.State = StateRunning
	j.status.Started = time.Now()
	s.mu.Unlock()
	defer cancel()

	pts, err := expand(j.status.Spec)
	var results []*sim.Result
	if err == nil {
		s.mu.Lock()
		j.status.Points = len(pts)
		s.mu.Unlock()
		results, err = s.resolve(ctx, j, pts)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j.points = pts
	s.finishJobLocked(j, results, err)
}

// finishJobLocked moves a job to its terminal state and prunes old
// terminal records beyond the retention bound. Caller holds s.mu.
func (s *Server) finishJobLocked(j *Job, results []*sim.Result, err error) {
	j.status.Finished = time.Now()
	switch {
	case err == nil:
		j.status.State = StateDone
		j.results = results
	case j.cancelRequested || errors.Is(err, context.Canceled):
		j.status.State = StateCancelled
		j.status.Error = err.Error()
	default:
		j.status.State = StateFailed
		j.status.Error = err.Error()
	}
	close(j.done)

	// Retention: drop the oldest terminal jobs beyond KeepJobs.
	terminal := 0
	for _, id := range s.order {
		if jj, ok := s.jobs[id]; ok && jj.status.State.Terminal() {
			terminal++
		}
	}
	for i := 0; terminal > s.opts.KeepJobs && i < len(s.order); i++ {
		id := s.order[i]
		jj, ok := s.jobs[id]
		if !ok || !jj.status.State.Terminal() {
			continue
		}
		delete(s.jobs, id)
		s.order = append(s.order[:i], s.order[i+1:]...)
		i--
		terminal--
	}
}

// expand builds the job's point sequence: the sweep row layout over
// the spec's workloads and design grid (shared with cmd/sweep through
// runner.GridPoints, so service and local execution resolve identical
// point sequences).
func expand(spec JobSpec) ([]runner.Point, error) {
	cfgs, err := spec.configs()
	if err != nil {
		return nil, err
	}
	params := workloads.Params{Scale: spec.scale()}
	var apps []*trace.App
	for _, name := range spec.names() {
		app, err := workloads.ByName(name, params)
		if err != nil {
			return nil, err
		}
		apps = append(apps, app)
	}
	return runner.GridPoints(apps, spec.scale(), spec.Baseline, cfgs...), nil
}

// cacheKey is a point's full cache identity: the runner's canonical
// memoization key plus the engine's observability option signature
// (counted and plain results are different documents).
func (s *Server) cacheKey(pt runner.Point) string {
	return pt.Key() + "|obs=" + s.optsSig
}

// maxResolveAttempts bounds the coalescing retry loop. A waiter only
// retries when the flight it joined was cancelled by its owner while
// the waiter itself is still live, so attempts are consumed by
// distinct foreign cancellations — runaway looping indicates a bug,
// not load.
const maxResolveAttempts = 8

// resolve produces a result per point: disk cache first, then one
// shared engine batch for the misses, with per-point singleflight so
// concurrent jobs never simulate the same point twice.
func (s *Server) resolve(ctx context.Context, j *Job, pts []runner.Point) ([]*sim.Result, error) {
	// Fold the job's points into unique-key slots (a sweep repeats
	// 1-GPM rows across bandwidth settings).
	type slot struct {
		key  string
		pt   runner.Point
		idxs []int
		res  *sim.Result
		err  error
	}
	results := make([]*sim.Result, len(pts))
	var slots []*slot
	byKey := map[string]*slot{}
	for i, pt := range pts {
		k := s.cacheKey(pt)
		sl := byKey[k]
		if sl == nil {
			sl = &slot{key: k, pt: pt}
			byKey[k] = sl
			slots = append(slots, sl)
		}
		sl.idxs = append(sl.idxs, i)
	}

	pending := slots
	for attempt := 0; len(pending) > 0; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt >= maxResolveAttempts {
			return nil, fmt.Errorf("service: point resolution retried %d times without converging", attempt)
		}

		// Claim a flight per slot, or join the one already in the air.
		var owned []*slot
		type wait struct {
			sl *slot
			fl *flight
		}
		var waits []wait
		s.flmu.Lock()
		for _, sl := range pending {
			if fl := s.flights[sl.key]; fl != nil {
				waits = append(waits, wait{sl, fl})
				continue
			}
			s.flights[sl.key] = &flight{done: make(chan struct{})}
			owned = append(owned, sl)
		}
		s.flmu.Unlock()
		if len(waits) > 0 && attempt == 0 {
			s.mu.Lock()
			for _, w := range waits {
				j.status.Coalesced += len(w.sl.idxs)
				s.coalesced += len(w.sl.idxs)
			}
			s.mu.Unlock()
		}

		// Owned slots: the disk cache first, then one engine batch for
		// the misses. Every owned flight is resolved on every path.
		var misses []*slot
		for _, sl := range owned {
			if s.cache != nil {
				if res, ok := s.cache.Get(sl.key); ok {
					sl.res = res
					s.mu.Lock()
					j.status.CacheHits += len(sl.idxs)
					s.mu.Unlock()
					s.finishFlight(sl.key, res, nil)
					continue
				}
			}
			misses = append(misses, sl)
		}
		if len(misses) > 0 {
			batch := make([]runner.Point, len(misses))
			submitted := 0
			for i, sl := range misses {
				batch[i] = sl.pt
				submitted += len(sl.idxs)
			}
			s.mu.Lock()
			j.status.Submitted += submitted
			s.mu.Unlock()
			rs, err := s.runBatch(ctx, batch)
			for i, sl := range misses {
				var res *sim.Result
				if i < len(rs) {
					res = rs[i]
				}
				if res != nil {
					sl.res = res
					if s.cache != nil {
						if perr := s.cache.Put(sl.key, res); perr != nil {
							s.logf("service: caching %s: %v", sl.pt, perr)
						}
					}
					s.finishFlight(sl.key, res, nil)
					continue
				}
				ferr := err
				if ferr == nil {
					ferr = fmt.Errorf("service: %s: no result", sl.pt)
				}
				sl.err = ferr
				s.finishFlight(sl.key, nil, ferr)
			}
		}

		// Joined slots: wait the foreign flight out. If its owner was
		// cancelled while we are still live, reclaim the point on the
		// next pass instead of inheriting the foreign cancellation.
		var next []*slot
		for _, w := range waits {
			select {
			case <-w.fl.done:
				switch {
				case w.fl.err == nil:
					w.sl.res = w.fl.res
				case errors.Is(w.fl.err, context.Canceled) || errors.Is(w.fl.err, context.DeadlineExceeded):
					if ctx.Err() == nil {
						next = append(next, w.sl)
					} else {
						w.sl.err = ctx.Err()
					}
				default:
					w.sl.err = w.fl.err
				}
			case <-ctx.Done():
				w.sl.err = ctx.Err()
			}
		}
		pending = next
	}

	var errs []error
	for _, sl := range slots {
		if sl.err != nil {
			errs = append(errs, sl.err)
			continue
		}
		for _, i := range sl.idxs {
			results[i] = sl.res
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return results, nil
}

// finishFlight publishes a flight's outcome and retires it. Waiters
// hold the flight pointer, so removal from the map only stops new
// joins; existing waiters observe res/err through the closed channel.
func (s *Server) finishFlight(key string, res *sim.Result, err error) {
	s.flmu.Lock()
	fl := s.flights[key]
	delete(s.flights, key)
	s.flmu.Unlock()
	fl.res, fl.err = res, err
	close(fl.done)
}

// writeServiceMetrics extends the /metrics scrape with the service
// plane: result-cache counters, coalescing, queue pressure, and job
// states.
func (s *Server) writeServiceMetrics(w io.Writer) {
	if s.cache != nil {
		cs := s.cache.Stats()
		profiling.WriteCounter(w, "gpujoule_result_cache_hits", "Disk result-cache hits.", float64(cs.Hits))
		profiling.WriteCounter(w, "gpujoule_result_cache_misses", "Disk result-cache misses.", float64(cs.Misses))
		profiling.WriteCounter(w, "gpujoule_result_cache_puts", "Disk result-cache entries written.", float64(cs.Puts))
		profiling.WriteCounter(w, "gpujoule_result_cache_corrupt", "Corrupt result-cache entries dropped.", float64(cs.Corrupt))
	}
	s.mu.Lock()
	coalesced := s.coalesced
	depth := len(s.queue)
	states := map[State]int{}
	for _, jj := range s.jobs {
		states[jj.status.State]++
	}
	s.mu.Unlock()
	profiling.WriteCounter(w, "gpujoule_service_coalesced_points", "Points that joined another job's in-flight simulation.", float64(coalesced))
	profiling.WriteGauge(w, "gpujoule_queue_depth", "Jobs waiting in the admission queue.", float64(depth))
	profiling.WriteGauge(w, "gpujoule_queue_capacity", "Admission queue capacity.", float64(cap(s.queue)))
	fmt.Fprintf(w, "# HELP gpujoule_jobs Jobs in the registry by state.\n# TYPE gpujoule_jobs gauge\n")
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		fmt.Fprintf(w, "gpujoule_jobs{state=%q} %d\n", st, states[st])
	}
}

// newID mints a random job id.
func newID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: minting job id: %w", err)
	}
	return "j" + hex.EncodeToString(b[:]), nil
}
