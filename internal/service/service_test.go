package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gpujoule/internal/runner"
	"gpujoule/internal/sim"
)

// tinySpec is the grid the lifecycle tests sweep: small enough to
// simulate in milliseconds, wide enough to exercise multi-point jobs.
func tinySpec() JobSpec {
	return JobSpec{Workloads: "Stream", Scale: 0.05, GPMs: "1,2", BWs: "2x", Topologies: "ring"}
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, s *Server, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (%s), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

// TestGPMParallelClamp checks the service-side cap on intra-run
// parallelism: the effective lane count never lets
// GPMParallel × Executors exceed GOMAXPROCS, and an over-asked server
// still runs jobs to byte-identical results (lanes are not part of
// the cache key, so the clamp can never re-address entries).
func TestGPMParallelClamp(t *testing.T) {
	s := newTestServer(t, Options{Executors: 2, GPMParallel: 1 << 16})

	want := runtime.GOMAXPROCS(0) / 2
	if want < 1 {
		want = 1
	}
	if got := s.Engine().GPMParallel(); got != want {
		t.Errorf("effective lanes = %d, want %d (GOMAXPROCS %d / 2 executors)",
			got, want, runtime.GOMAXPROCS(0))
	}
	if want > 1 && s.Engine().ParallelBudget() == nil {
		t.Error("multi-lane engine has no shared budget")
	}

	st, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := s.Wait(context.Background(), st.ID); err != nil || fin.State != StateDone {
		t.Fatalf("job under clamped lanes: %+v, err %v", fin, err)
	}

	// Asking for nothing keeps the engine lane-less.
	s1 := newTestServer(t, Options{Executors: 2})
	if got := s1.Engine().GPMParallel(); got != 1 {
		t.Errorf("default lanes = %d, want 1", got)
	}
	if s1.Engine().ParallelBudget() != nil {
		t.Error("lane-less engine carries a budget")
	}
}

// TestJobRoundTrip submits the same sweep twice against one server:
// the first execution simulates every point, the second is answered
// entirely from the disk cache — zero new simulations.
func TestJobRoundTrip(t *testing.T) {
	s := newTestServer(t, Options{CacheDir: t.TempDir(), Executors: 1})

	st1, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	fin1, err := s.Wait(context.Background(), st1.ID)
	if err != nil || fin1.State != StateDone {
		t.Fatalf("first job: %+v, err %v", fin1, err)
	}
	if fin1.Points != 2 || fin1.Submitted != 2 || fin1.CacheHits != 0 {
		t.Errorf("cold job counters = %+v, want 2 points all submitted", fin1)
	}
	simulated := s.Engine().Stats().Simulated
	if simulated != 2 {
		t.Fatalf("cold job simulated %d points, want 2", simulated)
	}

	st2, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	fin2, err := s.Wait(context.Background(), st2.ID)
	if err != nil || fin2.State != StateDone {
		t.Fatalf("second job: %+v, err %v", fin2, err)
	}
	if fin2.CacheHits != 2 || fin2.Submitted != 0 {
		t.Errorf("warm job counters = %+v, want 2 cache hits and 0 submitted", fin2)
	}
	if got := s.Engine().Stats().Simulated; got != simulated {
		t.Errorf("warm job re-simulated: engine simulated %d, want %d", got, simulated)
	}

	// Both jobs resolve identical results for identical points.
	_, r1, ok1 := s.Result(st1.ID)
	_, r2, ok2 := s.Result(st2.ID)
	if !ok1 || !ok2 {
		t.Fatal("results unavailable for done jobs")
	}
	for i := range r1 {
		if !reflect.DeepEqual(r1[i].Counts, r2[i].Counts) {
			t.Errorf("point %d: warm result differs from cold", i)
		}
	}
}

// TestEphemeralEngineFootprint checks the daemon-RAM property: the
// shared engine memoizes nothing across jobs — the disk cache, not the
// heap, is the system of record.
func TestEphemeralEngineFootprint(t *testing.T) {
	s := newTestServer(t, Options{CacheDir: t.TempDir(), Executors: 1})
	st, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	if n := s.Engine().Distinct(); n != 0 {
		t.Errorf("engine retains %d memoized results; ephemeral mode must retain none", n)
	}
}

// gate installs a runBatch stub that blocks until released (or the
// job's context is cancelled), then runs the real engine. Installed
// before any Submit, so the executor goroutines observe it via the
// queue's channel ordering.
func gate(s *Server) (release func()) {
	ch := make(chan struct{})
	real := s.runBatch
	s.runBatch = func(ctx context.Context, pts []runner.Point) ([]*sim.Result, error) {
		select {
		case <-ch:
			return real(ctx, pts)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

// TestQueueFullBackpressure fills the bounded admission queue and
// checks the overflow submission is rejected with ErrQueueFull (HTTP
// 429 + Retry-After at the API) rather than buffered.
func TestQueueFullBackpressure(t *testing.T) {
	s := newTestServer(t, Options{QueueCap: 1, Executors: 1})
	release := gate(s)
	defer release()

	st1, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st1.ID, StateRunning) // dequeued: the queue slot is free
	st2, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(tinySpec()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err %v, want ErrQueueFull", err)
	}

	// The same rejection over HTTP: 429 with a Retry-After hint.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"workloads":"Stream","scale":0.05,"gpms":"1","bw":"2x"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("overflow POST: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 lacks a Retry-After hint")
	}

	// Releasing the gate lets the queue drain normally.
	release()
	for _, id := range []string{st1.ID, st2.ID} {
		if fin, err := s.Wait(context.Background(), id); err != nil || fin.State != StateDone {
			t.Errorf("job %s after release: %+v, err %v", id, fin, err)
		}
	}
}

// TestCancelRunningJob cancels a job mid-flight: the engine batch is
// abandoned via context and the job lands in StateCancelled.
func TestCancelRunningJob(t *testing.T) {
	s := newTestServer(t, Options{Executors: 1})
	release := gate(s)
	defer release()

	st, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateRunning)
	if _, ok := s.Cancel(st.ID); !ok {
		t.Fatal("Cancel: job not found")
	}
	fin, err := s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateCancelled {
		t.Errorf("cancelled job state = %s (%s), want cancelled", fin.State, fin.Error)
	}
	// Cancelling a terminal job is a harmless no-op.
	if st2, ok := s.Cancel(st.ID); !ok || st2.State != StateCancelled {
		t.Errorf("re-cancel: ok=%v state=%s", ok, st2.State)
	}
}

// TestCancelQueuedJob cancels a job that was never picked up.
func TestCancelQueuedJob(t *testing.T) {
	s := newTestServer(t, Options{QueueCap: 2, Executors: 1})
	release := gate(s)
	defer release()

	st1, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st1.ID, StateRunning)
	st2, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if fin, ok := s.Cancel(st2.ID); !ok || fin.State != StateCancelled {
		t.Fatalf("queued cancel: ok=%v state=%s", ok, fin.State)
	}
	release()
	if fin, err := s.Wait(context.Background(), st1.ID); err != nil || fin.State != StateDone {
		t.Errorf("survivor job: %+v, err %v", fin, err)
	}
}

// TestJobDeadline checks per-job timeouts: a job whose execution
// outlives TimeoutSeconds fails with the deadline error.
func TestJobDeadline(t *testing.T) {
	s := newTestServer(t, Options{Executors: 1})
	release := gate(s) // never released: the job can only die by deadline
	defer release()

	spec := tinySpec()
	spec.TimeoutSeconds = 0.05
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateFailed || !strings.Contains(fin.Error, "deadline") {
		t.Errorf("timed-out job = %s (%q), want failed with a deadline error", fin.State, fin.Error)
	}
}

// TestGracefulDrain starts a drain while a job is in flight: admission
// stops immediately, the in-flight job completes, and Drain returns.
func TestGracefulDrain(t *testing.T) {
	s := newTestServer(t, Options{CacheDir: t.TempDir(), Executors: 1})
	release := gate(s)
	defer release()

	st, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateRunning)

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	s.BeginDrain() // Drain's own BeginDrain may race our Submit below; force it first
	if _, err := s.Submit(tinySpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err %v, want ErrDraining", err)
	}

	release()
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if fin, _ := s.Status(st.ID); fin.State != StateDone {
		t.Errorf("in-flight job after drain = %s (%s), want done", fin.State, fin.Error)
	}
	// A bounded drain on an already-drained server returns instantly.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("idempotent drain: %v", err)
	}
}

// TestCorruptCacheFallsBackToRecompute truncates every cache entry on
// disk between two daemon lifetimes: the second daemon detects the
// corruption, recomputes, and rewrites clean entries.
func TestCorruptCacheFallsBackToRecompute(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{CacheDir: dir, Executors: 1})
	st, err := s1.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := s1.Wait(context.Background(), st.ID); err != nil || fin.State != StateDone {
		t.Fatalf("seed job: %+v, err %v", fin, err)
	}
	s1.Close()

	// Truncate every entry: simulates a torn disk / partial copy.
	n := 0
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		n++
		return os.WriteFile(path, data[:len(data)/3], 0o644)
	})
	if err != nil || n == 0 {
		t.Fatalf("corrupting %d entries: %v", n, err)
	}

	s2 := newTestServer(t, Options{CacheDir: dir, Executors: 1})
	st2, err := s2.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	fin, err := s2.Wait(context.Background(), st2.ID)
	if err != nil || fin.State != StateDone {
		t.Fatalf("recompute job: %+v, err %v", fin, err)
	}
	if fin.CacheHits != 0 || fin.Submitted != fin.Points {
		t.Errorf("recompute counters = %+v, want every point re-submitted", fin)
	}
	cs := s2.Cache().Stats()
	if cs.Corrupt == 0 {
		t.Error("corruption went undetected")
	}
	if cs.Puts != uint64(fin.Points) {
		t.Errorf("clean entries rewritten = %d, want %d", cs.Puts, fin.Points)
	}

	// Third pass: the rewritten entries serve normally.
	st3, err := s2.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if fin3, err := s2.Wait(context.Background(), st3.ID); err != nil || fin3.CacheHits != fin3.Points {
		t.Errorf("post-recovery job: %+v, err %v, want all cache hits", fin3, err)
	}
}

// TestCoalescing runs two identical jobs concurrently: the second
// joins the first's in-flight simulations instead of re-running them —
// each shared point executes exactly once, and the coalesce counters
// prove it.
func TestCoalescing(t *testing.T) {
	s := newTestServer(t, Options{CacheDir: t.TempDir(), QueueCap: 4, Executors: 2})
	release := gate(s)
	defer release()

	st1, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	// Wait until job 1 owns its flights (Submitted is set immediately
	// before the gated batch call).
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st, _ := s.Status(st1.ID); st.Submitted == st.Points && st.Points > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job 1 never claimed its flights")
		}
		time.Sleep(2 * time.Millisecond)
	}

	st2, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	// Job 2 must join job 1's flights: coalesced on every point, with
	// nothing submitted and nothing served from disk.
	for {
		st, _ := s.Status(st2.ID)
		if st.Coalesced == st.Points && st.Points > 0 {
			if st.Submitted != 0 || st.CacheHits != 0 {
				t.Fatalf("job 2 counters = %+v, want pure coalescing", st)
			}
			break
		}
		if st.State.Terminal() {
			t.Fatalf("job 2 finished before coalescing: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("job 2 never coalesced")
		}
		time.Sleep(2 * time.Millisecond)
	}

	release()
	fin1, err1 := s.Wait(context.Background(), st1.ID)
	fin2, err2 := s.Wait(context.Background(), st2.ID)
	if err1 != nil || err2 != nil || fin1.State != StateDone || fin2.State != StateDone {
		t.Fatalf("jobs: %+v (%v), %+v (%v)", fin1, err1, fin2, err2)
	}
	// The acceptance criterion: each shared point simulated exactly once.
	if got := s.Engine().Stats().Simulated; got != fin1.Points {
		t.Errorf("engine simulated %d points for two identical jobs, want %d", got, fin1.Points)
	}
	if s.Coalesced() != fin1.Points {
		t.Errorf("service coalesced %d points, want %d", s.Coalesced(), fin1.Points)
	}
	_, r1, _ := s.Result(st1.ID)
	_, r2, _ := s.Result(st2.ID)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("point %d: coalesced jobs hold different result objects", i)
		}
	}
}

// TestPersistenceAcrossRestart is the restart half of the acceptance
// criterion: a second daemon on the same cache directory serves the
// sweep without simulating anything, and the result document is
// byte-identical.
func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	resultBytes := func(s *Server) ([]byte, JobStatus) {
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		c := NewClient(ts.URL)
		st, err := c.Submit(context.Background(), tinySpec())
		if err != nil {
			t.Fatal(err)
		}
		fin, err := c.Wait(context.Background(), st.ID, time.Millisecond)
		if err != nil || fin.State != StateDone {
			t.Fatalf("job: %+v, err %v", fin, err)
		}
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw, fin
	}

	s1 := newTestServer(t, Options{CacheDir: dir, Executors: 1})
	cold, _ := resultBytes(s1)
	s1.Close()

	s2 := newTestServer(t, Options{CacheDir: dir, Executors: 1})
	warm, fin := resultBytes(s2)
	if fin.CacheHits != fin.Points || fin.Submitted != 0 {
		t.Errorf("restarted daemon counters = %+v, want all cache hits", fin)
	}
	if got := s2.Engine().Stats().Simulated; got != 0 {
		t.Errorf("restarted daemon simulated %d points, want 0", got)
	}
	if string(cold) != string(warm) {
		t.Errorf("result documents differ across restart:\ncold: %s\nwarm: %s", cold, warm)
	}
}

// TestHTTPSurface exercises the /v1 API end to end over a real
// listener, including validation failures, 404s, premature result
// fetches, and the version endpoint.
func TestHTTPSurface(t *testing.T) {
	s := newTestServer(t, Options{CacheDir: t.TempDir(), Executors: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	if _, err := c.Submit(ctx, JobSpec{Workloads: "NoSuchWorkload"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := c.Submit(ctx, JobSpec{Workloads: "Stream", GPMs: "zero"}); err == nil {
		t.Error("bad grid accepted")
	}
	if _, err := c.Status(ctx, "jdeadbeef"); err == nil {
		t.Error("status of unknown job succeeded")
	}
	if _, err := c.Result(ctx, "jdeadbeef"); err == nil {
		t.Error("result of unknown job succeeded")
	}

	doc, err := c.RunSweep(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Points) != 2 || doc.Points[0].Workload != "Stream" || doc.Points[0].Result == nil {
		t.Fatalf("result doc = %+v", doc)
	}
	if doc.Points[0].SimKey == doc.Points[1].SimKey {
		t.Error("distinct grid points share a sim key")
	}

	v, err := c.Version(ctx)
	if err != nil || !strings.Contains(v, "gpujouled") {
		t.Errorf("version = %q, err %v", v, err)
	}

	// The introspection plane is mounted on the same handler, and the
	// scrape carries the service extensions.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"gpujoule_result_cache_hits",
		"gpujoule_result_cache_misses",
		"gpujoule_service_coalesced_points",
		"gpujoule_queue_depth",
		"gpujoule_queue_capacity 16",
		`gpujoule_jobs{state="done"} 1`,
		"gpujoule_runner_workers",
		"gpujoule_gpm_parallel_lanes",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The jobs listing carries the finished job.
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].State != StateDone {
		t.Errorf("jobs listing = %+v", list.Jobs)
	}
}

// TestJobRetention checks the registry bound: terminal jobs beyond
// KeepJobs are pruned oldest-first.
func TestJobRetention(t *testing.T) {
	s := newTestServer(t, Options{CacheDir: t.TempDir(), Executors: 1, KeepJobs: 2, QueueCap: 8})
	var ids []string
	for i := 0; i < 4; i++ {
		st, err := s.Submit(tinySpec())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), st.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if _, ok := s.Status(ids[0]); ok {
		t.Error("oldest job survived retention")
	}
	if _, ok := s.Status(ids[3]); !ok {
		t.Error("newest job was pruned")
	}
	if got := len(s.Jobs()); got != 2 {
		t.Errorf("retained %d jobs, want 2", got)
	}
}
