// Package silicon provides the reference-hardware substitute for the
// NVIDIA Tesla K40 that the paper calibrates and validates GPUJoule
// against (§IV). It couples the performance engine of internal/sim
// with a hidden bottom-up energy model and an NVML-like power sensor.
//
// The hidden model deliberately contains effects a top-down
// instruction-based model cannot express:
//
//   - control-divergence energy: inactive lanes in a divergent warp
//     still burn a fraction of the active-lane energy (§IV-A notes
//     GPUJoule cannot see partial SM utilization);
//   - utilization-dependent memory-system background power: the DRAM
//     interface, memory controllers, and L2 clocks draw near-constant
//     power while kernels run, which saturating calibration
//     microbenchmarks amortize into per-transaction costs but
//     low-memory-utilization applications (RSBench, CoMD) do not pay
//     per transaction — the first Fig. 4b outlier mechanism;
//   - instruction-interaction energy when compute and memory pipes are
//     concurrently busy (the residual errors of Fig. 4a);
//   - a power sensor with a 15 ms refresh period that blurs kernel
//     power with inter-launch idle power for apps structured as many
//     short launches (BFS, MiniAMR) — the second Fig. 4b outlier
//     mechanism (§IV-B2).
//
// Nothing in this package is visible to the GPUJoule model: calibration
// observes only sensor readings and event counts, exactly like the
// paper's methodology against real hardware.
package silicon

import (
	"context"
	"fmt"
	"math"

	"gpujoule/internal/core"
	"gpujoule/internal/dvfs"
	"gpujoule/internal/isa"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
)

// Hidden is the bottom-up parameter set of the reference silicon.
type Hidden struct {
	// Base is the per-event energy table the silicon actually
	// dissipates (the physical ground truth that calibration should
	// recover). It reuses the Eq. 4 terms as its linear core.
	Base *core.Model

	// DivergenceFactor is the fraction of an active lane's energy that
	// an inactive lane of a divergent warp still dissipates.
	DivergenceFactor float64

	// MemBackgroundWatts is the memory-system background power while
	// kernels with any global-memory activity run; it fades as DRAM
	// utilization u rises, as (1-u)^2 (row activity replaces standby).
	MemBackgroundWatts float64

	// Interaction[kind] scales the energy added (or saved) when the
	// compute pipes and the given data-movement class are concurrently
	// busy: E += Interaction[kind] * min(Ecompute, Ekind).
	Interaction [isa.NumTxnKinds]float64

	// SensorWindowSeconds is the power-sensor refresh period (15 ms on
	// the K40 board, §IV-B2).
	SensorWindowSeconds float64

	// SensorQuantumWatts is the sensor's reporting resolution.
	SensorQuantumWatts float64

	// Curve is the silicon's V/f curve: the operating points the board
	// firmware will actually accept. nil restricts the device to the
	// nominal point.
	Curve *dvfs.Curve

	// LeakageWatts is the slice of ConstPower that is subthreshold
	// leakage; it scales with the voltage ratio cubed, a superlinear
	// effect the top-down model's flat constant-power term cannot see.
	LeakageWatts float64

	// ClockTreeWatts is the slice of ConstPower burned by the always-on
	// clock distribution; it scales with f·V² (it is switching energy
	// spent per cycle regardless of work).
	ClockTreeWatts float64

	// DynFreqSlope adds a frequency-linear term to per-event dynamic
	// energy: at frequency ratio fr the silicon pays V²·(1+slope·(fr−1))
	// per event (short-circuit currents grow with clock rate). The
	// top-down rule scales by V² alone, so this is a second honest
	// model-error source per-point recalibration must absorb.
	DynFreqSlope float64
}

// K40Hidden returns the reference-silicon parameterization used
// throughout the reproduction.
func K40Hidden() Hidden {
	h := Hidden{
		Base:                core.K40Model(),
		DivergenceFactor:    0.65,
		MemBackgroundWatts:  26,
		SensorWindowSeconds: 15e-3,
		// Steady-state measurements average many raw samples, so the
		// effective reporting resolution is finer than the sensor's
		// 1 W register.
		SensorQuantumWatts: 0.25,
		Curve:              dvfs.K40Curve(),
		LeakageWatts:       9,
		ClockTreeWatts:     6,
		DynFreqSlope:       0.08,
	}
	h.Base.Name = "silicon-K40"
	h.Interaction[isa.TxnShmToRF] = -0.05
	h.Interaction[isa.TxnL1ToRF] = 0.04
	h.Interaction[isa.TxnL2ToL1] = 0.05
	h.Interaction[isa.TxnDRAMToL2] = 0.05
	return h
}

// Device is one piece of reference hardware (a K40-class GPU).
type Device struct {
	cfg sim.Config
	hid Hidden
}

// NewK40 returns the reference device: one basic GPM (§V-A1) with the
// hidden K40 energy model.
func NewK40() *Device {
	return &Device{cfg: sim.BaseGPM(), hid: K40Hidden()}
}

// NewDevice returns a reference device with explicit configuration and
// hidden parameters (for tests and sensitivity studies).
func NewDevice(cfg sim.Config, hid Hidden) *Device {
	return &Device{cfg: cfg, hid: hid}
}

// Config returns the device's architectural configuration.
func (d *Device) Config() sim.Config { return d.cfg }

// Curve returns the device's V/f curve (nil if the device only runs at
// the nominal point).
func (d *Device) Curve() *dvfs.Curve { return d.hid.Curve }

// AtOperatingPoint returns the device reclocked to an operating point
// on its V/f curve. The nominal point returns d itself. The reclocked
// silicon dissipates what real silicon would, not what the top-down
// scaling rule predicts: only the core-domain terms (EPI, EPStall, and
// the on-module SRAM movement costs) scale with V²·(1+slope·(fr−1));
// the DRAM interface and inter-module links live on fixed voltage
// rails and keep their per-event costs; and constant power picks up the
// superlinear leakage (V³) and clock-tree (f·V²) deltas. Calibration
// against this device therefore has honest, frequency-dependent model
// error to recover — exactly the Fig. 4 situation at a new clock.
func (d *Device) AtOperatingPoint(p dvfs.OperatingPoint) (*Device, error) {
	if p.IsNominal() {
		return d, nil
	}
	if d.hid.Curve == nil {
		return nil, fmt.Errorf("silicon: device %q has no V/f curve: %w", d.hid.Base.Name, dvfs.ErrOffCurve)
	}
	pt, err := d.hid.Curve.At(p.FreqHz)
	if err != nil {
		return nil, err
	}
	if p.Voltage != 0 && p.Voltage != pt.Voltage {
		return nil, fmt.Errorf("silicon: %g V at %g MHz (curve says %g V): %w",
			p.Voltage, pt.FreqHz/1e6, pt.Voltage, dvfs.ErrOffCurve)
	}

	fr := pt.FreqHz / sim.NominalClockHz
	vr := pt.Voltage / sim.NominalVoltage
	dyn := vr * vr * (1 + d.hid.DynFreqSlope*(fr-1))

	base := d.hid.Base.Clone()
	for op := range base.EPI {
		base.EPI[op] *= dyn
	}
	base.EPStall *= dyn
	// Core-voltage-domain movement only: shared memory, L1, and L2 are
	// on-module SRAM. DRAM and the inter-GPM links keep their costs.
	base.EPT[isa.TxnShmToRF] *= dyn
	base.EPT[isa.TxnL1ToRF] *= dyn
	base.EPT[isa.TxnL2ToL1] *= dyn
	base.ConstPower += d.hid.LeakageWatts*(vr*vr*vr-1) + d.hid.ClockTreeWatts*(fr*vr*vr-1)
	base.ClockHz = pt.FreqHz
	base.Name = fmt.Sprintf("%s@%gMHz", d.hid.Base.Name, pt.FreqHz/1e6)

	hid := d.hid
	hid.Base = base
	return &Device{cfg: dvfs.Apply(d.cfg, pt), hid: hid}, nil
}

// ClockHz returns the device clock, for converting measured cycle
// counts to seconds.
func (d *Device) ClockHz() float64 { return d.hid.Base.ClockHz }

// IdlePowerReading returns the sensor's reading with no kernels
// running: the constant board power (quantized).
func (d *Device) IdlePowerReading() float64 {
	return d.quantize(d.hid.Base.ConstPower)
}

// Measurement is the observable outcome of running an application on
// the reference hardware: performance counters (profilers expose
// those) and sensor-derived power/energy. TrueJoules is the hidden
// ground truth, exported only so tests and experiment harnesses can
// quantify sensor error; a model under calibration must not read it.
type Measurement struct {
	// Result holds the performance counters of the run.
	Result *sim.Result
	// SensorJoules is the measured (sensor-derived) energy of the
	// whole run, including inter-launch gaps.
	SensorJoules float64
	// KernelPowerWatts is the sensor-attributed average power during
	// kernel execution (the Eq. 5 "Power_active").
	KernelPowerWatts float64
	// KernelSeconds is the total in-kernel execution time.
	KernelSeconds float64
	// TrueJoules is the hidden ground-truth energy.
	TrueJoules float64
}

// Run executes the application on the reference hardware and returns
// its measurement.
func (d *Device) Run(app *trace.App) (*Measurement, error) {
	res, err := sim.Simulate(context.Background(), d.cfg, app)
	if err != nil {
		return nil, err
	}
	return d.measure(res), nil
}

// measure applies the hidden energy model and the sensor model to a
// completed run.
func (d *Device) measure(res *sim.Result) *Measurement {
	clk := d.hid.Base.ClockHz
	m := &Measurement{Result: res}

	totalSeconds := float64(res.Counts.Cycles) / clk
	var kernelSeconds, trueKernelJoules float64
	perLaunch := make([]float64, len(res.Launches))
	for i := range res.Launches {
		l := &res.Launches[i]
		e := d.launchTrueJoules(l)
		perLaunch[i] = e
		trueKernelJoules += e
		kernelSeconds += l.Duration() / clk
	}
	gapSeconds := totalSeconds - kernelSeconds
	if gapSeconds < 0 {
		gapSeconds = 0
	}
	idle := d.hid.Base.ConstPower
	m.TrueJoules = trueKernelJoules + idle*gapSeconds
	m.KernelSeconds = kernelSeconds

	// Sensor model: a reading attributed to a launch blends the
	// launch's true power with the window-average power of the whole
	// run, weighted by how much of a sensor window the launch spans.
	blurPower := idle
	if totalSeconds > 0 {
		blurPower = m.TrueJoules / totalSeconds
	}
	var sensorKernelJoules, weightedPower float64
	for i := range res.Launches {
		l := &res.Launches[i]
		dur := l.Duration() / clk
		if dur <= 0 {
			continue
		}
		truePower := perLaunch[i] / dur
		w := dur / d.hid.SensorWindowSeconds
		if w > 1 {
			w = 1
		}
		reading := d.quantize(w*truePower + (1-w)*blurPower)
		sensorKernelJoules += reading * dur
		weightedPower += reading * dur
	}
	m.SensorJoules = sensorKernelJoules + d.quantize(idle)*gapSeconds
	if kernelSeconds > 0 {
		m.KernelPowerWatts = weightedPower / kernelSeconds
	}
	return m
}

// launchTrueJoules evaluates the hidden bottom-up model for one launch.
func (d *Device) launchTrueJoules(l *sim.LaunchStats) float64 {
	b := d.hid.Base.Estimate(&l.Counts)
	e := b.Total()

	// Control divergence: inactive lanes of divergent warps.
	var divJ float64
	for op := isa.OpFAdd32; op <= isa.OpRcp32; op++ {
		inactive := 32*l.Counts.WarpInst[op] - l.Counts.Inst[op]
		divJ += d.hid.Base.EPI[op] * float64(inactive)
	}
	e += d.hid.DivergenceFactor * divJ

	// Utilization-dependent memory-system background power. Kernels
	// that never touch global memory leave the memory subsystem in its
	// idle state (already covered by constant power).
	memTxns := l.Counts.Txn[isa.TxnL1ToRF] + l.Counts.Txn[isa.TxnL2ToL1] + l.Counts.Txn[isa.TxnDRAMToL2]
	if memTxns > 0 {
		u := d.dramUtilization(l)
		seconds := l.Duration() / d.hid.Base.ClockHz
		e += d.hid.MemBackgroundWatts * (1 - u) * (1 - u) * seconds
	}

	// Concurrent compute/data-movement interaction.
	e += d.interactionJoules(&l.Counts, b)
	return e
}

// dramUtilization returns the launch's DRAM bandwidth utilization in
// [0, 1].
func (d *Device) dramUtilization(l *sim.LaunchStats) float64 {
	dur := l.Duration()
	if dur <= 0 {
		return 0
	}
	bytes := float64(l.Counts.TotalTransactionBytes(isa.TxnDRAMToL2))
	u := bytes / (dur * d.cfg.DRAMBytesPerCoreCycle() * float64(d.cfg.GPMs))
	return math.Min(u, 1)
}

// interactionJoules evaluates the concurrent-pipe interaction term.
func (d *Device) interactionJoules(c *isa.Counts, b core.Breakdown) float64 {
	perKind := [isa.NumTxnKinds]float64{
		isa.TxnShmToRF:  b.ShmToRF,
		isa.TxnL1ToRF:   b.L1ToRF,
		isa.TxnL2ToL1:   b.L2ToL1,
		isa.TxnDRAMToL2: b.DRAMToL2,
	}
	var e float64
	for kind, coef := range d.hid.Interaction {
		if coef == 0 {
			continue
		}
		e += coef * math.Min(b.Compute, perKind[kind])
	}
	return e
}

// quantize rounds a power reading to the sensor's resolution.
func (d *Device) quantize(watts float64) float64 {
	q := d.hid.SensorQuantumWatts
	if q <= 0 {
		return watts
	}
	return math.Round(watts/q) * q
}
