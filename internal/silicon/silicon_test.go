package silicon

import (
	"math"
	"testing"

	"gpujoule/internal/isa"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
)

func computeApp(name string, active uint8, gapCycles float64, launches int) *trace.App {
	k := &trace.Kernel{
		Name: name, Grid: 256, WarpsPerCTA: 8, Iters: 8,
		Body: []trace.Inst{{Op: isa.OpFFMA32, Active: active, Times: 40}},
	}
	return &trace.App{
		Name:          name,
		HostGapCycles: gapCycles,
		Launches:      []trace.Launch{{Kernel: k, Count: launches}},
	}
}

func memApp(name string, regionBytes uint64, times, iters int, pat trace.Pattern) *trace.App {
	k := &trace.Kernel{
		Name: name, Grid: 256, WarpsPerCTA: 8, Iters: iters,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: pat}, Times: times},
			{Op: isa.OpFFMA32, Times: 4},
		},
	}
	return &trace.App{
		Name:          name,
		Regions:       []trace.Region{{Name: "r", Bytes: regionBytes}},
		HostGapCycles: 1,
		Launches:      []trace.Launch{{Kernel: k}},
	}
}

func TestIdlePowerReading(t *testing.T) {
	dev := NewK40()
	if got := dev.IdlePowerReading(); got != 25 {
		t.Errorf("idle reading %g, want 25", got)
	}
	if dev.ClockHz() != 1e9 {
		t.Errorf("clock %g, want 1 GHz", dev.ClockHz())
	}
	if dev.Config().SMsPerGPM != 16 {
		t.Error("reference device is the 16-SM basic GPM")
	}
}

func TestLongSteadyKernelSensorIsAccurate(t *testing.T) {
	// With kernels far shorter than the 15 ms window, the sensor blends
	// with the run average — which, with negligible gaps, is the kernel
	// power itself. Sensor and truth must agree within quantization.
	dev := NewK40()
	m, err := dev.Run(computeApp("steady", 32, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	err2 := (m.SensorJoules - m.TrueJoules) / m.TrueJoules * 100
	if math.Abs(err2) > 2 {
		t.Errorf("steady-state sensor error %.2f%%, want within 2%%", err2)
	}
}

func TestShortLaunchesWithGapsUnderread(t *testing.T) {
	// Many short kernels separated by long host gaps: the sensor blends
	// kernel power with idle gaps, underreporting energy (§IV-B2 — the
	// BFS/MiniAMR mechanism).
	dev := NewK40()
	gappy, err := dev.Run(computeApp("gappy", 32, 400e3, 20))
	if err != nil {
		t.Fatal(err)
	}
	if gappy.SensorJoules >= gappy.TrueJoules {
		t.Errorf("blurred sensor should underread: sensor %g >= true %g",
			gappy.SensorJoules, gappy.TrueJoules)
	}
	under := (gappy.TrueJoules - gappy.SensorJoules) / gappy.TrueJoules * 100
	if under < 5 {
		t.Errorf("underread %.1f%%, want a substantial artifact", under)
	}
}

func TestDivergenceCostsEnergy(t *testing.T) {
	// Same warp instruction count, half the active threads: the hidden
	// model charges inactive lanes a fraction of active-lane energy, so
	// per-thread-instruction energy is higher when divergent.
	dev := NewK40()
	full, err := dev.Run(computeApp("full", 32, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	div, err := dev.Run(computeApp("div", 16, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	fullPer := full.TrueJoules / float64(full.Result.Counts.Inst[isa.OpFFMA32])
	divPer := div.TrueJoules / float64(div.Result.Counts.Inst[isa.OpFFMA32])
	if divPer <= fullPer {
		t.Errorf("divergent execution must cost more per thread-instruction: %g <= %g",
			divPer, fullPer)
	}
}

func TestMemBackgroundHitsLowUtilization(t *testing.T) {
	// A kernel with light memory traffic pays nearly the full memory
	// background power; a DRAM-saturating kernel pays almost none. The
	// gap is what the top-down model cannot see (the RSBench/CoMD
	// mechanism).
	dev := NewK40()
	// Broadcast reads over a tiny cached region, long-running: DRAM
	// utilization settles near zero after warmup.
	light, err := dev.Run(memApp("light", 1<<20, 1, 32, trace.PatShared))
	if err != nil {
		t.Fatal(err)
	}
	base := dev.hid.Base.Estimate(&light.Result.Counts).Total()
	// True energy must exceed the linear Eq. 4 part by roughly
	// MemBackground * kernel time.
	extra := light.TrueJoules - base
	wantMin := 0.5 * dev.hid.MemBackgroundWatts * light.KernelSeconds
	if extra < wantMin {
		t.Errorf("low-utilization run should pay background power: extra %g < %g", extra, wantMin)
	}

	heavy, err := dev.Run(memApp("heavy", 256<<20, 12, 8, trace.PatRandom)) // DRAM saturated
	if err != nil {
		t.Fatal(err)
	}
	heavyBase := dev.hid.Base.Estimate(&heavy.Result.Counts).Total()
	heavyExtraFrac := (heavy.TrueJoules - heavyBase) / heavy.TrueJoules
	lightExtraFrac := extra / light.TrueJoules
	if heavyExtraFrac >= lightExtraFrac {
		t.Errorf("background share must fall with utilization: heavy %.3f >= light %.3f",
			heavyExtraFrac, lightExtraFrac)
	}
}

func TestInteractionAffectsMixes(t *testing.T) {
	// Pure compute pays no interaction energy; a compute+DRAM mix does.
	dev := NewK40()
	pure, err := dev.Run(computeApp("pure", 32, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	pureBase := dev.hid.Base.Estimate(&pure.Result.Counts).Total()
	// Divergence is zero (full warps), memory background zero (no
	// global traffic): truth must equal the linear model exactly.
	if math.Abs(pure.TrueJoules-pureBase) > 1e-12 {
		t.Errorf("pure compute truth %g != linear %g", pure.TrueJoules, pureBase)
	}

	var interacting isa.Counts
	interacting.Inst[isa.OpFAdd64] = 1e9
	interacting.WarpInst[isa.OpFAdd64] = 1e9 / 32
	interacting.Txn[isa.TxnDRAMToL2] = 1e7
	interacting.Cycles = 1e6
	interacting.SMCount = 16
	interacting.GPMCount = 1
	l := &sim.LaunchStats{Kernel: "x", Start: 0, End: 1e6, Counts: interacting}
	truth := dev.launchTrueJoules(l)
	linear := dev.hid.Base.Estimate(&interacting).Total()
	if truth <= linear {
		t.Error("compute+DRAM mix must pay interaction energy above the linear model")
	}
}

func TestQuantization(t *testing.T) {
	dev := NewK40()
	if got := dev.quantize(100.13); got != 100.25 {
		t.Errorf("quantize(100.13) = %g, want 100.25 at 0.25 W resolution", got)
	}
	dev.hid.SensorQuantumWatts = 0
	if got := dev.quantize(100.13); got != 100.13 {
		t.Error("zero quantum disables quantization")
	}
}

func TestMeasurementFields(t *testing.T) {
	dev := NewK40()
	m, err := dev.Run(computeApp("fields", 32, 1000, 2))
	if err != nil {
		t.Fatal(err)
	}
	if m.KernelSeconds <= 0 || m.KernelPowerWatts <= 0 {
		t.Error("kernel time and power must be positive")
	}
	if m.SensorJoules <= 0 || m.TrueJoules <= 0 {
		t.Error("energies must be positive")
	}
	total := float64(m.Result.Counts.Cycles) / dev.ClockHz()
	if m.KernelSeconds > total {
		t.Error("kernel time cannot exceed total time")
	}
}
