package silicon

import (
	"errors"
	"math"
	"testing"

	"gpujoule/internal/dvfs"
	"gpujoule/internal/isa"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
)

func computeApp(name string, active uint8, gapCycles float64, launches int) *trace.App {
	k := &trace.Kernel{
		Name: name, Grid: 256, WarpsPerCTA: 8, Iters: 8,
		Body: []trace.Inst{{Op: isa.OpFFMA32, Active: active, Times: 40}},
	}
	return &trace.App{
		Name:          name,
		HostGapCycles: gapCycles,
		Launches:      []trace.Launch{{Kernel: k, Count: launches}},
	}
}

func memApp(name string, regionBytes uint64, times, iters int, pat trace.Pattern) *trace.App {
	k := &trace.Kernel{
		Name: name, Grid: 256, WarpsPerCTA: 8, Iters: iters,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: pat}, Times: times},
			{Op: isa.OpFFMA32, Times: 4},
		},
	}
	return &trace.App{
		Name:          name,
		Regions:       []trace.Region{{Name: "r", Bytes: regionBytes}},
		HostGapCycles: 1,
		Launches:      []trace.Launch{{Kernel: k}},
	}
}

func TestIdlePowerReading(t *testing.T) {
	dev := NewK40()
	if got := dev.IdlePowerReading(); got != 25 {
		t.Errorf("idle reading %g, want 25", got)
	}
	if dev.ClockHz() != 1e9 {
		t.Errorf("clock %g, want 1 GHz", dev.ClockHz())
	}
	if dev.Config().SMsPerGPM != 16 {
		t.Error("reference device is the 16-SM basic GPM")
	}
}

func TestLongSteadyKernelSensorIsAccurate(t *testing.T) {
	// With kernels far shorter than the 15 ms window, the sensor blends
	// with the run average — which, with negligible gaps, is the kernel
	// power itself. Sensor and truth must agree within quantization.
	dev := NewK40()
	m, err := dev.Run(computeApp("steady", 32, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	err2 := (m.SensorJoules - m.TrueJoules) / m.TrueJoules * 100
	if math.Abs(err2) > 2 {
		t.Errorf("steady-state sensor error %.2f%%, want within 2%%", err2)
	}
}

func TestShortLaunchesWithGapsUnderread(t *testing.T) {
	// Many short kernels separated by long host gaps: the sensor blends
	// kernel power with idle gaps, underreporting energy (§IV-B2 — the
	// BFS/MiniAMR mechanism).
	dev := NewK40()
	gappy, err := dev.Run(computeApp("gappy", 32, 400e3, 20))
	if err != nil {
		t.Fatal(err)
	}
	if gappy.SensorJoules >= gappy.TrueJoules {
		t.Errorf("blurred sensor should underread: sensor %g >= true %g",
			gappy.SensorJoules, gappy.TrueJoules)
	}
	under := (gappy.TrueJoules - gappy.SensorJoules) / gappy.TrueJoules * 100
	if under < 5 {
		t.Errorf("underread %.1f%%, want a substantial artifact", under)
	}
}

func TestDivergenceCostsEnergy(t *testing.T) {
	// Same warp instruction count, half the active threads: the hidden
	// model charges inactive lanes a fraction of active-lane energy, so
	// per-thread-instruction energy is higher when divergent.
	dev := NewK40()
	full, err := dev.Run(computeApp("full", 32, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	div, err := dev.Run(computeApp("div", 16, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	fullPer := full.TrueJoules / float64(full.Result.Counts.Inst[isa.OpFFMA32])
	divPer := div.TrueJoules / float64(div.Result.Counts.Inst[isa.OpFFMA32])
	if divPer <= fullPer {
		t.Errorf("divergent execution must cost more per thread-instruction: %g <= %g",
			divPer, fullPer)
	}
}

func TestMemBackgroundHitsLowUtilization(t *testing.T) {
	// A kernel with light memory traffic pays nearly the full memory
	// background power; a DRAM-saturating kernel pays almost none. The
	// gap is what the top-down model cannot see (the RSBench/CoMD
	// mechanism).
	dev := NewK40()
	// Broadcast reads over a tiny cached region, long-running: DRAM
	// utilization settles near zero after warmup.
	light, err := dev.Run(memApp("light", 1<<20, 1, 32, trace.PatShared))
	if err != nil {
		t.Fatal(err)
	}
	base := dev.hid.Base.Estimate(&light.Result.Counts).Total()
	// True energy must exceed the linear Eq. 4 part by roughly
	// MemBackground * kernel time.
	extra := light.TrueJoules - base
	wantMin := 0.5 * dev.hid.MemBackgroundWatts * light.KernelSeconds
	if extra < wantMin {
		t.Errorf("low-utilization run should pay background power: extra %g < %g", extra, wantMin)
	}

	heavy, err := dev.Run(memApp("heavy", 256<<20, 12, 8, trace.PatRandom)) // DRAM saturated
	if err != nil {
		t.Fatal(err)
	}
	heavyBase := dev.hid.Base.Estimate(&heavy.Result.Counts).Total()
	heavyExtraFrac := (heavy.TrueJoules - heavyBase) / heavy.TrueJoules
	lightExtraFrac := extra / light.TrueJoules
	if heavyExtraFrac >= lightExtraFrac {
		t.Errorf("background share must fall with utilization: heavy %.3f >= light %.3f",
			heavyExtraFrac, lightExtraFrac)
	}
}

func TestInteractionAffectsMixes(t *testing.T) {
	// Pure compute pays no interaction energy; a compute+DRAM mix does.
	dev := NewK40()
	pure, err := dev.Run(computeApp("pure", 32, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	pureBase := dev.hid.Base.Estimate(&pure.Result.Counts).Total()
	// Divergence is zero (full warps), memory background zero (no
	// global traffic): truth must equal the linear model exactly.
	if math.Abs(pure.TrueJoules-pureBase) > 1e-12 {
		t.Errorf("pure compute truth %g != linear %g", pure.TrueJoules, pureBase)
	}

	var interacting isa.Counts
	interacting.Inst[isa.OpFAdd64] = 1e9
	interacting.WarpInst[isa.OpFAdd64] = 1e9 / 32
	interacting.Txn[isa.TxnDRAMToL2] = 1e7
	interacting.Cycles = 1e6
	interacting.SMCount = 16
	interacting.GPMCount = 1
	l := &sim.LaunchStats{Kernel: "x", Start: 0, End: 1e6, Counts: interacting}
	truth := dev.launchTrueJoules(l)
	linear := dev.hid.Base.Estimate(&interacting).Total()
	if truth <= linear {
		t.Error("compute+DRAM mix must pay interaction energy above the linear model")
	}
}

func TestQuantization(t *testing.T) {
	dev := NewK40()
	if got := dev.quantize(100.13); got != 100.25 {
		t.Errorf("quantize(100.13) = %g, want 100.25 at 0.25 W resolution", got)
	}
	dev.hid.SensorQuantumWatts = 0
	if got := dev.quantize(100.13); got != 100.13 {
		t.Error("zero quantum disables quantization")
	}
}

func TestMeasurementFields(t *testing.T) {
	dev := NewK40()
	m, err := dev.Run(computeApp("fields", 32, 1000, 2))
	if err != nil {
		t.Fatal(err)
	}
	if m.KernelSeconds <= 0 || m.KernelPowerWatts <= 0 {
		t.Error("kernel time and power must be positive")
	}
	if m.SensorJoules <= 0 || m.TrueJoules <= 0 {
		t.Error("energies must be positive")
	}
	total := float64(m.Result.Counts.Cycles) / dev.ClockHz()
	if m.KernelSeconds > total {
		t.Error("kernel time cannot exceed total time")
	}
}

func TestAtOperatingPointNominalIdentity(t *testing.T) {
	dev := NewK40()
	rd, err := dev.AtOperatingPoint(dvfs.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	if rd != dev {
		t.Error("nominal AtOperatingPoint must return the same device")
	}
	if rd, err = dev.AtOperatingPoint(dvfs.OperatingPoint{}); err != nil || rd != dev {
		t.Errorf("zero operating point: dev=%p rd=%p err=%v", dev, rd, err)
	}
}

func TestAtOperatingPointOffCurve(t *testing.T) {
	dev := NewK40()
	if _, err := dev.AtOperatingPoint(dvfs.OperatingPoint{FreqHz: 850e6}); !errors.Is(err, dvfs.ErrOffCurve) {
		t.Errorf("850 MHz error = %v, want ErrOffCurve", err)
	}
	// Right frequency, wrong voltage.
	if _, err := dev.AtOperatingPoint(dvfs.OperatingPoint{FreqHz: 800e6, Voltage: 1.0}); !errors.Is(err, dvfs.ErrOffCurve) {
		t.Errorf("800 MHz @ 1.0 V error = %v, want ErrOffCurve", err)
	}
}

// TestReclockedSiliconDirections pins the hidden model's frequency
// behavior: at a lower point the dynamic per-event costs drop (V²), the
// idle power drops (leakage + clock tree run below nominal), and a
// fixed workload takes longer in wall time.
func TestReclockedSiliconDirections(t *testing.T) {
	dev := NewK40()
	low, err := dev.AtOperatingPoint(dvfs.OperatingPoint{FreqHz: 600e6, Voltage: 0.80})
	if err != nil {
		t.Fatal(err)
	}
	if low.ClockHz() != 600e6 {
		t.Errorf("reclocked ClockHz = %g, want 600e6", low.ClockHz())
	}
	if low.IdlePowerReading() >= dev.IdlePowerReading() {
		t.Errorf("idle power %g at 600 MHz, want below nominal %g", low.IdlePowerReading(), dev.IdlePowerReading())
	}
	app := computeApp("reclock", 32, 1, 1)
	nm, err := dev.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := low.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	nomSecs := float64(nm.Result.Counts.Cycles) / dev.ClockHz()
	lowSecs := float64(lm.Result.Counts.Cycles) / low.ClockHz()
	if lowSecs <= nomSecs {
		t.Errorf("wall time %g s at 600 MHz, want above nominal %g s", lowSecs, nomSecs)
	}
	// Compute-bound work at 0.80 V: dynamic energy falls faster than
	// the stretched runtime grows the (now smaller) constant term.
	if lm.TrueJoules >= nm.TrueJoules {
		t.Errorf("true energy %g J at 600 MHz, want below nominal %g J", lm.TrueJoules, nm.TrueJoules)
	}

	high, err := dev.AtOperatingPoint(dvfs.OperatingPoint{FreqHz: 1200e6})
	if err != nil {
		t.Fatal(err)
	}
	if high.IdlePowerReading() <= dev.IdlePowerReading() {
		t.Errorf("idle power %g at 1200 MHz, want above nominal %g", high.IdlePowerReading(), dev.IdlePowerReading())
	}
}
