package sim

import (
	"testing"

	"gpujoule/internal/isa"
	"gpujoule/internal/trace"
)

// The analytical tests validate the performance engine against
// closed-form bounds, the way a simulator paper would sanity-check its
// model: a bandwidth-bound kernel's runtime must approach
// traffic/bandwidth, and an issue-bound kernel's runtime must approach
// instructions/issue-rate.

func TestAnalyticalDRAMBound(t *testing.T) {
	// A pure streaming kernel with ample parallelism: runtime must land
	// within ~35% of the DRAM service bound (latency ramp, queue skew,
	// and tail account for the slack; it must never beat the bound).
	app := streamApp(1024, 8, 16, 512<<20)
	cfg := BaseGPM()
	r := mustRun(t, cfg, app)

	bytes := float64(r.Counts.TotalTransactionBytes(isa.TxnDRAMToL2))
	bound := bytes / cfg.DRAMBytesPerCycle
	got := r.Cycles()
	if got < bound {
		t.Fatalf("runtime %.0f beat the DRAM bound %.0f — bandwidth accounting broken", got, bound)
	}
	if got > bound*1.35 {
		t.Errorf("streaming runtime %.0f, want within 35%% of the DRAM bound %.0f", got, bound)
	}
}

func TestAnalyticalIssueBound(t *testing.T) {
	// A pure-ALU kernel: runtime must land within ~25% of total issue
	// slots divided by machine issue width.
	k := &trace.Kernel{
		Name: "alu", Grid: 1024, WarpsPerCTA: 8, Iters: 8,
		Body: []trace.Inst{{Op: isa.OpFFMA32, Times: 50}},
	}
	app := &trace.App{Name: "alu", Launches: []trace.Launch{{Kernel: k}}}
	cfg := BaseGPM()
	r := mustRun(t, cfg, app)

	slots := float64(r.Counts.WarpInst[isa.OpFFMA32]) * float64(isa.OpFFMA32.IssueCycles())
	bound := slots / float64(cfg.TotalSMs())
	got := r.Cycles()
	if got < bound {
		t.Fatalf("runtime %.0f beat the issue bound %.0f", got, bound)
	}
	if got > bound*1.25 {
		t.Errorf("ALU runtime %.0f, want within 25%% of the issue bound %.0f", got, bound)
	}
}

func TestAnalyticalRingBisectionBound(t *testing.T) {
	// All-remote traffic on a ring: aggregate remote throughput is
	// bounded by total link capacity divided by average hop count, so
	// runtime >= hop-weighted bytes / total link bandwidth.
	k := &trace.Kernel{
		Name: "remote", Grid: 512, WarpsPerCTA: 8, Iters: 8,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatRandom}},
		},
	}
	app := &trace.App{Name: "remote",
		Regions:  []trace.Region{{Name: "r", Bytes: 512 << 20, Home: trace.HomeStriped}},
		Launches: []trace.Launch{{Kernel: k}}}
	cfg := MultiGPM(8, BW1x)
	r := mustRun(t, cfg, app)

	// Each inter-GPM sector transaction is one hop of a 32-byte sector.
	hopBytes := float64(r.Counts.TotalTransactionBytes(isa.TxnInterGPM))
	// 2N unidirectional links at half the per-GPM budget each.
	totalLinkBW := float64(2*cfg.GPMs) * cfg.InterGPMBytesPerCycle() / 2
	bound := hopBytes / totalLinkBW
	if got := r.Cycles(); got < bound {
		t.Errorf("runtime %.0f beat the ring bisection bound %.0f", got, bound)
	}
}

func TestAnalyticalSpeedupNeverExceedsResources(t *testing.T) {
	// No configuration may exceed N-fold speedup by more than the
	// cache-growth superlinearity allows; here the working set exceeds
	// all caches at every scale, so speedup <= N strictly.
	app := streamApp(512, 8, 8, 1<<30)
	base := mustRun(t, MultiGPM(1, BW2x), app)
	for _, n := range []int{2, 4, 8} {
		r := mustRun(t, MultiGPM(n, BW2x), app)
		if sp := base.Cycles() / r.Cycles(); sp > float64(n)*1.02 {
			t.Errorf("%d GPMs: speedup %.2f exceeds resources", n, sp)
		}
	}
}
