package sim

import "sync"

// Budget is a counting semaphore shared by every layer that can spend
// parallelism — the runner's across-point workers, the service's point
// executors, and the per-GPM lanes inside one simulation — so enabling
// intra-run parallelism composes with (rather than multiplies against)
// the existing pools. The convention: a caller's own goroutine is its
// base token and is never charged; only *extra* lanes draw from the
// budget, via TryAcquire, and are returned when the launch ends. Extra
// lanes are strictly optional — a TryAcquire that comes up empty just
// means the simulation runs sequentially — so sizing the budget at
// GOMAXPROCS minus the base pool caps total runnable goroutines at the
// hardware parallelism without ever blocking a worker.
//
// Lane allocation is deliberately racy across concurrent simulations
// (first come, first served): output is bit-identical at every lane
// count, so the nondeterministic grant order is unobservable in
// results. This also gives tail adaptivity for free — as a sweep
// drains and workers go idle, their share of the budget flows to the
// simulations still running.
type Budget struct {
	mu   sync.Mutex
	free int
	cap  int
}

// NewBudget builds a budget of n extra-parallelism tokens. n < 0 is
// treated as 0 (no extra lanes ever granted).
func NewBudget(n int) *Budget {
	if n < 0 {
		n = 0
	}
	return &Budget{free: n, cap: n}
}

// Cap returns the budget's total token count.
func (b *Budget) Cap() int {
	if b == nil {
		return 0
	}
	return b.cap
}

// Free returns a snapshot of the currently available tokens (for
// metrics; the value may be stale by the time the caller reads it).
func (b *Budget) Free() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.free
}

// TryAcquire takes up to max tokens without blocking and returns how
// many it got (possibly zero).
func (b *Budget) TryAcquire(max int) int {
	if b == nil || max <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := max
	if n > b.free {
		n = b.free
	}
	b.free -= n
	return n
}

// Release returns n tokens to the budget.
func (b *Budget) Release(n int) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.free += n
	if b.free > b.cap {
		panic("sim: Budget.Release: more tokens returned than acquired")
	}
}
