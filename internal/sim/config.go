// Package sim implements the trace-driven multi-GPM GPU performance
// simulator used for the paper's evaluation (§V-A): SMs with warp-level
// latency tolerance, distributed CTA scheduling, per-SM L1 caches with
// software coherence, module-side L2 caches, first-touch page placement,
// per-GPM HBM stacks, and ring or switch inter-GPM fabrics — all
// modeled with bandwidth-queued resources so NUMA congestion emerges
// organically.
//
// The simulator produces the exact event classes the GPUJoule energy
// model consumes (isa.Counts); it carries no energy knowledge itself.
package sim

import (
	"errors"
	"fmt"
	"math"

	"gpujoule/internal/interconnect"
)

// NominalClockHz is the nominal module clock (the operating point the
// paper evaluates at). At 1 GHz one cycle is one nanosecond, so
// bandwidths in bytes/cycle are numerically equal to GB/s. A Config
// with a zero ClockHz runs here.
const NominalClockHz = 1e9

// NominalVoltage is the supply voltage at the nominal operating point,
// in volts. A Config with a zero VoltageV runs here. Voltage never
// affects simulated performance — it only prices energy (see
// internal/dvfs) — which is why, like Domain, it is normalized out of
// SimKey.
const NominalVoltage = 1.0

// Architectural latencies in cycles (Kepler-class, at the nominal
// 1 GHz clock). The L1/L2/shared/store latencies are core-clocked
// pipeline depths: fixed in cycles at any frequency. latDRAM is the
// DRAM access time, fixed in wall time (250 ns), so a GPU at a
// non-nominal clock sees it scaled into its own cycles (see newGPU).
const (
	latL1Hit  = 32
	latL2Hit  = 160
	latDRAM   = 250
	latShared = 30
	latStore  = 4
)

// hostGapCycles is the host-side inter-kernel launch gap (≈5 µs),
// during which the GPU idles at constant power. Apps structured as many
// short launches (BFS, MiniAMR) accumulate substantial gap time, which
// is what defeats the 15 ms power sensor in Fig. 4b.
const hostGapCycles = 5000

// defaultEpochCycles bounds cross-SM event reordering at shared
// bandwidth resources (see package doc of memsys).
const defaultEpochCycles = 2000

// BWSetting names a per-GPM inter-GPM I/O bandwidth point of Table IV.
type BWSetting uint8

// Table IV bandwidth settings.
const (
	// BW1x is 128 GB/s per GPM (inter-GPM:DRAM = 1:2, on-board).
	BW1x BWSetting = iota
	// BW2x is 256 GB/s per GPM (1:1, on-package) — the baseline.
	BW2x
	// BW4x is 512 GB/s per GPM (2:1, on-package).
	BW4x
)

func (b BWSetting) String() string {
	switch b {
	case BW1x:
		return "1x-BW"
	case BW2x:
		return "2x-BW"
	case BW4x:
		return "4x-BW"
	default:
		return fmt.Sprintf("bw(%d)", uint8(b))
	}
}

// BytesPerCycle returns the per-GPM inter-GPM I/O bandwidth of the
// setting, given the per-GPM DRAM bandwidth.
func (b BWSetting) BytesPerCycle(dramBytesPerCycle float64) float64 {
	switch b {
	case BW1x:
		return dramBytesPerCycle / 2
	case BW2x:
		return dramBytesPerCycle
	case BW4x:
		return dramBytesPerCycle * 2
	default:
		panic(fmt.Sprintf("sim: unknown bandwidth setting %d", uint8(b)))
	}
}

// Domain is the physical integration domain of a multi-module GPU.
// The domain determines link energy and constant-energy amortization in
// the energy model; the performance simulator is domain-agnostic.
type Domain uint8

// Integration domains.
const (
	// DomainOnBoard integrates discrete GPMs on a PCB (10 pJ/bit links,
	// no constant-energy amortization).
	DomainOnBoard Domain = iota
	// DomainOnPackage integrates GPMs on one package (0.54 pJ/bit
	// links, 50% constant-energy amortization by default).
	DomainOnPackage
)

func (d Domain) String() string {
	switch d {
	case DomainOnBoard:
		return "on-board"
	case DomainOnPackage:
		return "on-package"
	default:
		return fmt.Sprintf("domain(%d)", uint8(d))
	}
}

// DefaultDomain returns the integration domain the paper associates
// with each bandwidth setting (Table IV).
func (b BWSetting) DefaultDomain() Domain {
	if b == BW1x {
		return DomainOnBoard
	}
	return DomainOnPackage
}

// CTASchedule selects how CTAs are distributed over modules.
type CTASchedule uint8

// CTA scheduling policies.
const (
	// ScheduleContiguous assigns contiguous CTA blocks per GPM so
	// first-touch placement aligns data with compute (the paper's
	// configuration, §V-A1, following the MCM-GPU proposals).
	ScheduleContiguous CTASchedule = iota
	// ScheduleRoundRobin interleaves consecutive CTAs across GPMs — a
	// locality-blind baseline used by the ablation study.
	ScheduleRoundRobin
)

func (s CTASchedule) String() string {
	switch s {
	case ScheduleContiguous:
		return "contiguous"
	case ScheduleRoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("schedule(%d)", uint8(s))
	}
}

// L2Placement selects where the L2 cache sits relative to the
// inter-GPM fabric.
type L2Placement uint8

// L2 placements.
const (
	// L2ModuleSide places each L2 with its requesting module, caching
	// local and remote data alike — the organization the paper adopts
	// for multi-module configurations (§V-A1), with remote lines
	// dropped at kernel boundaries under software coherence.
	L2ModuleSide L2Placement = iota
	// L2MemorySide places each L2 with its DRAM stack: remote requests
	// cross the fabric before the cache lookup. No duplicate caching,
	// no boundary invalidation, but no remote-traffic filtering either.
	L2MemorySide
)

func (p L2Placement) String() string {
	switch p {
	case L2ModuleSide:
		return "module-side"
	case L2MemorySide:
		return "memory-side"
	default:
		return fmt.Sprintf("l2(%d)", uint8(p))
	}
}

// Config describes one simulated GPU (a row of Table III plus a column
// of Table IV).
// The JSON field names are part of the stable result schema (see
// result.go and DESIGN.md §Observability).
type Config struct {
	// GPMs is the module count (1, 2, 4, 8, 16, or 32 in the paper).
	GPMs int `json:"gpms"`
	// SMsPerGPM is the SM count per module (16 in the basic GPM).
	SMsPerGPM int `json:"sms_per_gpm"`
	// L1PerSMBytes is the per-SM L1 size (32 KB).
	L1PerSMBytes int `json:"l1_per_sm_bytes"`
	// L2PerGPMBytes is the per-GPM L2 size (2 MB, module-side for >1 GPM).
	L2PerGPMBytes int `json:"l2_per_gpm_bytes"`
	// DRAMBytesPerCycle is the per-GPM local HBM bandwidth (256 GB/s).
	DRAMBytesPerCycle float64 `json:"dram_bytes_per_cycle"`
	// InterGPM is the Table IV inter-GPM bandwidth setting.
	InterGPM BWSetting `json:"inter_gpm_bw"`
	// Topology selects the inter-GPM fabric (ring by default, §V-A1).
	Topology interconnect.Topology `json:"topology"`
	// Domain is the integration domain (affects energy only).
	Domain Domain `json:"domain"`
	// Monolithic, if true, fuses all modules into one hypothetical
	// monolithic die: GPMs*SMsPerGPM SMs sharing one GPMs*L2 cache and
	// one GPMs*DRAM memory system with no inter-module fabric (used
	// for the Fig. 7 monolithic-scaling comparison).
	Monolithic bool `json:"monolithic"`
	// L2 selects the L2 placement (module-side by default, §V-A1).
	L2 L2Placement `json:"l2_placement"`
	// CTASchedule selects the CTA distribution policy (contiguous by
	// default, §V-A1).
	CTASchedule CTASchedule `json:"cta_schedule"`
	// ForceStripedPages disables first-touch placement, striping every
	// page round-robin across modules (the NUMA-blind placement
	// baseline of the ablation study).
	ForceStripedPages bool `json:"force_striped_pages"`
	// MaxCTAsPerSM bounds concurrent CTAs per SM (default 8).
	MaxCTAsPerSM int `json:"max_ctas_per_sm"`
	// EpochCycles bounds cross-SM event reordering (default 2000).
	EpochCycles float64 `json:"epoch_cycles"`
	// ClockHz is the core clock of every module, in Hz; 0 selects the
	// nominal 1 GHz clock, keeping legacy configs (and their JSON
	// serialization and SimKeys) unchanged. The memory system and the
	// inter-GPM fabric are fixed in wall time, so a slower core clock
	// shortens their latencies in cycles and raises their bytes per
	// core cycle — which is what makes memory-bound workloads nearly
	// frequency-insensitive (the DVFS sweet-spot mechanism). Construct
	// non-nominal configs through dvfs.Apply so the clock stays on the
	// architecture's V/f curve.
	ClockHz float64 `json:"clock_hz,omitempty"`
	// VoltageV is the supply voltage in volts; 0 selects the nominal
	// 1.00 V. Voltage prices energy only (dynamic terms scale with V²,
	// see internal/dvfs); the performance simulator never reads it.
	VoltageV float64 `json:"voltage_v,omitempty"`
}

// BaseGPM returns the basic GPU module configuration of §V-A1
// (K40-class: 16 SMs, 32 KB L1/SM, 2 MB L2, 256 GB/s HBM).
func BaseGPM() Config {
	return Config{
		GPMs:              1,
		SMsPerGPM:         16,
		L1PerSMBytes:      32 * 1024,
		L2PerGPMBytes:     2 * 1024 * 1024,
		DRAMBytesPerCycle: 256,
		InterGPM:          BW2x,
		Topology:          interconnect.TopologyRing,
		Domain:            DomainOnPackage,
	}
}

// MultiGPM returns the Table III configuration with n modules at the
// given Table IV bandwidth setting, ring topology, and the setting's
// default integration domain.
func MultiGPM(n int, bw BWSetting) Config {
	c := BaseGPM()
	c.GPMs = n
	c.InterGPM = bw
	c.Domain = bw.DefaultDomain()
	return c
}

// TableIIIGPMCounts are the module counts evaluated in the paper.
var TableIIIGPMCounts = []int{1, 2, 4, 8, 16, 32}

// Name returns a short descriptive name for the configuration.
func (c Config) Name() string {
	suffix := ""
	if c.Clock() != NominalClockHz {
		suffix = fmt.Sprintf("@%gMHz", c.Clock()/1e6)
	}
	if c.Monolithic {
		return fmt.Sprintf("monolithic-%dx%s", c.GPMs, suffix)
	}
	if c.GPMs == 1 {
		return "1-GPM" + suffix
	}
	name := fmt.Sprintf("%d-GPM/%s/%s/%s", c.GPMs, c.InterGPM, c.Topology, c.Domain)
	if c.L2 == L2MemorySide {
		name += "/mem-side-l2"
	}
	if c.CTASchedule == ScheduleRoundRobin {
		name += "/rr-cta"
	}
	if c.ForceStripedPages {
		name += "/striped-pages"
	}
	return name + suffix
}

// TotalSMs returns the total SM count.
func (c Config) TotalSMs() int { return c.GPMs * c.SMsPerGPM }

// SimKey returns a canonical encoding of the configuration fields that
// determine simulation behaviour. Fields the simulator never reads are
// normalized out: Domain prices energy only, and a design with a single
// physical module (1 GPM, or monolithic of any capability) has no
// inter-GPM fabric, so its bandwidth setting and topology are
// irrelevant. Defaulted fields (MaxCTAsPerSM, EpochCycles) fold to
// their effective values. Two configurations with equal SimKeys yield
// identical Run results for the same application, which is what lets a
// run engine memoize one simulation across experiments that price the
// same physical run under different energy domains.
func (c Config) SimKey() string {
	bw, topo := c.InterGPM.String(), c.Topology.String()
	if c.GPMs == 1 || c.Monolithic {
		bw, topo = "-", "-"
	}
	key := fmt.Sprintf("g%d/s%d/l1=%d/l2=%d/dram=%g/bw=%s/topo=%s/mono=%t/l2p=%s/cta=%s/striped=%t/ctas=%d/epoch=%g",
		c.GPMs, c.SMsPerGPM, c.L1PerSMBytes, c.L2PerGPMBytes, c.DRAMBytesPerCycle,
		bw, topo, c.Monolithic, c.L2, c.CTASchedule, c.ForceStripedPages,
		c.maxCTAs(), c.epoch())
	// The clock changes simulated timing, so an explicitly clocked
	// config — even one pinned to the nominal frequency — never shares
	// a cache entry with a legacy zero-clock config. The segment is
	// appended only when set, keeping every pre-DVFS key (and every
	// content-addressed cache built on it) byte-identical.
	if c.ClockHz != 0 {
		key += fmt.Sprintf("/clk=%g", c.ClockHz)
	}
	return key
}

// InterGPMBytesPerCycle returns the per-GPM I/O bandwidth in
// bytes/cycle for the configured setting.
func (c Config) InterGPMBytesPerCycle() float64 {
	return c.InterGPM.BytesPerCycle(c.DRAMBytesPerCycle)
}

// maxCTAs returns the effective per-SM CTA limit.
func (c Config) maxCTAs() int {
	if c.MaxCTAsPerSM <= 0 {
		return 8
	}
	return c.MaxCTAsPerSM
}

// epoch returns the effective epoch length.
func (c Config) epoch() float64 {
	if c.EpochCycles <= 0 {
		return defaultEpochCycles
	}
	return c.EpochCycles
}

// Clock returns the effective core clock in Hz (the nominal 1 GHz when
// ClockHz is zero).
func (c Config) Clock() float64 {
	if c.ClockHz == 0 {
		return NominalClockHz
	}
	return c.ClockHz
}

// Voltage returns the effective supply voltage in volts (the nominal
// 1.00 V when VoltageV is zero).
func (c Config) Voltage() float64 {
	if c.VoltageV == 0 {
		return NominalVoltage
	}
	return c.VoltageV
}

// clockScale is the effective clock as a fraction of nominal. One core
// cycle spans 1/clockScale nominal cycles of wall time, so wall-fixed
// quantities (DRAM latency, fabric hops, host gaps) convert to core
// cycles by multiplying with it, and wall-fixed bandwidths convert to
// bytes per core cycle by dividing by it. At the nominal clock every
// conversion multiplies or divides by exactly 1.0, so the nominal
// simulation is bit-identical to the pre-DVFS one.
func (c Config) clockScale() float64 { return c.Clock() / NominalClockHz }

// DRAMBytesPerCoreCycle returns the per-GPM local DRAM bandwidth in
// bytes per core cycle: HBM bandwidth is fixed in wall time, so a
// slower core clock sees more bytes land per cycle.
func (c Config) DRAMBytesPerCoreCycle() float64 {
	return c.DRAMBytesPerCycle / c.clockScale()
}

// Typed validation errors. Validate wraps these with the offending
// values, so callers can branch with errors.Is and print an actionable
// usage message instead of parsing error text.
var (
	// ErrBadGPMCount reports a non-positive module count.
	ErrBadGPMCount = errors.New("module count must be positive")
	// ErrBadSMCount reports a non-positive per-module SM count.
	ErrBadSMCount = errors.New("SMs per GPM must be positive")
	// ErrBadCacheSize reports a non-positive L1 or L2 size.
	ErrBadCacheSize = errors.New("cache sizes must be positive")
	// ErrBadBandwidth reports a non-positive DRAM bandwidth.
	ErrBadBandwidth = errors.New("DRAM bandwidth must be positive")
	// ErrBadFrequency reports a negative or non-finite core clock
	// (0 means the nominal 1 GHz; positive values pick an explicit
	// operating point — use dvfs.Apply to stay on the V/f curve).
	ErrBadFrequency = errors.New("clock frequency must be positive (0 = nominal 1 GHz)")
	// ErrBadVoltage reports a negative or non-finite supply voltage
	// (0 means the nominal 1.00 V).
	ErrBadVoltage = errors.New("supply voltage must be positive (0 = nominal 1.00 V)")
)

// Validate checks the configuration for structural errors. Every
// failure wraps one of the typed Err* sentinels above.
func (c Config) Validate() error {
	if c.GPMs <= 0 {
		return fmt.Errorf("sim: config GPMs=%d: %w", c.GPMs, ErrBadGPMCount)
	}
	if c.SMsPerGPM <= 0 {
		return fmt.Errorf("sim: config SMsPerGPM=%d: %w", c.SMsPerGPM, ErrBadSMCount)
	}
	if c.L1PerSMBytes <= 0 || c.L2PerGPMBytes <= 0 {
		return fmt.Errorf("sim: config L1=%d L2=%d: %w",
			c.L1PerSMBytes, c.L2PerGPMBytes, ErrBadCacheSize)
	}
	if c.DRAMBytesPerCycle <= 0 {
		return fmt.Errorf("sim: config DRAMBytesPerCycle=%g: %w",
			c.DRAMBytesPerCycle, ErrBadBandwidth)
	}
	if c.ClockHz < 0 || math.IsNaN(c.ClockHz) || math.IsInf(c.ClockHz, 0) {
		return fmt.Errorf("sim: config ClockHz=%g: %w", c.ClockHz, ErrBadFrequency)
	}
	if c.VoltageV < 0 || math.IsNaN(c.VoltageV) || math.IsInf(c.VoltageV, 0) {
		return fmt.Errorf("sim: config VoltageV=%g: %w", c.VoltageV, ErrBadVoltage)
	}
	return nil
}
