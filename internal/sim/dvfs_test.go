package sim_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpujoule/internal/isa"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
)

// dvfsApp exercises every clock-sensitive path: DRAM fills (latency and
// bandwidth), a multi-GPM fabric (hop latency and link bandwidth), an
// L2 hit stream (core-clocked, must NOT move), and host gaps.
func dvfsApp() *trace.App {
	k := &trace.Kernel{
		Name:        "dvfs-mix",
		Grid:        24,
		WarpsPerCTA: 8,
		Iters:       6,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatShared, Lines: 2}},
			{Op: isa.OpFFMA32, Times: 4},
			{Op: isa.OpLoadShared},
			{Op: isa.OpBarrier},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn}},
		},
	}
	return &trace.App{
		Name:          "dvfs-golden",
		Category:      trace.CategoryMemory,
		Regions:       []trace.Region{{Name: "a", Bytes: 8 << 20, Home: trace.HomeStriped}},
		HostGapCycles: 100,
		Launches:      []trace.Launch{{Kernel: k, Count: 2}},
	}
}

func runJSON(t *testing.T, cfg sim.Config) []byte {
	t.Helper()
	res, err := sim.Simulate(context.Background(), cfg, dvfsApp(), sim.WithCounters())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestNominalByteIdentityGolden pins the nominal operating point's
// output bytes against a checked-in digest: the DVFS threading must be
// the exact identity at 1 GHz. Regenerate (only after proving the
// change is intentional) with
//
//	UPDATE_DVFS_GOLDEN=1 go test ./internal/sim/ -run TestNominalByteIdentityGolden
func TestNominalByteIdentityGolden(t *testing.T) {
	b := runJSON(t, sim.MultiGPM(4, sim.BW2x))
	sum := sha256.Sum256(b)
	got := hex.EncodeToString(sum[:]) + "\n"
	golden := filepath.Join("testdata", "dvfs_nominal.sha256")

	if os.Getenv("UPDATE_DVFS_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("no golden digest (%v); generate with UPDATE_DVFS_GOLDEN=1", err)
	}
	if got != string(want) {
		t.Errorf("nominal simulation output drifted: sha256 %s, want %s"+
			"\nThe nominal operating point must stay byte-identical; if this change is"+
			"\ndeliberate, regenerate with UPDATE_DVFS_GOLDEN=1", strings.TrimSpace(got), strings.TrimSpace(string(want)))
	}
}

// TestExplicitNominalMatchesZeroConfig proves the explicit 1 GHz / 1 V
// stamp simulates identically to the legacy zero-field config (the two
// deliberately keep distinct SimKeys, but every counter, launch, and
// sample must agree bit-for-bit).
func TestExplicitNominalMatchesZeroConfig(t *testing.T) {
	zero := sim.MultiGPM(4, sim.BW2x)
	explicit := zero
	explicit.ClockHz = sim.NominalClockHz
	explicit.VoltageV = sim.NominalVoltage

	if zero.SimKey() == explicit.SimKey() {
		t.Error("explicit nominal must keep its own SimKey (Result.Config serialization differs)")
	}

	rz, err := sim.Simulate(context.Background(), zero, dvfsApp(), sim.WithCounters())
	if err != nil {
		t.Fatal(err)
	}
	re, err := sim.Simulate(context.Background(), explicit, dvfsApp(), sim.WithCounters())
	if err != nil {
		t.Fatal(err)
	}
	// Compare everything except the Config stamp itself.
	re.Config = rz.Config
	bz, _ := json.MarshalIndent(rz, "", " ")
	be, _ := json.MarshalIndent(re, "", " ")
	if string(bz) != string(be) {
		t.Error("explicit 1 GHz / 1.00 V simulation differs from the zero-field config")
	}
	if rz.Seconds() != re.Seconds() {
		t.Errorf("Seconds: %g vs %g", rz.Seconds(), re.Seconds())
	}
}

// TestClockScalingDirections pins the simulator-side physics of a lower
// clock: the same work takes fewer core cycles (wall-fixed memory costs
// shrink in cycle units) but strictly more wall time, and the
// instruction/transaction counts are identical (the clock changes
// timing, not work).
func TestClockScalingDirections(t *testing.T) {
	nom := sim.MultiGPM(4, sim.BW2x)
	low := nom
	low.ClockHz = 600e6
	low.VoltageV = 0.80

	rn, err := sim.Simulate(context.Background(), nom, dvfsApp())
	if err != nil {
		t.Fatal(err)
	}
	rl, err := sim.Simulate(context.Background(), low, dvfsApp())
	if err != nil {
		t.Fatal(err)
	}
	if rl.Counts.Inst != rn.Counts.Inst || rl.Counts.Txn != rn.Counts.Txn {
		t.Error("operating point must not change the work performed")
	}
	if rl.Cycles() >= rn.Cycles() {
		t.Errorf("cycles at 600 MHz = %g, want below nominal %g (DRAM/fabric cost fewer core cycles)",
			rl.Cycles(), rn.Cycles())
	}
	if rl.Seconds() <= rn.Seconds() {
		t.Errorf("wall time at 600 MHz = %g s, want above nominal %g s", rl.Seconds(), rn.Seconds())
	}
}

func TestValidateOperatingPointSentinels(t *testing.T) {
	cfg := sim.MultiGPM(2, sim.BW2x)
	cfg.ClockHz = -1
	if err := cfg.Validate(); !isErr(err, sim.ErrBadFrequency) {
		t.Errorf("negative clock: %v, want ErrBadFrequency", err)
	}
	cfg = sim.MultiGPM(2, sim.BW2x)
	cfg.VoltageV = -0.5
	if err := cfg.Validate(); !isErr(err, sim.ErrBadVoltage) {
		t.Errorf("negative voltage: %v, want ErrBadVoltage", err)
	}
	cfg = sim.MultiGPM(2, sim.BW2x)
	cfg.ClockHz = 800e6
	cfg.VoltageV = 0.9
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid operating point rejected: %v", err)
	}
}

func isErr(err, target error) bool {
	for e := err; e != nil; {
		if e == target {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// TestSimKeyAndNameCarryOperatingPoint covers the cache-key satellite:
// two frequencies of the same grid point must never share a key.
func TestSimKeyAndNameCarryOperatingPoint(t *testing.T) {
	base := sim.MultiGPM(4, sim.BW2x)
	a, b := base, base
	a.ClockHz = 800e6
	b.ClockHz = 1200e6
	if a.SimKey() == b.SimKey() || a.SimKey() == base.SimKey() {
		t.Errorf("SimKeys must be distinct: %q / %q / %q", base.SimKey(), a.SimKey(), b.SimKey())
	}
	if !strings.Contains(a.Name(), "@800MHz") {
		t.Errorf("Name %q should carry the operating point", a.Name())
	}
	if strings.Contains(base.Name(), "@") {
		t.Errorf("nominal Name %q must stay unchanged", base.Name())
	}
}
