package sim

import (
	"context"
	"fmt"
	"math"

	"gpujoule/internal/interconnect"
	"gpujoule/internal/isa"
	"gpujoule/internal/memsys"
	"gpujoule/internal/obs"
	"gpujoule/internal/trace"
)

// GPU is one simulated multi-module GPU instance. A GPU is built per
// application run; page homes and caches persist across the app's
// kernel launches but not across apps.
type GPU struct {
	cfg    Config
	fabric interconnect.Fabric // nil when a single module or monolithic
	pages  *memsys.PageTable
	gpms   []*gpmState

	// regionBase[i] is the base address of app region i.
	regionBase []uint64
	// regionLines[i] is the region size in cache lines.
	regionLines []uint64

	app  *trace.App
	time float64 // global clock in cycles, advances across launches

	// progs memoizes the predigested body of each kernel, so repeated
	// launches of the same kernel (the common case: Launch.Count > 1)
	// build it once.
	progs map[*trace.Kernel]*launchProg

	res *Result

	// col is the opt-in observability collector; nil when counters are
	// disabled, and every update below is guarded by that nil check so
	// the disabled path is untouched.
	col *obs.Collector
}

// gpmState is one GPU module: its SMs, module-side L2, local DRAM
// stack, and CTA work queue for the current launch.
type gpmState struct {
	id   int
	l2   *memsys.Cache
	l2bw *memsys.BWResource
	dram *memsys.BWResource
	sms  []*smState

	// CTA queue for the current launch: ids ctaNext, ctaNext+ctaStride,
	// ... strictly below ctaEnd.
	ctaNext, ctaEnd, ctaStride int
}

// takeCTA pops the next CTA id from the module's queue, or returns
// false when the queue is empty.
func (g *gpmState) takeCTA() (int, bool) {
	if g.ctaNext >= g.ctaEnd {
		return 0, false
	}
	id := g.ctaNext
	g.ctaNext += g.ctaStride
	return id, true
}

// pending reports how many CTAs remain queued.
func (g *gpmState) pending() int {
	if g.ctaNext >= g.ctaEnd {
		return 0
	}
	return (g.ctaEnd - g.ctaNext + g.ctaStride - 1) / g.ctaStride
}

// newGPU builds a GPU for the given configuration and application. The
// application is validated; region layout and pre-placed (striped)
// pages are established up front.
func newGPU(cfg Config, app *trace.App, o simOptions) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}

	// A monolithic configuration fuses the modules into one.
	phys := cfg
	if cfg.Monolithic {
		phys.SMsPerGPM = cfg.GPMs * cfg.SMsPerGPM
		phys.L2PerGPMBytes = cfg.GPMs * cfg.L2PerGPMBytes
		phys.DRAMBytesPerCycle = float64(cfg.GPMs) * cfg.DRAMBytesPerCycle
		phys.GPMs = 1
	}

	g := &GPU{
		cfg:   cfg,
		pages: memsys.NewPageTable(phys.GPMs),
		app:   app,
	}

	// Region layout: page-aligned, disjoint, deterministic. The layout
	// is contiguous from layoutBase, so the page table serves the whole
	// range from its dense backing (Reserve) and Home lookups on the
	// miss paths are array indexes rather than map probes.
	const layoutBase = uint64(16 * 1024 * 1024)
	var totalPages uint64
	for _, r := range app.Regions {
		totalPages += (r.Bytes + memsys.PageBytes - 1) / memsys.PageBytes
	}
	g.pages.Reserve(layoutBase, totalPages*memsys.PageBytes)

	base := layoutBase
	g.regionBase = make([]uint64, len(app.Regions))
	g.regionLines = make([]uint64, len(app.Regions))
	for i, r := range app.Regions {
		g.regionBase[i] = base
		lines := r.Bytes / isa.LineBytes
		if lines == 0 {
			lines = 1
		}
		g.regionLines[i] = lines
		pages := (r.Bytes + memsys.PageBytes - 1) / memsys.PageBytes
		if r.Home == trace.HomeStriped || cfg.ForceStripedPages {
			g.pages.Stripe(base, r.Bytes)
		}
		base += pages * memsys.PageBytes
	}

	if phys.GPMs > 1 {
		g.fabric = interconnect.New(cfg.Topology, phys.GPMs, cfg.InterGPMBytesPerCycle())
	}

	for i := 0; i < phys.GPMs; i++ {
		l2, err := memsys.NewCache(phys.L2PerGPMBytes, 16)
		if err != nil {
			return nil, fmt.Errorf("sim: building L2 for GPM %d: %w", i, err)
		}
		gpm := &gpmState{
			id:   i,
			l2:   l2,
			l2bw: memsys.NewBWResource(fmt.Sprintf("l2[%d]", i), 2*phys.DRAMBytesPerCycle),
			dram: memsys.NewBWResource(fmt.Sprintf("dram[%d]", i), phys.DRAMBytesPerCycle),
		}
		for s := 0; s < phys.SMsPerGPM; s++ {
			l1, err := memsys.NewCache(phys.L1PerSMBytes, 4)
			if err != nil {
				return nil, fmt.Errorf("sim: building L1 for GPM %d SM %d: %w", i, s, err)
			}
			gpm.sms = append(gpm.sms, &smState{gpm: gpm, l1: l1})
		}
		g.gpms = append(g.gpms, gpm)
	}

	g.res = &Result{App: app.Name, Config: cfg}
	if o.counters {
		g.col = obs.NewCollector(phys.GPMs, o.sampleInterval)
		if o.trace {
			g.enableTrace()
		}
	}
	return g, nil
}

// enableTrace switches the collector into trace mode, wiring the
// per-sample fabric link-busy snapshot (nil for fabric-less designs).
func (g *GPU) enableTrace() {
	var names []string
	var busy func() []float64
	if g.fabric != nil {
		for _, ls := range g.fabric.LinkStats() {
			names = append(names, ls.Name)
		}
		busy = func() []float64 {
			stats := g.fabric.LinkStats()
			out := make([]float64, len(stats))
			for i := range stats {
				out[i] = stats[i].BusyCycles
			}
			return out
		}
	}
	g.col.EnableTrace(names, busy)
}

// runAll executes every launch of the application in order, checking
// the context between launches.
func (g *GPU) runAll(ctx context.Context) (*Result, error) {
	for i := range g.app.Launches {
		l := &g.app.Launches[i]
		for rep := 0; rep < l.EffCount(); rep++ {
			if ctx.Err() != nil {
				return nil, cancelled(ctx)
			}
			if err := g.runLaunch(l.Kernel); err != nil {
				return nil, err
			}
		}
	}
	g.res.Counts.Cycles = uint64(math.Ceil(g.time))
	g.res.Counts.SMCount = g.totalSMs()
	g.res.Counts.GPMCount = g.physicalGPMs()
	if g.col != nil {
		g.finishCounters()
	}
	return g.res, nil
}

func (g *GPU) totalSMs() int {
	n := 0
	for _, gpm := range g.gpms {
		n += len(gpm.sms)
	}
	return n
}

// physicalGPMs returns the number of physical modules (1 for the
// hypothetical monolithic die regardless of its capability multiplier).
func (g *GPU) physicalGPMs() int { return len(g.gpms) }

// runLaunch simulates one kernel launch.
func (g *GPU) runLaunch(k *trace.Kernel) error {
	start := g.time

	// Software coherence at kernel boundaries (§V-A1): private L1s are
	// invalidated, and module-side L2s drop remotely-homed lines.
	for _, gpm := range g.gpms {
		for _, sm := range gpm.sms {
			sm.l1.Invalidate()
		}
		// Memory-side L2s hold the only cached copy of their home's
		// data and need no boundary invalidation; module-side L2s drop
		// remotely-homed lines.
		if len(g.gpms) > 1 && g.cfg.L2 == L2ModuleSide {
			id := gpm.id
			gpm.l2.InvalidateIf(func(addr uint64) bool {
				home, ok := g.pages.Lookup(addr)
				return ok && home != id
			})
		}
	}

	// Distributed CTA scheduling (§V-A1): contiguous CTA blocks per
	// GPM by default, so that first-touch placement aligns data with
	// compute; the round-robin ablation interleaves instead.
	n := len(g.gpms)
	for i, gpm := range g.gpms {
		if g.cfg.CTASchedule == ScheduleRoundRobin {
			gpm.ctaNext = i
			gpm.ctaEnd = k.Grid
			gpm.ctaStride = n
		} else {
			gpm.ctaNext = k.Grid * i / n
			gpm.ctaEnd = k.Grid * (i + 1) / n
			gpm.ctaStride = 1
		}
	}

	prog := g.progs[k]
	if prog == nil {
		prog = buildProg(k)
		if g.progs == nil {
			g.progs = make(map[*trace.Kernel]*launchProg)
		}
		g.progs[k] = prog
	}

	eng := &launchEngine{
		gpu:    g,
		kernel: k,
		prog:   prog,
		start:  start,
		end:    start,
	}
	for _, gpm := range g.gpms {
		for _, sm := range gpm.sms {
			sm.beginLaunch(start)
			sm.refill(eng)
		}
	}

	epoch := g.cfg.epoch()
	for until := start + epoch; eng.activeWarps > 0 || g.pendingCTAs() > 0; until += epoch {
		progressed := false
		for _, gpm := range g.gpms {
			for _, sm := range gpm.sms {
				p, err := sm.advance(until, eng)
				if err != nil {
					return err
				}
				if p {
					progressed = true
				}
			}
		}
		if !progressed && eng.activeWarps > 0 {
			// All remaining warps are waiting beyond this epoch; jump
			// the epoch window forward to the earliest ready time to
			// avoid spinning through empty epochs.
			next := eng.earliestReady(g)
			if math.IsInf(next, 1) {
				// Every active warp on every SM is blocked at a
				// barrier: a malformed kernel, not a slow one. Fail the
				// run instead of fast-forwarding to infinity.
				return fmt.Errorf("sim: kernel %q: %d active warps all blocked at barriers: %w",
					k.Name, eng.activeWarps, ErrDeadlock)
			}
			if next > until {
				until = next - epoch
			}
		}
		if g.col != nil {
			g.col.MaybeSample(until, eng.activeWarps, g.pendingCTAs())
		}
	}

	dur := eng.end - start
	if dur < 0 {
		dur = 0
	}

	// Lane-stall accounting: every SM-cycle inside the launch window
	// that did not issue an instruction is a stall (this covers both
	// latency stalls and whole-GPM idling on remote memory, the effect
	// §V-B identifies as the dominant energy problem).
	var busy float64
	for _, gpm := range g.gpms {
		for _, sm := range gpm.sms {
			busy += sm.busy
		}
	}
	if g.col != nil {
		// Per-GPM attribution of the same accounting. Kept separate
		// from the aggregate sum above so the aggregate's float
		// summation order (and therefore the disabled-path output)
		// is bit-identical with counters on or off.
		var phases []obs.TraceGPMPhase
		if g.col.TraceEnabled() {
			phases = make([]obs.TraceGPMPhase, 0, len(g.gpms))
		}
		for _, gpm := range g.gpms {
			var busyGPM float64
			for _, sm := range gpm.sms {
				busyGPM += sm.busy
			}
			stallGPM := dur*float64(len(gpm.sms)) - busyGPM
			if stallGPM < 0 {
				stallGPM = 0
			}
			gc := &g.col.GPMs[gpm.id]
			gc.BusyCycles += busyGPM
			gc.StallCycles += stallGPM
			if phases != nil {
				phases = append(phases, obs.TraceGPMPhase{
					GPM:         gpm.id,
					BusyCycles:  busyGPM,
					StallCycles: stallGPM,
				})
			}
		}
		if phases != nil {
			g.col.RecordLaunch(k.Name, start, eng.end, phases)
		}
	}
	totalSMCycles := dur * float64(g.totalSMs())
	stalls := totalSMCycles - busy
	if stalls < 0 {
		stalls = 0
	}

	eng.counts.StallCycles = uint64(stalls)
	eng.counts.Cycles = uint64(math.Ceil(dur))
	eng.counts.SMCount = g.totalSMs()
	eng.counts.GPMCount = g.physicalGPMs()

	g.res.Launches = append(g.res.Launches, LaunchStats{
		Kernel: k.Name,
		Start:  start,
		End:    eng.end,
		Counts: eng.counts,
	})
	g.res.Counts.Add(&eng.counts)

	gap := g.app.HostGapCycles
	if gap <= 0 {
		gap = hostGapCycles
	}
	g.time = eng.end + gap
	return nil
}

func (g *GPU) pendingCTAs() int {
	n := 0
	for _, gpm := range g.gpms {
		n += gpm.pending()
	}
	return n
}

// launchEngine carries per-launch mutable state shared by the SMs.
type launchEngine struct {
	gpu         *GPU
	kernel      *trace.Kernel
	prog        *launchProg
	counts      isa.Counts
	start, end  float64
	activeWarps int
}

// earliestReady returns the minimum ready time over all runnable
// warps, used to fast-forward across long idle periods. Each SM's
// ready-queue root is its per-SM minimum, so the global sweep is a min
// over tree roots instead of over every resident warp.
func (eng *launchEngine) earliestReady(g *GPU) float64 {
	min := math.Inf(1)
	for _, gpm := range g.gpms {
		for _, sm := range gpm.sms {
			if sm.rq.len() > 0 {
				if r := sm.rq.rootReadyAt(); r < min {
					min = r
				}
			}
		}
	}
	return min
}

// access simulates one global-memory warp access from an SM in gpm,
// starting at time t and touching the access descriptor's distinct
// cache lines. It returns the completion time (max over lines;
// serialized line-to-line when the access is a pointer chase).
func (g *GPU) access(sm *smState, t float64, m *trace.MemAccess, w *warpState, isStore bool) float64 {
	gpm := sm.gpm
	lines := int(m.Lines)
	if lines <= 0 {
		lines = 1
	}
	done := t
	lineStart := t
	for l := 0; l < lines; l++ {
		addr := g.address(m, w, l)
		var lineDone float64

		g.res.L1Accesses++
		eng := w.eng
		eng.counts.Txn[isa.TxnL1ToRF]++
		if g.col != nil {
			gc := &g.col.GPMs[gpm.id]
			gc.L1Accesses++
			gc.Txn[isa.TxnL1ToRF]++
		}
		if sm.l1.Access(addr) {
			lineDone = lineStart + latL1Hit
		} else {
			g.res.L1Misses++
			if g.col != nil {
				g.col.GPMs[gpm.id].L1Misses++
			}
			if g.cfg.L2 == L2MemorySide && len(g.gpms) > 1 {
				lineDone = g.fillMemorySide(eng, gpm, lineStart, addr, isStore)
			} else {
				lineDone = g.fillModuleSide(eng, gpm, lineStart, addr, isStore)
			}
		}

		if lineDone > done {
			done = lineDone
		}
		if m.Chase {
			// Dependent pointer chase: the next line's address depends
			// on this line's data.
			lineStart = lineDone
		}
	}
	return done
}

// fillModuleSide serves an L1 miss through the requesting module's own
// L2 (the paper's multi-module organization, §V-A1): the L2 caches
// local and remote data alike, so only L2 misses to remote homes cross
// the fabric.
func (g *GPU) fillModuleSide(eng *launchEngine, gpm *gpmState, t float64, addr uint64, isStore bool) float64 {
	eng.counts.Txn[isa.TxnL2ToL1] += isa.SectorsPerLine
	g.res.L2Accesses++
	if g.col != nil {
		gc := &g.col.GPMs[gpm.id]
		gc.L2Accesses++
		gc.Txn[isa.TxnL2ToL1] += isa.SectorsPerLine
	}
	t2 := gpm.l2bw.Acquire(t, isa.LineBytes)
	if gpm.l2.Access(addr) {
		return t2 + latL2Hit
	}
	g.res.L2Misses++
	eng.counts.Txn[isa.TxnDRAMToL2] += isa.SectorsPerLine
	if g.col != nil {
		g.col.GPMs[gpm.id].L2Misses++
	}

	home := 0
	if len(g.gpms) > 1 {
		home = g.pages.Home(addr, gpm.id)
	}
	if g.col != nil {
		// DRAM reads attribute to the home module whose stack served
		// them, matching the DRAMBytes attribution.
		g.col.GPMs[home].Txn[isa.TxnDRAMToL2] += isa.SectorsPerLine
	}
	homeDRAM := g.gpms[home].dram
	if home == gpm.id {
		g.res.LocalLineFills++
		if g.col != nil {
			g.col.GPMs[gpm.id].LocalFills++
		}
		return homeDRAM.Acquire(t2, isa.LineBytes) + latDRAM
	}
	g.res.RemoteLineFills++
	if g.col != nil {
		g.col.GPMs[gpm.id].RemoteFills++
	}
	if isStore {
		// Store data travels requester -> home, then is written at the
		// home DRAM.
		tr := g.fabric.Send(t2, gpm.id, home, isa.LineBytes)
		g.chargeFabric(eng, tr)
		return homeDRAM.Acquire(tr.Done, isa.LineBytes) + latDRAM
	}
	// The request header rides to the home module (latency only), the
	// line is read from the home DRAM, and the data returns over the
	// fabric, consuming link bandwidth.
	reqLat := float64(g.fabric.Hops(gpm.id, home)) * interconnect.HopLatency
	dramDone := homeDRAM.Acquire(t2+reqLat, isa.LineBytes) + latDRAM
	tr := g.fabric.Send(dramDone, home, gpm.id, isa.LineBytes)
	g.chargeFabric(eng, tr)
	return tr.Done
}

// fillMemorySide serves an L1 miss with memory-side L2s: the lookup
// happens at the page's home module, so every remote L1 miss crosses
// the fabric regardless of whether the home L2 hits.
func (g *GPU) fillMemorySide(eng *launchEngine, gpm *gpmState, t float64, addr uint64, isStore bool) float64 {
	eng.counts.Txn[isa.TxnL2ToL1] += isa.SectorsPerLine
	home := g.pages.Home(addr, gpm.id)
	homeGPM := g.gpms[home]

	arrive := t
	if home != gpm.id && isStore {
		// Store data travels to the home module first.
		tr := g.fabric.Send(t, gpm.id, home, isa.LineBytes)
		g.chargeFabric(eng, tr)
		arrive = tr.Done
	} else if home != gpm.id {
		// Request header crosses the fabric (latency only).
		arrive = t + float64(g.fabric.Hops(gpm.id, home))*interconnect.HopLatency
	}

	g.res.L2Accesses++
	if g.col != nil {
		// Memory-side L2s live with their DRAM stack, so L2 counters
		// attribute to the home module; fills keep requester-relative
		// local/remote attribution (the module's NUMA exposure).
		gc := &g.col.GPMs[home]
		gc.L2Accesses++
		gc.Txn[isa.TxnL2ToL1] += isa.SectorsPerLine
	}
	t2 := homeGPM.l2bw.Acquire(arrive, isa.LineBytes)
	var ready float64
	if homeGPM.l2.Access(addr) {
		ready = t2 + latL2Hit
	} else {
		g.res.L2Misses++
		eng.counts.Txn[isa.TxnDRAMToL2] += isa.SectorsPerLine
		if g.col != nil {
			gc := &g.col.GPMs[home]
			gc.L2Misses++
			gc.Txn[isa.TxnDRAMToL2] += isa.SectorsPerLine
		}
		if home == gpm.id {
			g.res.LocalLineFills++
			if g.col != nil {
				g.col.GPMs[gpm.id].LocalFills++
			}
		} else {
			g.res.RemoteLineFills++
			if g.col != nil {
				g.col.GPMs[gpm.id].RemoteFills++
			}
		}
		ready = homeGPM.dram.Acquire(t2, isa.LineBytes) + latDRAM
	}
	if home == gpm.id || isStore {
		return ready
	}
	// Load data returns to the requester over the fabric.
	tr := g.fabric.Send(ready, home, gpm.id, isa.LineBytes)
	g.chargeFabric(eng, tr)
	return tr.Done
}

// chargeFabric records the energy-relevant transaction counts of one
// fabric transfer.
func (g *GPU) chargeFabric(eng *launchEngine, tr interconnect.Transfer) {
	eng.counts.Txn[isa.TxnInterGPM] += uint64(tr.Hops) * isa.SectorsPerLine
	if tr.Switched {
		eng.counts.Txn[isa.TxnSwitch] += isa.SectorsPerLine
	}
}
