package sim

import (
	"context"
	"fmt"
	"math"

	"gpujoule/internal/interconnect"
	"gpujoule/internal/isa"
	"gpujoule/internal/memsys"
	"gpujoule/internal/obs"
	"gpujoule/internal/trace"
)

// GPU is one simulated multi-module GPU instance. A GPU is built per
// application run; page homes and caches persist across the app's
// kernel launches but not across apps.
type GPU struct {
	cfg    Config
	fabric interconnect.Fabric // nil when a single module or monolithic
	pages  *memsys.PageTable
	gpms   []*gpmState

	// regionBase[i] is the base address of app region i.
	regionBase []uint64
	// regionLines[i] is the region size in cache lines.
	regionLines []uint64

	app  *trace.App
	time float64 // global clock in cycles, advances across launches

	// progs memoizes the predigested body of each kernel, so repeated
	// launches of the same kernel (the common case: Launch.Count > 1)
	// build it once.
	progs map[*trace.Kernel]*launchProg

	res *Result

	// col is the opt-in observability collector; nil when counters are
	// disabled, and every update below is guarded by that nil check so
	// the disabled path is untouched.
	col *obs.Collector

	// memSideFill is the hoisted L1-miss routing predicate
	// (cfg.L2 == L2MemorySide && len(gpms) > 1), evaluated once instead
	// of per miss.
	memSideFill bool

	// par is the requested per-GPM lane count (WithGPMParallel); budget
	// is the optional shared parallelism budget extra lanes draw from.
	par    int
	budget *Budget

	// Clock-domain conversions (see Config.clockScale): the DRAM access
	// latency and inter-GPM hop latency are fixed in wall time, so in
	// core cycles they scale with the clock, as does the host-side
	// inter-launch gap. At the nominal clock all three equal the
	// historical constants exactly.
	clkScale float64
	latDRAM  float64
	hopLat   float64
}

// gpmShard is one GPM's slice of the launch-wide counters. Every
// counter a GPM touches on its own behalf accumulates here and is
// merged into the launch engine and Result in ascending GPM order at
// launch end. All fields merge exactly commutatively (integer adds and
// a float max), so the merged totals are bit-identical whether the
// GPMs ran sequentially or on parallel lanes.
type gpmShard struct {
	counts      isa.Counts // Inst/WarpInst/Txn only; time fields stay zero
	l1Accesses  uint64
	l1Misses    uint64
	l2Accesses  uint64
	l2Misses    uint64
	localFills  uint64
	remoteFills uint64
	end         float64 // max retire time seen by this GPM's SMs
	activeWarps int
}

// gpmState is one GPU module: its SMs, module-side L2, local DRAM
// stack, and CTA work queue for the current launch.
type gpmState struct {
	id   int
	l2   *memsys.Cache
	l2bw *memsys.BWResource
	dram *memsys.BWResource
	sms  []*smState

	// CTA queue for the current launch: ids ctaNext, ctaNext+ctaStride,
	// ... strictly below ctaEnd.
	ctaNext, ctaEnd, ctaStride int

	// shard accumulates this GPM's counter updates for the current
	// launch (see gpmShard).
	shard gpmShard

	// issueCnt[i] counts issues of body instruction i during the current
	// launch, across the GPM's SMs. The per-op instruction counters,
	// thread-instruction counters, and the per-execution-constant
	// transaction counters (TxnL1ToRF, TxnShmToRF, L1 accesses) are all
	// exact functions of these counts, so the issue path pays one
	// increment into this small array and runLaunch folds the per-op
	// totals into the shard once per launch. Lives outside gpmShard so
	// the backing array survives the per-launch shard reset. Only the
	// Collector's counters (sampled mid-launch by MaybeSample) must stay
	// incrementally updated; they are, behind the col != nil branch.
	issueCnt []uint64

	// gate is non-nil while the GPM runs on a parallel lane and has not
	// yet taken its shared-state turn in the current epoch; nil in
	// sequential mode, so the hot-path check is one predictable branch.
	gate *turnstile

	// l2HasRemote records whether the module-side L2 filled a
	// remotely-homed line since the last boundary invalidation. Remote
	// lines enter this L2 only on the remote-fill path (the L2 allocates
	// on every miss, and the home decides local vs remote right there),
	// so while the flag is false the boundary InvalidateIf would find
	// nothing to drop and is skipped — a pure no-op elision, since an
	// InvalidateIf that invalidates nothing rewrites every set
	// unchanged.
	l2HasRemote bool
}

// ensureTurn blocks until every lower-numbered GPM has finished the
// current epoch, establishing the sequential GPM-major order for the
// shared-state operation the caller is about to perform. No-op in
// sequential mode and after the first shared op of the epoch.
func (g *gpmState) ensureTurn() {
	if ts := g.gate; ts != nil {
		ts.waitBelow(g.id)
		g.gate = nil
	}
}

// takeCTA pops the next CTA id from the module's queue, or returns
// false when the queue is empty.
func (g *gpmState) takeCTA() (int, bool) {
	if g.ctaNext >= g.ctaEnd {
		return 0, false
	}
	id := g.ctaNext
	g.ctaNext += g.ctaStride
	return id, true
}

// pending reports how many CTAs remain queued.
func (g *gpmState) pending() int {
	if g.ctaNext >= g.ctaEnd {
		return 0
	}
	return (g.ctaEnd - g.ctaNext + g.ctaStride - 1) / g.ctaStride
}

// newGPU builds a GPU for the given configuration and application. The
// application is validated; region layout and pre-placed (striped)
// pages are established up front.
func newGPU(cfg Config, app *trace.App, o simOptions) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}

	// A monolithic configuration fuses the modules into one.
	phys := cfg
	if cfg.Monolithic {
		phys.SMsPerGPM = cfg.GPMs * cfg.SMsPerGPM
		phys.L2PerGPMBytes = cfg.GPMs * cfg.L2PerGPMBytes
		phys.DRAMBytesPerCycle = float64(cfg.GPMs) * cfg.DRAMBytesPerCycle
		phys.GPMs = 1
	}

	g := &GPU{
		cfg:      cfg,
		pages:    memsys.NewPageTable(phys.GPMs),
		app:      app,
		clkScale: cfg.clockScale(),
	}
	g.latDRAM = latDRAM * g.clkScale
	g.hopLat = interconnect.HopLatency * g.clkScale

	// Region layout: page-aligned, disjoint, deterministic. The layout
	// is contiguous from layoutBase, so the page table serves the whole
	// range from its dense backing (Reserve) and Home lookups on the
	// miss paths are array indexes rather than map probes.
	const layoutBase = uint64(16 * 1024 * 1024)
	var totalPages uint64
	for _, r := range app.Regions {
		totalPages += (r.Bytes + memsys.PageBytes - 1) / memsys.PageBytes
	}
	g.pages.Reserve(layoutBase, totalPages*memsys.PageBytes)

	base := layoutBase
	g.regionBase = make([]uint64, len(app.Regions))
	g.regionLines = make([]uint64, len(app.Regions))
	for i, r := range app.Regions {
		g.regionBase[i] = base
		lines := r.Bytes / isa.LineBytes
		if lines == 0 {
			lines = 1
		}
		g.regionLines[i] = lines
		pages := (r.Bytes + memsys.PageBytes - 1) / memsys.PageBytes
		if r.Home == trace.HomeStriped || cfg.ForceStripedPages {
			g.pages.Stripe(base, r.Bytes)
		}
		base += pages * memsys.PageBytes
	}

	if phys.GPMs > 1 {
		g.fabric = interconnect.NewAtClock(cfg.Topology, phys.GPMs, cfg.InterGPMBytesPerCycle(), g.clkScale)
	}

	for i := 0; i < phys.GPMs; i++ {
		l2, err := memsys.NewCache(phys.L2PerGPMBytes, 16)
		if err != nil {
			return nil, fmt.Errorf("sim: building L2 for GPM %d: %w", i, err)
		}
		gpm := &gpmState{
			id:   i,
			l2:   l2,
			l2bw: memsys.NewBWResource(fmt.Sprintf("l2[%d]", i), 2*phys.DRAMBytesPerCycle),
			dram: memsys.NewBWResource(fmt.Sprintf("dram[%d]", i), phys.DRAMBytesPerCycle/g.clkScale),
		}
		for s := 0; s < phys.SMsPerGPM; s++ {
			l1, err := memsys.NewCache(phys.L1PerSMBytes, 4)
			if err != nil {
				return nil, fmt.Errorf("sim: building L1 for GPM %d SM %d: %w", i, s, err)
			}
			gpm.sms = append(gpm.sms, &smState{gpm: gpm, shard: &gpm.shard, l1: l1})
		}
		g.gpms = append(g.gpms, gpm)
	}

	g.memSideFill = cfg.L2 == L2MemorySide && len(g.gpms) > 1
	g.par = o.gpmParallel
	g.budget = o.budget

	g.res = &Result{App: app.Name, Config: cfg}
	if o.counters {
		g.col = obs.NewCollector(phys.GPMs, o.sampleInterval)
		if o.trace {
			g.enableTrace()
		}
	}
	return g, nil
}

// enableTrace switches the collector into trace mode, wiring the
// per-sample fabric link-busy snapshot (nil for fabric-less designs).
func (g *GPU) enableTrace() {
	var names []string
	var busy func() []float64
	if g.fabric != nil {
		for _, ls := range g.fabric.LinkStats() {
			names = append(names, ls.Name)
		}
		busy = func() []float64 {
			stats := g.fabric.LinkStats()
			out := make([]float64, len(stats))
			for i := range stats {
				out[i] = stats[i].BusyCycles
			}
			return out
		}
	}
	g.col.EnableTrace(names, busy)
}

// runAll executes every launch of the application in order, checking
// the context between launches.
func (g *GPU) runAll(ctx context.Context) (*Result, error) {
	for i := range g.app.Launches {
		l := &g.app.Launches[i]
		for rep := 0; rep < l.EffCount(); rep++ {
			if ctx.Err() != nil {
				return nil, cancelled(ctx)
			}
			if err := g.runLaunch(l.Kernel); err != nil {
				return nil, err
			}
		}
	}
	g.res.Counts.Cycles = uint64(math.Ceil(g.time))
	g.res.Counts.SMCount = g.totalSMs()
	g.res.Counts.GPMCount = g.physicalGPMs()
	if g.col != nil {
		g.finishCounters()
	}
	return g.res, nil
}

func (g *GPU) totalSMs() int {
	n := 0
	for _, gpm := range g.gpms {
		n += len(gpm.sms)
	}
	return n
}

// physicalGPMs returns the number of physical modules (1 for the
// hypothetical monolithic die regardless of its capability multiplier).
func (g *GPU) physicalGPMs() int { return len(g.gpms) }

// runLaunch simulates one kernel launch.
func (g *GPU) runLaunch(k *trace.Kernel) error {
	start := g.time

	// Software coherence at kernel boundaries (§V-A1): private L1s are
	// invalidated, and module-side L2s drop remotely-homed lines.
	for _, gpm := range g.gpms {
		for _, sm := range gpm.sms {
			sm.l1.Invalidate()
		}
		// Memory-side L2s hold the only cached copy of their home's
		// data and need no boundary invalidation; module-side L2s drop
		// remotely-homed lines — skipped when no remote line was filled
		// since the last invalidation (see gpmState.l2HasRemote).
		if len(g.gpms) > 1 && g.cfg.L2 == L2ModuleSide && gpm.l2HasRemote {
			id := gpm.id
			gpm.l2.InvalidateIf(func(addr uint64) bool {
				home, ok := g.pages.Lookup(addr)
				return ok && home != id
			})
			gpm.l2HasRemote = false
		}
	}

	// Distributed CTA scheduling (§V-A1): contiguous CTA blocks per
	// GPM by default, so that first-touch placement aligns data with
	// compute; the round-robin ablation interleaves instead.
	n := len(g.gpms)
	for i, gpm := range g.gpms {
		if g.cfg.CTASchedule == ScheduleRoundRobin {
			gpm.ctaNext = i
			gpm.ctaEnd = k.Grid
			gpm.ctaStride = n
		} else {
			gpm.ctaNext = k.Grid * i / n
			gpm.ctaEnd = k.Grid * (i + 1) / n
			gpm.ctaStride = 1
		}
	}

	prog := g.progs[k]
	if prog == nil {
		prog = g.buildProg(k)
		if g.progs == nil {
			g.progs = make(map[*trace.Kernel]*launchProg)
		}
		g.progs[k] = prog
	}

	eng := &launchEngine{
		gpu:    g,
		kernel: k,
		prog:   prog,
		start:  start,
		end:    start,
	}
	for _, gpm := range g.gpms {
		gpm.shard = gpmShard{}
		if cap(gpm.issueCnt) < len(prog.body) {
			gpm.issueCnt = make([]uint64, len(prog.body))
		} else {
			gpm.issueCnt = gpm.issueCnt[:len(prog.body)]
			clear(gpm.issueCnt)
		}
		for _, sm := range gpm.sms {
			sm.issueCnt = gpm.issueCnt
			sm.prog = prog
			sm.col = g.col
			sm.beginLaunch(start)
			sm.refill(eng)
		}
	}

	if err := g.runEpochs(eng, k, start); err != nil {
		return err
	}

	// Merge the per-GPM shards in ascending GPM order. Every field is
	// an integer add or a float max, so the totals are bit-identical to
	// the unsharded accumulation regardless of lane count. The per-op
	// counters are first folded in from the per-body-index issue counts
	// (see gpmState.issueCnt) — exact integer arithmetic, so the totals
	// equal the historical per-issue accumulation.
	for _, gpm := range g.gpms {
		sh := &gpm.shard
		for i, cnt := range gpm.issueCnt {
			if cnt == 0 {
				continue
			}
			rec := &prog.body[i]
			sh.counts.WarpInst[rec.op] += cnt
			sh.counts.Inst[rec.op] += cnt * rec.active
			switch rec.kind {
			case recGlobal:
				lines := cnt * uint64(rec.mem.lines)
				sh.counts.Txn[isa.TxnL1ToRF] += lines
				sh.l1Accesses += lines
			case recShared:
				sh.counts.Txn[isa.TxnShmToRF] += cnt
			}
		}
		eng.counts.Add(&sh.counts)
		if sh.end > eng.end {
			eng.end = sh.end
		}
		g.res.L1Accesses += sh.l1Accesses
		g.res.L1Misses += sh.l1Misses
		g.res.L2Accesses += sh.l2Accesses
		g.res.L2Misses += sh.l2Misses
		g.res.LocalLineFills += sh.localFills
		g.res.RemoteLineFills += sh.remoteFills
	}

	dur := eng.end - start
	if dur < 0 {
		dur = 0
	}

	// Lane-stall accounting: every SM-cycle inside the launch window
	// that did not issue an instruction is a stall (this covers both
	// latency stalls and whole-GPM idling on remote memory, the effect
	// §V-B identifies as the dominant energy problem).
	var busy float64
	for _, gpm := range g.gpms {
		for _, sm := range gpm.sms {
			busy += sm.busy
		}
	}
	if g.col != nil {
		// Per-GPM attribution of the same accounting. Kept separate
		// from the aggregate sum above so the aggregate's float
		// summation order (and therefore the disabled-path output)
		// is bit-identical with counters on or off.
		var phases []obs.TraceGPMPhase
		if g.col.TraceEnabled() {
			phases = make([]obs.TraceGPMPhase, 0, len(g.gpms))
		}
		for _, gpm := range g.gpms {
			var busyGPM float64
			for _, sm := range gpm.sms {
				busyGPM += sm.busy
			}
			stallGPM := dur*float64(len(gpm.sms)) - busyGPM
			if stallGPM < 0 {
				stallGPM = 0
			}
			gc := &g.col.GPMs[gpm.id]
			gc.BusyCycles += busyGPM
			gc.StallCycles += stallGPM
			if phases != nil {
				phases = append(phases, obs.TraceGPMPhase{
					GPM:         gpm.id,
					BusyCycles:  busyGPM,
					StallCycles: stallGPM,
				})
			}
		}
		if phases != nil {
			g.col.RecordLaunch(k.Name, start, eng.end, phases)
		}
	}
	totalSMCycles := dur * float64(g.totalSMs())
	stalls := totalSMCycles - busy
	if stalls < 0 {
		stalls = 0
	}

	eng.counts.StallCycles = uint64(stalls)
	eng.counts.Cycles = uint64(math.Ceil(dur))
	eng.counts.SMCount = g.totalSMs()
	eng.counts.GPMCount = g.physicalGPMs()

	g.res.Launches = append(g.res.Launches, LaunchStats{
		Kernel: k.Name,
		Start:  start,
		End:    eng.end,
		Counts: eng.counts,
	})
	g.res.Counts.Add(&eng.counts)

	gap := g.app.HostGapCycles
	if gap <= 0 {
		gap = hostGapCycles
	}
	g.time = eng.end + gap*g.clkScale
	return nil
}

// runEpochs drives the launch's epoch loop. With more than one lane
// granted (requested via WithGPMParallel, clamped to the GPM count and
// the shared budget) the per-GPM work of each epoch runs on parallel
// lanes with shared-state order preserved by a turnstile; otherwise the
// historical sequential loop runs with zero added synchronization. Both
// paths produce bit-identical results (see DESIGN.md "Performance
// engineering").
func (g *GPU) runEpochs(eng *launchEngine, k *trace.Kernel, start float64) error {
	lanes := 1
	if g.par > 1 && len(g.gpms) > 1 {
		lanes = g.par
		if lanes > len(g.gpms) {
			lanes = len(g.gpms)
		}
		if g.budget != nil {
			// One lane is the caller's own token; extra lanes draw from
			// the shared budget and are returned at launch end.
			extra := g.budget.TryAcquire(lanes - 1)
			defer g.budget.Release(extra)
			lanes = 1 + extra
		}
	}
	if lanes > 1 {
		return g.runEpochsParallel(eng, k, start, lanes)
	}

	epoch := g.cfg.epoch()
	for until := start + epoch; g.liveWarps() > 0 || g.pendingCTAs() > 0; until += epoch {
		progressed := false
		for _, gpm := range g.gpms {
			for _, sm := range gpm.sms {
				p, err := sm.advance(until, eng)
				if err != nil {
					return err
				}
				if p {
					progressed = true
				}
			}
		}
		var err error
		until, err = g.epochBarrier(eng, k, until, epoch, progressed)
		if err != nil {
			return err
		}
	}
	return nil
}

// epochBarrier is the end-of-epoch bookkeeping shared by the
// sequential and parallel drivers: fast-forward across empty epochs
// (or fail a fully-deadlocked kernel) and feed the sampler. It returns
// the possibly fast-forwarded epoch end.
func (g *GPU) epochBarrier(eng *launchEngine, k *trace.Kernel, until, epoch float64, progressed bool) (float64, error) {
	if !progressed && g.liveWarps() > 0 {
		// All remaining warps are waiting beyond this epoch; jump
		// the epoch window forward to the earliest ready time to
		// avoid spinning through empty epochs.
		next := eng.earliestReady(g)
		if math.IsInf(next, 1) {
			// Every active warp on every SM is blocked at a
			// barrier: a malformed kernel, not a slow one. Fail the
			// run instead of fast-forwarding to infinity.
			return until, fmt.Errorf("sim: kernel %q: %d active warps all blocked at barriers: %w",
				k.Name, g.liveWarps(), ErrDeadlock)
		}
		if next > until {
			until = next - epoch
		}
	}
	if g.col != nil {
		g.col.MaybeSample(until, g.liveWarps(), g.pendingCTAs())
	}
	return until, nil
}

func (g *GPU) pendingCTAs() int {
	n := 0
	for _, gpm := range g.gpms {
		n += gpm.pending()
	}
	return n
}

// liveWarps sums the per-GPM resident-warp counts. Called only at
// epoch boundaries, where every lane has quiesced.
func (g *GPU) liveWarps() int {
	n := 0
	for _, gpm := range g.gpms {
		n += gpm.shard.activeWarps
	}
	return n
}

// launchEngine carries per-launch mutable state shared by the SMs.
type launchEngine struct {
	gpu        *GPU
	kernel     *trace.Kernel
	prog       *launchProg
	counts     isa.Counts
	start, end float64
}

// earliestReady returns the minimum ready time over all runnable
// warps, used to fast-forward across long idle periods. Each SM's
// ready-queue root is its per-SM minimum, so the global sweep is a min
// over tree roots instead of over every resident warp.
func (eng *launchEngine) earliestReady(g *GPU) float64 {
	min := math.Inf(1)
	for _, gpm := range g.gpms {
		for _, sm := range gpm.sms {
			if sm.rq.len() > 0 {
				if r := sm.rq.rootReadyAt(); r < min {
					min = r
				}
			}
		}
	}
	return min
}

// access simulates one global-memory warp access from an SM in gpm,
// starting at time t and touching the access descriptor's distinct
// cache lines. It returns the completion time (max over lines;
// serialized line-to-line when the access is a pointer chase).
//
// The per-line counter increments of the historical loop are hoisted
// to one add of mr.lines up front (integer adds, so the launch-end
// totals are unchanged), and the address-generation state that does
// not depend on the line index is derived once via mr.seed.
func (g *GPU) access(sm *smState, t float64, mr *memRec, w *warpState, isStore bool) float64 {
	gpm := sm.gpm
	lines := int(mr.lines)
	// L1 accesses and TxnL1ToRF are lines-per-issue constants, recovered
	// from the per-body-index issue counts at launch end (see
	// gpmState.issueCnt); only the misses below are data-dependent.
	sh := sm.shard
	if g.col != nil {
		gc := &g.col.GPMs[gpm.id]
		gc.L1Accesses += uint64(lines)
		gc.Txn[isa.TxnL1ToRF] += uint64(lines)
	}

	seed := mr.seed(w)
	done := t
	lineStart := t
	for l := 0; l < lines; l++ {
		addr := mr.lineAddr(seed, l)
		var lineDone float64
		if sm.l1.Access(addr) {
			lineDone = lineStart + latL1Hit
		} else {
			sh.l1Misses++
			if g.col != nil {
				g.col.GPMs[gpm.id].L1Misses++
			}
			if g.memSideFill {
				lineDone = g.fillMemorySide(gpm, lineStart, addr, isStore)
			} else {
				lineDone = g.fillModuleSide(gpm, lineStart, addr, isStore)
			}
		}

		if lineDone > done {
			done = lineDone
		}
		if mr.chase {
			// Dependent pointer chase: the next line's address depends
			// on this line's data.
			lineStart = lineDone
		}
	}
	return done
}

// fillModuleSide serves an L1 miss through the requesting module's own
// L2 (the paper's multi-module organization, §V-A1): the L2 caches
// local and remote data alike, so only L2 misses to remote homes cross
// the fabric.
//
// The module's own L2 (l2, l2bw) is private to its lane; the first
// genuinely shared touch — the page table's first-touch Home and the
// (possibly remote) DRAM stack — sits behind ensureTurn, so an L2 hit
// never synchronizes.
func (g *GPU) fillModuleSide(gpm *gpmState, t float64, addr uint64, isStore bool) float64 {
	sh := &gpm.shard
	sh.counts.Txn[isa.TxnL2ToL1] += isa.SectorsPerLine
	sh.l2Accesses++
	if g.col != nil {
		gc := &g.col.GPMs[gpm.id]
		gc.L2Accesses++
		gc.Txn[isa.TxnL2ToL1] += isa.SectorsPerLine
	}
	t2 := gpm.l2bw.Acquire(t, isa.LineBytes)
	if gpm.l2.Access(addr) {
		return t2 + latL2Hit
	}
	sh.l2Misses++
	sh.counts.Txn[isa.TxnDRAMToL2] += isa.SectorsPerLine
	if g.col != nil {
		g.col.GPMs[gpm.id].L2Misses++
	}

	gpm.ensureTurn()
	home := 0
	if len(g.gpms) > 1 {
		home = g.pages.Home(addr, gpm.id)
	}
	if g.col != nil {
		// DRAM reads attribute to the home module whose stack served
		// them, matching the DRAMBytes attribution.
		g.col.GPMs[home].Txn[isa.TxnDRAMToL2] += isa.SectorsPerLine
	}
	homeDRAM := g.gpms[home].dram
	if home == gpm.id {
		sh.localFills++
		if g.col != nil {
			g.col.GPMs[gpm.id].LocalFills++
		}
		return homeDRAM.Acquire(t2, isa.LineBytes) + g.latDRAM
	}
	sh.remoteFills++
	gpm.l2HasRemote = true
	if g.col != nil {
		g.col.GPMs[gpm.id].RemoteFills++
	}
	if isStore {
		// Store data travels requester -> home, then is written at the
		// home DRAM.
		tr := g.fabric.Send(t2, gpm.id, home, isa.LineBytes)
		g.chargeFabric(sh, tr)
		return homeDRAM.Acquire(tr.Done, isa.LineBytes) + g.latDRAM
	}
	// The request header rides to the home module (latency only), the
	// line is read from the home DRAM, and the data returns over the
	// fabric, consuming link bandwidth.
	reqLat := float64(g.fabric.Hops(gpm.id, home)) * g.hopLat
	dramDone := homeDRAM.Acquire(t2+reqLat, isa.LineBytes) + g.latDRAM
	tr := g.fabric.Send(dramDone, home, gpm.id, isa.LineBytes)
	g.chargeFabric(sh, tr)
	return tr.Done
}

// fillMemorySide serves an L1 miss with memory-side L2s: the lookup
// happens at the page's home module, so every remote L1 miss crosses
// the fabric regardless of whether the home L2 hits. Everything it
// touches (home L2/L2 bandwidth, DRAM stacks, fabric) is shared across
// modules, so the whole path sits behind ensureTurn.
func (g *GPU) fillMemorySide(gpm *gpmState, t float64, addr uint64, isStore bool) float64 {
	gpm.ensureTurn()
	sh := &gpm.shard
	sh.counts.Txn[isa.TxnL2ToL1] += isa.SectorsPerLine
	home := g.pages.Home(addr, gpm.id)
	homeGPM := g.gpms[home]

	arrive := t
	if home != gpm.id && isStore {
		// Store data travels to the home module first.
		tr := g.fabric.Send(t, gpm.id, home, isa.LineBytes)
		g.chargeFabric(sh, tr)
		arrive = tr.Done
	} else if home != gpm.id {
		// Request header crosses the fabric (latency only).
		arrive = t + float64(g.fabric.Hops(gpm.id, home))*g.hopLat
	}

	sh.l2Accesses++
	if g.col != nil {
		// Memory-side L2s live with their DRAM stack, so L2 counters
		// attribute to the home module; fills keep requester-relative
		// local/remote attribution (the module's NUMA exposure).
		gc := &g.col.GPMs[home]
		gc.L2Accesses++
		gc.Txn[isa.TxnL2ToL1] += isa.SectorsPerLine
	}
	t2 := homeGPM.l2bw.Acquire(arrive, isa.LineBytes)
	var ready float64
	if homeGPM.l2.Access(addr) {
		ready = t2 + latL2Hit
	} else {
		sh.l2Misses++
		sh.counts.Txn[isa.TxnDRAMToL2] += isa.SectorsPerLine
		if g.col != nil {
			gc := &g.col.GPMs[home]
			gc.L2Misses++
			gc.Txn[isa.TxnDRAMToL2] += isa.SectorsPerLine
		}
		if home == gpm.id {
			sh.localFills++
			if g.col != nil {
				g.col.GPMs[gpm.id].LocalFills++
			}
		} else {
			sh.remoteFills++
			if g.col != nil {
				g.col.GPMs[gpm.id].RemoteFills++
			}
		}
		ready = homeGPM.dram.Acquire(t2, isa.LineBytes) + g.latDRAM
	}
	if home == gpm.id || isStore {
		return ready
	}
	// Load data returns to the requester over the fabric.
	tr := g.fabric.Send(ready, home, gpm.id, isa.LineBytes)
	g.chargeFabric(sh, tr)
	return tr.Done
}

// chargeFabric records the energy-relevant transaction counts of one
// fabric transfer against the requesting module's shard.
func (g *GPU) chargeFabric(sh *gpmShard, tr interconnect.Transfer) {
	sh.counts.Txn[isa.TxnInterGPM] += uint64(tr.Hops) * isa.SectorsPerLine
	if tr.Switched {
		sh.counts.Txn[isa.TxnSwitch] += isa.SectorsPerLine
	}
}
