package sim

import (
	"fmt"
	"strconv"
	"strings"

	"gpujoule/internal/interconnect"
)

// Grid enumerates a (module count × bandwidth × topology) design grid —
// the point set behind cmd/sweep and the harness figures. Expansion
// follows the structural rules every tool shares, so the grid semantics
// live in one place instead of being re-derived per CLI.
type Grid struct {
	// GPMs are the module counts to cover.
	GPMs []int
	// BWs are the Table IV bandwidth settings to cover.
	BWs []BWSetting
	// Topologies are the fabrics to cover (ring only when empty).
	Topologies []interconnect.Topology
}

// Configs expands the grid in deterministic nesting order: module count
// outermost, then bandwidth, then topology. Two structural rules apply:
// a 1-GPM design has no fabric, so it appears exactly once (under the
// first listed bandwidth, ring topologies only), and switch topologies
// force on-board integration (a switch chip does not fit on-package).
func (g Grid) Configs() []Config {
	topos := g.Topologies
	if len(topos) == 0 {
		topos = []interconnect.Topology{interconnect.TopologyRing}
	}
	var out []Config
	for _, n := range g.GPMs {
		for _, bw := range g.BWs {
			for _, topo := range topos {
				if n == 1 && topo != interconnect.TopologyRing {
					continue
				}
				cfg := MultiGPM(n, bw)
				cfg.Topology = topo
				if topo == interconnect.TopologySwitch {
					cfg.Domain = DomainOnBoard
				}
				out = append(out, cfg)
			}
			if n == 1 {
				break // no fabric: one 1-GPM row suffices
			}
		}
	}
	return out
}

// ParseGrid builds a Grid from the comma-separated flag syntax shared
// by the CLIs: module counts ("1,2,4"), bandwidth settings ("1x,2x"),
// and topologies ("ring,switch").
func ParseGrid(gpms, bws, topos string) (Grid, error) {
	var g Grid
	var err error
	if g.GPMs, err = ParseGPMCounts(gpms); err != nil {
		return Grid{}, err
	}
	if g.BWs, err = ParseBWSettings(bws); err != nil {
		return Grid{}, err
	}
	if g.Topologies, err = ParseTopologies(topos); err != nil {
		return Grid{}, err
	}
	return g, nil
}

// SplitList splits a comma-separated flag value, trimming blanks.
func SplitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ParseGPMCounts parses a comma-separated list of module counts.
func ParseGPMCounts(s string) ([]int, error) {
	var out []int
	for _, p := range SplitList(s) {
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad module count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

// ParseBWSettings parses a comma-separated list of Table IV bandwidth
// settings ("1x", "2x", "4x").
func ParseBWSettings(s string) ([]BWSetting, error) {
	var out []BWSetting
	for _, p := range SplitList(s) {
		switch p {
		case "1x":
			out = append(out, BW1x)
		case "2x":
			out = append(out, BW2x)
		case "4x":
			out = append(out, BW4x)
		default:
			return nil, fmt.Errorf("bad bandwidth setting %q (want 1x, 2x, 4x)", p)
		}
	}
	return out, nil
}

// ParseTopologies parses a comma-separated list of fabric topologies
// ("ring", "switch").
func ParseTopologies(s string) ([]interconnect.Topology, error) {
	var out []interconnect.Topology
	for _, p := range SplitList(s) {
		switch p {
		case "ring":
			out = append(out, interconnect.TopologyRing)
		case "switch":
			out = append(out, interconnect.TopologySwitch)
		default:
			return nil, fmt.Errorf("bad topology %q (want ring or switch)", p)
		}
	}
	return out, nil
}
