package sim

import (
	"reflect"
	"testing"

	"gpujoule/internal/interconnect"
)

func TestSplitList(t *testing.T) {
	got := SplitList(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SplitList = %v, want %v", got, want)
	}
	if SplitList("") != nil {
		t.Error("empty list should be nil")
	}
}

func TestParseGPMCounts(t *testing.T) {
	got, err := ParseGPMCounts("1,2,32")
	if err != nil || !reflect.DeepEqual(got, []int{1, 2, 32}) {
		t.Errorf("ParseGPMCounts = %v, %v", got, err)
	}
	for _, bad := range []string{"x", "0", "-2"} {
		if _, err := ParseGPMCounts(bad); err == nil {
			t.Errorf("ParseGPMCounts(%q) should fail", bad)
		}
	}
}

func TestParseBWSettings(t *testing.T) {
	got, err := ParseBWSettings("1x,2x,4x")
	if err != nil || !reflect.DeepEqual(got, []BWSetting{BW1x, BW2x, BW4x}) {
		t.Errorf("ParseBWSettings = %v, %v", got, err)
	}
	if _, err := ParseBWSettings("8x"); err == nil {
		t.Error("unknown setting should fail")
	}
}

func TestParseTopologies(t *testing.T) {
	got, err := ParseTopologies("ring,switch")
	if err != nil || !reflect.DeepEqual(got, []interconnect.Topology{
		interconnect.TopologyRing, interconnect.TopologySwitch}) {
		t.Errorf("ParseTopologies = %v, %v", got, err)
	}
	if _, err := ParseTopologies("torus"); err == nil {
		t.Error("unknown topology should fail")
	}
}

func TestParseGrid(t *testing.T) {
	g, err := ParseGrid("1,4", "2x", "ring,switch")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := g.Configs()
	// 1-GPM appears once (ring only); 4-GPM gets ring and switch.
	if len(cfgs) != 3 {
		t.Fatalf("got %d configs, want 3: %v", len(cfgs), cfgs)
	}
	if cfgs[0].GPMs != 1 || cfgs[0].Topology != interconnect.TopologyRing {
		t.Errorf("first config should be the single 1-GPM ring point, got %s", cfgs[0].Name())
	}
	if cfgs[2].Topology != interconnect.TopologySwitch || cfgs[2].Domain != DomainOnBoard {
		t.Errorf("switch configs must be on-board, got %s", cfgs[2].Name())
	}
	if _, err := ParseGrid("0", "2x", "ring"); err == nil {
		t.Error("bad grid should fail")
	}
}

func TestGridDefaultsToRing(t *testing.T) {
	cfgs := Grid{GPMs: []int{2}, BWs: []BWSetting{BW2x}}.Configs()
	if len(cfgs) != 1 || cfgs[0].Topology != interconnect.TopologyRing {
		t.Fatalf("empty topology list should default to ring, got %v", cfgs)
	}
}

func TestSimKeyNormalization(t *testing.T) {
	// Domain prices energy only; it must not split the memo key.
	a := MultiGPM(8, BW2x)
	b := a
	b.Domain = DomainOnBoard
	if a.SimKey() != b.SimKey() {
		t.Error("domain must not affect SimKey")
	}

	// A 1-GPM design has no fabric: bandwidth and topology collapse.
	one1x := MultiGPM(1, BW1x)
	one2x := MultiGPM(1, BW2x)
	oneSwitch := MultiGPM(1, BW2x)
	oneSwitch.Topology = interconnect.TopologySwitch
	if one1x.SimKey() != one2x.SimKey() || one2x.SimKey() != oneSwitch.SimKey() {
		t.Error("1-GPM fabric parameters must not affect SimKey")
	}

	// Simulation-relevant fields must split the key.
	c := MultiGPM(8, BW1x)
	if c.SimKey() == a.SimKey() {
		t.Error("bandwidth must affect a multi-module SimKey")
	}
	d := a
	d.CTASchedule = ScheduleRoundRobin
	if d.SimKey() == a.SimKey() {
		t.Error("CTA schedule must affect SimKey")
	}

	// Defaulted limits fold to their effective values.
	e := a
	e.MaxCTAsPerSM = 8
	e.EpochCycles = defaultEpochCycles
	if e.SimKey() != a.SimKey() {
		t.Error("explicit defaults must match implicit defaults")
	}
}
