package sim_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"gpujoule/internal/isa"
	"gpujoule/internal/sim"
	"gpujoule/internal/trace"
	"gpujoule/internal/workloads"
)

func obsApp(t *testing.T, name string) *trace.App {
	t.Helper()
	app, err := workloads.ByName(name, workloads.Params{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// stripCounters clones a result without its Counters snapshot, for
// comparing the simulated aggregates of counted and uncounted runs.
func stripCounters(r *sim.Result) sim.Result {
	c := *r
	c.Counters = nil
	return c
}

func TestSimulateDefaultsAreDeterministic(t *testing.T) {
	app := obsApp(t, "Stream")
	cfg := sim.MultiGPM(4, sim.BW2x)

	plain, err := sim.Simulate(context.Background(), cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Counters != nil {
		t.Fatal("counters must be nil without WithCounters")
	}
	// Option-free Simulate is the canonical entry point (the old Run
	// wrapper is gone): two invocations must agree exactly — the
	// property the gpujouled result cache's byte-identity rests on.
	again, err := sim.Simulate(context.Background(), cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, again) {
		t.Error("repeated Simulate runs of the same point disagree")
	}
}

func TestCountersDoNotPerturbSimulation(t *testing.T) {
	// The headline invariant: enabling counters must not change a
	// single simulated number.
	for _, cfg := range []sim.Config{
		sim.MultiGPM(1, sim.BW2x),
		sim.MultiGPM(4, sim.BW1x),
		func() sim.Config { c := sim.MultiGPM(4, sim.BW2x); c.L2 = sim.L2MemorySide; return c }(),
		func() sim.Config { c := sim.MultiGPM(4, sim.BW2x); c.Monolithic = true; return c }(),
	} {
		app := obsApp(t, "Kmeans")
		plain, err := sim.Simulate(context.Background(), cfg, app)
		if err != nil {
			t.Fatal(err)
		}
		counted, err := sim.Simulate(context.Background(), cfg, app, sim.WithCounters())
		if err != nil {
			t.Fatal(err)
		}
		if counted.Counters == nil {
			t.Fatalf("%s: WithCounters produced no snapshot", cfg.Name())
		}
		if !reflect.DeepEqual(*plain, stripCounters(counted)) {
			t.Errorf("%s: counters perturbed the simulated aggregates", cfg.Name())
		}
	}
}

func TestCountersReconcileWithAggregates(t *testing.T) {
	app := obsApp(t, "Stream")
	cfg := sim.MultiGPM(4, sim.BW2x)
	res, err := sim.Simulate(context.Background(), cfg, app, sim.WithCounters())
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if len(c.GPMs) != 4 {
		t.Fatalf("got %d GPM entries, want 4", len(c.GPMs))
	}

	var l1a, l1m, l2a, l2m, local, remote, warpInst, threadInst uint64
	var stalls float64
	for _, g := range c.GPMs {
		l1a += g.L1Accesses
		l1m += g.L1Misses
		l2a += g.L2Accesses
		l2m += g.L2Misses
		local += g.LocalFills
		remote += g.RemoteFills
		warpInst += g.WarpInstructions
		threadInst += g.ThreadInstructions
		stalls += g.StallCycles
	}
	if l1a != res.L1Accesses || l1m != res.L1Misses {
		t.Errorf("L1 sums %d/%d != aggregates %d/%d", l1a, l1m, res.L1Accesses, res.L1Misses)
	}
	if l2a != res.L2Accesses || l2m != res.L2Misses {
		t.Errorf("L2 sums %d/%d != aggregates %d/%d", l2a, l2m, res.L2Accesses, res.L2Misses)
	}
	if local != res.LocalLineFills || remote != res.RemoteLineFills {
		t.Errorf("fill sums %d/%d != aggregates %d/%d",
			local, remote, res.LocalLineFills, res.RemoteLineFills)
	}

	var wantWarp, wantThread uint64
	for op := 0; op < isa.NumOps; op++ {
		wantWarp += res.Counts.WarpInst[op]
		wantThread += res.Counts.Inst[op]
	}
	if warpInst != wantWarp || threadInst != wantThread {
		t.Errorf("instruction sums %d/%d != aggregates %d/%d",
			warpInst, threadInst, wantWarp, wantThread)
	}

	// The aggregate truncates stalls to whole cycles once per launch;
	// the per-GPM split keeps fractions, so they reconcile within one
	// cycle per launch.
	tol := float64(len(res.Launches)) + 1
	if diff := math.Abs(stalls - float64(res.Counts.StallCycles)); diff > tol {
		t.Errorf("stall sum %.2f vs aggregate %d (diff %.2f > tol %.2f)",
			stalls, res.Counts.StallCycles, diff, tol)
	}

	// Every fabric-crossing sector shows up on exactly one link, so
	// link bytes reconcile with the inter-GPM transaction class.
	if got, want := c.TotalLinkBytes(), res.Counts.TotalTransactionBytes(isa.TxnInterGPM); got != want {
		t.Errorf("link bytes %d != inter-GPM transaction bytes %d", got, want)
	}
	if len(c.Links) != 8 { // 4-GPM bidirectional ring: 2 links per module
		t.Errorf("got %d link entries, want 8", len(c.Links))
	}
	for _, l := range c.Links {
		if l.Utilization < 0 || l.Utilization > 1 {
			t.Errorf("link %s utilization %g out of range", l.Link, l.Utilization)
		}
	}

	// DRAM bytes served per module must cover the DRAM->L2 traffic.
	var dramBytes uint64
	for _, g := range c.GPMs {
		dramBytes += g.DRAMBytes
	}
	if want := res.Counts.TotalTransactionBytes(isa.TxnDRAMToL2); dramBytes != want {
		t.Errorf("DRAM bytes %d != DRAM->L2 transaction bytes %d", dramBytes, want)
	}
}

func TestCountersMemorySideL2Reconcile(t *testing.T) {
	app := obsApp(t, "Stream")
	cfg := sim.MultiGPM(4, sim.BW2x)
	cfg.L2 = sim.L2MemorySide
	res, err := sim.Simulate(context.Background(), cfg, app, sim.WithCounters())
	if err != nil {
		t.Fatal(err)
	}
	var l2a, l2m, fills uint64
	for _, g := range res.Counters.GPMs {
		l2a += g.L2Accesses
		l2m += g.L2Misses
		fills += g.LocalFills + g.RemoteFills
	}
	if l2a != res.L2Accesses || l2m != res.L2Misses {
		t.Errorf("memory-side L2 sums %d/%d != aggregates %d/%d",
			l2a, l2m, res.L2Accesses, res.L2Misses)
	}
	if fills != res.LocalLineFills+res.RemoteLineFills {
		t.Errorf("fill sum %d != aggregate %d", fills, res.LocalLineFills+res.RemoteLineFills)
	}
}

func TestCountersDeterministic(t *testing.T) {
	app := obsApp(t, "Kmeans")
	cfg := sim.MultiGPM(4, sim.BW2x)
	a, err := sim.Simulate(context.Background(), cfg, app, sim.WithCounters(), sim.WithSampler(5000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Simulate(context.Background(), cfg, app, sim.WithCounters(), sim.WithSampler(5000))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Counters, b.Counters) {
		t.Error("counters differ between two identical runs")
	}
}

func TestSamplerRecordsTimeline(t *testing.T) {
	app := obsApp(t, "Stream")
	res, err := sim.Simulate(context.Background(), sim.MultiGPM(2, sim.BW2x), app,
		sim.WithSampler(2000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters == nil {
		t.Fatal("WithSampler must imply WithCounters")
	}
	samples := res.Counters.Samples
	if len(samples) == 0 {
		t.Fatal("sampler recorded nothing")
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].TimeCycles <= samples[i-1].TimeCycles {
			t.Fatalf("sample times not strictly increasing: %g then %g",
				samples[i-1].TimeCycles, samples[i].TimeCycles)
		}
		if samples[i].WarpInstructions < samples[i-1].WarpInstructions {
			t.Fatalf("cumulative instructions decreased at sample %d", i)
		}
	}

	// Disabled sampler: no samples.
	plain, err := sim.Simulate(context.Background(), sim.MultiGPM(2, sim.BW2x), app,
		sim.WithCounters(), sim.WithSampler(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Counters.Samples) != 0 {
		t.Error("non-positive interval must disable sampling")
	}
}

func TestSimulateContextCancellation(t *testing.T) {
	app := obsApp(t, "Stream")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.Simulate(ctx, sim.MultiGPM(2, sim.BW2x), app); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Simulate returned %v, want context.Canceled", err)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		mutate func(*sim.Config)
		want   error
	}{
		{func(c *sim.Config) { c.GPMs = 0 }, sim.ErrBadGPMCount},
		{func(c *sim.Config) { c.GPMs = -3 }, sim.ErrBadGPMCount},
		{func(c *sim.Config) { c.SMsPerGPM = 0 }, sim.ErrBadSMCount},
		{func(c *sim.Config) { c.L1PerSMBytes = 0 }, sim.ErrBadCacheSize},
		{func(c *sim.Config) { c.L2PerGPMBytes = -1 }, sim.ErrBadCacheSize},
		{func(c *sim.Config) { c.DRAMBytesPerCycle = 0 }, sim.ErrBadBandwidth},
	}
	for _, tc := range cases {
		cfg := sim.BaseGPM()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if !errors.Is(err, tc.want) {
			t.Errorf("Validate() = %v, want errors.Is(..., %v)", err, tc.want)
		}
		// The typed error must also surface through Simulate.
		if _, serr := sim.Simulate(context.Background(), cfg, obsApp(t, "Stream")); !errors.Is(serr, tc.want) {
			t.Errorf("Simulate() = %v, want errors.Is(..., %v)", serr, tc.want)
		}
	}
	if err := sim.BaseGPM().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
