package sim

import (
	"sync"

	"gpujoule/internal/trace"
)

// This file implements deterministic intra-run parallelism: the GPMs
// of one simulation advance on parallel lanes within each epoch window
// while producing output bit-identical to the sequential engine.
//
// The scheme exploits the engine's structure. The sequential epoch
// loop processes GPMs in ascending order, so every operation on shared
// mutable state (the page table's first-touch Home, any module's DRAM
// BWResource, the fabric links) executes in GPM-major order within an
// epoch. Work that touches only a GPM's private state (its SMs' warp
// scheduling, L1s, module-side L2, counter shard) cannot observe other
// GPMs mid-epoch at all. A lane therefore runs its GPM's private work
// freely, but blocks before the GPM's *first* shared-state operation
// of the epoch until every lower-numbered GPM has finished the epoch
// (gpmState.ensureTurn). From that point the lane holds the turn to
// the end of the GPM's epoch pass. By induction over GPM order, every
// shared-state operation executes with exactly the machine state the
// sequential engine would have produced, in exactly the sequential
// order — including the order-sensitive BWResource bucket walks and
// the QueueCycles float folds. Counters accumulate in per-GPM shards
// merged in ascending GPM order at launch end; every shard field is an
// integer add or a float max, both exactly commutative, so the merged
// totals match the unsharded fold bit for bit. See DESIGN.md
// "Performance engineering".

// turnstile tracks which GPMs have completed the current epoch, so a
// lane about to touch shared state can wait for all lower-numbered
// GPMs (the sequential predecessors of its shared-state operations).
type turnstile struct {
	mu   sync.Mutex
	cond sync.Cond
	done []bool
}

func newTurnstile(n int) *turnstile {
	ts := &turnstile{done: make([]bool, n)}
	ts.cond.L = &ts.mu
	return ts
}

// reset re-arms the turnstile for a new epoch. Called by the driver
// between epochs, when every lane is quiescent.
func (ts *turnstile) reset() {
	ts.mu.Lock()
	for i := range ts.done {
		ts.done[i] = false
	}
	ts.mu.Unlock()
}

// markDone records that GPM k has finished its epoch pass and wakes
// any lane waiting on it.
func (ts *turnstile) markDone(k int) {
	ts.mu.Lock()
	ts.done[k] = true
	ts.mu.Unlock()
	ts.cond.Broadcast()
}

// waitBelow blocks until every GPM with an index below k is done with
// the current epoch.
func (ts *turnstile) waitBelow(k int) {
	ts.mu.Lock()
	for !ts.allBelow(k) {
		ts.cond.Wait()
	}
	ts.mu.Unlock()
}

func (ts *turnstile) allBelow(k int) bool {
	for i := 0; i < k; i++ {
		if !ts.done[i] {
			return false
		}
	}
	return true
}

// laneReport is one lane's result for one epoch.
type laneReport struct {
	progressed bool
	err        error
	errGPM     int
}

// runEpochsParallel drives the launch's epoch loop with the per-GPM
// work of each epoch spread over `lanes` goroutines. Lane L handles
// GPMs L, L+lanes, L+2·lanes, … in ascending order, mirroring the
// sequential sweep; the turnstile (via gpmState.ensureTurn) delays
// each GPM's shared-state operations until its sequential predecessors
// have finished the epoch. Epoch bookkeeping — the loop condition,
// empty-epoch fast-forward, and sampling — happens on the caller's
// goroutine between epochs, exactly as in the sequential driver.
func (g *GPU) runEpochsParallel(eng *launchEngine, k *trace.Kernel, start float64, lanes int) error {
	n := len(g.gpms)
	ts := newTurnstile(n)
	startCh := make(chan float64)
	resCh := make(chan laneReport)
	var wg sync.WaitGroup
	for l := 0; l < lanes; l++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for until := range startCh {
				rep := laneReport{errGPM: n}
				for gi := lane; gi < n; gi += lanes {
					gpm := g.gpms[gi]
					if rep.err == nil {
						for _, sm := range gpm.sms {
							p, err := sm.advance(until, eng)
							if p {
								rep.progressed = true
							}
							if err != nil {
								// Keep draining the lane's remaining GPMs
								// through markDone so no other lane blocks
								// forever; their (divergent) state is
								// discarded with the failed run.
								rep.err, rep.errGPM = err, gi
								break
							}
						}
					}
					ts.markDone(gi)
				}
				resCh <- rep
			}
		}(l)
	}
	defer func() {
		close(startCh)
		wg.Wait()
		for _, gpm := range g.gpms {
			gpm.gate = nil
		}
	}()

	epoch := g.cfg.epoch()
	for until := start + epoch; g.liveWarps() > 0 || g.pendingCTAs() > 0; until += epoch {
		ts.reset()
		for _, gpm := range g.gpms {
			gpm.gate = ts
		}
		for i := 0; i < lanes; i++ {
			startCh <- until
		}
		progressed := false
		var firstErr error
		errGPM := n
		for i := 0; i < lanes; i++ {
			rep := <-resCh
			progressed = progressed || rep.progressed
			if rep.err != nil && rep.errGPM < errGPM {
				firstErr, errGPM = rep.err, rep.errGPM
			}
		}
		if firstErr != nil {
			// The lowest-GPM error is the one the sequential sweep
			// would have surfaced.
			return firstErr
		}
		var err error
		until, err = g.epochBarrier(eng, k, until, epoch, progressed)
		if err != nil {
			return err
		}
	}
	return nil
}
