package sim

import (
	"context"

	"fmt"
	"testing"

	"gpujoule/internal/isa"
	"gpujoule/internal/trace"
)

// schedApp builds a compute-dominated app whose cost is almost
// entirely scheduler work: a mix of issue latencies so the ready queue
// sees realistic key movement, and a tiny cached footprint so the
// memory system stays out of the measurement.
func schedApp(ctas, warpsPerCTA, iters int) *trace.App {
	k := &trace.Kernel{
		Name:        "sched",
		Grid:        ctas,
		WarpsPerCTA: warpsPerCTA,
		Iters:       iters,
		Body: []trace.Inst{
			{Op: isa.OpFFMA32, Times: 4},
			{Op: isa.OpFAdd32, Times: 2},
			{Op: isa.OpIAdd32, Times: 2},
			{Op: isa.OpFFMA64},
		},
	}
	return &trace.App{
		Name:     "sched-bench",
		Category: trace.CategoryCompute,
		Regions:  []trace.Region{{Name: "a", Bytes: 1 << 20}},
		Launches: []trace.Launch{{Kernel: k}},
	}
}

// BenchmarkSMAdvance measures per-instruction scheduler cost on one SM
// as resident warps grow from 8 to 64 (1 to 8 CTAs of 8 warps). With
// the indexed ready queue the reported ns/inst must grow sub-linearly
// in the warp count — the heap sift is O(log W) where the replaced
// linear scan was O(W).
func BenchmarkSMAdvance(b *testing.B) {
	for _, ctas := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("warps=%d", ctas*8), func(b *testing.B) {
			cfg := MultiGPM(1, BW2x)
			cfg.SMsPerGPM = 1
			cfg.MaxCTAsPerSM = ctas
			// Grid sized so the SM stays at full residency for almost
			// the whole run regardless of the CTA limit.
			app := schedApp(8*ctas, 8, 32)

			res, err := Simulate(context.Background(), cfg, app)
			if err != nil {
				b.Fatal(err)
			}
			insts := res.Counts.TotalWarpInstructions()
			if insts == 0 {
				b.Fatal("no instructions issued")
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(context.Background(), cfg, app); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(insts), "ns/inst")
		})
	}
}
