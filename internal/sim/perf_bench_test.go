package sim

import (
	"context"

	"fmt"
	"testing"

	"gpujoule/internal/isa"
	"gpujoule/internal/trace"
)

// schedApp builds a compute-dominated app whose cost is almost
// entirely scheduler work: a mix of issue latencies so the ready queue
// sees realistic key movement, and a tiny cached footprint so the
// memory system stays out of the measurement.
func schedApp(ctas, warpsPerCTA, iters int) *trace.App {
	k := &trace.Kernel{
		Name:        "sched",
		Grid:        ctas,
		WarpsPerCTA: warpsPerCTA,
		Iters:       iters,
		Body: []trace.Inst{
			{Op: isa.OpFFMA32, Times: 4},
			{Op: isa.OpFAdd32, Times: 2},
			{Op: isa.OpIAdd32, Times: 2},
			{Op: isa.OpFFMA64},
		},
	}
	return &trace.App{
		Name:     "sched-bench",
		Category: trace.CategoryCompute,
		Regions:  []trace.Region{{Name: "a", Bytes: 1 << 20}},
		Launches: []trace.Launch{{Kernel: k}},
	}
}

// BenchmarkSMAdvance measures per-instruction scheduler cost on one SM
// as resident warps grow from 8 to 64 (1 to 8 CTAs of 8 warps). With
// the indexed ready queue the reported ns/inst must grow sub-linearly
// in the warp count — the heap sift is O(log W) where the replaced
// linear scan was O(W).
func BenchmarkSMAdvance(b *testing.B) {
	for _, ctas := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("warps=%d", ctas*8), func(b *testing.B) {
			cfg := MultiGPM(1, BW2x)
			cfg.SMsPerGPM = 1
			cfg.MaxCTAsPerSM = ctas
			// Grid sized so the SM stays at full residency for almost
			// the whole run regardless of the CTA limit.
			app := schedApp(8*ctas, 8, 32)

			res, err := Simulate(context.Background(), cfg, app)
			if err != nil {
				b.Fatal(err)
			}
			insts := res.Counts.TotalWarpInstructions()
			if insts == 0 {
				b.Fatal("no instructions issued")
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(context.Background(), cfg, app); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(insts), "ns/inst")
		})
	}
}

// memApp builds a memory-heavy app whose GPMs do real per-epoch work
// (partitioned global streams with some divergence), so the parallel
// epoch driver's turnstile and lane hand-off costs are measured
// against representative epochs rather than empty ones.
func memApp(ctas, warpsPerCTA, iters int) *trace.App {
	k := &trace.Kernel{
		Name:        "mem",
		Grid:        ctas,
		WarpsPerCTA: warpsPerCTA,
		Iters:       iters,
		Body: []trace.Inst{
			{Op: isa.OpLoadGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn, Lines: 2}},
			{Op: isa.OpFFMA32, Times: 4},
			{Op: isa.OpStoreGlobal, Mem: &trace.MemAccess{Region: 0, Pattern: trace.PatOwn, Lines: 2}},
			{Op: isa.OpIAdd32, Times: 2},
		},
	}
	return &trace.App{
		Name:     "mem-bench",
		Category: trace.CategoryMemory,
		Regions:  []trace.Region{{Name: "a", Bytes: 64 << 20}},
		Launches: []trace.Launch{{Kernel: k}},
	}
}

// BenchmarkGPMParallelEpoch measures one full 8-GPM simulation at lane
// counts 1, 2, 4, and 8 (nil budget: lanes run unthrottled). On a
// multi-core host wall time should fall with lanes until the epoch
// barrier dominates; on a single-core host the turnstile's overhead
// over the sequential sweep is what's being measured. Results are
// byte-identical at every lane count (TestGoldenDeterminismGPMParallel),
// so this benchmark is purely about wall clock.
func BenchmarkGPMParallelEpoch(b *testing.B) {
	cfg := MultiGPM(8, BW1x)
	app := memApp(64, 4, 24)
	for _, lanes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			opts := []Option{}
			if lanes > 1 {
				opts = append(opts, WithGPMParallel(lanes))
			}
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(context.Background(), cfg, app, opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDVFSScaledSim measures a full 4-GPM memory-heavy simulation
// at the nominal clock and reclocked to the slowest K40 curve point.
// The clock domain split rescales every wall-clock-fixed latency and
// bandwidth once at config time, so the scaled run must cost the same
// per simulated instruction as the nominal one — a regression here
// means frequency handling leaked into the per-access hot path.
func BenchmarkDVFSScaledSim(b *testing.B) {
	app := memApp(32, 4, 16)
	for _, bc := range []struct {
		name    string
		clockHz float64
	}{
		{"nominal", 0},
		{"600MHz", 600e6},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := MultiGPM(4, BW2x)
			cfg.ClockHz = bc.clockHz
			if bc.clockHz != 0 {
				cfg.VoltageV = 0.80
			}
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(context.Background(), cfg, app); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
