package sim

import (
	"gpujoule/internal/isa"
	"gpujoule/internal/trace"
)

// instRec is one kernel-body instruction with everything the per-issue
// hot path needs predigested: opcode tables (issue cycles, latency),
// the active-thread count, and the op-class dispatch collapse into one
// record load instead of a chain of method calls and int-to-float
// conversions per issued instruction. Times-compressed repeats keep
// their per-issue semantics — only the lookups are hoisted, so issue
// order, clock arithmetic (including float addition order), and every
// counter update are unchanged.
type instRec struct {
	// occ is the issue occupancy in cycles; for global-memory ops it
	// already includes the lines-1 divergence serialization.
	occ float64
	// lat is the post-issue dependency latency added (separately, to
	// keep the historical float addition order) to sm.clock + occ for
	// the simple kinds; latStore for global stores; latShared for
	// shared ops.
	lat    float64
	active uint64
	repeat int32
	kind   uint8
	op     isa.Op
	store  bool
	mem    *trace.MemAccess
}

// Instruction kinds, collapsing the op-class predicates the issue path
// used to evaluate per instruction.
const (
	recSimple uint8 = iota // compute, branch, nop: ready = clock + occ + lat
	recGlobal              // global load/store through the memory system
	recShared              // shared-memory access
	recBarrier
	recExit
)

// launchProg is the predigested body of one kernel plus its effective
// iteration count.
type launchProg struct {
	body  []instRec
	iters int
}

// buildProg predigests a kernel body. Called once per kernel per GPU
// (memoized in GPU.progs), not per launch, so repeated launches of the
// same kernel allocate nothing.
func buildProg(k *trace.Kernel) *launchProg {
	p := &launchProg{iters: k.EffIters(), body: make([]instRec, len(k.Body))}
	for i := range k.Body {
		inst := &k.Body[i]
		op := inst.Op
		rec := instRec{
			occ:    float64(op.IssueCycles()),
			active: uint64(inst.ActiveThreads()),
			repeat: int32(inst.Repeat()),
			op:     op,
			mem:    inst.Mem,
		}
		switch {
		case op.IsGlobalMemory():
			rec.kind = recGlobal
			lines := int(inst.Mem.Lines)
			if lines <= 0 {
				lines = 1
			}
			// A divergent access occupies the LSU for one cycle per
			// distinct line. Integer-valued floats, so folding the sum
			// into the record is exact.
			rec.occ += float64(lines - 1)
			rec.lat = latStore
			rec.store = op == isa.OpStoreGlobal
		case op.IsShared():
			rec.kind = recShared
			rec.lat = latShared
		case op == isa.OpBarrier:
			rec.kind = recBarrier
		case op == isa.OpExit:
			rec.kind = recExit
		default:
			rec.kind = recSimple
			rec.lat = float64(op.Latency())
		}
		p.body[i] = rec
	}
	return p
}
