package sim

import (
	"fmt"

	"gpujoule/internal/isa"
	"gpujoule/internal/trace"
)

// instRec is one kernel-body instruction with everything the per-issue
// hot path needs predigested: opcode tables (issue cycles, latency),
// the active-thread count, and the op-class dispatch collapse into one
// record load instead of a chain of method calls and int-to-float
// conversions per issued instruction. Times-compressed repeats keep
// their per-issue semantics — only the lookups are hoisted, so issue
// order, clock arithmetic (including float addition order), and every
// counter update are unchanged.
//
// The record is kept to 40 bytes — the issue loop walks the body array
// once per instruction, so record size is directly body-walk cache
// footprint. The bulkier address-generation constants of global-memory
// instructions live behind the mem pointer (one memRec per
// global-memory body entry, hot in cache because kernels have few
// distinct memory instructions).
type instRec struct {
	// occ is the issue occupancy in cycles; for global-memory ops it
	// already includes the lines-1 divergence serialization.
	occ float64
	// lat is the post-issue dependency latency added (separately, to
	// keep the historical float addition order) to sm.clock + occ for
	// the simple kinds; latStore for global stores; latShared for
	// shared ops.
	lat    float64
	active uint64
	// mem holds the predigested address-generation constants; non-nil
	// exactly for kind == recGlobal.
	mem    *memRec
	repeat int32
	kind   uint8
	op     isa.Op
	store  bool
}

// memRec predigests one global-memory instruction's address
// generation: the region layout (base byte address, size in lines),
// the PatShared stream stride, and the PatOwn/PatNeighbor partition
// geometry. The per-access path computes addresses from these plain
// fields instead of re-deriving region layout and warp-partition math
// per line; the generated addresses are bit-identical to the reference
// derivation in (*GPU).address (kept, and cross-checked by test).
type memRec struct {
	base        uint64
	regionLines uint64
	strideMax   uint64 // PatShared: lines advanced per access
	partLines   uint64 // PatOwn/PatNeighbor: partition size in lines
	totalWarps  uint64
	wpc         uint64 // warps per CTA (PatNeighbor redirect distance)
	neighborPct uint64 // 0 for PatOwn
	lines       int32  // effective distinct lines per execution, >= 1
	region      int32  // region index, for the warp's streamOff counter
	gen         uint8  // address-derivation flavor (genShared/genRandom/genPart)
	chase       bool
}

// Instruction kinds, collapsing the op-class predicates the issue path
// used to evaluate per instruction.
const (
	recSimple uint8 = iota // compute, branch, nop: ready = clock + occ + lat
	recGlobal              // global load/store through the memory system
	recShared              // shared-memory access
	recBarrier
	recExit
)

// Address-generation flavors, collapsing trace.Pattern for the access
// path: PatOwn and PatNeighbor share the partitioned derivation
// (neighborPct 0 makes the redirect dead).
const (
	genShared uint8 = iota
	genRandom
	genPart
)

// launchProg is the predigested body of one kernel plus its effective
// iteration count.
type launchProg struct {
	body  []instRec
	iters int
}

// buildProg predigests a kernel body. Called once per kernel per GPU
// (memoized in GPU.progs), not per launch, so repeated launches of the
// same kernel allocate nothing. It is a GPU method because the
// predigested records bake in the app's region layout; the memoization
// stays valid because a GPU is built per application run.
func (g *GPU) buildProg(k *trace.Kernel) *launchProg {
	p := &launchProg{iters: k.EffIters(), body: make([]instRec, len(k.Body))}
	for i := range k.Body {
		inst := &k.Body[i]
		op := inst.Op
		rec := instRec{
			occ:    float64(op.IssueCycles()),
			active: uint64(inst.ActiveThreads()),
			repeat: int32(inst.Repeat()),
			op:     op,
		}
		switch {
		case op.IsGlobalMemory():
			rec.kind = recGlobal
			rec.lat = latStore
			rec.store = op == isa.OpStoreGlobal
			rec.mem = g.buildMemRec(k, inst.Mem)
			// A divergent access occupies the LSU for one cycle per
			// distinct line. Integer-valued floats, so folding the sum
			// into the record is exact.
			rec.occ += float64(rec.mem.lines - 1)
		case op.IsShared():
			rec.kind = recShared
			rec.lat = latShared
		case op == isa.OpBarrier:
			rec.kind = recBarrier
		case op == isa.OpExit:
			rec.kind = recExit
		default:
			rec.kind = recSimple
			rec.lat = float64(op.Latency())
		}
		p.body[i] = rec
	}
	return p
}

// buildMemRec predigests one access descriptor against the GPU's
// region layout and the kernel's warp geometry.
func (g *GPU) buildMemRec(k *trace.Kernel, m *trace.MemAccess) *memRec {
	lines := int(m.Lines)
	if lines <= 0 {
		lines = 1
	}
	mr := &memRec{
		base:        g.regionBase[m.Region],
		regionLines: g.regionLines[m.Region],
		lines:       int32(lines),
		region:      int32(m.Region),
		chase:       m.Chase,
	}
	switch m.Pattern {
	case trace.PatShared:
		mr.gen = genShared
		mr.strideMax = uint64(maxInt(int(m.Lines), 1))
	case trace.PatRandom:
		mr.gen = genRandom
	case trace.PatOwn, trace.PatNeighbor:
		mr.gen = genPart
		totalWarps := uint64(k.Warps())
		partLines := mr.regionLines / totalWarps
		if partLines == 0 {
			partLines = 1
		}
		mr.partLines = partLines
		mr.totalWarps = totalWarps
		mr.wpc = uint64(k.WarpsPerCTA)
		if m.Pattern == trace.PatNeighbor {
			mr.neighborPct = uint64(m.NeighborPct)
		}
	default:
		panic(fmt.Sprintf("sim: unknown access pattern %v", m.Pattern))
	}
	return mr
}

// accessSeed is the per-access address-generation state hoisted out of
// the line loop: the pattern's stream/partition line base and hash
// seed, which depend on the warp's position but not on the line index.
type accessSeed struct {
	lineBase uint64
	seedHi   uint64
}

// seed derives the per-access generation state for warp w. For
// PatNeighbor this resolves the per-access partition-redirect roll; for
// PatShared it folds the stream offset; the values feed lineAddr for
// each of mr.lines line indexes.
func (mr *memRec) seed(w *warpState) (s accessSeed) {
	switch mr.gen {
	case genShared:
		s.lineBase = uint64(w.streamOff[mr.region]) * mr.strideMax
	case genRandom:
		s.seedHi = uint64(w.id)<<40 ^ uint64(w.accessSeq)<<8
	default: // genPart
		owner := uint64(w.id)
		if mr.neighborPct > 0 {
			h := trace.Hash64(uint64(w.id)<<32 ^ uint64(w.accessSeq)<<4 ^ 0xA5)
			if h%100 < mr.neighborPct {
				// Redirect into the partition of the corresponding
				// warp of an adjacent CTA.
				wpc := mr.wpc
				if h&1 == 0 && owner+wpc < mr.totalWarps {
					owner += wpc
				} else if owner >= wpc {
					owner -= wpc
				} else if owner+wpc < mr.totalWarps {
					owner += wpc
				}
			}
		}
		partBase := (owner * mr.partLines) % mr.regionLines
		if mr.lines <= 1 {
			// Coalesced streaming through the partition.
			s.lineBase = partBase + uint64(w.streamOff[mr.region])%mr.partLines
		} else {
			// Divergent access: lines scatter within the partition.
			s.lineBase = partBase
			s.seedHi = uint64(w.id)<<24 ^ uint64(w.accessSeq)<<6
		}
	}
	return s
}

// lineAddr returns the byte address of line index l of the access,
// bit-identical to the reference derivation in (*GPU).address.
func (mr *memRec) lineAddr(s accessSeed, l int) uint64 {
	var line uint64
	switch mr.gen {
	case genShared:
		line = (s.lineBase + uint64(l)) % mr.regionLines
	case genRandom:
		line = trace.Hash64(s.seedHi^uint64(l)) % mr.regionLines
	default: // genPart
		if mr.lines <= 1 {
			line = s.lineBase % mr.regionLines
		} else {
			line = (s.lineBase + trace.Hash64(s.seedHi^uint64(l))%mr.partLines) % mr.regionLines
		}
	}
	return mr.base + line*isa.LineBytes
}
