package sim

import (
	"math/rand"
	"testing"
)

// TestHoistedAddressGenEquivalence pins the predigested address
// generation (memRec.seed + memRec.lineAddr, the hot path) to the
// reference derivation (*GPU).address, bit for bit, across randomized
// apps covering every pattern (shared, random, own, neighbor), region
// layout, warp geometry, and line count. The hot path hoists the
// region layout and partition math out of the per-line loop; any
// divergence here silently changes simulated cache behaviour, so this
// is the contract that keeps the fast path honest.
func TestHoistedAddressGenEquivalence(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		app := randomApp(seed)
		g, err := newGPU(MultiGPM(4, BW2x), app, simOptions{})
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed ^ 0x9E3779B9))
		for _, l := range app.Launches {
			k := l.Kernel
			prog := g.buildProg(k)
			eng := &launchEngine{gpu: g, kernel: k, prog: prog}
			for bi := range prog.body {
				rec := &prog.body[bi]
				if rec.kind != recGlobal {
					continue
				}
				m := k.Body[bi].Mem
				for trial := 0; trial < 32; trial++ {
					w := &warpState{
						eng:       eng,
						id:        r.Intn(k.Warps()),
						accessSeq: uint32(r.Intn(1 << 20)),
						streamOff: make([]uint32, len(app.Regions)),
					}
					for i := range w.streamOff {
						w.streamOff[i] = uint32(r.Intn(1 << 16))
					}
					s := rec.mem.seed(w)
					for line := 0; line < int(rec.mem.lines); line++ {
						want := g.address(m, w, line)
						got := rec.mem.lineAddr(s, line)
						if got != want {
							t.Fatalf("seed %d kernel %q body[%d] %v warp %d seq %d line %d: hoisted %#x != reference %#x",
								seed, k.Name, bi, m.Pattern, w.id, w.accessSeq, line, got, want)
						}
					}
				}
			}
		}
	}
}
