package sim

import (
	"math"
	"math/bits"
)

// readyQueue indexes the schedulable (resident, unblocked) warps of one
// SM for the scheduler's oldest-ready-first pick. It replaces the
// original pick loop — a pointer-chasing walk over []*warpState that
// loaded each warp struct to read readyAt and blocked — with a winner
// (tournament) tree over one dense array of (readyAt, pos) pairs: the
// pick is an O(1) read of the tree root and every update replays one
// fixed leaf-to-root path of log2(W) two-child minima.
//
// Determinism: the scheduler must select the *first* warp in sm.warps
// slice order among those with the minimum readyAt (strict `<`
// comparison), and retire reorders that slice with a swap-remove. The
// tree therefore orders entries by (readyAt, pos) — the warp's live
// index in sm.warps, maintained through every append and swap-remove —
// rather than by the kernel-global warp id, so the selection order
// (and with it every counter and timestamp the simulator emits) is
// bit-identical to the historical walk's. (readyAt, pos) is a total
// order: positions are unique within an SM, so the minimum is unique
// and the pick does not depend on the tree's evaluation order.
//
// Why a tournament tree and not a binary heap or a rescan: this
// structure is exercised once per simulated instruction, and almost
// every issue moves the just-issued warp's key past most of the others
// (readyAt jumps by an instruction latency). A heap then pays a
// near-full-depth sift-down whose memory addresses depend on each
// level's compare (a serial chain of mispredict-prone dependent
// loads), and a flat rescan pays O(W) per pick. The winner tree's
// update path is fixed by the leaf position alone, so the loads for
// all log2(W) levels issue independently of the compare outcomes, and
// the root read needs no work at all.
//
// The ready times are compared as IEEE-754 bit patterns: simulation
// times are always non-negative (clocks start at zero and latencies
// are positive), and for non-negative doubles the unsigned bit
// patterns order exactly as the values do. Off-queue leaves hold
// offKey, which no real time can reach, so they lose every match
// without a membership test.
//
// Membership protocol: a warp is queued exactly while it is resident
// and not blocked at a barrier. Blocking removes it, barrier release
// re-pushes it, retirement removes it for good; a retire's swap-remove
// that moves a queued sibling to a lower pos re-keys it with repos.
type readyQueue struct {
	// t is the tree: 2*cap entries, with t[cap+pos] the leaf for
	// sm.warps[pos] (offKey while off-queue or beyond len(sm.warps)),
	// t[node] = min(t[2*node], t[2*node+1]) for internal nodes, and
	// t[1] the overall winner. t[0] is unused.
	t   []rqEntry
	cap int // leaf count, a power of two >= len(sm.warps)
	n   int // number of queued warps
}

// rqEntry is one tree slot: a warp's sort key. The warp is
// sm.warps[pos]. The ready time is stored as its IEEE-754 bit pattern
// so the (readyAt, pos) tuple order is exactly the 128-bit unsigned
// order of key:pos.
type rqEntry struct {
	key uint64 // math.Float64bits(readyAt), or offKey
	pos uint64 // index in sm.warps
}

// offKey marks an off-queue leaf. It is the all-ones pattern, strictly
// above every real time's bit pattern (at most the +Inf pattern
// 0x7FF0…), so off leaves lose every strict-< match.
const offKey = ^uint64(0)

func (e rqEntry) less(o rqEntry) bool {
	return e.key < o.key || (e.key == o.key && e.pos < o.pos)
}

// reset empties the queue (start of a launch), keeping its capacity.
func (q *readyQueue) reset() {
	q.n = 0
	for i := 1; i < q.cap; i++ {
		q.t[i] = rqEntry{key: offKey}
	}
	for i := 0; i < q.cap; i++ {
		q.t[q.cap+i] = rqEntry{key: offKey, pos: uint64(i)}
	}
}

// len returns the number of queued warps.
func (q *readyQueue) len() int { return q.n }

// rootPos returns the sm.warps index of the scheduler's next pick —
// the queued warp minimizing (readyAt, pos). Only valid when len() > 0.
func (q *readyQueue) rootPos() int { return int(q.t[1].pos) }

// rootReadyAt returns the pick's ready time. Only valid when len() > 0.
func (q *readyQueue) rootReadyAt() float64 { return math.Float64frombits(q.t[1].key) }

// rootKey returns the pick's ready time as its IEEE-754 bit pattern.
// Simulation times are non-negative, so these bits compare exactly as
// the times do; the scheduler's epoch-exit test uses this to avoid the
// float round trip on its hottest read. Only valid when len() > 0.
func (q *readyQueue) rootKey() uint64 { return q.t[1].key }

// queued reports whether the warp at slice position pos is in the
// queue.
func (q *readyQueue) queued(pos int) bool { return q.t[q.cap+pos].key != offKey }

// push adds the warp at slice position pos with the given ready time,
// growing the tree when refill appends past its capacity.
func (q *readyQueue) push(pos int, readyAt float64) {
	if pos >= q.cap {
		q.grow(pos)
	}
	q.t[q.cap+pos].key = math.Float64bits(readyAt)
	q.n++
	q.replay(pos)
}

// remove takes the warp at slice position pos out of the queue
// (barrier block or retirement).
func (q *readyQueue) remove(pos int) {
	q.t[q.cap+pos].key = offKey
	q.n--
	q.replay(pos)
}

// fix updates the ready time of the queued warp at slice position pos
// (it grew after an issue).
func (q *readyQueue) fix(pos int, readyAt float64) {
	q.t[q.cap+pos].key = math.Float64bits(readyAt)
	q.replay(pos)
}

// repos records that retire's swap-remove moved the warp at slice
// position from (the last position) to position to. The moved warp
// keeps its key — queued or off — at its new position.
func (q *readyQueue) repos(from, to int) {
	q.t[q.cap+to].key = q.t[q.cap+from].key
	q.replay(to)
	q.t[q.cap+from].key = offKey
	q.replay(from)
}

// shrink drops the last slice position (retire removed the last warp,
// nothing moved). The leaf is already off — remove ran first — so the
// tree needs no work; capacity is sticky.
func (q *readyQueue) shrink() {}

// replay recomputes the internal minima on the path from leaf pos to
// the root after that leaf's key changed. The running winner rides in
// registers: at each level only the path node's sibling is loaded —
// its address depends on pos alone, so all the loads issue
// independently of the compares — and the parent store never feeds a
// later load. The match itself is branchless: the (readyAt, pos) order
// is the 128-bit unsigned order of key:pos, evaluated as a borrow
// chain whose result selects the winner without a data-dependent
// branch — match outcomes are close to random, so a branching select
// would mispredict heavily.
func (q *readyQueue) replay(pos int) {
	t := q.t
	i := q.cap + pos
	cand := t[i]
	for i > 1 {
		sib := t[i^1]
		_, borrow := bits.Sub64(sib.pos, cand.pos, 0)
		_, borrow = bits.Sub64(sib.key, cand.key, borrow)
		if borrow != 0 { // sib < cand as the 128-bit value key:pos
			cand = sib
		}
		i >>= 1
		t[i] = cand
	}
}

// fixIfQueued is the scheduler's post-issue re-key: it updates the
// warp's ready time when the leaf is queued and does nothing when it is
// not (the warp's CTA slot was recycled and a refill already pushed the
// fresh warp with its correct key). Merging the membership test into
// the update loads the leaf once instead of twice (queued() then fix()
// both touch it) on the hottest queue path in the simulator.
//
// The replay walk is open-coded rather than delegated to replay():
// this is the queue's hottest entry point by an order of magnitude,
// and keeping the slice header, position, and running winner in locals
// lets the whole walk run out of registers — calling replay() after
// the leaf store forces the compiler to reload q.t and q.cap, since it
// cannot prove the store did not alias them. The leaf's new entry is
// also built from the arguments (its pos field is its own position by
// construction) instead of being read back from memory.
//
// The walk addresses each level through its aligned node pair
// (t[i&^1], t[i^1]): the parent store targets the same pair the next
// iteration's sibling load reads, so carrying one *[2]rqEntry across
// iterations needs a single bounds check per level where indexing t
// directly paid two (the sibling load and the parent store; the 1-bit
// in-pair index is check-free).
//
// The match drops the pos half of the 128-bit compare: every leaf of a
// node's left subtree has a smaller pos than every leaf of its right
// subtree (leaves are laid out in pos order), so the (key, pos) min of
// two subtree winners is the smaller key with ties going to the LEFT
// child. That is one 64-bit compare against cand.key + (i&1) — when
// cand sits in the right slot (i odd) its left sibling also wins key
// ties — instead of the two-word borrow chain, shortening the
// level-to-level dependency. The +1 cannot overflow: cand starts as a
// real time (below offKey, at most the +Inf pattern) and minima only
// shrink. The stored entries are bit-identical to the 128-bit
// compare's: the tie rule selects exactly the smaller-pos entry.
//
// (An unrolled parallel prefix-minimum over the path — exact, since
// the ancestors are minima and regrouping selections over a total
// order cannot change them — was measured slower here: the shortened
// compare chain did not pay for the extra µops on the target cores.)
func (q *readyQueue) fixIfQueued(pos int, readyAt float64) {
	t := q.t
	i := q.cap + pos
	if t[i].key == offKey {
		return
	}
	cand := rqEntry{key: math.Float64bits(readyAt), pos: uint64(pos)}
	pair := (*[2]rqEntry)(t[i&^1:])
	pair[i&1] = cand
	for i > 1 {
		sib := pair[(i&1)^1]
		if sib.key < cand.key+uint64(i&1) { // left sibling wins key ties
			cand = sib
		}
		i >>= 1
		pair = (*[2]rqEntry)(t[i&^1:])
		pair[i&1] = cand
	}
}

// grow rebuilds the tree with capacity covering leaf pos, carrying the
// existing leaves over.
func (q *readyQueue) grow(pos int) {
	ncap := q.cap
	if ncap == 0 {
		ncap = 2
	}
	for ncap <= pos {
		ncap *= 2
	}
	old := q.t
	oldCap := q.cap
	q.cap = ncap
	q.t = make([]rqEntry, 2*ncap)
	for i := 0; i < ncap; i++ {
		e := rqEntry{key: offKey, pos: uint64(i)}
		if i < oldCap {
			e.key = old[oldCap+i].key
		}
		q.t[ncap+i] = e
	}
	for node := ncap - 1; node >= 1; node-- {
		l := 2 * node
		m := l
		if q.t[l+1].less(q.t[l]) {
			m = l + 1
		}
		q.t[node] = q.t[m]
	}
}
