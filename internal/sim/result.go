package sim

import (
	"gpujoule/internal/isa"
	"gpujoule/internal/obs"
)

// This file defines the simulator's result schema. The JSON field
// names below are stable and documented (see DESIGN.md §Observability):
// they are shared by the -counters export of cmd/sweep and cmd/gpmsim,
// the harness reports, and any direct marshalling of Result. Renaming a
// field is a breaking schema change and must bump obs.SchemaVersion;
// the sweep CSV uses the same names for the columns it derives from
// Result (cycles, seconds, l1_hit, l2_hit, remote_fill_frac, ...).

// LaunchStats records one kernel launch's contribution to a run.
type LaunchStats struct {
	// Kernel is the kernel name.
	Kernel string `json:"kernel"`
	// Start and End are the launch's global start and completion times
	// in cycles (End excludes the host-side gap that follows).
	Start float64 `json:"start_cycles"`
	End   float64 `json:"end_cycles"`
	// Counts holds the launch's event counts; Counts.Cycles is the
	// launch duration.
	Counts isa.Counts `json:"counts"`
}

// Duration returns the launch duration in cycles.
func (l *LaunchStats) Duration() float64 { return l.End - l.Start }

// Result is the outcome of simulating one application on one GPU
// configuration.
type Result struct {
	// App is the application name.
	App string `json:"workload"`
	// Config is the simulated machine.
	Config Config `json:"config"`
	// Launches records every kernel launch in order.
	Launches []LaunchStats `json:"launches"`
	// Counts aggregates all launches; Counts.Cycles is the end-to-end
	// execution time in cycles including host-side inter-launch gaps.
	Counts isa.Counts `json:"counts"`

	// Cache diagnostics (aggregated over the whole run).
	L1Accesses uint64 `json:"l1_accesses"`
	L1Misses   uint64 `json:"l1_misses"`
	L2Accesses uint64 `json:"l2_accesses"`
	L2Misses   uint64 `json:"l2_misses"`
	// RemoteLineFills counts L2 miss fills served by a remote GPM's DRAM.
	RemoteLineFills uint64 `json:"remote_line_fills"`
	// LocalLineFills counts L2 miss fills served by the local DRAM.
	LocalLineFills uint64 `json:"local_line_fills"`

	// Counters is the per-GPM/per-link observability snapshot, present
	// only when the run was simulated with WithCounters. Per-GPM sums
	// reconcile with the aggregates above (exactly for event counts,
	// within one cycle per launch for stall cycles).
	Counters *obs.Counters `json:"counters,omitempty"`
	// Trace is the run's timeline, present only with WithTrace. It
	// renders to the Chrome trace_event format via obs.Trace.WriteChrome.
	Trace *obs.Trace `json:"trace,omitempty"`
}

// Cycles returns the end-to-end execution time in cycles.
func (r *Result) Cycles() float64 { return float64(r.Counts.Cycles) }

// Seconds returns the end-to-end execution time in seconds.
func (r *Result) Seconds() float64 { return r.Cycles() / r.Config.Clock() }

// L1HitRate returns the run-wide L1 hit rate.
func (r *Result) L1HitRate() float64 { return hitRate(r.L1Accesses, r.L1Misses) }

// L2HitRate returns the run-wide L2 hit rate.
func (r *Result) L2HitRate() float64 { return hitRate(r.L2Accesses, r.L2Misses) }

// RemoteFillFraction returns the fraction of DRAM line fills served by
// a remote module — the NUMA exposure of the run.
func (r *Result) RemoteFillFraction() float64 {
	total := r.RemoteLineFills + r.LocalLineFills
	if total == 0 {
		return 0
	}
	return float64(r.RemoteLineFills) / float64(total)
}

func hitRate(accesses, misses uint64) float64 {
	if accesses == 0 {
		return 0
	}
	return 1 - float64(misses)/float64(accesses)
}

// Canonical metric column names derived from Result, shared by the
// sweep CSV header, the counters export, and the harness reports so
// every surface speaks one schema.
const (
	FieldCycles         = "cycles"
	FieldSeconds        = "seconds"
	FieldL1Hit          = "l1_hit"
	FieldL2Hit          = "l2_hit"
	FieldRemoteFillFrac = "remote_fill_frac"
	FieldDRAMGB         = "dram_gb"
	FieldInterGPMGB     = "intergpm_gb"
	FieldStallFrac      = "stall_frac"
	FieldSpeedup        = "speedup"
	FieldEnergyJ        = "energy_j"
	FieldEnergyRatio    = "energy_ratio"
	FieldEDPSEPct       = "edpse_pct"
	FieldAvgPowerW      = "avg_power_w"
)
