package sim

import (
	"gpujoule/internal/isa"
)

// LaunchStats records one kernel launch's contribution to a run.
type LaunchStats struct {
	// Kernel is the kernel name.
	Kernel string
	// Start and End are the launch's global start and completion times
	// in cycles (End excludes the host-side gap that follows).
	Start, End float64
	// Counts holds the launch's event counts; Counts.Cycles is the
	// launch duration.
	Counts isa.Counts
}

// Duration returns the launch duration in cycles.
func (l *LaunchStats) Duration() float64 { return l.End - l.Start }

// Result is the outcome of simulating one application on one GPU
// configuration.
type Result struct {
	// App is the application name.
	App string
	// Config is the simulated machine.
	Config Config
	// Launches records every kernel launch in order.
	Launches []LaunchStats
	// Counts aggregates all launches; Counts.Cycles is the end-to-end
	// execution time in cycles including host-side inter-launch gaps.
	Counts isa.Counts

	// Cache diagnostics (aggregated over the whole run).
	L1Accesses, L1Misses uint64
	L2Accesses, L2Misses uint64
	// RemoteLineFills counts L2 miss fills served by a remote GPM's DRAM.
	RemoteLineFills uint64
	// LocalLineFills counts L2 miss fills served by the local DRAM.
	LocalLineFills uint64
}

// Cycles returns the end-to-end execution time in cycles.
func (r *Result) Cycles() float64 { return float64(r.Counts.Cycles) }

// Seconds returns the end-to-end execution time in seconds.
func (r *Result) Seconds() float64 { return r.Cycles() / ClockHz }

// L1HitRate returns the run-wide L1 hit rate.
func (r *Result) L1HitRate() float64 { return hitRate(r.L1Accesses, r.L1Misses) }

// L2HitRate returns the run-wide L2 hit rate.
func (r *Result) L2HitRate() float64 { return hitRate(r.L2Accesses, r.L2Misses) }

// RemoteFillFraction returns the fraction of DRAM line fills served by
// a remote module — the NUMA exposure of the run.
func (r *Result) RemoteFillFraction() float64 {
	total := r.RemoteLineFills + r.LocalLineFills
	if total == 0 {
		return 0
	}
	return float64(r.RemoteLineFills) / float64(total)
}

func hitRate(accesses, misses uint64) float64 {
	if accesses == 0 {
		return 0
	}
	return 1 - float64(misses)/float64(accesses)
}
